// In-situ staging scenario (paper contribution 4): a simulation emits
// time steps while staging workers run the MLOC pipeline concurrently,
// writing one store per (step, variable) to the PFS. Afterwards the
// analyst queries the staged history — here, tracking how the hot
// region of a 2-D field moves across time steps.
//
//	go run ./examples/insitu
package main

import (
	"fmt"
	"log"

	"mloc/internal/binning"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/pfs"
	"mloc/internal/query"
	"mloc/internal/stage"
)

func main() {
	fsCfg := pfs.DefaultConfig()
	fsCfg.ByteScale = 1000
	fsCfg.CPUScale = 1000
	sim := pfs.New(fsCfg)

	storeCfg := core.DefaultConfig([]int{32, 32})
	pipe, err := stage.New(stage.Config{
		FS:      sim,
		Store:   storeCfg,
		Prefix:  "run42",
		Workers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The "simulation": each step is a fresh field (different seed, so
	// structures drift between steps).
	const steps = 6
	fmt.Printf("simulating %d steps, staging in-situ with %d workers...\n", steps, 2)
	for s := 0; s < steps; s++ {
		ds := datagen.GTSLike(256, 256, int64(100+s))
		phi, err := ds.Var("phi")
		if err != nil {
			log.Fatal(err)
		}
		if err := pipe.Submit(stage.StepVar{
			Step: s, Name: "phi", Shape: ds.Shape, Data: phi.Data,
		}); err != nil {
			log.Fatal(err)
		}
	}
	results := pipe.Drain()

	var totalIngest float64
	stores := map[int]*core.Store{}
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		stores[r.Step] = r.Store
		totalIngest += r.IngestVirtualSec
	}
	fmt.Printf("staged %d stores, total ingest %.1f virtual sec (overlapped across workers)\n\n",
		len(results), totalIngest)

	// Temporal analysis: where is the field hottest in each step?
	fmt.Println("hot-region tracking across time steps (phi > 11.2):")
	vc := binning.ValueConstraint{Min: 11.2, Max: 1e18}
	for s := 0; s < steps; s++ {
		sim.ResetStats()
		res, err := stores[s].Query(&query.Request{VC: &vc, IndexOnly: true}, 4)
		if err != nil {
			log.Fatal(err)
		}
		// Centroid of the hot region.
		var cy, cx float64
		shape := stores[s].Shape()
		coords := make([]int, 2)
		for _, m := range res.Matches {
			coords = shape.Coords(m.Index, coords[:0])
			cy += float64(coords[0])
			cx += float64(coords[1])
		}
		if len(res.Matches) == 0 {
			fmt.Printf("  step %d: no hot points\n", s)
			continue
		}
		n := float64(len(res.Matches))
		fmt.Printf("  step %d: %5d hot points, centroid (%.0f, %.0f), query %.3f virtual sec\n",
			s, len(res.Matches), cy/n, cx/n, res.Time.Total())
	}
}
