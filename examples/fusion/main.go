// Fusion scenario (paper §III-A2): plasma-turbulence analysts mostly
// ask value-constrained questions — "which regions have potential
// fluctuations above a threshold?" — so the store is built with level V
// at the highest priority and queried with region queries. The example
// shows the aligned-bin optimization: queries whose bounds coincide
// with bin boundaries are answered from indices alone, and the example
// contrasts MLOC against a sequential scan of the same data.
//
//	go run ./examples/fusion
package main

import (
	"fmt"
	"log"

	"mloc/internal/binning"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/pfs"
	"mloc/internal/query"
	"mloc/internal/seqscan"
)

func main() {
	ds := datagen.GTSLike(1024, 1024, 7)
	phi, err := ds.Var("phi")
	if err != nil {
		log.Fatal(err)
	}

	// Scale-aware simulators: the 8 MB field stands in for an 8 GB one
	// (transfer/compute scale up 1000x, seeks stay constant).
	fsCfg := pfs.DefaultConfig()
	fsCfg.ByteScale = 1000
	fsCfg.CPUScale = 1000

	// MLOC store, VC-priority (V-M-S order; V leads by design).
	mlocFS := pfs.New(fsCfg)
	cfg := core.DefaultConfig([]int{64, 64})
	store, err := core.Build(mlocFS, mlocFS.NewClock(), "fusion/phi", ds.Shape, phi.Data, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Sequential-scan comparator on its own PFS.
	seqFS := pfs.New(fsCfg)
	seq, err := seqscan.Build(seqFS, seqFS.NewClock(), "fusion/raw", ds.Shape, phi.Data)
	if err != nil {
		log.Fatal(err)
	}

	// "Abnormally high potential": the top ~2% of values.
	lo, hi := datagen.Selectivity(phi.Data, 0.02, 3, 1<<16)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	req := &query.Request{VC: &vc, IndexOnly: true}

	mlocFS.ResetStats()
	mres, err := store.Query(req, 8)
	if err != nil {
		log.Fatal(err)
	}
	seqFS.ResetStats()
	sres, err := seq.Query(req, 8)
	if err != nil {
		log.Fatal(err)
	}
	if len(mres.Matches) != len(sres.Matches) {
		log.Fatalf("mismatch: MLOC %d vs scan %d points", len(mres.Matches), len(sres.Matches))
	}

	fmt.Printf("region query phi∈[%.3f,%.3f] (%d hot points):\n", lo, hi, len(mres.Matches))
	fmt.Printf("  MLOC      %8.4f virtual sec, %6.2f MB read, %d/%d bins touched\n",
		mres.Time.Total(), float64(mres.BytesRead)/1e6, mres.BinsAccessed, store.NumBins())
	fmt.Printf("  Seq. scan %8.4f virtual sec, %6.2f MB read (full scan)\n",
		sres.Time.Total(), float64(sres.BytesRead)/1e6)
	fmt.Printf("  speedup: %.1fx, I/O reduction: %.0fx\n",
		sres.Time.Total()/mres.Time.Total(),
		float64(sres.BytesRead)/float64(mres.BytesRead))

	// Aligned-bin demonstration: a VC snapped to bin boundaries needs
	// zero data-block reads.
	mlocFS.ResetStats()
	bounds := store.Scheme().Bounds()
	alignedVC := binning.ValueConstraint{Min: bounds[90], Max: bounds[95]}
	ares, err := store.Query(&query.Request{VC: &alignedVC, IndexOnly: true}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bin-aligned region query (bins 90-94): %d points, %d data blocks read "+
		"(aligned bins answer from the index alone)\n", len(ares.Matches), ares.BlocksRead)
}
