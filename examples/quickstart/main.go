// Quickstart: build an MLOC store over a synthetic 2-D field and run
// the two basic access patterns — a value-constrained region query and
// a spatially-constrained value query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mloc/internal/binning"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

func main() {
	// 1. A synthetic turbulence-like field (512×512 float64).
	ds := datagen.GTSLike(512, 512, 42)
	phi, err := ds.Var("phi")
	if err != nil {
		log.Fatal(err)
	}

	// 2. A simulated Lustre-like parallel file system. ByteScale/CPUScale
	// make the 2 MB demo dataset behave like a 2 GB one: transfer and
	// compute times are scaled up while seek costs stay constant, so the
	// virtual seconds below are what a production-sized store would see.
	fsCfg := pfs.DefaultConfig()
	fsCfg.ByteScale = 1000
	fsCfg.CPUScale = 1000
	sim := pfs.New(fsCfg)

	// 3. Ingest through the MLOC pipeline: 100 equal-frequency value
	// bins, 32×32 chunks in Hilbert order, byte-column Zlib compression
	// (the paper's MLOC-COL), V-M-S level order.
	cfg := core.DefaultConfig([]int{32, 32})
	clk := sim.NewClock()
	store, err := core.Build(sim, clk, "demo/phi", ds.Shape, phi.Data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %s: raw %.1f MB -> data %.1f MB + index %.1f MB\n",
		ds.Shape, float64(8*ds.Shape.Elems())/1e6,
		float64(store.DataBytes())/1e6, float64(store.IndexBytes())/1e6)

	// Reset the simulator's schedules and counters between rounds, the
	// equivalent of the paper's cache clear before each measurement.
	sim.ResetStats()

	// 4. Region query: "where is phi in [10.9, 11.3]?" — answered mostly
	// from the bin indices without touching data.
	vc := binning.ValueConstraint{Min: 10.9, Max: 11.3}
	res, err := store.Query(&query.Request{VC: &vc, IndexOnly: true}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region query phi∈[10.9,11.3]: %d points, %d/%d bins touched, %.3f virtual sec\n",
		len(res.Matches), res.BinsAccessed, store.NumBins(), res.Time.Total())

	// 5. Value query: "what are the phi values in the sub-region
	// [100,200)×[300,400)?" — served by Hilbert-ordered chunk reads.
	sc, err := grid.NewRegion([]int{100, 300}, []int{200, 400})
	if err != nil {
		log.Fatal(err)
	}
	sim.ResetStats()
	res, err = store.Query(&query.Request{SC: &sc}, 8)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for _, m := range res.Matches {
		sum += m.Value
	}
	fmt.Printf("value query on 100×100 region: %d values, mean %.4f, %.3f virtual sec\n",
		len(res.Matches), sum/float64(len(res.Matches)), res.Time.Total())

	// 6. Combined: hot spots inside the region.
	sim.ResetStats()
	res, err = store.Query(&query.Request{VC: &vc, SC: &sc}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined query: %d points satisfy both constraints\n", len(res.Matches))
}
