// Climate scenario (paper §II): analysts ask spatially-constrained and
// multi-variable questions — "what are the humidity values within this
// region?", "where inside the region is it hot AND humid?". The example
// builds MLOC stores for two co-located variables and runs a value
// query plus the two-phase multi-variable access with its bitmap
// position exchange.
//
//	go run ./examples/climate
package main

import (
	"fmt"
	"log"
	"math"

	"mloc/internal/binning"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

func main() {
	// Two co-located 2-D fields standing in for temperature and
	// humidity over a lat×lon grid.
	const side = 512
	tempDS := datagen.GTSLike(side, side, 11)
	humidDS := datagen.GTSLike(side, side, 23)
	tv, err := tempDS.Var("phi")
	if err != nil {
		log.Fatal(err)
	}
	hv, err := humidDS.Var("phi")
	if err != nil {
		log.Fatal(err)
	}
	// Shift into climate-like units: temp ~ [250,310] K, humidity [0,100] %.
	temp := rescale(tv.Data, 250, 310)
	humid := rescale(hv.Data, 0, 100)

	// Treat the demo grids as 1000x their in-memory size (see DESIGN.md §6).
	fsCfg := pfs.DefaultConfig()
	fsCfg.ByteScale = 1000
	fsCfg.CPUScale = 1000
	sim := pfs.New(fsCfg)
	cfg := core.DefaultConfig([]int{32, 32})
	stores := map[string]*core.Store{}
	for name, data := range map[string][]float64{"temp": temp, "humidity": humid} {
		st, err := core.Build(sim, sim.NewClock(), "climate/"+name, tempDS.Shape, data, cfg)
		if err != nil {
			log.Fatal(err)
		}
		stores[name] = st
	}

	// Reset OST schedules after ingestion (the paper's cache clear).
	sim.ResetStats()

	// Value query: humidity over a "city" region.
	city, err := grid.NewRegion([]int{120, 200}, []int{160, 260})
	if err != nil {
		log.Fatal(err)
	}
	res, err := stores["humidity"].Query(&query.Request{SC: &city}, 8)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for _, m := range res.Matches {
		sum += m.Value
	}
	fmt.Printf("humidity within the city region: %d cells, mean %.1f%%, %.3f virtual sec\n",
		len(res.Matches), sum/float64(len(res.Matches)), res.Time.Total())

	// Multi-variable: temperature where humidity > 55%, inside the city.
	sim.ResetStats()
	vc := binning.ValueConstraint{Min: 55, Max: math.Inf(1)}
	mv, err := core.MultiVarQuery(stores, "humidity", core.MultiVarRequest{
		Select:    query.Request{VC: &vc, SC: &city},
		FetchVars: []string{"temp"},
	}, 8)
	if err != nil {
		log.Fatal(err)
	}
	temps := mv.Values["temp"]
	if len(temps) == 0 {
		fmt.Println("no humid cells in the region for this seed")
		return
	}
	minT, maxT := temps[0].Value, temps[0].Value
	for _, m := range temps {
		if m.Value < minT {
			minT = m.Value
		}
		if m.Value > maxT {
			maxT = m.Value
		}
	}
	fmt.Printf("temperature where humidity>55%% in the city: %d cells, range [%.1f, %.1f] K\n",
		len(temps), minT, maxT)
	fmt.Printf("  two-phase access: %d selected positions exchanged as a bitmap, "+
		"%.2f MB total read, %.3f virtual sec\n",
		mv.Positions.Count(), float64(mv.BytesRead)/1e6, mv.Time.Total())
}

// rescale maps data linearly onto [lo, hi].
func rescale(data []float64, lo, hi float64) []float64 {
	min, max := data[0], data[0]
	for _, v := range data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(data))
	for i, v := range data {
		out[i] = lo + (hi-lo)*(v-min)/(max-min)
	}
	return out
}
