// Multi-resolution scenario (paper §III-B3): an analyst runs statistics
// on progressively cheaper reads. The example queries the same region
// at PLoD levels 2, 3, 4 and full precision, comparing I/O volume and
// the error each level introduces into a mean-value analysis, and then
// demonstrates the subset-based alternative via the hierarchical
// Hilbert mapping.
//
//	go run ./examples/multires
package main

import (
	"fmt"
	"log"
	"math"

	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/plod"
	"mloc/internal/query"
)

func main() {
	ds := datagen.S3DLike(64, 5)
	temp, err := ds.Var("temp")
	if err != nil {
		log.Fatal(err)
	}

	sim := pfs.New(pfs.DefaultConfig())
	// Byte-column mode (MLOC-COL) is the PLoD-capable configuration.
	cfg := core.DefaultConfig([]int{16, 16, 16})
	store, err := core.Build(sim, sim.NewClock(), "mr/temp", ds.Shape, temp.Data, cfg)
	if err != nil {
		log.Fatal(err)
	}

	sc, err := grid.NewRegion([]int{0, 0, 0}, []int{32, 64, 64})
	if err != nil {
		log.Fatal(err)
	}

	sim.ResetStats()

	// Reference: exact mean over the region.
	exact, err := store.Query(&query.Request{SC: &sc}, 8)
	if err != nil {
		log.Fatal(err)
	}
	exactMean := mean(exact)
	var sumAll float64
	for _, v := range temp.Data {
		sumAll += v
	}
	exactMeanAll := sumAll / float64(len(temp.Data))

	fmt.Printf("mean-temperature analysis over a %d-point region:\n", len(exact.Matches))
	fmt.Printf("  %-8s %-10s %-12s %-14s %s\n", "PLoD", "bytes/val", "MB read", "mean", "rel. error")
	for _, level := range []int{1, 2, 3, plod.MaxLevel} {
		res, err := store.Query(&query.Request{SC: &sc, PLoDLevel: level}, 8)
		if err != nil {
			log.Fatal(err)
		}
		m := mean(res)
		label := fmt.Sprintf("level %d", level)
		if level == plod.MaxLevel {
			label = "full"
		}
		fmt.Printf("  %-8s %-10d %-12.2f %-14.6f %.2e\n",
			label, plod.BytesPerValue(level), float64(res.BytesRead)/1e6, m,
			math.Abs(m-exactMean)/math.Abs(exactMean))
	}
	fmt.Printf("  (paper: 3-byte PLoD cuts I/O 62.5%% with ~1e-4 relative error)\n\n")

	// Subset-based multiresolution: the hierarchical Hilbert mapping
	// partitions the lattice into nested resolution levels stored
	// contiguously; a level-ℓ reader fetches only levels 0..ℓ and gets
	// the stride-2^(order-ℓ) spatial subsample (all points, none of the
	// precision tricks — the complementary trade-off to PLoD).
	sub, err := core.BuildSubset(sim, sim.NewClock(), "mr/subset", ds.Shape, temp.Data, nil)
	if err != nil {
		log.Fatal(err)
	}
	sim.ResetStats()
	fmt.Println("subset-based multiresolution (hierarchical Hilbert levels):")
	for lvl := 0; lvl < sub.Levels(); lvl++ {
		res, err := sub.ReadLevel(lvl, 8)
		if err != nil {
			log.Fatal(err)
		}
		var s float64
		for _, v := range res.Values {
			s += v
		}
		m := s / float64(len(res.Values))
		fmt.Printf("  level %d: stride %2d, grid %-10s %8.2f KB read, mean %.4f (rel err %.2e)\n",
			lvl, res.Stride, res.Shape, float64(res.BytesRead)/1e3, m,
			math.Abs(m-exactMeanAll)/math.Abs(exactMeanAll))
	}
}

func mean(res *query.Result) float64 {
	var s float64
	for _, m := range res.Matches {
		s += m.Value
	}
	return s / float64(len(res.Matches))
}
