GO ?= go
FUZZTIME ?= 10s

# Packages exercising the goroutine-based SPMD runtime and the
# concurrent query service — the ones where a data race would actually
# bite.
RACE_PKGS = ./internal/mpi ./internal/core ./internal/stage ./internal/cache ./internal/server ./internal/obs \
	./internal/cluster/shardmap ./internal/cluster/health ./internal/cluster/fault ./internal/cluster/router

.PHONY: build test vet vet-fast mlocvet mlocvet-baseline race bench-json bench-query fuzz-short fuzz-list fuzz-list-check serve-smoke cluster-smoke obslint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## vet: go vet plus the repo's own analyzer suite (cmd/mlocvet),
## gated on the accepted baseline so only NEW findings fail.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/mlocvet -baseline mlocvet-baseline.json ./...

## vet-fast: the PR fast path — diff against BASE_REF (default
## origin/main) and run only the analyzers or packages the change can
## affect. `make check` keeps the full suite; this is a latency
## optimization for pull-request iteration, not the gate of record.
vet-fast:
	./scripts/vet_fast.sh

## mlocvet: just the custom analyzer suite (baseline-gated).
mlocvet:
	$(GO) run ./cmd/mlocvet -baseline mlocvet-baseline.json ./...

## mlocvet-baseline: re-snapshot the accepted mlocvet findings after
## triaging (fixing or //mlocvet:ignore-ing) everything else.
mlocvet-baseline:
	$(GO) run ./cmd/mlocvet -write-baseline mlocvet-baseline.json ./...

## race: race-detector pass over the parallel engine packages.
race:
	$(GO) test -race $(RACE_PKGS)

## bench-json: run the parallel-build benchmark and regenerate
## BENCH_build.json (the recorded bench trajectory; CI uploads it as an
## artifact). BENCHTIME=10x stabilizes the numbers on noisy hosts.
bench-json:
	./scripts/bench_json.sh

## bench-query: run the flat-vs-hierarchical query-latency matrix and
## regenerate BENCH_query.json (the committed query-latency
## trajectory; the benchmark itself fails past 2x the committed
## virtual latency, so running it doubles as the regression gate).
bench-query:
	./scripts/bench_json.sh query

## fuzz-short: run every fuzz target briefly (~$(FUZZTIME) each). The
## target inventory lives in scripts/fuzz_targets.txt (regenerate with
## `make fuzz-list`; `make check` fails if it goes stale). `go test
## -fuzz` accepts exactly one matching target per invocation, so each
## line runs separately.
fuzz-short: fuzz-list-check
	@while read -r pkg target; do \
		echo "$(GO) test $$pkg -fuzz=^$$target\$$ -fuzztime=$(FUZZTIME)"; \
		$(GO) test "$$pkg" -run='^$$' -fuzz="^$$target\$$" -fuzztime=$(FUZZTIME) || exit 1; \
	done <scripts/fuzz_targets.txt

## fuzz-list: regenerate the fuzz-target inventory from `go test -list`.
fuzz-list:
	./scripts/list_fuzz.sh

## fuzz-list-check: fail when scripts/fuzz_targets.txt is stale.
fuzz-list-check:
	./scripts/list_fuzz.sh --check

## serve-smoke: boot mlocd, query it twice via mlocctl, assert the
## second query hits the shared decode cache, validate /metrics,
## /debug/traces, pprof, and the slow-query log, drain gracefully.
serve-smoke:
	./scripts/serve_smoke.sh

## cluster-smoke: boot a router over two data nodes, compare a routed
## query against a direct one, kill a node via fault injection and
## assert a degraded partial result, then validate the router's
## /metrics with mloclint and drain it gracefully.
cluster-smoke:
	./scripts/cluster_smoke.sh

## obslint: promtool-style validation of the metrics exposition and
## trace dumps against an in-process server (cmd/mloclint).
obslint:
	$(GO) run ./cmd/mloclint -selfcheck

## check: everything CI runs (minus the fuzzing).
check: build test vet fuzz-list-check race obslint serve-smoke cluster-smoke
