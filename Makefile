GO ?= go
FUZZTIME ?= 10s

# Packages exercising the goroutine-based SPMD runtime and the
# concurrent query service — the ones where a data race would actually
# bite.
RACE_PKGS = ./internal/mpi ./internal/core ./internal/stage ./internal/cache ./internal/server

.PHONY: build test vet mlocvet race fuzz-short serve-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## vet: go vet plus the repo's own analyzer suite (cmd/mlocvet).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/mlocvet ./...

## mlocvet: just the custom analyzer suite.
mlocvet:
	$(GO) run ./cmd/mlocvet ./...

## race: race-detector pass over the parallel engine packages.
race:
	$(GO) test -race $(RACE_PKGS)

## fuzz-short: run every fuzz target briefly (~$(FUZZTIME) each).
## `go test -fuzz` accepts exactly one matching target per invocation,
## so each target is listed explicitly.
fuzz-short:
	$(GO) test ./internal/compress -run='^$$' -fuzz='^FuzzIsobarDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/compress -run='^$$' -fuzz='^FuzzIsabelaDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/compress -run='^$$' -fuzz='^FuzzFPCDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/compress -run='^$$' -fuzz='^FuzzFPCRoundtrip$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/compress -run='^$$' -fuzz='^FuzzBitUnpack$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^$$' -fuzz='^FuzzMetaUnmarshal$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^$$' -fuzz='^FuzzDecodeOffsets$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/server -run='^$$' -fuzz='^FuzzDecodeRequest$$' -fuzztime=$(FUZZTIME)

## serve-smoke: boot mlocd, query it twice via mlocctl, assert the
## second query hits the shared decode cache, drain gracefully.
serve-smoke:
	./scripts/serve_smoke.sh

## check: everything CI runs (minus the fuzzing).
check: build test vet race serve-smoke
