#!/bin/sh
# list_fuzz.sh — regenerate (or verify) scripts/fuzz_targets.txt, the
# inventory that drives `make fuzz-short`: one "<package> <FuzzTarget>"
# line per fuzz target, discovered with `go test -list '^Fuzz'` so the
# rotation can never silently miss a target.
#
#   ./scripts/list_fuzz.sh          rewrite the inventory
#   ./scripts/list_fuzz.sh --check  fail if the committed inventory is
#                                   stale (used by `make check` and CI)
set -eu
cd "$(dirname "$0")/.."
out=scripts/fuzz_targets.txt
mod=$(go list -m)
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# `go test -list` prints each package's matching names followed by its
# "ok <pkg>" line; attribute the accumulated names to that package.
go test -list '^Fuzz' ./... | awk -v mod="$mod" '
	/^Fuzz/ { names[n++] = $1; next }
	$1 == "ok" {
		pkg = $2
		sub("^" mod, ".", pkg)
		for (i = 0; i < n; i++) print pkg, names[i]
		n = 0
	}
' | sort >"$tmp"

if [ "${1:-}" = "--check" ]; then
	if ! cmp -s "$tmp" "$out"; then
		echo "$out is stale; regenerate it with ./scripts/list_fuzz.sh" >&2
		diff -u "$out" "$tmp" >&2 || true
		exit 1
	fi
	exit 0
fi
mv "$tmp" "$out"
trap - EXIT
echo "wrote $out ($(wc -l <"$out" | tr -d ' ') targets)"
