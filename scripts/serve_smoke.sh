#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the mlocd query service:
# build the binaries, boot mlocd on an ephemeral port over a tiny
# synthetic store, run the same remote query twice through mlocctl,
# check the answers agree, and assert the second run hit the shared
# decode cache. The observability surface is exercised too: /metrics
# and /debug/traces are scraped and validated with mloclint (the
# promtool-style checker — malformed exposition or trace JSON fails
# the smoke), pprof answers behind -pprof, the per-query trace renders
# with rank spans, and the slow-query log fires.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
mlocd_pid=""
cleanup() {
    if [[ -n "$mlocd_pid" ]] && kill -0 "$mlocd_pid" 2>/dev/null; then
        kill "$mlocd_pid" 2>/dev/null || true
        wait "$mlocd_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building binaries"
go build -o "$workdir/mlocd" ./cmd/mlocd
go build -o "$workdir/mlocctl" ./cmd/mlocctl
go build -o "$workdir/mloclint" ./cmd/mloclint

echo "serve-smoke: booting mlocd"
"$workdir/mlocd" -addr 127.0.0.1:0 -store t=gts:64:1 -bins 16 -ranks 2 \
    -pprof -slow-query-threshold 1ns \
    >"$workdir/mlocd.log" 2>&1 &
mlocd_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^mlocd: listening on //p' "$workdir/mlocd.log" | head -n1)
    [[ -n "$addr" ]] && break
    if ! kill -0 "$mlocd_pid" 2>/dev/null; then
        echo "serve-smoke: mlocd died during startup:" >&2
        cat "$workdir/mlocd.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "serve-smoke: mlocd never reported a listen address" >&2
    cat "$workdir/mlocd.log" >&2
    exit 1
fi
echo "serve-smoke: mlocd is up at $addr"

query() {
    "$workdir/mlocctl" query -remote "$addr" -var t \
        -vc=-1e30:1e30 -sc 0:31,0:31 -ranks 2
}

echo "serve-smoke: first query (cold cache)"
query >"$workdir/q1.out"
echo "serve-smoke: second identical query (must hit the cache)"
query >"$workdir/q2.out"

# The match lines must agree exactly; timing lines are virtual-time
# and excluded only because the queue wait differs per run.
grep 'match at' "$workdir/q1.out" >"$workdir/q1.matches"
grep 'match at' "$workdir/q2.out" >"$workdir/q2.matches"
if ! diff -u "$workdir/q1.matches" "$workdir/q2.matches"; then
    echo "serve-smoke: FAIL — repeated query returned different matches" >&2
    exit 1
fi
if [[ ! -s "$workdir/q1.matches" ]]; then
    echo "serve-smoke: FAIL — query returned no matches" >&2
    cat "$workdir/q1.out" >&2
    exit 1
fi

"$workdir/mlocctl" stats -remote "$addr" >"$workdir/stats.out"
cache_hits=$(awk '$1 == "cache_hits" {print $2}' "$workdir/stats.out")
queries_ok=$(awk '$1 == "queries_ok" {print $2}' "$workdir/stats.out")
if [[ "${queries_ok:-0}" -ne 2 ]]; then
    echo "serve-smoke: FAIL — queries_ok=$queries_ok, want 2" >&2
    cat "$workdir/stats.out" >&2
    exit 1
fi
if [[ "${cache_hits:-0}" -le 0 ]]; then
    echo "serve-smoke: FAIL — second identical query produced no cache hits" >&2
    cat "$workdir/stats.out" >&2
    exit 1
fi

echo "serve-smoke: validating /metrics and /debug/traces"
if ! "$workdir/mloclint" -remote "$addr" -pprof; then
    echo "serve-smoke: FAIL — observability surface is malformed" >&2
    exit 1
fi

# The query response names its trace; rendering it must show the
# per-rank span tree.
trace_id=$(sed -n 's/^  trace: \([0-9][0-9]*\).*/\1/p' "$workdir/q1.out" | head -n1)
if [[ -z "$trace_id" ]]; then
    echo "serve-smoke: FAIL — query output carries no trace id" >&2
    cat "$workdir/q1.out" >&2
    exit 1
fi
"$workdir/mlocctl" trace -remote "$addr" -id "$trace_id" >"$workdir/trace.out"
if ! grep -q 'rank' "$workdir/trace.out"; then
    echo "serve-smoke: FAIL — rendered trace $trace_id has no rank spans" >&2
    cat "$workdir/trace.out" >&2
    exit 1
fi

if ! grep -q 'slow query' "$workdir/mlocd.log"; then
    echo "serve-smoke: FAIL — slow-query log never fired at a 1ns threshold" >&2
    cat "$workdir/mlocd.log" >&2
    exit 1
fi

kill -TERM "$mlocd_pid"
wait "$mlocd_pid"
mlocd_pid=""
if ! grep -q 'drained' "$workdir/mlocd.log"; then
    echo "serve-smoke: FAIL — mlocd did not drain gracefully on SIGTERM" >&2
    cat "$workdir/mlocd.log" >&2
    exit 1
fi

echo "serve-smoke: OK ($(wc -l <"$workdir/q1.matches") match lines, cache_hits=$cache_hits)"
