#!/bin/sh
# vet_fast.sh — the PR fast path for the mlocvet gate. A pull request
# rarely touches the analyzer suite, so re-running all twenty analyzers
# over the whole repository on every push to a branch is mostly wasted
# work. This script diffs against a base ref and picks the cheapest
# sound pass:
#
#   1. Shared analyzer infrastructure changed (the driver, the loader,
#      the flow engine, the baseline/SARIF plumbing) — every analyzer's
#      behaviour may have changed, so run the full suite over the full
#      repository, exactly like `make mlocvet`.
#   2. Individual analyzer files changed — run just those analyzers
#      (by their registered names) over the full repository.
#   3. Only non-lint Go code changed — run the full suite, but only
#      over the packages containing changed files (plus their test
#      fixtures never matter: testdata is excluded by the loader).
#   4. No Go code changed — nothing to vet.
#
# `make check` and the push workflow still run the full suite; this is
# strictly a PR-latency optimization, never the gate of record.
#
#   BASE_REF=origin/main ./scripts/vet_fast.sh   (default origin/main,
#                                                 falling back to HEAD~1)
set -eu
cd "$(dirname "$0")/.."

base=${BASE_REF:-origin/main}
if ! git rev-parse --verify --quiet "$base" >/dev/null; then
	base=HEAD~1
fi
if ! git rev-parse --verify --quiet "$base" >/dev/null; then
	echo "vet-fast: no usable base ref; running the full suite" >&2
	exec go run ./cmd/mlocvet -baseline mlocvet-baseline.json ./...
fi

# Changed files: committed relative to the merge base, plus anything
# dirty in the working tree (a developer runs this before committing).
changed=$( (git diff --name-only "$base"...HEAD 2>/dev/null || git diff --name-only "$base" HEAD; git diff --name-only HEAD) | sort -u)

go_changed=$(printf '%s\n' "$changed" | grep '\.go$' || true)
if [ -z "$go_changed" ] && ! printf '%s\n' "$changed" | grep -q '^go\.mod$'; then
	echo "vet-fast: no Go changes against $base; skipping the analyzer pass"
	exit 0
fi

# Shared infrastructure: a change here can alter any analyzer's
# behaviour, so the subset optimization would be unsound.
if printf '%s\n' "$changed" | grep -Eq '^(go\.mod|cmd/mlocvet/|internal/lint/flow/|internal/lint/(lint|load|baseline|sarif)\.go)'; then
	echo "vet-fast: analyzer infrastructure changed; running the full suite"
	exec go run ./cmd/mlocvet -baseline mlocvet-baseline.json ./...
fi

# Analyzer implementation files: run exactly the analyzers whose
# registered names appear in the changed files, over the whole repo
# (their findings are cross-package).
lint_changed=$(printf '%s\n' "$go_changed" | grep '^internal/lint/[^/]*\.go$' | grep -v '_test\.go$' || true)
if [ -n "$lint_changed" ]; then
	names=$(printf '%s\n' "$lint_changed" | while read -r f; do
		[ -f "$f" ] && sed -n 's/.*Name:[[:space:]]*"\([a-z-]*\)".*/\1/p' "$f"
	done | sort -u | paste -sd, -)
	if [ -z "$names" ]; then
		echo "vet-fast: lint helpers changed without a registered analyzer; running the full suite"
		exec go run ./cmd/mlocvet -baseline mlocvet-baseline.json ./...
	fi
	echo "vet-fast: analyzers changed; running only: $names"
	exec go run ./cmd/mlocvet -only "$names" -baseline mlocvet-baseline.json ./...
fi

# Plain code change: full suite, changed packages only.
dirs=$(printf '%s\n' "$go_changed" | grep -v '/testdata/' | xargs -r -n1 dirname | sort -u | while read -r d; do
	[ -d "$d" ] && printf './%s\n' "$d"
done | paste -sd' ' -)
if [ -z "$dirs" ]; then
	echo "vet-fast: changed Go files no longer exist; skipping the analyzer pass"
	exit 0
fi
echo "vet-fast: running the full suite over changed packages: $dirs"
# shellcheck disable=SC2086
exec go run ./cmd/mlocvet -baseline mlocvet-baseline.json $dirs
