#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of the sharded cluster:
# boot two mlocd data nodes with identical store specs plus a router
# in front of them (replication 1 so every shard has exactly one
# owner), check a routed query matches a direct single-node answer,
# then kill one data node through its fault injector and assert the
# router degrades to a partial result instead of failing. Distributed
# tracing is exercised end to end: the routed query's trace on the
# router must contain the data nodes' grafted span subtrees (node=
# attrs, decode spans) with the root's virtual time matching the
# reported query latency, and both the router's and a data node's
# /debug/querylog must record the query. The router's observability
# surface (/metrics incl. SLO counters + /debug/traces) is validated
# with mloclint, the topology renders via `mlocctl cluster nodes`, and
# the router drains gracefully on SIGTERM.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "cluster-smoke: building binaries"
go build -o "$workdir/mlocd" ./cmd/mlocd
go build -o "$workdir/mlocctl" ./cmd/mlocctl
go build -o "$workdir/mloclint" ./cmd/mloclint

# wait_addr LOGFILE PID — echo the daemon's listen address.
wait_addr() {
    local log=$1 pid=$2 addr=""
    for _ in $(seq 1 150); do
        addr=$(sed -n 's/^mlocd: listening on //p' "$log" | head -n1)
        [[ -n "$addr" ]] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "cluster-smoke: daemon died during startup:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "cluster-smoke: daemon never reported a listen address" >&2
        cat "$log" >&2
        exit 1
    fi
    echo "$addr"
}

store_flags=(-store t=gts:64:1 -bins 16 -ranks 2)

echo "cluster-smoke: booting 2 data nodes"
"$workdir/mlocd" -addr 127.0.0.1:0 "${store_flags[@]}" >"$workdir/node1.log" 2>&1 &
node1_pid=$!; pids+=("$node1_pid")
"$workdir/mlocd" -addr 127.0.0.1:0 "${store_flags[@]}" >"$workdir/node2.log" 2>&1 &
node2_pid=$!; pids+=("$node2_pid")
node1=$(wait_addr "$workdir/node1.log" "$node1_pid")
node2=$(wait_addr "$workdir/node2.log" "$node2_pid")
echo "cluster-smoke: data nodes up at $node1 and $node2"

echo "cluster-smoke: booting the router (replication 1)"
"$workdir/mlocd" -role router -addr 127.0.0.1:0 \
    -node "$node1" -node "$node2" \
    -replication 1 -slabs-per-var 16 -hedge-after 0 \
    -health-interval 200ms -shard-timeout 5s \
    >"$workdir/router.log" 2>&1 &
router_pid=$!; pids+=("$router_pid")
router=$(wait_addr "$workdir/router.log" "$router_pid")
echo "cluster-smoke: router up at $router"

query() {
    "$workdir/mlocctl" query -remote "$1" -var t \
        -vc=-1e30:1e30 -sc 0:63,0:63 -ranks 2 -print 100000
}

echo "cluster-smoke: routed query vs direct single-node query"
query "$router" >"$workdir/routed.out"
query "$node1" >"$workdir/direct.out"
grep 'match at' "$workdir/routed.out" >"$workdir/routed.matches"
grep 'match at' "$workdir/direct.out" >"$workdir/direct.matches"
if ! diff -u "$workdir/direct.matches" "$workdir/routed.matches"; then
    echo "cluster-smoke: FAIL — routed matches diverge from a single node" >&2
    exit 1
fi
if [[ ! -s "$workdir/routed.matches" ]]; then
    echo "cluster-smoke: FAIL — routed query returned no matches" >&2
    cat "$workdir/routed.out" >&2
    exit 1
fi
if grep -q 'degraded' "$workdir/routed.out"; then
    echo "cluster-smoke: FAIL — healthy cluster answered degraded" >&2
    cat "$workdir/routed.out" >&2
    exit 1
fi

echo "cluster-smoke: routed index-only query reports pruning stats"
"$workdir/mlocctl" query -remote "$router" -var t \
    -vc=-1e30:0 -index-only -ranks 2 -print 0 >"$workdir/pruned.out"
if ! grep -q 'pruning: .* bins pruned' "$workdir/pruned.out"; then
    echo "cluster-smoke: FAIL — routed query reported no hierarchical pruning" >&2
    cat "$workdir/pruned.out" >&2
    exit 1
fi

echo "cluster-smoke: cross-node trace grafting on the router"
trace_id=$(sed -n 's/.*trace: \([0-9][0-9]*\) .*/\1/p' "$workdir/routed.out" | head -n1)
if [[ -z "$trace_id" ]]; then
    echo "cluster-smoke: FAIL — routed query reported no trace id" >&2
    cat "$workdir/routed.out" >&2
    exit 1
fi
"$workdir/mlocctl" trace -remote "$router" -id "$trace_id" >"$workdir/trace.out"
if ! grep -q 'decode' "$workdir/trace.out"; then
    echo "cluster-smoke: FAIL — router trace carries no grafted decode span" >&2
    cat "$workdir/trace.out" >&2
    exit 1
fi
for node in "$node1" "$node2"; do
    if ! grep -q "node=$node" "$workdir/trace.out"; then
        echo "cluster-smoke: FAIL — router trace has no subtree grafted from $node" >&2
        cat "$workdir/trace.out" >&2
        exit 1
    fi
done
reported=$(sed -n 's/.*total \([0-9.][0-9.]*\)s (virtual).*/\1/p' "$workdir/routed.out" | head -n1)
root_virt=$(awk '/^  route / { for (i=1;i<NF;i++) if ($i=="virt") { sub(/s$/,"",$(i+1)); print $(i+1); exit } }' "$workdir/trace.out")
if [[ -z "$reported" || -z "$root_virt" ]]; then
    echo "cluster-smoke: FAIL — could not extract virtual times (reported='$reported', root='$root_virt')" >&2
    cat "$workdir/trace.out" >&2
    exit 1
fi
if ! awk -v a="$reported" -v b="$root_virt" 'BEGIN { d=a-b; if (d<0) d=-d; exit !(d <= 0.001) }'; then
    echo "cluster-smoke: FAIL — trace root virt ${root_virt}s != reported query latency ${reported}s" >&2
    cat "$workdir/trace.out" >&2
    exit 1
fi

echo "cluster-smoke: query log records the query on router and data node"
"$workdir/mlocctl" querylog -remote "$router" >"$workdir/qlog_router.out"
if ! grep -q 'var=t' "$workdir/qlog_router.out"; then
    echo "cluster-smoke: FAIL — router query log has no record for var t" >&2
    cat "$workdir/qlog_router.out" >&2
    exit 1
fi
if ! grep -q "trace=$trace_id" "$workdir/qlog_router.out"; then
    echo "cluster-smoke: FAIL — router query log record lacks trace id $trace_id" >&2
    cat "$workdir/qlog_router.out" >&2
    exit 1
fi
"$workdir/mlocctl" querylog -remote "$node1" >"$workdir/qlog_node.out"
if ! grep -q 'var=t' "$workdir/qlog_node.out"; then
    echo "cluster-smoke: FAIL — data-node query log has no record for var t" >&2
    cat "$workdir/qlog_node.out" >&2
    exit 1
fi

echo "cluster-smoke: topology via mlocctl cluster nodes"
"$workdir/mlocctl" cluster nodes -remote "$router" >"$workdir/topo.out"
if ! grep -q 'replication 1' "$workdir/topo.out"; then
    echo "cluster-smoke: FAIL — topology missing replication factor" >&2
    cat "$workdir/topo.out" >&2
    exit 1
fi

echo "cluster-smoke: killing $node2 via fault injection"
"$workdir/mlocctl" cluster fault -remote "$node2" -mode kill

echo "cluster-smoke: degraded partial result from the surviving node"
query "$router" >"$workdir/partial.out" || {
    echo "cluster-smoke: FAIL — query errored instead of degrading" >&2
    cat "$workdir/partial.out" >&2
    exit 1
}
if ! grep -q 'degraded: PARTIAL RESULT' "$workdir/partial.out"; then
    echo "cluster-smoke: FAIL — killed node did not degrade the result" >&2
    cat "$workdir/partial.out" >&2
    exit 1
fi
grep 'match at' "$workdir/partial.out" >"$workdir/partial.matches" || true
if [[ ! -s "$workdir/partial.matches" ]]; then
    echo "cluster-smoke: FAIL — degraded result carries no surviving matches" >&2
    cat "$workdir/partial.out" >&2
    exit 1
fi
full=$(wc -l <"$workdir/routed.matches")
part=$(wc -l <"$workdir/partial.matches")
if [[ "$part" -ge "$full" ]]; then
    echo "cluster-smoke: FAIL — partial result ($part matches) is not a strict subset of the full answer ($full)" >&2
    exit 1
fi

echo "cluster-smoke: reviving $node2 and verifying failback"
"$workdir/mlocctl" cluster fault -remote "$node2" -mode off
sleep 0.5  # let a health probe observe the revival
query "$router" >"$workdir/revived.out"
if grep -q 'degraded' "$workdir/revived.out"; then
    echo "cluster-smoke: FAIL — revived node still degrades the result" >&2
    cat "$workdir/revived.out" >&2
    exit 1
fi

echo "cluster-smoke: validating router /metrics and /debug/traces"
if ! "$workdir/mloclint" -remote "$router" | tee "$workdir/lint.out"; then
    echo "cluster-smoke: FAIL — router observability surface is malformed" >&2
    exit 1
fi
if ! grep -q 'slo ok' "$workdir/lint.out"; then
    echo "cluster-smoke: FAIL — router /metrics exposes no SLO counter families" >&2
    cat "$workdir/lint.out" >&2
    exit 1
fi
"$workdir/mlocctl" stats -remote "$router" >"$workdir/stats.out"
degraded=$(awk '$1 == "queries_degraded" {print $2}' "$workdir/stats.out")
if [[ "${degraded:-0}" -lt 1 ]]; then
    echo "cluster-smoke: FAIL — router stats show no degraded query" >&2
    cat "$workdir/stats.out" >&2
    exit 1
fi

kill -TERM "$router_pid"
wait "$router_pid"
if ! grep -q 'drained' "$workdir/router.log"; then
    echo "cluster-smoke: FAIL — router did not drain gracefully on SIGTERM" >&2
    cat "$workdir/router.log" >&2
    exit 1
fi

echo "cluster-smoke: OK (full=$full matches, partial=$part, degraded queries=$degraded)"
