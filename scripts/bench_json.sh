#!/bin/sh
# bench_json.sh — run BenchmarkBuildParallel and distill its output into
# BENCH_build.json, the recorded build-bench trajectory: per mode and
# worker count, wall ns/op, allocs/op, B/op, the virtual-clock build
# time (virt-s/op), and both speedups relative to the 1-worker run of
# the same mode. BenchmarkObsOverhead (query path traced vs untraced)
# rides along as an "obs_overhead" section, so the cost of tracing is
# part of the recorded trajectory; BenchmarkDistTraceOverhead (a routed
# two-node query with remote span propagation off vs on) as a
# "dist_trace_overhead" section, so the distributed-tracing tax is too;
# and BenchmarkMlocvetRepo (one full static-analysis pass over the
# repository) as a "vet_repo" section, so the analyzer gate's CI cost
# is too. CI uploads the file as an
# artifact; the committed copy is the checkpoint the next optimization
# PR measures against.
#
#   ./scripts/bench_json.sh [output.json]   (default BENCH_build.json)
#   ./scripts/bench_json.sh query [out]     query-latency mode (default
#                                           BENCH_query.json): distills
#                                           BenchmarkQueryLatency — flat
#                                           vs hierarchical index across
#                                           selectivities and codecs —
#                                           with hier speedup vs the
#                                           flat scan per cell
#   BENCHTIME=10x ./scripts/bench_json.sh   longer runs for stabler numbers
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "query" ]; then
	out=${2:-BENCH_query.json}
	benchtime=${BENCHTIME:-3x}
	raw=$(mktemp)
	trap 'rm -f "$raw"' EXIT
	go test . -run '^$' -bench '^BenchmarkQueryLatency$' \
		-benchmem -benchtime "$benchtime" | tee "$raw"

	# Result lines look like
	#   BenchmarkQueryLatency/hier/planes/sel=10%-8  2  1649274 ns/op \
	#       101.0 bins-covered/op  921.0 bins-pruned/op  0.03972 virt-s/op \
	#       728776 B/op  1094 allocs/op
	awk -v benchtime="$benchtime" -v goversion="$(go env GOVERSION)" '
	/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
	/^BenchmarkQueryLatency\// {
		split($1, parts, "/")
		idx = parts[2]
		codec = parts[3]
		sel = parts[4]
		sub(/-[0-9]+$/, "", sel)
		ns = allocs = bytes = virt = pruned = covered = 0
		for (i = 2; i < NF; i++) {
			if ($(i + 1) == "ns/op") ns = $i
			else if ($(i + 1) == "allocs/op") allocs = $i
			else if ($(i + 1) == "B/op") bytes = $i
			else if ($(i + 1) == "virt-s/op") virt = $i
			else if ($(i + 1) == "bins-pruned/op") pruned = $i
			else if ($(i + 1) == "bins-covered/op") covered = $i
		}
		if (idx == "flat") flatVirt[codec "/" sel] = virt
		n++
		ridx[n] = idx; rcodec[n] = codec; rsel[n] = sel
		rns[n] = ns; rallocs[n] = allocs; rbytes[n] = bytes
		rvirt[n] = virt; rpruned[n] = pruned; rcovered[n] = covered
	}
	END {
		if (n == 0) { print "bench_json: no query results parsed" > "/dev/stderr"; exit 1 }
		printf "{\n"
		printf "  \"benchmark\": \"BenchmarkQueryLatency\",\n"
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"go\": \"%s\",\n", goversion
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"query_latency\": [\n"
		for (i = 1; i <= n; i++) {
			fv = flatVirt[rcodec[i] "/" rsel[i]]
			sp = (fv > 0 && rvirt[i] > 0) ? fv / rvirt[i] : 0
			printf "    {\"index\": \"%s\", \"codec\": \"%s\", \"sel\": \"%s\", \"ns_op\": %.0f, \"allocs_op\": %.0f, \"bytes_op\": %.0f, \"virt_s_op\": %g, \"bins_pruned\": %.0f, \"bins_covered\": %.0f, \"speedup_vs_flat\": %.3f}%s\n", \
				ridx[i], rcodec[i], rsel[i], rns[i], rallocs[i], rbytes[i], rvirt[i], rpruned[i], rcovered[i], sp, (i < n ? "," : "")
		}
		printf "  ]\n"
		printf "}\n"
	}
	' "$raw" >"$out"
	echo "wrote $out"
	exit 0
fi

out=${1:-BENCH_build.json}
benchtime=${BENCHTIME:-5x}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test ./internal/core -run '^$' -bench '^(BenchmarkBuildParallel|BenchmarkObsOverhead)$' \
	-benchmem -benchtime "$benchtime" | tee "$raw"
# The routed benchmark boots a two-node cluster per run; a few
# iterations dominate the HTTP noise without dragging the gate.
go test ./internal/cluster/router -run '^$' -bench '^BenchmarkDistTraceOverhead$' \
	-benchmem -benchtime "$benchtime" | tee -a "$raw"
# The vet pass is seconds per op; one iteration is enough signal.
go test ./cmd/mlocvet -run '^$' -bench '^BenchmarkMlocvetRepo$' \
	-benchmem -benchtime 1x | tee -a "$raw"

# Each result line looks like
#   BenchmarkBuildParallel/planes/w=4-8  3  50046548 ns/op  10.48 MB/s \
#       0.02391 virt-s/op  6950792 B/op  28584 allocs/op
# (the trailing -8 is GOMAXPROCS and only appears when it isn't 1).
# Scan for the unit tokens rather than hard-coding field positions.
awk -v benchtime="$benchtime" -v goversion="$(go env GOVERSION)" '
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
/^BenchmarkBuildParallel\// {
	split($1, parts, "/")
	mode = parts[2]
	workers = parts[3]
	sub(/-[0-9]+$/, "", workers)
	ns = allocs = bytes = virt = 0
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		else if ($(i + 1) == "allocs/op") allocs = $i
		else if ($(i + 1) == "B/op") bytes = $i
		else if ($(i + 1) == "virt-s/op") virt = $i
	}
	if (workers == "w=1") { baseNs[mode] = ns; baseVirt[mode] = virt }
	n++
	rmode[n] = mode; rworkers[n] = workers
	rns[n] = ns; rallocs[n] = allocs; rbytes[n] = bytes; rvirt[n] = virt
}
/^BenchmarkObsOverhead\// {
	split($1, parts, "/")
	tracing = parts[2]
	sub(/-[0-9]+$/, "", tracing)
	ns = allocs = bytes = 0
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		else if ($(i + 1) == "allocs/op") allocs = $i
		else if ($(i + 1) == "B/op") bytes = $i
	}
	on++
	omode[on] = tracing; ons[on] = ns; oallocs[on] = allocs; obytes[on] = bytes
	if (tracing == "off") offNs = ns
}
/^BenchmarkDistTraceOverhead\// {
	split($1, parts, "/")
	prop = parts[2]
	sub(/-[0-9]+$/, "", prop)
	ns = allocs = bytes = 0
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		else if ($(i + 1) == "allocs/op") allocs = $i
		else if ($(i + 1) == "B/op") bytes = $i
	}
	dn++
	dmode[dn] = prop; dns[dn] = ns; dallocs[dn] = allocs; dbytes[dn] = bytes
	if (prop == "off") dOffNs = ns
}
/^BenchmarkMlocvetRepo/ {
	vns = vallocs = vbytes = vanalyzers = 0
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") vns = $i
		else if ($(i + 1) == "allocs/op") vallocs = $i
		else if ($(i + 1) == "B/op") vbytes = $i
		else if ($(i + 1) == "analyzers/op") vanalyzers = $i
	}
	haveVet = 1
}
END {
	if (n == 0) { print "bench_json: no benchmark results parsed" > "/dev/stderr"; exit 1 }
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkBuildParallel\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"results\": [\n"
	for (i = 1; i <= n; i++) {
		m = rmode[i]
		ws = (baseNs[m] > 0 && rns[i] > 0) ? baseNs[m] / rns[i] : 0
		vs = (baseVirt[m] > 0 && rvirt[i] > 0) ? baseVirt[m] / rvirt[i] : 0
		# w=max oversubscribes the pool past the chunk-plane count, so
		# its speedup routinely collapses below w=4; annotate the row
		# so the trajectory is not misread as a regression (see
		# DESIGN.md, "MeasureSection serialization under w=max").
		note = (rworkers[i] == "w=max") ? ", \"note\": \"oversubscribed: w exceeds independent chunk planes; MeasureSection serializes the excess workers, so sub-w=4 speedup here is expected, not a regression\"" : ""
		printf "    {\"mode\": \"%s\", \"workers\": \"%s\", \"ns_op\": %d, \"allocs_op\": %d, \"bytes_op\": %d, \"virt_s_op\": %g, \"wall_speedup\": %.3f, \"virt_speedup\": %.3f%s}%s\n", \
			m, rworkers[i], rns[i], rallocs[i], rbytes[i], rvirt[i], ws, vs, note, (i < n ? "," : "")
	}
	printf "  ],\n"
	printf "  \"obs_overhead\": [\n"
	for (i = 1; i <= on; i++) {
		ratio = (offNs > 0 && ons[i] > 0) ? ons[i] / offNs : 0
		printf "    {\"tracing\": \"%s\", \"ns_op\": %d, \"allocs_op\": %d, \"bytes_op\": %d, \"vs_off\": %.3f}%s\n", \
			omode[i], ons[i], oallocs[i], obytes[i], ratio, (i < on ? "," : "")
	}
	printf "  ],\n"
	printf "  \"dist_trace_overhead\": [\n"
	for (i = 1; i <= dn; i++) {
		ratio = (dOffNs > 0 && dns[i] > 0) ? dns[i] / dOffNs : 0
		printf "    {\"propagation\": \"%s\", \"ns_op\": %.0f, \"allocs_op\": %.0f, \"bytes_op\": %.0f, \"vs_off\": %.3f}%s\n", \
			dmode[i], dns[i], dallocs[i], dbytes[i], ratio, (i < dn ? "," : "")
	}
	printf "  ],\n"
	printf "  \"vet_repo\": "
	if (haveVet) {
		# %.0f: the pass is seconds, and ns counts overflow %d in
		# 32-bit awks.
		printf "{\"ns_op\": %.0f, \"allocs_op\": %.0f, \"bytes_op\": %.0f, \"analyzers\": %.0f}\n", \
			vns, vallocs, vbytes, vanalyzers
	} else {
		printf "null\n"
	}
	printf "}\n"
}
' "$raw" >"$out"
echo "wrote $out"
