// Package mloc is a from-scratch Go reproduction of "MLOC: Multi-level
// Layout Optimization Framework for Compressed Scientific Data
// Exploration with Heterogeneous Access Patterns" (Gong et al., ICPP
// 2012).
//
// The implementation lives under internal/: the MLOC core
// (internal/core), its substrates (space-filling curves, binning, PLoD
// byte planes, compression codecs, a simulated Lustre-like parallel
// file system, an MPI-style runtime), the paper's comparators
// (internal/fastbit, internal/scidb, internal/seqscan), and the
// experiment harness (internal/experiments) that regenerates every
// table and figure of the paper's evaluation. See README.md, DESIGN.md
// and EXPERIMENTS.md at the repository root, the runnable programs
// under cmd/ and examples/, and bench_test.go for the benchmark entry
// points.
package mloc
