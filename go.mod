module mloc

go 1.22
