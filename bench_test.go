package mloc

// Benchmark harness: one benchmark per paper table/figure plus the
// DESIGN.md §5 ablations. Each benchmark regenerates its experiment via
// internal/experiments and reports the headline numbers as custom
// metrics, so `go test -bench=.` reproduces the paper's evaluation
// end-to-end. Wall-clock per op is the harness cost (building stores +
// running queries on scaled data); the scientific results are the
// reported metrics and the tables printed by cmd/benchtables.

import (
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"

	"mloc/internal/binning"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/experiments"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

// benchParams keeps per-iteration cost bounded: 2 random queries per
// cell, 8 ranks (the paper's small-scale rank count).
func benchParams() experiments.Params {
	return experiments.Params{Queries: 2, Ranks: 8, Seed: 1}
}

// metric extracts the leading float from a table cell (e.g. "0.53" or
// "6.50 MB" or "1.234%").
func metric(tab *experiments.TableResult, rowPrefix, col string) (float64, bool) {
	ci := -1
	for i, h := range tab.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], rowPrefix) {
			f := strings.Fields(row[ci])
			if len(f) == 0 {
				return 0, false
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(f[0], "%"), 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

func report(b *testing.B, tab *experiments.TableResult, rowPrefix, col, unit string) {
	b.Helper()
	if v, ok := metric(tab, rowPrefix, col); ok {
		name := strings.ReplaceAll(rowPrefix, " ", "_") + "_" + strings.ReplaceAll(col, " ", "_") + "_" + unit
		b.ReportMetric(v, name)
	}
}

func BenchmarkTable1Storage(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table1(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-COL", "Total/raw", "ratio")
		report(b, tab, "MLOC-ISA", "Total/raw", "ratio")
		report(b, tab, "FastBit", "Total/raw", "ratio")
	}
}

func BenchmarkTable2RegionQuery(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table2(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-COL", "1% GTS", "sec")
		report(b, tab, "Seq. Scan", "1% GTS", "sec")
		report(b, tab, "FastBit", "1% GTS", "sec")
		report(b, tab, "SciDB", "1% GTS", "sec")
	}
}

func BenchmarkTable3ValueQuery(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table3(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-ISA", "0.1% GTS", "sec")
		report(b, tab, "Seq. Scan", "0.1% GTS", "sec")
		report(b, tab, "FastBit", "0.1% GTS", "sec")
	}
}

func BenchmarkTable4RegionQueryLarge(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table4(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-COL", "1% GTS", "sec")
		report(b, tab, "Seq. Scan", "1% GTS", "sec")
	}
}

func BenchmarkTable5ValueQueryLarge(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table5(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-ISO", "0.1% GTS", "sec")
		report(b, tab, "Seq. Scan", "0.1% GTS", "sec")
	}
}

func BenchmarkTable6Accuracy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table6(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "2", "Hist vu", "pct")
		report(b, tab, "3", "Hist vu", "pct")
		report(b, tab, "4", "Hist vu", "pct")
	}
}

func BenchmarkTable7Orders(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table7(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "V-M-S", "3-byte PLoD access", "sec")
		report(b, tab, "V-S-M", "3-byte PLoD access", "sec")
		report(b, tab, "V-M-S", "Full-precision access", "sec")
		report(b, tab, "V-S-M", "Full-precision access", "sec")
	}
}

func BenchmarkFigure6Components(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure6(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-ISA", "I/O", "sec")
		report(b, tab, "MLOC-ISA", "Decompress", "sec")
		report(b, tab, "Seq. Scan", "I/O", "sec")
	}
}

func BenchmarkFigure7Scalability(b *testing.B) {
	p := benchParams()
	p.Queries = 1
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure7(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "8", "Total", "sec")
		report(b, tab, "128", "Total", "sec")
	}
}

func BenchmarkFigure8PLoD(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure8(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "level 2", "Total", "sec")
		report(b, tab, "full", "Total", "sec")
	}
}

func BenchmarkAblationBinningStrategy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationBinning(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "equal-frequency", "Max/mean bin size", "ratio")
		report(b, tab, "equal-width", "Max/mean bin size", "ratio")
	}
}

func BenchmarkAblationCurve(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationCurve(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "hilbert", "Query time (s)", "sec")
		report(b, tab, "rowmajor", "Query time (s)", "sec")
	}
}

func BenchmarkAblationAssignment(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationAssignment(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "column", "Query time (s)", "sec")
		report(b, tab, "roundrobin", "Query time (s)", "sec")
	}
}

func BenchmarkAblationPLoDFill(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationPLoDFill(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "3", "Centered 0x7F/0xFF", "pct")
		report(b, tab, "3", "Zero fill", "pct")
	}
}

func BenchmarkExtensionMultires(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.ExtensionMultires(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "PLoD", "Fraction", "frac")
		report(b, tab, "Subset", "Fraction", "frac")
	}
}

func BenchmarkAblationFileOrg(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationFileOrg(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "100 bins", "Opens/query", "opens")
		report(b, tab, "1 bin", "Opens/query", "opens")
	}
}

// queryLatencyBaseline loads the committed BENCH_query.json checkpoint:
// a map from "index/codec/sel" to the recorded virtual-clock latency.
// Empty when the file is absent (first recording run).
func queryLatencyBaseline() map[string]float64 {
	data, err := os.ReadFile("BENCH_query.json")
	if err != nil {
		return nil
	}
	var doc struct {
		QueryLatency []struct {
			Index   string  `json:"index"`
			Codec   string  `json:"codec"`
			Sel     string  `json:"sel"`
			VirtSOp float64 `json:"virt_s_op"`
		} `json:"query_latency"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil
	}
	out := make(map[string]float64, len(doc.QueryLatency))
	for _, r := range doc.QueryLatency {
		out[r.Index+"/"+r.Codec+"/"+r.Sel] = r.VirtSOp
	}
	return out
}

// BenchmarkQueryLatency is the committed query-latency trajectory:
// flat vs hierarchical index across VC selectivities and codecs, on
// index-only range queries over a 256x256 GTS field with 256 bins.
// The headline metric is virt-s/op — the virtual-clock latency of the
// slowest rank, deterministic across hosts — which
// scripts/bench_json.sh distills into BENCH_query.json. The committed
// checkpoint doubles as a regression gate: a run whose virtual latency
// exceeds 2x the recorded value fails, mirroring the vet_repo budget
// in BENCH_build.json.
func BenchmarkQueryLatency(b *testing.B) {
	const side, bins, ranks = 256, 1024, 4
	d := datagen.GTSLike(side, side, 11)
	v, _ := d.Var("phi")
	data, shape := v.Data, d.Shape

	codecs := []struct {
		name string
		cfg  core.Config
	}{
		{"planes", core.DefaultConfig([]int{16, 16})},
		{"isobar", core.ISOConfig([]int{16, 16})},
	}
	sels := []struct {
		name string
		frac float64
	}{
		{"sel=1%", 0.01},
		{"sel=10%", 0.10},
		{"sel=50%", 0.50},
	}
	baseline := queryLatencyBaseline()

	for _, c := range codecs {
		cfg := c.cfg
		cfg.NumBins = bins
		cfg.SampleSize = 1 << 16
		fs := pfs.New(pfs.DefaultConfig())
		flat, err := core.Build(fs, pfs.NewClock(), "bq/"+c.name+"/flat", shape, data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		hcfg := cfg
		hcfg.HierarchicalIndex = true
		hier, err := core.Build(fs, pfs.NewClock(), "bq/"+c.name+"/hier", shape, data, hcfg)
		if err != nil {
			b.Fatal(err)
		}
		stores := []struct {
			name string
			st   *core.Store
		}{{"flat", flat}, {"hier", hier}}
		for _, s := range stores {
			for _, sel := range sels {
				lo, hi := datagen.Selectivity(data, sel.frac, 17, 4096)
				req := &query.Request{
					VC:        &binning.ValueConstraint{Min: lo, Max: hi},
					IndexOnly: true,
				}
				b.Run(s.name+"/"+c.name+"/"+sel.name, func(b *testing.B) {
					b.ReportAllocs()
					var virt float64
					var pruned, covered int
					for i := 0; i < b.N; i++ {
						res, err := s.st.Query(req, ranks)
						if err != nil {
							b.Fatal(err)
						}
						virt += res.Time.Total()
						pruned, covered = res.BinsPruned, res.BinsCovered
					}
					virtOp := virt / float64(b.N)
					b.ReportMetric(virtOp, "virt-s/op")
					b.ReportMetric(float64(pruned), "bins-pruned/op")
					b.ReportMetric(float64(covered), "bins-covered/op")
					key := s.name + "/" + c.name + "/" + sel.name
					if base, ok := baseline[key]; ok && base > 0 && virtOp > 2*base {
						b.Fatalf("virtual latency %.6fs exceeds 2x the committed %.6fs (BENCH_query.json %s)",
							virtOp, base, key)
					}
				})
			}
		}
	}
}
