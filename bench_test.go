package mloc

// Benchmark harness: one benchmark per paper table/figure plus the
// DESIGN.md §5 ablations. Each benchmark regenerates its experiment via
// internal/experiments and reports the headline numbers as custom
// metrics, so `go test -bench=.` reproduces the paper's evaluation
// end-to-end. Wall-clock per op is the harness cost (building stores +
// running queries on scaled data); the scientific results are the
// reported metrics and the tables printed by cmd/benchtables.

import (
	"strconv"
	"strings"
	"testing"

	"mloc/internal/experiments"
)

// benchParams keeps per-iteration cost bounded: 2 random queries per
// cell, 8 ranks (the paper's small-scale rank count).
func benchParams() experiments.Params {
	return experiments.Params{Queries: 2, Ranks: 8, Seed: 1}
}

// metric extracts the leading float from a table cell (e.g. "0.53" or
// "6.50 MB" or "1.234%").
func metric(tab *experiments.TableResult, rowPrefix, col string) (float64, bool) {
	ci := -1
	for i, h := range tab.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], rowPrefix) {
			f := strings.Fields(row[ci])
			if len(f) == 0 {
				return 0, false
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(f[0], "%"), 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

func report(b *testing.B, tab *experiments.TableResult, rowPrefix, col, unit string) {
	b.Helper()
	if v, ok := metric(tab, rowPrefix, col); ok {
		name := strings.ReplaceAll(rowPrefix, " ", "_") + "_" + strings.ReplaceAll(col, " ", "_") + "_" + unit
		b.ReportMetric(v, name)
	}
}

func BenchmarkTable1Storage(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table1(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-COL", "Total/raw", "ratio")
		report(b, tab, "MLOC-ISA", "Total/raw", "ratio")
		report(b, tab, "FastBit", "Total/raw", "ratio")
	}
}

func BenchmarkTable2RegionQuery(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table2(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-COL", "1% GTS", "sec")
		report(b, tab, "Seq. Scan", "1% GTS", "sec")
		report(b, tab, "FastBit", "1% GTS", "sec")
		report(b, tab, "SciDB", "1% GTS", "sec")
	}
}

func BenchmarkTable3ValueQuery(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table3(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-ISA", "0.1% GTS", "sec")
		report(b, tab, "Seq. Scan", "0.1% GTS", "sec")
		report(b, tab, "FastBit", "0.1% GTS", "sec")
	}
}

func BenchmarkTable4RegionQueryLarge(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table4(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-COL", "1% GTS", "sec")
		report(b, tab, "Seq. Scan", "1% GTS", "sec")
	}
}

func BenchmarkTable5ValueQueryLarge(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table5(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-ISO", "0.1% GTS", "sec")
		report(b, tab, "Seq. Scan", "0.1% GTS", "sec")
	}
}

func BenchmarkTable6Accuracy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table6(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "2", "Hist vu", "pct")
		report(b, tab, "3", "Hist vu", "pct")
		report(b, tab, "4", "Hist vu", "pct")
	}
}

func BenchmarkTable7Orders(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table7(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "V-M-S", "3-byte PLoD access", "sec")
		report(b, tab, "V-S-M", "3-byte PLoD access", "sec")
		report(b, tab, "V-M-S", "Full-precision access", "sec")
		report(b, tab, "V-S-M", "Full-precision access", "sec")
	}
}

func BenchmarkFigure6Components(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure6(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "MLOC-ISA", "I/O", "sec")
		report(b, tab, "MLOC-ISA", "Decompress", "sec")
		report(b, tab, "Seq. Scan", "I/O", "sec")
	}
}

func BenchmarkFigure7Scalability(b *testing.B) {
	p := benchParams()
	p.Queries = 1
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure7(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "8", "Total", "sec")
		report(b, tab, "128", "Total", "sec")
	}
}

func BenchmarkFigure8PLoD(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure8(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "level 2", "Total", "sec")
		report(b, tab, "full", "Total", "sec")
	}
}

func BenchmarkAblationBinningStrategy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationBinning(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "equal-frequency", "Max/mean bin size", "ratio")
		report(b, tab, "equal-width", "Max/mean bin size", "ratio")
	}
}

func BenchmarkAblationCurve(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationCurve(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "hilbert", "Query time (s)", "sec")
		report(b, tab, "rowmajor", "Query time (s)", "sec")
	}
}

func BenchmarkAblationAssignment(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationAssignment(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "column", "Query time (s)", "sec")
		report(b, tab, "roundrobin", "Query time (s)", "sec")
	}
}

func BenchmarkAblationPLoDFill(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationPLoDFill(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "3", "Centered 0x7F/0xFF", "pct")
		report(b, tab, "3", "Zero fill", "pct")
	}
}

func BenchmarkExtensionMultires(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.ExtensionMultires(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "PLoD", "Fraction", "frac")
		report(b, tab, "Subset", "Fraction", "frac")
	}
}

func BenchmarkAblationFileOrg(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationFileOrg(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab, "100 bins", "Opens/query", "opens")
		report(b, tab, "1 bin", "Opens/query", "opens")
	}
}
