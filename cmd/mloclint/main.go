// Command mloclint validates MLOC observability output the way
// promtool's check subcommands would, without external dependencies:
// it verifies /metrics is well-formed Prometheus text exposition whose
// base names match ^mloc_[a-z_]+$ with no duplicate samples (including
// the exemplar trailers on histogram buckets), that the mloc_slo_*
// counter families are coherent (objective labels parse as durations
// and the ok/breach families cover identical objective sets), and that
// /debug/traces serves decodable span trees.
//
// Usage:
//
//	mloclint -remote HOST:PORT [-pprof]   # validate a running mlocd
//	mloclint -file exposition.txt         # validate a saved scrape
//	mloclint -selfcheck                   # boot an in-process server and validate it
//
// Exit status is nonzero when any check fails, so scripts (the
// serve-smoke gate, make check) can depend on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"mloc/internal/cache"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/obs"
	"mloc/internal/pfs"
	"mloc/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "mloclint: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mloclint", flag.ExitOnError)
	remote := fs.String("remote", "", "mlocd address, e.g. 127.0.0.1:8080")
	file := fs.String("file", "", "validate a saved exposition file instead of a server")
	selfcheck := fs.Bool("selfcheck", false, "boot an in-process server over a tiny store and validate its endpoints")
	probePprof := fs.Bool("pprof", false, "with -remote: also require /debug/pprof/ to answer")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *file != "":
		payload, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		return lintExposition(string(payload))
	case *remote != "":
		base := *remote
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		return checkServer(strings.TrimSuffix(base, "/"), *probePprof)
	case *selfcheck:
		return selfCheck()
	default:
		return fmt.Errorf("one of -remote, -file, or -selfcheck is required")
	}
}

// lintExposition validates one text-exposition payload and reports
// every problem found.
func lintExposition(payload string) error {
	problems := obs.Lint(payload, true)
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "mloclint: exposition line %d: %s\n", p.Line, p.Msg)
	}
	if len(problems) != 0 {
		return fmt.Errorf("%d exposition problem(s)", len(problems))
	}
	if err := lintSLO(payload); err != nil {
		return err
	}
	families, samples := countExposition(payload)
	fmt.Printf("mloclint: exposition ok (%d families, %d samples)\n", families, samples)
	return nil
}

// lintSLO validates the mloc_slo_query_{ok,breach}_total families when
// present: every sample must carry exactly one objective label whose
// value parses as a Go duration, and both families must expose the
// same objective set — a missing counterpart means an SLO was
// registered half-way.
func lintSLO(payload string) error {
	objectives := map[string]map[string]bool{}
	for _, line := range strings.Split(payload, "\n") {
		if !strings.HasPrefix(line, "mloc_slo_query_") || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := strings.Cut(line, "{")
		if !ok {
			return fmt.Errorf("slo sample %q has no objective label", line)
		}
		labels, _, ok := strings.Cut(rest, "}")
		if !ok {
			return fmt.Errorf("slo sample %q has an unterminated label block", line)
		}
		obj, ok := strings.CutPrefix(labels, `objective="`)
		obj, ok2 := strings.CutSuffix(obj, `"`)
		if !ok || !ok2 || strings.Contains(obj, `"`) {
			return fmt.Errorf("slo sample %q: want exactly the objective label", line)
		}
		if _, err := time.ParseDuration(obj); err != nil {
			return fmt.Errorf("slo objective %q is not a duration: %v", obj, err)
		}
		if objectives[name] == nil {
			objectives[name] = map[string]bool{}
		}
		objectives[name][obj] = true
	}
	if len(objectives) == 0 {
		return nil
	}
	ok, breach := objectives["mloc_slo_query_ok_total"], objectives["mloc_slo_query_breach_total"]
	if len(ok) != len(breach) {
		return fmt.Errorf("slo families diverge: %d ok objectives vs %d breach objectives", len(ok), len(breach))
	}
	for obj := range ok {
		if !breach[obj] {
			return fmt.Errorf("slo objective %q has an ok counter but no breach counter", obj)
		}
	}
	fmt.Printf("mloclint: slo ok (%d objectives)\n", len(ok))
	return nil
}

// countExposition tallies families and samples for the ok line.
func countExposition(payload string) (families, samples int) {
	for _, line := range strings.Split(payload, "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "# HELP"):
		case strings.HasPrefix(line, "# TYPE"):
			families++
		case !strings.HasPrefix(line, "#"):
			samples++
		}
	}
	return families, samples
}

// checkServer validates a live server's /metrics and /debug/traces.
func checkServer(base string, probePprof bool) error {
	client := &http.Client{Timeout: 30 * time.Second}

	payload, err := fetch(client, base+"/metrics", "text/plain")
	if err != nil {
		return err
	}
	if err := lintExposition(string(payload)); err != nil {
		return err
	}

	body, err := fetch(client, base+"/debug/traces", "application/json")
	if err != nil {
		return err
	}
	var traces []obs.TraceDump
	if err := json.Unmarshal(body, &traces); err != nil {
		return fmt.Errorf("/debug/traces is not a JSON trace list: %w", err)
	}
	for _, td := range traces {
		if err := validTrace(td); err != nil {
			return err
		}
	}
	if len(traces) > 0 {
		// Round-trip one trace through the ?id= path.
		one, err := fetch(client, fmt.Sprintf("%s/debug/traces?id=%d", base, traces[0].ID), "application/json")
		if err != nil {
			return err
		}
		var td obs.TraceDump
		if err := json.Unmarshal(one, &td); err != nil {
			return fmt.Errorf("/debug/traces?id=%d is not a JSON trace: %w", traces[0].ID, err)
		}
		if err := validTrace(td); err != nil {
			return err
		}
	}
	fmt.Printf("mloclint: traces ok (%d retained)\n", len(traces))

	if probePprof {
		if _, err := fetch(client, base+"/debug/pprof/cmdline", ""); err != nil {
			return fmt.Errorf("pprof probe: %w", err)
		}
		fmt.Println("mloclint: pprof ok")
	}
	return nil
}

// validTrace checks the structural invariants of a retained trace.
func validTrace(td obs.TraceDump) error {
	if td.ID == 0 {
		return fmt.Errorf("trace with id 0")
	}
	if td.Root == nil {
		return fmt.Errorf("trace %d has no root span", td.ID)
	}
	if !td.Root.Ended {
		return fmt.Errorf("retained trace %d has an unended root", td.ID)
	}
	return nil
}

// fetch GETs a URL, requiring status 200 and (when non-empty) a
// Content-Type prefix.
func fetch(client *http.Client, url, wantType string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //mlocvet:ignore uncheckederr -- close error after the body was read is unactionable
	// A metrics or trace payload is bounded in practice; cap the read so
	// a misbehaving endpoint cannot OOM the linter.
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned %s", url, resp.Status)
	}
	if wantType != "" && !strings.HasPrefix(resp.Header.Get("Content-Type"), wantType) {
		return nil, fmt.Errorf("%s Content-Type %q, want %s", url, resp.Header.Get("Content-Type"), wantType)
	}
	return body, nil
}

// selfCheck builds a tiny store, serves it in-process, runs one query,
// and validates the observability surface end to end — the make-check
// gate needs no running daemon.
func selfCheck() error {
	d := datagen.GTSLike(32, 32, 1)
	v, err := d.Var("phi")
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig([]int{8, 8})
	cfg.NumBins = 8
	cfg.SampleSize = 256
	sim := pfs.New(pfs.DefaultConfig())
	reg := obs.NewRegistry()
	sim.Instrument(reg)
	st, err := core.Build(sim, sim.NewClock(), "lint/phi", d.Shape, v.Data, cfg)
	if err != nil {
		return err
	}
	c, err := cache.New(1 << 20)
	if err != nil {
		return err
	}
	svc, err := server.New(server.Config{
		Stores:       map[string]*core.Store{"phi": st},
		Cache:        c,
		DefaultRanks: 2,
		Registry:     reg,
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"var":"phi","vc":{"min":-1e30,"max":1e30}}`))
	if err != nil {
		return err
	}
	if _, cerr := io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<20)); cerr != nil {
		return cerr
	}
	if err := resp.Body.Close(); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck query returned %s", resp.Status)
	}
	return checkServer(ts.URL, false)
}
