package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSelfCheck(t *testing.T) {
	if err := selfCheck(); err != nil {
		t.Fatalf("selfcheck: %v", err)
	}
}

func TestLintExpositionRejectsMalformed(t *testing.T) {
	if err := lintExposition("bad_name_total 1\n"); err == nil {
		t.Error("malformed exposition accepted")
	}
	good := "# HELP mloc_x_total X.\n# TYPE mloc_x_total counter\nmloc_x_total 1\n"
	if err := lintExposition(good); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestLintSLO(t *testing.T) {
	head := func(name string) string {
		return "# HELP " + name + " X.\n# TYPE " + name + " counter\n"
	}
	okFam, brFam := "mloc_slo_query_ok_total", "mloc_slo_query_breach_total"
	good := head(okFam) + okFam + `{objective="100ms"} 1` + "\n" +
		head(brFam) + brFam + `{objective="100ms"} 2` + "\n"
	if err := lintExposition(good); err != nil {
		t.Errorf("valid slo exposition rejected: %v", err)
	}
	if err := lintExposition("# HELP mloc_x_total X.\n# TYPE mloc_x_total counter\nmloc_x_total 1\n"); err != nil {
		t.Errorf("exposition without slo families rejected: %v", err)
	}
	bad := map[string]string{
		"objective not a duration": head(okFam) + okFam + `{objective="fast"} 1` + "\n" +
			head(brFam) + brFam + `{objective="fast"} 1` + "\n",
		"missing breach counterpart": head(okFam) + okFam + `{objective="100ms"} 1` + "\n",
		"diverging objective sets": head(okFam) + okFam + `{objective="100ms"} 1` + "\n" +
			head(brFam) + brFam + `{objective="1s"} 1` + "\n",
		"wrong label": head(okFam) + okFam + `{node="a"} 1` + "\n" +
			head(brFam) + brFam + `{node="a"} 1` + "\n",
	}
	for name, payload := range bad {
		if err := lintExposition(payload); err == nil {
			t.Errorf("%s accepted:\n%s", name, payload)
		}
	}
}

func TestRunFileMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.txt")
	if err := os.WriteFile(path, []byte("# TYPE mloc_x_total counter\nmloc_x_total notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path}); err == nil {
		t.Error("bad exposition file accepted")
	}
	if err := run([]string{}); err == nil {
		t.Error("no mode flags accepted")
	}
}
