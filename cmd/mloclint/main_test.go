package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSelfCheck(t *testing.T) {
	if err := selfCheck(); err != nil {
		t.Fatalf("selfcheck: %v", err)
	}
}

func TestLintExpositionRejectsMalformed(t *testing.T) {
	if err := lintExposition("bad_name_total 1\n"); err == nil {
		t.Error("malformed exposition accepted")
	}
	good := "# HELP mloc_x_total X.\n# TYPE mloc_x_total counter\nmloc_x_total 1\n"
	if err := lintExposition(good); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestRunFileMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.txt")
	if err := os.WriteFile(path, []byte("# TYPE mloc_x_total counter\nmloc_x_total notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path}); err == nil {
		t.Error("bad exposition file accepted")
	}
	if err := run([]string{}); err == nil {
		t.Error("no mode flags accepted")
	}
}
