package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"mloc/internal/cache"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/pfs"
	"mloc/internal/server"
)

// startTestDaemon boots a server.Handler over one tiny store, exactly
// what a local mlocd would serve.
func startTestDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	d := datagen.GTSLike(32, 32, 1)
	v, _ := d.Var("phi")
	cfg := core.DefaultConfig([]int{8, 8})
	cfg.NumBins = 8
	cfg.SampleSize = 256
	sim := pfs.New(pfs.DefaultConfig())
	st, err := core.Build(sim, sim.NewClock(), "t/phi", d.Shape, v.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := server.New(server.Config{
		Stores:       map[string]*core.Store{"phi": st},
		Cache:        c,
		DefaultRanks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestNewRemoteClient(t *testing.T) {
	if _, err := newRemoteClient(""); err == nil {
		t.Error("empty -remote accepted")
	}
	c, err := newRemoteClient("127.0.0.1:9999")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(c.base, "http://") {
		t.Errorf("bare host:port not given a scheme: %q", c.base)
	}
	c2, err := newRemoteClient("https://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if c2.base != "https://example.com" {
		t.Errorf("explicit scheme mangled: %q", c2.base)
	}
}

func TestCmdQueryRemote(t *testing.T) {
	ts := startTestDaemon(t)
	addr := strings.TrimPrefix(ts.URL, "http://")
	err := cmdQuery([]string{
		"-remote", addr,
		"-var", "phi",
		"-vc", "-1e30:1e30",
		"-sc", "0:15,0:15",
		"-ranks", "1",
	})
	if err != nil {
		t.Fatalf("cmdQuery: %v", err)
	}
	// Error paths: unknown variable, missing -var, unreachable server.
	if err := cmdQuery([]string{"-remote", addr, "-var", "nope"}); err == nil {
		t.Error("unknown remote variable accepted")
	}
	if err := cmdQuery([]string{"-remote", addr}); err == nil {
		t.Error("missing -var accepted")
	}
	if err := cmdQuery([]string{"-remote", "127.0.0.1:1", "-var", "phi"}); err == nil {
		t.Error("unreachable server produced no error")
	}
}

func TestCmdStatsRemote(t *testing.T) {
	ts := startTestDaemon(t)
	addr := strings.TrimPrefix(ts.URL, "http://")
	if err := cmdStats([]string{"-remote", addr}); err != nil {
		t.Fatalf("cmdStats: %v", err)
	}
	if err := cmdStats([]string{}); err == nil {
		t.Error("missing -remote accepted")
	}
}

func TestCmdTraceRemote(t *testing.T) {
	ts := startTestDaemon(t)
	addr := strings.TrimPrefix(ts.URL, "http://")
	// Before any query there is nothing to render but the listing works.
	if err := cmdTrace([]string{"-remote", addr}); err != nil {
		t.Fatalf("cmdTrace on empty ring: %v", err)
	}
	if err := cmdQuery([]string{"-remote", addr, "-var", "phi", "-vc", "-1e30:1e30"}); err != nil {
		t.Fatalf("cmdQuery: %v", err)
	}
	if err := cmdTrace([]string{"-remote", addr}); err != nil {
		t.Fatalf("cmdTrace listing: %v", err)
	}
	// The first query's trace id is 1 (tracer ids are sequential).
	if err := cmdTrace([]string{"-remote", addr, "-id", "1"}); err != nil {
		t.Fatalf("cmdTrace -id 1: %v", err)
	}
	if err := cmdTrace([]string{"-remote", addr, "-id", "999"}); err == nil {
		t.Error("unretained trace id produced no error")
	}
	if err := cmdTrace([]string{}); err == nil {
		t.Error("missing -remote accepted")
	}
}

func TestRemoteShapeLookup(t *testing.T) {
	ts := startTestDaemon(t)
	addr := strings.TrimPrefix(ts.URL, "http://")
	client, err := newRemoteClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := client.remoteShape("phi")
	if err != nil {
		t.Fatal(err)
	}
	if len(shape) != 2 || shape[0] != 32 {
		t.Errorf("remoteShape = %v, want [32 32]", shape)
	}
	if _, err := client.remoteShape("ghost"); err == nil {
		t.Error("remoteShape for unknown variable returned no error")
	}
}
