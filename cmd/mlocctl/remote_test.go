package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mloc/internal/cache"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/pfs"
	"mloc/internal/server"
)

// startTestDaemon boots a server.Handler over one tiny store, exactly
// what a local mlocd would serve.
func startTestDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	d := datagen.GTSLike(32, 32, 1)
	v, _ := d.Var("phi")
	cfg := core.DefaultConfig([]int{8, 8})
	cfg.NumBins = 8
	cfg.SampleSize = 256
	sim := pfs.New(pfs.DefaultConfig())
	st, err := core.Build(sim, sim.NewClock(), "t/phi", d.Shape, v.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := server.New(server.Config{
		Stores:       map[string]*core.Store{"phi": st},
		Cache:        c,
		DefaultRanks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestNewRemoteClient(t *testing.T) {
	if _, err := newRemoteClient(""); err == nil {
		t.Error("empty -remote accepted")
	}
	c, err := newRemoteClient("127.0.0.1:9999")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(c.base, "http://") {
		t.Errorf("bare host:port not given a scheme: %q", c.base)
	}
	c2, err := newRemoteClient("https://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if c2.base != "https://example.com" {
		t.Errorf("explicit scheme mangled: %q", c2.base)
	}
}

func TestCmdQueryRemote(t *testing.T) {
	ts := startTestDaemon(t)
	addr := strings.TrimPrefix(ts.URL, "http://")
	err := cmdQuery([]string{
		"-remote", addr,
		"-var", "phi",
		"-vc", "-1e30:1e30",
		"-sc", "0:15,0:15",
		"-ranks", "1",
	})
	if err != nil {
		t.Fatalf("cmdQuery: %v", err)
	}
	// Error paths: unknown variable, missing -var, unreachable server.
	if err := cmdQuery([]string{"-remote", addr, "-var", "nope"}); err == nil {
		t.Error("unknown remote variable accepted")
	}
	if err := cmdQuery([]string{"-remote", addr}); err == nil {
		t.Error("missing -var accepted")
	}
	if err := cmdQuery([]string{"-remote", "127.0.0.1:1", "-var", "phi"}); err == nil {
		t.Error("unreachable server produced no error")
	}
}

func TestCmdStatsRemote(t *testing.T) {
	ts := startTestDaemon(t)
	addr := strings.TrimPrefix(ts.URL, "http://")
	if err := cmdStats([]string{"-remote", addr}); err != nil {
		t.Fatalf("cmdStats: %v", err)
	}
	if err := cmdStats([]string{}); err == nil {
		t.Error("missing -remote accepted")
	}
}

func TestCmdTraceRemote(t *testing.T) {
	ts := startTestDaemon(t)
	addr := strings.TrimPrefix(ts.URL, "http://")
	// Before any query there is nothing to render but the listing works.
	if err := cmdTrace([]string{"-remote", addr}); err != nil {
		t.Fatalf("cmdTrace on empty ring: %v", err)
	}
	if err := cmdQuery([]string{"-remote", addr, "-var", "phi", "-vc", "-1e30:1e30"}); err != nil {
		t.Fatalf("cmdQuery: %v", err)
	}
	if err := cmdTrace([]string{"-remote", addr}); err != nil {
		t.Fatalf("cmdTrace listing: %v", err)
	}
	// The first query's trace id is 1 (tracer ids are sequential).
	if err := cmdTrace([]string{"-remote", addr, "-id", "1"}); err != nil {
		t.Fatalf("cmdTrace -id 1: %v", err)
	}
	if err := cmdTrace([]string{"-remote", addr, "-id", "999"}); err == nil {
		t.Error("unretained trace id produced no error")
	}
	if err := cmdTrace([]string{}); err == nil {
		t.Error("missing -remote accepted")
	}
}

func TestRemoteShapeLookup(t *testing.T) {
	ts := startTestDaemon(t)
	addr := strings.TrimPrefix(ts.URL, "http://")
	client, err := newRemoteClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := client.remoteShape("phi")
	if err != nil {
		t.Fatal(err)
	}
	if len(shape) != 2 || shape[0] != 32 {
		t.Errorf("remoteShape = %v, want [32 32]", shape)
	}
	if _, err := client.remoteShape("ghost"); err == nil {
		t.Error("remoteShape for unknown variable returned no error")
	}
}

// TestRetryAfterBoundedRetry: a 503 + Retry-After is retried exactly
// once after the hinted sleep; the second answer wins.
func TestRetryAfterBoundedRetry(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	t.Cleanup(ts.Close)
	client, err := newRemoteClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		OK bool `json:"ok"`
	}
	if err := client.getJSON("/stats", &out); err != nil {
		t.Fatalf("retried GET failed: %v", err)
	}
	if !out.OK || hits.Load() != 2 {
		t.Fatalf("ok=%v hits=%d, want success on the second attempt", out.OK, hits.Load())
	}
}

// TestRetryAfterSingleRetryOnly: a server that sheds forever gets
// exactly two attempts, then the error surfaces.
func TestRetryAfterSingleRetryOnly(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"queue full"}`)
	}))
	t.Cleanup(ts.Close)
	client, err := newRemoteClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	err = client.postJSON("/query", []byte(`{"var":"x"}`), &struct{}{})
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("error = %v, want surfaced queue-full", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server hit %d times, want exactly 2", hits.Load())
	}
}

// TestRetryAfterAbsentHeaderNoRetry: a shed without the header is not
// retried at all.
func TestRetryAfterAbsentHeaderNoRetry(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	client, err := newRemoteClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.getJSON("/stats", &struct{}{}); err == nil {
		t.Fatal("shed without Retry-After did not error")
	}
	if hits.Load() != 1 {
		t.Fatalf("server hit %d times, want exactly 1 (no retry without a hint)", hits.Load())
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"0", 0, true},
		{"2", 2 * time.Second, true},
		{"600", maxRetryAfter, true}, // capped
		{" 3 ", 3 * time.Second, true},
		{"", 0, false},
		{"-1", 0, false},
		{"soon", 0, false},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0, false},
	}
	for _, c := range cases {
		got, ok := parseRetryAfter(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("parseRetryAfter(%q) = %v %v, want %v %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestCmdClusterFaultAndNodes drives the cluster subcommands against
// stub endpoints speaking the router/injector wire formats.
func TestCmdClusterFaultAndNodes(t *testing.T) {
	var gotFault atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/fault", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body) //mlocvet:ignore uncheckederr -- stub server; a short read fails the assertion below
		gotFault.Store(string(body))
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"mode":"delay","delay_ms":100}`)
	})
	mux.HandleFunc("/cluster/nodes", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"nodes":[{"node":"a:1","slabs":9,"health":{"up":true,"last_probe_ms":0.4}},
			{"node":"b:2","slabs":7,"health":{"up":false,"consecutive_failures":3,"last_error":"connection refused"}}],
			"replication":2,"seed":1,"slabs_per_var":16,"vars":["phi"]}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	addr := strings.TrimPrefix(ts.URL, "http://")

	if err := cmdCluster([]string{"fault", "-remote", addr, "-mode", "delay", "-delay", "100ms"}); err != nil {
		t.Fatalf("cluster fault: %v", err)
	}
	sent, _ := gotFault.Load().(string)
	if !strings.Contains(sent, `"mode":"delay"`) || !strings.Contains(sent, `"delay_ms":100`) {
		t.Fatalf("fault request body = %s", sent)
	}
	if err := cmdCluster([]string{"nodes", "-remote", addr}); err != nil {
		t.Fatalf("cluster nodes: %v", err)
	}
	if err := cmdCluster([]string{"fault", "-remote", addr}); err == nil {
		t.Error("fault without -mode accepted")
	}
	if err := cmdCluster([]string{"bogus"}); err == nil {
		t.Error("unknown cluster subcommand accepted")
	}
	if err := cmdCluster(nil); err == nil {
		t.Error("bare cluster accepted")
	}
}

// TestOversizedResponseBounded: getJSON caps the response body at
// maxResponseBytes, so a misbehaving server streaming an enormous
// payload errors cleanly instead of OOMing the CLI. Whitespace padding
// keeps the handler cheap: the JSON decoder skips it byte by byte but
// never buffers it.
func TestOversizedResponseBounded(t *testing.T) {
	pad := strings.Repeat(" ", 1<<20)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "{") //mlocvet:ignore uncheckederr -- test server write
		for written := 0; written <= maxResponseBytes; written += len(pad) {
			if _, err := io.WriteString(w, pad); err != nil {
				return // client hung up after its cap; expected
			}
		}
		io.WriteString(w, `"ok":true}`) //mlocvet:ignore uncheckederr -- test server write
	}))
	t.Cleanup(ts.Close)
	client, err := newRemoteClient(strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := client.getJSON("/stats", &out); err == nil {
		t.Fatal("getJSON decoded a response past maxResponseBytes without error")
	}
}

// TestOversizedErrorEnvelopeBounded: remoteError caps the error
// envelope at maxErrorBytes and falls back to the bare status line
// when the truncated envelope fails to decode — the CLI must not echo
// megabytes of attacker-controlled text either.
func TestOversizedErrorEnvelopeBounded(t *testing.T) {
	huge := strings.Repeat("x", 2<<20)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"`+huge+`"}`) //mlocvet:ignore uncheckederr -- test server write
	}))
	t.Cleanup(ts.Close)
	client, err := newRemoteClient(strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	err = client.getJSON("/stats", &out)
	if err == nil {
		t.Fatal("getJSON accepted a 500 response")
	}
	if !strings.Contains(err.Error(), "server returned") {
		t.Fatalf("error = %v, want the server-returned status message", err)
	}
	if len(err.Error()) > 200 {
		t.Fatalf("error message is %d bytes; the oversized envelope leaked through the cap", len(err.Error()))
	}
}
