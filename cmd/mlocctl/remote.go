package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mloc/internal/grid"
	"mloc/internal/obs"
)

// remoteClient is the shared HTTP plumbing of the query/stats
// subcommands.
type remoteClient struct {
	base string
	http *http.Client
}

func newRemoteClient(addr string) (*remoteClient, error) {
	if addr == "" {
		return nil, fmt.Errorf("-remote address is required (e.g. -remote 127.0.0.1:8080)")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &remoteClient{
		base: strings.TrimSuffix(addr, "/"),
		http: &http.Client{Timeout: 60 * time.Second},
	}, nil
}

// maxRetryAfter caps how long the client sleeps on a Retry-After hint,
// so a miscalibrated server cannot park the CLI for minutes.
const maxRetryAfter = 5 * time.Second

// Response decode caps, matching the router's scatter-gather bounds: a
// result payload may be large (64 MiB), an error envelope never is
// (1 MiB). A misbehaving or malicious server cannot OOM the CLI.
const (
	maxResponseBytes = 64 << 20
	maxErrorBytes    = 1 << 20
)

// doRetry sends a request and, when the server sheds load (429 or 503)
// with a usable Retry-After header, sleeps the hinted duration (capped
// at maxRetryAfter) and retries exactly once. Anything else — including
// sheds without the header — is returned as-is; one bounded retry
// rides out a drain or a momentary queue spike without turning the CLI
// into a retry storm.
func (c *remoteClient) doRetry(send func() (*http.Response, error)) (*http.Response, error) {
	resp, err := send()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
		return resp, nil
	}
	wait, ok := parseRetryAfter(resp.Header.Get("Retry-After"))
	if !ok {
		return resp, nil
	}
	// Drain the shed response so the connection is reusable.
	if _, err := io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)); err != nil {
		_ = err //mlocvet:ignore uncheckederr -- draining a shed response body is best-effort
	}
	resp.Body.Close() //mlocvet:ignore uncheckederr -- close error on a shed response is unactionable
	fmt.Fprintf(os.Stderr, "mlocctl: server busy (%s), retrying once in %s\n", resp.Status, wait)
	time.Sleep(wait)
	return send()
}

// parseRetryAfter handles the delta-seconds form of the header; HTTP
// dates and garbage report unusable.
func parseRetryAfter(v string) (time.Duration, bool) {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}

// getJSON decodes a GET endpoint into out.
func (c *remoteClient) getJSON(path string, out any) error {
	resp, err := c.doRetry(func() (*http.Response, error) {
		return c.http.Get(c.base + path)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close() //mlocvet:ignore uncheckederr -- close error after the body was read is unactionable
	if resp.StatusCode != http.StatusOK {
		return remoteError(resp)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes)).Decode(out)
}

// postJSON posts a payload and decodes the response into out, with the
// same bounded Retry-After handling as getJSON (the payload bytes are
// re-sendable, so the retry repeats the identical request).
func (c *remoteClient) postJSON(path string, payload []byte, out any) error {
	resp, err := c.doRetry(func() (*http.Response, error) {
		return c.http.Post(c.base+path, "application/json", bytes.NewReader(payload))
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close() //mlocvet:ignore uncheckederr -- close error after the body was read is unactionable
	if resp.StatusCode != http.StatusOK {
		return remoteError(resp)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes)).Decode(out)
}

// remoteError surfaces the server's JSON error envelope.
func remoteError(resp *http.Response) error {
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxErrorBytes)).Decode(&envelope); err == nil && envelope.Error != "" {
		return fmt.Errorf("server returned %s: %s", resp.Status, envelope.Error)
	}
	return fmt.Errorf("server returned %s", resp.Status)
}

// remoteShape asks /vars for the variable's grid shape so matches can
// be printed as coordinates, matching `mlocctl run` output.
func (c *remoteClient) remoteShape(varName string) (grid.Shape, error) {
	var vars []struct {
		Var   string `json:"var"`
		Shape []int  `json:"shape"`
	}
	if err := c.getJSON("/vars", &vars); err != nil {
		return nil, err
	}
	for _, v := range vars {
		if v.Var == varName {
			return grid.Shape(v.Shape), nil
		}
	}
	return nil, fmt.Errorf("server does not serve variable %q", varName)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	remote := fs.String("remote", "", "mlocd address, e.g. 127.0.0.1:8080")
	varName := fs.String("var", "", "variable to query (required)")
	vcStr := fs.String("vc", "", "value constraint lo:hi")
	scStr := fs.String("sc", "", "spatial constraint a:b,c:d per dimension")
	plod := fs.Int("plod", 0, "PLoD level 1-7 (0 = full precision)")
	indexOnly := fs.Bool("index-only", false, "return positions only")
	ranks := fs.Int("ranks", 0, "parallel ranks (0 = server default)")
	maxPrint := fs.Int("print", 5, "matches to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	if *varName == "" {
		return fmt.Errorf("query: -var is required")
	}

	// Assemble the wire request, reusing the local parsers so the CLI
	// accepts identical constraint syntax for local and remote queries.
	body := map[string]any{"var": *varName}
	if *vcStr != "" {
		vc, err := parseVC(*vcStr)
		if err != nil {
			return err
		}
		body["vc"] = map[string]float64{"min": vc.Min, "max": vc.Max}
	}
	if *scStr != "" {
		dims := strings.Count(*scStr, ",") + 1
		sc, err := parseSC(*scStr, dims)
		if err != nil {
			return err
		}
		body["sc"] = map[string][]int{"lo": sc.Lo, "hi": sc.Hi}
	}
	if *plod != 0 {
		body["plod"] = *plod
	}
	if *indexOnly {
		body["index_only"] = true
	}
	if *ranks != 0 {
		body["ranks"] = *ranks
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}

	var res struct {
		Matches []struct {
			Index int64   `json:"index"`
			Value float64 `json:"value"`
		} `json:"matches"`
		MatchesTotal   int   `json:"matches_total"`
		Truncated      bool  `json:"truncated"`
		BinsAccessed   int   `json:"bins_accessed"`
		BlocksRead     int   `json:"blocks_read"`
		BytesRead      int64 `json:"bytes_read"`
		CacheHits      int   `json:"cache_hits"`
		BinsPruned     int   `json:"bins_pruned"`
		BinsCovered    int   `json:"bins_covered"`
		IndexNodesRead int   `json:"index_nodes_read"`
		Time           struct {
			IO          float64 `json:"io"`
			Decompress  float64 `json:"decompress"`
			Reconstruct float64 `json:"reconstruct"`
			Total       float64 `json:"total"`
		} `json:"time"`
		QueuedMS float64 `json:"queued_ms"`
		TraceID  uint64  `json:"trace_id"`
		// Cluster-only fields; absent (zero) on single-node mlocd.
		Degraded bool `json:"degraded"`
		Shards   []struct {
			Node  string `json:"node"`
			Rows  string `json:"rows"`
			OK    bool   `json:"ok"`
			Error string `json:"error"`
		} `json:"shards"`
	}
	if err := client.postJSON("/query", payload, &res); err != nil {
		return err
	}

	shape, err := client.remoteShape(*varName)
	if err != nil {
		return err
	}
	fmt.Printf("query: %d matches, %d bins touched, %d blocks read, %.2f MB read, %d cache hits\n",
		res.MatchesTotal, res.BinsAccessed, res.BlocksRead, float64(res.BytesRead)/1e6, res.CacheHits)
	if res.BinsPruned > 0 || res.BinsCovered > 0 {
		fmt.Printf("  pruning: %d bins pruned, %d covered via %d index nodes\n",
			res.BinsPruned, res.BinsCovered, res.IndexNodesRead)
	}
	if res.Degraded {
		fmt.Printf("  degraded: PARTIAL RESULT — some shards failed:\n")
		for _, sh := range res.Shards {
			if !sh.OK {
				fmt.Printf("    shard rows %s on %s: %s\n", sh.Rows, sh.Node, sh.Error)
			}
		}
	}
	if res.TraceID != 0 {
		fmt.Printf("  trace: %d (inspect with `mlocctl trace -remote %s -id %d`)\n",
			res.TraceID, *remote, res.TraceID)
	}
	fmt.Printf("  time: io %.4fs, decompress %.4fs, reconstruct %.4fs, total %.4fs (virtual)\n",
		res.Time.IO, res.Time.Decompress, res.Time.Reconstruct, res.Time.Total)
	for i, m := range res.Matches {
		if i >= *maxPrint {
			fmt.Printf("  ... and %d more\n", res.MatchesTotal-*maxPrint)
			break
		}
		// Coords panics on out-of-range indexes; a corrupt or hostile
		// server must not crash the CLI.
		if m.Index < 0 || m.Index >= shape.Elems() {
			fmt.Printf("  match at invalid index %d (server bug?)\n", m.Index)
			continue
		}
		coords := shape.Coords(m.Index, nil)
		if *indexOnly {
			fmt.Printf("  match at %v\n", coords)
		} else {
			fmt.Printf("  match at %v = %g\n", coords, m.Value)
		}
	}
	if res.Truncated {
		fmt.Printf("  (response truncated to %d of %d matches)\n", len(res.Matches), res.MatchesTotal)
	}
	return nil
}

// cmdTrace lists or renders the span trees mlocd retains for recent
// queries and builds (GET /debug/traces).
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	remote := fs.String("remote", "", "mlocd address, e.g. 127.0.0.1:8080")
	id := fs.Uint64("id", 0, "trace id to render in full (0 = one-line summary per retained trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	if *id != 0 {
		var td obs.TraceDump
		if err := client.getJSON(fmt.Sprintf("/debug/traces?id=%d", *id), &td); err != nil {
			return err
		}
		return td.Render(os.Stdout)
	}
	var all []obs.TraceDump
	if err := client.getJSON("/debug/traces", &all); err != nil {
		return err
	}
	if len(all) == 0 {
		fmt.Println("no traces retained")
		return nil
	}
	for _, td := range all {
		wall := 0.0
		if td.Root != nil {
			wall = td.Root.WallMS
		}
		fmt.Printf("trace %d %q: %d spans, %.3fms wall\n", td.ID, td.Name, td.Spans, wall)
	}
	fmt.Printf("(render one with -id N)\n")
	return nil
}

// cmdQuerylog prints the always-on per-query log a data node or router
// retains (GET /debug/querylog), newest first. The filter flags are
// passed through verbatim; the server validates them.
func cmdQuerylog(args []string) error {
	fs := flag.NewFlagSet("querylog", flag.ExitOnError)
	remote := fs.String("remote", "", "mlocd address, e.g. 127.0.0.1:8080")
	store := fs.String("store", "", "only records for this store mode (col, iso, isa)")
	varName := fs.String("var", "", "only records for this variable")
	minLatency := fs.String("min-latency", "", "only records at least this slow (wall clock), e.g. 250ms")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	params := url.Values{}
	if *store != "" {
		params.Set("store", *store)
	}
	if *varName != "" {
		params.Set("var", *varName)
	}
	if *minLatency != "" {
		params.Set("min_latency", *minLatency)
	}
	path := "/debug/querylog"
	if len(params) > 0 {
		path += "?" + params.Encode()
	}
	var recs []obs.QueryRecord
	if err := client.getJSON(path, &recs); err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Println("no query records retained (or none match the filter)")
		return nil
	}
	for _, r := range recs {
		line := fmt.Sprintf("#%d %s var=%s store=%s sel=%s %s wall=%.3fms virt=%.6fs",
			r.Seq, time.UnixMilli(r.UnixMS).UTC().Format(time.RFC3339),
			r.Var, r.Store, r.Selectivity, r.Outcome, r.WallMS, r.VirtS)
		line += fmt.Sprintf(" matches=%d pruned=%d covered=%d cache=%d/%d bytes=%d queue=%.3fms",
			r.Matches, r.BinsPruned, r.BinsCovered, r.CacheHits, r.CacheHits+r.CacheMisses,
			r.BytesDecoded, r.QueueWaitMS)
		if r.Shards > 0 {
			line += fmt.Sprintf(" shards=%d", r.Shards)
		}
		if r.Degraded {
			line += " DEGRADED"
		}
		if r.TraceID != 0 {
			line += fmt.Sprintf(" trace=%d", r.TraceID)
		}
		fmt.Println(line)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	remote := fs.String("remote", "", "mlocd address, e.g. 127.0.0.1:8080")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	var stats map[string]int64
	if err := client.getJSON("/stats", &stats); err != nil {
		return err
	}
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s %d\n", k, stats[k])
	}
	return nil
}
