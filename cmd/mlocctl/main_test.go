package main

import "testing"

func TestParseShape(t *testing.T) {
	good := map[string][]int{
		"1024x1024": {1024, 1024},
		"4X4":       {4, 4},
		"2,3,4":     {2, 3, 4},
		"16":        {16},
	}
	for in, want := range good {
		got, err := parseShape(in)
		if err != nil {
			t.Fatalf("parseShape(%q): %v", in, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parseShape(%q) = %v", in, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parseShape(%q) = %v, want %v", in, got, want)
			}
		}
	}
	for _, in := range []string{"", "axb", "4x0", "-1x4"} {
		if _, err := parseShape(in); err == nil {
			t.Errorf("parseShape(%q) accepted", in)
		}
	}
}

func TestParseVC(t *testing.T) {
	vc, err := parseVC("0.5:2.5")
	if err != nil || vc.Min != 0.5 || vc.Max != 2.5 {
		t.Fatalf("parseVC = %+v, %v", vc, err)
	}
	vc, err = parseVC("-3:-1")
	if err != nil || vc.Min != -3 || vc.Max != -1 {
		t.Fatalf("parseVC negatives = %+v, %v", vc, err)
	}
	for _, in := range []string{"", "1", "a:b", "2:1", "1:"} {
		if _, err := parseVC(in); err == nil {
			t.Errorf("parseVC(%q) accepted", in)
		}
	}
}

func TestParseSC(t *testing.T) {
	sc, err := parseSC("1:3,2:8", 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Lo[0] != 1 || sc.Hi[0] != 3 || sc.Lo[1] != 2 || sc.Hi[1] != 8 {
		t.Fatalf("parseSC = %+v", sc)
	}
	for _, in := range []string{"1:3", "1:3,a:b", "3:1,2:8", "1:3,2:8,0:1"} {
		if _, err := parseSC(in, 2); err == nil {
			t.Errorf("parseSC(%q, 2) accepted", in)
		}
	}
}

func TestMakeDataset(t *testing.T) {
	for _, kind := range []string{"gts", "s3d"} {
		ds, err := makeDataset(kind, 8, 1)
		if err != nil || ds == nil {
			t.Fatalf("makeDataset(%s): %v", kind, err)
		}
	}
	if _, err := makeDataset("nope", 8, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}
