// Command mlocctl is the MLOC command-line tool: it generates synthetic
// scientific datasets, ingests them through the MLOC multi-level layout
// pipeline onto the simulated parallel file system, and runs queries
// against the resulting store.
//
// Because the PFS is an in-process simulator, `run` performs
// build + query in one invocation; `gen` writes raw little-endian
// float64 files that `run` can ingest, so datasets can be produced once
// and queried many ways.
//
// Usage:
//
//	mlocctl gen   -dataset gts|s3d -side N -seed S -out data.f64
//	mlocctl run   -in data.f64 -shape 1024x1024 [flags]
//	mlocctl run   -dataset gts -side 512 [flags]      # generate inline
//	mlocctl query -remote HOST:PORT -var NAME [flags] # query a running mlocd
//	mlocctl stats -remote HOST:PORT                   # mlocd counters, one "key value" per line
//	mlocctl trace -remote HOST:PORT [-id N]           # retained query traces (span trees; routers show grafted per-node subtrees)
//	mlocctl querylog -remote HOST:PORT [-store M] [-var NAME] [-min-latency D]  # always-on query log, newest first
//	mlocctl cluster nodes -remote HOST:PORT           # router shard topology and node health
//	mlocctl cluster fault -remote HOST:PORT -mode kill|delay|corrupt|off [-delay 100ms]
//
// Run flags:
//
//	-chunk 64x64        chunk size (defaults to side/16 per dim)
//	-bins 100           number of equal-frequency bins
//	-mode col|iso|isa   MLOC variant (byte-column zlib, ISOBAR, ISABELA)
//	-order V-M-S        level priority order (V-M-S or V-S-M)
//	-vc lo:hi           value constraint (region query)
//	-sc a:b,c:d[,e:f]   spatial constraint, half-open per dimension
//	-plod L             PLoD level 1-7 (col mode only)
//	-index-only         return positions without values
//	-explain            print the query plan before executing
//	-ranks 8            parallel ranks
//
// Example:
//
//	mlocctl run -dataset gts -side 512 -vc 10.8:11.2 -index-only
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"mloc/internal/binning"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "querylog":
		err = cmdQuerylog(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlocctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mlocctl <gen|run|query|stats|trace|querylog|cluster> [flags]   (run `mlocctl <cmd> -h` for flags)")
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dataset := fs.String("dataset", "gts", "gts (2-D) or s3d (3-D)")
	side := fs.Int("side", 512, "grid side length")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output path for raw little-endian float64 data")
	varName := fs.String("var", "", "variable to export (default: dataset's first)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	ds, err := makeDataset(*dataset, *side, *seed)
	if err != nil {
		return err
	}
	name := *varName
	if name == "" {
		name = ds.Vars[0].Name
	}
	v, err := ds.Var(name)
	if err != nil {
		return err
	}
	buf := make([]byte, 8*len(v.Data))
	for i, x := range v.Data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s %s variable %q, shape %s, %d values (%.1f MB)\n",
		*out, *dataset, ds.Name, name, ds.Shape, len(v.Data), float64(len(buf))/1e6)
	return nil
}

func makeDataset(kind string, side int, seed int64) (*datagen.Dataset, error) {
	switch kind {
	case "gts":
		return datagen.GTSLike(side, side, seed), nil
	case "s3d":
		return datagen.S3DLike(side, seed), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want gts or s3d)", kind)
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	in := fs.String("in", "", "raw float64 input file (alternative to -dataset)")
	shapeStr := fs.String("shape", "", "grid shape, e.g. 1024x1024 (required with -in)")
	dataset := fs.String("dataset", "", "generate inline: gts or s3d")
	side := fs.Int("side", 512, "grid side for -dataset")
	seed := fs.Int64("seed", 1, "generator seed for -dataset")
	chunkStr := fs.String("chunk", "", "chunk size, e.g. 64x64 (default side/16)")
	bins := fs.Int("bins", 100, "equal-frequency bins")
	mode := fs.String("mode", "col", "col | iso | isa")
	orderStr := fs.String("order", "V-M-S", "level order: V-M-S or V-S-M")
	vcStr := fs.String("vc", "", "value constraint lo:hi")
	scStr := fs.String("sc", "", "spatial constraint a:b,c:d per dimension (half-open)")
	plod := fs.Int("plod", 0, "PLoD level 1-7 (0 = full precision)")
	indexOnly := fs.Bool("index-only", false, "return positions only")
	hindex := fs.Bool("hindex", true, "build the hierarchical super-bin index")
	adaptive := fs.Bool("adaptive", false, "adaptively re-split bins from the sample")
	explain := fs.Bool("explain", false, "print the query plan before executing")
	ranks := fs.Int("ranks", 8, "parallel ranks")
	maxPrint := fs.Int("print", 5, "matches to print")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Load or generate data.
	var data []float64
	var shape grid.Shape
	switch {
	case *in != "":
		if *shapeStr == "" {
			return fmt.Errorf("run: -shape is required with -in")
		}
		var err error
		shape, err = parseShape(*shapeStr)
		if err != nil {
			return err
		}
		raw, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		if int64(len(raw)) != 8*shape.Elems() {
			return fmt.Errorf("run: %s has %d bytes, shape %s needs %d", *in, len(raw), shape, 8*shape.Elems())
		}
		data = make([]float64, shape.Elems())
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	case *dataset != "":
		ds, err := makeDataset(*dataset, *side, *seed)
		if err != nil {
			return err
		}
		shape = ds.Shape
		data = ds.Vars[0].Data
	default:
		return fmt.Errorf("run: need -in or -dataset")
	}

	// Configuration.
	var chunk []int
	if *chunkStr != "" {
		cs, err := parseShape(*chunkStr)
		if err != nil {
			return err
		}
		chunk = cs
	} else {
		chunk = make([]int, shape.Dims())
		for d := range chunk {
			chunk[d] = shape[d] / 16
			if chunk[d] < 1 {
				chunk[d] = 1
			}
		}
	}
	var cfg core.Config
	switch *mode {
	case "col":
		cfg = core.DefaultConfig(chunk)
	case "iso":
		cfg = core.ISOConfig(chunk)
	case "isa":
		cfg = core.ISAConfig(chunk)
	default:
		return fmt.Errorf("run: unknown mode %q", *mode)
	}
	cfg.NumBins = *bins
	cfg.HierarchicalIndex = *hindex
	cfg.AdaptiveBins = *adaptive
	order, err := core.ParseOrder(*orderStr)
	if err != nil {
		return err
	}
	cfg.Order = order

	// Build.
	sim := pfs.New(pfs.DefaultConfig())
	clk := sim.NewClock()
	st, err := core.Build(sim, clk, "mloc/var", shape, data, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("built MLOC-%s store: shape %s, chunk %v, %d bins, order %s\n",
		strings.ToUpper(*mode), shape, chunk, st.NumBins(), st.Order())
	fmt.Printf("  raw %.2f MB -> data %.2f MB + index %.2f MB (total/raw %.2f), ingest %.2f virtual sec\n",
		float64(8*shape.Elems())/1e6, float64(st.DataBytes())/1e6, float64(st.IndexBytes())/1e6,
		float64(st.TotalBytes())/float64(8*shape.Elems()), clk.Now())

	// Query.
	req := &query.Request{PLoDLevel: *plod, IndexOnly: *indexOnly}
	if *vcStr != "" {
		vc, err := parseVC(*vcStr)
		if err != nil {
			return err
		}
		req.VC = &vc
	}
	if *scStr != "" {
		sc, err := parseSC(*scStr, shape.Dims())
		if err != nil {
			return err
		}
		req.SC = &sc
	}
	if req.VC == nil && req.SC == nil {
		fmt.Println("no -vc or -sc given; store built, skipping query")
		return nil
	}
	var plan *core.Plan
	if *explain {
		plan, err = st.Explain(req)
		if err != nil {
			return err
		}
		if err := plan.Render(os.Stdout); err != nil {
			return err
		}
	}
	sim.ResetStats()
	res, err := st.Query(req, *ranks)
	if err != nil {
		return err
	}
	if plan != nil {
		// -explain prints predicted cost above; append the measured
		// breakdown of the execution that just happened.
		plan.Observe(res)
		fmt.Print(plan.Measured.String())
	}
	fmt.Printf("query: %d matches, %d bins touched, %d blocks read, %.2f MB read\n",
		len(res.Matches), res.BinsAccessed, res.BlocksRead, float64(res.BytesRead)/1e6)
	fmt.Printf("  time: io %.4fs, decompress %.4fs, reconstruct %.4fs, total %.4fs (virtual)\n",
		res.Time.IO, res.Time.Decompress, res.Time.Reconstruct, res.Time.Total())
	for i, m := range res.Matches {
		if i >= *maxPrint {
			fmt.Printf("  ... and %d more\n", len(res.Matches)-*maxPrint)
			break
		}
		coords := shape.Coords(m.Index, nil)
		if *indexOnly {
			fmt.Printf("  match at %v\n", coords)
		} else {
			fmt.Printf("  match at %v = %g\n", coords, m.Value)
		}
	}
	return nil
}

func parseShape(s string) (grid.Shape, error) {
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == 'x' || r == 'X' || r == ',' })
	shape := make(grid.Shape, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad shape component %q", p)
		}
		shape = append(shape, n)
	}
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	return shape, nil
}

func parseVC(s string) (binning.ValueConstraint, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return binning.ValueConstraint{}, fmt.Errorf("bad -vc %q (want lo:hi)", s)
	}
	min, err := strconv.ParseFloat(lo, 64)
	if err != nil {
		return binning.ValueConstraint{}, err
	}
	max, err := strconv.ParseFloat(hi, 64)
	if err != nil {
		return binning.ValueConstraint{}, err
	}
	if min > max {
		return binning.ValueConstraint{}, fmt.Errorf("bad -vc %q: min > max", s)
	}
	return binning.ValueConstraint{Min: min, Max: max}, nil
}

func parseSC(s string, dims int) (grid.Region, error) {
	parts := strings.Split(s, ",")
	if len(parts) != dims {
		return grid.Region{}, fmt.Errorf("-sc has %d dimensions, grid has %d", len(parts), dims)
	}
	lo := make([]int, dims)
	hi := make([]int, dims)
	for d, p := range parts {
		a, b, ok := strings.Cut(p, ":")
		if !ok {
			return grid.Region{}, fmt.Errorf("bad -sc component %q (want a:b)", p)
		}
		var err error
		lo[d], err = strconv.Atoi(a)
		if err != nil {
			return grid.Region{}, err
		}
		hi[d], err = strconv.Atoi(b)
		if err != nil {
			return grid.Region{}, err
		}
	}
	return grid.NewRegion(lo, hi)
}
