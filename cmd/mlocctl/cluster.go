package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"strings"
	"time"
)

// cmdCluster dispatches the cluster subcommands:
//
//	mlocctl cluster nodes -remote ROUTER            shard topology + health
//	mlocctl cluster fault -remote NODE -mode MODE   drive a node's fault injector
func cmdCluster(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("cluster: usage: mlocctl cluster <nodes|fault> [flags]")
	}
	switch args[0] {
	case "nodes":
		return cmdClusterNodes(args[1:])
	case "fault":
		return cmdClusterFault(args[1:])
	default:
		return fmt.Errorf("cluster: unknown subcommand %q (want nodes or fault)", args[0])
	}
}

// cmdClusterNodes renders a router's /cluster/nodes topology.
func cmdClusterNodes(args []string) error {
	fs := flag.NewFlagSet("cluster nodes", flag.ExitOnError)
	remote := fs.String("remote", "", "router address, e.g. 127.0.0.1:8080")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	var topo struct {
		Nodes []struct {
			Node   string `json:"node"`
			Slabs  int    `json:"slabs"`
			Health *struct {
				Up        bool    `json:"up"`
				Failures  int     `json:"consecutive_failures"`
				ProbeMS   float64 `json:"last_probe_ms"`
				LastError string  `json:"last_error"`
			} `json:"health"`
		} `json:"nodes"`
		Replication int      `json:"replication"`
		Seed        uint64   `json:"seed"`
		SlabsPerVar int      `json:"slabs_per_var"`
		Vars        []string `json:"vars"`
	}
	if err := client.getJSON("/cluster/nodes", &topo); err != nil {
		return err
	}
	fmt.Printf("cluster: %d nodes, replication %d, %d slabs/var, seed %d\n",
		len(topo.Nodes), topo.Replication, topo.SlabsPerVar, topo.Seed)
	fmt.Printf("vars: %s\n", strings.Join(topo.Vars, ", "))
	for _, n := range topo.Nodes {
		state := "unprobed"
		detail := ""
		if h := n.Health; h != nil {
			if h.Up {
				state = "up"
				detail = fmt.Sprintf(" probe %.1fms", h.ProbeMS)
			} else {
				state = "DOWN"
				detail = fmt.Sprintf(" %d consecutive failures: %s", h.Failures, h.LastError)
			}
		}
		fmt.Printf("  %-28s %-8s %3d primary slabs%s\n", n.Node, state, n.Slabs, detail)
	}
	return nil
}

// cmdClusterFault drives a data node's fault injector (POST
// /cluster/fault), the operational face of cluster.FaultInjector.
func cmdClusterFault(args []string) error {
	fs := flag.NewFlagSet("cluster fault", flag.ExitOnError)
	remote := fs.String("remote", "", "data-node address, e.g. 127.0.0.1:8081")
	mode := fs.String("mode", "", "off | kill | delay | corrupt (required)")
	delay := fs.Duration("delay", 0, "held duration for delay mode, e.g. 100ms")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	if *mode == "" {
		return fmt.Errorf("cluster fault: -mode is required (off, kill, delay, or corrupt)")
	}
	payload, err := json.Marshal(map[string]any{
		"mode":     *mode,
		"delay_ms": delay.Milliseconds(),
	})
	if err != nil {
		return err
	}
	var state struct {
		Mode    string `json:"mode"`
		DelayMS int64  `json:"delay_ms"`
	}
	if err := client.postJSON("/cluster/fault", payload, &state); err != nil {
		return err
	}
	if state.Mode == "delay" {
		fmt.Printf("fault: %s now in mode %q (delay %s)\n",
			*remote, state.Mode, time.Duration(state.DelayMS)*time.Millisecond)
	} else {
		fmt.Printf("fault: %s now in mode %q\n", *remote, state.Mode)
	}
	return nil
}
