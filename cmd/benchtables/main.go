// Command benchtables regenerates the MLOC paper's tables and figures
// on the simulated substrate (see DESIGN.md §4 for the experiment
// index). With no flags it runs everything; -table/-figure/-ablation
// select individual experiments.
//
// Usage:
//
//	benchtables [-table N] [-figure N] [-ablation name] [-queries Q] [-ranks R] [-seed S]
//
// Examples:
//
//	benchtables                    # all tables, figures, ablations
//	benchtables -table 2           # Table II only
//	benchtables -figure 7          # Figure 7 only
//	benchtables -ablation curve    # the curve ablation only
//	benchtables -queries 20        # tighter averages (slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mloc/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "run only this table (1-7; 6=accuracy, 7=order)")
	figure := flag.Int("figure", 0, "run only this figure (6-8)")
	ablation := flag.String("ablation", "", "run only this ablation (binning|curve|assignment|plodfill|fileorg)")
	extension := flag.String("extension", "", "run only this extension experiment (multires)")
	queries := flag.Int("queries", 5, "random queries averaged per cell")
	ranks := flag.Int("ranks", 8, "parallel ranks per query")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	p := experiments.DefaultParams()
	p.Queries = *queries
	p.Ranks = *ranks
	p.Seed = *seed

	type exp struct {
		name string
		run  func(experiments.Params) (*experiments.TableResult, error)
	}
	tables := map[int]exp{
		1: {"Table I", experiments.Table1},
		2: {"Table II", experiments.Table2},
		3: {"Table III", experiments.Table3},
		4: {"Table IV", experiments.Table4},
		5: {"Table V", experiments.Table5},
		6: {"Table VI", experiments.Table6},
		7: {"Table VII", experiments.Table7},
	}
	figures := map[int]exp{
		6: {"Figure 6", experiments.Figure6},
		7: {"Figure 7", experiments.Figure7},
		8: {"Figure 8", experiments.Figure8},
	}
	extensions := map[string]exp{
		"multires": {"Extension: multires comparison", experiments.ExtensionMultires},
	}
	ablations := map[string]exp{
		"binning":    {"Ablation: binning", experiments.AblationBinning},
		"curve":      {"Ablation: curve", experiments.AblationCurve},
		"assignment": {"Ablation: assignment", experiments.AblationAssignment},
		"plodfill":   {"Ablation: PLoD fill", experiments.AblationPLoDFill},
		"fileorg":    {"Ablation: file organization", experiments.AblationFileOrg},
	}

	runOne := func(e exp) {
		start := time.Now()
		res, err := e.run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: rendering %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("  (%s regenerated in %.1fs wall)\n\n", e.name, time.Since(start).Seconds())
	}

	switch {
	case *table != 0:
		e, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtables: no table %d\n", *table)
			os.Exit(2)
		}
		runOne(e)
	case *figure != 0:
		e, ok := figures[*figure]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtables: no figure %d\n", *figure)
			os.Exit(2)
		}
		runOne(e)
	case *extension != "":
		e, ok := extensions[*extension]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtables: no extension %q\n", *extension)
			os.Exit(2)
		}
		runOne(e)
	case *ablation != "":
		e, ok := ablations[*ablation]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtables: no ablation %q\n", *ablation)
			os.Exit(2)
		}
		runOne(e)
	default:
		for i := 1; i <= 7; i++ {
			runOne(tables[i])
		}
		for _, i := range []int{6, 7, 8} {
			runOne(figures[i])
		}
		for _, name := range []string{"binning", "curve", "assignment", "plodfill", "fileorg"} {
			runOne(ablations[name])
		}
		runOne(extensions["multires"])
	}
}
