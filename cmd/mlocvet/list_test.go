package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mloc/internal/lint"
)

// TestListMatchesSuite checks -list prints exactly one line per
// analyzer, in suite order, with the analyzer's one-line doc.
func TestListMatchesSuite(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d (stderr: %s)", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	all := lint.All()
	// The v4 suite ships twenty analyzers; a drop here means a
	// registration was lost, not that the suite shrank on purpose.
	if len(all) != 20 {
		t.Fatalf("suite has %d analyzers, want 20", len(all))
	}
	if len(lines) != len(all) {
		t.Fatalf("-list printed %d lines, suite has %d analyzers:\n%s", len(lines), len(all), stdout.String())
	}
	for _, name := range []string{"taintflow", "bodylimit", "labelcard"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing the taint analyzer %s", name)
		}
	}
	for i, a := range all {
		fields := strings.Fields(lines[i])
		if len(fields) == 0 || fields[0] != a.Name {
			t.Errorf("line %d = %q, want it to start with %q", i, lines[i], a.Name)
			continue
		}
		if !strings.Contains(lines[i], a.Doc) {
			t.Errorf("line %d for %s lacks its doc %q: %q", i, a.Name, a.Doc, lines[i])
		}
	}
}

// TestListMatchesSARIFRules checks the -list catalog and the SARIF
// rules catalog are the same set: everything the gate can report is
// discoverable from the command line, and vice versa.
func TestListMatchesSARIFRules(t *testing.T) {
	var listOut, stderr bytes.Buffer
	if code := run([]string{"-list"}, &listOut, &stderr); code != 0 {
		t.Fatalf("-list: exit %d (stderr: %s)", code, stderr.String())
	}
	listed := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(listOut.String(), "\n"), "\n") {
		if fields := strings.Fields(line); len(fields) > 0 {
			listed[fields[0]] = true
		}
	}

	var sarifOut bytes.Buffer
	stderr.Reset()
	// The clean fixture direction (exit 0) also proves rules are
	// emitted even when no findings fire.
	code := run([]string{"-sarif", "../../internal/lint/testdata/src/ctxfirst"}, &sarifOut, &stderr)
	if code != 0 && code != 1 {
		t.Fatalf("-sarif: exit %d (stderr: %s)", code, stderr.String())
	}
	var log sarifShape
	if err := json.Unmarshal(sarifOut.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v", err)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d SARIF runs, want 1", len(log.Runs))
	}
	rules := make(map[string]bool)
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for id := range rules {
		if !listed[id] {
			t.Errorf("SARIF rule %q is not in -list output", id)
		}
	}
	for name := range listed {
		if !rules[name] {
			t.Errorf("-list analyzer %q has no SARIF rule", name)
		}
	}
}
