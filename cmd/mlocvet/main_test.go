package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// diagRe is the documented diagnostic shape: file:line: analyzer: message.
var diagRe = regexp.MustCompile(`^(.+\.go):(\d+): ([a-z-]+): (.+)$`)

// TestRunFlagsFindingsOnBadFixture drives the whole stack — loader,
// analyzers, suppression, formatting — over a known-bad fixture and
// checks the exit code and the diagnostic format.
func TestRunFlagsFindingsOnBadFixture(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/src/floatcmp"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run on bad fixture: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("no diagnostics printed")
	}
	for _, line := range lines {
		if !diagRe.MatchString(line) {
			t.Errorf("diagnostic %q does not match file:line: analyzer: message", line)
		}
	}
	joined := stdout.String()
	if !strings.Contains(joined, "floatcmp:") {
		t.Errorf("expected a floatcmp diagnostic, got:\n%s", joined)
	}
}

// TestRunCleanPackage asserts a clean package exits 0 with no output.
func TestRunCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"."}, &stdout, &stderr); code != 0 {
		t.Fatalf("run on cmd/mlocvet: exit %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", stdout.String())
	}
}

// TestRunOnlySelectsAnalyzer checks -only filtering and the unknown-
// analyzer usage error.
func TestRunOnlySelectsAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "errprefix", "../../internal/lint/testdata/src/floatcmp"}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("-only errprefix on the floatcmp fixture: exit %d, want 0 (output: %s)", code, stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "bogus", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("-only bogus: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("missing unknown-analyzer message, stderr: %s", stderr.String())
	}
}

// TestRunSkipExcludesAnalyzer checks -skip filtering: skipping the
// only analyzer that fires makes the fixture clean, skipping an
// unknown name is a usage error, and skipping everything -only
// selected leaves nothing to run.
func TestRunSkipExcludesAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "floatcmp,errprefix", "-skip", "floatcmp",
		"../../internal/lint/testdata/src/floatcmp"}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("-skip floatcmp on the floatcmp fixture: exit %d, want 0 (output: %s)", code, stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-skip", "bogus", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("-skip bogus: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("missing unknown-analyzer message, stderr: %s", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "floatcmp", "-skip", "floatcmp", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("-only floatcmp -skip floatcmp: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "no analyzers") {
		t.Errorf("missing empty-set message, stderr: %s", stderr.String())
	}
}

// TestRunList checks -list names every analyzer.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d, want 0", code)
	}
	for _, name := range []string{"spmd-goroutine", "errprefix", "floatcmp", "commescape", "uncheckederr", "exporteddoc"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
