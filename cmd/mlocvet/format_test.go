package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mloc/internal/lint"
)

const badFixture = "../../internal/lint/testdata/src/floatcmp"

// TestRunJSONOutput checks -json emits a parseable array with the
// documented fields.
func TestRunJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", badFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("-json on bad fixture: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json produced an empty array on a bad fixture")
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if strings.Contains(d.File, `\`) {
			t.Errorf("file %q is not slash-separated", d.File)
		}
	}
}

// sarifShape mirrors the parts of SARIF 2.1.0 the gate depends on.
type sarifShape struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID string `json:"id"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID  string `json:"ruleId"`
			Level   string `json:"level"`
			Message struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine int `json:"startLine"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

// TestRunSARIFOutput checks -sarif emits a structurally valid SARIF
// 2.1.0 log whose rules cover the whole suite.
func TestRunSARIFOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sarif", badFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("-sarif on bad fixture: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var log sarifShape
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif") {
		t.Errorf("version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "mlocvet" {
		t.Errorf("driver name %q, want mlocvet", r.Tool.Driver.Name)
	}
	if len(r.Tool.Driver.Rules) != len(lint.All()) {
		t.Errorf("%d rules, want one per analyzer (%d)", len(r.Tool.Driver.Rules), len(lint.All()))
	}
	if len(r.Results) == 0 {
		t.Fatal("no results on a bad fixture")
	}
	sawFloatcmp := false
	for _, res := range r.Results {
		if res.RuleID == "floatcmp" {
			sawFloatcmp = true
		}
		if res.Message.Text == "" || len(res.Locations) != 1 {
			t.Errorf("malformed result: %+v", res)
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine <= 0 {
			t.Errorf("malformed location: %+v", loc)
		}
	}
	if !sawFloatcmp {
		t.Error("no floatcmp result on the floatcmp fixture")
	}
}

// TestRunJSONAndSARIFExclusive checks the two formats cannot combine.
func TestRunJSONAndSARIFExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-sarif", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("-json -sarif: exit %d, want 2", code)
	}
}

// TestBaselineRoundTrip drives the write/compare cycle: a snapshot of
// the current findings makes the same run exit 0, and a run with
// findings beyond the snapshot exits 1 reporting only the new ones.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-write-baseline", full, badFixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline: exit %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "wrote baseline") {
		t.Errorf("missing write confirmation, stderr: %s", stderr.String())
	}

	// Same tree, same baseline: every finding is accepted, exit 0.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", full, badFixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("baseline compare on unchanged tree: exit %d\nstdout: %s", code, stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unchanged tree reported findings:\n%s", stdout.String())
	}

	// A baseline that predates the floatcmp findings (written with an
	// analyzer that fires nothing here) makes them NEW: exit 1, and
	// only the new findings print.
	narrow := filepath.Join(dir, "narrow.json")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "errprefix", "-write-baseline", narrow, badFixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline (narrow): exit %d (stderr: %s)", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", narrow, badFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("baseline compare with new findings: exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "floatcmp:") {
		t.Errorf("new findings not reported:\n%s", stdout.String())
	}
}

// TestBaselineRejectsCorruptFile checks a malformed baseline is a usage
// error, not a silent all-clear.
func TestBaselineRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", path, badFixture}, &stdout, &stderr); code != 2 {
		t.Errorf("corrupt baseline: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
}

// vetRepoBaseline reads the recorded full-repo pass time from the
// committed BENCH_build.json checkpoint; zero when the file or field
// is absent.
func vetRepoBaseline(b *testing.B) time.Duration {
	b.Helper()
	data, err := os.ReadFile("../../BENCH_build.json")
	if err != nil {
		return 0
	}
	var doc struct {
		VetRepo struct {
			NsOp int64 `json:"ns_op"`
		} `json:"vet_repo"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0
	}
	return time.Duration(doc.VetRepo.NsOp)
}

// BenchmarkMlocvetRepo times the full-repo analyzer pass and guards
// the CI budget two ways: an absolute ceiling (the gate runs on every
// push, so one pass must stay within seconds, not minutes), and a
// relative one — adding the taint generation must not blow past 2x
// the recorded vet_repo checkpoint in BENCH_build.json. The relative
// budget is floored at 15s so a slow CI machine does not fail a
// checkpoint recorded on a fast one.
func BenchmarkMlocvetRepo(b *testing.B) {
	budget := 30 * time.Second
	if base := vetRepoBaseline(b); base > 0 {
		if rel := 2 * base; rel > 15*time.Second && rel < budget {
			budget = rel
		} else if rel <= 15*time.Second {
			budget = 15 * time.Second
		}
	}
	for i := 0; i < b.N; i++ {
		var stdout, stderr bytes.Buffer
		start := time.Now()
		if code := run([]string{"../../..."}, &stdout, &stderr); code != 0 {
			b.Fatalf("full-repo run: exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
		if d := time.Since(start); d > budget {
			b.Fatalf("full-repo pass took %v, budget %v", d, budget)
		}
	}
	b.ReportMetric(float64(len(lint.All())), "analyzers/op")
}
