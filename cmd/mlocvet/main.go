// Command mlocvet runs MLOC's custom static-analysis suite over the
// repository. It is the stdlib-only companion to `go vet`: the
// analyzers in internal/lint machine-enforce conventions the standard
// checks do not know about (SPMD-only goroutines, rank-local
// *mpi.Comm, "<pkg>: " error prefixes, tolerance-based float
// comparison, checked errors, documented exports).
//
// Usage:
//
//	mlocvet [-list] [-only analyzer[,analyzer]] [packages]
//
// Packages follow go-tool patterns (directories, with an optional
// "..." wildcard suffix); the default is "./...". Diagnostics print
// one per line as "file:line: analyzer: message". The exit code is 0
// when the tree is clean, 1 when any diagnostic fired, and 2 on usage
// or load errors. A finding is suppressed by a trailing (or
// immediately preceding) "//mlocvet:ignore <analyzer>" comment.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mloc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// printf writes formatted driver output. A failed write (closed pipe)
// must not mask the analysis exit code, so the write error is
// deliberately dropped.
func printf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...) //mlocvet:ignore uncheckederr
}

// run executes the driver and returns its exit code: 0 clean, 1
// findings, 2 usage or load failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mlocvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		printf(stderr, "usage: mlocvet [-list] [-only analyzer[,analyzer]] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				printf(stderr, "mlocvet: unknown analyzer %q (see mlocvet -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *list {
		for _, a := range analyzers {
			printf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		printf(stderr, "mlocvet: %v\n", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		printf(stderr, "mlocvet: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		printf(stderr, "mlocvet: no packages matched\n")
		return 2
	}

	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			printf(stderr, "mlocvet: %v\n", err)
			return 2
		}
		for _, d := range lint.Run(pkg, analyzers) {
			d.Pos.Filename = relPath(d.Pos.Filename)
			printf(stdout, "%s\n", d)
			exit = 1
		}
	}
	return exit
}

// relPath shortens an absolute diagnostic path relative to the current
// directory when that makes it strictly shorter to read.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
