// Command mlocvet runs MLOC's custom static-analysis suite over the
// repository. It is the stdlib-only companion to `go vet`: the
// analyzers in internal/lint machine-enforce conventions the standard
// checks do not know about — the syntactic generation (SPMD-only
// goroutines, rank-local *mpi.Comm, "<pkg>: " error prefixes,
// tolerance-based float comparison, checked errors, documented
// exports), the flow-aware generation (lock-order cycles, untrusted
// wire lengths reaching allocations, hot-loop allocations, shared
// magic constants, mixed atomic/mutex field disciplines), and the
// lifecycle generation built on per-function CFGs and a
// must-happen-on-every-path dataflow solver (goroutines with a bounded
// exit, forwarded contexts, pooled values released on every path,
// virtual-clock charges for simulated I/O, reasoned suppressions).
//
// Usage:
//
//	mlocvet [-list] [-only names] [-skip names] [-json|-sarif]
//	        [-baseline file] [-write-baseline file] [packages]
//
// Packages follow go-tool patterns (directories, with an optional
// "..." wildcard suffix); the default is "./...". All matched packages
// load into one program so the cross-package analyzers see every edge.
// Diagnostics print one per line as "file:line: analyzer: message";
// -json emits them as a JSON array and -sarif as a SARIF 2.1.0 log for
// code-scanning upload.
//
// -write-baseline snapshots the current findings and exits 0.
// -baseline compares against a snapshot: previously accepted findings
// are filtered out and only NEW findings are reported and fail the
// run. The exit code is 0 when nothing (new) fired, 1 otherwise, and 2
// on usage or load errors. A finding is suppressed at the source line
// by a trailing (or immediately preceding) "//mlocvet:ignore
// <analyzer> -- <reason>" comment; the ignorereason analyzer reports
// directives whose reason tail is missing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mloc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// printf writes formatted driver output. A failed write (closed pipe)
// must not mask the analysis exit code, so the write error is
// deliberately dropped.
func printf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...) //mlocvet:ignore uncheckederr -- diagnostics to stderr; a failed write has nowhere better to go
}

// run executes the driver and returns its exit code: 0 clean, 1
// (new) findings, 2 usage or load failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mlocvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzer names to exclude from the run")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	baselinePath := fs.String("baseline", "", "report only findings not in this baseline `file`")
	writeBaseline := fs.String("write-baseline", "", "snapshot current findings to `file` and exit 0")
	fs.Usage = func() {
		printf(stderr, "usage: mlocvet [-list] [-only names] [-skip names] [-json|-sarif] [-baseline file] [-write-baseline file] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		printf(stderr, "mlocvet: -json and -sarif are mutually exclusive\n")
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				printf(stderr, "mlocvet: unknown analyzer %q (see mlocvet -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *skip != "" {
		skipped := make(map[string]bool)
		for _, name := range strings.Split(*skip, ",") {
			name = strings.TrimSpace(name)
			if lint.ByName(name) == nil {
				printf(stderr, "mlocvet: unknown analyzer %q (see mlocvet -list)\n", name)
				return 2
			}
			skipped[name] = true
		}
		kept := analyzers[:0:0]
		for _, a := range analyzers {
			if !skipped[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		printf(stderr, "mlocvet: -only/-skip left no analyzers to run\n")
		return 2
	}
	if *list {
		for _, a := range analyzers {
			printf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		printf(stderr, "mlocvet: %v\n", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		printf(stderr, "mlocvet: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		printf(stderr, "mlocvet: no packages matched\n")
		return 2
	}

	// Load every matched package into one program: the cross-package
	// analyzers (lockorder, atomicmix) need the whole graph at once.
	pkgs := make([]*lint.Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			printf(stderr, "mlocvet: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	diags := lint.RunAll(pkgs, analyzers)
	for i := range diags {
		diags[i].Pos.Filename = relPath(diags[i].Pos.Filename)
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			printf(stderr, "mlocvet: %v\n", err)
			return 2
		}
		werr := lint.WriteBaseline(f, lint.NewBaseline(diags))
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			printf(stderr, "mlocvet: writing baseline: %v\n", werr)
			return 2
		}
		printf(stderr, "mlocvet: wrote baseline %s (%d findings)\n", *writeBaseline, len(diags))
		return 0
	}

	report := diags
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			printf(stderr, "mlocvet: %v\n", err)
			return 2
		}
		base, err := lint.ReadBaseline(f)
		_ = f.Close() //mlocvet:ignore uncheckederr -- baseline file opened read-only; close cannot lose data
		if err != nil {
			printf(stderr, "mlocvet: %v\n", err)
			return 2
		}
		report = base.New(diags)
	}

	switch {
	case *sarifOut:
		if err := lint.WriteSARIF(stdout, report, analyzers); err != nil {
			printf(stderr, "mlocvet: %v\n", err)
			return 2
		}
	case *jsonOut:
		if err := writeJSON(stdout, report); err != nil {
			printf(stderr, "mlocvet: %v\n", err)
			return 2
		}
	default:
		for _, d := range report {
			printf(stdout, "%s\n", d)
		}
	}
	if len(report) > 0 {
		return 1
	}
	return 0
}

// jsonDiag is the -json output shape for one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits diagnostics as an indented JSON array.
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     filepath.ToSlash(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relPath shortens an absolute diagnostic path relative to the current
// directory when that makes it strictly shorter to read.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
