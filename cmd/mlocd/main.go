// Command mlocd is the MLOC query-service daemon. It runs in one of
// two roles:
//
//   - -role data (the default): build (or ingest) variable stores on
//     the simulated PFS, then serve concurrent query traffic over
//     HTTP/JSON with admission control, cooperative cancellation, and
//     a shared decoded-unit cache.
//   - -role router: front a cluster of data nodes. The router learns
//     the variable set from its nodes at startup, shards each variable
//     into storage-order row slabs placed by consistent hash, and
//     answers the same /query API by scatter-gathering sub-queries,
//     with hedged retries, failover, and degraded partial results.
//
// Usage:
//
//	mlocd -addr 127.0.0.1:8080 -store phi=gts:512 -store chi=s3d:64:2
//	mlocd -store t=file:temps.f64:1024x1024 -cache-mb 128
//	mlocd -role router -node 127.0.0.1:8081 -node 127.0.0.1:8082 -replication 2
//
// Store specs take the form name=source, where source is one of
//
//	gts:SIDE[:SEED]        synthetic 2-D GTS-like field
//	s3d:SIDE[:SEED]        synthetic 3-D S3D-like field
//	file:PATH:SHAPE        raw little-endian float64 file (mlocctl gen)
//
// Endpoints (both roles serve the same query surface):
//
//	POST /query         {"var":..., "vc":{"min":..,"max":..}, "sc":{"lo":[..],"hi":[..]}, "plod":N, "ranks":N, "index_only":bool}
//	GET  /stats         flat JSON counters (admission, outcomes, cache | routing)
//	GET  /vars          served variables with shapes
//	GET  /healthz       readiness (503 while draining)
//	GET  /metrics       Prometheus text exposition (SLO counters, exemplar trace ids)
//	GET  /debug/traces  retained span trees, newest first (?id=N for one)
//	GET  /debug/querylog  always-on per-query log, newest first (?store= ?var= ?min_latency=)
//	GET  /debug/pprof/  Go runtime profiles (only with -pprof)
//	GET|POST /cluster/fault   data nodes: fault-injection admin (mlocctl cluster fault)
//	GET  /cluster/nodes       router: shard topology and per-node health
//
// Every query (and each startup store build) runs under a trace whose
// span tree decomposes its virtual latency into fetch, decode,
// reassemble, and filter work; /query responses carry the trace_id.
// Queries slower than -slow-query-threshold (wall clock) are logged.
//
// On SIGINT/SIGTERM the daemon stops admitting queries (503 +
// Retry-After), drains in-flight ones up to -drain-timeout, then exits.
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mloc/internal/cache"
	"mloc/internal/cluster/fault"
	"mloc/internal/cluster/health"
	"mloc/internal/cluster/router"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/obs"
	"mloc/internal/pfs"
	"mloc/internal/server"
)

// stringList collects repeatable string flags (-store, -node).
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "mlocd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mlocd", flag.ExitOnError)
	role := fs.String("role", "data", "process role: data (serve stores) | router (front a cluster of data nodes)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	var specs stringList
	fs.Var(&specs, "store", "variable store spec name=gts:SIDE[:SEED] | name=s3d:SIDE[:SEED] | name=file:PATH:SHAPE (repeatable; data role)")
	chunkStr := fs.String("chunk", "", "chunk size, e.g. 64x64 (default side/16 per dim)")
	bins := fs.Int("bins", 100, "equal-frequency bins per store")
	mode := fs.String("mode", "col", "MLOC variant: col | iso | isa")
	orderStr := fs.String("order", "V-M-S", "level order: V-M-S or V-S-M")
	hindex := fs.Bool("hindex", true, "build the hierarchical super-bin index per store")
	ranks := fs.Int("ranks", 4, "default parallel ranks per query")
	maxConcurrent := fs.Int("max-concurrent", 8, "max simultaneously executing queries")
	maxQueue := fs.Int("max-queue", 0, "max queued queries (default 2x max-concurrent)")
	queueWait := fs.Duration("queue-wait", 2*time.Second, "longest a query waits for a slot")
	cacheMB := fs.Int("cache-mb", 64, "shared decode cache size in MiB (0 disables)")
	maxMatches := fs.Int("max-matches", 65536, "matches returned per response")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight queries")
	pprofOn := fs.Bool("pprof", false, "serve Go runtime profiles under /debug/pprof/")
	slowQuery := fs.Duration("slow-query-threshold", 0, "log queries slower than this wall-clock duration (0 disables)")
	traceBuffer := fs.Int("trace-buffer", obs.DefaultTraceCapacity, "query traces retained for /debug/traces")
	sloStr := fs.String("slo", obs.DefaultSLOObjectives, "comma-separated latency objectives behind the mloc_slo_query_* counters, e.g. 100ms,1s")
	querylogBuffer := fs.Int("querylog-buffer", obs.DefaultQueryLogCapacity, "query records retained for /debug/querylog")
	var nodes stringList
	fs.Var(&nodes, "node", "data-node address host:port (repeatable; router role)")
	replication := fs.Int("replication", 2, "data nodes owning each shard (router role)")
	slabsPerVar := fs.Int("slabs-per-var", 0, "row slabs per variable (router role; default 4x nodes)")
	shardSeed := fs.Uint64("shard-seed", 1, "shard-map placement seed (router role)")
	shardTimeout := fs.Duration("shard-timeout", 10*time.Second, "per-shard sub-query budget including retries (router role)")
	hedgeAfter := fs.Duration("hedge-after", 250*time.Millisecond, "launch a replica hedge when a shard is this slow; 0 disables (router role)")
	healthInterval := fs.Duration("health-interval", time.Second, "data-node health probe interval (router role)")
	noPropagation := fs.Bool("no-trace-propagation", false, "do not graft data-node span subtrees into router traces (router role)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sloObjectives, err := obs.ParseSLOObjectives(*sloStr)
	if err != nil {
		return fmt.Errorf("bad -slo: %w", err)
	}
	switch *role {
	case "router":
		if len(specs) > 0 {
			return fmt.Errorf("-store is only valid with -role data; a router builds nothing")
		}
		return runRouter(routerOpts{
			addr:           *addr,
			nodes:          nodes,
			replication:    *replication,
			slabsPerVar:    *slabsPerVar,
			seed:           *shardSeed,
			shardTimeout:   *shardTimeout,
			hedgeAfter:     *hedgeAfter,
			healthInterval: *healthInterval,
			maxMatches:     *maxMatches,
			drainTimeout:   *drainTimeout,
			traceBuffer:    *traceBuffer,
			sloObjectives:  sloObjectives,
			querylogBuffer: *querylogBuffer,
			noPropagation:  *noPropagation,
			pprofOn:        *pprofOn,
		})
	case "data":
		// fall through below
	default:
		return fmt.Errorf("unknown -role %q (want data or router)", *role)
	}
	if len(specs) == 0 {
		return fmt.Errorf("at least one -store spec is required")
	}

	cfgTemplate, err := storeConfig(*mode, *chunkStr, *bins, *orderStr)
	if err == nil {
		cfgTemplate.HierarchicalIndex = *hindex
	}
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(*traceBuffer)
	sim := pfs.New(pfs.DefaultConfig())
	sim.Instrument(reg)
	stores, err := buildStores(sim, specs, cfgTemplate, tracer)
	if err != nil {
		return err
	}
	for name, st := range stores {
		fmt.Printf("mlocd: built store %q: shape %s, %d bins, %.2f MB on PFS\n",
			name, st.Shape(), st.NumBins(), float64(st.TotalBytes())/1e6)
	}

	var c *cache.Cache
	if *cacheMB > 0 {
		c, err = cache.New(int64(*cacheMB) << 20)
		if err != nil {
			return err
		}
	}
	svc, err := server.New(server.Config{
		Stores:             stores,
		Cache:              c,
		MaxConcurrent:      *maxConcurrent,
		MaxQueue:           *maxQueue,
		QueueWait:          *queueWait,
		DefaultRanks:       *ranks,
		MaxMatches:         *maxMatches,
		Registry:           reg,
		Tracer:             tracer,
		SlowQueryThreshold: *slowQuery,
		SLOObjectives:      sloObjectives,
		QueryLogCapacity:   *querylogBuffer,
	})
	if err != nil {
		return err
	}

	// The service rides behind a fault injector so tests and operators
	// can make this node misbehave on demand; the injector's admin
	// endpoint sits OUTSIDE the wrap so a killed node stays revivable.
	inj := fault.New()
	handler := composeDataHandler(svc.Handler(), inj, *pprofOn)
	return serveAndDrain(*addr, handler, svc.SetDraining, *drainTimeout, nil)
}

// composeDataHandler mounts the data-node handler stack: the query
// service wrapped by the fault injector, the injector admin, and
// (optionally) pprof — admin and profiles are exempt from injection.
func composeDataHandler(svc http.Handler, inj *fault.Injector, pprofOn bool) http.Handler {
	outer := http.NewServeMux()
	outer.Handle("/", inj.Wrap(svc))
	outer.Handle("/cluster/fault", inj.AdminHandler())
	if pprofOn {
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Println("mlocd: pprof enabled at /debug/pprof/")
	}
	return outer
}

// routerOpts carries the router-role CLI surface into runRouter.
type routerOpts struct {
	addr           string
	nodes          []string
	replication    int
	slabsPerVar    int
	seed           uint64
	shardTimeout   time.Duration
	hedgeAfter     time.Duration
	healthInterval time.Duration
	maxMatches     int
	drainTimeout   time.Duration
	traceBuffer    int
	sloObjectives  []time.Duration
	querylogBuffer int
	noPropagation  bool
	pprofOn        bool
}

// runRouter starts the metadata/routing plane: a health checker over
// the data nodes, the shard map bootstrap, and the scatter-gather
// query front end.
func runRouter(o routerOpts) error {
	if len(o.nodes) == 0 {
		return fmt.Errorf("router role requires at least one -node")
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(o.traceBuffer)
	hc, err := health.New(health.Config{Nodes: o.nodes, Interval: o.healthInterval})
	if err != nil {
		return err
	}
	hc.Instrument(reg)
	hctx, hcancel := context.WithCancel(context.Background())
	hc.Start(hctx)
	stopHealth := func() {
		hcancel()
		hc.Wait()
	}
	rt, err := router.New(router.Config{
		Nodes:        o.nodes,
		Replication:  o.replication,
		SlabsPerVar:  o.slabsPerVar,
		Seed:         o.seed,
		ShardTimeout: o.shardTimeout,
		HedgeAfter:   o.hedgeAfter,
		MaxMatches:   o.maxMatches,
		Health:       hc,
		Registry:     reg,
		Tracer:       tracer,

		SLOObjectives:           o.sloObjectives,
		QueryLogCapacity:        o.querylogBuffer,
		DisableTracePropagation: o.noPropagation,
	})
	if err != nil {
		stopHealth()
		return err
	}
	if err := rt.Bootstrap(context.Background()); err != nil {
		stopHealth()
		return err
	}
	var handler http.Handler = rt.Handler()
	if o.pprofOn {
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = outer
		fmt.Println("mlocd: pprof enabled at /debug/pprof/")
	}
	fmt.Printf("mlocd: routing %d vars across %d data nodes\n", len(rt.Vars()), len(o.nodes))
	return serveAndDrain(o.addr, handler, rt.SetDraining, o.drainTimeout, stopHealth)
}

// serveAndDrain is the shared daemon lifecycle: listen, serve, and on
// SIGINT/SIGTERM stop admitting work, drain in-flight requests within
// the budget, then run afterDrain (health-checker teardown, etc).
func serveAndDrain(addr string, handler http.Handler, setDraining func(bool), drainTimeout time.Duration, afterDrain func()) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	fmt.Printf("mlocd: listening on %s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	// The server loop must not block signal handling; this is daemon
	// plumbing, not data parallelism.
	go func() { errc <- httpSrv.Serve(ln) }() //mlocvet:ignore spmd-goroutine -- the serve loop is a daemon lifecycle, not SPMD compute; its exit is joined via errc

	select {
	case sig := <-sigc:
		fmt.Printf("mlocd: %v received, draining (budget %s)\n", sig, drainTimeout)
		setDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if afterDrain != nil {
			afterDrain()
		}
		fmt.Println("mlocd: drained, bye")
		return nil
	case err := <-errc:
		return err
	}
}

// storeConfig assembles the shared core.Config template from CLI flags.
func storeConfig(mode, chunkStr string, bins int, orderStr string) (core.Config, error) {
	var cfg core.Config
	// The chunk size is resolved per store (it depends on the shape);
	// the template records the other knobs.
	switch mode {
	case "col":
		cfg = core.DefaultConfig([]int{1})
	case "iso":
		cfg = core.ISOConfig([]int{1})
	case "isa":
		cfg = core.ISAConfig([]int{1})
	default:
		return cfg, fmt.Errorf("unknown mode %q (want col, iso, or isa)", mode)
	}
	cfg.NumBins = bins
	order, err := core.ParseOrder(orderStr)
	if err != nil {
		return cfg, err
	}
	cfg.Order = order
	if chunkStr != "" {
		chunk, err := parseShape(chunkStr)
		if err != nil {
			return cfg, err
		}
		cfg.ChunkSize = chunk
	} else {
		cfg.ChunkSize = nil // resolved per store from its shape
	}
	return cfg, nil
}

// buildStores materializes every -store spec onto the PFS. Each build
// runs under its own retained trace, so /debug/traces explains startup
// cost span by span.
func buildStores(sim *pfs.Sim, specs []string, template core.Config, tracer *obs.Tracer) (map[string]*core.Store, error) {
	stores := make(map[string]*core.Store, len(specs))
	for _, spec := range specs {
		name, data, shape, err := loadSpec(spec)
		if err != nil {
			return nil, err
		}
		if _, dup := stores[name]; dup {
			return nil, fmt.Errorf("duplicate store name %q", name)
		}
		cfg := template
		if cfg.ChunkSize == nil {
			cfg.ChunkSize = defaultChunk(shape)
		}
		ctx, root := tracer.StartTrace(context.Background(), "build")
		root.SetString("store", name)
		st, err := core.BuildContext(ctx, sim, sim.NewClock(), "mlocd/"+name, shape, data, cfg)
		root.End()
		if err != nil {
			return nil, fmt.Errorf("building %q: %w", name, err)
		}
		stores[name] = st
	}
	return stores, nil
}

// loadSpec parses one name=source spec and loads its data.
func loadSpec(spec string) (name string, data []float64, shape grid.Shape, err error) {
	name, source, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", nil, nil, fmt.Errorf("bad -store %q (want name=source)", spec)
	}
	kind, rest, _ := strings.Cut(source, ":")
	switch kind {
	case "gts", "s3d":
		side, seed, perr := parseSideSeed(rest)
		if perr != nil {
			return "", nil, nil, fmt.Errorf("bad -store %q: %w", spec, perr)
		}
		var ds *datagen.Dataset
		if kind == "gts" {
			ds = datagen.GTSLike(side, side, seed)
		} else {
			ds = datagen.S3DLike(side, seed)
		}
		return name, ds.Vars[0].Data, ds.Shape, nil
	case "file":
		path, shapeStr, ok := strings.Cut(rest, ":")
		if !ok {
			return "", nil, nil, fmt.Errorf("bad -store %q (want name=file:PATH:SHAPE)", spec)
		}
		shape, err = parseShape(shapeStr)
		if err != nil {
			return "", nil, nil, fmt.Errorf("bad -store %q: %w", spec, err)
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return "", nil, nil, rerr
		}
		if int64(len(raw)) != 8*shape.Elems() {
			return "", nil, nil, fmt.Errorf("%s has %d bytes, shape %s needs %d",
				path, len(raw), shape, 8*shape.Elems())
		}
		data = make([]float64, shape.Elems())
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		return name, data, shape, nil
	default:
		return "", nil, nil, fmt.Errorf("bad -store %q: unknown source %q (want gts, s3d, or file)", spec, kind)
	}
}

// parseSideSeed parses "SIDE" or "SIDE:SEED".
func parseSideSeed(s string) (side int, seed int64, err error) {
	sideStr, seedStr, hasSeed := strings.Cut(s, ":")
	side, err = strconv.Atoi(sideStr)
	if err != nil || side < 1 {
		return 0, 0, fmt.Errorf("bad side %q", sideStr)
	}
	seed = 1
	if hasSeed {
		seed, err = strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad seed %q", seedStr)
		}
	}
	return side, seed, nil
}

// defaultChunk mirrors mlocctl's side/16 heuristic.
func defaultChunk(shape grid.Shape) []int {
	chunk := make([]int, shape.Dims())
	for d := range chunk {
		chunk[d] = shape[d] / 16
		if chunk[d] < 1 {
			chunk[d] = 1
		}
	}
	return chunk
}

// parseShape parses "64x64"-style dimension lists.
func parseShape(s string) (grid.Shape, error) {
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == 'x' || r == 'X' || r == ',' })
	shape := make(grid.Shape, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad shape component %q", p)
		}
		shape = append(shape, n)
	}
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	return shape, nil
}
