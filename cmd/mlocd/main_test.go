package main

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mloc/internal/cache"
	"mloc/internal/cluster/fault"
	"mloc/internal/core"
	"mloc/internal/obs"
	"mloc/internal/pfs"
	"mloc/internal/server"
)

func TestLoadSpecSynthetic(t *testing.T) {
	name, data, shape, err := loadSpec("phi=gts:32:7")
	if err != nil {
		t.Fatal(err)
	}
	if name != "phi" || len(shape) != 2 || shape[0] != 32 {
		t.Fatalf("loadSpec = %q %v", name, shape)
	}
	if int64(len(data)) != shape.Elems() {
		t.Fatalf("%d values for shape %v", len(data), shape)
	}
	if _, _, _, err := loadSpec("v=s3d:8"); err != nil {
		t.Fatalf("s3d spec: %v", err)
	}
}

func TestLoadSpecFile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6}
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	path := filepath.Join(t.TempDir(), "data.f64")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	name, data, shape, err := loadSpec("t=file:" + path + ":2x3")
	if err != nil {
		t.Fatal(err)
	}
	if name != "t" || shape.Elems() != 6 || data[4] != 5 {
		t.Fatalf("loadSpec = %q %v %v", name, shape, data)
	}
}

func TestLoadSpecErrors(t *testing.T) {
	bad := []string{
		"",                    // no name
		"noequals",            // no source
		"=gts:32",             // empty name
		"v=nope:32",           // unknown source
		"v=gts:zero",          // bad side
		"v=gts:-4",            // negative side
		"v=gts:32:notanumber", // bad seed
		"v=file:/nope",        // file without shape
		"v=file:/nope/x:2x2",  // missing file
	}
	for _, spec := range bad {
		if _, _, _, err := loadSpec(spec); err == nil {
			t.Errorf("loadSpec(%q) accepted", spec)
		}
	}
}

func TestStoreConfig(t *testing.T) {
	cfg, err := storeConfig("col", "8x8", 12, "V-S-M")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumBins != 12 || len(cfg.ChunkSize) != 2 || cfg.Order.String() != core.OrderVSM.String() {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := storeConfig("bogus", "", 10, "V-M-S"); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := storeConfig("col", "", 10, "X-Y-Z"); err == nil {
		t.Error("bad order accepted")
	}
	auto, err := storeConfig("col", "", 10, "V-M-S")
	if err != nil {
		t.Fatal(err)
	}
	if auto.ChunkSize != nil {
		t.Errorf("empty -chunk should defer chunk choice, got %v", auto.ChunkSize)
	}
}

// TestBuildStoresAndServe builds stores from specs exactly as main does
// and round-trips a query through the HTTP handler.
func TestBuildStoresAndServe(t *testing.T) {
	cfg, err := storeConfig("col", "", 8, "V-M-S")
	if err != nil {
		t.Fatal(err)
	}
	cfg.SampleSize = 256
	sim := pfs.New(pfs.DefaultConfig())
	tracer := obs.NewTracer(4)
	stores, err := buildStores(sim, []string{"phi=gts:32:1", "chi=gts:32:2"}, cfg, tracer)
	if err != nil {
		t.Fatal(err)
	}
	if len(stores) != 2 {
		t.Fatalf("built %d stores, want 2", len(stores))
	}
	if tracer.Len() != 2 {
		t.Errorf("retained %d build traces, want one per store", tracer.Len())
	}
	for _, td := range tracer.Dump() {
		if td.Root.Find("pass_binning") == nil || td.Root.Find("pass_encode") == nil {
			t.Errorf("build trace %d missing pass spans", td.ID)
		}
	}
	if _, err := buildStores(sim, []string{"a=gts:16", "a=gts:16"}, cfg, obs.NewTracer(4)); err == nil {
		t.Error("duplicate store name accepted")
	}

	c, err := cache.New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := server.New(server.Config{Stores: stores, Cache: c, DefaultRanks: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"var":"chi","vc":{"min":-1e30,"max":1e30}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var res struct {
		MatchesTotal int `json:"matches_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.MatchesTotal == 0 {
		t.Fatal("full-range query matched nothing")
	}
}

// TestComposeDataHandler checks the data-node handler stack: the fault
// admin is reachable outside the injected path, and a kill-mode
// injector drops service requests while the admin stays alive to
// revive the node.
func TestComposeDataHandler(t *testing.T) {
	svc := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	inj := fault.New()
	ts := httptest.NewServer(composeDataHandler(svc, inj, false))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("service status %d", resp.StatusCode)
	}

	if err := inj.Set(fault.Kill, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(ts.URL + "/vars"); err == nil {
		t.Fatal("killed node answered a service request")
	}
	resp, err = http.Post(ts.URL+"/cluster/fault", "application/json",
		strings.NewReader(`{"mode":"off"}`))
	if err != nil {
		t.Fatalf("fault admin unreachable on a killed node: %v", err)
	}
	resp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault admin status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revived node status %d", resp.StatusCode)
	}
}

// TestRunRoleValidation covers the CLI surface around -role without
// starting listeners.
func TestRunRoleValidation(t *testing.T) {
	if err := run([]string{"-role", "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown -role") {
		t.Errorf("bogus role error = %v", err)
	}
	if err := run([]string{"-role", "router"}); err == nil || !strings.Contains(err.Error(), "at least one -node") {
		t.Errorf("router without nodes error = %v", err)
	}
	if err := run([]string{"-role", "router", "-node", "x", "-store", "phi=gts:16"}); err == nil ||
		!strings.Contains(err.Error(), "only valid with -role data") {
		t.Errorf("router with -store error = %v", err)
	}
	if err := run([]string{}); err == nil || !strings.Contains(err.Error(), "-store spec is required") {
		t.Errorf("data without stores error = %v", err)
	}
}
