package stage

import (
	"strings"
	"sync"
	"testing"

	"mloc/internal/binning"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

func testPipeline(t *testing.T, workers int) (*Pipeline, *pfs.Sim) {
	t.Helper()
	fs := pfs.New(pfs.DefaultConfig())
	cfg := core.DefaultConfig([]int{16, 16})
	cfg.NumBins = 8
	cfg.SampleSize = 256
	p, err := New(Config{FS: fs, Store: cfg, Prefix: "sim", Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return p, fs
}

func TestNewValidation(t *testing.T) {
	fs := pfs.New(pfs.DefaultConfig())
	good := core.DefaultConfig([]int{8, 8})
	if _, err := New(Config{Store: good, Prefix: "x"}); err == nil {
		t.Error("missing FS accepted")
	}
	if _, err := New(Config{FS: fs, Store: good}); err == nil {
		t.Error("missing prefix accepted")
	}
	if _, err := New(Config{FS: fs, Prefix: "x"}); err == nil {
		t.Error("missing chunk size accepted")
	}
}

func TestStageMultipleSteps(t *testing.T) {
	p, _ := testPipeline(t, 3)
	const steps = 5
	shapes := map[int]grid.Shape{}
	data := map[int][]float64{}
	for s := 0; s < steps; s++ {
		d := datagen.GTSLike(64, 64, int64(s+1))
		v, _ := d.Var("phi")
		shapes[s] = d.Shape
		data[s] = v.Data
		if err := p.Submit(StepVar{Step: s, Name: "phi", Shape: d.Shape, Data: v.Data}); err != nil {
			t.Fatal(err)
		}
	}
	results := p.Drain()
	if len(results) != steps {
		t.Fatalf("got %d results, want %d", len(results), steps)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("step %d: %v", r.Step, r.Err)
		}
		if r.Step != i {
			t.Fatalf("results not ordered: %d at %d", r.Step, i)
		}
		if r.IngestVirtualSec <= 0 {
			t.Errorf("step %d: no ingest time charged", r.Step)
		}
		// Each staged store must answer queries over its own step's data.
		lo, hi := datagen.Selectivity(data[r.Step], 0.1, 3, 512)
		vc := binning.ValueConstraint{Min: lo, Max: hi}
		res, err := r.Store.Query(&query.Request{VC: &vc}, 2)
		if err != nil {
			t.Fatal(err)
		}
		var want int
		for _, v := range data[r.Step] {
			if vc.Contains(v) {
				want++
			}
		}
		if len(res.Matches) != want {
			t.Fatalf("step %d: %d matches, want %d", r.Step, len(res.Matches), want)
		}
	}
}

func TestStepsLandAtDistinctPaths(t *testing.T) {
	p, fs := testPipeline(t, 2)
	d := datagen.GTSLike(32, 32, 9)
	v, _ := d.Var("phi")
	for s := 0; s < 3; s++ {
		if err := p.Submit(StepVar{Step: s, Name: "phi", Shape: d.Shape, Data: v.Data}); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	for s := 0; s < 3; s++ {
		if !fs.Exists("sim/step0000" + string(rune('0'+s)) + "/phi/meta") {
			t.Errorf("step %d store missing on PFS", s)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	p, _ := testPipeline(t, 1)
	if err := p.Submit(StepVar{Step: 0, Shape: grid.Shape{4, 4}, Data: make([]float64, 16)}); err == nil {
		t.Error("empty name accepted")
	}
	if err := p.Submit(StepVar{Step: 0, Name: "x", Shape: grid.Shape{0}, Data: nil}); err == nil {
		t.Error("bad shape accepted")
	}
	if err := p.Submit(StepVar{Step: 0, Name: "x", Shape: grid.Shape{4, 4}, Data: make([]float64, 3)}); err == nil {
		t.Error("length mismatch accepted")
	}
	p.Drain()
	d := datagen.GTSLike(16, 16, 1)
	v, _ := d.Var("phi")
	if err := p.Submit(StepVar{Step: 1, Name: "phi", Shape: d.Shape, Data: v.Data}); err == nil {
		t.Error("submit after drain accepted")
	}
}

func TestBuildFailuresReportedPerResult(t *testing.T) {
	fs := pfs.New(pfs.DefaultConfig())
	cfg := core.DefaultConfig([]int{16}) // 1-D chunking
	cfg.NumBins = 4
	p, err := New(Config{FS: fs, Store: cfg, Prefix: "bad", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 2-D data against a 1-D chunk config fails inside the worker.
	d := datagen.GTSLike(16, 16, 1)
	v, _ := d.Var("phi")
	if err := p.Submit(StepVar{Step: 0, Name: "phi", Shape: d.Shape, Data: v.Data}); err != nil {
		t.Fatal(err)
	}
	results := p.Drain()
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err == nil {
		t.Fatal("build failure not reported")
	}
	if !strings.Contains(results[0].Err.Error(), "step 0") {
		t.Errorf("error %q lacks step context", results[0].Err)
	}
	if results[0].Store != nil {
		t.Error("failed result carries a store")
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	// Multiple simulation threads submitting concurrently must not race
	// (run with -race).
	p, _ := testPipeline(t, 4)
	d := datagen.GTSLike(32, 32, 2)
	v, _ := d.Var("phi")
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(step int) {
			defer wg.Done()
			if err := p.Submit(StepVar{Step: step, Name: "phi", Shape: d.Shape, Data: v.Data}); err != nil {
				t.Error(err)
			}
		}(s)
	}
	wg.Wait()
	results := p.Drain()
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

func TestDrainIdempotent(t *testing.T) {
	p, _ := testPipeline(t, 1)
	d := datagen.GTSLike(16, 16, 1)
	v, _ := d.Var("phi")
	if err := p.Submit(StepVar{Step: 0, Name: "phi", Shape: d.Shape, Data: v.Data}); err != nil {
		t.Fatal(err)
	}
	a := p.Drain()
	b := p.Drain()
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("Drain results: %d then %d", len(a), len(b))
	}
}
