// Package stage implements MLOC's in-situ data processing pipeline
// (paper contribution 4: "a data processing pipeline which is readily
// incorporated with existing data staging frameworks [DataStager,
// PreDatA] to achieve efficient in-situ data layout optimization and
// compression").
//
// A running simulation emits time steps; the pipeline's staging workers
// run the MLOC layout pipeline (binning, PLoD splitting, Hilbert
// ordering, compression) concurrently with the simulation and write the
// per-step stores to the PFS. Submission is asynchronous with bounded
// buffering, modeling a staging area that applies back-pressure when
// the simulation outruns the staging nodes.
package stage

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mloc/internal/core"
	"mloc/internal/grid"
	"mloc/internal/pfs"
)

// Config parameterizes the staging pipeline.
type Config struct {
	// FS is the target parallel file system.
	FS *pfs.Sim
	// Store is the MLOC configuration applied to every variable.
	Store core.Config
	// Prefix is the PFS path prefix; stores land at
	// <Prefix>/step<NNNNN>/<var>.
	Prefix string
	// Workers is the number of concurrent staging workers (staging-node
	// cores). Defaults to 2.
	Workers int
	// QueueDepth bounds the number of submitted-but-unstaged variables
	// before Submit blocks (staging-area capacity). Defaults to
	// 2×Workers.
	QueueDepth int
}

// StepVar is one variable of one time step, as emitted by a simulation.
type StepVar struct {
	Step  int
	Name  string
	Shape grid.Shape
	Data  []float64
}

// Result is the outcome of staging one StepVar.
type Result struct {
	Step int
	Name string
	// Store is the built MLOC store (nil when Err != nil).
	Store *core.Store
	// IngestVirtualSec is the virtual time the build charged (PFS
	// writes plus scaled compression CPU).
	IngestVirtualSec float64
	// Err reports a failed build.
	Err error
}

// Pipeline is a running staging pipeline. Create with New, feed with
// Submit/SubmitContext, finish with Drain or Shutdown.
type Pipeline struct {
	cfg  Config
	in   chan StepVar
	wg   sync.WaitGroup
	once sync.Once
	// done closes once every worker has exited (all accepted steps
	// staged).
	done chan struct{}

	mu      sync.Mutex
	cond    *sync.Cond // signals sending transitions; guards close(in)
	results []Result
	closed  bool
	// sending counts SubmitContext calls between their closed-check and
	// their channel send; intake close waits for it to reach zero so a
	// concurrent Submit never sends on a closed channel.
	sending int
}

// New validates the configuration and starts the workers.
func New(cfg Config) (*Pipeline, error) {
	if cfg.FS == nil {
		return nil, fmt.Errorf("stage: FS is required")
	}
	if cfg.Prefix == "" {
		return nil, fmt.Errorf("stage: Prefix is required")
	}
	if len(cfg.Store.ChunkSize) == 0 {
		return nil, fmt.Errorf("stage: Store.ChunkSize is required")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	p := &Pipeline{
		cfg:  cfg,
		in:   make(chan StepVar, cfg.QueueDepth),
		done: make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < cfg.Workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p, nil
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for sv := range p.in {
		res := Result{Step: sv.Step, Name: sv.Name}
		clk := p.cfg.FS.NewClock()
		prefix := fmt.Sprintf("%s/step%05d/%s", p.cfg.Prefix, sv.Step, sv.Name)
		st, err := core.Build(p.cfg.FS, clk, prefix, sv.Shape, sv.Data, p.cfg.Store)
		if err != nil {
			res.Err = fmt.Errorf("stage: step %d %s: %w", sv.Step, sv.Name, err)
		} else {
			res.Store = st
			res.IngestVirtualSec = clk.Now()
		}
		p.mu.Lock()
		p.results = append(p.results, res)
		p.mu.Unlock()
	}
}

// Submit enqueues one variable for staging. It blocks when the staging
// queue is full (back-pressure on the simulation) and errors after
// shutdown. It is SubmitContext with a background context.
func (p *Pipeline) Submit(sv StepVar) error {
	return p.SubmitContext(context.Background(), sv)
}

// SubmitContext is Submit under a context: a submission blocked on a
// full staging queue aborts with an error wrapping ctx.Err() when the
// context ends, and the step is NOT accepted (the caller may re-emit
// it). Steps whose SubmitContext returned nil are accepted and are
// never lost, even when a shutdown races with the submission.
func (p *Pipeline) SubmitContext(ctx context.Context, sv StepVar) error {
	if sv.Name == "" {
		return fmt.Errorf("stage: variable name is required")
	}
	if err := sv.Shape.Validate(); err != nil {
		return fmt.Errorf("stage: %w", err)
	}
	if int64(len(sv.Data)) != sv.Shape.Elems() {
		return fmt.Errorf("stage: step %d %s: %d values for shape %v",
			sv.Step, sv.Name, len(sv.Data), sv.Shape)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("stage: pipeline already drained")
	}
	p.sending++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.sending--
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	select {
	case p.in <- sv:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("stage: step %d %s not accepted: %w", sv.Step, sv.Name, ctx.Err())
	}
}

// closeIntake marks the pipeline closed, waits for in-flight
// submissions to land or abort, then closes the staging queue and
// arranges for done to close when the workers finish. Called exactly
// once, through p.once.
func (p *Pipeline) closeIntake() {
	p.mu.Lock()
	p.closed = true
	for p.sending > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
	close(p.in)
	go func() {
		p.wg.Wait()
		close(p.done)
	}()
}

// snapshotResults copies the results accumulated so far, ordered by
// (step, name).
func (p *Pipeline) snapshotResults() []Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]Result(nil), p.results...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Shutdown closes submission and waits — bounded by ctx — for the
// workers to stage every accepted step. On a clean finish it returns
// the complete results with a nil error. When ctx ends first it
// returns the results completed so far plus an error wrapping
// ctx.Err(); the remaining accepted steps are still staged in the
// background and a later Shutdown or Drain call retrieves them
// (accepted steps are never lost). Individual build failures are
// reported inside the results, not as a Shutdown error. Shutdown is
// idempotent and safe to call concurrently with SubmitContext.
func (p *Pipeline) Shutdown(ctx context.Context) ([]Result, error) {
	p.once.Do(p.closeIntake)
	select {
	case <-p.done:
		return p.snapshotResults(), nil
	case <-ctx.Done():
		return p.snapshotResults(), fmt.Errorf("stage: shutdown interrupted: %w", ctx.Err())
	}
}

// Drain closes submission, waits for all staging work, and returns the
// results ordered by (step, name). Individual build failures are
// reported inside the results, not as a Drain error. Drain is
// idempotent.
func (p *Pipeline) Drain() []Result {
	p.once.Do(p.closeIntake)
	<-p.done
	return p.snapshotResults()
}
