package stage

import (
	"testing"

	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/pfs"
)

// BenchmarkStagingThroughput measures end-to-end in-situ ingest:
// simulation steps flowing through the staging workers into MLOC
// stores on the PFS.
func BenchmarkStagingThroughput(b *testing.B) {
	d := datagen.GTSLike(128, 128, 1)
	v, _ := d.Var("phi")
	const steps = 4
	b.SetBytes(int64(len(v.Data) * 8 * steps))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs := pfs.New(pfs.DefaultConfig())
		cfg := core.DefaultConfig([]int{32, 32})
		cfg.NumBins = 16
		p, err := New(Config{FS: fs, Store: cfg, Prefix: "sim", Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			if err := p.Submit(StepVar{Step: s, Name: "phi", Shape: d.Shape, Data: v.Data}); err != nil {
				b.Fatal(err)
			}
		}
		for _, r := range p.Drain() {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
