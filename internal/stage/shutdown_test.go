package stage

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mloc/internal/compress"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/pfs"
)

// gateCodec blocks every EncodeBytes call until release is closed,
// letting tests hold a staging worker mid-build deterministically.
type gateCodec struct {
	inner   compress.ByteCodec
	started chan struct{} // closed on the first encode
	release chan struct{}
	once    *sync.Once
}

func newGateCodec() gateCodec {
	return gateCodec{
		inner:   compress.RawBytes{},
		started: make(chan struct{}),
		release: make(chan struct{}),
		once:    &sync.Once{},
	}
}

func (g gateCodec) Name() string { return g.inner.Name() }
func (g gateCodec) EncodeBytes(src []byte) ([]byte, error) {
	g.once.Do(func() { close(g.started) })
	<-g.release
	return g.inner.EncodeBytes(src)
}
func (g gateCodec) DecodeBytes(data, dst []byte) ([]byte, error) {
	return g.inner.DecodeBytes(data, dst)
}

func gatedPipeline(t *testing.T) (*Pipeline, gateCodec) {
	t.Helper()
	gate := newGateCodec()
	cfg := core.DefaultConfig([]int{8, 8})
	cfg.NumBins = 4
	cfg.SampleSize = 64
	cfg.ByteCodec = gate
	p, err := New(Config{
		FS:         pfs.New(pfs.DefaultConfig()),
		Store:      cfg,
		Prefix:     "sim",
		Workers:    1,
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, gate
}

func smallStep(step int) StepVar {
	d := datagen.GTSLike(16, 16, int64(step+1))
	v, _ := d.Var("phi")
	return StepVar{Step: step, Name: "phi", Shape: d.Shape, Data: v.Data}
}

// TestSubmitContextCanceledWhileBlocked is the regression test for
// cancel-while-submitting: with the single worker held mid-build and
// the queue full, a blocked SubmitContext must abort on cancellation
// without losing either accepted step — and without the historical
// send-on-closed-channel panic when Drain follows.
func TestSubmitContextCanceledWhileBlocked(t *testing.T) {
	p, gate := gatedPipeline(t)

	if err := p.Submit(smallStep(0)); err != nil { // worker picks this up
		t.Fatal(err)
	}
	<-gate.started                                 // worker is now held mid-build
	if err := p.Submit(smallStep(1)); err != nil { // fills the depth-1 queue
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- p.SubmitContext(ctx, smallStep(2)) // blocks: queue full
	}()
	time.Sleep(20 * time.Millisecond) // let the submitter reach the blocked send
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked SubmitContext = %v, want context.Canceled", err)
		}
		if !strings.Contains(err.Error(), "not accepted") {
			t.Errorf("error %q does not state the step was not accepted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled SubmitContext did not return")
	}

	close(gate.release)
	results := p.Drain()
	if len(results) != 2 {
		t.Fatalf("Drain returned %d results, want the 2 accepted steps", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("result %d: %v", i, r.Err)
		}
		if r.Step != i {
			t.Errorf("result %d is step %d, want %d", i, r.Step, i)
		}
	}
}

// TestShutdownDeadlineReturnsPartialResults holds the worker past a
// Shutdown deadline: Shutdown must return what finished so far with an
// error wrapping the context's, and a later Drain must still deliver
// every accepted step.
func TestShutdownDeadlineReturnsPartialResults(t *testing.T) {
	p, gate := gatedPipeline(t)
	if err := p.Submit(smallStep(0)); err != nil {
		t.Fatal(err)
	}
	<-gate.started
	if err := p.Submit(smallStep(1)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	partial, err := p.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown past deadline = %v, want context.DeadlineExceeded", err)
	}
	if len(partial) != 0 {
		t.Fatalf("Shutdown returned %d results while the worker was held, want 0", len(partial))
	}

	if err := p.Submit(smallStep(2)); err == nil {
		t.Error("Submit after Shutdown accepted a step")
	}

	close(gate.release)
	results, err := p.Shutdown(context.Background())
	if err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("final results %d, want 2 accepted steps", len(results))
	}
}

// TestConcurrentSubmitAndShutdown races many submitters against a
// shutdown; every submission reported accepted must appear in the
// results, and nothing may panic (the old Drain could close the intake
// channel under a concurrent Submit's send).
func TestConcurrentSubmitAndShutdown(t *testing.T) {
	cfg := core.DefaultConfig([]int{8, 8})
	cfg.NumBins = 4
	cfg.SampleSize = 64
	p, err := New(Config{
		FS:         pfs.New(pfs.DefaultConfig()),
		Store:      cfg,
		Prefix:     "sim",
		Workers:    2,
		QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	var accepted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				err := p.Submit(smallStep(g*10 + i))
				if err == nil {
					accepted.Add(1)
				} else if !strings.Contains(err.Error(), "already drained") &&
					!strings.Contains(err.Error(), "not accepted") {
					t.Errorf("submitter %d: unexpected error %v", g, err)
				}
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	results, err := p.Shutdown(context.Background())
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	// Late submitters may have been accepted after Shutdown snapshotted;
	// Drain (idempotent) returns the final set.
	results = p.Drain()
	if int64(len(results)) != accepted.Load() {
		t.Fatalf("%d results for %d accepted submissions", len(results), accepted.Load())
	}
}
