package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission-control errors, mapped by the handler to 429 (queue full —
// the client should back off) and 503 (queued but the wait budget
// expired — the server is saturated).
var (
	errQueueFull    = errors.New("server: admission queue full")
	errQueueTimeout = errors.New("server: admission wait expired")
)

// admission is the bounded concurrent-query gate: at most maxConcurrent
// queries execute at once, and at most maxQueue callers wait for a
// slot. Everything beyond that is rejected immediately — under
// overload the server sheds load instead of accumulating unbounded
// goroutines (each holding a decoded request body).
type admission struct {
	slots    chan struct{}
	maxQueue int64
	wait     time.Duration
	waiting  atomic.Int64
}

func newAdmission(maxConcurrent, maxQueue int, wait time.Duration) *admission {
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
		wait:     wait,
	}
}

// acquire obtains an execution slot. It returns errQueueFull when the
// wait queue is at capacity, errQueueTimeout when the wait budget
// expires first, or ctx.Err() when the caller gives up. The returned
// queued duration reports how long the caller waited.
func (a *admission) acquire(ctx context.Context) (queued time.Duration, err error) {
	select {
	case a.slots <- struct{}{}:
		return 0, nil // fast path: free slot, no queueing
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		return 0, errQueueFull
	}
	defer a.waiting.Add(-1)
	start := time.Now()
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return time.Since(start), nil
	case <-timer.C:
		return time.Since(start), errQueueTimeout
	case <-ctx.Done():
		return time.Since(start), ctx.Err()
	}
}

// release returns an execution slot.
func (a *admission) release() { <-a.slots }

// inFlight reports the number of currently executing queries.
func (a *admission) inFlight() int { return len(a.slots) }

// queued reports the number of callers waiting for a slot.
func (a *admission) queued() int64 { return a.waiting.Load() }
