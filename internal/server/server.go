// Package server implements mlocd's HTTP/JSON query service over built
// MLOC stores: a thin, admission-controlled front end that turns remote
// requests into engine queries.
//
// Three mechanisms keep a shared deployment healthy under the paper's
// heterogeneous access patterns:
//
//   - Admission control: a bounded concurrent-query semaphore plus a
//     bounded wait queue. Overload is shed with 429 (queue full) or 503
//     (wait budget expired), both carrying Retry-After, instead of
//     queueing without bound.
//   - Cooperative cancellation: the request context flows through
//     Store.QueryContext down to the per-bin I/O loop, so a
//     disconnected or expired client stops consuming PFS bandwidth and
//     frees its slot at the next bin boundary.
//   - Shared decode cache: when a cache.Cache is configured, decoded
//     storage units are reused across requests and variables, and
//     concurrent decodes of one unit are deduplicated.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"mloc/internal/cache"
	"mloc/internal/core"
	"mloc/internal/query"
)

// Config parameterizes the query service.
type Config struct {
	// Stores maps variable names to their built stores. Required.
	Stores map[string]*core.Store
	// Cache, when non-nil, is attached to every store as the shared
	// decoded-unit cache.
	Cache *cache.Cache
	// MaxConcurrent bounds simultaneously executing queries (default 8).
	MaxConcurrent int
	// MaxQueue bounds callers waiting for a slot (default
	// 2×MaxConcurrent); beyond it requests get 429.
	MaxQueue int
	// QueueWait is the longest a request waits for a slot before 503
	// (default 2s).
	QueueWait time.Duration
	// DefaultRanks is the engine parallelism for requests that do not
	// set ranks (default 4).
	DefaultRanks int
	// MaxMatches caps the matches returned per response (default
	// 65536); the full count is always reported.
	MaxMatches int
	// MaxBodyBytes caps the request body (default 1 MiB).
	MaxBodyBytes int64
}

func (c *Config) normalize() error {
	if len(c.Stores) == 0 {
		return fmt.Errorf("server: at least one store is required")
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.DefaultRanks <= 0 {
		c.DefaultRanks = 4
	}
	if c.MaxMatches <= 0 {
		c.MaxMatches = 65536
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return nil
}

// Server is the query service. Create with New, mount via Handler.
type Server struct {
	cfg Config
	adm *admission

	draining atomic.Bool

	queriesTotal    atomic.Int64
	queriesOK       atomic.Int64
	queriesRejected atomic.Int64
	queriesCanceled atomic.Int64
	queriesFailed   atomic.Int64
	queueWaitMicros atomic.Int64
}

// New validates the configuration, attaches the shared cache to every
// store, and returns the service.
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		for _, st := range cfg.Stores {
			st.SetDecodeCache(cfg.Cache)
		}
	}
	return &Server{
		cfg: cfg,
		adm: newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueWait),
	}, nil
}

// SetDraining flips the draining flag: while set, new queries get 503
// with Retry-After and in-flight queries run to completion. Graceful
// shutdown sets it before http.Server.Shutdown.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/vars", s.handleVars)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// matchWire is one match in a query response.
type matchWire struct {
	Index int64   `json:"index"`
	Value float64 `json:"value"`
}

// timeWire is the virtual-time component breakdown in a response.
type timeWire struct {
	IO          float64 `json:"io"`
	Decompress  float64 `json:"decompress"`
	Reconstruct float64 `json:"reconstruct"`
	Total       float64 `json:"total"`
}

// resultWire is the JSON response body of POST /query.
type resultWire struct {
	Var          string      `json:"var"`
	Matches      []matchWire `json:"matches"`
	MatchesTotal int         `json:"matches_total"`
	Truncated    bool        `json:"truncated"`
	BinsAccessed int         `json:"bins_accessed"`
	BlocksRead   int         `json:"blocks_read"`
	BytesRead    int64       `json:"bytes_read"`
	CacheHits    int         `json:"cache_hits"`
	Time         timeWire    `json:"time"`
	QueuedMS     float64     `json:"queued_ms"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.queriesTotal.Add(1)
	if s.draining.Load() {
		s.queriesRejected.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	wire, err := ParseRequest(r.Body)
	if err != nil {
		s.queriesFailed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, ok := s.cfg.Stores[wire.Var]
	if !ok {
		s.queriesFailed.Add(1)
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown variable %q", wire.Var))
		return
	}
	req, err := wire.ToRequest(st.Shape())
	if err != nil {
		s.queriesFailed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ranks := wire.Ranks
	if ranks == 0 {
		ranks = s.cfg.DefaultRanks
	}

	queued, err := s.adm.acquire(r.Context())
	if err != nil {
		s.admissionFailure(w, err)
		return
	}
	defer s.adm.release()
	s.queueWaitMicros.Add(queued.Microseconds())

	res, err := st.QueryContext(r.Context(), req, ranks)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone; nothing useful can be written. The
			// point of this path is that the engine already stopped at a
			// bin boundary and the deferred release frees the slot now
			// rather than after the full scan.
			s.queriesCanceled.Add(1)
			writeError(w, http.StatusServiceUnavailable, "query canceled")
			return
		}
		s.queriesFailed.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.queriesOK.Add(1)
	writeJSON(w, http.StatusOK, buildResult(wire.Var, res, s.cfg.MaxMatches, queued))
}

// admissionFailure maps an acquire error to its HTTP response.
func (s *Server) admissionFailure(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		s.queriesRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "query queue full")
	case errors.Is(err, errQueueTimeout):
		s.queriesRejected.Add(1)
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusServiceUnavailable, "no query slot within wait budget")
	default: // the caller's context ended while queued
		s.queriesCanceled.Add(1)
		writeError(w, http.StatusServiceUnavailable, "canceled while queued")
	}
}

// buildResult converts an engine result to the wire form, capping the
// match list.
func buildResult(name string, res *query.Result, maxMatches int, queued time.Duration) resultWire {
	out := resultWire{
		Var:          name,
		MatchesTotal: len(res.Matches),
		BinsAccessed: res.BinsAccessed,
		BlocksRead:   res.BlocksRead,
		BytesRead:    res.BytesRead,
		CacheHits:    res.CacheHits,
		Time: timeWire{
			IO:          res.Time.IO,
			Decompress:  res.Time.Decompress,
			Reconstruct: res.Time.Reconstruct,
			Total:       res.Time.Total(),
		},
		QueuedMS: float64(queued.Microseconds()) / 1000,
	}
	n := len(res.Matches)
	if n > maxMatches {
		n = maxMatches
		out.Truncated = true
	}
	out.Matches = make([]matchWire, n)
	for i := 0; i < n; i++ {
		out.Matches[i] = matchWire{Index: res.Matches[i].Index, Value: res.Matches[i].Value}
	}
	return out
}

// handleStats serves a flat JSON object of numeric counters (expvar
// style): admission, outcome, and cache statistics.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	stats := map[string]int64{
		"queries_total":    s.queriesTotal.Load(),
		"queries_ok":       s.queriesOK.Load(),
		"queries_rejected": s.queriesRejected.Load(),
		"queries_canceled": s.queriesCanceled.Load(),
		"queries_failed":   s.queriesFailed.Load(),
		"queue_wait_us":    s.queueWaitMicros.Load(),
		"in_flight":        int64(s.adm.inFlight()),
		"queued":           s.adm.queued(),
		"draining":         0,
		"stores":           int64(len(s.cfg.Stores)),
	}
	if s.draining.Load() {
		stats["draining"] = 1
	}
	if s.cfg.Cache != nil {
		cs := s.cfg.Cache.Stats()
		stats["cache_hits"] = cs.Hits
		stats["cache_misses"] = cs.Misses
		stats["cache_evictions"] = cs.Evictions
		stats["cache_waits"] = cs.Waits
		stats["cache_entries"] = int64(cs.Entries)
		stats["cache_bytes"] = cs.Bytes
		stats["cache_capacity"] = cs.Capacity
	}
	writeJSON(w, http.StatusOK, stats)
}

// varWire describes one served variable in GET /vars.
type varWire struct {
	Var   string `json:"var"`
	Shape []int  `json:"shape"`
	Bins  int    `json:"bins"`
	Mode  string `json:"mode"`
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	names := make([]string, 0, len(s.cfg.Stores))
	for name := range s.cfg.Stores {
		names = append(names, name)
	}
	sort.Strings(names)
	vars := make([]varWire, 0, len(names))
	for _, name := range names {
		st := s.cfg.Stores[name]
		vars = append(vars, varWire{
			Var:   name,
			Shape: st.Shape(),
			Bins:  st.NumBins(),
			Mode:  string(st.Mode()),
		})
	}
	writeJSON(w, http.StatusOK, vars)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The response is already committed; nothing to do but note it
		// for the connection (usually a mid-write disconnect).
		_ = err //mlocvet:ignore uncheckederr
	}
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{
		"error":  msg,
		"status": strconv.Itoa(status),
	})
}
