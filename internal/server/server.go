// Package server implements mlocd's HTTP/JSON query service over built
// MLOC stores: a thin, admission-controlled front end that turns remote
// requests into engine queries.
//
// Three mechanisms keep a shared deployment healthy under the paper's
// heterogeneous access patterns:
//
//   - Admission control: a bounded concurrent-query semaphore plus a
//     bounded wait queue. Overload is shed with 429 (queue full) or 503
//     (wait budget expired), both carrying Retry-After, instead of
//     queueing without bound.
//   - Cooperative cancellation: the request context flows through
//     Store.QueryContext down to the per-bin I/O loop, so a
//     disconnected or expired client stops consuming PFS bandwidth and
//     frees its slot at the next bin boundary.
//   - Shared decode cache: when a cache.Cache is configured, decoded
//     storage units are reused across requests and variables, and
//     concurrent decodes of one unit are deduplicated.
//
// The service is fully observable: every request runs under an obs
// trace (span trees retained in a ring buffer, served at
// /debug/traces), and admission, outcome, cache, and per-endpoint
// metrics live in one obs.Registry served at /metrics in Prometheus
// text exposition.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"mloc/internal/cache"
	"mloc/internal/core"
	"mloc/internal/obs"
	"mloc/internal/query"
)

// Config parameterizes the query service.
type Config struct {
	// Stores maps variable names to their built stores. Required.
	Stores map[string]*core.Store
	// Cache, when non-nil, is attached to every store as the shared
	// decoded-unit cache and instrumented on the registry.
	Cache *cache.Cache
	// MaxConcurrent bounds simultaneously executing queries (default 8).
	MaxConcurrent int
	// MaxQueue bounds callers waiting for a slot (default
	// 2×MaxConcurrent); beyond it requests get 429.
	MaxQueue int
	// QueueWait is the longest a request waits for a slot before 503
	// (default 2s).
	QueueWait time.Duration
	// DefaultRanks is the engine parallelism for requests that do not
	// set ranks (default 4).
	DefaultRanks int
	// MaxMatches caps the matches returned per response (default
	// 65536); the full count is always reported.
	MaxMatches int
	// MaxBodyBytes caps the request body (default 1 MiB).
	MaxBodyBytes int64
	// Registry receives the server's (and cache's) metrics and backs
	// GET /metrics. New creates a private one when nil. It must not
	// already hold mloc_server_* or mloc_cache_* families.
	Registry *obs.Registry
	// Tracer retains per-query span trees for GET /debug/traces. New
	// creates one with the default ring capacity when nil.
	Tracer *obs.Tracer
	// SlowQueryThreshold, when positive, logs any query whose wall-time
	// service duration reaches it (with its trace id, so the span tree
	// can be pulled from /debug/traces).
	SlowQueryThreshold time.Duration
	// SLOObjectives are the latency objectives behind the
	// mloc_slo_query_ok_total / mloc_slo_query_breach_total counter
	// pairs (default obs.DefaultSLOObjectives).
	SLOObjectives []time.Duration
	// QueryLogCapacity bounds the always-on query-log ring served at
	// /debug/querylog (default obs.DefaultQueryLogCapacity).
	QueryLogCapacity int
	// Logf receives slow-query log lines (default log.Printf).
	Logf func(format string, args ...any)
}

func (c *Config) normalize() error {
	if len(c.Stores) == 0 {
		return fmt.Errorf("server: at least one store is required")
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.DefaultRanks <= 0 {
		c.DefaultRanks = 4
	}
	if c.MaxMatches <= 0 {
		c.MaxMatches = 65536
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}
	if c.SLOObjectives == nil {
		objs, err := obs.ParseSLOObjectives(obs.DefaultSLOObjectives)
		if err != nil {
			return fmt.Errorf("server: default slo objectives: %w", err)
		}
		c.SLOObjectives = objs
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return nil
}

// endpointMetrics is the per-route request counter, error counter, and
// service-time histogram.
type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	service  *obs.Histogram
}

// Server is the query service. Create with New, mount via Handler.
type Server struct {
	cfg    Config
	adm    *admission
	reg    *obs.Registry
	tracer *obs.Tracer
	qlog   *obs.QueryLog
	slo    *obs.SLO

	draining atomic.Bool

	queries         *obs.Counter
	queriesOK       *obs.Counter
	queriesRejected *obs.Counter
	queriesCanceled *obs.Counter
	queriesFailed   *obs.Counter
	shed            map[string]*obs.Counter
	queueWait       *obs.Histogram
	queryLatency    *obs.Histogram
	endpoints       map[string]*endpointMetrics
}

// New validates the configuration, attaches the shared cache to every
// store, registers the service's metrics, and returns the service.
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		for _, st := range cfg.Stores {
			st.SetDecodeCache(cfg.Cache)
		}
	}
	s := &Server{
		cfg:    cfg,
		adm:    newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueWait),
		reg:    cfg.Registry,
		tracer: cfg.Tracer,
		qlog:   obs.NewQueryLog(cfg.QueryLogCapacity),
	}
	s.instrument()
	return s, nil
}

// shed reasons, the label values of mloc_server_shed_total.
const (
	shedDraining    = "draining"
	shedQueueFull   = "queue_full"
	shedWaitExpired = "wait_expired"
	shedClientGone  = "client_gone"
)

// instrument registers every server metric family on the registry.
func (s *Server) instrument() {
	reg := s.reg
	s.queries = reg.Counter("mloc_server_queries_total",
		"Query requests received (any outcome).")
	s.queriesOK = reg.Counter("mloc_server_query_outcomes_total",
		"Query outcomes by class.", obs.L("outcome", "ok"))
	s.queriesRejected = reg.Counter("mloc_server_query_outcomes_total",
		"Query outcomes by class.", obs.L("outcome", "rejected"))
	s.queriesCanceled = reg.Counter("mloc_server_query_outcomes_total",
		"Query outcomes by class.", obs.L("outcome", "canceled"))
	s.queriesFailed = reg.Counter("mloc_server_query_outcomes_total",
		"Query outcomes by class.", obs.L("outcome", "failed"))
	s.shed = make(map[string]*obs.Counter)
	for _, reason := range []string{shedDraining, shedQueueFull, shedWaitExpired, shedClientGone} {
		s.shed[reason] = reg.Counter("mloc_server_shed_total",
			"Requests shed by admission control, by reason.", obs.L("reason", reason))
	}
	s.queueWait = reg.Histogram("mloc_server_queue_wait_seconds",
		"Admission-queue wait before a slot was granted.", obs.DefSecondsBuckets())
	s.queryLatency = reg.Histogram("mloc_server_query_latency_seconds",
		"End-to-end query wall latency; slow buckets carry exemplar trace ids.",
		obs.DefSecondsBuckets())
	s.slo = obs.NewSLO(reg, s.cfg.SLOObjectives)
	reg.GaugeFunc("mloc_server_in_flight",
		"Queries currently executing.", func() float64 { return float64(s.adm.inFlight()) })
	reg.GaugeFunc("mloc_server_queue_depth",
		"Callers waiting for an execution slot.", func() float64 { return float64(s.adm.queued()) })
	reg.GaugeFunc("mloc_server_draining",
		"1 while the server rejects new queries for shutdown.", func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("mloc_server_stores",
		"Variables served.", func() float64 { return float64(len(s.cfg.Stores)) })
	s.endpoints = make(map[string]*endpointMetrics)
	for _, ep := range []string{"query", "stats", "vars", "healthz", "metrics", "traces", "querylog"} {
		s.endpoints[ep] = &endpointMetrics{
			requests: reg.Counter("mloc_server_requests_total",
				"HTTP requests by endpoint.", obs.L("endpoint", ep)),
			errors: reg.Counter("mloc_server_request_errors_total",
				"HTTP responses with status >= 400, by endpoint.", obs.L("endpoint", ep)),
			service: reg.Histogram("mloc_server_request_seconds",
				"Wall-clock request service time by endpoint.",
				obs.DefSecondsBuckets(), obs.L("endpoint", ep)),
		}
	}
	if s.cfg.Cache != nil {
		s.cfg.Cache.Instrument(reg)
	}
}

// Registry returns the metrics registry backing /metrics, so the
// embedding process (mlocd) can register more families on it.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer returns the tracer backing /debug/traces.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// QueryLog returns the always-on query log backing /debug/querylog.
func (s *Server) QueryLog() *obs.QueryLog { return s.qlog }

// SetDraining flips the draining flag: while set, new queries get 503
// with Retry-After and in-flight queries run to completion. Graceful
// shutdown sets it before http.Server.Shutdown.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.endpoint("query", s.handleQuery))
	mux.HandleFunc("/stats", s.endpoint("stats", s.handleStats))
	mux.HandleFunc("/vars", s.endpoint("vars", s.handleVars))
	mux.HandleFunc("/healthz", s.endpoint("healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.endpoint("metrics", s.handleMetrics))
	mux.HandleFunc("/debug/traces", s.endpoint("traces", s.handleTraces))
	mux.HandleFunc("/debug/querylog", s.endpoint("querylog", s.handleQueryLog))
	return mux
}

// statusWriter records the response status for the endpoint error
// counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// endpoint wraps a handler with the per-endpoint request counter,
// error counter, and service-time histogram.
func (s *Server) endpoint(name string, h http.HandlerFunc) http.HandlerFunc {
	em := s.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		em.requests.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		em.service.Observe(time.Since(start).Seconds())
		if sw.status >= 400 {
			em.errors.Inc()
		}
	}
}

// MatchWire is one match in a query response.
type MatchWire struct {
	Index int64   `json:"index"`
	Value float64 `json:"value"`
}

// TimeWire is the virtual-time component breakdown in a response.
type TimeWire struct {
	IO          float64 `json:"io"`
	Decompress  float64 `json:"decompress"`
	Reconstruct float64 `json:"reconstruct"`
	Total       float64 `json:"total"`
}

// ResultWire is the JSON response body of POST /query. It is exported
// so the cluster router can decode data-node responses and re-emit
// merged results in exactly this shape — single-node and routed
// queries answer with the same wire format.
type ResultWire struct {
	Var          string      `json:"var"`
	Matches      []MatchWire `json:"matches"`
	MatchesTotal int         `json:"matches_total"`
	Truncated    bool        `json:"truncated"`
	BinsAccessed int         `json:"bins_accessed"`
	BlocksRead   int         `json:"blocks_read"`
	BytesRead    int64       `json:"bytes_read"`
	CacheHits    int         `json:"cache_hits"`
	// BinsPruned, BinsCovered, and IndexNodesRead are the hierarchical
	// index's pruning factors; all zero (and omitted) on flat scans.
	BinsPruned     int      `json:"bins_pruned,omitempty"`
	BinsCovered    int      `json:"bins_covered,omitempty"`
	IndexNodesRead int      `json:"index_nodes_read,omitempty"`
	Time           TimeWire `json:"time"`
	QueuedMS       float64  `json:"queued_ms"`
	// TraceID names the retained span tree for this query; fetch it at
	// /debug/traces?id=<TraceID>.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Trace is the completed span subtree in obs trace wire form,
	// present only when the request carried the X-Mloc-Trace header
	// (a router propagating its trace context). It stays raw so the
	// consumer applies its own size-bounded obs.DecodeTraceWire.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// ToResult converts a decoded wire response back into an engine
// result; the router uses this to merge partial shard responses with
// query.MergeResults.
func (r *ResultWire) ToResult() *query.Result {
	res := &query.Result{
		Matches: make([]query.Match, len(r.Matches)),
		Time: query.Components{
			IO:          r.Time.IO,
			Decompress:  r.Time.Decompress,
			Reconstruct: r.Time.Reconstruct,
		},
		BytesRead:      r.BytesRead,
		BinsAccessed:   r.BinsAccessed,
		BlocksRead:     r.BlocksRead,
		CacheHits:      r.CacheHits,
		BinsPruned:     r.BinsPruned,
		BinsCovered:    r.BinsCovered,
		IndexNodesRead: r.IndexNodesRead,
	}
	for i, m := range r.Matches {
		res.Matches[i] = query.Match{Index: m.Index, Value: m.Value}
	}
	return res
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.queries.Inc()
	if s.draining.Load() {
		s.queriesRejected.Inc()
		s.shed[shedDraining].Inc()
		w.Header().Set("Retry-After", "5")
		WriteError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	wire, err := ParseRequest(r.Body)
	if err != nil {
		s.queriesFailed.Inc()
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, ok := s.cfg.Stores[wire.Var]
	if !ok {
		s.queriesFailed.Inc()
		WriteError(w, http.StatusNotFound, fmt.Sprintf("unknown variable %q", wire.Var))
		return
	}
	req, err := wire.ToRequest(st.Shape())
	if err != nil {
		s.queriesFailed.Inc()
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	ranks := wire.Ranks
	if ranks == 0 {
		ranks = s.cfg.DefaultRanks
	}

	start := time.Now()
	remoteTrace := r.Header.Get(obs.TraceHeader) != ""
	ctx, root := s.tracer.StartTrace(r.Context(), "query")
	defer root.End()
	root.SetString("var", wire.Var)

	queued, err := s.adm.acquire(ctx)
	if err != nil {
		s.admissionFailure(w, err)
		return
	}
	defer s.adm.release()
	s.queueWait.Observe(queued.Seconds())
	root.SetFloat("queued_ms", float64(queued.Microseconds())/1000)

	res, err := st.QueryContext(ctx, req, ranks)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone; nothing useful can be written. The
			// point of this path is that the engine already stopped at a
			// bin boundary and the deferred release frees the slot now
			// rather than after the full scan.
			s.queriesCanceled.Inc()
			s.recordQuery(wire.Var, st, nil, queued, time.Since(start), root.TraceID(), "canceled")
			WriteError(w, http.StatusServiceUnavailable, "query canceled")
			return
		}
		s.queriesFailed.Inc()
		s.recordQuery(wire.Var, st, nil, queued, time.Since(start), root.TraceID(), "error")
		WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.queriesOK.Inc()
	root.SetInt("matches", int64(len(res.Matches)))
	root.SetFloat("virt_total_s", res.Time.Total())
	out := BuildResult(wire.Var, res, s.cfg.MaxMatches, queued)
	out.TraceID = root.TraceID()
	wall := time.Since(start)
	// The span tree must be complete before it can travel in the
	// envelope, so the root ends here; the deferred End is a no-op.
	root.End()
	if remoteTrace {
		if td, ok := s.tracer.DumpByID(out.TraceID); ok {
			data, err := obs.EncodeTraceWire(td, obs.DefaultMaxWireBytes)
			if err != nil {
				// An over-bound tree is dropped from the envelope, never
				// truncated; the trace is still served at /debug/traces.
				s.cfg.Logf("server: trace %d not attached to response: %v", out.TraceID, err)
			} else {
				out.Trace = data
			}
		}
	}
	s.recordQuery(wire.Var, st, res, queued, wall, out.TraceID, "ok")
	s.maybeLogSlow(wire.Var, wall, res, out.TraceID)
	WriteJSON(w, http.StatusOK, out)
}

// recordQuery feeds one finished query into the always-on query log,
// the SLO counters, and the latency histogram (whose bucket keeps the
// trace id as its exemplar). res is nil for canceled/failed queries.
func (s *Server) recordQuery(name string, st *core.Store, res *query.Result, queued, wall time.Duration, traceID uint64, outcome string) {
	rec := obs.QueryRecord{
		Store:       string(st.Mode()),
		Var:         name,
		Selectivity: "unknown",
		Outcome:     outcome,
		QueueWaitMS: float64(queued.Microseconds()) / 1000,
		WallMS:      float64(wall.Microseconds()) / 1000,
		TraceID:     traceID,
	}
	if res != nil {
		var domain int64 = 1
		for _, d := range st.Shape() {
			domain *= int64(d)
		}
		rec.Selectivity = obs.SelectivityClass(len(res.Matches), domain)
		rec.Matches = len(res.Matches)
		rec.BinsPruned = res.BinsPruned
		rec.BinsCovered = res.BinsCovered
		rec.CacheHits = res.CacheHits
		rec.CacheMisses = res.BlocksRead
		rec.BytesDecoded = res.BytesRead
		rec.VirtS = res.Time.Total()
	}
	s.qlog.Append(rec)
	s.slo.Observe(wall)
	s.queryLatency.ObserveExemplar(wall.Seconds(), traceID)
}

// ParseQueryLogFilter builds an obs.QueryFilter from /debug/querylog
// request parameters (store, var, min_latency as a Go duration). The
// untrusted values are only compared against records — never used as
// sizes, indexes, or sleeps — so the surface needs no further
// sanitizing.
func ParseQueryLogFilter(q url.Values) (obs.QueryFilter, error) {
	f := obs.QueryFilter{Store: q.Get("store"), Var: q.Get("var")}
	if v := q.Get("min_latency"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return obs.QueryFilter{}, fmt.Errorf("server: bad min_latency %q: %w", v, err)
		}
		if d < 0 {
			return obs.QueryFilter{}, fmt.Errorf("server: min_latency %q must be non-negative", v)
		}
		f.MinWall = d
	}
	return f, nil
}

// handleQueryLog serves the always-on query log, newest first,
// filterable with ?store=, ?var=, and ?min_latency=.
func (s *Server) handleQueryLog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		WriteError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	f, err := ParseQueryLogFilter(r.URL.Query())
	if err != nil {
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	WriteJSONIndent(w, http.StatusOK, s.qlog.Snapshot(f))
}

// maybeLogSlow emits the slow-query log line when the wall-clock
// service time reaches the configured threshold.
func (s *Server) maybeLogSlow(name string, wall time.Duration, res *query.Result, traceID uint64) {
	if s.cfg.SlowQueryThreshold <= 0 || wall < s.cfg.SlowQueryThreshold {
		return
	}
	s.cfg.Logf("server: slow query var=%s wall=%s virt=%.6fs matches=%d bytes=%d trace_id=%d",
		name, wall, res.Time.Total(), len(res.Matches), res.BytesRead, traceID)
}

// admissionFailure maps an acquire error to its HTTP response.
func (s *Server) admissionFailure(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		s.queriesRejected.Inc()
		s.shed[shedQueueFull].Inc()
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusTooManyRequests, "query queue full")
	case errors.Is(err, errQueueTimeout):
		s.queriesRejected.Inc()
		s.shed[shedWaitExpired].Inc()
		w.Header().Set("Retry-After", "2")
		WriteError(w, http.StatusServiceUnavailable, "no query slot within wait budget")
	default: // the caller's context ended while queued
		s.queriesCanceled.Inc()
		s.shed[shedClientGone].Inc()
		WriteError(w, http.StatusServiceUnavailable, "canceled while queued")
	}
}

// BuildResult converts an engine result to the wire form, capping the
// match list. The router calls it with the merged result of a fan-out
// so routed responses are built by the same code path as single-node
// ones.
func BuildResult(name string, res *query.Result, maxMatches int, queued time.Duration) ResultWire {
	out := ResultWire{
		Var:            name,
		MatchesTotal:   len(res.Matches),
		BinsAccessed:   res.BinsAccessed,
		BlocksRead:     res.BlocksRead,
		BytesRead:      res.BytesRead,
		CacheHits:      res.CacheHits,
		BinsPruned:     res.BinsPruned,
		BinsCovered:    res.BinsCovered,
		IndexNodesRead: res.IndexNodesRead,
		Time: TimeWire{
			IO:          res.Time.IO,
			Decompress:  res.Time.Decompress,
			Reconstruct: res.Time.Reconstruct,
			Total:       res.Time.Total(),
		},
		QueuedMS: float64(queued.Microseconds()) / 1000,
	}
	n := len(res.Matches)
	if n > maxMatches {
		n = maxMatches
		out.Truncated = true
	}
	out.Matches = make([]MatchWire, n)
	for i := 0; i < n; i++ {
		out.Matches[i] = MatchWire{Index: res.Matches[i].Index, Value: res.Matches[i].Value}
	}
	return out
}

// handleStats serves a flat JSON object of numeric counters (expvar
// style). The values are read back from the metrics registry — /stats
// is a legacy view over the same counters /metrics exposes, so the two
// can never disagree.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		WriteError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	stats := map[string]int64{
		"queries_total":    s.queries.Value(),
		"queries_ok":       s.queriesOK.Value(),
		"queries_rejected": s.queriesRejected.Value(),
		"queries_canceled": s.queriesCanceled.Value(),
		"queries_failed":   s.queriesFailed.Value(),
		"queue_wait_us":    int64(s.queueWait.Sum() * 1e6),
		"in_flight":        int64(s.adm.inFlight()),
		"queued":           s.adm.queued(),
		"draining":         0,
		"stores":           int64(len(s.cfg.Stores)),
	}
	if s.draining.Load() {
		stats["draining"] = 1
	}
	if s.cfg.Cache != nil {
		cs := s.cfg.Cache.Stats()
		stats["cache_hits"] = cs.Hits
		stats["cache_misses"] = cs.Misses
		stats["cache_evictions"] = cs.Evictions
		stats["cache_waits"] = cs.Waits
		stats["cache_suppressed"] = cs.Suppressed
		stats["cache_entries"] = int64(cs.Entries)
		stats["cache_bytes"] = cs.Bytes
		stats["cache_capacity"] = cs.Capacity
	}
	WriteJSON(w, http.StatusOK, stats)
}

// handleMetrics serves the registry in Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		WriteError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if err := s.reg.WritePrometheus(w); err != nil {
		// The response is already committed (mid-write disconnect).
		_ = err //mlocvet:ignore uncheckederr -- response already committed; a mid-write disconnect has no recovery
	}
}

// handleTraces serves retained query traces: the full ring (newest
// first) by default, or one span tree with ?id=<trace_id>.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		WriteError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		n, err := strconv.ParseUint(id, 10, 64)
		if err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad trace id %q", id))
			return
		}
		td, ok := s.tracer.DumpByID(n)
		if !ok {
			WriteError(w, http.StatusNotFound, fmt.Sprintf("trace %d not retained", n))
			return
		}
		WriteJSONIndent(w, http.StatusOK, td)
		return
	}
	WriteJSONIndent(w, http.StatusOK, s.tracer.Dump())
}

// VarWire describes one served variable in GET /vars.
type VarWire struct {
	Var   string `json:"var"`
	Shape []int  `json:"shape"`
	Bins  int    `json:"bins"`
	Mode  string `json:"mode"`
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		WriteError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	names := make([]string, 0, len(s.cfg.Stores))
	for name := range s.cfg.Stores {
		names = append(names, name)
	}
	sort.Strings(names)
	vars := make([]VarWire, 0, len(names))
	for _, name := range names {
		st := s.cfg.Stores[name]
		vars = append(vars, VarWire{
			Var:   name,
			Shape: st.Shape(),
			Bins:  st.NumBins(),
			Mode:  string(st.Mode()),
		})
	}
	WriteJSON(w, http.StatusOK, vars)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		WriteError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// WriteJSON writes v as a JSON response body.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The response is already committed; nothing to do but note it
		// for the connection (usually a mid-write disconnect).
		_ = err //mlocvet:ignore uncheckederr -- response already committed; a mid-write disconnect has no recovery
	}
}

// WriteJSONIndent is WriteJSON with indentation, for the human-read
// trace dumps.
func WriteJSONIndent(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		_ = err //mlocvet:ignore uncheckederr -- response already committed; a mid-write disconnect has no recovery
	}
}

// WriteError writes a JSON error envelope.
func WriteError(w http.ResponseWriter, status int, msg string) {
	WriteJSON(w, status, map[string]string{
		"error":  msg,
		"status": strconv.Itoa(status),
	})
}
