package server

// Integration tests for the observability surface: /metrics scraped
// mid-query, /debug/traces span trees matching reported latency, the
// legacy /stats key contract, and the slow-query log.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"mloc/internal/cache"
	"mloc/internal/core"
	"mloc/internal/obs"
)

func getBody(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// metricValue extracts one sample's value from an exposition payload.
func metricValue(t *testing.T, payload, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(sample) + " (\\S+)$")
	m := re.FindStringSubmatch(payload)
	if m == nil {
		t.Fatalf("sample %q not in exposition:\n%s", sample, payload)
	}
	var v float64
	if _, err := fmt.Sscanf(m[1], "%g", &v); err != nil {
		t.Fatalf("sample %q value %q: %v", sample, m[1], err)
	}
	return v
}

// TestMetricsMidQuery scrapes /metrics while a query is held in flight
// at the decode gate: the in-flight gauge must show it, the payload
// must be lint-clean, and counters must be monotonic across a second
// scrape after the query completes.
func TestMetricsMidQuery(t *testing.T) {
	gate := newGateCodec()
	st, _, _ := buildStore(t, 11, gate)
	c, err := cache.New(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Stores:        map[string]*core.Store{"phi": st},
		Cache:         c,
		MaxConcurrent: 2,
	})
	body := `{"var":"phi","vc":{"min":-1e30,"max":1e30},"ranks":1}`

	gate.armed.Store(true)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postQuery(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held query status %d", resp.StatusCode)
		}
	}()
	<-gate.entered // the query is mid-decode

	resp, mid := getBody(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if probs := obs.Lint(mid, true); len(probs) != 0 {
		t.Errorf("mid-query exposition lint problems: %v", probs)
	}
	if got := metricValue(t, mid, "mloc_server_in_flight"); got != 1 {
		t.Errorf("mid-query in_flight = %v, want 1", got)
	}
	if got := metricValue(t, mid, "mloc_server_queries_total"); got != 1 {
		t.Errorf("mid-query queries_total = %v, want 1", got)
	}

	gate.armed.Store(false)
	close(gate.release)
	wg.Wait()

	_, after := getBody(t, ts, "/metrics")
	if probs := obs.Lint(after, true); len(probs) != 0 {
		t.Errorf("post-query exposition lint problems: %v", probs)
	}
	// Monotonic counters: each sample at least its mid-query value.
	for _, sample := range []string{
		"mloc_server_queries_total",
		`mloc_server_requests_total{endpoint="query"}`,
		`mloc_server_requests_total{endpoint="metrics"}`,
		"mloc_cache_misses_total",
	} {
		before, now := metricValue(t, mid, sample), metricValue(t, after, sample)
		if now < before {
			t.Errorf("%s went backwards: %v -> %v", sample, before, now)
		}
	}
	if got := metricValue(t, after, `mloc_server_query_outcomes_total{outcome="ok"}`); got != 1 {
		t.Errorf("ok outcomes = %v, want 1", got)
	}
	if got := metricValue(t, after, "mloc_server_in_flight"); got != 0 {
		t.Errorf("post-query in_flight = %v, want 0", got)
	}
	// The engine went through the cache, so its families must be live.
	if got := metricValue(t, after, "mloc_cache_entries"); got <= 0 {
		t.Errorf("cache_entries = %v, want > 0", got)
	}
	for _, family := range []string{
		"mloc_server_queue_wait_seconds_bucket",
		`mloc_server_request_seconds_bucket{endpoint="query",`,
		"mloc_cache_lookup_seconds_bucket",
	} {
		if !strings.Contains(after, family) {
			t.Errorf("exposition missing histogram family %q", family)
		}
	}
}

// TestTraceEndpointSpanSums pulls the span tree of a completed query by
// its reported trace_id and checks the component events sum to the
// reported virtual latency — the acceptance criterion for end-to-end
// tracing.
func TestTraceEndpointSpanSums(t *testing.T) {
	st, _, _ := buildStore(t, 12, nil)
	_, ts := newTestServer(t, Config{Stores: map[string]*core.Store{"phi": st}})

	resp, res := postQuery(t, ts, `{"var":"phi","vc":{"min":-1e30,"max":1e30},"ranks":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if res.TraceID == 0 {
		t.Fatal("response carries no trace_id")
	}

	tresp, body := getBody(t, ts, fmt.Sprintf("/debug/traces?id=%d", res.TraceID))
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", tresp.StatusCode, body)
	}
	var td obs.TraceDump
	if err := json.Unmarshal([]byte(body), &td); err != nil {
		t.Fatalf("decoding trace dump: %v", err)
	}
	if td.ID != res.TraceID || td.Root == nil {
		t.Fatalf("dump id=%d root=%v, want id=%d with a root", td.ID, td.Root, res.TraceID)
	}
	if !td.Root.Ended {
		t.Error("root span not ended after response was written")
	}

	var slowest float64
	var ranks int
	for _, child := range td.Root.Children {
		if child.Name != "rank" {
			continue
		}
		ranks++
		sum := child.SumVirt(func(d *obs.SpanDump) bool {
			switch d.Name {
			case "fetch", "decode", "reassemble", "filter":
				return true
			}
			return false
		})
		if sum > slowest {
			slowest = sum
		}
	}
	if ranks == 0 {
		t.Fatal("trace has no rank spans")
	}
	if math.Abs(slowest-res.Time.Total) > 1e-6 {
		t.Errorf("slowest rank span sum %v != reported latency %v", slowest, res.Time.Total)
	}

	// The ring listing contains the same trace, newest first.
	lresp, lbody := getBody(t, ts, "/debug/traces")
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("trace list status %d", lresp.StatusCode)
	}
	var all []obs.TraceDump
	if err := json.Unmarshal([]byte(lbody), &all); err != nil {
		t.Fatalf("decoding trace list: %v", err)
	}
	if len(all) != 1 || all[0].ID != res.TraceID {
		t.Errorf("trace list = %d entries (first id %d), want the one query", len(all), all[0].ID)
	}

	// Error paths: unparseable and unretained ids.
	if r, _ := getBody(t, ts, "/debug/traces?id=bogus"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d, want 400", r.StatusCode)
	}
	if r, _ := getBody(t, ts, "/debug/traces?id=999999"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status %d, want 404", r.StatusCode)
	}
}

// TestStatsLegacyKeys pins the flat-JSON /stats contract: every legacy
// key stays present (now sourced from the registry) with the JSON
// content type.
func TestStatsLegacyKeys(t *testing.T) {
	st, _, _ := buildStore(t, 13, nil)
	c, err := cache.New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Stores: map[string]*core.Store{"phi": st}, Cache: c})
	if resp, _ := postQuery(t, ts, `{"var":"phi","vc":{"min":-1e30,"max":1e30}}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/stats Content-Type = %q", ct)
	}
	var stats map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"queries_total", "queries_ok", "queries_rejected", "queries_canceled",
		"queries_failed", "queue_wait_us", "in_flight", "queued", "draining",
		"stores", "cache_hits", "cache_misses", "cache_evictions", "cache_waits",
		"cache_suppressed", "cache_entries", "cache_bytes", "cache_capacity",
	} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats missing legacy key %q: %v", key, stats)
		}
	}
	if stats["queries_total"] != 1 || stats["queries_ok"] != 1 {
		t.Errorf("stats totals = %d/%d, want 1/1", stats["queries_total"], stats["queries_ok"])
	}
}

// TestSlowQueryLog checks that queries over the threshold are logged
// with their trace id, and that fast queries are not.
func TestSlowQueryLog(t *testing.T) {
	st, _, _ := buildStore(t, 14, nil)
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	_, ts := newTestServer(t, Config{
		Stores:             map[string]*core.Store{"phi": st},
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		Logf:               logf,
	})
	resp, res := postQuery(t, ts, `{"var":"phi","vc":{"min":-1e30,"max":1e30}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow log lines = %v, want exactly one", lines)
	}
	if !strings.Contains(lines[0], "slow query") ||
		!strings.Contains(lines[0], fmt.Sprintf("trace_id=%d", res.TraceID)) {
		t.Errorf("slow log line %q missing query identification", lines[0])
	}
}

// TestSharedRegistryAcrossServers checks a caller-supplied registry and
// tracer are used as-is (the mlocd wiring).
func TestSharedRegistryAcrossServers(t *testing.T) {
	st, _, _ := buildStore(t, 15, nil)
	reg := obs.NewRegistry()
	extra := reg.Counter("mloc_test_extra_total", "Registered by the embedding process.")
	extra.Inc()
	tr := obs.NewTracer(2)
	s, ts := newTestServer(t, Config{
		Stores:   map[string]*core.Store{"phi": st},
		Registry: reg,
		Tracer:   tr,
	})
	if s.Registry() != reg || s.Tracer() != tr {
		t.Fatal("server did not adopt the supplied registry/tracer")
	}
	if resp, _ := postQuery(t, ts, `{"var":"phi"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	_, body := getBody(t, ts, "/metrics")
	if !strings.Contains(body, "mloc_test_extra_total 1") {
		t.Error("caller-registered family missing from /metrics")
	}
	if tr.Len() != 1 {
		t.Errorf("caller tracer retained %d traces, want 1", tr.Len())
	}
}
