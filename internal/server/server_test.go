package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mloc/internal/cache"
	"mloc/internal/compress"
	"mloc/internal/core"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
)

// buildStore builds one small test store, optionally with a byte codec
// override.
func buildStore(t *testing.T, seed int64, codec compress.ByteCodec) (*core.Store, []float64, grid.Shape) {
	t.Helper()
	d := datagen.GTSLike(32, 32, seed)
	v, _ := d.Var("phi")
	cfg := core.DefaultConfig([]int{8, 8})
	cfg.NumBins = 8
	cfg.SampleSize = 256
	if codec != nil {
		cfg.ByteCodec = codec
	}
	fs := pfs.New(pfs.DefaultConfig())
	st, err := core.Build(fs, pfs.NewClock(), "srv/phi", d.Shape, v.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, v.Data, d.Shape
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t *testing.T, ts *httptest.Server, body string) (*http.Response, ResultWire) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() }) //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion
	var res ResultWire
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, res
}

func getStats(t *testing.T, ts *httptest.Server) map[string]int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion -- test teardown; a close error cannot fail the assertion
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	var stats map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestQueryEndToEnd round-trips a combined value+spatial query and
// checks the matches against a direct engine query; the second
// identical request must be served from the shared decode cache.
func TestQueryEndToEnd(t *testing.T) {
	st, data, shape := buildStore(t, 1, nil)
	c, err := cache.New(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Stores: map[string]*core.Store{"phi": st}, Cache: c})

	body := `{"var":"phi","vc":{"min":-1e30,"max":1e30},"sc":{"lo":[0,0],"hi":[15,15]}}`
	resp, res := postQuery(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if res.Var != "phi" || res.MatchesTotal == 0 || res.Truncated {
		t.Fatalf("response %+v: want phi matches untruncated", res)
	}
	coords := make([]int, shape.Dims())
	for _, m := range res.Matches {
		if m.Value != data[m.Index] {
			t.Fatalf("match at %d = %v, want %v", m.Index, m.Value, data[m.Index])
		}
		coords = shape.Coords(m.Index, coords[:0])
		for d, c := range coords {
			if c < 0 || c > 15 {
				t.Fatalf("match %d outside the region in dim %d (coord %d)", m.Index, d, c)
			}
		}
	}

	resp2, res2 := postQuery(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second query status %d", resp2.StatusCode)
	}
	if res2.CacheHits == 0 {
		t.Errorf("second identical query reported zero cache hits")
	}
	if res2.MatchesTotal != res.MatchesTotal {
		t.Errorf("second query found %d matches, first %d", res2.MatchesTotal, res.MatchesTotal)
	}

	stats := getStats(t, ts)
	if stats["queries_ok"] != 2 {
		t.Errorf("queries_ok = %d, want 2", stats["queries_ok"])
	}
	if stats["cache_hits"] == 0 {
		t.Errorf("stats cache_hits = 0 after a cached query")
	}
}

// TestMatchCapTruncates checks MaxMatches bounds the response while
// reporting the true total.
func TestMatchCapTruncates(t *testing.T) {
	st, _, _ := buildStore(t, 2, nil)
	_, ts := newTestServer(t, Config{Stores: map[string]*core.Store{"phi": st}, MaxMatches: 10})
	resp, res := postQuery(t, ts, `{"var":"phi","vc":{"min":-1e30,"max":1e30}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !res.Truncated || len(res.Matches) != 10 || res.MatchesTotal <= 10 {
		t.Fatalf("cap not applied: %d returned of %d total, truncated=%v",
			len(res.Matches), res.MatchesTotal, res.Truncated)
	}
}

// gateCodec blocks DecodeBytes while armed, holding engine queries
// mid-flight so admission and cancellation behavior is observable.
type gateCodec struct {
	inner   compress.ByteCodec
	armed   *atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func newGateCodec() gateCodec {
	return gateCodec{
		inner:   compress.NewZlib(compress.DefaultZlibLevel),
		armed:   &atomic.Bool{},
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (g gateCodec) Name() string                           { return g.inner.Name() }
func (g gateCodec) EncodeBytes(src []byte) ([]byte, error) { return g.inner.EncodeBytes(src) }
func (g gateCodec) DecodeBytes(data, dst []byte) ([]byte, error) {
	if g.armed.Load() {
		select {
		case g.entered <- struct{}{}:
		default:
		}
		<-g.release
	}
	return g.inner.DecodeBytes(data, dst)
}

// TestAdmissionShedsOverload saturates a single-slot server: the
// queued request must get 503 after the wait budget and the
// beyond-queue request an immediate 429, both with Retry-After.
func TestAdmissionShedsOverload(t *testing.T) {
	gate := newGateCodec()
	st, _, _ := buildStore(t, 3, gate)
	_, ts := newTestServer(t, Config{
		Stores:        map[string]*core.Store{"phi": st},
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueWait:     150 * time.Millisecond,
	})
	body := `{"var":"phi","vc":{"min":-1e30,"max":1e30},"ranks":1}`

	gate.armed.Store(true)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // q1 occupies the only slot, held at the decode gate
		defer wg.Done()
		resp, _ := postQuery(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held query finished with status %d, want 200", resp.StatusCode)
		}
	}()
	<-gate.entered // q1 is executing

	statuses := make(chan int, 2)
	wg.Add(1)
	go func() { // q2 queues, then times out -> 503
		defer wg.Done()
		resp, _ := postQuery(t, ts, body)
		statuses <- resp.StatusCode
		if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
			t.Errorf("503 without Retry-After")
		}
	}()
	// Wait until q2 is counted as queued before sending q3.
	deadline := time.Now().Add(2 * time.Second)
	for getStats(t, ts)["queued"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("q2 never appeared in the wait queue")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp3, _ := postQuery(t, ts, body) // q3 overflows the queue -> 429
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Errorf("beyond-queue request status %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	if got := <-statuses; got != http.StatusServiceUnavailable {
		t.Errorf("queued request status %d, want 503 after wait budget", got)
	}

	gate.armed.Store(false)
	close(gate.release)
	wg.Wait()

	stats := getStats(t, ts)
	if stats["queries_rejected"] < 2 {
		t.Errorf("queries_rejected = %d, want >= 2", stats["queries_rejected"])
	}
	if stats["in_flight"] != 0 {
		t.Errorf("in_flight = %d after all queries finished", stats["in_flight"])
	}
}

// TestCanceledRequestFreesSlot cancels a held in-flight request's
// context and checks the engine aborts at the next bin boundary, the
// handler counts the cancellation, the admission slot frees, and a
// follow-up query succeeds. The handler is driven directly so the
// cancellation instant is deterministic (no connection-teardown
// propagation delay).
func TestCanceledRequestFreesSlot(t *testing.T) {
	gate := newGateCodec()
	st, _, _ := buildStore(t, 4, gate)
	s, ts := newTestServer(t, Config{
		Stores:        map[string]*core.Store{"phi": st},
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueWait:     5 * time.Second,
	})
	body := `{"var":"phi","vc":{"min":-1e30,"max":1e30},"ranks":1}`

	gate.armed.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body)).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.handleQuery(rec, req)
	}()
	<-gate.entered // the query is decoding bin data and holds the slot
	cancel()       // client disconnects
	gate.armed.Store(false)
	close(gate.release) // the held decode finishes; the engine then sees ctx done
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled query did not return promptly")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("canceled query status %d, want 503", rec.Code)
	}

	// The slot must be free: the next query succeeds instead of
	// queueing behind a zombie.
	resp, res := postQuery(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up query status %d, want 200 on a freed slot", resp.StatusCode)
	}
	if res.MatchesTotal == 0 {
		t.Errorf("follow-up query returned no matches")
	}
	stats := getStats(t, ts)
	if stats["queries_canceled"] == 0 {
		t.Errorf("queries_canceled = 0, want >= 1")
	}
	if stats["in_flight"] != 0 {
		t.Errorf("in_flight = %d, want 0", stats["in_flight"])
	}
}

// TestBadRequests exercises the 400 paths of the strict decoder.
func TestBadRequests(t *testing.T) {
	st, _, _ := buildStore(t, 5, nil)
	_, ts := newTestServer(t, Config{Stores: map[string]*core.Store{"phi": st}})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
		{"missing var", `{"vc":{"min":0,"max":1}}`, http.StatusBadRequest},
		{"unknown field", `{"var":"phi","selectivity":-3}`, http.StatusBadRequest},
		{"half-open vc", `{"var":"phi","vc":{"min":0}}`, http.StatusBadRequest},
		{"inverted vc", `{"var":"phi","vc":{"min":2,"max":1}}`, http.StatusBadRequest},
		{"negative sc", `{"var":"phi","sc":{"lo":[-1,0],"hi":[3,3]}}`, http.StatusBadRequest},
		{"inverted sc", `{"var":"phi","sc":{"lo":[5,5],"hi":[1,1]}}`, http.StatusBadRequest},
		{"sc length mismatch", `{"var":"phi","sc":{"lo":[0],"hi":[1,1]}}`, http.StatusBadRequest},
		{"sc wrong dims", `{"var":"phi","sc":{"lo":[0,0,0],"hi":[1,1,1]}}`, http.StatusBadRequest},
		{"huge plod", `{"var":"phi","plod":99}`, http.StatusBadRequest},
		{"negative plod", `{"var":"phi","plod":-1}`, http.StatusBadRequest},
		{"huge ranks", `{"var":"phi","ranks":100000}`, http.StatusBadRequest},
		{"trailing data", `{"var":"phi"}{"var":"phi"}`, http.StatusBadRequest},
		{"unknown var", `{"var":"nope"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postQuery(t, ts, tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestMethodsAndAuxEndpoints covers 405s, /vars, and /healthz.
func TestMethodsAndAuxEndpoints(t *testing.T) {
	st, _, _ := buildStore(t, 6, nil)
	s, ts := newTestServer(t, Config{Stores: map[string]*core.Store{"phi": st}})

	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/stats", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion -- test teardown; a close error cannot fail the assertion
	var vars []VarWire
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if len(vars) != 1 || vars[0].Var != "phi" || len(vars[0].Shape) != 2 {
		t.Errorf("/vars = %+v, want one 2-D phi entry", vars)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion -- test teardown; a close error cannot fail the assertion
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d, want 200", hresp.StatusCode)
	}

	s.SetDraining(true)
	dresp, _ := postQuery(t, ts, `{"var":"phi"}`)
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /query status %d, want 503", dresp.StatusCode)
	}
	if dresp.Header.Get("Retry-After") == "" {
		t.Errorf("draining 503 without Retry-After")
	}
	hresp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp2.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion
	if hresp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz status %d, want 503", hresp2.StatusCode)
	}
}

// TestConfigValidation checks New's requirements and defaults.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without stores accepted")
	}
	st, _, _ := buildStore(t, 7, nil)
	s, err := New(Config{Stores: map[string]*core.Store{"phi": st}})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.MaxConcurrent != 8 || s.cfg.MaxQueue != 16 || s.cfg.DefaultRanks != 4 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
}

// TestConcurrentQueriesThroughServer hammers the service from parallel
// clients (run under -race in the Makefile's race gate).
func TestConcurrentQueriesThroughServer(t *testing.T) {
	st, _, _ := buildStore(t, 8, nil)
	c, err := cache.New(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Stores:        map[string]*core.Store{"phi": st},
		Cache:         c,
		MaxConcurrent: 4,
		MaxQueue:      64,
		QueueWait:     10 * time.Second,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				body := fmt.Sprintf(`{"var":"phi","vc":{"min":-1e30,"max":1e30},"ranks":%d}`, 1+g%3)
				resp, res := postQuery(t, ts, body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: status %d", g, resp.StatusCode)
					return
				}
				if res.MatchesTotal == 0 {
					t.Errorf("goroutine %d: zero matches", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Stats().Hits == 0 {
		t.Errorf("no cache hits across 40 identical queries")
	}
}
