package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"mloc/internal/binning"
	"mloc/internal/grid"
	"mloc/internal/plod"
	"mloc/internal/query"
)

// Wire-format limits. They bound what a remote caller can make the
// engine allocate before any store-specific validation runs.
const (
	maxVarNameLen = 128
	maxWireDims   = 16
	maxWireRanks  = 128
)

// VCWire is the JSON shape of a value constraint. Pointers distinguish
// "absent" from zero so a half-open request is an explicit error rather
// than a silent [0, hi] or [lo, 0].
type VCWire struct {
	Min *float64 `json:"min"`
	Max *float64 `json:"max"`
}

// SCWire is the JSON shape of a spatial constraint: half-open
// [lo, hi) bounds per dimension, matching grid.Region.
type SCWire struct {
	Lo []int `json:"lo"`
	Hi []int `json:"hi"`
}

// QueryWire is the JSON request body of POST /query.
type QueryWire struct {
	// Var names the store to query.
	Var string `json:"var"`
	// VC and SC are the optional value and spatial constraints.
	VC *VCWire `json:"vc,omitempty"`
	SC *SCWire `json:"sc,omitempty"`
	// PLoD requests a reduced-precision read (0 = full precision).
	PLoD int `json:"plod,omitempty"`
	// IndexOnly requests positions without values.
	IndexOnly bool `json:"index_only,omitempty"`
	// Ranks overrides the server's default parallelism (0 = default).
	Ranks int `json:"ranks,omitempty"`
}

// ParseRequest decodes and bounds-checks one JSON query body. It is
// deliberately strict — unknown fields, trailing data, and out-of-range
// values are errors — so malformed clients fail loudly with a 400
// instead of silently querying something else.
func ParseRequest(r io.Reader) (*QueryWire, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var w QueryWire
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("server: decoding request: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("server: trailing data after request body")
	}
	if w.Var == "" {
		return nil, fmt.Errorf("server: request is missing \"var\"")
	}
	if len(w.Var) > maxVarNameLen {
		return nil, fmt.Errorf("server: variable name longer than %d bytes", maxVarNameLen)
	}
	if w.PLoD < 0 || w.PLoD > plod.MaxLevel {
		return nil, fmt.Errorf("server: plod %d out of [0,%d]", w.PLoD, plod.MaxLevel)
	}
	if w.Ranks < 0 || w.Ranks > maxWireRanks {
		return nil, fmt.Errorf("server: ranks %d out of [0,%d]", w.Ranks, maxWireRanks)
	}
	if w.VC != nil {
		if w.VC.Min == nil || w.VC.Max == nil {
			return nil, fmt.Errorf("server: vc requires both min and max")
		}
		if math.IsNaN(*w.VC.Min) || math.IsNaN(*w.VC.Max) {
			return nil, fmt.Errorf("server: vc bounds must not be NaN")
		}
		if *w.VC.Min > *w.VC.Max {
			return nil, fmt.Errorf("server: inverted vc [%v,%v]", *w.VC.Min, *w.VC.Max)
		}
	}
	if w.SC != nil {
		if len(w.SC.Lo) == 0 || len(w.SC.Lo) != len(w.SC.Hi) {
			return nil, fmt.Errorf("server: sc lo/hi lengths %d/%d must match and be nonzero",
				len(w.SC.Lo), len(w.SC.Hi))
		}
		if len(w.SC.Lo) > maxWireDims {
			return nil, fmt.Errorf("server: sc has %d dimensions, limit %d", len(w.SC.Lo), maxWireDims)
		}
		for d := range w.SC.Lo {
			if w.SC.Lo[d] < 0 || w.SC.Hi[d] < 0 {
				return nil, fmt.Errorf("server: negative sc bound in dim %d", d)
			}
			if w.SC.Lo[d] > w.SC.Hi[d] {
				return nil, fmt.Errorf("server: inverted sc in dim %d [%d,%d]", d, w.SC.Lo[d], w.SC.Hi[d])
			}
		}
	}
	return &w, nil
}

// ToRequest converts the wire form into an engine request against a
// concrete grid shape, re-validating through the engine's own rules.
func (w *QueryWire) ToRequest(shape grid.Shape) (*query.Request, error) {
	req := &query.Request{PLoDLevel: w.PLoD, IndexOnly: w.IndexOnly}
	if w.VC != nil {
		req.VC = &binning.ValueConstraint{Min: *w.VC.Min, Max: *w.VC.Max}
	}
	if w.SC != nil {
		if len(w.SC.Lo) != shape.Dims() {
			return nil, fmt.Errorf("server: sc dimensionality %d != grid %d", len(w.SC.Lo), shape.Dims())
		}
		region, err := grid.NewRegion(w.SC.Lo, w.SC.Hi)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		region = region.Clip(shape)
		req.SC = &region
	}
	if err := req.Validate(shape); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return req, nil
}
