package server

import (
	"bytes"
	"strings"
	"testing"

	"mloc/internal/grid"
)

// FuzzDecodeRequest hammers the strict JSON request decoder with
// malformed shapes: the contract is that ParseRequest and ToRequest
// either return an error (the handler's 400 path) or produce a request
// that passes the engine's own validation — and never panic.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"var":"phi"}`,
		`{"var":"phi","vc":{"min":-1e30,"max":1e30}}`,
		`{"var":"phi","vc":{"min":0.25,"max":0.75},"sc":{"lo":[0,0],"hi":[15,15]},"plod":4,"ranks":2}`,
		`{"var":"phi","index_only":true}`,
		`{"var":"phi","vc":{"min":2,"max":1}}`,
		`{"var":"phi","vc":{"min":null,"max":1}}`,
		`{"var":"phi","vc":{"min":"NaN","max":1}}`,
		`{"var":"phi","sc":{"lo":[-5],"hi":[3]}}`,
		`{"var":"phi","sc":{"lo":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],"hi":[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1]}}`,
		`{"var":"phi","plod":9999999999}`,
		`{"var":"phi","ranks":-7}`,
		`{"var":"phi","selectivity":-0.5}`,
		`{"var":"` + strings.Repeat("x", 300) + `"}`,
		`{"var":"phi"}{"var":"phi"}`,
		`[1,2,3]`,
		`"phi"`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	shape := grid.Shape{32, 32}
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := ParseRequest(bytes.NewReader(data))
		if err != nil {
			return // the 400 path; any malformed input may land here
		}
		if w.Var == "" || len(w.Var) > maxVarNameLen {
			t.Fatalf("ParseRequest accepted var %q outside bounds", w.Var)
		}
		if w.PLoD < 0 || w.PLoD > 7 || w.Ranks < 0 || w.Ranks > maxWireRanks {
			t.Fatalf("ParseRequest accepted out-of-range plod=%d ranks=%d", w.PLoD, w.Ranks)
		}
		req, err := w.ToRequest(shape)
		if err != nil {
			return // dimension/region mismatches are also 400s
		}
		if err := req.Validate(shape); err != nil {
			t.Fatalf("ToRequest produced a request the engine rejects: %v", err)
		}
	})
}
