package server

// Tests for the distributed-observability surfaces added with cluster
// tracing: the X-Mloc-Trace response envelope, /debug/querylog, and
// the SLO / exemplar metrics.

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"mloc/internal/core"
	"mloc/internal/obs"
)

// postTracedQuery posts a query with the trace-context header set.
func postTracedQuery(t *testing.T, url, body string) ResultWire {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //mlocvet:ignore uncheckederr -- test teardown; a close error cannot fail the assertion
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body) //mlocvet:ignore uncheckederr -- best-effort diagnostic body on an already-failed request
		t.Fatalf("traced query status %d: %s", resp.StatusCode, b)
	}
	var out ResultWire
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestQueryTraceEnvelope(t *testing.T) {
	st, _, _ := buildStore(t, 3, nil)
	_, ts := newTestServer(t, Config{Stores: map[string]*core.Store{"phi": st}})
	body := `{"var":"phi","vc":{"min":-1e30,"max":1e30},"ranks":1}`

	// Without the header the envelope must not carry a span tree.
	resp, plain := postQuery(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if len(plain.Trace) != 0 {
		t.Fatalf("untraced request got a %d-byte trace payload", len(plain.Trace))
	}

	out := postTracedQuery(t, ts.URL, body)
	if len(out.Trace) == 0 {
		t.Fatal("traced request returned no span tree")
	}
	w, err := obs.DecodeTraceWire(out.Trace, 0)
	if err != nil {
		t.Fatalf("decode envelope trace: %v", err)
	}
	if w.Root.Name != "query" {
		t.Errorf("envelope root span %q, want query", w.Root.Name)
	}
	for _, leaf := range []string{"fetch", "decode", "filter"} {
		if !wireHasSpan(w.Root, leaf) {
			t.Errorf("envelope trace missing %s span", leaf)
		}
	}
	// Single-rank query: the tree's virtual seconds are exactly the
	// reported virtual latency — the invariant the router's graft
	// extends across nodes.
	if got := obs.SumVirtWire(w.Root); math.Abs(got-out.Time.Total) > 1e-9 {
		t.Errorf("envelope tree virt %v != reported total %v", got, out.Time.Total)
	}
}

// wireHasSpan reports whether the wire subtree contains a span name.
func wireHasSpan(w *obs.SpanWire, name string) bool {
	if w == nil {
		return false
	}
	if w.Name == name {
		return true
	}
	for _, c := range w.Children {
		if wireHasSpan(c, name) {
			return true
		}
	}
	return false
}

func TestQueryLogEndpoint(t *testing.T) {
	st, _, _ := buildStore(t, 5, nil)
	_, ts := newTestServer(t, Config{Stores: map[string]*core.Store{"phi": st}})
	resp, out := postQuery(t, ts, `{"var":"phi","vc":{"min":-1e30,"max":1e30},"ranks":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}

	lresp, body := getBody(t, ts, "/debug/querylog")
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("querylog status %d", lresp.StatusCode)
	}
	var recs []obs.QueryRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("querylog decode: %v\n%s", err, body)
	}
	if len(recs) != 1 {
		t.Fatalf("querylog has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Var != "phi" || rec.Outcome != "ok" {
		t.Errorf("record %+v lacks var/outcome", rec)
	}
	if rec.Store == "" || rec.Selectivity == "" {
		t.Errorf("record %+v lacks store/selectivity", rec)
	}
	if rec.Matches != out.MatchesTotal {
		t.Errorf("record matches %d != response %d", rec.Matches, out.MatchesTotal)
	}
	if rec.TraceID != out.TraceID {
		t.Errorf("record trace id %d != response %d", rec.TraceID, out.TraceID)
	}
	if rec.BytesDecoded <= 0 || rec.VirtS <= 0 {
		t.Errorf("record %+v lacks cost accounting", rec)
	}

	// Filters: a non-matching var yields an empty list; a bad
	// min_latency is a 400; a satisfied min_latency keeps the record.
	if _, body := getBody(t, ts, "/debug/querylog?var=rho"); strings.TrimSpace(body) != "[]" {
		t.Errorf("var filter leaked records: %s", body)
	}
	if resp, _ := getBody(t, ts, "/debug/querylog?min_latency=zebra"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min_latency got status %d", resp.StatusCode)
	}
	if resp, _ := getBody(t, ts, "/debug/querylog?min_latency=-1s"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative min_latency got status %d", resp.StatusCode)
	}
	if _, body := getBody(t, ts, "/debug/querylog?var=phi&min_latency=0s"); strings.TrimSpace(body) == "[]" {
		t.Error("matching filter dropped the record")
	}
}

func TestSLOAndExemplarExposition(t *testing.T) {
	st, _, _ := buildStore(t, 7, nil)
	objs, err := obs.ParseSLOObjectives("1ns,1h")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Stores:        map[string]*core.Store{"phi": st},
		SLOObjectives: objs,
	})
	resp, out := postQuery(t, ts, `{"var":"phi","vc":{"min":-1e30,"max":1e30},"ranks":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}

	_, payload := getBody(t, ts, "/metrics")
	// Any real query breaches 1ns and meets 1h, so both counter
	// families carry deterministic values.
	if v := metricValue(t, payload, `mloc_slo_query_breach_total{objective="1ns"}`); v != 1 {
		t.Errorf("1ns breach counter = %v, want 1", v)
	}
	if v := metricValue(t, payload, `mloc_slo_query_ok_total{objective="1h0m0s"}`); v != 1 {
		t.Errorf("1h ok counter = %v, want 1", v)
	}
	if v := metricValue(t, payload, `mloc_slo_query_ok_total{objective="1ns"}`); v != 0 {
		t.Errorf("1ns ok counter = %v, want 0", v)
	}

	// The latency histogram bucket that took the query carries its
	// trace id as an exemplar.
	wantEx := `# {trace_id="` + formatUint(out.TraceID) + `"}`
	found := false
	for _, line := range strings.Split(payload, "\n") {
		if strings.HasPrefix(line, "mloc_server_query_latency_seconds_bucket") && strings.Contains(line, wantEx) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no latency bucket carries exemplar %s:\n%s", wantEx, payload)
	}
	if probs := obs.Lint(payload, true); len(probs) != 0 {
		t.Errorf("exposition with exemplars fails lint: %v", probs)
	}
}

// formatUint avoids importing strconv for one call site.
func formatUint(v uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			return string(buf[i:])
		}
	}
}

func TestQueryLatencyObservedOnFailure(t *testing.T) {
	st, _, _ := buildStore(t, 9, nil)
	_, ts := newTestServer(t, Config{
		Stores:    map[string]*core.Store{"phi": st},
		QueueWait: time.Millisecond,
	})
	// An unknown variable fails before the engine runs and must not
	// pollute the query log (it never acquired a slot or a store).
	resp, _ := postQuery(t, ts, `{"var":"nope","vc":{"min":0,"max":1},"ranks":1}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown var status %d", resp.StatusCode)
	}
	_, body := getBody(t, ts, "/debug/querylog")
	if strings.TrimSpace(body) != "[]" {
		t.Errorf("failed-before-engine query was logged: %s", body)
	}
}
