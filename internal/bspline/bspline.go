// Package bspline implements cubic B-spline least-squares fitting and
// evaluation on a clamped uniform knot vector. It is the numerical core
// of the ISABELA-style lossy compressor (internal/compress): ISABELA
// sorts each window of values into a monotone curve and approximates
// that curve with a small number of cubic B-spline coefficients.
package bspline

import (
	"fmt"
	"math"
)

// Degree of the splines in this package (cubic).
const Degree = 3

// Spline is a fitted cubic B-spline over the parameter domain [0,1].
type Spline struct {
	coefs []float64
	knots []float64
}

// NumCoefs returns the number of control coefficients.
func (s *Spline) NumCoefs() int { return len(s.coefs) }

// Coefs returns the coefficient slice; callers must not mutate it.
func (s *Spline) Coefs() []float64 { return s.coefs }

// FromCoefs rebuilds a spline from stored coefficients (the decoder
// side of ISABELA).
func FromCoefs(coefs []float64) (*Spline, error) {
	if len(coefs) < Degree+1 {
		return nil, fmt.Errorf("bspline: need >= %d coefficients, got %d", Degree+1, len(coefs))
	}
	return &Spline{coefs: append([]float64(nil), coefs...), knots: clampedKnots(len(coefs))}, nil
}

// clampedKnots builds the clamped uniform knot vector for ncoef
// coefficients: degree+1 repeated knots at both ends, uniform interior.
func clampedKnots(ncoef int) []float64 {
	m := ncoef + Degree + 1
	knots := make([]float64, m)
	interior := ncoef - Degree // number of interior intervals
	for i := 0; i < m; i++ {
		switch {
		case i <= Degree:
			knots[i] = 0
		case i >= ncoef:
			knots[i] = 1
		default:
			knots[i] = float64(i-Degree) / float64(interior)
		}
	}
	return knots
}

// findSpan locates the knot span index containing t.
func findSpan(knots []float64, ncoef int, t float64) int {
	if t >= 1 {
		return ncoef - 1
	}
	if t <= 0 {
		return Degree
	}
	lo, hi := Degree, ncoef
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if t < knots[mid] {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// basisFuncs computes the Degree+1 nonzero basis function values at t
// for the given span (Cox–de Boor, NURBS-book algorithm A2.2).
func basisFuncs(knots []float64, span int, t float64, out *[Degree + 1]float64) {
	var left, right [Degree + 1]float64
	out[0] = 1
	for j := 1; j <= Degree; j++ {
		left[j] = t - knots[span+1-j]
		right[j] = knots[span+j] - t
		saved := 0.0
		for r := 0; r < j; r++ {
			denom := right[r+1] + left[j-r]
			var temp float64
			// Exact zero marks a repeated knot; Cox–de Boor defines the
			// 0/0 term as 0, so the comparison is intentionally exact.
			if denom != 0 { //mlocvet:ignore floatcmp -- exact zero guard before division, not a tolerance comparison
				temp = out[r] / denom
			}
			out[r] = saved + right[r+1]*temp
			saved = left[j-r] * temp
		}
		out[j] = saved
	}
}

// Eval evaluates the spline at parameter t in [0,1] (clamped).
func (s *Spline) Eval(t float64) float64 {
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	span := findSpan(s.knots, len(s.coefs), t)
	var basis [Degree + 1]float64
	basisFuncs(s.knots, span, t, &basis)
	var v float64
	for j := 0; j <= Degree; j++ {
		v += basis[j] * s.coefs[span-Degree+j]
	}
	return v
}

// EvalN evaluates the spline at n uniformly spaced parameters
// (t_i = i/(n-1); for n==1, t=0), appending into dst. This matches the
// sample positions used by Fit.
func (s *Spline) EvalN(n int, dst []float64) []float64 {
	if n <= 0 {
		return dst
	}
	if n == 1 {
		return append(dst, s.Eval(0))
	}
	for i := 0; i < n; i++ {
		dst = append(dst, s.Eval(float64(i)/float64(n-1)))
	}
	return dst
}

// Fit least-squares fits a cubic B-spline with ncoef coefficients to
// the samples y, assumed to lie at uniform parameters t_i = i/(n-1).
// It requires len(y) >= ncoef >= Degree+1.
func Fit(y []float64, ncoef int) (*Spline, error) {
	n := len(y)
	if ncoef < Degree+1 {
		return nil, fmt.Errorf("bspline: ncoef %d < %d", ncoef, Degree+1)
	}
	if n < ncoef {
		return nil, fmt.Errorf("bspline: %d samples cannot determine %d coefficients", n, ncoef)
	}
	knots := clampedKnots(ncoef)

	// Normal equations: (AᵀA)c = Aᵀy. A is n×ncoef with ≤4 nonzeros
	// per row, so AᵀA is banded with bandwidth Degree; we assemble it
	// densely (ncoef is small, tens) and solve with partial-pivot
	// Gaussian elimination.
	ata := make([][]float64, ncoef)
	for i := range ata {
		ata[i] = make([]float64, ncoef)
	}
	aty := make([]float64, ncoef)
	var basis [Degree + 1]float64
	for i := 0; i < n; i++ {
		var t float64
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		span := findSpan(knots, ncoef, t)
		basisFuncs(knots, span, t, &basis)
		base := span - Degree
		for a := 0; a <= Degree; a++ {
			ia := base + a
			aty[ia] += basis[a] * y[i]
			for b := 0; b <= Degree; b++ {
				ata[ia][base+b] += basis[a] * basis[b]
			}
		}
	}
	coefs, err := solveLinear(ata, aty)
	if err != nil {
		return nil, err
	}
	return &Spline{coefs: coefs, knots: knots}, nil
}

// solveLinear solves the dense system M x = b in place with partial
// pivoting. M and b are consumed.
func solveLinear(m [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(m[r][col]); a > best {
				best, pivot = a, r
			}
		}
		// An exactly-zero pivot column is structurally singular (no
		// sample touches the basis function), not a rounding artifact.
		if best == 0 { //mlocvet:ignore floatcmp -- exact zero means no improvement was recorded; a tolerance would misread tiny gains
			return nil, fmt.Errorf("bspline: singular normal matrix at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 { //mlocvet:ignore floatcmp -- exact zero guard before division, not a tolerance comparison
				continue // exact: skipping a zero factor is a pure fast path
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= m[r][c] * x[c]
		}
		x[r] = v / m[r][r]
	}
	return x, nil
}
