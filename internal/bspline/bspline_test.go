package bspline

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFitValidation(t *testing.T) {
	y := make([]float64, 10)
	if _, err := Fit(y, 3); err == nil {
		t.Error("ncoef < 4 accepted")
	}
	if _, err := Fit(y, 11); err == nil {
		t.Error("more coefficients than samples accepted")
	}
	if _, err := FromCoefs([]float64{1, 2}); err == nil {
		t.Error("too-short coefficient vector accepted")
	}
}

func TestKnotVector(t *testing.T) {
	k := clampedKnots(6) // degree 3, 6 coefs -> 10 knots, 3 interior intervals
	want := []float64{0, 0, 0, 0, 1.0 / 3, 2.0 / 3, 1, 1, 1, 1}
	if len(k) != len(want) {
		t.Fatalf("knots = %v", k)
	}
	for i := range want {
		if math.Abs(k[i]-want[i]) > 1e-12 {
			t.Fatalf("knots[%d] = %v, want %v", i, k[i], want[i])
		}
	}
}

func TestBasisPartitionOfUnity(t *testing.T) {
	// Cubic B-spline basis functions sum to 1 everywhere.
	knots := clampedKnots(12)
	var basis [Degree + 1]float64
	for i := 0; i <= 1000; i++ {
		tt := float64(i) / 1000
		span := findSpan(knots, 12, tt)
		basisFuncs(knots, span, tt, &basis)
		sum := 0.0
		for _, b := range basis {
			if b < -1e-12 {
				t.Fatalf("negative basis value %g at t=%v", b, tt)
			}
			sum += b
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Fatalf("basis sum %v at t=%v", sum, tt)
		}
	}
}

func TestFitReproducesConstant(t *testing.T) {
	y := make([]float64, 100)
	for i := range y {
		y[i] = 7.5
	}
	s, err := Fit(y, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := s.EvalN(100, nil)
	for i := range got {
		if math.Abs(got[i]-7.5) > 1e-9 {
			t.Fatalf("constant fit off at %d: %v", i, got[i])
		}
	}
}

func TestFitReproducesLinear(t *testing.T) {
	// Cubic splines reproduce polynomials up to degree 3 exactly
	// (up to least-squares conditioning).
	n := 200
	y := make([]float64, n)
	for i := range y {
		x := float64(i) / float64(n-1)
		y[i] = -3 + 11*x
	}
	s, err := Fit(y, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := s.EvalN(n, nil)
	for i := range got {
		if math.Abs(got[i]-y[i]) > 1e-8 {
			t.Fatalf("linear fit off at %d: %v vs %v", i, got[i], y[i])
		}
	}
}

func TestFitReproducesCubic(t *testing.T) {
	n := 300
	y := make([]float64, n)
	for i := range y {
		x := float64(i) / float64(n-1)
		y[i] = 2 - x + 4*x*x - 3*x*x*x
	}
	s, err := Fit(y, 16)
	if err != nil {
		t.Fatal(err)
	}
	got := s.EvalN(n, nil)
	for i := range got {
		if math.Abs(got[i]-y[i]) > 1e-7 {
			t.Fatalf("cubic fit off at %d: %v vs %v", i, got[i], y[i])
		}
	}
}

func TestFitSortedRandomData(t *testing.T) {
	// ISABELA's workload: sorted (monotone) windows of simulation data
	// are well approximated by few coefficients. A sorted sample of
	// smooth-distribution values should fit with small relative error.
	r := rand.New(rand.NewSource(7))
	n := 1024
	y := make([]float64, n)
	for i := range y {
		y[i] = r.NormFloat64()*10 + 50
	}
	sort.Float64s(y)
	s, err := Fit(y, 30)
	if err != nil {
		t.Fatal(err)
	}
	got := s.EvalN(n, nil)
	var maxRel, maxRelInterior float64
	for i := range got {
		rel := math.Abs(got[i]-y[i]) / math.Max(math.Abs(y[i]), 1e-12)
		if rel > maxRel {
			maxRel = rel
		}
		if i >= n/20 && i < n-n/20 && rel > maxRelInterior {
			maxRelInterior = rel
		}
	}
	// 30 coefficients over 1024 sorted gaussian points: the interior
	// (5th–95th percentile) must be tight; the extreme tails may deviate
	// more — ISABELA layers explicit error correction on top for those.
	if maxRelInterior > 0.01 {
		t.Fatalf("sorted-data fit interior max relative error %v too large", maxRelInterior)
	}
	if maxRel > 0.15 {
		t.Fatalf("sorted-data fit overall max relative error %v too large", maxRel)
	}
}

func TestEvalClampsParameter(t *testing.T) {
	s, err := Fit([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Eval(-0.5), s.Eval(0); got != want {
		t.Errorf("Eval(-0.5) = %v, want clamp to %v", got, want)
	}
	if got, want := s.Eval(1.5), s.Eval(1); got != want {
		t.Errorf("Eval(1.5) = %v, want clamp to %v", got, want)
	}
}

func TestEndpointInterpolationTendency(t *testing.T) {
	// With clamped knots, the spline value at t=0 and t=1 equals the
	// first/last coefficient; after least-squares on dense data the
	// endpoints should be close to the data endpoints.
	n := 500
	y := make([]float64, n)
	for i := range y {
		x := float64(i) / float64(n-1)
		y[i] = math.Sin(3 * x)
	}
	s, err := Fit(y, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Eval(0)-y[0]) > 0.01 || math.Abs(s.Eval(1)-y[n-1]) > 0.01 {
		t.Errorf("endpoints off: %v vs %v, %v vs %v", s.Eval(0), y[0], s.Eval(1), y[n-1])
	}
}

func TestFromCoefsRoundtrip(t *testing.T) {
	y := make([]float64, 64)
	for i := range y {
		y[i] = float64(i * i)
	}
	s, err := Fit(y, 12)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := FromCoefs(s.Coefs())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 50; i++ {
		tt := float64(i) / 50
		if s.Eval(tt) != s2.Eval(tt) {
			t.Fatalf("FromCoefs mismatch at t=%v", tt)
		}
	}
}

func TestEvalNEdgeCases(t *testing.T) {
	s, _ := Fit([]float64{0, 1, 2, 3, 4}, 4)
	if got := s.EvalN(0, nil); len(got) != 0 {
		t.Error("EvalN(0) not empty")
	}
	if got := s.EvalN(1, nil); len(got) != 1 || got[0] != s.Eval(0) {
		t.Error("EvalN(1) wrong")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	m := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	if _, err := solveLinear(m, b); err == nil {
		t.Error("singular matrix accepted")
	}
}

func TestQuickMonotoneFitBounded(t *testing.T) {
	// Property: for any seed, fitting a sorted window keeps RMS error
	// well under the data's standard deviation.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 256
		y := make([]float64, n)
		for i := range y {
			y[i] = r.Float64() * 100
		}
		sort.Float64s(y)
		s, err := Fit(y, 20)
		if err != nil {
			return false
		}
		got := s.EvalN(n, nil)
		var rms float64
		for i := range got {
			d := got[i] - y[i]
			rms += d * d
		}
		rms = math.Sqrt(rms / float64(n))
		return rms < 5 // data spans [0,100]; sorted uniform is near-linear
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFit1024x30(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	y := make([]float64, 1024)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	sort.Float64s(y)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(y, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalN1024(b *testing.B) {
	y := make([]float64, 1024)
	for i := range y {
		y[i] = float64(i)
	}
	s, _ := Fit(y, 30)
	dst := make([]float64, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = s.EvalN(1024, dst[:0])
	}
}
