// Package plod implements MLOC's Precision-based Level of Detail
// (paper §III-B3, Figure 3): a byte-level multi-resolution encoding of
// double-precision data.
//
// Each float64 is viewed as 8 bytes, most-significant first (sign,
// exponent, then fraction bytes). The bytes are regrouped into seven
// "planes": plane 0 holds the first two bytes of every value (the
// minimum needed to carry the sign, full exponent, and the top four
// fraction bits), and planes 1..6 each hold one further byte of every
// value. Reading planes 0..L-1 yields PLoD level L (level 1 = 2 bytes
// per value, level 7 = all 8 bytes, full precision).
//
// Missing low-order bytes are reassembled with the paper's dummy fill:
// 0x7F in the first absent byte and 0xFF in the rest, which centers the
// reconstruction inside the truncation interval instead of biasing it
// downward the way zero fill would.
package plod

import (
	"fmt"
	"math"
	"sync"
)

// NumPlanes is the number of byte planes (7: one 2-byte plane plus six
// 1-byte planes).
const NumPlanes = 7

// MaxLevel is the number of PLoD levels; level MaxLevel is full
// precision.
const MaxLevel = 7

// FillByteFirst is the dummy byte substituted for the first absent
// (truncated) byte when reassembling a partial-precision value: the
// paper's centered fill, placing the reconstruction in the middle of
// the truncation interval. See Assemble.
const FillByteFirst byte = 0x7F

// FillByteRest is the dummy byte substituted for every absent byte
// after the first; together with FillByteFirst it forms the
// 0x7F 0xFF 0xFF... tail of a truncated value.
const FillByteRest byte = 0xFF

// BytesPerValue returns how many leading bytes of each float64 a reader
// at the given PLoD level fetches (level 1 → 2 bytes … level 7 → 8).
func BytesPerValue(level int) int {
	checkLevel(level)
	return level + 1
}

// PlanesForLevel returns how many leading planes a reader at the given
// level needs (level L needs planes 0..L-1).
func PlanesForLevel(level int) int {
	checkLevel(level)
	return level
}

// PlaneWidth returns the number of bytes each value contributes to
// plane p: 2 for plane 0, 1 for the rest.
func PlaneWidth(p int) int {
	if p < 0 || p >= NumPlanes {
		panic(fmt.Sprintf("plod: plane %d out of [0,%d)", p, NumPlanes))
	}
	if p == 0 {
		return 2
	}
	return 1
}

func checkLevel(level int) {
	if level < 1 || level > MaxLevel {
		panic(fmt.Sprintf("plod: level %d out of [1,%d]", level, MaxLevel))
	}
}

// Split decomposes values into the seven byte planes. Plane p has
// len(values)*PlaneWidth(p) bytes, with each value's contribution
// stored contiguously in value order (so plane streams compress well
// and partial reads are sequential). Every call allocates fresh plane
// buffers; encoders that split many units per build should reuse a
// pooled SplitScratch instead.
func Split(values []float64) [NumPlanes][]byte {
	var planes [NumPlanes][]byte
	splitInto(values, &planes)
	return planes
}

// splitInto fills planes from values, reusing each plane's capacity
// when it suffices.
func splitInto(values []float64, planes *[NumPlanes][]byte) {
	n := len(values)
	for p := 0; p < NumPlanes; p++ {
		need := n * PlaneWidth(p)
		if cap(planes[p]) >= need {
			planes[p] = planes[p][:need]
		} else {
			planes[p] = make([]byte, need)
		}
	}
	for i, v := range values {
		bits := math.Float64bits(v)
		planes[0][2*i] = byte(bits >> 56)
		planes[0][2*i+1] = byte(bits >> 48)
		planes[1][i] = byte(bits >> 40)
		planes[2][i] = byte(bits >> 32)
		planes[3][i] = byte(bits >> 24)
		planes[4][i] = byte(bits >> 16)
		planes[5][i] = byte(bits >> 8)
		planes[6][i] = byte(bits)
	}
}

// SplitScratch holds reusable plane buffers for Split, so per-unit
// splits in a build loop stop allocating seven fresh slices each time.
// A scratch is single-owner (not safe for concurrent use); builders
// keep one per worker via GetSplitScratch/PutSplitScratch.
type SplitScratch struct {
	planes [NumPlanes][]byte
}

// Split is Split reusing the scratch's buffers. The returned planes
// alias the scratch and are valid only until its next Split call;
// callers must copy (or compress) every plane they keep.
func (s *SplitScratch) Split(values []float64) [NumPlanes][]byte {
	splitInto(values, &s.planes)
	return s.planes
}

var splitScratchPool = sync.Pool{New: func() any { return new(SplitScratch) }}

// GetSplitScratch takes a scratch from the package pool.
func GetSplitScratch() *SplitScratch { return splitScratchPool.Get().(*SplitScratch) }

// PutSplitScratch returns a scratch to the package pool. The caller
// must not use previously returned planes afterwards.
func PutSplitScratch(s *SplitScratch) { splitScratchPool.Put(s) }

// FillPolicy selects how absent low-order bytes are synthesized during
// partial reassembly.
type FillPolicy int

// Fill policies: FillCentered is the paper's 0x7F/0xFF scheme;
// FillZero is the naive alternative kept for the accuracy ablation.
const (
	FillCentered FillPolicy = iota
	FillZero
)

// Assemble reconstructs values from the first PlanesForLevel(level)
// planes using the given fill policy. The planes slice may contain more
// planes than needed; extra planes are ignored. n is the value count.
func Assemble(planes [][]byte, level int, n int, fill FillPolicy, dst []float64) []float64 {
	checkLevel(level)
	need := PlanesForLevel(level)
	if len(planes) < need {
		panic(fmt.Sprintf("plod: level %d needs %d planes, got %d", level, need, len(planes)))
	}
	if len(planes[0]) < 2*n {
		panic(fmt.Sprintf("plod: plane 0 has %d bytes, need %d", len(planes[0]), 2*n))
	}
	for p := 1; p < need; p++ {
		if len(planes[p]) < n {
			panic(fmt.Sprintf("plod: plane %d has %d bytes, need %d", p, len(planes[p]), n))
		}
	}
	// Precompute the dummy tail for the absent bytes.
	var tail uint64
	if fill == FillCentered && level < MaxLevel {
		absent := 8 - BytesPerValue(level)
		// First absent byte FillByteFirst, remaining FillByteRest.
		tail = uint64(FillByteFirst)
		for j := 1; j < absent; j++ {
			tail = tail<<8 | uint64(FillByteRest)
		}
		// Shift into the low `absent` bytes (already there).
	}
	for i := 0; i < n; i++ {
		bits := uint64(planes[0][2*i])<<56 | uint64(planes[0][2*i+1])<<48
		shift := uint(40)
		for p := 1; p < need; p++ {
			bits |= uint64(planes[p][i]) << shift
			shift -= 8
		}
		bits |= tail
		dst = append(dst, math.Float64frombits(bits))
	}
	return dst
}

// AssembleFull reconstructs exact values from all seven planes.
func AssembleFull(planes [][]byte, n int, dst []float64) []float64 {
	return Assemble(planes, MaxLevel, n, FillCentered, dst)
}

// RelErrorBound returns the worst-case relative error magnitude of a
// level-L reconstruction for normal (non-subnormal, non-zero) values.
// Truncating to k = BytesPerValue(L) bytes keeps 8k-12 fraction bits;
// centered fill halves the truncation interval.
func RelErrorBound(level int, fill FillPolicy) float64 {
	checkLevel(level)
	if level == MaxLevel {
		return 0
	}
	fracBits := 8*BytesPerValue(level) - 12 // minus sign(1) and exponent(11)
	interval := math.Pow(2, float64(-fracBits))
	if fill == FillCentered {
		return interval / 2
	}
	return interval
}

// IOSavings returns the fraction of bytes NOT transferred when reading
// at the given level (e.g. level 2 → 5/8 = 62.5%, the paper's figure).
func IOSavings(level int) float64 {
	checkLevel(level)
	return float64(8-BytesPerValue(level)) / 8
}
