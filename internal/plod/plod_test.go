package plod

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomValues(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		// Mix of magnitudes and signs, like simulation fields.
		out[i] = (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(12)-6))
	}
	return out
}

func TestBytesPerValue(t *testing.T) {
	want := map[int]int{1: 2, 2: 3, 3: 4, 4: 5, 5: 6, 6: 7, 7: 8}
	for lvl, w := range want {
		if got := BytesPerValue(lvl); got != w {
			t.Errorf("BytesPerValue(%d) = %d, want %d", lvl, got, w)
		}
	}
}

func TestLevelPanics(t *testing.T) {
	for _, f := range []func(){
		func() { BytesPerValue(0) },
		func() { BytesPerValue(8) },
		func() { PlanesForLevel(0) },
		func() { PlaneWidth(-1) },
		func() { PlaneWidth(7) },
		func() { RelErrorBound(9, FillCentered) },
		func() { IOSavings(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSplitPlaneSizes(t *testing.T) {
	values := randomValues(13, 1)
	planes := Split(values)
	if len(planes[0]) != 26 {
		t.Errorf("plane 0 has %d bytes, want 26", len(planes[0]))
	}
	for p := 1; p < NumPlanes; p++ {
		if len(planes[p]) != 13 {
			t.Errorf("plane %d has %d bytes, want 13", p, len(planes[p]))
		}
	}
}

func TestFullRoundtripExact(t *testing.T) {
	values := randomValues(1000, 2)
	values = append(values, 0, -0.0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64)
	planes := Split(values)
	back := AssembleFull(planesSlice(planes), len(values), nil)
	for i := range values {
		if math.Float64bits(back[i]) != math.Float64bits(values[i]) {
			t.Fatalf("value %d: %v -> %v (bit-level mismatch)", i, values[i], back[i])
		}
	}
}

func planesSlice(p [NumPlanes][]byte) [][]byte {
	out := make([][]byte, NumPlanes)
	for i := range p {
		out[i] = p[i]
	}
	return out
}

func TestPartialLevelsErrorBound(t *testing.T) {
	values := randomValues(5000, 3)
	planes := Split(values)
	for lvl := 1; lvl < MaxLevel; lvl++ {
		bound := RelErrorBound(lvl, FillCentered)
		back := Assemble(planesSlice(planes), lvl, len(values), FillCentered, nil)
		for i, v := range values {
			if v == 0 {
				continue
			}
			rel := math.Abs(back[i]-v) / math.Abs(v)
			// Allow a tiny slack factor for rounding at interval edges.
			if rel > bound*1.0001 {
				t.Fatalf("level %d: value %v reconstructed as %v, rel err %g > bound %g",
					lvl, v, back[i], rel, bound)
			}
		}
	}
}

func TestLevel2MatchesPaperErrorClaim(t *testing.T) {
	// Paper: PLoD level 2 (3 bytes) has max per-point relative error
	// 0.008% measured on S3D. Our theoretical worst-case bound for
	// centered fill at 3 bytes is 2^-13 ≈ 0.0122%; the measured maximum
	// must sit below the bound, so the bound being the same order of
	// magnitude (and >= the measurement) is the consistency check.
	bound := RelErrorBound(2, FillCentered)
	if bound < 0.00008 {
		t.Errorf("level-2 bound %g below the paper's measured 0.008%% — bound must dominate measurements", bound)
	}
	if bound > 0.0002 {
		t.Errorf("level-2 bound %g is not the paper's order of magnitude", bound)
	}
	if IOSavings(2) != 0.625 {
		t.Errorf("IOSavings(2) = %v, want 0.625 (62.5%%)", IOSavings(2))
	}
}

func TestCenteredBeatsZeroFill(t *testing.T) {
	// The paper's rationale for 0x7F/0xFF fill: zero fill always
	// underestimates magnitude, centered fill halves the worst case.
	values := randomValues(2000, 4)
	planes := Split(values)
	for _, lvl := range []int{1, 2, 3} {
		var sumC, sumZ float64
		backC := Assemble(planesSlice(planes), lvl, len(values), FillCentered, nil)
		backZ := Assemble(planesSlice(planes), lvl, len(values), FillZero, nil)
		for i, v := range values {
			if v == 0 {
				continue
			}
			sumC += math.Abs(backC[i]-v) / math.Abs(v)
			sumZ += math.Abs(backZ[i]-v) / math.Abs(v)
		}
		if sumC >= sumZ {
			t.Errorf("level %d: centered fill mean error %g not better than zero fill %g",
				lvl, sumC/float64(len(values)), sumZ/float64(len(values)))
		}
	}
}

func TestZeroFillTruncates(t *testing.T) {
	// Zero fill must reproduce the plain truncation: magnitude never
	// increases.
	values := randomValues(500, 5)
	planes := Split(values)
	back := Assemble(planesSlice(planes), 2, len(values), FillZero, nil)
	for i, v := range values {
		if math.Abs(back[i]) > math.Abs(v) {
			t.Fatalf("zero-fill increased magnitude: %v -> %v", v, back[i])
		}
	}
}

func TestAssemblePanics(t *testing.T) {
	values := randomValues(10, 6)
	planes := planesSlice(Split(values))
	for _, f := range []func(){
		func() { Assemble(planes[:1], 3, 10, FillCentered, nil) },   // too few planes
		func() { Assemble(planes, 3, 11, FillCentered, nil) },       // n too large
		func() { Assemble([][]byte{{1}}, 1, 1, FillCentered, nil) }, // short plane 0
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRelErrorBoundMonotone(t *testing.T) {
	prev := math.Inf(1)
	for lvl := 1; lvl <= MaxLevel; lvl++ {
		b := RelErrorBound(lvl, FillCentered)
		if b >= prev {
			t.Errorf("bound not decreasing at level %d: %g >= %g", lvl, b, prev)
		}
		prev = b
	}
	if RelErrorBound(MaxLevel, FillCentered) != 0 {
		t.Error("full precision bound must be 0")
	}
}

func TestQuickRoundtripFullPrecision(t *testing.T) {
	f := func(raw []uint64) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, len(raw))
		for i, b := range raw {
			values[i] = math.Float64frombits(b)
		}
		planes := Split(values)
		back := AssembleFull(planesSlice(planes), len(values), nil)
		for i := range values {
			if math.Float64bits(back[i]) != math.Float64bits(values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPartialWithinBound(t *testing.T) {
	f := func(seed int64) bool {
		values := randomValues(64, seed)
		planes := planesSlice(Split(values))
		back := Assemble(planes, 3, len(values), FillCentered, nil)
		bound := RelErrorBound(3, FillCentered) * 1.0001
		for i, v := range values {
			if v == 0 {
				continue
			}
			if math.Abs(back[i]-v)/math.Abs(v) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSplit(b *testing.B) {
	values := randomValues(1<<16, 1)
	b.SetBytes(int64(len(values) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Split(values)
	}
}

func BenchmarkAssembleLevel2(b *testing.B) {
	values := randomValues(1<<16, 1)
	planes := planesSlice(Split(values))
	dst := make([]float64, 0, len(values))
	b.SetBytes(int64(len(values) * 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = Assemble(planes, 2, len(values), FillCentered, dst[:0])
	}
}
