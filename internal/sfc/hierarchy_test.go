package sfc

import "testing"

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(MustHilbert(2, 3)) // side 8, levels 0..3
	if h.Levels() != 4 {
		t.Fatalf("Levels() = %d, want 4", h.Levels())
	}
	cases := []struct {
		coords []uint32
		want   int
	}{
		{[]uint32{0, 0}, 0}, // origin: coarsest
		{[]uint32{4, 4}, 1}, // stride-4 aligned
		{[]uint32{4, 0}, 1},
		{[]uint32{2, 4}, 2}, // stride-2 aligned
		{[]uint32{2, 2}, 2},
		{[]uint32{1, 0}, 3}, // odd coordinate: finest
		{[]uint32{3, 5}, 3},
	}
	for _, c := range cases {
		if got := h.Level(c.coords); got != c.want {
			t.Errorf("Level(%v) = %d, want %d", c.coords, got, c.want)
		}
	}
}

func TestHierarchyLevelCounts(t *testing.T) {
	// Sum of PointsAtLevel over all levels must equal side^dims, and
	// must match brute-force counting.
	h := NewHierarchy(MustHilbert(2, 3))
	side := uint32(8)
	counts := make([]uint64, h.Levels())
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			counts[h.Level([]uint32{x, y})]++
		}
	}
	var total uint64
	for lvl := 0; lvl < h.Levels(); lvl++ {
		if got := h.PointsAtLevel(lvl); got != counts[lvl] {
			t.Errorf("PointsAtLevel(%d) = %d, brute force %d", lvl, got, counts[lvl])
		}
		total += counts[lvl]
	}
	if total != uint64(side)*uint64(side) {
		t.Errorf("levels cover %d points, want %d", total, side*side)
	}
}

func TestHierarchySubsetStride(t *testing.T) {
	h := NewHierarchy(MustHilbert(3, 4))
	want := []uint32{16, 8, 4, 2, 1}
	for lvl, w := range want {
		if got := h.SubsetStride(lvl); got != w {
			t.Errorf("SubsetStride(%d) = %d, want %d", lvl, got, w)
		}
	}
}

func TestHierarchySubsetNesting(t *testing.T) {
	// Every point in the level-ℓ subsample must have Level <= ℓ: the
	// subsets are nested, so a reader at resolution ℓ reads exactly
	// levels 0..ℓ.
	h := NewHierarchy(MustHilbert(2, 4))
	side := uint32(16)
	for lvl := 0; lvl < h.Levels(); lvl++ {
		stride := h.SubsetStride(lvl)
		for x := uint32(0); x < side; x += stride {
			for y := uint32(0); y < side; y += stride {
				if got := h.Level([]uint32{x, y}); got > lvl {
					t.Fatalf("point (%d,%d) in stride-%d subsample has level %d > %d",
						x, y, stride, got, lvl)
				}
			}
		}
	}
}

func TestHierarchyRankOrdering(t *testing.T) {
	// Within a level, ranks must be distinct (they are Hilbert indices
	// of distinct points).
	h := NewHierarchy(MustHilbert(2, 3))
	seen := map[int]map[uint64]bool{}
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			lvl, rank := h.Rank([]uint32{x, y})
			if seen[lvl] == nil {
				seen[lvl] = map[uint64]bool{}
			}
			if seen[lvl][rank] {
				t.Fatalf("duplicate rank %d at level %d", rank, lvl)
			}
			seen[lvl][rank] = true
		}
	}
}

func TestHierarchyPanicsOnBadLevel(t *testing.T) {
	h := NewHierarchy(MustHilbert(2, 3))
	assertPanics(t, func() { h.PointsAtLevel(-1) }, "negative level")
	assertPanics(t, func() { h.PointsAtLevel(4) }, "level too large")
	assertPanics(t, func() { h.SubsetStride(99) }, "stride level too large")
}
