package sfc

import "fmt"

// Hierarchy implements the hierarchical Hilbert mapping used by MLOC's
// subset-based multi-resolution layout (paper §III-B3, citing
// Pascucci-style hierarchical indexing). The lattice is split into
// resolution levels: level 0 holds the points of the coarsest
// subsampling (stride 2^order), and each finer level ℓ adds the points
// that first appear at stride 2^(order-ℓ). Storing each level's points
// contiguously (ordered by their Hilbert index) lets a reader fetch a
// resolution-ℓ subset with a single contiguous scan per level.
type Hierarchy struct {
	curve *Hilbert
}

// NewHierarchy builds a hierarchical mapping over the given Hilbert
// curve.
func NewHierarchy(curve *Hilbert) *Hierarchy {
	return &Hierarchy{curve: curve}
}

// Levels returns the number of resolution levels, order+1: the coarsest
// level holds a single point per 2^order-sized cell, the finest holds
// every remaining point.
func (h *Hierarchy) Levels() int { return int(h.curve.Order()) + 1 }

// Level returns the resolution level at which the point with the given
// coordinates first appears. A point belongs to level ℓ when its finest
// nonzero stride alignment is 2^(order-ℓ); the origin-aligned coarsest
// points are level 0.
func (h *Hierarchy) Level(coords []uint32) int {
	order := h.curve.Order()
	// The level is determined by the largest power-of-two stride that
	// divides every coordinate. Points with all coords divisible by
	// 2^order (only the origin when side == 2^order) are level 0.
	best := order
	for _, c := range coords {
		if c == 0 {
			continue
		}
		t := trailingZeros32(c)
		if t < best {
			best = t
		}
	}
	return int(order - best)
}

// PointsAtLevel returns the number of lattice points whose Level equals
// exactly lvl, for a curve of side s per dimension.
func (h *Hierarchy) PointsAtLevel(lvl int) uint64 {
	if lvl < 0 || lvl >= h.Levels() {
		panic(fmt.Sprintf("sfc: level %d out of range [0,%d)", lvl, h.Levels()))
	}
	// Points with Level <= lvl are those aligned to stride 2^(order-lvl):
	// (2^lvl)^dims of them. Level == lvl is the difference with lvl-1.
	upTo := func(l int) uint64 {
		per := uint64(1) << uint(l)
		n := uint64(1)
		for i := 0; i < h.curve.Dims(); i++ {
			n *= per
		}
		return n
	}
	if lvl == 0 {
		return upTo(0)
	}
	return upTo(lvl) - upTo(lvl-1)
}

// Rank returns the (level, withinLevelHilbertIndex) pair for a point.
// Sorting points by (level, rank) yields the hierarchical layout.
func (h *Hierarchy) Rank(coords []uint32) (level int, rank uint64) {
	return h.Level(coords), h.curve.Index(coords)
}

// SubsetStride returns the sampling stride that a reader of resolution
// level lvl uses: points with all coordinates divisible by the stride
// form the level-lvl subsample.
func (h *Hierarchy) SubsetStride(lvl int) uint32 {
	if lvl < 0 || lvl >= h.Levels() {
		panic(fmt.Sprintf("sfc: level %d out of range [0,%d)", lvl, h.Levels()))
	}
	return uint32(1) << (h.curve.Order() - uint(lvl))
}

func trailingZeros32(v uint32) uint {
	if v == 0 {
		return 32
	}
	n := uint(0)
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}
