package sfc

import "fmt"

// ZOrder is a Morton (Z-order) curve over dims dimensions with 2^order
// points per side. It serves as the comparison baseline for the curve
// ablation experiment: Z-order is cheaper to compute than Hilbert but
// has weaker locality across quadrant boundaries.
type ZOrder struct {
	dims  int
	order uint
}

// NewZOrder constructs a Z-order curve; constraints match NewHilbert.
func NewZOrder(dims int, order uint) (*ZOrder, error) {
	if dims < 1 {
		return nil, fmt.Errorf("sfc: dims must be >= 1, got %d", dims)
	}
	if order < 1 || order > 32 {
		return nil, fmt.Errorf("sfc: order must be in [1,32], got %d", order)
	}
	if uint(dims)*order > 64 {
		return nil, fmt.Errorf("sfc: dims*order = %d exceeds 64 bits", uint(dims)*order)
	}
	return &ZOrder{dims: dims, order: order}, nil
}

// MustZOrder is NewZOrder that panics on error.
func MustZOrder(dims int, order uint) *ZOrder {
	z, err := NewZOrder(dims, order)
	if err != nil {
		panic(err)
	}
	return z
}

// Dims returns the dimensionality of the curve.
func (z *ZOrder) Dims() int { return z.dims }

// Order returns the bits per dimension.
func (z *ZOrder) Order() uint { return z.order }

// Index interleaves the coordinate bits into a Morton code. Dimension 0
// provides the most significant bit within each bit plane, matching the
// Hilbert implementation's convention.
func (z *ZOrder) Index(coords []uint32) uint64 {
	if len(coords) != z.dims {
		panic(fmt.Sprintf("sfc: ZOrder curve has %d dims, got %d coords", z.dims, len(coords)))
	}
	var d uint64
	for b := int(z.order) - 1; b >= 0; b-- {
		for i := 0; i < z.dims; i++ {
			d = (d << 1) | uint64((coords[i]>>uint(b))&1)
		}
	}
	return d
}

// Coords inverts Index, appending into dst.
func (z *ZOrder) Coords(index uint64, dst []uint32) []uint32 {
	x := make([]uint32, z.dims)
	shift := uint(z.dims)*z.order - 1
	for b := int(z.order) - 1; b >= 0; b-- {
		for i := 0; i < z.dims; i++ {
			bit := (index >> shift) & 1
			x[i] |= uint32(bit) << uint(b)
			if shift > 0 {
				shift--
			}
		}
	}
	return append(dst, x...)
}

// RowMajor is the trivial row-major linearization, the "no curve"
// baseline in layout ablations.
type RowMajor struct {
	dims  int
	order uint
}

// NewRowMajor constructs a row-major order; constraints match NewHilbert.
func NewRowMajor(dims int, order uint) (*RowMajor, error) {
	if dims < 1 {
		return nil, fmt.Errorf("sfc: dims must be >= 1, got %d", dims)
	}
	if order < 1 || order > 32 {
		return nil, fmt.Errorf("sfc: order must be in [1,32], got %d", order)
	}
	if uint(dims)*order > 64 {
		return nil, fmt.Errorf("sfc: dims*order = %d exceeds 64 bits", uint(dims)*order)
	}
	return &RowMajor{dims: dims, order: order}, nil
}

// MustRowMajor is NewRowMajor that panics on error.
func MustRowMajor(dims int, order uint) *RowMajor {
	r, err := NewRowMajor(dims, order)
	if err != nil {
		panic(err)
	}
	return r
}

// Dims returns the dimensionality of the curve.
func (r *RowMajor) Dims() int { return r.dims }

// Order returns the bits per dimension.
func (r *RowMajor) Order() uint { return r.order }

// Index computes the row-major linear index (dimension 0 slowest).
func (r *RowMajor) Index(coords []uint32) uint64 {
	if len(coords) != r.dims {
		panic(fmt.Sprintf("sfc: RowMajor curve has %d dims, got %d coords", r.dims, len(coords)))
	}
	side := uint64(1) << r.order
	var d uint64
	for i := 0; i < r.dims; i++ {
		d = d*side + uint64(coords[i])
	}
	return d
}

// Coords inverts Index, appending into dst.
func (r *RowMajor) Coords(index uint64, dst []uint32) []uint32 {
	side := uint64(1) << r.order
	x := make([]uint32, r.dims)
	for i := r.dims - 1; i >= 0; i-- {
		x[i] = uint32(index % side)
		index /= side
	}
	return append(dst, x...)
}

// CurveKind names a curve family for configuration surfaces.
type CurveKind string

// Supported curve kinds.
const (
	CurveHilbert  CurveKind = "hilbert"
	CurveZOrder   CurveKind = "zorder"
	CurveRowMajor CurveKind = "rowmajor"
)

// NewCurve builds a curve of the named kind.
func NewCurve(kind CurveKind, dims int, order uint) (Curve, error) {
	switch kind {
	case CurveHilbert:
		return NewHilbert(dims, order)
	case CurveZOrder:
		return NewZOrder(dims, order)
	case CurveRowMajor:
		return NewRowMajor(dims, order)
	default:
		return nil, fmt.Errorf("sfc: unknown curve kind %q", kind)
	}
}
