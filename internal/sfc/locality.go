package sfc

// Locality metrics quantify how well a curve clusters spatial regions
// into contiguous runs of the linearized order. The MLOC paper's case
// for Hilbert ordering (§III-B2, citing Moon et al.) is that a query
// over a spatial sub-volume touches fewer, longer runs of the
// linearization, reducing seek count. These helpers drive both tests
// and the curve-ablation benchmark.

// RegionRuns returns the number of maximal contiguous runs of curve
// indices covered by the axis-aligned box [lo, hi] (inclusive bounds per
// dimension). Fewer runs means fewer seeks for the same data volume.
func RegionRuns(c Curve, lo, hi []uint32) int {
	idx := regionIndices(c, lo, hi)
	if len(idx) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(idx); i++ {
		if idx[i] != idx[i-1]+1 {
			runs++
		}
	}
	return runs
}

// RegionSpan returns (min, max) curve index covered by the box. The
// span-to-volume ratio measures over-read when a reader fetches the
// whole span in one request.
func RegionSpan(c Curve, lo, hi []uint32) (min, max uint64) {
	idx := regionIndices(c, lo, hi)
	if len(idx) == 0 {
		return 0, 0
	}
	return idx[0], idx[len(idx)-1]
}

// regionIndices enumerates and sorts the curve indices of every lattice
// point in the box. Intended for modest test/bench sizes.
func regionIndices(c Curve, lo, hi []uint32) []uint64 {
	dims := c.Dims()
	if len(lo) != dims || len(hi) != dims {
		panic("sfc: bounds dimensionality mismatch")
	}
	n := uint64(1)
	for d := 0; d < dims; d++ {
		if hi[d] < lo[d] {
			return nil
		}
		n *= uint64(hi[d]-lo[d]) + 1
	}
	out := make([]uint64, 0, n)
	coords := make([]uint32, dims)
	copy(coords, lo)
	for {
		out = append(out, c.Index(coords))
		// Odometer increment.
		d := dims - 1
		for d >= 0 {
			coords[d]++
			if coords[d] <= hi[d] {
				break
			}
			coords[d] = lo[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	sortUint64(out)
	return out
}

// sortUint64 is an in-place pattern-defeating-free quicksort for the
// small slices used in locality analysis; stdlib sort would force an
// interface boxing per element via sort.Slice, which the benches avoid.
func sortUint64(a []uint64) {
	if len(a) < 2 {
		return
	}
	if len(a) < 16 {
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	pivot := a[len(a)/2]
	left, right := 0, len(a)-1
	for left <= right {
		for a[left] < pivot {
			left++
		}
		for a[right] > pivot {
			right--
		}
		if left <= right {
			a[left], a[right] = a[right], a[left]
			left++
			right--
		}
	}
	sortUint64(a[:right+1])
	sortUint64(a[left:])
}
