package sfc

import (
	"testing"
	"testing/quick"
)

func TestZOrderRoundtrip(t *testing.T) {
	z := MustZOrder(2, 4)
	n := uint64(1) << 8
	seen := make(map[string]bool)
	for d := uint64(0); d < n; d++ {
		c := z.Coords(d, nil)
		if seen[coordKey(c)] {
			t.Fatalf("coords %v repeated", c)
		}
		seen[coordKey(c)] = true
		if back := z.Index(c); back != d {
			t.Fatalf("roundtrip %d -> %v -> %d", d, c, back)
		}
	}
}

func TestZOrderKnownValues(t *testing.T) {
	// For a 2-D Morton code with dim 0 as the high bit of each plane:
	// (x=0,y=0)->0, (0,1)->1, (1,0)->2, (1,1)->3 at order 1.
	z := MustZOrder(2, 1)
	cases := []struct {
		coords []uint32
		want   uint64
	}{
		{[]uint32{0, 0}, 0},
		{[]uint32{0, 1}, 1},
		{[]uint32{1, 0}, 2},
		{[]uint32{1, 1}, 3},
	}
	for _, c := range cases {
		if got := z.Index(c.coords); got != c.want {
			t.Errorf("Index(%v) = %d, want %d", c.coords, got, c.want)
		}
	}
}

func TestZOrderRoundtripQuick(t *testing.T) {
	z := MustZOrder(3, 12)
	f := func(a, b, c uint32) bool {
		coords := []uint32{a % 4096, b % 4096, c % 4096}
		back := z.Coords(z.Index(coords), nil)
		return back[0] == coords[0] && back[1] == coords[1] && back[2] == coords[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRowMajorRoundtrip(t *testing.T) {
	r := MustRowMajor(3, 4)
	for d := uint64(0); d < 1<<12; d++ {
		c := r.Coords(d, nil)
		if back := r.Index(c); back != d {
			t.Fatalf("roundtrip %d -> %v -> %d", d, c, back)
		}
	}
}

func TestRowMajorIsRowMajor(t *testing.T) {
	r := MustRowMajor(2, 2)
	// side 4: index = x*4 + y
	if got := r.Index([]uint32{2, 3}); got != 11 {
		t.Fatalf("Index([2,3]) = %d, want 11", got)
	}
	if got := r.Coords(11, nil); got[0] != 2 || got[1] != 3 {
		t.Fatalf("Coords(11) = %v, want [2 3]", got)
	}
}

func TestNewCurveKinds(t *testing.T) {
	for _, kind := range []CurveKind{CurveHilbert, CurveZOrder, CurveRowMajor} {
		c, err := NewCurve(kind, 2, 4)
		if err != nil {
			t.Fatalf("NewCurve(%s): %v", kind, err)
		}
		if c.Dims() != 2 || c.Order() != 4 {
			t.Fatalf("NewCurve(%s): dims/order mismatch", kind)
		}
	}
	if _, err := NewCurve("peano", 2, 4); err == nil {
		t.Fatal("expected error for unknown curve kind")
	}
}

func TestHilbertBeatsZOrderOnRuns(t *testing.T) {
	// The motivating locality property: averaged over many random
	// square sub-regions, Hilbert ordering yields no more contiguous
	// runs (i.e. seeks) than Z-order. This is the paper's stated reason
	// for choosing HSFC (§III-B2).
	h := MustHilbert(2, 6)
	z := MustZOrder(2, 6)
	side := uint32(64)
	var hRuns, zRuns int
	rng := uint32(12345)
	next := func(mod uint32) uint32 {
		rng = rng*1664525 + 1013904223
		return (rng >> 8) % mod
	}
	for i := 0; i < 50; i++ {
		w := next(16) + 4
		x0 := next(side - w)
		y0 := next(side - w)
		lo := []uint32{x0, y0}
		hi := []uint32{x0 + w - 1, y0 + w - 1}
		hRuns += RegionRuns(h, lo, hi)
		zRuns += RegionRuns(z, lo, hi)
	}
	if hRuns > zRuns {
		t.Errorf("Hilbert produced more runs than Z-order over random squares: %d > %d", hRuns, zRuns)
	}
}

func TestRegionRunsFullGridIsOne(t *testing.T) {
	// The whole grid is one contiguous run for any bijective curve.
	for _, c := range []Curve{MustHilbert(2, 3), MustZOrder(2, 3), MustRowMajor(2, 3)} {
		runs := RegionRuns(c, []uint32{0, 0}, []uint32{7, 7})
		if runs != 1 {
			t.Errorf("%T: full grid runs = %d, want 1", c, runs)
		}
	}
}

func TestRegionRunsEmptyRegion(t *testing.T) {
	h := MustHilbert(2, 3)
	if runs := RegionRuns(h, []uint32{5, 5}, []uint32{4, 4}); runs != 0 {
		t.Errorf("inverted region runs = %d, want 0", runs)
	}
}

func TestRegionSpan(t *testing.T) {
	r := MustRowMajor(2, 3) // side 8, index = x*8+y
	min, max := RegionSpan(r, []uint32{1, 2}, []uint32{2, 4})
	if min != 10 || max != 20 {
		t.Errorf("RegionSpan = (%d,%d), want (10,20)", min, max)
	}
}

func BenchmarkZOrderIndex3D(b *testing.B) {
	z := MustZOrder(3, 10)
	coords := []uint32{123, 456, 789}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = z.Index(coords)
	}
}
