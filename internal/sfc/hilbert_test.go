package sfc

import (
	"testing"
	"testing/quick"
)

func TestNewHilbertValidation(t *testing.T) {
	cases := []struct {
		dims  int
		order uint
		ok    bool
	}{
		{2, 4, true},
		{3, 7, true},
		{1, 32, true},
		{2, 32, true},
		{0, 4, false},
		{-1, 4, false},
		{2, 0, false},
		{2, 33, false},
		{3, 22, false}, // 66 bits
		{4, 16, true},  // 64 bits exactly
		{4, 17, false},
	}
	for _, c := range cases {
		_, err := NewHilbert(c.dims, c.order)
		if (err == nil) != c.ok {
			t.Errorf("NewHilbert(%d,%d): err=%v, want ok=%v", c.dims, c.order, err, c.ok)
		}
	}
}

func TestHilbert2DOrder1(t *testing.T) {
	// The order-1 2-D Hilbert curve visits (0,0),(0,1),(1,1),(1,0) in
	// some axis convention; verify it is a bijection visiting all 4
	// cells with unit steps.
	h := MustHilbert(2, 1)
	seen := map[uint64]bool{}
	var prev []uint32
	for d := uint64(0); d < 4; d++ {
		c := h.Coords(d, nil)
		key := uint64(c[0])<<32 | uint64(c[1])
		if seen[key] {
			t.Fatalf("coords %v repeated at d=%d", c, d)
		}
		seen[key] = true
		if got := h.Index(c); got != d {
			t.Fatalf("Index(Coords(%d)) = %d", d, got)
		}
		if prev != nil {
			if manhattan(prev, c) != 1 {
				t.Fatalf("step %d -> %d not adjacent: %v -> %v", d-1, d, prev, c)
			}
		}
		prev = c
	}
}

func manhattan(a, b []uint32) int {
	s := 0
	for i := range a {
		d := int(a[i]) - int(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

func TestHilbertAdjacency(t *testing.T) {
	// Defining property of the Hilbert curve: consecutive indices map
	// to lattice points at Manhattan distance exactly 1.
	for _, tc := range []struct {
		dims  int
		order uint
	}{{2, 3}, {2, 5}, {3, 2}, {3, 3}, {4, 2}} {
		h := MustHilbert(tc.dims, tc.order)
		n := h.Length()
		prev := h.Coords(0, nil)
		for d := uint64(1); d < n; d++ {
			cur := h.Coords(d, nil)
			if manhattan(prev, cur) != 1 {
				t.Fatalf("dims=%d order=%d: step %d not adjacent: %v -> %v",
					tc.dims, tc.order, d, prev, cur)
			}
			prev = cur
		}
	}
}

func TestHilbertBijection(t *testing.T) {
	for _, tc := range []struct {
		dims  int
		order uint
	}{{2, 4}, {3, 3}, {1, 6}, {5, 2}} {
		h := MustHilbert(tc.dims, tc.order)
		n := h.Length()
		seen := make(map[string]bool, n)
		for d := uint64(0); d < n; d++ {
			c := h.Coords(d, nil)
			key := coordKey(c)
			if seen[key] {
				t.Fatalf("dims=%d order=%d: coords %v visited twice", tc.dims, tc.order, c)
			}
			seen[key] = true
			if back := h.Index(c); back != d {
				t.Fatalf("dims=%d order=%d: roundtrip %d -> %v -> %d", tc.dims, tc.order, d, c, back)
			}
		}
		if uint64(len(seen)) != n {
			t.Fatalf("dims=%d order=%d: visited %d of %d cells", tc.dims, tc.order, len(seen), n)
		}
	}
}

func coordKey(c []uint32) string {
	b := make([]byte, 0, len(c)*4)
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func TestHilbertRoundtripQuick(t *testing.T) {
	h := MustHilbert(3, 10)
	f := func(a, b, c uint32) bool {
		coords := []uint32{a % 1024, b % 1024, c % 1024}
		d := h.Index(coords)
		back := h.Coords(d, nil)
		return back[0] == coords[0] && back[1] == coords[1] && back[2] == coords[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertIndexRangeQuick(t *testing.T) {
	h := MustHilbert(2, 16)
	f := func(a, b uint32) bool {
		coords := []uint32{a % 65536, b % 65536}
		return h.Index(coords) < h.Length()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertPanicsOnBadCoords(t *testing.T) {
	h := MustHilbert(2, 4)
	assertPanics(t, func() { h.Index([]uint32{1, 2, 3}) }, "wrong arity")
	assertPanics(t, func() { h.Index([]uint32{16, 0}) }, "out of range")
}

func assertPanics(t *testing.T, f func(), msg string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic: %s", msg)
		}
	}()
	f()
}

func TestOrderFor(t *testing.T) {
	cases := []struct {
		n    uint64
		want uint
	}{{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := OrderFor(c.n); got != c.want {
			t.Errorf("OrderFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestHilbertDoesNotMutateInput(t *testing.T) {
	h := MustHilbert(3, 5)
	coords := []uint32{3, 7, 11}
	orig := append([]uint32(nil), coords...)
	h.Index(coords)
	for i := range coords {
		if coords[i] != orig[i] {
			t.Fatalf("Index mutated input coords: %v != %v", coords, orig)
		}
	}
}

func BenchmarkHilbertIndex2D(b *testing.B) {
	h := MustHilbert(2, 16)
	coords := []uint32{12345, 54321}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Index(coords)
	}
}

func BenchmarkHilbertCoords3D(b *testing.B) {
	h := MustHilbert(3, 10)
	dst := make([]uint32, 0, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = h.Coords(uint64(i)&(h.Length()-1), dst[:0])
	}
}
