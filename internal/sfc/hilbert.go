// Package sfc implements space-filling curves used by MLOC to linearize
// multi-dimensional chunk grids with high spatial locality.
//
// The central export is the Hilbert space-filling curve (HSFC) in N
// dimensions, implemented with Skilling's transpose algorithm
// ("Programming the Hilbert curve", AIP 2004). A Z-order (Morton) curve
// and a plain row-major order are provided as comparison baselines for
// the layout-ablation experiments, and a hierarchical HSFC supports the
// subset-based multi-resolution layout from the MLOC paper (§III-B3).
package sfc

import (
	"errors"
	"fmt"
)

// Curve linearizes N-dimensional lattice coordinates into a single
// index and back. All implementations in this package are bijections
// over the cube [0, 2^order)^dims.
type Curve interface {
	// Dims returns the number of dimensions the curve spans.
	Dims() int
	// Order returns the number of bits per dimension. The curve covers
	// side length 2^Order per dimension.
	Order() uint
	// Index maps lattice coordinates to the curve position.
	Index(coords []uint32) uint64
	// Coords maps a curve position back to lattice coordinates,
	// appending into dst (which may be nil).
	Coords(index uint64, dst []uint32) []uint32
}

// Hilbert is an N-dimensional Hilbert curve of a given order.
// It is valid for dims*order <= 64 so positions fit in a uint64.
type Hilbert struct {
	dims  int
	order uint
}

// NewHilbert constructs a Hilbert curve over dims dimensions with
// 2^order points per side. It returns an error when the parameters
// cannot be represented in 64-bit indices.
func NewHilbert(dims int, order uint) (*Hilbert, error) {
	if dims < 1 {
		return nil, fmt.Errorf("sfc: dims must be >= 1, got %d", dims)
	}
	if order < 1 || order > 32 {
		return nil, fmt.Errorf("sfc: order must be in [1,32], got %d", order)
	}
	if uint(dims)*order > 64 {
		return nil, fmt.Errorf("sfc: dims*order = %d exceeds 64 bits", uint(dims)*order)
	}
	return &Hilbert{dims: dims, order: order}, nil
}

// MustHilbert is NewHilbert that panics on error, for static configs.
func MustHilbert(dims int, order uint) *Hilbert {
	h, err := NewHilbert(dims, order)
	if err != nil {
		panic(err)
	}
	return h
}

// Dims returns the dimensionality of the curve.
func (h *Hilbert) Dims() int { return h.dims }

// Order returns the bits per dimension.
func (h *Hilbert) Order() uint { return h.order }

// Side returns the number of lattice points per dimension, 2^order.
func (h *Hilbert) Side() uint64 { return 1 << h.order }

// Length returns the total number of points on the curve.
func (h *Hilbert) Length() uint64 {
	bits := uint(h.dims) * h.order
	if bits == 64 {
		return ^uint64(0) // length 2^64 does not fit; callers treat as max
	}
	return 1 << bits
}

// Index maps coords (len == Dims, each < 2^order) to the Hilbert
// position. It panics when the coordinate slice has the wrong length or
// holds out-of-range values, because these indicate programmer error in
// layout code rather than recoverable conditions.
func (h *Hilbert) Index(coords []uint32) uint64 {
	h.checkCoords(coords)
	x := make([]uint32, h.dims)
	copy(x, coords)
	axesToTranspose(x, h.order)
	return interleaveTransposed(x, h.order)
}

// Coords inverts Index, appending the coordinates into dst.
func (h *Hilbert) Coords(index uint64, dst []uint32) []uint32 {
	x := deinterleaveTransposed(index, h.dims, h.order)
	transposeToAxes(x, h.order)
	return append(dst, x...)
}

func (h *Hilbert) checkCoords(coords []uint32) {
	if len(coords) != h.dims {
		panic(fmt.Sprintf("sfc: Hilbert curve has %d dims, got %d coords", h.dims, len(coords)))
	}
	max := uint32(1)<<h.order - 1
	if h.order == 32 {
		max = ^uint32(0)
	}
	for i, c := range coords {
		if c > max {
			panic(fmt.Sprintf("sfc: coordinate %d = %d out of range [0,%d]", i, c, max))
		}
	}
}

// axesToTranspose converts coordinates in place into the "transposed"
// Hilbert representation (Skilling 2004).
func axesToTranspose(x []uint32, order uint) {
	n := len(x)
	// Inverse undo excess work.
	for q := uint32(1) << (order - 1); q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	t := uint32(0)
	for q := uint32(1) << (order - 1); q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts the transposed representation back to plain
// coordinates in place.
func transposeToAxes(x []uint32, order uint) {
	n := len(x)
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	for q := uint32(2); q != uint32(1)<<order; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleaveTransposed packs the transposed coordinates into a single
// uint64 Hilbert index, most significant bit plane first.
func interleaveTransposed(x []uint32, order uint) uint64 {
	var d uint64
	for b := int(order) - 1; b >= 0; b-- {
		for i := 0; i < len(x); i++ {
			d = (d << 1) | uint64((x[i]>>uint(b))&1)
		}
	}
	return d
}

// deinterleaveTransposed unpacks a Hilbert index into transposed
// coordinates.
func deinterleaveTransposed(d uint64, dims int, order uint) []uint32 {
	x := make([]uint32, dims)
	shift := uint(dims)*order - 1
	for b := int(order) - 1; b >= 0; b-- {
		for i := 0; i < dims; i++ {
			bit := (d >> shift) & 1
			x[i] |= uint32(bit) << uint(b)
			if shift > 0 {
				shift--
			}
		}
	}
	return x
}

// ErrNotPowerOfTwo reports grids whose sides are not powers of two;
// curve layouts require padding such grids up to the next power of two.
var ErrNotPowerOfTwo = errors.New("sfc: grid side is not a power of two")

// OrderFor returns the minimal curve order whose side covers n points
// per dimension (i.e. smallest k with 2^k >= n).
func OrderFor(n uint64) uint {
	if n <= 1 {
		return 1
	}
	k := uint(0)
	for s := uint64(1); s < n; s <<= 1 {
		k++
	}
	return k
}
