package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"mloc/internal/bitmap"
)

func TestRunBasic(t *testing.T) {
	var count atomic.Int64
	err := Run(8, func(c *Comm) error {
		if c.Size() != 8 {
			return fmt.Errorf("Size = %d", c.Size())
		}
		if c.Rank() < 0 || c.Rank() >= 8 {
			return fmt.Errorf("Rank = %d", c.Rank())
		}
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("ran %d ranks", count.Load())
	}
}

func TestRunSizeValidation(t *testing.T) {
	if err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestRunErrorPropagation(t *testing.T) {
	sentinel := errors.New("rank 3 failed")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	// Phase counter: all ranks must finish phase 1 before any sees
	// phase 2 observations.
	var phase1 atomic.Int64
	err := Run(6, func(c *Comm) error {
		phase1.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		if got := phase1.Load(); got != 6 {
			return fmt.Errorf("rank %d saw phase1=%d after barrier", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReusable(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		for i := 0; i < 100; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		got, err := AllGather(c, c.Rank()*10)
		if err != nil {
			return err
		}
		for i, v := range got {
			if v != i*10 {
				return fmt.Errorf("rank %d: got[%d] = %d", c.Rank(), i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherRepeated(t *testing.T) {
	// Slot reuse across rounds must not corrupt earlier reads.
	err := Run(4, func(c *Comm) error {
		for round := 0; round < 50; round++ {
			got, err := AllGather(c, c.Rank()+round*100)
			if err != nil {
				return err
			}
			for i, v := range got {
				if v != i+round*100 {
					return fmt.Errorf("round %d rank %d: got[%d] = %d", round, c.Rank(), i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherRootOnly(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		got, err := Gather(c, 2, fmt.Sprintf("r%d", c.Rank()))
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			if len(got) != 4 || got[0] != "r0" || got[3] != "r3" {
				return fmt.Errorf("root got %v", got)
			}
		} else if got != nil {
			return fmt.Errorf("non-root rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherBadRoot(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		_, err := Gather(c, 5, 0)
		if err == nil {
			return errors.New("bad root accepted")
		}
		// Re-sync so both ranks exit cleanly.
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	err := Run(8, func(c *Comm) error {
		sum, err := AllReduce(c, c.Rank()+1, func(a, b int) int { return a + b })
		if err != nil {
			return err
		}
		if sum != 36 {
			return fmt.Errorf("sum = %d", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceBitmapOr(t *testing.T) {
	// The multi-variable query pattern: each rank sets its own bits,
	// all ranks end with the union.
	err := Run(4, func(c *Comm) error {
		bm := bitmap.New(100)
		bm.Set(int64(c.Rank() * 10))
		union, err := AllReduce(c, bm, func(a, b *bitmap.Bitmap) *bitmap.Bitmap {
			out := a.Clone()
			out.Or(b)
			return out
		})
		if err != nil {
			return err
		}
		if union.Count() != 4 {
			return fmt.Errorf("union count = %d", union.Count())
		}
		for r := 0; r < 4; r++ {
			if !union.Get(int64(r * 10)) {
				return fmt.Errorf("bit %d missing", r*10)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicConvertsToError(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Other ranks block in a collective; the abort must release
		// them instead of deadlocking.
		return c.Barrier()
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("peers did not observe abort: %v", err)
	}
}

func TestSingleRankCollectives(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		got, err := AllGather(c, 42)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != 42 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedTypesInAllGather(t *testing.T) {
	// Ranks depositing different concrete types is a programming error
	// that must surface, not panic.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := AllGather[any](c, 1)
			if err != nil {
				return err
			}
			return nil
		}
		_, err := AllGather[any](c, "x")
		return err
	})
	// With the any instantiation both succeed; this documents that the
	// type check is per-instantiation.
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBarrier8(b *testing.B) {
	b.ReportAllocs()
	err := Run(8, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllGather8(b *testing.B) {
	b.ReportAllocs()
	err := Run(8, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if _, err := AllGather(c, c.Rank()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// TestRunContention8Ranks hammers every collective from 8 concurrent
// ranks with deliberately skewed arrival times. It is the regression
// net for the shared errs and slot slices inside Run and AllGather:
// run under the race detector (`make race`, or
// `go test -race ./internal/mpi`) it fails on any unsynchronized
// access the scheduler can surface.
func TestRunContention8Ranks(t *testing.T) {
	const (
		ranks  = 8
		rounds = 200
	)
	err := Run(ranks, func(c *Comm) error {
		for round := 0; round < rounds; round++ {
			// Jitter arrival order so ranks hit the collectives from
			// different scheduling states each round.
			for i := 0; i < (c.Rank()*7+round)%13; i++ {
				runtime.Gosched()
			}
			vals, err := AllGather(c, c.Rank()*rounds+round)
			if err != nil {
				return err
			}
			for r, v := range vals {
				if want := r*rounds + round; v != want {
					return fmt.Errorf("round %d: slot %d = %d, want %d", round, r, v, want)
				}
			}
			total, err := AllReduce(c, 1, func(a, b int) int { return a + b })
			if err != nil {
				return err
			}
			if total != ranks {
				return fmt.Errorf("round %d: AllReduce sum = %d, want %d", round, total, ranks)
			}
			root := round % ranks
			g, err := Gather(c, root, round)
			if err != nil {
				return err
			}
			if c.Rank() == root {
				if len(g) != ranks {
					return fmt.Errorf("round %d: Gather returned %d values on root", round, len(g))
				}
			} else if g != nil {
				return fmt.Errorf("round %d: Gather returned values on non-root %d", round, c.Rank())
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
