// Package mpi provides a goroutine-based SPMD runtime standing in for
// MPI in MLOC's parallel query engine (paper §III-D). Each "rank" is a
// goroutine executing the same body; the package supplies the
// bulk-synchronous collectives the paper's engine uses: barrier,
// gather, all-gather, and all-reduce (including the bitmap OR used for
// multi-variable query index synchronization).
//
// The runtime preserves the paper's decomposition and synchronization
// structure exactly; only the transport differs (shared memory instead
// of a network), which is irrelevant to the layout experiments because
// communication volume is tracked separately from the PFS cost model.
package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// Comm is one rank's handle onto the communicator, analogous to an MPI
// communicator plus the caller's rank. A Comm is only valid inside the
// body passed to Run and must not be shared across goroutines.
type Comm struct {
	rank  int
	world *world
}

type world struct {
	size int
	bar  *cyclicBarrier
	mu   sync.Mutex
	slot []any
}

// Run executes body on size concurrent ranks and waits for all of them.
// Errors from ranks are joined; a panic in any rank propagates after
// the others are released (panics are converted to errors to avoid
// deadlocking collectives).
func Run(size int, body func(c *Comm) error) error {
	if size < 1 {
		return fmt.Errorf("mpi: size must be >= 1, got %d", size)
	}
	w := &world{
		size: size,
		bar:  newCyclicBarrier(size),
		slot: make([]any, size),
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					// Release peers blocked on the barrier so Run can
					// return the error instead of deadlocking.
					w.bar.abort()
				}
			}()
			errs[rank] = body(&Comm{rank: rank, world: w})
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.world.size }

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error { return c.world.bar.await() }

// AllGather deposits each rank's value and returns the slice of all
// ranks' values, indexed by rank, on every rank.
func AllGather[T any](c *Comm, v T) ([]T, error) {
	c.world.mu.Lock()
	c.world.slot[c.rank] = v
	c.world.mu.Unlock()
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	out := make([]T, c.world.size)
	c.world.mu.Lock()
	for i := range out {
		val, ok := c.world.slot[i].(T)
		if !ok {
			c.world.mu.Unlock()
			return nil, fmt.Errorf("mpi: rank %d deposited %T, want %T", i, c.world.slot[i], out[i])
		}
		out[i] = val
	}
	c.world.mu.Unlock()
	// Second barrier: nobody reuses the slots for the next collective
	// until everyone has read this round.
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	return out, nil
}

// Gather returns all ranks' values on root (ordered by rank) and nil on
// the other ranks.
func Gather[T any](c *Comm, root int, v T) ([]T, error) {
	if root < 0 || root >= c.world.size {
		return nil, fmt.Errorf("mpi: root %d out of [0,%d)", root, c.world.size)
	}
	all, err := AllGather(c, v)
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	return all, nil
}

// AllReduce combines all ranks' values with fn (assumed associative and
// commutative) and returns the result on every rank.
func AllReduce[T any](c *Comm, v T, fn func(a, b T) T) (T, error) {
	all, err := AllGather(c, v)
	if err != nil {
		var zero T
		return zero, err
	}
	acc := all[0]
	for _, x := range all[1:] {
		acc = fn(acc, x)
	}
	return acc, nil
}

// cyclicBarrier is a reusable N-party barrier with abort support.
type cyclicBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     uint64
	aborted bool
}

func newCyclicBarrier(n int) *cyclicBarrier {
	b := &cyclicBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// ErrAborted reports that a peer rank panicked while others were inside
// a collective.
var ErrAborted = errors.New("mpi: collective aborted by peer failure")

func (b *cyclicBarrier) await() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return ErrAborted
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		return ErrAborted
	}
	return nil
}

func (b *cyclicBarrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
