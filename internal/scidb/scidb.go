// Package scidb implements the SciDB-style comparator: a chunked array
// store with overlap replication along chunk boundaries (Brown 2010;
// Soroush et al. 2011). Chunks are stored row-major-by-chunk in one
// array file; each chunk carries an overlap halo so window operations
// avoid neighbor reads, which inflates stored data over the raw size
// (the asterisked Table I row).
//
// Spatially-constrained queries read exactly the chunks intersecting
// the region. Value-constrained queries have no index to use and scan
// every chunk through the engine's tuple iterator; the iterator's
// per-cell overhead (modeled as a calibrated CPU cost, DESIGN.md §2)
// reproduces the paper's SciDB rows being far slower than even raw
// sequential scan.
package scidb

import (
	"encoding/binary"
	"fmt"
	"math"

	"mloc/internal/grid"
	"mloc/internal/mpi"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

// Config parameterizes the store.
type Config struct {
	// ChunkSize is the chunk extent per dimension.
	ChunkSize []int
	// Overlap is the halo width replicated on every chunk face.
	Overlap int
	// PerCellCPU is the engine's per-cell iterator cost in seconds,
	// charged while scanning chunk contents. The default (400 ns) is
	// calibrated so the 8 GB region-query row lands in the paper's
	// few-hundred-seconds regime.
	PerCellCPU float64
	// PerMatchCPU is the engine's per-result materialization cost in
	// seconds; it makes high-selectivity queries grow the way the
	// paper's SciDB rows do (206 s at 1% vs 677 s at 10%).
	PerMatchCPU float64
	// PerChunkCPU is the fixed per-chunk engine overhead in seconds.
	PerChunkCPU float64
}

// DefaultConfig mirrors the paper's setup: the same chunk sizes as
// MLOC, a one-cell overlap, and engine overheads calibrated to the
// paper's measurements.
func DefaultConfig(chunkSize []int) Config {
	return Config{
		ChunkSize:   chunkSize,
		Overlap:     1,
		PerCellCPU:  400e-9,
		PerMatchCPU: 4e-6,
		PerChunkCPU: 200e-6,
	}
}

// Store is a SciDB-style chunk store on the PFS.
type Store struct {
	fs     *pfs.Sim
	prefix string
	shape  grid.Shape
	cfg    Config
	chunks *grid.Chunking
	// offsets[i] is the byte offset of chunk i in the array file;
	// offsets[n] is the file size.
	offsets []int64
	// regions[i] is chunk i's stored region including overlap.
	regions []grid.Region
}

// Build chunkifies the variable with overlap replication and writes the
// array file, charging write time to clk.
func Build(fs *pfs.Sim, clk *pfs.Clock, prefix string, shape grid.Shape, data []float64, cfg Config) (*Store, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if int64(len(data)) != shape.Elems() {
		return nil, fmt.Errorf("scidb: %d values for shape %v", len(data), shape)
	}
	if cfg.Overlap < 0 {
		return nil, fmt.Errorf("scidb: negative overlap %d", cfg.Overlap)
	}
	chunks, err := grid.NewChunking(shape, cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	n := chunks.NumChunks()
	offsets := make([]int64, n+1)
	regions := make([]grid.Region, n)
	var buf []byte
	for id := int64(0); id < n; id++ {
		offsets[id] = int64(len(buf))
		core := chunks.ChunkRegionByID(id)
		// Expand by the overlap halo, clipped to the domain.
		lo := make([]int, shape.Dims())
		hi := make([]int, shape.Dims())
		for d := range lo {
			lo[d] = core.Lo[d] - cfg.Overlap
			if lo[d] < 0 {
				lo[d] = 0
			}
			hi[d] = core.Hi[d] + cfg.Overlap
			if hi[d] > shape[d] {
				hi[d] = shape[d]
			}
		}
		stored := grid.Region{Lo: lo, Hi: hi}
		regions[id] = stored
		stored.Each(func(coords []int) {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(data[shape.Linear(coords)]))
			buf = append(buf, b[:]...)
		})
	}
	offsets[n] = int64(len(buf))
	if err := fs.WriteFile(clk, prefix+"/array", buf); err != nil {
		return nil, err
	}
	return &Store{
		fs: fs, prefix: prefix, shape: shape, cfg: cfg,
		chunks: chunks, offsets: offsets, regions: regions,
	}, nil
}

// StorageBytes returns the stored array size including overlap
// replication (Table I's SciDB row).
func (s *Store) StorageBytes() int64 { return s.offsets[len(s.offsets)-1] }

// Shape returns the grid shape.
func (s *Store) Shape() grid.Shape { return s.shape }

// OverlapFactor returns stored-bytes / raw-bytes, the replication
// overhead Table I footnotes.
func (s *Store) OverlapFactor() float64 {
	return float64(s.StorageBytes()) / float64(8*s.shape.Elems())
}

// Query executes a request over the given number of ranks.
func (s *Store) Query(req *query.Request, ranks int) (*query.Result, error) {
	if err := req.Validate(s.shape); err != nil {
		return nil, err
	}
	if ranks < 1 {
		return nil, fmt.Errorf("scidb: ranks %d < 1", ranks)
	}

	// Chunk set: SC-constrained reads touch intersecting chunks; any VC
	// without SC forces a full-array chunk scan.
	var ids []int64
	if req.SC != nil {
		ids = s.chunks.OverlappingChunks(*req.SC)
	} else {
		ids = make([]int64, s.chunks.NumChunks())
		for i := range ids {
			ids[i] = int64(i)
		}
	}

	type rankOut struct {
		matches []query.Match
		time    query.Components
		bytes   int64
		blocks  int
	}
	outs := make([]rankOut, ranks)
	clks := s.fs.NewClocks(ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		clk := clks[c.Rank()]
		if err := s.fs.Open(clk, s.prefix+"/array"); err != nil {
			return err
		}
		out := &outs[c.Rank()]
		coords := make([]int, s.shape.Dims())
		for i := c.Rank(); i < len(ids); i += c.Size() {
			id := ids[i]
			lo, hi := s.offsets[id], s.offsets[id+1]
			t0 := clk.Now()
			raw, err := s.fs.ReadAt(clk, s.prefix+"/array", lo, hi-lo)
			if err != nil {
				return err
			}
			out.time.IO += clk.Now() - t0
			out.bytes += hi - lo
			out.blocks++

			stored := s.regions[id]
			core := s.chunks.ChunkRegionByID(id)
			cells := stored.Elems()
			matchesBefore := len(out.matches)
			out.time.Reconstruct += clk.MeasureCPU(func() {
				j := -1
				stored.Each(func(cc []int) {
					j++
					// Skip halo cells: they belong to a neighbor's core.
					copy(coords, cc)
					if !core.Contains(coords) {
						return
					}
					v := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*j:]))
					if req.VC != nil && !req.VC.Contains(v) {
						return
					}
					if req.SC != nil && !req.SC.Contains(coords) {
						return
					}
					m := query.Match{Index: s.shape.Linear(coords)}
					if !req.IndexOnly {
						m.Value = v
					}
					out.matches = append(out.matches, m)
				})
			})
			// Engine iterator cost: per chunk + per cell + per result.
			engine := s.cfg.PerChunkCPU + float64(cells)*s.cfg.PerCellCPU +
				float64(len(out.matches)-matchesBefore)*s.cfg.PerMatchCPU
			out.time.Reconstruct += clk.AdvanceCPU(engine)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &query.Result{}
	var slowest float64
	for i := range outs {
		res.Matches = append(res.Matches, outs[i].matches...)
		res.BytesRead += outs[i].bytes
		res.BlocksRead += outs[i].blocks
		if t := outs[i].time.Total(); t >= slowest {
			slowest = t
			res.Time = outs[i].time
		}
	}
	res.Sort()
	return res, nil
}
