package scidb

import (
	"testing"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

func buildStore(t *testing.T, overlap int) (*Store, []float64, grid.Shape) {
	t.Helper()
	d := datagen.GTSLike(32, 32, 3)
	v, _ := d.Var("phi")
	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig([]int{8, 8})
	cfg.Overlap = overlap
	st, err := Build(fs, pfs.NewClock(), "scidb/phi", d.Shape, v.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, v.Data, d.Shape
}

func bruteForce(data []float64, shape grid.Shape, req *query.Request) []query.Match {
	var out []query.Match
	coords := make([]int, shape.Dims())
	for i, v := range data {
		if req.VC != nil && !req.VC.Contains(v) {
			continue
		}
		if req.SC != nil {
			coords = shape.Coords(int64(i), coords[:0])
			if !req.SC.Contains(coords) {
				continue
			}
		}
		m := query.Match{Index: int64(i)}
		if !req.IndexOnly {
			m.Value = v
		}
		out = append(out, m)
	}
	return out
}

func matchesEqual(t *testing.T, got, want []query.Match, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestBuildValidation(t *testing.T) {
	fs := pfs.New(pfs.DefaultConfig())
	if _, err := Build(fs, pfs.NewClock(), "x", grid.Shape{4, 4}, make([]float64, 3), DefaultConfig([]int{2, 2})); err == nil {
		t.Error("length mismatch accepted")
	}
	cfg := DefaultConfig([]int{2, 2})
	cfg.Overlap = -1
	if _, err := Build(fs, pfs.NewClock(), "x", grid.Shape{4, 4}, make([]float64, 16), cfg); err == nil {
		t.Error("negative overlap accepted")
	}
	if _, err := Build(fs, pfs.NewClock(), "x", grid.Shape{4, 4}, make([]float64, 16), DefaultConfig([]int{2})); err == nil {
		t.Error("chunk arity mismatch accepted")
	}
}

func TestOverlapInflatesStorage(t *testing.T) {
	noOverlap, _, shape := buildStore(t, 0)
	withOverlap, _, _ := buildStore(t, 1)
	raw := 8 * shape.Elems()
	if noOverlap.StorageBytes() != raw {
		t.Fatalf("overlap-0 storage %d != raw %d", noOverlap.StorageBytes(), raw)
	}
	if withOverlap.StorageBytes() <= raw {
		t.Fatalf("overlap-1 storage %d did not grow over raw %d", withOverlap.StorageBytes(), raw)
	}
	f := withOverlap.OverlapFactor()
	// Paper: SciDB stored 8.8 GB for 8 GB (1.1x).
	if f < 1.01 || f > 2 {
		t.Fatalf("overlap factor %v outside plausible range", f)
	}
}

func TestValueQueryMatchesBruteForce(t *testing.T) {
	for _, overlap := range []int{0, 1, 2} {
		st, data, shape := buildStore(t, overlap)
		sc, _ := grid.NewRegion([]int{5, 3}, []int{25, 29})
		req := &query.Request{SC: &sc}
		for _, ranks := range []int{1, 4} {
			res, err := st.Query(req, ranks)
			if err != nil {
				t.Fatal(err)
			}
			matchesEqual(t, res.Matches, bruteForce(data, shape, req), "SC query")
		}
	}
}

func TestRegionQueryMatchesBruteForce(t *testing.T) {
	st, data, shape := buildStore(t, 1)
	lo, hi := datagen.Selectivity(data, 0.05, 23, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	req := &query.Request{VC: &vc}
	res, err := st.Query(req, 4)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, res.Matches, bruteForce(data, shape, req), "VC query")
	if res.BlocksRead != 16 {
		t.Errorf("VC query scanned %d chunks, want all 16", res.BlocksRead)
	}
}

func TestSCQueryReadsOnlyTouchedChunks(t *testing.T) {
	st, _, _ := buildStore(t, 1)
	sc, _ := grid.NewRegion([]int{0, 0}, []int{8, 8}) // exactly chunk (0,0)
	res, err := st.Query(&query.Request{SC: &sc}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksRead != 1 {
		t.Fatalf("corner SC query read %d chunks, want 1", res.BlocksRead)
	}
}

func TestEnginePerCellCostCharged(t *testing.T) {
	// The modeled engine overhead must make full scans expensive in
	// virtual time even though the data is small.
	st, data, _ := buildStore(t, 1)
	lo, hi := datagen.Selectivity(data, 0.01, 29, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	res, err := st.Query(&query.Request{VC: &vc}, 1)
	if err != nil {
		t.Fatal(err)
	}
	minEngine := float64(32*32) * st.cfg.PerCellCPU
	if res.Time.Reconstruct < minEngine {
		t.Fatalf("engine CPU %v below per-cell floor %v", res.Time.Reconstruct, minEngine)
	}
}

func TestCombinedQuery(t *testing.T) {
	st, data, shape := buildStore(t, 1)
	lo, hi := datagen.Selectivity(data, 0.4, 31, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	sc, _ := grid.NewRegion([]int{10, 10}, []int{30, 30})
	req := &query.Request{VC: &vc, SC: &sc}
	res, err := st.Query(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, res.Matches, bruteForce(data, shape, req), "combined")
}

func TestQueryValidation(t *testing.T) {
	st, _, _ := buildStore(t, 1)
	if _, err := st.Query(&query.Request{}, 0); err == nil {
		t.Error("ranks=0 accepted")
	}
	bad := binning.ValueConstraint{Min: 1, Max: 0}
	if _, err := st.Query(&query.Request{VC: &bad}, 1); err == nil {
		t.Error("inverted VC accepted")
	}
}

func TestIndexOnly(t *testing.T) {
	st, data, shape := buildStore(t, 1)
	lo, hi := datagen.Selectivity(data, 0.1, 37, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	req := &query.Request{VC: &vc, IndexOnly: true}
	res, err := st.Query(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, res.Matches, bruteForce(data, shape, req), "index-only")
}
