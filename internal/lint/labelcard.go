package lint

import (
	"mloc/internal/lint/flow"
)

// LabelCard reports metric label values and metric names derived from
// untrusted input. Every distinct label value materializes a new time
// series in the obs registry (and in any scraping Prometheus), so an
// attacker-chosen label — a query variable name, a header, a peer
// node's JSON — is an unbounded-cardinality memory leak. Labels must
// come from a finite set: literals, config, or a vetted roster.
//
// The check shares the interprocedural taint summaries with taintflow
// and claims the metric-label sink kind: obs.L value arguments and the
// name argument of Registry.Counter/Gauge/Histogram and friends.
var LabelCard = &Analyzer{
	Name:       "labelcard",
	Doc:        "metric labels and names must come from a finite set, never from untrusted input",
	RunProgram: runLabelCard,
}

func runLabelCard(pass *ProgramPass) {
	for _, f := range pass.TaintFacts().Findings() {
		if f.Kind != flow.SinkLabel {
			continue
		}
		if f.Path != "" {
			pass.Reportf(f.Pos, "metric label or name %s derives from untrusted input (via %s); label cardinality must be finite", f.Expr, f.Path)
			continue
		}
		pass.Reportf(f.Pos, "metric label or name %s derives from untrusted input; label cardinality must be finite", f.Expr)
	}
}
