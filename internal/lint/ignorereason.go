package lint

import "strings"

// IgnoreReason requires every //mlocvet:ignore directive to justify
// itself: "//mlocvet:ignore <analyzer> -- <why>". A suppression
// without a reason is indistinguishable from a silenced bug six months
// later; the reason is the reviewable record of why the finding is
// acceptable. Bare directives still suppress (so adopting this check
// cannot un-suppress legacy code mid-flight) but are themselves
// reported — and an ignorereason finding can only be suppressed by a
// directive that carries a reason, so a bare directive cannot excuse
// itself.
var IgnoreReason = &Analyzer{
	Name: "ignorereason",
	Doc:  "every //mlocvet:ignore directive needs a '-- reason' tail explaining the suppression",
	Run:  runIgnoreReason,
}

func runIgnoreReason(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				e := parseIgnoreDirective(strings.TrimPrefix(c.Text, ignoreDirective))
				if len(e.names) == 0 {
					p.Reportf(c.Pos(), "mlocvet:ignore directive names no analyzer; write //mlocvet:ignore <analyzer> -- <reason>")
					continue
				}
				if !e.hasReason {
					p.Reportf(c.Pos(), "mlocvet:ignore %s has no reason; append ' -- <why this finding is acceptable>'", strings.Join(e.names, ","))
				}
			}
		}
	}
}
