package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ErrPrefix enforces the repository's error-string convention: every
// error constructed with fmt.Errorf or errors.New starts with the
// owning package's "<pkg>: " prefix, so a message surfacing at the top
// of a query or experiment run names the layer it came from. Helper
// errors that are always re-wrapped with the prefix by their callers
// may opt out with //mlocvet:ignore errprefix. Package main is exempt:
// commands print errors directly under their own program name.
var ErrPrefix = &Analyzer{
	Name: "errprefix",
	Doc:  `error strings must start with the owning package's "<pkg>: " prefix`,
	Run:  runErrPrefix,
}

func runErrPrefix(p *Pass) {
	if p.Pkg.Name == "main" {
		return
	}
	want := p.Pkg.Name + ": "
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPkgFunc(p.Pkg, call.Fun, "fmt", "Errorf") && !isPkgFunc(p.Pkg, call.Fun, "errors", "New") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if len(s) >= len(want) && s[:len(want)] == want {
				return true
			}
			p.Reportf(lit.Pos(), "error string %q does not start with %q", clip(s, 40), want)
			return true
		})
	}
}

// clip shortens s to at most n runes for diagnostics.
func clip(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n]) + "..."
}

// isPkgFunc reports whether fun is a selector pkg.name referring to
// the function name of the package imported under path pkgPath.
func isPkgFunc(pkg *Package, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}
