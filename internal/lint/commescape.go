package lint

import (
	"go/ast"
	"go/types"
)

// CommEscape keeps *mpi.Comm rank-local, as its documentation demands:
// a Comm is one rank's handle onto the communicator and is only valid
// inside the body passed to mpi.Run. Storing it in a struct field,
// sending it over a channel, or capturing it in a go statement lets a
// different goroutine drive another rank's collectives — the classic
// way to deadlock a barrier or corrupt an AllGather slot. The
// internal/mpi package itself is exempt: it owns the type.
var CommEscape = &Analyzer{
	Name: "commescape",
	Doc:  "*mpi.Comm must not be stored in struct fields, sent on channels, or captured by go statements",
	Run:  runCommEscape,
}

func runCommEscape(p *Pass) {
	if pathHasSuffix(p.Pkg.Path, "internal/mpi") {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					if containsComm(info.TypeOf(fld.Type)) {
						p.Reportf(fld.Pos(), "struct field stores *mpi.Comm; a Comm is rank-local and must stay inside its rank's mpi.Run body")
					}
				}
			case *ast.ChanType:
				if containsComm(info.TypeOf(n.Value)) {
					p.Reportf(n.Pos(), "channel of *mpi.Comm; a Comm is rank-local and must not cross goroutines")
				}
			case *ast.SendStmt:
				if containsComm(info.TypeOf(n.Value)) {
					p.Reportf(n.Arrow, "*mpi.Comm sent on a channel; a Comm is rank-local and must not cross goroutines")
				}
			case *ast.GoStmt:
				for _, arg := range n.Call.Args {
					if containsComm(info.TypeOf(arg)) {
						p.Reportf(arg.Pos(), "*mpi.Comm passed to a goroutine; a Comm is rank-local and must not cross goroutines")
					}
				}
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					reportCommCaptures(p, lit)
				}
			}
			return true
		})
	}
}

// reportCommCaptures flags identifiers inside a go-statement function
// literal that refer to Comm-typed objects declared outside it.
func reportCommCaptures(p *Pass, lit *ast.FuncLit) {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Pkg.Info.Uses[id]
		if obj == nil || seen[obj] || !containsComm(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the literal: rank-local again
		}
		seen[obj] = true
		p.Reportf(id.Pos(), "go statement captures *mpi.Comm %s; a Comm is rank-local and must not cross goroutines", id.Name)
		return true
	})
}

// containsComm reports whether t is, points to, or transitively
// contains (through slices, arrays, maps, channels, or pointers) the
// mpi.Comm type.
func containsComm(t types.Type) bool {
	for depth := 0; t != nil && depth < 16; depth++ {
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Comm" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/mpi") {
				return true
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		case *types.Map:
			if containsComm(u.Key()) {
				return true
			}
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}
