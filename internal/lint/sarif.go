package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// sarifLog is the minimal SARIF 2.1.0 shape GitHub code scanning
// ingests: one run, one tool, one rule per analyzer, one result per
// diagnostic. Only the fields mlocvet populates are declared.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. The rule table
// lists every analyzer that ran — including clean ones, so a SARIF
// consumer can tell "checked and clean" from "not checked".
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mlocvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
