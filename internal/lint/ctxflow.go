package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mloc/internal/lint/flow"
)

// CtxFlow enforces the cancellation-propagation contract on functions
// that hold a context.Context (their own parameter, or one captured
// from the enclosing function):
//
//   - no call may override the held context with context.Background()
//     or context.TODO() — detaching is an explicit, ignore-with-reason
//     decision, not a default;
//   - a call to a callee with a context-aware sibling (Query next to
//     QueryContext, Submit next to SubmitContext) must use the sibling
//     and forward the held context;
//   - a loop whose body performs simulated I/O (calls into
//     internal/pfs) must poll cancellation each iteration: check
//     ctx.Err(), receive from ctx.Done(), or forward the context to a
//     callee that does.
//
// Functions without a context in scope are exempt — that is what makes
// the Background()-filling convenience wrappers (Query over
// QueryContext) legal.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "held contexts must be forwarded: no Background() overrides, use Context-variant callees, poll cancellation in I/O loops",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxflowBody(p, fd.Body, ctxParams(p.Pkg.Info, fd.Type), fd.Name.Name)
		}
	}
}

// ctxParams collects the objects of a function type's context.Context
// parameters.
func ctxParams(info *types.Info, ft *ast.FuncType) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isCtxType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

// ctxflowBody walks one function body. Function literals inherit the
// enclosing context objects (a closure capturing ctx is still bound by
// the contract) unless they declare their own.
func ctxflowBody(p *Pass, body *ast.BlockStmt, ctxObjs map[types.Object]bool, fname string) {
	info := p.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctxParams(info, n.Type)
			if len(inner) == 0 {
				inner = ctxObjs
			}
			ctxflowBody(p, n.Body, inner, fname)
			return false
		case *ast.CallExpr:
			if len(ctxObjs) > 0 {
				checkCtxCall(p, n, fname)
			}
		case *ast.ForStmt:
			if len(ctxObjs) > 0 {
				checkCtxLoop(p, n.Pos(), n.Body, ctxObjs)
			}
		case *ast.RangeStmt:
			if len(ctxObjs) > 0 {
				checkCtxLoop(p, n.Pos(), n.Body, ctxObjs)
			}
		}
		return true
	})
}

// checkCtxCall applies the forwarding rules to one call made while a
// context is held.
func checkCtxCall(p *Pass, call *ast.CallExpr, fname string) {
	info := p.Pkg.Info
	for _, arg := range call.Args {
		if isBackgroundCall(info, arg) {
			p.Reportf(arg.Pos(), "%s holds a context but passes a fresh one here; forward the held ctx (or suppress with a reason to detach)", fname)
		}
	}
	callee := flow.CalleeOf(info, call)
	if callee == nil || signatureHasCtx(callee) {
		return
	}
	if sibling := ctxSibling(callee); sibling != nil {
		p.Reportf(call.Pos(), "%s holds a context but calls %s, which has the context-aware variant %s", fname, callee.Name(), sibling.Name())
	}
}

// isBackgroundCall matches context.Background() / context.TODO().
func isBackgroundCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := flow.CalleeOf(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// signatureHasCtx reports whether fn takes a context.Context parameter.
func signatureHasCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// ctxSibling finds fn's context-aware variant: a function or method
// named fn.Name()+"Context", in the same package (or on the same
// receiver type), that takes a context.Context.
func ctxSibling(fn *types.Func) *types.Func {
	if fn.Pkg() == nil {
		return nil
	}
	want := fn.Name() + "Context"
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		obj, _, _ := types.LookupFieldOrMethod(sig.Recv().Type(), true, fn.Pkg(), want)
		if m, ok := obj.(*types.Func); ok && signatureHasCtx(m) {
			return m
		}
		return nil
	}
	if m, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && signatureHasCtx(m) {
		return m
	}
	return nil
}

// checkCtxLoop flags loops that perform simulated I/O without polling
// the held context each iteration.
func checkCtxLoop(p *Pass, pos token.Pos, body *ast.BlockStmt, ctxObjs map[types.Object]bool) {
	info := p.Pkg.Info
	doesIO, polls := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := flow.CalleeOf(info, n); callee != nil && callee.Pkg() != nil &&
				pathHasSuffix(callee.Pkg().Path(), "internal/pfs") {
				doesIO = true
			}
			// Forwarding the context into the loop body counts as a
			// poll: the callee observes cancellation.
			for _, arg := range n.Args {
				if t := info.TypeOf(arg); t != nil && isCtxType(t) {
					polls = true
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Err" || sel.Sel.Name == "Done" || sel.Sel.Name == "Deadline") {
				if t := info.TypeOf(sel.X); t != nil && isCtxType(t) {
					polls = true
				}
			}
		}
		return true
	})
	if doesIO && !polls {
		p.Reportf(pos, "loop performs simulated I/O without polling cancellation; check ctx.Err() or forward ctx into the loop body")
	}
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
