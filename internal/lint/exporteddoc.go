package lint

import (
	"go/ast"
	"go/token"
)

// ExportedDoc requires doc comments on exported identifiers. The
// internal/ tree is this repository's API surface between subsystems —
// core talks to pfs, mpi, plod, compress through exported names — and
// an undocumented export is how convention drift starts. Package main
// is exempt (commands export nothing importable).
var ExportedDoc = &Analyzer{
	Name: "exporteddoc",
	Doc:  "exported identifiers need doc comments",
	Run:  runExportedDoc,
}

func runExportedDoc(p *Pass) {
	if p.Pkg.Name == "main" {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(p, d)
			case *ast.GenDecl:
				checkGenDoc(p, d)
			}
		}
	}
}

// checkFuncDoc flags exported functions and methods (on exported
// receivers) lacking a doc comment.
func checkFuncDoc(p *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	if d.Recv != nil {
		base := receiverBase(d.Recv)
		if base == "" || !token.IsExported(base) {
			return // method on an unexported type: not part of the API
		}
		kind = "method"
	}
	p.Reportf(d.Name.Pos(), "exported %s %s is missing a doc comment", kind, d.Name.Name)
}

// checkGenDoc flags exported types, consts, and vars lacking both a
// declaration-group doc and a per-spec doc.
func checkGenDoc(p *Pass, d *ast.GenDecl) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				p.Reportf(s.Name.Pos(), "exported type %s is missing a doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					p.Reportf(name.Pos(), "exported %s %s is missing a doc comment", kind, name.Name)
				}
			}
		}
	}
}

// receiverBase returns the receiver's base type name, or "" when it is
// not a plain (possibly pointered, possibly generic) named type.
func receiverBase(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if idx, ok := t.(*ast.IndexListExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
