package lint

import "go/ast"

// SPMDGoroutine forbids bare go statements outside the SPMD runtime.
// All parallelism in MLOC flows through internal/mpi (the rank
// runtime) or internal/stage (the staging workers); ad-hoc goroutines
// elsewhere bypass the barrier/collective discipline the query engine
// relies on and are where data races breed.
var SPMDGoroutine = &Analyzer{
	Name: "spmd-goroutine",
	Doc:  "bare go statements are forbidden outside internal/mpi and internal/stage",
	Run:  runSPMDGoroutine,
}

func runSPMDGoroutine(p *Pass) {
	if pathHasSuffix(p.Pkg.Path, "internal/mpi") || pathHasSuffix(p.Pkg.Path, "internal/stage") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "bare go statement outside the SPMD runtime; route parallelism through internal/mpi or internal/stage")
			}
			return true
		})
	}
}
