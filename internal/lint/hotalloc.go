package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotPkgs are the decode/layout hot paths where per-element work runs
// millions of times per query; an avoidable allocation inside their
// loops multiplies into GC pressure that shows up directly in the
// paper's retrieval-latency numbers.
var hotPkgs = []string{
	"internal/plod",
	"internal/compress",
	"internal/sfc",
	"internal/core",
	"internal/cache",
	"hotalloc", // golden-test fixture
}

// HotAlloc flags avoidable per-iteration allocations in the hot-path
// packages:
//
//   - an unconditional `x = make(...)` to a plain local whose size
//     arguments do not change across iterations (hoist the buffer out
//     of the loop and reuse it); makes stored into indexed or field
//     targets escape per iteration and are skipped;
//   - a func literal created inside a loop whose every captured
//     variable is loop-invariant — the closure is identical each
//     iteration, so one allocation outside the loop serves them all;
//   - an unconditional element append() growing a slice declared in
//     the same function with no capacity (the trip count bounds the
//     length; preallocate); spread appends (`buf...`) accumulate
//     unknown sizes and are skipped.
//
// Per-iteration allocations that are genuinely required opt out with
// //mlocvet:ignore hotalloc and a reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "hot-path loops must not allocate per iteration when the allocation is hoistable",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	hot := false
	for _, suffix := range hotPkgs {
		if pathHasSuffix(p.Pkg.Path, suffix) {
			hot = true
			break
		}
	}
	if !hot {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			h := &hotWalker{
				pass:     p,
				info:     p.Pkg.Info,
				noCap:    noCapSlices(p.Pkg.Info, fd.Body),
				reported: make(map[ast.Node]bool),
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch loop := n.(type) {
				case *ast.ForStmt:
					h.checkLoop(loop.Body, loopVars(p.Pkg.Info, loop.Init, nil, nil, loop.Body))
				case *ast.RangeStmt:
					h.checkLoop(loop.Body, loopVars(p.Pkg.Info, nil, loop.Key, loop.Value, loop.Body))
				}
				return true
			})
		}
	}
}

// hotWalker carries one function's analysis state.
type hotWalker struct {
	pass *Pass
	info *types.Info
	// noCap maps slice variables declared without capacity in this
	// function to their declaration position.
	noCap map[types.Object]token.Pos
	// reported dedups nodes seen by both an outer and an inner loop.
	reported map[ast.Node]bool
}

// loopVars collects the objects whose value changes across iterations:
// the loop's own variables plus everything assigned inside the body.
func loopVars(info *types.Info, init ast.Stmt, key, value ast.Expr, body *ast.BlockStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	if as, ok := init.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			add(lhs)
		}
	}
	add(key)
	add(value)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				add(lhs)
			}
		case *ast.ValueSpec:
			// var declarations inside the body are re-created each
			// iteration (and are out of scope outside the loop).
			for _, name := range n.Names {
				add(name)
			}
		case *ast.IncDecStmt:
			add(n.X)
		case *ast.UnaryExpr:
			// &x lets the callee mutate x.
			if n.Op == token.AND {
				add(n.X)
			}
		}
		return true
	})
	return vars
}

// checkLoop inspects one loop body for per-iteration allocations.
// Makes and appends are checked only along the unconditional statement
// chain — an allocation under an if is a deliberate lazy allocation —
// while the hoistable-closure check covers the whole body.
func (h *hotWalker) checkLoop(body *ast.BlockStmt, changing map[types.Object]bool) {
	h.checkUnconditional(body.List, changing)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		// Nested loops re-run checkLoop with their own (larger) changing
		// set; analyzing their bodies here would double-report.
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.FuncLit:
			h.checkFuncLit(n, changing)
			return false // closure bodies are a different iteration scope
		}
		return true
	})
}

// checkUnconditional walks statements that run on every iteration.
func (h *hotWalker) checkUnconditional(list []ast.Stmt, changing map[types.Object]bool) {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.BlockStmt:
			h.checkUnconditional(s.List, changing)
		case *ast.LabeledStmt:
			h.checkUnconditional([]ast.Stmt{s.Stmt}, changing)
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				h.checkAllocAssign(s.Lhs[i], call, changing)
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if i >= len(vs.Names) {
						break
					}
					if call, ok := ast.Unparen(v).(*ast.CallExpr); ok {
						h.checkAllocAssign(vs.Names[i], call, changing)
					}
				}
			}
		}
	}
}

// checkAllocAssign flags `x = make(...)` with loop-invariant size and
// `x = append(x, elem)` growth of a no-capacity slice.
func (h *hotWalker) checkAllocAssign(lhs ast.Expr, call *ast.CallExpr, changing map[types.Object]bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || h.reported[call] {
		return
	}
	if _, isBuiltin := h.info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	dst, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return // indexed or field target: the allocation escapes
	}
	switch id.Name {
	case "make":
		for _, arg := range call.Args[1:] {
			if dependsOn(h.info, arg, changing) {
				return
			}
		}
		h.reported[call] = true
		h.pass.Reportf(call.Pos(),
			"make with loop-invariant size reallocates %s every iteration; hoist the buffer out of the loop and reuse it",
			dst.Name)
	case "append":
		if len(call.Args) < 2 || call.Ellipsis.IsValid() {
			return // spread appends accumulate unknown sizes
		}
		arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || h.info.Uses[arg0] == nil || h.info.Uses[arg0] != h.info.Uses[dst] {
			return
		}
		if _, noCap := h.noCap[h.info.Uses[arg0]]; noCap {
			h.reported[call] = true
			h.pass.Reportf(call.Pos(),
				"append grows %s every iteration but it was declared without capacity; preallocate with make(..., 0, n)",
				dst.Name)
		}
	}
}

// checkFuncLit flags closures created per iteration whose captures are
// all loop-invariant — the closure could be allocated once outside.
func (h *hotWalker) checkFuncLit(fl *ast.FuncLit, changing map[types.Object]bool) {
	if h.reported[fl] {
		return
	}
	captured := ""
	hoistable := true
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if !hoistable {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := h.info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return true
		}
		// Package-level variables are reached through their address, not
		// captured; a closure over only globals is a static func value.
		if obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		// A use of a variable declared outside the literal is a capture.
		if obj.Pos() < fl.Pos() || obj.Pos() > fl.End() {
			if changing[obj] {
				hoistable = false // captures iteration state; a fresh closure is required
				return false
			}
			captured = obj.Name()
		}
		return true
	})
	if captured == "" || !hoistable {
		return
	}
	h.reported[fl] = true
	h.pass.Reportf(fl.Pos(),
		"func literal captures only loop-invariant %s; hoist the closure out of the loop to allocate it once",
		captured)
}

// dependsOn reports whether e mentions any object in vars.
func dependsOn(info *types.Info, e ast.Expr, vars map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && vars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// noCapSlices collects slice variables declared in body with no
// capacity — `var xs []T`, `xs := []T{}`, or `xs := make([]T, 0)` —
// excluding any that a later `xs = make(..., n, cap)` re-heads with an
// explicit capacity (the declare-empty, size-per-branch idiom).
func noCapSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	recapped := make(map[types.Object]bool)
	record := func(id *ast.Ident) {
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); ok {
			out[obj] = id.Pos()
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					record(name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := ast.Unparen(n.Rhs[i]).(type) {
				case *ast.CompositeLit:
					if n.Tok == token.DEFINE && len(rhs.Elts) == 0 {
						record(id)
					}
				case *ast.CallExpr:
					fn, ok := ast.Unparen(rhs.Fun).(*ast.Ident)
					if !ok || fn.Name != "make" {
						continue
					}
					switch {
					case n.Tok == token.DEFINE && len(rhs.Args) == 2:
						// make([]T, 0) with no capacity argument.
						if lit, ok := ast.Unparen(rhs.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
							record(id)
						}
					case len(rhs.Args) == 3:
						if obj := info.Uses[id]; obj != nil {
							recapped[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	for obj := range recapped {
		delete(out, obj)
	}
	return out
}
