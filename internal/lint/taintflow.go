package lint

import (
	"mloc/internal/lint/flow"
)

// TaintFlow reports untrusted values — HTTP request data, JSON decoded
// from peer node responses, varint-decoded wire bytes — reaching
// allocation sizes, slice bounds, indexes, loop bounds, or sleep
// durations without a dominating bounds check, across function calls.
//
// The check rides on internal/lint/flow's interprocedural taint
// summaries: a callee that bounds-checks before returning yields clean
// results (sanitizers compose through the call graph), while a callee
// whose parameter reaches a sink unguarded surfaces that sink at every
// tainted call site, with the call path in the message. Metric-label
// sinks are reported by the labelcard analyzer instead.
var TaintFlow = &Analyzer{
	Name:       "taintflow",
	Doc:        "untrusted values must not reach allocations, loop bounds, indexes, or timeouts without a bounds check",
	RunProgram: runTaintFlow,
}

func runTaintFlow(pass *ProgramPass) {
	for _, f := range pass.TaintFacts().Findings() {
		if f.Kind == flow.SinkLabel {
			continue // labelcard owns metric-label sinks
		}
		if f.Path != "" {
			pass.Reportf(f.Pos, "untrusted value %s reaches %s without a bounds check (via %s)", f.Expr, f.Kind, f.Path)
			continue
		}
		pass.Reportf(f.Pos, "untrusted value %s reaches %s without a bounds check", f.Expr, f.Kind)
	}
}
