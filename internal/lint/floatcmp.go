package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp forbids == and != on floating-point operands. Binning,
// B-spline fitting, and the ISABELA/ISOBAR codecs all compare
// reconstructed values, where exact equality silently turns a
// quantization wobble into a wrong bin or a dropped match; comparisons
// belong behind a tolerance (or math.Nextafter-style ULP logic).
// Intentional exact checks — unset-zero sentinels, bit-pattern
// round-trips — opt out with //mlocvet:ignore floatcmp. Test files are
// outside the suite's scope by construction.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "no == or != on floating-point operands outside _test.go files",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(p.Pkg.Info.TypeOf(be.X)) || isFloat(p.Pkg.Info.TypeOf(be.Y)) {
				p.Reportf(be.OpPos, "%s on floating-point operands; compare with a tolerance", be.Op)
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point
// basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
