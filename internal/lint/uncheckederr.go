package lint

import (
	"go/ast"
	"go/types"
)

// UncheckedErr forbids discarding error results, either by assigning
// them to the blank identifier or by calling an error-returning
// function as a bare statement. In this codebase a swallowed error
// usually means a query silently returns partial matches or an
// experiment table is built on a failed store.
//
// Pragmatic exemptions, mirroring errcheck's defaults: fmt.Print,
// fmt.Printf and fmt.Println (terminal output), fmt.Fprint* when the
// writer is os.Stdout, os.Stderr, a *bytes.Buffer, a
// *strings.Builder, or a *tabwriter.Writer, and methods on
// *bytes.Buffer and *strings.Builder — all of which are documented
// never to return a meaningful error. Anything else opts out with
// //mlocvet:ignore uncheckederr.
var UncheckedErr = &Analyzer{
	Name: "uncheckederr",
	Doc:  "error results must not be discarded via _ or a bare call statement",
	Run:  runUncheckedErr,
}

func runUncheckedErr(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok || !returnsError(p.Pkg.Info, call) || exemptCall(p.Pkg.Info, call) {
					return true
				}
				p.Reportf(call.Pos(), "result of %s includes an error that is discarded by the bare call", calleeName(call))
			case *ast.AssignStmt:
				checkAssignDiscard(p, n)
			}
			return true
		})
	}
}

// checkAssignDiscard flags blank-identifier positions that receive an
// error value.
func checkAssignDiscard(p *Pass, as *ast.AssignStmt) {
	info := p.Pkg.Info
	// Multi-value form: x, _ := f() with one call on the right.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || exemptCall(info, call) {
			return
		}
		tuple, ok := info.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				p.Reportf(lhs.Pos(), "error result of %s discarded via _", calleeName(call))
			}
		}
		return
	}
	// Pairwise form: _ = f(), possibly in a parallel assignment.
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) || !isBlank(lhs) {
			continue
		}
		rhs := as.Rhs[i]
		if !isErrorType(info.TypeOf(rhs)) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && exemptCall(info, call) {
			continue
		}
		p.Reportf(lhs.Pos(), "error value discarded via _")
	}
}

// returnsError reports whether any result of the call is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// exemptCall reports whether the call's error is conventionally
// ignorable (see the analyzer doc).
func exemptCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Method on an always-succeeding writer.
	if s := info.Selections[sel]; s != nil {
		return isSafeWriter(s.Recv())
	}
	// Package function: fmt print family.
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return false
	}
	switch sel.Sel.Name {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		return isStdStream(call.Args[0]) || isSafeWriter(info.TypeOf(call.Args[0]))
	}
	return false
}

// isStdStream reports whether e is syntactically os.Stdout or
// os.Stderr.
func isStdStream(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "os"
}

// isSafeWriter reports whether t is a writer whose Write methods never
// return a meaningful error.
func isSafeWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder", "text/tabwriter.Writer":
		return true
	}
	return false
}

// calleeName renders the called function for a diagnostic.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
