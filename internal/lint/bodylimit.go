package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"mloc/internal/lint/flow"
)

// BodyLimit reports network body reads that are not length-bounded. A
// peer — a data node answering the router, a server answering mlocctl,
// a client posting a query — controls how many bytes Body yields, so
// every json.NewDecoder(body), io.ReadAll(body), io.Copy(_, body), or
// helper call receiving a body must wrap it in io.LimitReader or
// http.MaxBytesReader first (the repository convention is 64 MiB for
// result payloads and 1 MiB for error envelopes and metadata — see
// internal/cluster/router/scatter.go).
//
// Two shapes count as bounded: wrapping inline at the read, and a
// reassignment `r.Body = http.MaxBytesReader(w, r.Body, n)` that
// dominates the read on every path (checked over the flow CFG).
// Close() is exempt — closing an unread body is how bodies are
// discarded.
var BodyLimit = &Analyzer{
	Name: "bodylimit",
	Doc:  "network body reads must be bounded by io.LimitReader or http.MaxBytesReader",
	Run:  runBodyLimit,
}

func runBodyLimit(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBodyLimit(pass, fd)
		}
	}
}

// bodyNodeLoc is a located CFG node: the statement that contains a
// wrap or a read, addressable for dominance queries.
type bodyNodeLoc struct {
	blk *flow.Block
	idx int
}

func checkBodyLimit(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	aliases := collectBodyAliases(info, fd.Body)

	// Wraps: r.Body = http.MaxBytesReader(...) / io.LimitReader(...),
	// keyed by the base object (r) they rebind.
	type wrap struct {
		base types.Object
		loc  bodyNodeLoc
		ok   bool
	}
	var (
		wraps []wrap
		g     *flow.Graph
		doms  map[*flow.Block]map[*flow.Block]bool
	)
	lazyGraph := func() *flow.Graph {
		if g == nil {
			g = flow.BuildCFG(fd.Body)
			doms = flow.Dominators(g)
		}
		return g
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		base, isBody := bodyExprBase(info, as.Lhs[0], aliases)
		if !isBody || base == nil {
			return true
		}
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isBoundingCall(info, call) {
			loc, found := locateNode(lazyGraph(), as)
			wraps = append(wraps, wrap{base: base, loc: loc, ok: found})
		}
		return true
	})

	dominatedByWrap := func(base types.Object, at ast.Node) bool {
		if base == nil || len(wraps) == 0 {
			return false
		}
		loc, found := locateNode(lazyGraph(), at)
		if !found {
			return false
		}
		for _, w := range wraps {
			if w.base != base || !w.ok {
				continue
			}
			if w.loc.blk == loc.blk {
				if w.loc.idx < loc.idx {
					return true
				}
				continue
			}
			if doms[loc.blk][w.loc.blk] {
				return true
			}
		}
		return false
	}

	// Reads: a body expression passed as an argument to any call other
	// than the bounding wrappers themselves.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBoundingCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			base, isBody := bodyExprBase(info, arg, aliases)
			if !isBody {
				continue
			}
			if dominatedByWrap(base, call) {
				continue
			}
			pass.Reportf(arg.Pos(), "unbounded read of %s; wrap it in io.LimitReader or http.MaxBytesReader", renderExpr(pass.Pkg, arg))
		}
		return true
	})
}

// collectBodyAliases finds `body := resp.Body` bindings so the alias
// identifier counts as a body expression at its uses.
func collectBodyAliases(info *types.Info, body *ast.BlockStmt) map[types.Object]types.Object {
	aliases := make(map[types.Object]types.Object)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			base, isBody := bodyExprBase(info, rhs, nil)
			if !isBody {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				aliases[obj] = base
			}
		}
		return true
	})
	return aliases
}

// bodyExprBase reports whether e reads an http body — a `x.Body`
// selector on an http.Request/Response, or an alias bound from one —
// and returns the base object (the request/response variable) when it
// is a simple identifier.
func bodyExprBase(info *types.Info, e ast.Expr, aliases map[types.Object]types.Object) (types.Object, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if e.Sel.Name != "Body" {
			return nil, false
		}
		tv, ok := info.Types[e.X]
		if !ok || tv.Type == nil {
			return nil, false
		}
		switch namedTypeName(tv.Type) {
		case "net/http.Request", "net/http.Response":
		default:
			return nil, false
		}
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return info.Uses[id], true
		}
		return nil, true
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			if base, ok := aliases[obj]; ok {
				return base, true
			}
		}
	}
	return nil, false
}

// isBoundingCall reports whether call is io.LimitReader or
// http.MaxBytesReader — the two sanctioned bounding wrappers.
func isBoundingCall(info *types.Info, call *ast.CallExpr) bool {
	callee := flow.CalleeOf(info, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() + "." + callee.Name() {
	case "io.LimitReader", "net/http.MaxBytesReader":
		return true
	}
	return false
}

// namedTypeName renders a (possibly pointer) named type as
// pkgpath.Name, or "".
func namedTypeName(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// locateNode finds the CFG node containing n's position.
func locateNode(g *flow.Graph, n ast.Node) (bodyNodeLoc, bool) {
	pos := n.Pos()
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			if node.Pos() <= pos && pos <= node.End() {
				return bodyNodeLoc{blk: b, idx: i}, true
			}
		}
	}
	return bodyNodeLoc{}, false
}

// renderExpr pretty-prints a short expression for diagnostics.
func renderExpr(pkg *Package, e ast.Expr) string {
	var sb strings.Builder
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			sb.WriteString(id.Name)
			sb.WriteString(".")
			sb.WriteString(e.Sel.Name)
			return sb.String()
		}
		return "…." + e.Sel.Name
	}
	return "body"
}
