package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WireSize tracks lengths and counts decoded from untrusted wire or
// file formats and flags their use as allocation sizes before a bounds
// check. Taint sources are the varint decoders this codebase funnels
// every length through — binary.Uvarint / binary.Varint / ReadUvarint
// / ReadVarint, any function or method whose name is (case-
// insensitively) "uvarint" or "varint", the byteReader string/length
// helpers — plus fields read from *Wire request structs. A tainted
// value that flows into make(), into a slice-header size, or through
// an int conversion or multiplication into either, can be attacker-
// sized: a corrupt stream declaring 2^60 values turns into a
// multi-exabyte allocation, an overflowed int, or a negative-size
// panic.
//
// A value is considered sanitized once it appears in a comparison
// (<, <=, >, >=) — the idiom here is rejecting counts that exceed the
// remaining payload before converting or allocating. Assigning a
// fresh value to the variable also clears its taint.
//
// The analysis is per function and flow-insensitive across calls: a
// length returned from a helper is only tainted if the helper matches
// a source pattern. That is exactly the decode-path shape of
// internal/compress, internal/core's meta/offsets unmarshalers, and
// internal/server's request decoding.
var WireSize = &Analyzer{
	Name: "wiresize",
	Doc:  "untrusted decoded lengths must be bounds-checked before sizing an allocation",
	Run:  runWireSize,
}

func runWireSize(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &wireWalker{pass: p, info: p.Pkg.Info, tainted: make(map[types.Object]bool)}
			w.walkStmts(fd.Body.List)
		}
	}
}

// wireWalker tracks tainted objects through one function body in
// source order.
type wireWalker struct {
	pass    *Pass
	info    *types.Info
	tainted map[types.Object]bool
}

// isTaintSourceCall reports whether a call returns untrusted decoded
// values (see the analyzer doc for the pattern list).
func (w *wireWalker) isTaintSourceCall(call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	switch strings.ToLower(name) {
	case "uvarint", "varint", "readuvarint", "readvarint", "uvarintmax":
		return true
	}
	return false
}

// isWireField reports whether e reads a field of a *Wire struct (the
// server's untrusted request shapes).
func (w *wireWalker) isWireField(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := w.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && strings.HasSuffix(named.Obj().Name(), "Wire")
}

// exprTainted reports whether evaluating e yields a tainted value:
// a tainted variable, arithmetic over one, a conversion of one, or a
// direct taint source.
func (w *wireWalker) exprTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return w.tainted[w.info.Uses[e]]
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.SHL:
			return w.exprTainted(e.X) || w.exprTainted(e.Y)
		}
		return false
	case *ast.CallExpr:
		if w.isTaintSourceCall(e) {
			return true
		}
		// Conversions propagate taint: int(count), int32(n), uint64(x).
		if len(e.Args) == 1 && w.isConversion(e) {
			return w.exprTainted(e.Args[0])
		}
		return false
	case *ast.SelectorExpr:
		return w.isWireField(e)
	case *ast.StarExpr:
		return w.exprTainted(e.X)
	}
	return false
}

// isConversion reports whether call is a type conversion.
func (w *wireWalker) isConversion(call *ast.CallExpr) bool {
	tv, ok := w.info.Types[call.Fun]
	return ok && tv.IsType()
}

// walkStmts processes statements in source order. Order matters: a
// bounds check sanitizes only subsequent uses.
func (w *wireWalker) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		w.walkStmt(s)
	}
}

func (w *wireWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.AssignStmt:
		w.checkExprs(s.Rhs)
		w.applyAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.checkExprs(vs.Values)
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							w.setTaint(w.info.Defs[name], w.exprTainted(vs.Values[i]))
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.checkExpr(s.X)
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.checkExpr(s.Cond)
		w.sanitizeCompared(s.Cond)
		w.walkStmt(s.Body)
		w.walkStmt(s.Else)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		if s.Cond != nil {
			w.checkExpr(s.Cond)
			w.sanitizeCompared(s.Cond)
		}
		w.walkStmt(s.Body)
		w.walkStmt(s.Post)
	case *ast.RangeStmt:
		w.checkExpr(s.X)
		w.walkStmt(s.Body)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		if s.Tag != nil {
			w.checkExpr(s.Tag)
		}
		w.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		w.walkStmt(s.Body)
	case *ast.CaseClause:
		w.checkExprs(s.List)
		w.walkStmts(s.Body)
	case *ast.SelectStmt:
		w.walkStmt(s.Body)
	case *ast.CommClause:
		w.walkStmt(s.Comm)
		w.walkStmts(s.Body)
	case *ast.ReturnStmt:
		w.checkExprs(s.Results)
	case *ast.SendStmt:
		w.checkExpr(s.Value)
	case *ast.DeferStmt:
		w.checkExpr(s.Call)
	case *ast.GoStmt:
		w.checkExpr(s.Call)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.IncDecStmt:
		w.checkExpr(s.X)
	}
}

// applyAssign updates taint for the assigned variables.
func (w *wireWalker) applyAssign(as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Multi-value: count, n, err := uvarint(data) taints only the
		// first result — the decoded value. The trailing results follow
		// the (value, bytesConsumed, error) convention and are bounded
		// by the input length by construction.
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		taint := ok && w.isTaintSourceCall(call)
		for i, lhs := range as.Lhs {
			if obj := w.lhsObject(lhs); obj != nil && !isErrorType(obj.Type()) {
				w.setTaint(obj, taint && i == 0)
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		obj := w.lhsObject(lhs)
		if obj == nil {
			continue
		}
		if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN || as.Tok == token.MUL_ASSIGN {
			if w.exprTainted(as.Rhs[i]) {
				w.setTaint(obj, true)
			}
			continue
		}
		w.setTaint(obj, w.exprTainted(as.Rhs[i]))
	}
}

// lhsObject resolves an assignment target to its variable object.
func (w *wireWalker) lhsObject(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := w.info.Defs[id]; obj != nil {
		return obj
	}
	return w.info.Uses[id]
}

func (w *wireWalker) setTaint(obj types.Object, tainted bool) {
	if obj == nil {
		return
	}
	if tainted {
		w.tainted[obj] = true
	} else {
		delete(w.tainted, obj)
	}
}

// sanitizeCompared clears taint from variables that appear in ordered
// comparisons within cond — the bounds-check idiom.
func (w *wireWalker) sanitizeCompared(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			w.sanitizeExpr(be.X)
			w.sanitizeExpr(be.Y)
		}
		return true
	})
}

// sanitizeExpr clears taint from every variable mentioned in e.
func (w *wireWalker) sanitizeExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			w.setTaint(w.info.Uses[id], false)
		}
		return true
	})
}

// checkExprs applies checkExpr to each expression.
func (w *wireWalker) checkExprs(list []ast.Expr) {
	for _, e := range list {
		w.checkExpr(e)
	}
}

// checkExpr reports tainted values reaching allocation sizes: make()
// arguments, slice-expression bounds, and the tainted operands of the
// int conversions / multiplications feeding them.
func (w *wireWalker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := w.info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range n.Args[1:] {
						if w.exprTainted(arg) {
							w.pass.Reportf(arg.Pos(),
								"make size %s derives from an untrusted decoded length; bounds-check it first",
								render(arg))
						}
					}
				}
			}
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{n.Low, n.High, n.Max} {
				if b != nil && w.exprTainted(b) {
					w.pass.Reportf(b.Pos(),
						"slice bound %s derives from an untrusted decoded length; bounds-check it first",
						render(b))
				}
			}
		}
		return true
	})
}

// render prints a compact expression for diagnostics.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) == 1 {
			return id.Name + "(" + render(e.Args[0]) + ")"
		}
	case *ast.BinaryExpr:
		return render(e.X) + " " + e.Op.String() + " " + render(e.Y)
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.StarExpr:
		return "*" + render(e.X)
	}
	return "expression"
}
