package lint

import (
	"go/ast"
	"sort"
	"strings"

	"mloc/internal/lint/flow"
)

// LockOrder builds the program-wide mutex acquisition-order graph and
// reports cycles. A node is a lock class (a sync.Mutex / sync.RWMutex
// field or variable); an edge A→B is recorded when B is acquired —
// directly, or anywhere inside a called function — while A is held.
// A cycle means two executions can acquire the same classes in
// opposite orders, the classic ABBA deadlock; in this codebase the
// cache shards, the admission queue, the stage cond's mutex, and the
// barrier mutex all sit on concurrent query paths where such a cycle
// would hang the daemon.
//
// An A→A self-edge is reported too: sync mutexes are not reentrant,
// so re-acquiring a held class either deadlocks outright (same
// instance) or establishes an instance ordering the analyzer cannot
// see (two instances of one class, e.g. two shards) — both deserve a
// look, and the latter opts out with //mlocvet:ignore lockorder.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "mutex acquisition-order cycles (potential ABBA deadlocks) are forbidden",
	RunProgram: runLockOrder,
}

// lockEdge is one acquisition-order observation.
type lockEdge struct {
	from, to *flow.LockClass
	// site is the acquisition (or call) establishing the edge.
	site ast.Node
	// via names the called function for indirect acquisitions ("").
	via string
}

func runLockOrder(p *ProgramPass) {
	facts := p.LockFacts()
	edges := make(map[[2]*flow.LockClass]*lockEdge)
	record := func(from, to *flow.LockClass, site ast.Node, via string) {
		k := [2]*flow.LockClass{from, to}
		if _, ok := edges[k]; !ok {
			edges[k] = &lockEdge{from: from, to: to, site: site, via: via}
		}
	}
	for _, fi := range p.Flow.Funcs {
		info := fi.Pkg.Info
		facts.WalkHeld(fi, func(n ast.Node, held []*flow.LockClass) {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(held) == 0 {
				return
			}
			if op := facts.LockOpOf(info, call); op != nil {
				if !op.Acquire {
					return
				}
				for _, h := range held {
					record(h, op.Class, call, "")
				}
				return
			}
			callee := flow.CalleeOf(info, call)
			if callee == nil {
				return
			}
			for to := range facts.Acquires(callee) {
				for _, h := range held {
					record(h, to, call, flow.QualifiedName(callee))
				}
			}
		})
	}

	// Cycle detection over the class graph: DFS with an on-stack set;
	// every back edge closes a cycle. Each cycle is reported once, at
	// the edge that closes it, with the full class chain.
	adj := make(map[*flow.LockClass][]*lockEdge)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	for from := range adj {
		sort.Slice(adj[from], func(i, j int) bool { return adj[from][i].to.Name < adj[from][j].to.Name })
	}
	starts := make([]*flow.LockClass, 0, len(adj))
	for c := range adj {
		starts = append(starts, c)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Name < starts[j].Name })

	reported := make(map[string]bool)
	var stack []*lockEdge
	onStack := make(map[*flow.LockClass]bool)
	done := make(map[*flow.LockClass]bool)
	var dfs func(c *flow.LockClass)
	dfs = func(c *flow.LockClass) {
		onStack[c] = true
		for _, e := range adj[c] {
			if onStack[e.to] {
				reportCycle(p, append(stack, e), e.to, reported)
				continue
			}
			if done[e.to] {
				continue
			}
			stack = append(stack, e)
			dfs(e.to)
			stack = stack[:len(stack)-1]
		}
		onStack[c] = false
		done[c] = true
	}
	for _, c := range starts {
		if !done[c] {
			dfs(c)
		}
	}
}

// reportCycle emits one diagnostic for the cycle closed at the last
// edge of path, whose target is head.
func reportCycle(p *ProgramPass, path []*lockEdge, head *flow.LockClass, reported map[string]bool) {
	// Trim the path to the cycle proper: drop lead-in edges before
	// head first appears as a source.
	start := 0
	for i, e := range path {
		if e.from == head {
			start = i
			break
		}
	}
	cycle := path[start:]
	names := make([]string, 0, len(cycle)+1)
	for _, e := range cycle {
		names = append(names, shortClass(e.from.Name))
	}
	names = append(names, shortClass(head.Name))
	// Canonical key: rotate so the lexically smallest class leads, so
	// one cycle reports once regardless of DFS entry point.
	key := canonicalCycle(names[:len(names)-1])
	if reported[key] {
		return
	}
	reported[key] = true
	closing := cycle[len(cycle)-1]
	msg := "lock acquisition cycle " + strings.Join(names, " -> ")
	if closing.via != "" {
		msg += " (via call to " + closing.via + ")"
	}
	msg += "; acquiring these mutexes in inconsistent order can deadlock"
	p.Reportf(closing.site.Pos(), "%s", msg)
}

// canonicalCycle keys a cycle independent of its rotation.
func canonicalCycle(names []string) string {
	best := ""
	for i := range names {
		rotated := append(append([]string(nil), names[i:]...), names[:i]...)
		s := strings.Join(rotated, "->")
		if best == "" || s < best {
			best = s
		}
	}
	return best
}

// shortClass trims the module path prefix from a class name for
// readable diagnostics.
func shortClass(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		return name[i+1:]
	}
	return name
}
