package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mloc/internal/lint/flow"
)

// racePkgs are the packages exercised under the race detector (the
// Makefile's RACE_PKGS) — the concurrent core where a field slipping
// between synchronization disciplines is a data race, not a style
// issue. The fixture suffix rides along for the golden tests.
var racePkgs = []string{
	"internal/mpi",
	"internal/core",
	"internal/stage",
	"internal/cache",
	"internal/server",
	"atomicmix", // golden-test fixture
}

// AtomicMix cross-references every struct-field access in the
// race-detector packages against its synchronization discipline and
// reports two mixes:
//
//   - a field updated through sync/atomic calls in one place and read
//     or written plainly in another — the plain access races with the
//     atomic one and the race detector only catches it when both sides
//     fire in the same run;
//   - a field accessed while holding lock class A in one function and
//     lock class B (with no overlap) in another — two mutexes guarding
//     one field guard nothing.
//
// Constructors (New*/new*), init, and *Locked helpers (the repo's
// caller-holds-the-mutex convention) are exempt: they run before
// publication or under the caller's lock. Fields of sync.* types and
// the typed atomics (atomic.Int64 etc.) are skipped — their API
// already enforces the discipline.
var AtomicMix = &Analyzer{
	Name:       "atomicmix",
	Doc:        "struct fields must keep one synchronization discipline: atomic, one mutex, or neither",
	RunProgram: runAtomicMix,
}

// atomicSite is one access observation.
type atomicSite struct {
	pos  token.Pos
	held []*flow.LockClass
}

// fieldAccess aggregates one field's observed accesses.
type fieldAccess struct {
	obj    types.Object
	atomic []atomicSite
	plain  []atomicSite
}

func runAtomicMix(p *ProgramPass) {
	facts := p.LockFacts()
	fields := make(map[types.Object]*fieldAccess)
	rec := func(obj types.Object) *fieldAccess {
		fa := fields[obj]
		if fa == nil {
			fa = &fieldAccess{obj: obj}
			fields[obj] = fa
		}
		return fa
	}
	for _, fi := range p.Flow.Funcs {
		if !raceGated(fi.Pkg.Path) || atomicExempt(fi.Obj.Name()) {
			continue
		}
		info := fi.Pkg.Info
		// Pre-pass: find the &x.f arguments of sync/atomic calls so the
		// held walk records them as atomic, not plain.
		consumed := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				if sel := addrOfField(info, arg); sel != nil {
					consumed[sel] = true
				}
			}
			return true
		})
		facts.WalkHeld(fi, func(n ast.Node, held []*flow.LockClass) {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isAtomicPkgCall(info, n) {
					return
				}
				for _, arg := range n.Args {
					if sel := addrOfField(info, arg); sel != nil {
						if obj := fieldObjOf(info, sel); obj != nil && raceGated(pkgPathOf(obj)) {
							rec(obj).atomic = append(rec(obj).atomic, atomicSite{pos: sel.Pos(), held: held})
						}
					}
				}
			case *ast.SelectorExpr:
				if consumed[n] {
					return
				}
				obj := fieldObjOf(info, n)
				if obj == nil || !raceGated(pkgPathOf(obj)) || syncDisciplined(obj.Type()) {
					return
				}
				rec(obj).plain = append(rec(obj).plain, atomicSite{pos: n.Pos(), held: held})
			}
		})
	}

	objs := make([]types.Object, 0, len(fields))
	for obj := range fields {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		fa := fields[obj]
		name := fieldDisplayName(obj)
		if len(fa.atomic) > 0 && len(fa.plain) > 0 {
			sortSites(fa.plain)
			sortSites(fa.atomic)
			p.Reportf(fa.plain[0].pos,
				"field %s is accessed atomically at %s but plainly here; use the atomic API for every access",
				name, p.fset.Position(fa.atomic[0].pos))
			continue
		}
		if site, other := guardConflict(fa.plain); site != nil {
			p.Reportf(site.pos,
				"field %s is accessed holding %s here but holding %s at %s; one field, one guard",
				name, heldNames(site.held), heldNames(other.held), p.fset.Position(other.pos))
		}
	}
}

// guardConflict finds the first pair of sites whose held sets are both
// non-empty yet disjoint — two different mutexes "guarding" the field.
func guardConflict(sites []atomicSite) (*atomicSite, *atomicSite) {
	sortSites(sites)
	for i := range sites {
		if len(sites[i].held) == 0 {
			continue
		}
		for j := range sites[:i] {
			if len(sites[j].held) == 0 {
				continue
			}
			if !classesOverlap(sites[i].held, sites[j].held) {
				return &sites[i], &sites[j]
			}
		}
	}
	return nil, nil
}

func classesOverlap(a, b []*flow.LockClass) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func sortSites(sites []atomicSite) {
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
}

// heldNames renders a held set for diagnostics.
func heldNames(held []*flow.LockClass) string {
	names := make([]string, len(held))
	for i, c := range held {
		names[i] = shortClass(c.Name)
	}
	return strings.Join(names, "+")
}

// raceGated reports whether the import path is in the race-detector
// package set.
func raceGated(path string) bool {
	for _, suffix := range racePkgs {
		if pathHasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// atomicExempt reports whether a function is outside the discipline
// check: constructors and init run before the value is shared, and
// *Locked helpers run under the caller's mutex by convention.
func atomicExempt(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasSuffix(name, "Locked") || name == "init"
}

// isAtomicPkgCall reports whether call invokes a sync/atomic function.
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// addrOfField unwraps &x.f and returns the selector, or nil.
func addrOfField(info *types.Info, arg ast.Expr) *ast.SelectorExpr {
	ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if fieldObjOf(info, sel) == nil {
		return nil
	}
	return sel
}

// fieldObjOf resolves a selector to the struct field it reads, or nil.
func fieldObjOf(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// pkgPathOf returns the object's package path ("" for none).
func pkgPathOf(obj types.Object) string {
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// syncDisciplined reports whether a field's type already enforces its
// own synchronization: the sync primitives and the typed atomics.
func syncDisciplined(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

// fieldDisplayName renders pkg.Type.field for diagnostics.
func fieldDisplayName(obj types.Object) string {
	if owner := fieldOwnerName(obj); owner != "" {
		return shortClass(pkgPathOf(obj)+"."+owner) + "." + obj.Name()
	}
	return shortClass(pkgPathOf(obj) + "." + obj.Name())
}

// fieldOwnerName finds the struct type declaring a field by scanning
// the declaring package's scope (the type checker keeps no back link).
func fieldOwnerName(obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() || obj.Pkg() == nil {
		return ""
	}
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == obj {
				return tn.Name()
			}
		}
	}
	return ""
}
