package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// sharedConst is one registry entry: a magic value that the repository
// defines exactly once as a named constant.
type sharedConst struct {
	// value is the literal's numeric value.
	value uint64
	// hexOnly restricts matching to hexadecimal spellings, so decimal
	// loop bounds that happen to share the value stay quiet.
	hexOnly bool
	// noMask skips occurrences used as bitwise-operator operands:
	// 0x7F as a varint continuation mask is not the PLoD fill byte.
	noMask bool
	// context, when non-empty, requires a nearby identifier (the other
	// comparison operand or the assignment target) whose lowercase name
	// contains this substring.
	context string
	// canonical is the import-path suffix of the package that declares
	// the constant; occurrences inside it are the definition, not a
	// duplicate.
	canonical string
	// constName is the named constant a duplicate should reference.
	constName string
}

// sharedConsts is the registry of magic values with a single canonical
// home. When one of these literals reappears elsewhere it silently
// re-encodes a format decision — the PLoD fill bytes, the level split,
// the metadata magic — that must change in exactly one place.
// The registry restates each value by necessity, so each entry
// suppresses its own finding.
var sharedConsts = []sharedConst{
	{value: 0x7F, hexOnly: true, noMask: true, canonical: "internal/plod", constName: "plod.FillByteFirst"}, //mlocvet:ignore constshare -- the analyzer's own table must spell the literal
	{value: 0xFF, hexOnly: true, noMask: true, canonical: "internal/plod", constName: "plod.FillByteRest"},  //mlocvet:ignore constshare -- the analyzer's own table must spell the literal
	{value: 0x4d4c4f43, canonical: "internal/core", constName: "core's metaMagic"},                          //mlocvet:ignore constshare -- the analyzer's own table must spell the literal
	{value: 7, context: "level", canonical: "internal/plod", constName: "plod.MaxLevel"},
	{value: 7, context: "plod", canonical: "internal/plod", constName: "plod.MaxLevel"},
}

// ConstShare flags integer literals that duplicate a registered shared
// constant outside its canonical package. See sharedConsts for the
// registry and the rationale.
var ConstShare = &Analyzer{
	Name: "constshare",
	Doc:  "magic literals with a canonical named constant must reference it, not restate it",
	Run:  runConstShare,
}

func runConstShare(p *Pass) {
	for _, f := range p.Pkg.Files {
		parents := make(map[ast.Node]ast.Node)
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.INT {
				checkLiteral(p, lit, parents)
			}
			return true
		})
	}
}

// checkLiteral matches one integer literal against the registry.
func checkLiteral(p *Pass, lit *ast.BasicLit, parents map[ast.Node]ast.Node) {
	v, err := strconv.ParseUint(lit.Value, 0, 64)
	if err != nil {
		return
	}
	hex := strings.HasPrefix(lit.Value, "0x") || strings.HasPrefix(lit.Value, "0X")
	for _, sc := range sharedConsts {
		if sc.value != v {
			continue
		}
		if sc.hexOnly && !hex {
			continue
		}
		if pathHasSuffix(p.Pkg.Path, sc.canonical) {
			continue // the definition site
		}
		if sc.noMask && inMaskContext(lit, parents) {
			continue
		}
		if sc.context != "" && !hasNameContext(lit, parents, sc.context) {
			continue
		}
		p.Reportf(lit.Pos(),
			"magic literal %s duplicates %s; reference the named constant",
			lit.Value, sc.constName)
		return
	}
}

// inMaskContext reports whether the literal is an operand of a bitwise
// operator (mask or shift), where sharing a value with a format
// constant is coincidence, not duplication.
func inMaskContext(lit *ast.BasicLit, parents map[ast.Node]ast.Node) bool {
	for n := parents[lit]; n != nil; n = parents[n] {
		switch p := n.(type) {
		case *ast.BinaryExpr:
			switch p.Op {
			case token.AND, token.OR, token.XOR, token.AND_NOT, token.SHL, token.SHR:
				return true
			}
			return false
		case *ast.UnaryExpr:
			return p.Op == token.XOR
		case *ast.ParenExpr, *ast.CallExpr:
			continue
		default:
			return false
		}
	}
	return false
}

// hasNameContext reports whether the literal sits in a comparison or
// assignment whose other side names something containing sub
// (case-insensitive) — how "7" is recognized as a PLoD level bound
// rather than an unrelated count.
func hasNameContext(lit *ast.BasicLit, parents map[ast.Node]ast.Node, sub string) bool {
	var prev ast.Node = lit
	for n := parents[lit]; n != nil; prev, n = n, parents[n] {
		switch p := n.(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			continue
		case *ast.BinaryExpr:
			switch p.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				other := p.X
				if other == prev {
					other = p.Y
				}
				return exprMentions(other, sub)
			}
			return false
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if exprMentions(lhs, sub) {
					return true
				}
			}
			return false
		case *ast.ValueSpec:
			for _, name := range p.Names {
				if strings.Contains(strings.ToLower(name.Name), sub) {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// exprMentions reports whether any identifier in e contains sub
// (case-insensitive).
func exprMentions(e ast.Expr, sub string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok &&
			strings.Contains(strings.ToLower(id.Name), sub) {
			found = true
		}
		return !found
	})
	return found
}
