package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// sharedLoader caches one loader (and thus one type-checked stdlib)
// across all golden tests.
var sharedLoader *Loader

func loader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// expectation is one "// want `regexp`" annotation in a fixture.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// parseWants scans a fixture package's sources for want annotations.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(filename)
		if err != nil {
			t.Fatalf("reading fixture %s: %v", filename, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", filename, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: filename, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// runGolden loads a fixture, runs one analyzer, and compares the
// diagnostics against the fixture's want annotations.
func runGolden(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkg, err := loader(t).Load(filepath.Join("testdata", "src", filepath.FromSlash(fixture)))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags := Run(pkg, []*Analyzer{a})
	wants := parseWants(t, pkg)
diag:
	for _, d := range diags {
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				continue diag
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

func TestAnalyzersGolden(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixture  string
	}{
		{SPMDGoroutine, "spmd"},
		{SPMDGoroutine, "internal/stage"}, // exemption: runtime packages may spawn goroutines
		{ErrPrefix, "errprefix"},
		{FloatCmp, "floatcmp"},
		{CommEscape, "commescape"},
		{UncheckedErr, "uncheckederr"},
		{ExportedDoc, "exporteddoc"},
		{CtxFirst, "ctxfirst"},
		{LockOrder, "lockorder"},
		{WireSize, "wiresize"},
		{HotAlloc, "hotalloc"},
		{ConstShare, "constshare"},
		{AtomicMix, "atomicmix"},
		{GoLeak, "goleak"},
		{CtxFlow, "ctxflow"},
		{ClosePath, "closepath"},
		{ClockCharge, "clockcharge/internal/pfs"}, // scoped: analyzer only fires on internal/pfs, internal/core paths
		{IgnoreReason, "ignorereason"},
		{TaintFlow, "taintflow"},
		{BodyLimit, "bodylimit"},
		{LabelCard, "labelcard"},
	}
	for _, tc := range cases {
		name := tc.analyzer.Name + "/" + strings.ReplaceAll(tc.fixture, "/", "_")
		t.Run(name, func(t *testing.T) {
			runGolden(t, tc.analyzer, tc.fixture)
		})
	}
}

// TestGoldenTruePositives guards the acceptance criterion that every
// analyzer demonstrates at least one real diagnostic on its fixture.
func TestGoldenTruePositives(t *testing.T) {
	fixtures := map[string]string{
		SPMDGoroutine.Name: "spmd",
		ErrPrefix.Name:     "errprefix",
		FloatCmp.Name:      "floatcmp",
		CommEscape.Name:    "commescape",
		UncheckedErr.Name:  "uncheckederr",
		ExportedDoc.Name:   "exporteddoc",
		CtxFirst.Name:      "ctxfirst",
		LockOrder.Name:     "lockorder",
		WireSize.Name:      "wiresize",
		HotAlloc.Name:      "hotalloc",
		ConstShare.Name:    "constshare",
		AtomicMix.Name:     "atomicmix",
		GoLeak.Name:        "goleak",
		CtxFlow.Name:       "ctxflow",
		ClosePath.Name:     "closepath",
		ClockCharge.Name:   "clockcharge/internal/pfs",
		IgnoreReason.Name:  "ignorereason",
		TaintFlow.Name:     "taintflow",
		BodyLimit.Name:     "bodylimit",
		LabelCard.Name:     "labelcard",
	}
	if len(fixtures) != len(All()) {
		t.Fatalf("fixture map covers %d analyzers, suite has %d", len(fixtures), len(All()))
	}
	for _, a := range All() {
		pkg, err := loader(t).Load(filepath.Join("testdata", "src", fixtures[a.Name]))
		if err != nil {
			t.Fatalf("loading fixture for %s: %v", a.Name, err)
		}
		if diags := Run(pkg, []*Analyzer{a}); len(diags) == 0 {
			t.Errorf("analyzer %s produced no diagnostics on its fixture", a.Name)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x/y.go", Line: 12, Column: 3},
		Analyzer: "floatcmp",
		Message:  "== on floating-point operands",
	}
	got := d.String()
	want := "x/y.go:12: floatcmp: == on floating-point operands"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	re := regexp.MustCompile(`^(.+\.go):(\d+): ([a-z-]+): (.+)$`)
	if !re.MatchString(got) {
		t.Errorf("diagnostic %q does not match the documented file:line: analyzer: message format", got)
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the suite analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Errorf("ByName(nope) = non-nil")
	}
}

func TestExpandSkipsTestdata(t *testing.T) {
	dirs, err := loader(t).Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	found := false
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand included testdata dir %s", d)
		}
		if filepath.Clean(d) == "." {
			found = true
		}
	}
	if !found {
		t.Fatalf("Expand(./...) from the lint dir did not include the lint package itself: %v", dirs)
	}
}

// TestSuiteCleanOnSelf runs the full suite over this package: the lint
// implementation must satisfy its own conventions.
func TestSuiteCleanOnSelf(t *testing.T) {
	pkg, err := loader(t).Load(".")
	if err != nil {
		t.Fatalf("loading internal/lint: %v", err)
	}
	for _, d := range Run(pkg, All()) {
		t.Errorf("self-check: %s", d)
	}
}

// TestIgnoreDirectiveOnPrecedingLine verifies that a directive on its
// own line suppresses a finding on the next line.
func TestIgnoreDirectiveOnPrecedingLine(t *testing.T) {
	pkg, err := loader(t).Load(filepath.Join("testdata", "src", "errprefix"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, d := range Run(pkg, []*Analyzer{ErrPrefix}) {
		if strings.Contains(d.Message, "wrapped later") {
			t.Errorf("preceding-line ignore directive did not suppress: %s", d)
		}
	}
}

func ExampleDiagnostic_String() {
	d := Diagnostic{
		Pos:      token.Position{Filename: "internal/core/engine.go", Line: 42},
		Analyzer: "uncheckederr",
		Message:  "error value discarded via _",
	}
	fmt.Println(d)
	// Output: internal/core/engine.go:42: uncheckederr: error value discarded via _
}
