package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mloc/internal/lint/flow"
)

// ClockCharge enforces the virtual-clock accounting invariant in the
// simulation core (internal/pfs, internal/core): any code path that
// records simulated I/O in a Stats struct (Reads, Opens, BytesRead,
// BytesWritten) must also charge the Clock before returning — via
// advanceTo, AdvanceBy, AdvanceCPU, AdvanceParallel, MeasureCPU, or
// SyncMax, directly or through a callee that always charges. Mutating
// stats without advancing the clock makes simulated time drift from
// the recorded work, which silently skews every layout comparison the
// simulator produces.
//
// Seeks and OSTBusy are deliberately outside the trigger set: the
// charge helper increments them while its callers advance the clock.
var ClockCharge = &Analyzer{
	Name:       "clockcharge",
	Doc:        "simulated I/O recorded in Stats must charge the Clock on every path before returning (internal/pfs, internal/core)",
	RunProgram: runClockCharge,
}

// clockChargeEvent is the single solver event: any clock-advancing
// call produces it.
const clockChargeEvent = "charge"

// clockStatsFields are the Stats fields whose mutation demands a
// clock charge on the same path.
var clockStatsFields = map[string]bool{
	"Reads":        true,
	"Opens":        true,
	"BytesRead":    true,
	"BytesWritten": true,
}

// clockChargeMethods are the Clock methods that advance simulated time.
var clockChargeMethods = map[string]bool{
	"advanceTo":       true,
	"AdvanceBy":       true,
	"AdvanceCPU":      true,
	"AdvanceParallel": true,
	"MeasureCPU":      true,
	"SyncMax":         true,
}

func runClockCharge(p *ProgramPass) {
	summaries := make(map[*types.Func]int) // 0 unknown, 1 charges, 2 not
	for _, pkg := range p.Pkgs {
		if !pathHasSuffix(pkg.Path, "internal/pfs") && !pathHasSuffix(pkg.Path, "internal/core") {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				clockChargeBody(p, pkg.Info, fd.Body, summaries)
			}
		}
	}
}

// clockChargeBody checks every stats mutation in one function body;
// nested function literals run under their own control flow and get
// their own graph.
func clockChargeBody(p *ProgramPass, info *types.Info, body *ast.BlockStmt, summaries map[*types.Func]int) {
	triggers := statsMutations(info, body)
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				clockChargeBody(p, info, fl.Body, summaries)
				return false
			}
			return true
		})
	}
	if len(triggers) == 0 {
		return
	}
	g := flow.BuildCFG(body)
	facts := flow.SolveMust(g, func(n ast.Node) []string {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return nil
		}
		if isClockCharge(info, call) || calleeCharges(p.Flow, info, call, summaries, 0) {
			return []string{clockChargeEvent}
		}
		return nil
	})
	for _, t := range triggers {
		if !facts.OnEveryPathFrom(t.node, clockChargeEvent) {
			p.Reportf(t.node.Pos(), "Stats.%s is mutated without charging the Clock on every path before return", t.field)
		}
	}
}

// statsMutation is one Stats field write that must be charged.
type statsMutation struct {
	node  ast.Node
	field string
}

// statsMutations finds ++/+= mutations of tracked Stats fields in
// body, skipping nested function literals.
func statsMutations(info *types.Info, body *ast.BlockStmt) []statsMutation {
	var out []statsMutation
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IncDecStmt:
			if f := trackedStatsField(info, n.X); f != "" && n.Tok == token.INC {
				out = append(out, statsMutation{node: n, field: f})
			}
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN {
				return true
			}
			for _, lhs := range n.Lhs {
				if f := trackedStatsField(info, lhs); f != "" {
					out = append(out, statsMutation{node: n, field: f})
				}
			}
		}
		return true
	})
	return out
}

// trackedStatsField matches expr against <stats>.<field> where field
// is in the trigger set and the base is a Stats struct.
func trackedStatsField(info *types.Info, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !clockStatsFields[sel.Sel.Name] {
		return ""
	}
	if !isNamedTypeName(info.TypeOf(sel.X), "Stats") {
		return ""
	}
	return sel.Sel.Name
}

// isClockCharge matches clock.<method>(...) for the charging methods
// on a type named Clock.
func isClockCharge(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !clockChargeMethods[sel.Sel.Name] {
		return false
	}
	return isNamedTypeName(info.TypeOf(sel.X), "Clock")
}

// calleeCharges consults the one-call-deep summary: a statically
// resolved callee whose body charges the clock on every path counts as
// a charge at the call site.
func calleeCharges(prog *flow.Program, info *types.Info, call *ast.CallExpr, summaries map[*types.Func]int, depth int) bool {
	if depth >= 2 {
		return false
	}
	callee := flow.CalleeOf(info, call)
	if callee == nil {
		return false
	}
	if v, ok := summaries[callee]; ok {
		return v == 1
	}
	fi := prog.Funcs[callee]
	if fi == nil || fi.Decl.Body == nil {
		return false
	}
	summaries[callee] = 2 // recursion guard: assume non-charging while computing
	g := flow.BuildCFG(fi.Decl.Body)
	cinfo := fi.Pkg.Info
	facts := flow.SolveMust(g, func(n ast.Node) []string {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return nil
		}
		if isClockCharge(cinfo, c) || calleeCharges(prog, cinfo, c, summaries, depth+1) {
			return []string{clockChargeEvent}
		}
		return nil
	})
	if facts.OnEveryPath(clockChargeEvent) {
		summaries[callee] = 1
		return true
	}
	return false
}

// isNamedTypeName reports whether t (after stripping pointers) is a
// named type with the given name, whatever its package.
func isNamedTypeName(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}
