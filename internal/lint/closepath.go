package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"mloc/internal/lint/flow"
)

// ClosePath verifies that acquired values are released on every path
// out of the acquiring function — error returns and panics included
// (a defer satisfies the requirement everywhere downstream of its
// registration). Three acquisition shapes are tracked:
//
//   - sync.Pool: a .Get() must be matched by .Put on the same pool on
//     every path, or the pooled object is silently dropped and the
//     pool refills from the heap;
//   - time.NewTimer / time.NewTicker assigned to a variable must be
//     .Stop()ped, or the runtime timer leaks;
//   - GetX/PutX constructor pairs (a package-level GetX whose package
//     also exports PutX) must be balanced by a PutX call.
//
// Acquisitions inside a return statement are exempt: ownership
// transfers to the caller (that is how GetX wrappers themselves are
// implemented).
var ClosePath = &Analyzer{
	Name: "closepath",
	Doc:  "pooled and constructed values need a release (Put/Stop) on every path, error returns and panics included",
	Run:  runClosePath,
}

// closeAcq is one tracked acquisition site and the event label that
// releases it.
type closeAcq struct {
	node  ast.Node
	event string
	what  string
}

func runClosePath(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					closePathBody(p, n.Body)
				}
				return false
			case *ast.FuncLit:
				closePathBody(p, n.Body)
				return false
			}
			return true
		})
	}
}

// closePathBody analyzes one function body. Nested literals are walked
// by the caller with their own graphs.
func closePathBody(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	ids := newObjIDs()
	acqs := collectAcquisitions(info, body, ids)
	// Recurse into nested literals regardless of whether this body
	// acquires anything.
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				closePathBody(p, fl.Body)
				return false
			}
			return true
		})
	}
	if len(acqs) == 0 {
		return
	}
	g := flow.BuildCFG(body)
	facts := flow.SolveMust(g, func(n ast.Node) []string {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return nil
		}
		return releaseEvents(info, call, ids)
	})
	for _, a := range acqs {
		if !facts.OnEveryPathFrom(a.node, a.event) {
			p.Reportf(a.node.Pos(), "%s is not released on every path; add the release (or defer it) on error paths too", a.what)
		}
	}
}

// collectAcquisitions finds the tracked acquisition sites in body,
// skipping nested function literals and return statements (ownership
// escapes to the caller there).
func collectAcquisitions(info *types.Info, body *ast.BlockStmt, ids *objIDs) []closeAcq {
	var acqs []closeAcq
	returnDepth := 0
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				returnDepth++
				for _, r := range n.Results {
					walk(r)
				}
				returnDepth--
				return false
			case *ast.AssignStmt:
				// Timer/ticker acquisitions need the assigned variable
				// to know what .Stop() must be called on.
				if returnDepth == 0 && len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if kind := timerCtor(info, rhs); kind != "" {
							if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
								if obj := info.ObjectOf(id); obj != nil {
									acqs = append(acqs, closeAcq{
										node:  rhs,
										event: "stop:" + ids.of(obj),
										what:  kind + " " + id.Name,
									})
								}
							}
						}
					}
				}
			case *ast.CallExpr:
				if returnDepth > 0 {
					return true
				}
				if obj := poolCallObj(info, n, "Get"); obj != nil {
					acqs = append(acqs, closeAcq{
						node:  n,
						event: "pool:" + ids.of(obj),
						what:  "sync.Pool Get on " + obj.Name(),
					})
				}
				if put := ctorPair(info, n); put != nil {
					acqs = append(acqs, closeAcq{
						node:  n,
						event: "ctor:" + ids.of(put),
						what:  calleeName(n) + " result",
					})
				}
			}
			return true
		})
	}
	walk(body)
	return acqs
}

// releaseEvents classifies one call as the release events it provides.
func releaseEvents(info *types.Info, call *ast.CallExpr, ids *objIDs) []string {
	var evs []string
	if obj := poolCallObj(info, call, "Put"); obj != nil {
		evs = append(evs, "pool:"+ids.of(obj))
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
		if obj := flow.BaseObject(info, sel.X); obj != nil {
			evs = append(evs, "stop:"+ids.of(obj))
		}
	}
	if callee := flow.CalleeOf(info, call); callee != nil {
		if _, rest, ok := splitPrefixUpper(callee.Name(), "Put"); ok && rest != "" {
			evs = append(evs, "ctor:"+ids.of(callee))
		}
	}
	return evs
}

// poolCallObj matches pool.<method>() on a sync.Pool and resolves the
// pool expression to its declaring object so Get and Put pair up.
func poolCallObj(info *types.Info, call *ast.CallExpr, method string) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	if !isNamedType(info.TypeOf(sel.X), "sync", "Pool") {
		return nil
	}
	return flow.BaseObject(info, sel.X)
}

// timerCtor matches time.NewTimer / time.NewTicker calls and names the
// kind for diagnostics.
func timerCtor(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := flow.CalleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	switch fn.Name() {
	case "NewTimer":
		return "time.Timer"
	case "NewTicker":
		return "time.Ticker"
	}
	return ""
}

// ctorPair matches a call to a package-level GetX whose package also
// declares PutX taking at least one parameter, and returns the PutX
// object the release must resolve to.
func ctorPair(info *types.Info, call *ast.CallExpr) *types.Func {
	callee := flow.CalleeOf(info, call)
	if callee == nil || callee.Pkg() == nil {
		return nil
	}
	if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	_, rest, ok := splitPrefixUpper(callee.Name(), "Get")
	if !ok || rest == "" {
		return nil
	}
	put, ok := callee.Pkg().Scope().Lookup("Put" + rest).(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := put.Type().(*types.Signature); !ok || sig.Params().Len() == 0 {
		return nil
	}
	return put
}

// splitPrefixUpper splits name into prefix and the rest when the rest
// starts with an upper-case letter (GetSplitScratch → "SplitScratch";
// plain "Getter" does not match).
func splitPrefixUpper(name, prefix string) (string, string, bool) {
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return "", "", false
	}
	rest := name[len(prefix):]
	if rest[0] < 'A' || rest[0] > 'Z' {
		return "", "", false
	}
	return prefix, rest, true
}

// objIDs assigns stable string identities to types.Objects so event
// labels can be compared.
type objIDs struct {
	ids  map[types.Object]string
	next int
}

func newObjIDs() *objIDs {
	return &objIDs{ids: make(map[types.Object]string)}
}

func (o *objIDs) of(obj types.Object) string {
	if id, ok := o.ids[obj]; ok {
		return id
	}
	o.next++
	id := fmt.Sprintf("%s#%d", obj.Name(), o.next)
	o.ids[obj] = id
	return id
}
