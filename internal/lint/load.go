package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is the parsed, type-checked, non-test view of one Go
// package. Test files (_test.go) are excluded on purpose: the suite's
// conventions govern production code, and tests legitimately compare
// floats exactly, spin goroutines, and discard errors.
type Package struct {
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Path is the package's import path (directory-derived when the
	// package sits outside the module, e.g. testdata fixtures).
	Path string
	// Name is the package name from the source files.
	Name string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and identifier facts.
	Info *types.Info
}

// Loader loads and type-checks packages of the enclosing module using
// only the standard library: module-internal imports are resolved by
// recursively loading their directories, and standard-library imports
// are type-checked from GOROOT source via go/importer's source
// importer. Loaders are not safe for concurrent use.
type Loader struct {
	// Fset is shared by every package this loader touches.
	Fset *token.FileSet
	// ModRoot is the absolute path of the module root (the directory
	// holding go.mod).
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader locates the module enclosing dir (walking up to the
// nearest go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving %s: %w", dir, err)
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", path, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", path)
}

// importPath maps an absolute directory to its import path within the
// module, falling back to the slash-cleaned directory itself for
// out-of-module directories (testdata fixtures).
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// Load parses and type-checks the package in dir.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving %s: %w", dir, err)
	}
	return l.loadDir(abs, l.importPath(abs))
}

// Import resolves an import path for the type checker: module-internal
// paths load recursively from source, everything else goes to the
// standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath)))
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadDir does the parse + type-check work for one directory, caching
// by import path.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	name := files[0].Name.Name
	for _, f := range files[1:] {
		if f.Name.Name != name {
			return nil, fmt.Errorf("lint: %s: multiple packages %s and %s", dir, name, f.Name.Name)
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErr error
	cfg := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	pkg := &Package{
		Fset:  l.Fset,
		Path:  path,
		Name:  name,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of dir in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", n, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// Expand resolves go-tool-style package patterns — a directory or a
// "..." wildcard suffix — to the list of package directories holding at
// least one non-test Go file. Wildcard walks skip testdata, vendor, and
// dot- or underscore-prefixed directories, matching the go tool.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		base := pat
		if strings.HasSuffix(base, "...") {
			recursive = true
			base = strings.TrimSuffix(base, "...")
			base = strings.TrimSuffix(base, "/")
		}
		if base == "" {
			base = "."
		}
		base = filepath.Clean(base)
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("lint: no non-test Go files in %s", base)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", base, err)
		}
	}
	return out, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") &&
			!strings.HasSuffix(n, "_test.go") &&
			!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
			return true
		}
	}
	return false
}
