package taintflow

import (
	"net/http"
	"strconv"
)

// clampDeep bounds its input — the sanitizer of the three-hop chain.
func clampDeep(n int) int {
	if n > 256 {
		return 256
	}
	return n
}

// viaMiddle forwards to clampDeep; its result summary is clean because
// clampDeep's is.
func viaMiddle(n int) int { return clampDeep(n) }

// deepHandler proves summaries compose: the sanitizer lives two calls
// below the source, and the allocation stays clean.
func deepHandler(r *http.Request) []byte {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	return make([]byte, viaMiddle(n))
}

// midAlloc forwards to the sink without sanitizing, so the finding
// carries the two-hop call path.
func midAlloc(n int) []byte { return sizedAlloc(n) }

func twoHopHandler(r *http.Request) []byte {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	return midAlloc(n) // want `untrusted value n reaches make size without a bounds check \(via midAlloc -> sizedAlloc\)`
}
