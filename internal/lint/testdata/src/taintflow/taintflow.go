// Package taintflow is a mlocvet fixture where untrusted values —
// HTTP request data, decoded peer responses, varint-decoded wire
// bytes — cross function calls before reaching allocation sizes, loop
// bounds, indexes, and timeouts.
package taintflow

import (
	"encoding/binary"
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// sizedAlloc owns the sink; the untrusted count arrives one call
// above, so the finding names the call path.
func sizedAlloc(n int) []byte {
	return make([]byte, n)
}

func handler(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	_ = sizedAlloc(n) // want `untrusted value n reaches make size without a bounds check \(via sizedAlloc\)`
}

func boundedHandler(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	if n > 1024 {
		n = 1024
	}
	_ = sizedAlloc(n) // bounded above: clean
}

// pathSensitive guards only the fast path; the union-meet at the join
// keeps the unguarded path's taint alive.
func pathSensitive(w http.ResponseWriter, r *http.Request, fast bool) []byte {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	if fast {
		if n > 64 {
			return nil
		}
	}
	return make([]byte, n) // want `untrusted value n reaches make size without a bounds check`
}

func loopBound(r *http.Request) int {
	iters, _ := strconv.Atoi(r.Header.Get("X-Iters"))
	total := 0
	for i := 0; i < iters; i++ { // want `untrusted value iters reaches loop bound without a bounds check`
		total += i
	}
	return total
}

func sleepSink(r *http.Request) {
	secs, _ := strconv.Atoi(r.Header.Get("Retry-After"))
	time.Sleep(time.Duration(secs) * time.Second) // want `untrusted value time.Duration\(secs\) \* time.Second reaches sleep/timeout duration`
}

func sleepClamped(r *http.Request) {
	secs, _ := strconv.Atoi(r.Header.Get("Retry-After"))
	d := time.Duration(secs) * time.Second
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	time.Sleep(d) // clamped: clean
}

func indexSink(r *http.Request, table []string) string {
	i, _ := strconv.Atoi(r.FormValue("i"))
	return table[i] // want `untrusted value i reaches index without a bounds check`
}

func decodePeer(resp *http.Response) []int {
	var counts []int
	_ = json.NewDecoder(resp.Body).Decode(&counts)
	return make([]int, counts[0]) // want `untrusted value counts\[0\] reaches make size without a bounds check`
}

func wireAlloc(data []byte) []byte {
	n, _ := binary.Uvarint(data)
	return sizedAlloc(int(n)) // want `untrusted value int\(n\) reaches make size without a bounds check \(via sizedAlloc\)`
}

func suppressed(r *http.Request) []byte {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	return make([]byte, n) //mlocvet:ignore taintflow -- fixture: the gateway in front of this handler enforces the size cap
}
