// Package pfs is the ctxflow fixture's stand-in for the simulated
// filesystem: what matters is that its import path ends in
// internal/pfs, which marks its calls as simulated I/O.
package pfs

// Read models one simulated I/O call.
func Read() int { return 1 }
