// Package ctxflow is a mlocvet fixture: a function holding a
// context.Context must forward it — not replace it with a fresh
// Background/TODO, not bypass a Context-aware sibling, and not run
// simulated-I/O loops without polling cancellation.
package ctxflow

import (
	"context"

	"mloc/internal/lint/testdata/src/ctxflow/internal/pfs"
)

// Query is the convenience wrapper: it holds no context, so filling in
// Background here is legal — no diagnostic.
func Query(n int) int {
	return QueryContext(context.Background(), n)
}

// QueryContext is the context-aware variant.
func QueryContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// overridesHeldContext drops the caller's cancellation on the floor.
func overridesHeldContext(ctx context.Context, n int) int {
	return QueryContext(context.Background(), n) // want `holds a context but passes a fresh one`
}

// bypassesContextVariant calls the blocking wrapper although the
// context-aware sibling exists.
func bypassesContextVariant(ctx context.Context, n int) int {
	return Query(n) // want `context-aware variant QueryContext`
}

// uncancellableLoop does simulated I/O per bin without ever checking
// ctx.
func uncancellableLoop(ctx context.Context, bins []int) int {
	total := 0
	for range bins { // want `loop performs simulated I/O without polling cancellation`
		total += pfs.Read()
	}
	return total
}

// pollingLoop checks ctx.Err each iteration — no diagnostic.
func pollingLoop(ctx context.Context, bins []int) int {
	total := 0
	for range bins {
		if ctx.Err() != nil {
			return total
		}
		total += pfs.Read()
	}
	return total
}

// forwardingLoop hands the context to the callee, which observes
// cancellation — no diagnostic.
func forwardingLoop(ctx context.Context, bins []int) int {
	total := 0
	for _, n := range bins {
		total += QueryContext(ctx, n) + pfs.Read()
	}
	return total
}

// capturedByClosure: a literal without its own ctx parameter inherits
// the enclosing one and is held to the same contract.
func capturedByClosure(ctx context.Context, bins []int) func() int {
	return func() int {
		total := 0
		for range bins { // want `loop performs simulated I/O without polling cancellation`
			total += pfs.Read()
		}
		return total
	}
}

// auditDetach deliberately detaches, suppressed with a reason.
func auditDetach(ctx context.Context, n int) int {
	return QueryContext(context.Background(), n) //mlocvet:ignore ctxflow -- audit write must survive caller cancellation
}
