// Package bodylimit is a mlocvet fixture where network bodies are read
// with and without length bounds. The peer controls how many bytes
// Body yields, so unbounded reads are an OOM a remote can trigger.
package bodylimit

import (
	"encoding/json"
	"io"
	"net/http"
)

func decodeUnbounded(resp *http.Response) error {
	var v []string
	return json.NewDecoder(resp.Body).Decode(&v) // want `unbounded read of resp.Body; wrap it in io.LimitReader or http.MaxBytesReader`
}

func decodeBounded(resp *http.Response) error {
	var v []string
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&v)
}

func readAll(resp *http.Response) ([]byte, error) {
	return io.ReadAll(resp.Body) // want `unbounded read of resp.Body`
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body) // want `unbounded read of resp.Body`
}

func drainBounded(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
}

// wrapped rebinds the body through http.MaxBytesReader before any
// read; the rebind dominates the decode, so it is clean.
func wrapped(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var v map[string]int
	_ = json.NewDecoder(r.Body).Decode(&v)
}

// wrapOneBranch rebinds only when big is set; the read is reachable
// with the raw body, so the wrap does not dominate it.
func wrapOneBranch(w http.ResponseWriter, r *http.Request, big bool) {
	if big {
		r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	}
	_, _ = io.ReadAll(r.Body) // want `unbounded read of r.Body`
}

func aliased(resp *http.Response) ([]byte, error) {
	body := resp.Body
	return io.ReadAll(body) // want `unbounded read of body`
}

// helperPass hands the raw body to a helper — the bytes still get read
// somewhere, so the bound must be applied before the body escapes.
func helperPass(resp *http.Response) error {
	return parse(resp.Body) // want `unbounded read of resp.Body`
}

func parse(rd io.Reader) error {
	var v []int
	return json.NewDecoder(rd).Decode(&v)
}

func closeOnly(resp *http.Response) {
	_ = resp.Body.Close()
}

func suppressedDrain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body) //mlocvet:ignore bodylimit -- fixture: in-process test server with a trusted fixed-size payload
}
