// Package pfs is the clockcharge fixture's miniature simulator: a
// Stats struct recording simulated I/O and a Clock that must be
// charged whenever the tracked fields move. Its import path ends in
// internal/pfs, putting it in the analyzer's scope.
package pfs

// Stats mirrors the simulator's I/O counters.
type Stats struct {
	Reads        int64
	Opens        int64
	BytesRead    int64
	BytesWritten int64
	Seeks        int64
}

// Clock is the fixture's virtual clock.
type Clock struct{ now float64 }

// AdvanceBy moves the clock forward.
func (c *Clock) AdvanceBy(d float64) { c.now += d }

// Sim couples the counters to the clock.
type Sim struct {
	stats Stats
	clk   *Clock
}

// readUncharged records I/O but never advances the clock: simulated
// time silently diverges from the recorded work.
func (s *Sim) readUncharged(n int64) {
	s.stats.Reads++           // want `Stats\.Reads is mutated without charging the Clock`
	s.stats.BytesRead += n    // want `Stats\.BytesRead is mutated without charging the Clock`
	s.stats.BytesWritten += n // want `Stats\.BytesWritten is mutated without charging the Clock`
}

// readCharged advances after recording — no diagnostic.
func (s *Sim) readCharged(n int64) {
	s.stats.Reads++
	s.stats.BytesRead += n
	s.clk.AdvanceBy(float64(n))
}

// chargedOnSomePathsOnly returns early from the cache-hit branch
// without charging.
func (s *Sim) chargedOnSomePathsOnly(n int64, hit bool) {
	s.stats.Reads++ // want `Stats\.Reads is mutated without charging the Clock`
	if hit {
		return
	}
	s.clk.AdvanceBy(float64(n))
}

// chargeViaHelper charges through a callee that always advances — no
// diagnostic (one-call-deep summary).
func (s *Sim) chargeViaHelper(n int64) {
	s.stats.Opens++
	s.bump(n)
}

func (s *Sim) bump(n int64) {
	s.clk.AdvanceBy(float64(n))
}

// seekOnly mutates a field outside the trigger set: the charge helper
// pattern increments Seeks while its callers advance — no diagnostic.
func (s *Sim) seekOnly() {
	s.stats.Seeks++
}

// metadataOpen is free by the fixture's cost model, suppressed with a
// reason.
func (s *Sim) metadataOpen() {
	s.stats.Opens++ //mlocvet:ignore clockcharge -- metadata-only open is free in this cost model
}
