// Package constshare is a mlocvet fixture restating registered shared
// constants alongside coincidental uses of the same values.
package constshare

const fillFirst = 0x7F // want `magic literal 0x7F duplicates plod.FillByteFirst`

func assemble() uint64 {
	tail := uint64(0x7F)  // want `magic literal 0x7F duplicates plod.FillByteFirst`
	tail = tail<<8 | 0xFF // mask operand: coincidence, not duplication
	return tail
}

func magic() uint32 {
	return 0x4d4c4f43 // want `magic literal 0x4d4c4f43 duplicates core's metaMagic`
}

func levelCheck(level int) bool {
	return level > 7 // want `magic literal 7 duplicates plod.MaxLevel`
}

func plodPlanes() int {
	nplod := 7 // want `magic literal 7 duplicates plod.MaxLevel`
	return nplod
}

func unrelatedCount(n int) bool {
	return n > 7 // no level/plod context: fine
}

func varintMask(b byte) byte {
	return b & 0x7F // mask operand: fine
}

const weekDays = 127 // decimal spelling: fine

func suppressedFill() byte {
	// This fixture documents the byte inline on purpose.
	return 0x7F //mlocvet:ignore constshare
}
