// Package hotalloc is a mlocvet fixture with hoistable per-iteration
// allocations next to loops that allocate correctly.
package hotalloc

func perIteration(rows [][]float64) []float64 {
	var out []float64
	for _, row := range rows {
		buf := make([]float64, 128) // want `make with loop-invariant size reallocates buf`
		copy(buf, row)
		out = append(out, buf[0]) // want `append grows out every iteration`
	}
	return out
}

func preallocated(rows [][]float64) []float64 {
	out := make([]float64, 0, len(rows))
	scratch := make([]float64, 128)
	for _, row := range rows {
		tmp := make([]float64, len(row)) // size changes per iteration: fine
		copy(tmp, row)
		copy(scratch, row)
		out = append(out, scratch[0]) // out has capacity: fine
		_ = tmp
	}
	return out
}

func closures(n int, scale float64) []func() float64 {
	fns := make([]func() float64, 0, 2*n)
	for i := 0; i < n; i++ {
		f := func() float64 { return scale * 2 } // want `func literal captures only loop-invariant scale`
		fns = append(fns, f)
		g := func() float64 { return float64(i) } // captures the loop variable: fine
		fns = append(fns, g)
	}
	return fns
}

func lazily(rows [][]float64, need bool) []float64 {
	var out []float64
	for _, row := range rows {
		if need {
			// Conditional allocations are deliberate lazy paths: fine.
			buf := make([]float64, 64)
			copy(buf, row)
			out = append(out, buf...)
		}
	}
	return out
}

func escaping(rows [][]float64) [][]float64 {
	var out [][]float64
	for _, row := range rows {
		// Each iteration's buffer escapes into out on purpose.
		buf := make([]float64, 8) //mlocvet:ignore hotalloc
		buf[0] = row[0]
		out = append(out, buf) //mlocvet:ignore hotalloc
	}
	return out
}
