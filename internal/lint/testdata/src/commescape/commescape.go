// Package commescape is a mlocvet fixture for rank-local Comm escape
// checks. It imports the real SPMD runtime so the analyzer sees the
// genuine mpi.Comm type.
package commescape

import "mloc/internal/mpi"

type badHolder struct {
	comm *mpi.Comm // want `struct field stores \*mpi\.Comm`
}

type badSlice struct {
	comms []*mpi.Comm // want `struct field stores \*mpi\.Comm`
}

var pipe chan *mpi.Comm // want `channel of \*mpi\.Comm`

func send(c *mpi.Comm) {
	pipe <- c // want `\*mpi\.Comm sent on a channel`
}

func capture(c *mpi.Comm) {
	go func() {
		_ = c.Rank() // want `go statement captures \*mpi\.Comm c`
	}()
}

func pass(c *mpi.Comm) {
	go useComm(c) // want `\*mpi\.Comm passed to a goroutine`
}

func useComm(c *mpi.Comm) { _ = c.Rank() }

func fine(c *mpi.Comm) (int, error) {
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	return c.Rank(), nil // plain rank-local use: no diagnostic
}
