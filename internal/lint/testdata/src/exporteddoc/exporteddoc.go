// Package exporteddoc is a mlocvet fixture for doc-comment coverage.
package exporteddoc

// Documented has a doc comment.
type Documented struct{}

type Undocumented struct{} // want `exported type Undocumented is missing a doc comment`

// Grouped declarations share the group doc.
const (
	GroupedA = 1
	GroupedB = 2
)

const Bare = 3 // want `exported const Bare is missing a doc comment`

var Loose int // want `exported var Loose is missing a doc comment`

// Do is documented.
func (Documented) Do() {}

func (Documented) Miss() {} // want `exported method Miss is missing a doc comment`

func Export() {} // want `exported function Export is missing a doc comment`

func unexported() {}

type hidden struct{}

// Method is documented but its receiver is unexported either way.
func (hidden) Method() {}

var _ = unexported
var _ hidden
