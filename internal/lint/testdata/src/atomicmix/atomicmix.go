// Package atomicmix is a mlocvet fixture mixing synchronization
// disciplines on struct fields.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	hits int64
	val  int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return c.hits // want `field atomicmix.counter.hits is accessed atomically at .* but plainly here`
}

func (c *counter) plainOnly() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val // one discipline throughout: fine
}

func (c *counter) plainOnlyWrite(v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.val = v
}

func newCounter() *counter {
	c := &counter{}
	c.hits = 1 // constructors run before publication: fine
	return c
}

type table struct {
	muA  sync.Mutex
	muB  sync.Mutex
	rows int
}

func (t *table) addA() {
	t.muA.Lock()
	t.rows++
	t.muA.Unlock()
}

func (t *table) addB() {
	t.muB.Lock()
	t.rows++ // want `one field, one guard`
	t.muB.Unlock()
}

type gauge struct {
	level int64
}

func (g *gauge) set(v int64) {
	atomic.StoreInt64(&g.level, v)
}

func (g *gauge) peek() int64 {
	// A racy monitoring read, accepted on purpose.
	return g.level //mlocvet:ignore atomicmix
}
