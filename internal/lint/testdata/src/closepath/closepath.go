// Package closepath is a mlocvet fixture: pooled and constructed
// values must be released on every path out of the acquiring function
// — error returns and panics included.
package closepath

import (
	"errors"
	"sync"
	"time"
)

var pool sync.Pool

func use([]byte) {}

// droppedOnError loses the buffer on the early error return.
func droppedOnError(fail bool) error {
	buf := pool.Get().([]byte) // want `sync.Pool Get on pool is not released on every path`
	if fail {
		return errors.New("closepath: boom")
	}
	use(buf)
	pool.Put(buf)
	return nil
}

// deferredPut covers every exit, panics included — no diagnostic.
func deferredPut(fail bool) error {
	buf := pool.Get().([]byte)
	defer pool.Put(buf)
	if fail {
		return errors.New("closepath: boom")
	}
	use(buf)
	return nil
}

// timerLeak abandons the runtime timer on the early return.
func timerLeak(d time.Duration, c bool) {
	t := time.NewTimer(d) // want `time\.Timer t is not released on every path`
	if c {
		return
	}
	t.Stop()
}

// timerStopped defers Stop — no diagnostic.
func timerStopped(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

type scratch struct{ buf []byte }

var scratchPool sync.Pool

// GetScratch acquires inside a return statement: ownership escapes to
// the caller, so the Get itself is exempt — no diagnostic.
func GetScratch() *scratch {
	return scratchPool.Get().(*scratch)
}

// PutScratch returns a scratch to the pool.
func PutScratch(s *scratch) {
	scratchPool.Put(s)
}

// ctorDroppedOnPanic loses the scratch when the corrupt branch panics.
func ctorDroppedOnPanic(corrupt bool) {
	s := GetScratch() // want `GetScratch result is not released on every path`
	if corrupt {
		panic("closepath: corrupt")
	}
	PutScratch(s)
}

// ctorBalanced releases on both exits — no diagnostic.
func ctorBalanced(c bool) {
	s := GetScratch()
	if c {
		PutScratch(s)
		return
	}
	use(s.buf)
	PutScratch(s)
}

// poisonedDrop deliberately drops the value on failure, suppressed
// with a reason.
func poisonedDrop(fail bool) {
	buf := pool.Get().([]byte) //mlocvet:ignore closepath -- a buffer that failed validation is poisoned; dropping it lets the pool refill fresh
	if fail {
		return
	}
	pool.Put(buf)
}
