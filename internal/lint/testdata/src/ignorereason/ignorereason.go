// Package ignorereason is a mlocvet fixture: every ignore directive
// must justify itself with a "-- reason" tail. Bare directives still
// suppress their named analyzers but are themselves reported, and
// only a reasoned directive can suppress that report.
package ignorereason

// bareDirective suppresses floatcmp but gives no reason.
func bareDirective(a, b float64) bool {
	return a == b //mlocvet:ignore floatcmp // want `mlocvet:ignore floatcmp has no reason`
}

// reasonedDirective carries the mandatory tail — no diagnostic.
func reasonedDirective(a, b float64) bool {
	return a == b //mlocvet:ignore floatcmp -- fixture compares exact sentinel values
}

// namelessDirective names no analyzer at all.
func namelessDirective(a, b float64) bool {
	return a == b //mlocvet:ignore // want `names no analyzer`
}

// selfExcuse shows a bare directive cannot suppress its own report:
// naming ignorereason without a reason does not count.
func selfExcuse(a, b float64) bool {
	return a == b //mlocvet:ignore floatcmp,ignorereason // want `has no reason`
}

// grandfathered shows the escape hatch: a reasoned directive naming
// ignorereason on the preceding line suppresses the report for the
// bare directive below it — no diagnostic on either line.
func grandfathered(a, b float64) bool {
	//mlocvet:ignore ignorereason -- bare directive below is kept verbatim as migration test input
	//mlocvet:ignore floatcmp
	return a == b
}
