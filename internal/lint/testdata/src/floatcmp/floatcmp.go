// Package floatcmp is a mlocvet fixture for float equality checks.
package floatcmp

type reading float64

func eq(a, b float64) bool {
	return a == b // want `== on floating-point operands`
}

func loop(vals []float64, x float32) int {
	n := 0
	for _, v := range vals {
		if v != 1.5 { // want `!= on floating-point operands`
			n++
		}
	}
	if x == 0 { // want `== on floating-point operands`
		n++
	}
	return n
}

func named(r reading) bool {
	return r == 2.5 // want `== on floating-point operands`
}

func sentinel(scale float64) float64 {
	if scale == 0 { //mlocvet:ignore floatcmp
		return 1
	}
	return scale
}

func ints(a, b int) bool {
	return a == b // integers: no diagnostic
}
