// Package wiresize is a mlocvet fixture where decoded lengths reach
// allocations with and without bounds checks.
package wiresize

import "encoding/binary"

func unbounded(data []byte) []uint64 {
	count, n := binary.Uvarint(data)
	data = data[n:]              // the bytes-consumed result is bounded by construction
	out := make([]uint64, count) // want `make size count derives from an untrusted decoded length`
	for i := range out {
		out[i], n = binary.Uvarint(data)
		data = data[n:]
	}
	return out
}

func converted(data []byte) []byte {
	size, _ := binary.Uvarint(data)
	c := int(size)
	return make([]byte, c) // want `make size c derives from an untrusted decoded length`
}

func sliced(data []byte) []byte {
	plen, n := binary.Uvarint(data)
	data = data[n:]
	return data[:plen] // want `slice bound plen derives from an untrusted decoded length`
}

func bounded(data []byte) ([]byte, bool) {
	plen, n := binary.Uvarint(data)
	data = data[n:]
	if plen > uint64(len(data)) {
		return nil, false
	}
	return data[:plen], true // sanitized by the comparison above
}

func boundedMake(data []byte) []float64 {
	count, _ := binary.Uvarint(data)
	if count > 1<<20 {
		return nil
	}
	return make([]float64, count) // sanitized by the cap above
}

func suppressed(data []byte) []byte {
	plen, _ := binary.Uvarint(data)
	// Caller guarantees the payload length out of band.
	return data[:plen] //mlocvet:ignore wiresize
}
