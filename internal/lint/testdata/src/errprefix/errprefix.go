// Package errprefix is a mlocvet fixture for the error-prefix
// convention.
package errprefix

import (
	"errors"
	"fmt"
)

var errBare = errors.New("boom")                 // want `error string "boom" does not start with "errprefix: "`
var errWrongPkg = errors.New("core: not mine")   // want `does not start with "errprefix: "`
var errGood = errors.New("errprefix: good boom") // prefixed: no diagnostic

//mlocvet:ignore errprefix
var errSuppressed = errors.New("wrapped later by the caller")

func badf(n int) error {
	return fmt.Errorf("bad value %d", n) // want `does not start with "errprefix: "`
}

func goodf(n int) error {
	return fmt.Errorf("errprefix: bad value %d", n)
}

func wrapped(err error) error {
	return fmt.Errorf("errprefix: outer: %w", err)
}

func nonLiteral(format string) error {
	return fmt.Errorf(format) // non-literal format: not checkable, no diagnostic
}
