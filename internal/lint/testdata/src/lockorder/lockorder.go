// Package lockorder is a mlocvet fixture with mutex acquisition-order
// cycles: an ABBA pair across two functions (one edge indirect, through
// a callee) and a self-edge from re-acquiring a held class.
package lockorder

import "sync"

// A and B are the two lock classes of the ABBA cycle.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

func lockAB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func lockBA() {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA() // want `lock acquisition cycle`
}

func lockA() {
	a.mu.Lock()
	a.mu.Unlock()
}

// S is re-acquired while held: a self-edge.
type S struct{ mu sync.Mutex }

func double(s, t *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.mu.Lock() // want `lock acquisition cycle`
	t.mu.Unlock()
}

// C is the same shape with the shard ordering documented and the
// finding suppressed.
type C struct{ mu sync.Mutex }

func shards(lo, hi *C) {
	lo.mu.Lock()
	defer lo.mu.Unlock()
	hi.mu.Lock() //mlocvet:ignore lockorder
	hi.mu.Unlock()
}

// disjoint never holds two classes at once: no edges, no findings.
func disjoint() {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}
