// Package ctxfirst is the golden fixture for the ctxfirst analyzer.
package ctxfirst

import "context"

// Good takes its context first: no finding.
func Good(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

// NoCtx has no context at all: no finding.
func NoCtx(a, b int) int { return a + b }

// Bad buries the context behind a value parameter.
func Bad(n int, ctx context.Context) error { // want `exported Bad takes context.Context as parameter 2`
	_ = ctx
	_ = n
	return nil
}

// badUnexported is exempt: the convention binds only the exported API.
func badUnexported(n int, ctx context.Context) {
	_ = ctx
	_ = n
}

// T is a carrier for method cases.
type T struct{}

// GoodMethod takes its context first: no finding.
func (T) GoodMethod(ctx context.Context) { _ = ctx }

// BadMethod is an exported method with a late context.
func (T) BadMethod(n int, ctx context.Context) { // want `exported BadMethod takes context.Context as parameter 2`
	_ = ctx
	_ = n
}

// TwoCtx is odd but satisfies the rule: the first parameter is a
// context, so the extra one draws no finding.
func TwoCtx(ctx context.Context, other context.Context) {
	_ = ctx
	_ = other
}

// SharedNames declares the context within a shared name list; the
// flattened position is what counts.
func SharedNames(a, b int, ctx context.Context) { // want `exported SharedNames takes context.Context as parameter 3`
	_ = a
	_ = b
	_ = ctx
}

// Ignored opts out with the suppression directive.
func Ignored(n int, ctx context.Context) { //mlocvet:ignore ctxfirst
	_ = ctx
	_ = n
}
