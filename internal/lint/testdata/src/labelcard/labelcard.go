// Package labelcard is a mlocvet fixture where untrusted strings reach
// metric labels and metric names: every distinct value materializes a
// new time series, so attacker-chosen labels are a memory leak.
package labelcard

import (
	"net/http"
	"strconv"

	"mloc/internal/obs"
)

func handler(reg *obs.Registry, r *http.Request) {
	v := r.URL.Query().Get("var")
	reg.Counter("mloc_queries_total", "Queries by variable.", obs.L("var", v)).Inc() // want `metric label or name v derives from untrusted input`
	reg.Counter("mloc_requests_total", "Requests.", obs.L("endpoint", "query")).Inc()
}

func finiteSet(reg *obs.Registry) {
	for _, ep := range []string{"query", "stats", "vars"} {
		reg.Counter("mloc_endpoint_total", "Requests by endpoint.", obs.L("endpoint", ep)).Inc()
	}
	for i := 0; i < 4; i++ {
		reg.Gauge("mloc_worker_busy", "Worker busy flag.", obs.L("worker", strconv.Itoa(i))).Set(0)
	}
}

// countFor owns the label sink; the untrusted value arrives via its
// parameter, so the finding at the caller names this hop.
func countFor(reg *obs.Registry, val string) {
	reg.Counter("mloc_tenant_total", "Requests by tenant.", obs.L("tenant", val)).Inc()
}

func crossFunc(reg *obs.Registry, r *http.Request) {
	countFor(reg, r.Header.Get("X-Tenant")) // want `metric label or name .* derives from untrusted input \(via countFor\)`
}

func dynamicName(reg *obs.Registry, r *http.Request) {
	name := "mloc_" + r.URL.Query().Get("metric")
	reg.Counter(name, "Dynamic metric.").Inc() // want `metric label or name name derives from untrusted input`
}

func suppressed(reg *obs.Registry, r *http.Request) {
	id := r.Header.Get("X-Node")
	reg.Counter("mloc_node_seen_total", "Requests by node.", obs.L("node", id)).Inc() //mlocvet:ignore labelcard -- fixture: node ids are validated against the cluster roster upstream
}
