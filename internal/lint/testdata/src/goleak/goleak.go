// Package goleak is a mlocvet fixture: goroutines must reach a
// bounding event (WaitGroup join, channel operation, close, or a
// ctx.Done receive) on every path, or nothing can ever wait for them.
package goleak

import "sync"

func compute() {}

// fireAndForget never touches a join primitive: pure leak.
func fireAndForget(n int) {
	go func() { // want `goroutine has no bounded exit on every path`
		x := 0
		for i := 0; i < n; i++ {
			x += i
		}
		_ = x
	}()
}

// boundedOnOnePathOnly signals only when hit is true; the other path
// exits silently, so a waiter can hang forever.
func boundedOnOnePathOnly(hit bool, done chan struct{}) {
	go func() { // want `goroutine has no bounded exit on every path`
		if hit {
			done <- struct{}{}
		}
	}()
}

// joinedByWaitGroup defers Done, which covers every exit — no
// diagnostic.
func joinedByWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			compute()
		}()
	}
	wg.Wait()
}

// worker is joined through its declaration body: the one-call-deep
// summary sees the deferred Done.
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	compute()
}

func joinedNamedWorker(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go worker(&wg) // no diagnostic: worker's body defers wg.Done
	}
	wg.Wait()
}

// producer closes its output channel on every exit — no diagnostic.
func producer(items []int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, v := range items {
			out <- v
		}
	}()
	return out
}

// detachedFlusher is unbounded by design, suppressed with a reason.
func detachedFlusher(tick func()) {
	go func() { //mlocvet:ignore goleak -- process-lifetime metrics flusher; reaped at exit by design
		for i := 0; i < 3; i++ {
			tick()
		}
	}()
}
