// Package stage is a mlocvet fixture proving the spmd-goroutine
// exemption: packages whose import path ends in internal/stage (or
// internal/mpi) own the SPMD runtime and may start goroutines freely.
package stage

func workers(n int, work func()) {
	for i := 0; i < n; i++ {
		go work() // no diagnostic: this package is the runtime
	}
}
