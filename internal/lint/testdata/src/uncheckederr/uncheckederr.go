// Package uncheckederr is a mlocvet fixture for discarded errors.
package uncheckederr

import (
	"errors"
	"fmt"
	"strings"
)

func may() error { return errors.New("uncheckederr: boom") }

func pair() (int, error) { return 0, errors.New("uncheckederr: boom") }

func bad() int {
	may()          // want `result of may includes an error that is discarded by the bare call`
	_ = may()      // want `error value discarded via _`
	_, _ = pair()  // want `error result of pair discarded via _`
	n, _ := pair() // want `error result of pair discarded via _`
	return n
}

func suppressed() {
	_ = may() //mlocvet:ignore uncheckederr
}

func exempt(sb *strings.Builder) {
	fmt.Println("hello")     // exempt: terminal output
	sb.WriteString("x")      // exempt: Builder writes cannot fail
	fmt.Fprintf(sb, "%d", 1) // exempt: safe writer
}

func checked() error {
	if err := may(); err != nil {
		return fmt.Errorf("uncheckederr: %w", err)
	}
	v, err := pair()
	if err != nil {
		return err
	}
	_ = v // non-error discard: no diagnostic
	return nil
}
