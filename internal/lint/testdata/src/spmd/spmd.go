// Package spmd is a mlocvet fixture with forbidden bare go statements.
package spmd

func launch(work func()) {
	go work() // want `bare go statement outside the SPMD runtime`
	done := make(chan struct{})
	go func() { // want `bare go statement outside the SPMD runtime`
		defer close(done)
		work()
	}()
	<-done
}
