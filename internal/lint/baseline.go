package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// Baseline is a snapshot of accepted findings, keyed by (file,
// analyzer, message) with an occurrence count. Line numbers are
// deliberately excluded so unrelated edits that shift a finding do not
// break the gate; only a NEW finding — a key whose count exceeds the
// snapshot — fails CI.
type Baseline struct {
	// Version guards the file format.
	Version int `json:"version"`
	// Findings are the accepted findings, sorted by key.
	Findings []BaselineFinding `json:"findings"`
}

// BaselineFinding is one accepted (file, analyzer, message) group.
type BaselineFinding struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// baselineVersion is the current file-format version.
const baselineVersion = 1

// baselineKey groups diagnostics for counting.
type baselineKey struct {
	file, analyzer, message string
}

func keyOf(d Diagnostic) baselineKey {
	return baselineKey{
		file:     filepath.ToSlash(d.Pos.Filename),
		analyzer: d.Analyzer,
		message:  d.Message,
	}
}

// NewBaseline snapshots the given diagnostics.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := make(map[baselineKey]int)
	for _, d := range diags {
		counts[keyOf(d)]++
	}
	b := &Baseline{Version: baselineVersion}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineFinding{
			File: k.file, Analyzer: k.analyzer, Message: k.message, Count: n,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// New returns the diagnostics not covered by the baseline: for each
// (file, analyzer, message) group, occurrences beyond the snapshot
// count. Within a group the later positions are the ones reported.
func (b *Baseline) New(diags []Diagnostic) []Diagnostic {
	budget := make(map[baselineKey]int, len(b.Findings))
	for _, f := range b.Findings {
		budget[baselineKey{file: f.File, analyzer: f.Analyzer, message: f.Message}] = f.Count
	}
	var out []Diagnostic
	for _, d := range diags {
		k := keyOf(d)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// WriteBaseline serializes the baseline as indented JSON.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses a baseline file, rejecting unknown versions.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline version %d (want %d); regenerate it", b.Version, baselineVersion)
	}
	return &b, nil
}
