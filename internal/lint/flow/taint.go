package flow

// taint.go is the interprocedural taint-tracking layer of the flow
// engine: per-function summaries (which params and results carry
// untrusted data, which params reach dangerous sinks) computed
// bottom-up over the static call graph, with an intraprocedural
// transfer function over the basic-block CFG so taint respects
// path-sensitive sanitization.
//
// The lattice per value is a small bit mask: one bit for "derived from
// an untrusted source" (HTTP request data, JSON decoded from peer
// responses, varint-decoded wire bytes) and one bit per function
// parameter. The block solve is the union-meet dual of SolveMust's
// intersection fixpoint: a fact merged from any predecessor survives,
// so a bounds check that guards only one path does NOT sanitize the
// others — the precision the linear source-order walk of the older
// wiresize analyzer lacks. Within a path, an ordered comparison
// (<, <=, >, >=) mentioning a value clears its taint from that point
// on: every block the comparison dominates sees the value as bounded,
// which is exactly the repository's rejection idiom
// ("if n > max { return err }").
//
// Summaries compose: a function that bounds-checks before returning
// has clean result masks, so a sanitizer two calls below a source
// still clears the taint at the top. Named sanitizers
// (DecodeBytesMax, uvarintMax, io.LimitReader, http.MaxBytesReader)
// and name-based sources (the uvarint family, http.Request/Response
// data) cover callees whose bodies are outside the analyzed program
// (the standard library, fixtures). Name rules apply only when no
// computed summary exists.
//
// Approximations, chosen to keep the analysis quiet on legitimate
// code: struct-field writes drop taint (the holder object is not
// tainted wholesale), len/cap of a tainted container are clean (their
// magnitude is bounded by bytes actually received), and function
// literals run under their own control flow and are not analyzed.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Mask is a set of taint origins for one value: SourceBit marks
// "derived from an untrusted source"; ParamBit(i) marks "derived from
// parameter i" of the function under analysis (receiver first when
// present).
type Mask uint64

// SourceBit is the untrusted-source origin.
const SourceBit Mask = 1

// maxParamBits caps how many parameters get distinct bits; later
// parameters share the last bit (sound: sharing only widens taint).
const maxParamBits = 62

// ParamBit returns the mask bit of parameter index i.
func ParamBit(i int) Mask {
	if i >= maxParamBits {
		i = maxParamBits - 1
	}
	return Mask(2) << uint(i)
}

// HasSource reports whether the mask carries the untrusted-source bit.
func (m Mask) HasSource() bool { return m&SourceBit != 0 }

// paramIndices lists the parameter indices present in the mask.
func (m Mask) paramIndices() []int {
	var out []int
	for i := 0; i < maxParamBits; i++ {
		if m&ParamBit(i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// SinkKind classifies where a tainted value would do damage.
type SinkKind int

// The sink kinds the engine recognizes.
const (
	// SinkAlloc is a make() length or capacity argument.
	SinkAlloc SinkKind = iota
	// SinkSliceBound is a slice-expression bound.
	SinkSliceBound
	// SinkIndex is an index expression over a slice, array, or string.
	SinkIndex
	// SinkLoopBound is a loop-condition bound.
	SinkLoopBound
	// SinkSleep is a sleep or timeout duration.
	SinkSleep
	// SinkLabel is a metric label value or metric name.
	SinkLabel
)

// String names the sink kind for diagnostics.
func (k SinkKind) String() string {
	switch k {
	case SinkAlloc:
		return "make size"
	case SinkSliceBound:
		return "slice bound"
	case SinkIndex:
		return "index"
	case SinkLoopBound:
		return "loop bound"
	case SinkSleep:
		return "sleep/timeout duration"
	case SinkLabel:
		return "metric label value"
	}
	return "sink"
}

// SinkRef is one sink occurrence inside (or transitively below) a
// summarized function, reachable by a parameter's value.
type SinkRef struct {
	// Kind classifies the sink.
	Kind SinkKind
	// Pos locates the sink expression (inside the callee).
	Pos token.Pos
	// Expr renders the sink expression.
	Expr string
	// Path names the call hops below the summarized function, empty
	// for a local sink.
	Path string
}

// Summary is one function's taint contract, in terms of its own
// parameter bits.
type Summary struct {
	// Fn is the summarized function.
	Fn *types.Func
	// NumParams counts the receiver (when present) plus the parameters.
	NumParams int
	// Results[r] is the taint mask of result r.
	Results []Mask
	// ParamOut[p] is the mask written through pointer parameter p
	// (e.g. a decode helper filling its target argument).
	ParamOut []Mask
	// ParamSinks[p] lists sinks reachable by parameter p's value
	// without an intervening bounds check.
	ParamSinks [][]SinkRef
}

// Finding is one source-to-sink flow detected in a function body.
type Finding struct {
	// Kind classifies the sink.
	Kind SinkKind
	// Pos locates the flagged expression (the sink locally, or the
	// tainted argument at a call site for interprocedural flows).
	Pos token.Pos
	// Expr renders the flagged expression.
	Expr string
	// Path names the call hops from the flagged expression to the
	// sink, empty for local flows.
	Path string
}

// Taint holds the whole-program taint facts: one Summary per declared
// function and the findings of the final reporting pass.
type Taint struct {
	prog     *Program
	sums     map[*types.Func]*Summary
	cfgs     map[*types.Func]*Graph
	findings []Finding
}

// maxSummaryPasses bounds the global summary fixpoint (recursion makes
// it iterate; real call graphs converge in two or three passes).
const maxSummaryPasses = 10

// maxSinkRefs caps the sinks recorded per parameter, and maxSinkDepth
// the interprocedural hops a sink path may take, keeping summaries and
// messages bounded on pathological graphs.
const (
	maxSinkRefs  = 8
	maxSinkDepth = 4
)

// BuildTaint computes taint summaries bottom-up over the program's
// call graph and runs the reporting pass.
func BuildTaint(p *Program) *Taint {
	t := &Taint{
		prog: p,
		sums: make(map[*types.Func]*Summary, len(p.Funcs)),
		cfgs: make(map[*types.Func]*Graph, len(p.Funcs)),
	}
	order := t.postorder()
	for pass := 0; pass < maxSummaryPasses; pass++ {
		changed := false
		for _, fi := range order {
			sum, _ := t.analyzeFunc(fi, false)
			if !summariesEqual(t.sums[fi.Obj], sum) {
				t.sums[fi.Obj] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	seen := make(map[string]bool)
	for _, fi := range order {
		_, fs := t.analyzeFunc(fi, true)
		for _, f := range fs {
			// One diagnostic per sink position: several flows (or call
			// paths) into the same expression say the same thing.
			key := fmt.Sprintf("%d/%d", f.Pos, f.Kind)
			if !seen[key] {
				seen[key] = true
				t.findings = append(t.findings, f)
			}
		}
	}
	sort.Slice(t.findings, func(i, j int) bool { return t.findings[i].Pos < t.findings[j].Pos })
	return t
}

// SummaryOf returns fn's computed summary, or nil for functions
// outside the program.
func (t *Taint) SummaryOf(fn *types.Func) *Summary { return t.sums[fn] }

// Findings returns every source-to-sink flow, sorted by position.
func (t *Taint) Findings() []Finding { return t.findings }

// postorder orders functions callees-first (DFS postorder over the
// static call graph), so most summaries are ready before their
// callers; recursion is handled by the global fixpoint.
func (t *Taint) postorder() []*FuncInfo {
	roots := make([]*FuncInfo, 0, len(t.prog.Funcs))
	for _, fi := range t.prog.Funcs {
		roots = append(roots, fi)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Decl.Pos() < roots[j].Decl.Pos() })
	var out []*FuncInfo
	seen := make(map[*types.Func]bool, len(roots))
	var visit func(fi *FuncInfo)
	visit = func(fi *FuncInfo) {
		if seen[fi.Obj] {
			return
		}
		seen[fi.Obj] = true
		for _, c := range fi.Callees {
			if ci := t.prog.Funcs[c]; ci != nil {
				visit(ci)
			}
		}
		out = append(out, fi)
	}
	for _, fi := range roots {
		visit(fi)
	}
	return out
}

// cfgOf caches the purely syntactic CFG across fixpoint passes.
func (t *Taint) cfgOf(fi *FuncInfo) *Graph {
	if g := t.cfgs[fi.Obj]; g != nil {
		return g
	}
	g := BuildCFG(fi.Decl.Body)
	t.cfgs[fi.Obj] = g
	return g
}

// summariesEqual compares two summaries field by field.
func summariesEqual(a, b *Summary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.NumParams != b.NumParams ||
		len(a.Results) != len(b.Results) ||
		len(a.ParamOut) != len(b.ParamOut) ||
		len(a.ParamSinks) != len(b.ParamSinks) {
		return false
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			return false
		}
	}
	for i := range a.ParamOut {
		if a.ParamOut[i] != b.ParamOut[i] {
			return false
		}
	}
	for i := range a.ParamSinks {
		if len(a.ParamSinks[i]) != len(b.ParamSinks[i]) {
			return false
		}
		for j := range a.ParamSinks[i] {
			if a.ParamSinks[i][j] != b.ParamSinks[i][j] {
				return false
			}
		}
	}
	return true
}

// taintState maps in-scope objects to their taint masks.
type taintState map[types.Object]Mask

func cloneState(s taintState) taintState {
	out := make(taintState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// mergeInto unions src into dst, reporting whether dst changed.
func mergeInto(dst, src taintState) bool {
	changed := false
	for k, v := range src {
		if dst[k]|v != dst[k] {
			dst[k] |= v
			changed = true
		}
	}
	return changed
}

// analysis is the per-function transfer state shared by the summary
// and reporting passes.
type analysis struct {
	t       *Taint
	fi      *FuncInfo
	info    *types.Info
	g       *Graph
	params  map[types.Object]int
	results []types.Object // named result objects (nil when unnamed)
	collect bool

	sum      *Summary
	findings []Finding
}

// analyzeFunc runs the intraprocedural solve for one function and
// returns its summary (and, when collect is set, its findings).
func (t *Taint) analyzeFunc(fi *FuncInfo, collect bool) (*Summary, []Finding) {
	a := &analysis{
		t:       t,
		fi:      fi,
		info:    fi.Pkg.Info,
		g:       t.cfgOf(fi),
		params:  make(map[types.Object]int),
		collect: collect,
	}
	a.indexParams()
	sig := fi.Obj.Type().(*types.Signature)
	a.sum = &Summary{
		Fn:         fi.Obj,
		NumParams:  len(a.params),
		Results:    make([]Mask, sig.Results().Len()),
		ParamOut:   make([]Mask, a.numParamSlots()),
		ParamSinks: make([][]SinkRef, a.numParamSlots()),
	}

	// Forward union-meet fixpoint over the CFG: in[b] only grows, the
	// transfer is a deterministic function of it, so the solve
	// terminates at the least fixpoint.
	in := make(map[*Block]taintState, len(a.g.Blocks))
	for _, b := range a.g.Blocks {
		in[b] = make(taintState)
	}
	for obj, idx := range a.params {
		in[a.g.Entry][obj] = ParamBit(idx)
	}
	work := make([]*Block, 0, len(a.g.Blocks))
	inWork := make(map[*Block]bool, len(a.g.Blocks))
	push := func(b *Block) {
		if !inWork[b] {
			inWork[b] = true
			work = append(work, b)
		}
	}
	push(a.g.Entry)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		st := cloneState(in[b])
		for _, n := range b.Nodes {
			a.transfer(n, b, st, false)
		}
		for _, s := range b.Succs {
			if mergeInto(in[s], st) {
				push(s)
			}
		}
	}

	// Deterministic final pass over the converged states: summary
	// outputs and findings are recorded exactly once per node.
	for _, b := range a.g.Blocks {
		st := cloneState(in[b])
		for _, n := range b.Nodes {
			a.transfer(n, b, st, true)
		}
	}
	return a.sum, a.findings
}

// numParamSlots returns the summary slot count (clamped like ParamBit).
func (a *analysis) numParamSlots() int {
	n := len(a.params)
	if n > maxParamBits {
		n = maxParamBits
	}
	return n
}

// indexParams assigns bit indices: receiver first, then parameters in
// declaration order, and records named result objects.
func (a *analysis) indexParams() {
	idx := 0
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				idx++ // unnamed parameter still occupies a slot
				continue
			}
			for _, name := range f.Names {
				if obj := a.info.Defs[name]; obj != nil {
					a.params[obj] = idx
				}
				idx++
			}
		}
	}
	addFields(a.fi.Decl.Recv)
	addFields(a.fi.Decl.Type.Params)
	if res := a.fi.Decl.Type.Results; res != nil {
		for _, f := range res.List {
			if len(f.Names) == 0 {
				a.results = append(a.results, nil)
				continue
			}
			for _, name := range f.Names {
				a.results = append(a.results, a.info.Defs[name])
			}
		}
	}
}

// transfer interprets one block node against st, mutating it in place.
// When record is set, summary outputs and findings are collected.
func (a *analysis) transfer(n ast.Node, blk *Block, st taintState, record bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.scanSinks(n, blk, st, record)
		a.applyAssign(n, st, record)
	case *ast.DeclStmt:
		a.scanSinks(n, blk, st, record)
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				a.applyValueSpec(vs, st)
			}
		}
	case *ast.ExprStmt:
		a.scanSinks(n, blk, st, record)
	case *ast.ReturnStmt:
		a.scanSinks(n, blk, st, record)
		if record {
			a.recordReturn(n, st)
		}
	case *ast.RangeStmt:
		// Only the ranged expression and the key/value bindings belong
		// to this node; the body is decomposed into its own blocks, so
		// neither sinks nor sanitizers inside it may be applied here.
		xMask := a.exprMask(n.X, st)
		if n.Value != nil {
			a.setObj(n.Value, st, xMask)
		}
		if n.Key != nil {
			keyMask := Mask(0)
			if t, ok := a.info.Types[n.X]; ok && t.Type != nil {
				if _, isMap := t.Type.Underlying().(*types.Map); isMap {
					keyMask = xMask
				}
			}
			a.setObj(n.Key, st, keyMask)
		}
		a.sanitizeCompared(n.X, st)
		return
	case *ast.DeferStmt:
		a.scanSinks(n.Call, blk, st, record)
		a.sanitizeCompared(n.Call, st)
		return
	case *ast.GoStmt:
		a.scanSinks(n.Call, blk, st, record)
		a.sanitizeCompared(n.Call, st)
		return
	case *ast.SendStmt, *ast.IncDecStmt, *ast.LabeledStmt:
		a.scanSinks(n, blk, st, record)
	case ast.Expr:
		// A standalone expression node is a branch condition, switch
		// tag, or case expression.
		a.scanSinks(n, blk, st, record)
		a.sanitizeCompared(n, st)
		return
	default:
		if s, ok := n.(ast.Stmt); ok {
			a.scanSinks(s, blk, st, record)
		}
	}
	a.sanitizeCompared(n, st)
}

// applyValueSpec handles `var x = expr` declarations.
func (a *analysis) applyValueSpec(vs *ast.ValueSpec, st taintState) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			masks := a.resultMasks(call, st, len(vs.Names))
			for i, name := range vs.Names {
				a.setDef(name, st, masks[i])
			}
			return
		}
	}
	for i, name := range vs.Names {
		m := Mask(0)
		if i < len(vs.Values) {
			m = a.exprMask(vs.Values[i], st)
		}
		a.setDef(name, st, m)
	}
}

// applyAssign updates st for one assignment, consulting callee
// summaries for multi-value calls and recording pointer-param writes.
func (a *analysis) applyAssign(as *ast.AssignStmt, st taintState, record bool) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			masks := a.resultMasks(call, st, len(as.Lhs))
			for i, lhs := range as.Lhs {
				a.assignTo(lhs, st, masks[i], record)
			}
			return
		}
		// Multi-value from a map/type assertion: first value carries
		// the container's mask, the ok bool is clean.
		m := a.exprMask(as.Rhs[0], st)
		a.assignTo(as.Lhs[0], st, m, record)
		for _, lhs := range as.Lhs[1:] {
			a.assignTo(lhs, st, 0, record)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		m := a.exprMask(as.Rhs[i], st)
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			a.assignTo(lhs, st, m, record)
		default:
			// Compound assignment widens the target's mask.
			if obj := a.lhsObject(lhs); obj != nil {
				st[obj] |= m
			}
		}
	}
}

// assignTo writes mask m to the assignment target: plain variables get
// m; a write through a pointer parameter is recorded in ParamOut;
// field and element writes drop the mask (holders are not tainted
// wholesale — see the package approximation note).
func (a *analysis) assignTo(lhs ast.Expr, st taintState, m Mask, record bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		if obj := a.lhsObject(lhs); obj != nil {
			if isErrorType(obj.Type()) {
				m = 0
			}
			st[obj] = m
		}
	case *ast.StarExpr:
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			if obj := a.info.Uses[id]; obj != nil {
				if idx, isParam := a.params[obj]; isParam {
					if record && idx < len(a.sum.ParamOut) {
						a.sum.ParamOut[idx] |= m
					}
					return
				}
				// Writing through a local pointer taints its pointee
				// object when the pointer was taken from a local.
				st[obj] |= m
			}
		}
	}
}

// lhsObject resolves an identifier target to its object.
func (a *analysis) lhsObject(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := a.info.Defs[id]; obj != nil {
		return obj
	}
	return a.info.Uses[id]
}

// setObj assigns mask m to the object behind expression e (used for
// range bindings).
func (a *analysis) setObj(e ast.Expr, st taintState, m Mask) {
	if obj := a.lhsObject(e); obj != nil {
		st[obj] = m
	}
}

// setDef assigns mask m to a declared name.
func (a *analysis) setDef(name *ast.Ident, st taintState, m Mask) {
	if obj := a.info.Defs[name]; obj != nil && !isErrorType(obj.Type()) {
		st[obj] = m
	}
}

// recordReturn merges the return expressions' masks into the summary.
func (a *analysis) recordReturn(ret *ast.ReturnStmt, st taintState) {
	if len(ret.Results) == 0 {
		// Bare return: named results carry their current masks.
		for i, obj := range a.results {
			if obj != nil && i < len(a.sum.Results) {
				a.sum.Results[i] |= st[obj]
			}
		}
		return
	}
	if len(ret.Results) == 1 && len(a.sum.Results) > 1 {
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			masks := a.resultMasks(call, st, len(a.sum.Results))
			for i := range a.sum.Results {
				a.sum.Results[i] |= masks[i]
			}
			return
		}
	}
	for i, e := range ret.Results {
		if i < len(a.sum.Results) {
			a.sum.Results[i] |= a.exprMask(e, st)
		}
	}
}

// sanitizeCompared clears taint from objects mentioned in ordered
// comparisons anywhere in the node — the bounds-check idiom. The
// comparison lives at a definite program point, so every block it
// dominates sees the cleared state; paths that bypass it keep theirs.
func (a *analysis) sanitizeCompared(n ast.Node, st taintState) {
	ast.Inspect(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		be, ok := sub.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			a.clearIdents(be.X, st)
			a.clearIdents(be.Y, st)
		}
		return true
	})
}

// clearIdents drops taint from every identifier mentioned in e.
func (a *analysis) clearIdents(e ast.Expr, st taintState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := a.info.Uses[id]; obj != nil {
				delete(st, obj)
			}
		}
		return true
	})
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
