// Package flow is the shared flow-analysis infrastructure of mlocvet's
// second-generation analyzers: a go/types-based static call graph over
// every loaded package plus a structured per-function statement walk
// that tracks which mutexes are held at each point.
//
// The package deliberately mirrors internal/lint's constraints — only
// the standard library (go/ast, go/token, go/types) — and deliberately
// does NOT import internal/lint, so the dependency arrow runs
// lint → flow and the analyzers in internal/lint can build on both.
//
// The analyses are intentionally approximate in the usual linter way:
//
//   - The call graph is static: only calls that resolve to a named
//     *types.Func (direct calls, method calls on concrete receivers)
//     produce edges; calls through interfaces or function values do
//     not.
//   - The held-lock walk is a structured must-hold analysis: branches
//     merge by intersection, branches that terminate (return, panic,
//     break/continue, or a select/switch whose every arm terminates)
//     do not merge, and deferred unlocks are treated as keeping the
//     lock held to the end of the function.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PackageInfo is flow's view of one loaded, type-checked package. It
// mirrors internal/lint's Package without importing it.
type PackageInfo struct {
	// Path is the package's import path.
	Path string
	// Fset is the shared file set.
	Fset *token.FileSet
	// Files are the parsed non-test files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type checker's facts.
	Info *types.Info
}

// FuncInfo is one function or method declaration with a body, plus its
// statically resolved callees.
type FuncInfo struct {
	// Pkg is the declaring package.
	Pkg *PackageInfo
	// Decl is the declaration (Body is non-nil).
	Decl *ast.FuncDecl
	// Obj is the type checker's object for the function.
	Obj *types.Func
	// Callees lists the statically resolved called functions, in
	// source order, possibly with duplicates.
	Callees []*types.Func
}

// Program is the whole-program view the flow-aware analyzers share.
type Program struct {
	// Fset is the shared file set.
	Fset *token.FileSet
	// Pkgs are the analyzed packages in load order.
	Pkgs []*PackageInfo
	// Funcs indexes every declared function with a body.
	Funcs map[*types.Func]*FuncInfo
}

// BuildProgram resolves the static call graph over pkgs.
func BuildProgram(pkgs []*PackageInfo) *Program {
	p := &Program{Funcs: make(map[*types.Func]*FuncInfo)}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	p.Pkgs = pkgs
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Pkg: pkg, Decl: fd, Obj: obj}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := CalleeOf(pkg.Info, call); callee != nil {
						fi.Callees = append(fi.Callees, callee)
					}
					return true
				})
				p.Funcs[obj] = fi
			}
		}
	}
	return p
}

// CalleeOf resolves a call expression to the called named function, or
// nil when the callee is dynamic (interface method value, function
// value, conversion, builtin).
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Reachable returns the set of declared functions transitively callable
// from `from` (excluding `from` itself unless it is recursive).
func (p *Program) Reachable(from *types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		fi := p.Funcs[fn]
		if fi == nil {
			return
		}
		for _, c := range fi.Callees {
			if !seen[c] {
				seen[c] = true
				visit(c)
			}
		}
	}
	visit(from)
	return seen
}

// FuncOf returns the enclosing declared function of a node position
// within pkg, or nil for package-level code.
func FuncOf(pkg *PackageInfo, pos token.Pos) *ast.FuncDecl {
	for _, f := range pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil &&
				pos >= fd.Pos() && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// QualifiedName renders a function as pkg.Recv.Name for diagnostics.
func QualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := recvTypeName(fn); recv != "" {
		return fmt.Sprintf("%s.%s.%s", fn.Pkg().Path(), recv, fn.Name())
	}
	return fmt.Sprintf("%s.%s", fn.Pkg().Path(), fn.Name())
}

// recvTypeName returns the receiver's base type name, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
