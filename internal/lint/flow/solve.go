package flow

import "go/ast"

// EventClassifier maps one AST node to the named events it generates.
// The solver applies it to every sub-node of every block node (not
// descending into nested function literals or go statements, whose
// bodies run under their own control flow), so a classifier only ever
// inspects a single node at a time.
type EventClassifier func(ast.Node) []string

// nodeEvents splits one block node's events into those that occur when
// the node executes (imm) and those a defer registers to occur at
// function exit (def).
type nodeEvents struct {
	imm map[string]bool
	def map[string]bool
}

// MustFacts is the result of the generic "must happen on every path"
// dataflow analysis over one function graph: an intersection-meet
// solve in both directions, with deferred events credited at their
// registration points (a registered defer runs on every exit from that
// point on, panics included).
type MustFacts struct {
	g      *Graph
	events map[*Block][]nodeEvents
	// toExit[b] holds the events guaranteed on every path from the
	// start of b to Exit (backward must analysis).
	toExit map[*Block]map[string]bool
	// defIn[b] holds the deferred events registered on every path from
	// Entry to the start of b (forward must analysis over defers only).
	defIn map[*Block]map[string]bool
	// universe is every event the classifier produced anywhere.
	universe map[string]bool
}

// SolveMust runs the must-happen dataflow analysis of classify's
// events over g.
func SolveMust(g *Graph, classify EventClassifier) *MustFacts {
	m := &MustFacts{
		g:        g,
		events:   make(map[*Block][]nodeEvents, len(g.Blocks)),
		universe: make(map[string]bool),
	}
	for _, blk := range g.Blocks {
		evs := make([]nodeEvents, len(blk.Nodes))
		for i, n := range blk.Nodes {
			imm, def := eventsOf(n, classify)
			evs[i] = nodeEvents{imm: imm, def: def}
			for e := range imm {
				m.universe[e] = true
			}
			for e := range def {
				m.universe[e] = true
			}
		}
		m.events[blk] = evs
	}
	m.toExit = m.solveToExit()
	m.defIn = m.solveDefIn()
	return m
}

// eventsOf collects a block node's events, separating deferred ones.
// The walk prunes nested function literals and go statements (their
// bodies execute under separate control flow) except under a defer,
// where a deferred closure's whole body runs at function exit.
func eventsOf(n ast.Node, classify EventClassifier) (imm, def map[string]bool) {
	imm = make(map[string]bool)
	def = make(map[string]bool)
	var walk func(root ast.Node, deferred bool)
	walk = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(sub ast.Node) bool {
			if sub == nil {
				return false
			}
			set := imm
			if deferred {
				set = def
			}
			switch sub := sub.(type) {
			case *ast.DeferStmt:
				if sub != root {
					walk(sub.Call, true)
					return false
				}
			case *ast.GoStmt:
				for _, e := range classify(sub) {
					set[e] = true
				}
				return false
			case *ast.FuncLit, *ast.BlockStmt:
				// Nested bodies belong to other blocks (or other
				// functions); a deferred subtree runs whole at exit.
				if !deferred {
					return false
				}
			}
			for _, e := range classify(sub) {
				set[e] = true
			}
			return true
		})
	}
	if d, ok := n.(*ast.DeferStmt); ok {
		walk(d.Call, true)
	} else {
		walk(n, false)
	}
	return imm, def
}

// gen returns the union of a block's immediate and deferred events.
func (m *MustFacts) gen(blk *Block) map[string]bool {
	out := make(map[string]bool)
	for _, ev := range m.events[blk] {
		for e := range ev.imm {
			out[e] = true
		}
		for e := range ev.def {
			out[e] = true
		}
	}
	return out
}

// solveToExit runs the backward intersection-meet fixpoint: an event is
// in toExit[b] when every path from the start of b to Exit produces it.
// Blocks with no path to Exit (infinite loops) keep the universe —
// requirements on paths that never exit hold vacuously.
func (m *MustFacts) solveToExit() map[*Block]map[string]bool {
	out := make(map[*Block]map[string]bool, len(m.g.Blocks))
	for _, blk := range m.g.Blocks {
		out[blk] = copySet(m.universe)
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range m.g.Blocks {
			next := m.gen(blk)
			if blk != m.g.Exit {
				if len(blk.Succs) == 0 {
					next = copySet(m.universe)
				} else {
					for e := range intersectSets(out, blk.Succs) {
						next[e] = true
					}
				}
			}
			if len(next) != len(out[blk]) {
				out[blk] = next
				changed = true
			}
		}
	}
	return out
}

// solveDefIn runs the forward intersection-meet fixpoint over deferred
// events only: an event is in defIn[b] when a defer producing it is
// registered on every path from Entry to the start of b.
func (m *MustFacts) solveDefIn() map[*Block]map[string]bool {
	in := make(map[*Block]map[string]bool, len(m.g.Blocks))
	outs := make(map[*Block]map[string]bool, len(m.g.Blocks))
	for _, blk := range m.g.Blocks {
		in[blk] = copySet(m.universe)
		outs[blk] = copySet(m.universe)
	}
	in[m.g.Entry] = make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, blk := range m.g.Blocks {
			next := in[blk]
			if blk != m.g.Entry && len(blk.Preds) > 0 {
				next = intersectSets(outs, blk.Preds)
			}
			in[blk] = next
			nextOut := copySet(next)
			for _, ev := range m.events[blk] {
				for e := range ev.def {
					nextOut[e] = true
				}
			}
			if len(nextOut) != len(outs[blk]) {
				outs[blk] = nextOut
				changed = true
			}
		}
	}
	return in
}

// OnEveryPath reports whether event occurs — or a defer producing it
// is registered — on every path from Entry to Exit.
func (m *MustFacts) OnEveryPath(event string) bool {
	return m.toExit[m.g.Entry][event]
}

// OnEveryPathFrom reports whether event is guaranteed on every path
// from the trigger node to Exit: it occurs later on all paths, or a
// defer producing it is registered before the trigger (and thus runs
// at every subsequent exit). A trigger the graph does not contain
// (e.g. inside a nested function literal) reports true — the caller
// should analyze that body with its own graph.
func (m *MustFacts) OnEveryPathFrom(trigger ast.Node, event string) bool {
	blk, idx := m.locate(trigger)
	if blk == nil {
		return true
	}
	evs := m.events[blk]
	for j := idx + 1; j < len(evs); j++ {
		if evs[j].imm[event] || evs[j].def[event] {
			return true
		}
	}
	for j := 0; j <= idx; j++ {
		if evs[j].def[event] {
			return true
		}
	}
	if m.defIn[blk][event] {
		return true
	}
	if len(blk.Succs) == 0 {
		// No path from here to Exit: vacuously satisfied.
		return true
	}
	for _, s := range blk.Succs {
		if !m.toExit[s][event] {
			return false
		}
	}
	return true
}

// locate finds the block node containing the trigger by position.
func (m *MustFacts) locate(trigger ast.Node) (*Block, int) {
	for _, blk := range m.g.Blocks {
		for i, n := range blk.Nodes {
			if n.Pos() <= trigger.Pos() && trigger.End() <= n.End() {
				return blk, i
			}
		}
	}
	return nil, 0
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for e := range s {
		out[e] = true
	}
	return out
}

// intersectSets intersects the sets of the given blocks.
func intersectSets(sets map[*Block]map[string]bool, blocks []*Block) map[string]bool {
	out := copySet(sets[blocks[0]])
	for _, blk := range blocks[1:] {
		s := sets[blk]
		for e := range out {
			if !s[e] {
				delete(out, e)
			}
		}
	}
	return out
}
