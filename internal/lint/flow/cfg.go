package flow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block of a function's control-flow graph. Nodes
// holds the block's statements and controlling expressions in source
// order; nested control-flow statements are decomposed into further
// blocks and do not appear as Nodes (their conditions do). Analyzers
// scan Nodes with EventsOf-style walks that do not descend into nested
// function literals, because those bodies get their own graphs.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Kind labels the block's structural role ("entry", "if.then",
	// "for.head", ...) for tests and debugging.
	Kind string
	// Nodes are the block's statements and controlling expressions.
	Nodes []ast.Node
	// Succs are the control-flow successors.
	Succs []*Block
	// Preds are the control-flow predecessors.
	Preds []*Block
}

// Graph is the control-flow graph of one function body. Entry starts
// the body; every return, panic, and fall-off-the-end edge leads to
// Exit. Deferred statements are recorded in Defers and additionally
// appear as Nodes at their registration points.
type Graph struct {
	// Entry is the unique entry block.
	Entry *Block
	// Exit is the unique exit block (no Nodes).
	Exit *Block
	// Blocks lists every block, Entry and Exit included.
	Blocks []*Block
	// Defers are the body's defer statements in source order.
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the control-flow graph of a function body
// (a *ast.FuncDecl or *ast.FuncLit Body). The construction is purely
// syntactic: if/for/range/switch/type-switch/select branch and merge,
// labeled break/continue/goto/fallthrough jump, return and explicit
// terminator calls (panic, os.Exit, log.Fatal*) edge to Exit. An
// infinite loop with no break has no edge to the code after it.
func BuildCFG(body *ast.BlockStmt) *Graph {
	b := &cfgBuilder{
		g:            &Graph{},
		labelBlocks:  make(map[string]*Block),
		pendingGotos: make(map[string][]*Block),
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	return b.g
}

// frame is one enclosing breakable construct (loop, switch, select).
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type cfgBuilder struct {
	g   *Graph
	cur *Block // nil while the walker is past a terminator

	frames        []*frame
	pendingLabel  string
	labelBlocks   map[string]*Block
	pendingGotos  map[string][]*Block
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// block returns the current block, opening an unreachable one when the
// walker is past a terminator (dead code still gets blocks, with no
// predecessors, so its nodes remain inspectable).
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock opens a new block as the fall-through successor of the
// current one.
func (b *cfgBuilder) startBlock(kind string) *Block {
	nb := b.newBlock(kind)
	if b.cur != nil {
		b.edge(b.cur, nb)
	}
	b.cur = nb
	return nb
}

// seal enters join if anything reaches it, and marks the walker dead
// otherwise.
func (b *cfgBuilder) seal(join *Block) {
	if len(join.Preds) == 0 {
		b.cur = nil
	} else {
		b.cur = join
	}
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushFrame(label string, breakTo, continueTo *Block) {
	b.frames = append(b.frames, &frame{label: label, breakTo: breakTo, continueTo: continueTo})
}

func (b *cfgBuilder) popFrame() {
	b.frames = b.frames[:len(b.frames)-1]
}

// findFrame resolves the target of a break (needContinue false) or
// continue (true), honoring an optional label.
func (b *cfgBuilder) findFrame(label *ast.Ident, needContinue bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		name := s.Label.Name
		lb := b.startBlock("label." + name)
		b.labelBlocks[name] = lb
		for _, src := range b.pendingGotos[name] {
			b.edge(src, lb)
		}
		delete(b.pendingGotos, name)
		b.pendingLabel = name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.block(), b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminatorCall(call) {
			b.edge(b.block(), b.g.Exit)
			b.cur = nil
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		// Assignments, declarations, sends, inc/dec, go statements.
		b.add(s)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if f := b.findFrame(s.Label, false); f != nil {
			b.edge(b.block(), f.breakTo)
		}
	case token.CONTINUE:
		if f := b.findFrame(s.Label, true); f != nil {
			b.edge(b.block(), f.continueTo)
		}
	case token.GOTO:
		name := s.Label.Name
		if lb := b.labelBlocks[name]; lb != nil {
			b.edge(b.block(), lb)
		} else {
			b.pendingGotos[name] = append(b.pendingGotos[name], b.block())
		}
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.edge(b.block(), b.fallthroughTo)
		}
	}
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.stmt(s.Init)
	b.add(s.Cond)
	cond := b.block()
	join := b.newBlock("if.join")
	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, join)
	}
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	} else {
		b.edge(cond, join)
	}
	b.seal(join)
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	b.stmt(s.Init)
	head := b.startBlock("for.head")
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock("for.body")
	post := b.newBlock("for.post")
	join := b.newBlock("for.join")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, join)
	}
	b.pushFrame(label, join, post)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, post)
	}
	b.popFrame()
	b.cur = post
	b.stmt(s.Post)
	b.edge(b.block(), head)
	b.seal(join)
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.startBlock("range.head")
	// The RangeStmt itself is the head's node: its ranged expression is
	// visible to event walks, its body is decomposed below.
	b.add(s)
	body := b.newBlock("range.body")
	join := b.newBlock("range.join")
	b.edge(head, body)
	b.edge(head, join)
	b.pushFrame(label, join, head)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.popFrame()
	b.cur = join
}

func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.stmt(init)
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.block()
	join := b.newBlock("switch.join")
	b.pushFrame(label, join, nil)
	savedFall := b.fallthroughTo
	var clauses []*ast.CaseClause
	var caseBlocks []*Block
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		cb := b.newBlock("case")
		caseBlocks = append(caseBlocks, cb)
		b.edge(head, cb)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		// The zero-match path skips the whole switch.
		b.edge(head, join)
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(caseBlocks) {
			b.fallthroughTo = caseBlocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.fallthroughTo = savedFall
	b.popFrame()
	b.seal(join)
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.block()
	join := b.newBlock("select.join")
	b.pushFrame(label, join, nil)
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		cb := b.newBlock("select.case")
		b.edge(head, cb)
		b.cur = cb
		b.stmt(cc.Comm)
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.popFrame()
	// select{} blocks forever: join keeps no predecessors and the code
	// after it is unreachable.
	b.seal(join)
}

// isTerminatorCall recognizes calls that never return: panic,
// runtime.Goexit, os.Exit, and the log.Fatal family. The check is
// syntactic, matching the rest of the builder.
func isTerminatorCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" ||
			fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

// Dominators computes the dominator sets of g with the classic
// iterative dataflow: a block D dominates B when every path from Entry
// to B passes through D. Blocks unreachable from Entry keep the full
// block set (vacuously dominated by everything).
func Dominators(g *Graph) map[*Block]map[*Block]bool {
	all := make(map[*Block]bool, len(g.Blocks))
	for _, blk := range g.Blocks {
		all[blk] = true
	}
	dom := make(map[*Block]map[*Block]bool, len(g.Blocks))
	for _, blk := range g.Blocks {
		if blk == g.Entry {
			dom[blk] = map[*Block]bool{blk: true}
			continue
		}
		set := make(map[*Block]bool, len(all))
		for b := range all {
			set[b] = true
		}
		dom[blk] = set
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range g.Blocks {
			if blk == g.Entry || len(blk.Preds) == 0 {
				continue
			}
			next := intersectAll(dom, blk.Preds)
			next[blk] = true
			if len(next) != len(dom[blk]) {
				dom[blk] = next
				changed = true
			}
		}
	}
	return dom
}

// intersectAll intersects the sets of the given blocks.
func intersectAll(sets map[*Block]map[*Block]bool, blocks []*Block) map[*Block]bool {
	out := make(map[*Block]bool, len(sets[blocks[0]]))
	for b := range sets[blocks[0]] {
		out[b] = true
	}
	for _, blk := range blocks[1:] {
		s := sets[blk]
		for b := range out {
			if !s[b] {
				delete(out, b)
			}
		}
	}
	return out
}
