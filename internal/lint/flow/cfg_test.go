package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
	"testing"
)

// parseBody parses a snippet containing exactly one function named f
// and returns its body.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\n\nfunc f(c bool, n int, ch chan int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parsing snippet: %v\n%s", err, src)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fd.Body
		}
	}
	t.Fatal("no func f in snippet")
	return nil
}

func blocksOf(g *Graph, kind string) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

func oneBlock(t *testing.T, g *Graph, kind string) *Block {
	t.Helper()
	bs := blocksOf(g, kind)
	if len(bs) != 1 {
		t.Fatalf("want exactly one %q block, got %d", kind, len(bs))
	}
	return bs[0]
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// markClassifier recognizes mark("e") calls and emits the literal as
// the event name.
func markClassifier(n ast.Node) []string {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "mark" || len(call.Args) != 1 {
		return nil
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return nil
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return nil
	}
	return []string{s}
}

func TestCFGIfElse(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	mark("a")
	if c {
		mark("then")
	} else {
		mark("else")
	}
	mark("after")
`))
	then := oneBlock(t, g, "if.then")
	els := oneBlock(t, g, "if.else")
	join := oneBlock(t, g, "if.join")
	if !hasEdge(g.Entry, then) || !hasEdge(g.Entry, els) {
		t.Errorf("condition block does not branch to both arms")
	}
	if !hasEdge(then, join) || !hasEdge(els, join) {
		t.Errorf("arms do not merge at the join")
	}
	if !hasEdge(join, g.Exit) {
		t.Errorf("join does not fall through to exit")
	}
	if hasEdge(g.Entry, join) {
		t.Errorf("two-armed if must not edge condition directly to join")
	}
}

func TestCFGIfWithoutElseEdgesCondToJoin(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	if c {
		mark("then")
	}
	mark("after")
`))
	join := oneBlock(t, g, "if.join")
	if !hasEdge(g.Entry, join) {
		t.Errorf("else-less if needs the cond→join fall-through edge")
	}
}

func TestCFGIfBothArmsReturn(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	if c {
		return
	} else {
		panic("boom")
	}
`))
	join := oneBlock(t, g, "if.join")
	if len(join.Preds) != 0 {
		t.Errorf("join after return/panic arms should be unreachable, has %d preds", len(join.Preds))
	}
	then := oneBlock(t, g, "if.then")
	els := oneBlock(t, g, "if.else")
	if !hasEdge(then, g.Exit) || !hasEdge(els, g.Exit) {
		t.Errorf("return and panic must edge to exit")
	}
}

func TestCFGForLoop(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	for i := 0; i < n; i++ {
		if c {
			break
		}
		if i == 2 {
			continue
		}
		mark("body")
	}
	mark("after")
`))
	head := oneBlock(t, g, "for.head")
	body := oneBlock(t, g, "for.body")
	post := oneBlock(t, g, "for.post")
	join := oneBlock(t, g, "for.join")
	if !hasEdge(head, body) || !hasEdge(head, join) {
		t.Errorf("loop head must branch to body and join")
	}
	if !hasEdge(post, head) {
		t.Errorf("post block must loop back to head")
	}
	foundBreak, foundContinue := false, false
	for _, b := range blocksOf(g, "if.then") {
		if hasEdge(b, join) {
			foundBreak = true
		}
		if hasEdge(b, post) {
			foundContinue = true
		}
	}
	if !foundBreak {
		t.Errorf("break does not edge to the loop join")
	}
	if !foundContinue {
		t.Errorf("continue does not edge to the post block")
	}
}

func TestCFGInfiniteLoopHasNoJoinPath(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	for {
		mark("spin")
	}
`))
	join := oneBlock(t, g, "for.join")
	if len(join.Preds) != 0 {
		t.Errorf("for{} without break must leave the join unreachable")
	}
}

func TestCFGSwitch(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	switch n {
	case 1:
		mark("one")
		fallthrough
	case 2:
		mark("two")
	}
	mark("after")
`))
	cases := blocksOf(g, "case")
	if len(cases) != 2 {
		t.Fatalf("want 2 case blocks, got %d", len(cases))
	}
	join := oneBlock(t, g, "switch.join")
	if !hasEdge(cases[0], cases[1]) {
		t.Errorf("fallthrough does not edge to the next case")
	}
	if !hasEdge(g.Entry, join) {
		t.Errorf("switch without default needs the zero-match edge to join")
	}
	if !hasEdge(cases[1], join) {
		t.Errorf("final case does not reach the join")
	}
}

func TestCFGSwitchWithDefaultCoversAllPaths(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	switch n {
	case 1:
		mark("one")
	default:
		mark("other")
	}
`))
	join := oneBlock(t, g, "switch.join")
	if hasEdge(g.Entry, join) {
		t.Errorf("switch with default must not edge head directly to join")
	}
}

func TestCFGSelect(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	select {
	case v := <-ch:
		mark("recv")
		_ = v
	case ch <- n:
		mark("send")
	}
	mark("after")
`))
	cases := blocksOf(g, "select.case")
	if len(cases) != 2 {
		t.Fatalf("want 2 select case blocks, got %d", len(cases))
	}
	join := oneBlock(t, g, "select.join")
	for i, cb := range cases {
		if len(cb.Nodes) == 0 {
			t.Errorf("select case %d has no comm node", i)
		}
		if !hasEdge(cb, join) {
			t.Errorf("select case %d does not reach the join", i)
		}
	}
	if hasEdge(g.Entry, join) {
		t.Errorf("blocking select must not edge head directly to join")
	}
}

func TestCFGDeferRecorded(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	defer mark("cleanup")
	mark("work")
`))
	if len(g.Defers) != 1 {
		t.Fatalf("want 1 recorded defer, got %d", len(g.Defers))
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := BuildCFG(parseBody(t, `
outer:
	for {
		for {
			if c {
				break outer
			}
		}
	}
	mark("after")
`))
	joins := blocksOf(g, "for.join")
	if len(joins) != 2 {
		t.Fatalf("want 2 loop joins, got %d", len(joins))
	}
	// The outer join (created first) must be reachable via the labeled
	// break; the inner one must not.
	if len(joins[0].Preds) == 0 {
		t.Errorf("break outer does not reach the outer loop join")
	}
	if len(joins[1].Preds) != 0 {
		t.Errorf("inner loop join should be unreachable, has %d preds", len(joins[1].Preds))
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	if c {
		mark("then")
	} else {
		mark("else")
	}
	mark("after")
`))
	dom := Dominators(g)
	then := oneBlock(t, g, "if.then")
	els := oneBlock(t, g, "if.else")
	join := oneBlock(t, g, "if.join")
	if !dom[join][g.Entry] {
		t.Errorf("entry must dominate the join")
	}
	if dom[join][then] || dom[join][els] {
		t.Errorf("neither diamond arm may dominate the join")
	}
	if !dom[then][g.Entry] || !dom[els][g.Entry] {
		t.Errorf("entry must dominate both arms")
	}
	if !dom[g.Exit][join] {
		t.Errorf("the join must dominate exit in a straight-line diamond")
	}
	for _, b := range g.Blocks {
		if len(b.Preds) > 0 || b == g.Entry {
			if !dom[b][b] {
				t.Errorf("block %d (%s) does not dominate itself", b.Index, b.Kind)
			}
		}
	}
}

// TestSolveMustDiamondWithLoop is the synthetic diamond-with-loop
// convergence fixture: one arm returns early, the surviving arm runs a
// loop (zero or more iterations) before a common tail.
func TestSolveMustDiamondWithLoop(t *testing.T) {
	body := parseBody(t, `
	mark("a")
	if c {
		mark("b")
	} else {
		mark("c")
		return
	}
	for i := 0; i < n; i++ {
		mark("d")
	}
	mark("e")
`)
	g := BuildCFG(body)
	m := SolveMust(g, markClassifier)

	if !m.OnEveryPath("a") {
		t.Errorf("a occurs on every path but was not proven")
	}
	for _, ev := range []string{"b", "c", "d", "e"} {
		if m.OnEveryPath(ev) {
			t.Errorf("%s does not occur on every path but was proven", ev)
		}
	}
	markB := findMark(t, body, "b")
	if !m.OnEveryPathFrom(markB, "e") {
		t.Errorf("e must follow b on every path")
	}
	if m.OnEveryPathFrom(markB, "d") {
		t.Errorf("d is loop-conditional and must not be proven after b")
	}
	markA := findMark(t, body, "a")
	if m.OnEveryPathFrom(markA, "e") {
		t.Errorf("e must not be proven after a: the else arm returns first")
	}
}

// TestSolveMustDefer checks that deferred events count on every path
// from their registration point, including paths that branch later.
func TestSolveMustDefer(t *testing.T) {
	body := parseBody(t, `
	defer mark("z")
	mark("t")
	if c {
		return
	}
	mark("tail")
`)
	g := BuildCFG(body)
	m := SolveMust(g, markClassifier)
	if !m.OnEveryPath("z") {
		t.Errorf("deferred z runs on every path but was not proven")
	}
	markT := findMark(t, body, "t")
	if !m.OnEveryPathFrom(markT, "z") {
		t.Errorf("defer registered before t must satisfy the from-t query")
	}
	if m.OnEveryPathFrom(markT, "tail") {
		t.Errorf("tail is branch-conditional and must not be proven after t")
	}
}

// TestSolveMustDeferredClosure checks events inside a deferred closure
// body are credited (a deferred closure runs whole at exit).
func TestSolveMustDeferredClosure(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	defer func() {
		mark("cleanup")
	}()
	if c {
		return
	}
	mark("work")
`))
	m := SolveMust(g, markClassifier)
	if !m.OnEveryPath("cleanup") {
		t.Errorf("deferred closure event not proven on every path")
	}
}

// TestSolveMustIgnoresGoroutineBodies checks a spawned goroutine's
// events do not leak into the spawning function's facts.
func TestSolveMustIgnoresGoroutineBodies(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	go func() {
		mark("inner")
	}()
	mark("outer")
`))
	m := SolveMust(g, markClassifier)
	if m.OnEveryPath("inner") {
		t.Errorf("goroutine-body event wrongly credited to the spawner")
	}
	if !m.OnEveryPath("outer") {
		t.Errorf("spawner's own event not proven")
	}
}

func findMark(t *testing.T, body *ast.BlockStmt, event string) ast.Node {
	t.Helper()
	var found ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if evs := markClassifier(call); len(evs) == 1 && evs[0] == event {
			found = call
			return false
		}
		return true
	})
	if found == nil {
		t.Fatalf("no mark(%q) in snippet", event)
	}
	return found
}

// TestSolveMustTerminatesOnIrreducibleFlow guards solver convergence on
// goto-made loops (irreducible control flow must still reach fixpoint).
func TestSolveMustTerminatesOnIrreducibleFlow(t *testing.T) {
	g := BuildCFG(parseBody(t, `
	if c {
		goto second
	}
first:
	mark("a")
	goto done
second:
	mark("b")
	if n > 0 {
		goto first
	}
done:
	mark("tail")
`))
	m := SolveMust(g, markClassifier)
	if !m.OnEveryPath("tail") {
		t.Errorf("tail runs before every exit but was not proven")
	}
	if m.OnEveryPath("a") || m.OnEveryPath("b") {
		t.Errorf("branch-dependent marks must not be proven on every path")
	}
	if !strings.Contains(blocksSummary(g), "label.done") {
		t.Errorf("labels did not produce label blocks: %s", blocksSummary(g))
	}
}

func blocksSummary(g *Graph) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		sb.WriteString(b.Kind)
		sb.WriteByte(' ')
	}
	return sb.String()
}
