package flow

// taint_rules.go holds the expression evaluator and the source /
// propagator / sanitizer / sink tables of the taint engine. Computed
// summaries always take precedence; the name-based rules here cover
// callees whose bodies are outside the analyzed program (the standard
// library, bodyless fixture declarations).

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// exprMask evaluates the taint mask of expression e under state st.
func (a *analysis) exprMask(e ast.Expr, st taintState) Mask {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := a.info.Uses[e]; obj != nil {
			return st[obj]
		}
		return 0
	case *ast.BasicLit, *ast.FuncLit:
		return 0
	case *ast.UnaryExpr:
		return a.exprMask(e.X, st)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ,
			token.LAND, token.LOR:
			return 0 // booleans carry no interesting taint
		}
		return a.exprMask(e.X, st) | a.exprMask(e.Y, st)
	case *ast.CallExpr:
		masks := a.resultMasks(e, st, 1)
		return masks[0]
	case *ast.SelectorExpr:
		return a.selectorMask(e, st)
	case *ast.IndexExpr:
		// An element of a tainted container is tainted.
		return a.exprMask(e.X, st)
	case *ast.SliceExpr:
		return a.exprMask(e.X, st)
	case *ast.StarExpr:
		return a.exprMask(e.X, st)
	case *ast.TypeAssertExpr:
		return a.exprMask(e.X, st)
	case *ast.CompositeLit:
		var m Mask
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= a.exprMask(kv.Value, st)
				continue
			}
			m |= a.exprMask(el, st)
		}
		return m
	}
	return 0
}

// selectorMask evaluates a field read or method value: data carried by
// an *http.Request or *http.Response is an untrusted source, a field
// of a *Wire struct is decoded network payload (matching the wiresize
// source model), and any other field read propagates its base's mask.
func (a *analysis) selectorMask(sel *ast.SelectorExpr, st taintState) Mask {
	if _, ok := a.info.Selections[sel]; !ok {
		// Package-qualified name (io.Discard, http.MethodPost, ...).
		return 0
	}
	if a.isHTTPDataField(sel) || a.isWireField(sel) {
		return SourceBit
	}
	return a.exprMask(sel.X, st)
}

// httpRequestFields and httpResponseFields are the attacker-controlled
// fields; Context, Close, StatusCode-adjacent plumbing stays clean.
var httpRequestFields = map[string]bool{
	"Body": true, "Header": true, "URL": true, "Form": true,
	"PostForm": true, "MultipartForm": true, "Trailer": true,
	"RemoteAddr": true, "RequestURI": true, "Host": true,
	"ContentLength": true,
}

var httpResponseFields = map[string]bool{
	"Body": true, "Header": true, "Trailer": true, "Status": true,
	"ContentLength": true,
}

// isHTTPDataField reports whether sel reads attacker-controlled data
// off an http.Request or http.Response value.
func (a *analysis) isHTTPDataField(sel *ast.SelectorExpr) bool {
	tv, ok := a.info.Types[sel.X]
	if !ok {
		return false
	}
	switch httpTypeName(tv.Type) {
	case "net/http.Request":
		return httpRequestFields[sel.Sel.Name]
	case "net/http.Response":
		return httpResponseFields[sel.Sel.Name]
	}
	return false
}

// isWireField reports whether sel reads a field of a wire-decoded
// struct (a named struct type whose name ends in "Wire").
func (a *analysis) isWireField(sel *ast.SelectorExpr) bool {
	s, ok := a.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && strings.HasSuffix(named.Obj().Name(), "Wire")
}

// httpTypeName renders t as pkgpath.Name after stripping pointers and
// aliases, or "" for non-named types.
func httpTypeName(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// resultMasks evaluates a call's result masks (n slots). Precedence:
// conversions, builtins, computed summaries, then name-based rules.
func (a *analysis) resultMasks(call *ast.CallExpr, st taintState, n int) []Mask {
	out := make([]Mask, n)
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: time.Duration(n), uint64(n), ...
		if len(call.Args) == 1 {
			out[0] = a.exprMask(call.Args[0], st)
		}
		return out
	}
	if m, ok := a.builtinMask(call, st); ok {
		out[0] = m
		return out
	}
	callee := CalleeOf(a.info, call)
	if callee != nil {
		if sum := a.t.sums[callee]; sum != nil {
			argMasks := a.argMasks(call, callee, st)
			for i := range out {
				if i < len(sum.Results) {
					out[i] = instantiate(sum.Results[i], argMasks)
				}
			}
			return out
		}
		out[0] = a.namedRuleMask(call, callee, st)
		return out
	}
	// Dynamic call: a method on a tainted receiver yields tainted data
	// (url.Values.Get, bytes.Buffer.String via interfaces, ...).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := a.info.Selections[sel]; isSel {
			out[0] = a.exprMask(sel.X, st)
		}
	}
	return out
}

// builtinMask handles calls to builtins; ok is false for non-builtins.
// len and cap of a tainted container are clean (their magnitude is
// bounded by bytes actually received); min is clean when any argument
// is clean (the clamp idiom); max and append union their arguments.
func (a *analysis) builtinMask(call *ast.CallExpr, st taintState) (Mask, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return 0, false
	}
	if _, ok := a.info.Uses[id].(*types.Builtin); !ok {
		return 0, false
	}
	switch id.Name {
	case "len", "cap", "new", "make", "copy", "recover", "complex", "real", "imag":
		return 0, true
	case "min":
		var m Mask
		for _, arg := range call.Args {
			am := a.exprMask(arg, st)
			if am == 0 {
				return 0, true
			}
			m |= am
		}
		return m, true
	case "max", "append":
		var m Mask
		for _, arg := range call.Args {
			m |= a.exprMask(arg, st)
		}
		return m, true
	}
	return 0, true
}

// sourceNames is the wire-decode source family (shared with wiresize):
// the first result of these carries an attacker-chosen count.
var sourceNames = map[string]bool{
	"uvarint": true, "varint": true, "readuvarint": true, "readvarint": true,
}

// sanitizerNames are bounded-by-construction helpers: their results
// are clean no matter what flows in.
var sanitizerNames = map[string]bool{
	"limitreader": true, "maxbytesreader": true,
	"decodebytesmax": true, "uvarintmax": true,
}

// requestMethods are http.Request methods returning attacker data.
var requestMethods = map[string]bool{
	"FormValue": true, "PostFormValue": true, "Cookie": true,
	"Cookies": true, "Referer": true, "UserAgent": true, "BasicAuth": true,
}

// namedRuleMask is the name-based model for callees without bodies in
// the program (first result only; the rest default to clean).
func (a *analysis) namedRuleMask(call *ast.CallExpr, callee *types.Func, st taintState) Mask {
	name := callee.Name()
	lower := strings.ToLower(name)
	if sanitizerNames[lower] {
		return 0
	}
	if sourceNames[lower] {
		return SourceBit
	}
	pkg := ""
	if callee.Pkg() != nil {
		pkg = callee.Pkg().Path()
	}
	recvMask := Mask(0)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := a.info.Selections[sel]; isSel {
			recvMask = a.exprMask(sel.X, st)
			if tv, ok := a.info.Types[sel.X]; ok && tv.Type != nil &&
				httpTypeName(tv.Type) == "net/http.Request" && requestMethods[name] {
				return SourceBit
			}
		}
	}
	orArgs := func() Mask {
		m := Mask(0)
		for _, arg := range call.Args {
			m |= a.exprMask(arg, st)
		}
		return m
	}
	arg0 := func() Mask {
		if len(call.Args) > 0 {
			return a.exprMask(call.Args[0], st)
		}
		return 0
	}
	switch pkg {
	case "encoding/json":
		if name == "NewDecoder" || name == "Marshal" || name == "MarshalIndent" {
			return arg0()
		}
	case "io":
		switch name {
		case "ReadAll", "ReadFull":
			return arg0() | recvMask
		}
	case "bufio":
		switch name {
		case "NewReader", "NewReaderSize", "NewScanner":
			return arg0()
		}
	case "bytes", "strings", "fmt":
		return orArgs() | recvMask
	case "strconv":
		return orArgs()
	case "time":
		if name == "ParseDuration" {
			return arg0()
		}
	case "encoding/binary":
		// binary.LittleEndian.Uint32(b) and friends.
		if strings.HasPrefix(name, "Uint") || name == "PutUvarint" || name == "PutVarint" {
			return arg0()
		}
	}
	// Default: a method on a tainted receiver propagates the receiver's
	// mask (Header.Get, Values.Get, Buffer.String, ...); plain functions
	// outside the tables are clean.
	return recvMask
}

// argMasks maps call-site argument masks onto callee parameter slots
// (receiver first, variadic overflow folded into the last slot).
func (a *analysis) argMasks(call *ast.CallExpr, callee *types.Func, st taintState) []Mask {
	sig := callee.Type().(*types.Signature)
	slots := sig.Params().Len()
	offset := 0
	if sig.Recv() != nil {
		slots++
		offset = 1
	}
	masks := make([]Mask, slots)
	if offset == 1 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := a.info.Selections[sel]; isSel {
				masks[0] = a.exprMask(sel.X, st)
			}
		}
	}
	for i, arg := range call.Args {
		slot := offset + i
		if slot >= slots {
			slot = slots - 1 // variadic overflow
		}
		if slot >= 0 {
			masks[slot] |= a.exprMask(arg, st)
		}
	}
	return masks
}

// instantiate rewrites a callee-relative mask into the caller's frame:
// the source bit survives as-is, parameter bits become the masks of
// the arguments bound to them.
func instantiate(m Mask, argMasks []Mask) Mask {
	var out Mask
	if m.HasSource() {
		out |= SourceBit
	}
	for _, p := range m.paramIndices() {
		if p < len(argMasks) {
			out |= argMasks[p]
		}
	}
	return out
}

// scanSinks walks one block node: call side effects (decode fills,
// summary ParamOut writes) always apply; sink checks and summary
// ParamSinks/findings are collected only on the recording pass.
func (a *analysis) scanSinks(n ast.Node, blk *Block, st taintState, record bool) {
	ast.Inspect(n, func(sub ast.Node) bool {
		switch sub := sub.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			a.visitCall(sub, st, record)
		case *ast.IndexExpr:
			if !record {
				return true
			}
			if m := a.exprMask(sub.Index, st); m != 0 && a.isSequence(sub.X) {
				a.recordSink(SinkIndex, sub.Index.Pos(), a.render(sub.Index), m, "")
			}
		case *ast.SliceExpr:
			if !record {
				return true
			}
			for _, bound := range []ast.Expr{sub.Low, sub.High, sub.Max} {
				if bound == nil {
					continue
				}
				if m := a.exprMask(bound, st); m != 0 {
					a.recordSink(SinkSliceBound, bound.Pos(), a.render(bound), m, "")
				}
			}
		case *ast.BinaryExpr:
			if !record || blk.Kind != "for.head" {
				return true
			}
			switch sub.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				for _, op := range []ast.Expr{sub.X, sub.Y} {
					if m := a.exprMask(op, st); m != 0 {
						a.recordSink(SinkLoopBound, op.Pos(), a.render(op), m, "")
					}
				}
			}
		}
		return true
	})
}

// visitCall applies one call's effects: make/sleep/label sinks, callee
// ParamSinks propagated to the caller's frame, and pointer fills.
func (a *analysis) visitCall(call *ast.CallExpr, st taintState, record bool) {
	if record {
		a.checkMakeSink(call, st)
	}
	callee := CalleeOf(a.info, call)
	if callee == nil {
		return
	}
	if record {
		// Named sinks (time.Sleep durations, obs label values) apply
		// whether or not the callee is summarized: the obs registry is
		// part of the analyzed program, but the sink is the call site.
		a.checkNamedSinks(call, callee, st)
	}
	if sum := a.t.sums[callee]; sum != nil {
		a.applySummaryCall(call, callee, sum, st, record)
		return
	}
	a.applyNamedFills(call, callee, st)
}

// checkMakeSink flags tainted length/capacity arguments of make().
func (a *analysis) checkMakeSink(call *ast.CallExpr, st taintState) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return
	}
	if _, ok := a.info.Uses[id].(*types.Builtin); !ok {
		return
	}
	for _, arg := range call.Args[1:] {
		if m := a.exprMask(arg, st); m != 0 {
			a.recordSink(SinkAlloc, arg.Pos(), a.render(arg), m, "")
		}
	}
}

// checkNamedSinks flags tainted durations reaching the time/context
// sleep family and tainted strings reaching metric labels or names.
func (a *analysis) checkNamedSinks(call *ast.CallExpr, callee *types.Func, st taintState) {
	pkg := ""
	if callee.Pkg() != nil {
		pkg = callee.Pkg().Path()
	}
	name := callee.Name()
	sinkArg := func(kind SinkKind, idx int) {
		if idx >= len(call.Args) {
			return
		}
		if m := a.exprMask(call.Args[idx], st); m != 0 {
			a.recordSink(kind, call.Args[idx].Pos(), a.render(call.Args[idx]), m, "")
		}
	}
	switch pkg {
	case "time":
		switch name {
		case "Sleep", "After", "Tick", "NewTimer", "NewTicker":
			sinkArg(SinkSleep, 0)
		}
	case "context":
		if name == "WithTimeout" {
			sinkArg(SinkSleep, 1)
		}
	default:
		if strings.HasSuffix(pkg, "internal/obs") {
			switch name {
			case "L":
				sinkArg(SinkLabel, 1)
			case "Counter", "Gauge", "Histogram", "CounterFunc", "GaugeFunc":
				sinkArg(SinkLabel, 0)
			}
		}
	}
}

// applyNamedFills models stdlib calls that write decoded data through
// pointer arguments: json Decode/Unmarshal and binary.Read.
func (a *analysis) applyNamedFills(call *ast.CallExpr, callee *types.Func, st taintState) {
	pkg := ""
	if callee.Pkg() != nil {
		pkg = callee.Pkg().Path()
	}
	switch pkg {
	case "encoding/json":
		switch callee.Name() {
		case "Decode":
			// (*json.Decoder).Decode(v): the decoder carries the
			// reader's mask; decoded data is additionally a source when
			// the reader is network data — which the reader mask
			// already encodes, so fill with the receiver mask.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && len(call.Args) == 1 {
				a.fillPointer(call.Args[0], a.exprMask(sel.X, st), st)
			}
		case "Unmarshal":
			if len(call.Args) == 2 {
				a.fillPointer(call.Args[1], a.exprMask(call.Args[0], st), st)
			}
		}
	case "encoding/binary":
		if callee.Name() == "Read" && len(call.Args) == 3 {
			a.fillPointer(call.Args[2], a.exprMask(call.Args[0], st), st)
		}
	}
}

// applySummaryCall applies a summarized callee at a call site: result
// masks are handled by resultMasks; here the pointer-param out-taint
// is written back and the callee's parameter sinks are propagated.
func (a *analysis) applySummaryCall(call *ast.CallExpr, callee *types.Func, sum *Summary, st taintState, record bool) {
	argMasks := a.argMasks(call, callee, st)
	argExprs := a.argExprs(call, callee)
	for i, m := range sum.ParamOut {
		if m == 0 || i >= len(argExprs) || argExprs[i] == nil {
			continue
		}
		a.fillPointer(argExprs[i], instantiate(m, argMasks), st)
	}
	if !record {
		return
	}
	for i, refs := range sum.ParamSinks {
		if len(refs) == 0 || i >= len(argMasks) || argMasks[i] == 0 {
			continue
		}
		pos, rendered := call.Lparen, a.render(call.Fun)
		if i < len(argExprs) && argExprs[i] != nil {
			pos, rendered = argExprs[i].Pos(), a.render(argExprs[i])
		}
		for _, ref := range refs {
			path := joinSinkPath(shortFuncName(callee), ref.Path)
			if strings.Count(path, " -> ") >= maxSinkDepth {
				continue
			}
			a.recordSink(ref.Kind, pos, rendered, argMasks[i], path)
		}
	}
}

// argExprs mirrors argMasks with the argument expressions themselves
// (receiver first); overflow variadic slots keep the first expression.
func (a *analysis) argExprs(call *ast.CallExpr, callee *types.Func) []ast.Expr {
	sig := callee.Type().(*types.Signature)
	slots := sig.Params().Len()
	offset := 0
	if sig.Recv() != nil {
		slots++
		offset = 1
	}
	exprs := make([]ast.Expr, slots)
	if offset == 1 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := a.info.Selections[sel]; isSel {
				exprs[0] = sel.X
			}
		}
	}
	for i, arg := range call.Args {
		slot := offset + i
		if slot >= slots {
			break
		}
		exprs[slot] = arg
	}
	return exprs
}

// fillPointer writes mask m through a pointer-typed argument: &x
// taints x, a pointer parameter records ParamOut, a plain pointer
// variable taints its object.
func (a *analysis) fillPointer(arg ast.Expr, m Mask, st taintState) {
	if m == 0 {
		return
	}
	arg = ast.Unparen(arg)
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = ast.Unparen(u.X)
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return
	}
	obj := a.info.Uses[id]
	if obj == nil {
		obj = a.info.Defs[id]
	}
	if obj == nil || isErrorType(obj.Type()) {
		return
	}
	if idx, isParam := a.params[obj]; isParam {
		if idx < len(a.sum.ParamOut) {
			a.sum.ParamOut[idx] |= m
		}
		return
	}
	st[obj] |= m
}

// recordSink files one tainted-value-at-sink observation: a finding
// when the mask carries the source bit, a ParamSink entry for each
// parameter bit (so callers see the sink through the summary).
func (a *analysis) recordSink(kind SinkKind, pos token.Pos, expr string, m Mask, path string) {
	if m.HasSource() {
		a.findings = append(a.findings, Finding{Kind: kind, Pos: pos, Expr: expr, Path: path})
	}
	for _, p := range m.paramIndices() {
		if p >= len(a.sum.ParamSinks) || len(a.sum.ParamSinks[p]) >= maxSinkRefs {
			continue
		}
		// Dedupe on the ultimate sink (kind + position): recursion and
		// diamond call shapes reach the same sink along several paths,
		// and the first-recorded (shortest) path is the useful one.
		ref := SinkRef{Kind: kind, Pos: pos, Expr: expr, Path: path}
		dup := false
		for _, have := range a.sum.ParamSinks[p] {
			if have.Kind == ref.Kind && have.Pos == ref.Pos {
				dup = true
				break
			}
		}
		if !dup {
			a.sum.ParamSinks[p] = append(a.sum.ParamSinks[p], ref)
		}
	}
}

// isSequence reports whether e's type indexes positionally (slice,
// array, or string — a tainted map key is just a lookup).
func (a *analysis) isSequence(e ast.Expr) bool {
	tv, ok := a.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem().Underlying()
	}
	switch t := t.(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return t.Info()&types.IsString != 0
	}
	return false
}

// joinSinkPath prepends one call hop to a sink path.
func joinSinkPath(hop, rest string) string {
	if rest == "" {
		return hop
	}
	return hop + " -> " + rest
}

// shortFuncName renders fn as Recv.Name or Name for messages.
func shortFuncName(fn *types.Func) string {
	if recv := recvTypeName(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	return fn.Name()
}

// render pretty-prints an expression for diagnostics.
func (a *analysis) render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, a.fi.Pkg.Fset, e); err != nil {
		return "<expr>"
	}
	s := buf.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
