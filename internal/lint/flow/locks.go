package flow

import (
	"go/ast"
	"go/types"
	"sort"
)

// LockClass identifies one mutex "class": a struct field or variable of
// type sync.Mutex / sync.RWMutex (possibly behind a pointer). Two
// instances of the same field (e.g. two cache shards' mu) share a
// class — acquisition-order analysis is about classes, not instances.
type LockClass struct {
	// Obj is the field or variable object declaring the mutex.
	Obj types.Object
	// Name renders the class for diagnostics (pkg.Type.field).
	Name string
}

// LockOp is one lock or unlock call site.
type LockOp struct {
	// Class is the mutex class operated on.
	Class *LockClass
	// Call is the Lock/RLock/Unlock/RUnlock call.
	Call *ast.CallExpr
	// Acquire is true for Lock/RLock, false for Unlock/RUnlock.
	Acquire bool
	// Read is true for RLock/RUnlock.
	Read bool
}

// lockClasses canonicalizes LockClass values per object so analyzers
// can compare classes by pointer.
type lockClasses struct {
	byObj map[types.Object]*LockClass
}

func newLockClasses() *lockClasses {
	return &lockClasses{byObj: make(map[types.Object]*LockClass)}
}

func (lc *lockClasses) classFor(obj types.Object) *LockClass {
	if c, ok := lc.byObj[obj]; ok {
		return c
	}
	name := obj.Name()
	if obj.Pkg() != nil {
		if owner := fieldOwner(obj); owner != "" {
			name = obj.Pkg().Path() + "." + owner + "." + obj.Name()
		} else {
			name = obj.Pkg().Path() + "." + obj.Name()
		}
	}
	c := &LockClass{Obj: obj, Name: name}
	lc.byObj[obj] = c
	return c
}

// fieldOwner returns the name of the struct type declaring a field
// object, or "" when obj is not a struct field. The type checker does
// not link fields back to their named type, so the declaring package's
// scope is searched.
func fieldOwner(obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() || obj.Pkg() == nil {
		return ""
	}
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == obj {
				return tn.Name()
			}
		}
	}
	return ""
}

// isSyncLocker reports whether t (after stripping pointers) is
// sync.Mutex or sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// lockOpOf recognizes x.mu.Lock() / Unlock() / RLock() / RUnlock()
// calls and returns the operation, or nil.
func (lc *lockClasses) lockOpOf(info *types.Info, call *ast.CallExpr) *LockOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var acquire, read bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return nil
	}
	recv := ast.Unparen(sel.X)
	if !isSyncLocker(info.TypeOf(recv)) {
		return nil
	}
	obj := baseObject(info, recv)
	if obj == nil {
		return nil
	}
	return &LockOp{Class: lc.classFor(obj), Call: call, Acquire: acquire, Read: read}
}

// BaseObject resolves an expression to its declaring object the way
// the lock walk resolves mutexes; the lifecycle analyzers use it to
// identify sync.Pool instances. See baseObject.
func BaseObject(info *types.Info, e ast.Expr) types.Object {
	return baseObject(info, e)
}

// baseObject resolves the mutex-valued expression to its declaring
// object: the field for p.mu / s.shard.mu, the variable for a plain
// mu. Returns nil for expressions with no stable identity (map index,
// function result).
func baseObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.StarExpr:
		return baseObject(info, e.X)
	case *ast.IndexExpr:
		return baseObject(info, e.X)
	}
	return nil
}

// HeldVisit receives each expression-level node of a function body
// together with the set of lock classes held at that point (must-hold:
// held on every path reaching the node).
type HeldVisit func(n ast.Node, held []*LockClass)

// LockFacts aggregates per-function lock behavior across a Program.
type LockFacts struct {
	prog    *Program
	classes *lockClasses
	// direct[f] is the set of classes f locks directly.
	direct map[*types.Func]map[*LockClass]bool
	// acquires[f] is the transitive closure: classes f or anything it
	// calls may lock.
	acquires map[*types.Func]map[*LockClass]bool
}

// BuildLockFacts scans every declared function for direct lock
// operations and closes the acquisition sets over the call graph.
func BuildLockFacts(prog *Program) *LockFacts {
	lf := &LockFacts{
		prog:     prog,
		classes:  newLockClasses(),
		direct:   make(map[*types.Func]map[*LockClass]bool),
		acquires: make(map[*types.Func]map[*LockClass]bool),
	}
	for fn, fi := range prog.Funcs {
		set := make(map[*LockClass]bool)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op := lf.classes.lockOpOf(fi.Pkg.Info, call); op != nil && op.Acquire {
				set[op.Class] = true
			}
			return true
		})
		lf.direct[fn] = set
	}
	// Fixpoint over the call graph.
	for changed := true; changed; {
		changed = false
		for fn, fi := range prog.Funcs {
			acq := lf.acquires[fn]
			if acq == nil {
				acq = make(map[*LockClass]bool, len(lf.direct[fn]))
				lf.acquires[fn] = acq
			}
			for c := range lf.direct[fn] {
				if !acq[c] {
					acq[c] = true
					changed = true
				}
			}
			for _, callee := range fi.Callees {
				for c := range lf.acquires[callee] {
					if !acq[c] {
						acq[c] = true
						changed = true
					}
				}
			}
		}
	}
	return lf
}

// Acquires returns the classes fn may (transitively) acquire.
func (lf *LockFacts) Acquires(fn *types.Func) map[*LockClass]bool {
	return lf.acquires[fn]
}

// LockOpOf exposes lock-call recognition to analyzers sharing these
// facts (canonicalized to the same class pointers).
func (lf *LockFacts) LockOpOf(info *types.Info, call *ast.CallExpr) *LockOp {
	return lf.classes.lockOpOf(info, call)
}

// heldState is the walker's running must-hold set.
type heldState map[*LockClass]bool

func (h heldState) clone() heldState {
	c := make(heldState, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only classes held in both states.
func (h heldState) intersect(o heldState) heldState {
	out := make(heldState)
	for k := range h {
		if o[k] {
			out[k] = true
		}
	}
	return out
}

func (h heldState) sorted() []*LockClass {
	out := make([]*LockClass, 0, len(h))
	for c := range h {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WalkHeld performs the structured must-hold walk over fn's body,
// invoking visit on every expression statement's nodes with the lock
// classes held at that point. Function literals are walked with the
// held set at their creation point (a sound approximation for the
// immediately-invoked closures this codebase uses; deferred closures
// conservatively start empty).
func (lf *LockFacts) WalkHeld(fi *FuncInfo, visit HeldVisit) {
	w := &heldWalker{facts: lf, info: fi.Pkg.Info, visit: visit}
	w.walkStmts(fi.Decl.Body.List, make(heldState))
}

type heldWalker struct {
	facts *LockFacts
	info  *types.Info
	visit HeldVisit
}

// walkStmts walks a statement list, threading the held set through in
// source order, and returns the fall-through state.
func (w *heldWalker) walkStmts(list []ast.Stmt, held heldState) heldState {
	for _, s := range list {
		held = w.walkStmt(s, held)
	}
	return held
}

// terminates reports whether a statement list never falls through.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return terminates(s.Body.List) && stmtTerminates(s.Else)
	case *ast.SelectStmt:
		if len(s.Body.List) == 0 {
			return false
		}
		for _, cl := range s.Body.List {
			if !terminates(cl.(*ast.CommClause).Body) {
				return false
			}
		}
		return true
	case *ast.SwitchStmt:
		return switchTerminates(s.Body, true)
	case *ast.TypeSwitchStmt:
		return switchTerminates(s.Body, true)
	case *ast.ForStmt:
		// for{} with no break could be non-terminating, but assume
		// fall-through (safe direction for must-hold).
		return false
	}
	return false
}

// switchTerminates reports whether every case of a switch terminates
// and a default case exists (otherwise the zero-match path falls
// through).
func switchTerminates(body *ast.BlockStmt, needDefault bool) bool {
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			return false
		}
		if cc.List == nil {
			hasDefault = true
		}
		if !terminates(cc.Body) {
			return false
		}
	}
	return hasDefault || !needDefault
}

// walkStmt processes one statement and returns the fall-through held
// state.
func (w *heldWalker) walkStmt(s ast.Stmt, held heldState) heldState {
	switch s := s.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.ExprStmt:
		return w.walkExpr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.walkExpr(e, held)
		}
		for _, e := range s.Lhs {
			held = w.walkExpr(e, held)
		}
		return held
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.walkExpr(v, held)
					}
				}
			}
		}
		return held
	case *ast.IncDecStmt:
		return w.walkExpr(s.X, held)
	case *ast.SendStmt:
		held = w.walkExpr(s.Value, held)
		return w.walkExpr(s.Chan, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.walkExpr(e, held)
		}
		return held
	case *ast.DeferStmt:
		// A deferred x.mu.Unlock() keeps the lock held to function
		// end: do not change the held set. Deferred closures run in an
		// unknown lock context; walk them from empty.
		if op := w.facts.classes.lockOpOf(w.info, s.Call); op == nil {
			if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				w.walkStmts(fl.Body.List, make(heldState))
			} else {
				held = w.walkCallArgs(s.Call, held)
			}
		}
		return held
	case *ast.GoStmt:
		// A spawned goroutine runs without the spawner's locks.
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkStmts(fl.Body.List, make(heldState))
		} else {
			held = w.walkCallArgs(s.Call, held)
		}
		return held
	case *ast.IfStmt:
		held = w.walkStmt(s.Init, held)
		held = w.walkExpr(s.Cond, held)
		thenOut := w.walkStmts(s.Body.List, held.clone())
		var elseOut heldState
		elseTerm := false
		if s.Else != nil {
			elseOut = w.walkStmt(s.Else, held.clone())
			elseTerm = stmtTerminates(s.Else)
		} else {
			elseOut = held
		}
		thenTerm := terminates(s.Body.List)
		switch {
		case thenTerm && elseTerm:
			return held // unreachable fall-through; keep entry set
		case thenTerm:
			return elseOut
		case elseTerm:
			return thenOut
		default:
			return thenOut.intersect(elseOut)
		}
	case *ast.ForStmt:
		held = w.walkStmt(s.Init, held)
		if s.Cond != nil {
			held = w.walkExpr(s.Cond, held)
		}
		out := w.walkStmts(s.Body.List, held.clone())
		w.walkStmt(s.Post, out)
		// Loops are assumed lock-balanced; fall through with the
		// intersection of zero and one iteration.
		return held.intersect(out)
	case *ast.RangeStmt:
		held = w.walkExpr(s.X, held)
		out := w.walkStmts(s.Body.List, held.clone())
		return held.intersect(out)
	case *ast.SwitchStmt:
		held = w.walkStmt(s.Init, held)
		if s.Tag != nil {
			held = w.walkExpr(s.Tag, held)
		}
		return w.walkClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		held = w.walkStmt(s.Init, held)
		held = w.walkStmt(s.Assign, held)
		return w.walkClauses(s.Body, held)
	case *ast.SelectStmt:
		merged := heldState(nil)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			in := held.clone()
			in = w.walkStmt(cc.Comm, in)
			out := w.walkStmts(cc.Body, in)
			if terminates(cc.Body) {
				continue
			}
			if merged == nil {
				merged = out
			} else {
				merged = merged.intersect(out)
			}
		}
		if merged == nil {
			return held
		}
		return merged
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	}
	return held
}

// walkClauses merges the fall-through states of switch cases.
func (w *heldWalker) walkClauses(body *ast.BlockStmt, held heldState) heldState {
	merged := heldState(nil)
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		in := held.clone()
		for _, e := range cc.List {
			in = w.walkExpr(e, in)
		}
		out := w.walkStmts(cc.Body, in)
		if terminates(cc.Body) {
			continue
		}
		if merged == nil {
			merged = out
		} else {
			merged = merged.intersect(out)
		}
	}
	if merged == nil || !hasDefault {
		// No case falls through, or the zero-match path skips the
		// whole switch: the entry state survives.
		if merged == nil {
			return held
		}
		return merged.intersect(held)
	}
	return merged
}

// walkExpr visits an expression tree in evaluation order, applying
// lock transitions at Lock/Unlock calls and reporting every node to
// the visitor with the current held set.
func (w *heldWalker) walkExpr(e ast.Expr, held heldState) heldState {
	if e == nil {
		return held
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if op := w.facts.classes.lockOpOf(w.info, e); op != nil {
			w.visit(e, held.sorted())
			next := held.clone()
			if op.Acquire {
				next[op.Class] = true
			} else {
				delete(next, op.Class)
			}
			return next
		}
		held = w.walkCallArgs(e, held)
		w.visit(e, held.sorted())
		return held
	case *ast.FuncLit:
		// Immediately-created closures inherit the creation-point held
		// set (see WalkHeld doc).
		w.walkStmts(e.Body.List, held.clone())
		return held
	case *ast.BinaryExpr:
		held = w.walkExpr(e.X, held)
		held = w.walkExpr(e.Y, held)
		w.visit(e, held.sorted())
		return held
	case *ast.UnaryExpr:
		held = w.walkExpr(e.X, held)
		w.visit(e, held.sorted())
		return held
	case *ast.ParenExpr:
		return w.walkExpr(e.X, held)
	case *ast.StarExpr:
		held = w.walkExpr(e.X, held)
		w.visit(e, held.sorted())
		return held
	case *ast.SelectorExpr:
		held = w.walkExpr(e.X, held)
		w.visit(e, held.sorted())
		return held
	case *ast.IndexExpr:
		held = w.walkExpr(e.X, held)
		held = w.walkExpr(e.Index, held)
		w.visit(e, held.sorted())
		return held
	case *ast.SliceExpr:
		held = w.walkExpr(e.X, held)
		held = w.walkExpr(e.Low, held)
		held = w.walkExpr(e.High, held)
		held = w.walkExpr(e.Max, held)
		w.visit(e, held.sorted())
		return held
	case *ast.TypeAssertExpr:
		held = w.walkExpr(e.X, held)
		w.visit(e, held.sorted())
		return held
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			held = w.walkExpr(el, held)
		}
		w.visit(e, held.sorted())
		return held
	case *ast.KeyValueExpr:
		held = w.walkExpr(e.Value, held)
		return held
	case *ast.Ident:
		w.visit(e, held.sorted())
		return held
	}
	w.visit(e, held.sorted())
	return held
}

// walkCallArgs walks a non-lock call's function and arguments.
func (w *heldWalker) walkCallArgs(call *ast.CallExpr, held heldState) heldState {
	held = w.walkExpr(call.Fun, held)
	for _, a := range call.Args {
		held = w.walkExpr(a, held)
	}
	return held
}
