package flow

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// taintProgram type-checks one source string into a Program. Sources
// declare bodyless functions (uvarint, ...) so the name-based rules
// apply exactly as they do for the standard library.
func taintProgram(t *testing.T, src string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "taint_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("tainttest", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pi := &PackageInfo{Path: "tainttest", Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
	return BuildProgram([]*PackageInfo{pi})
}

// findingStrings renders findings as "kind|expr|path" for comparison.
func findingStrings(taint *Taint) []string {
	var out []string
	for _, f := range taint.Findings() {
		out = append(out, fmt.Sprintf("%s|%s|%s", f.Kind, f.Expr, f.Path))
	}
	return out
}

func wantFindings(t *testing.T, taint *Taint, want ...string) {
	t.Helper()
	got := findingStrings(taint)
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

const sourceDecl = `func uvarint(b []byte) (uint64, int)
`

func TestTaintSourceToMakeLocal(t *testing.T) {
	p := taintProgram(t, `package p
`+sourceDecl+`
func f(b []byte) []byte {
	n, _ := uvarint(b)
	return make([]byte, n)
}`)
	wantFindings(t, BuildTaint(p), "make size|n|")
}

func TestComparisonSanitizes(t *testing.T) {
	p := taintProgram(t, `package p
`+sourceDecl+`
func f(b []byte) []byte {
	n, _ := uvarint(b)
	if n > 64 {
		return nil
	}
	return make([]byte, n)
}`)
	wantFindings(t, BuildTaint(p))
}

func TestGuardOnOnePathDoesNotSanitize(t *testing.T) {
	// The bounds check runs only when fast is set; the union-meet at
	// the join keeps the unguarded path's taint alive.
	p := taintProgram(t, `package p
`+sourceDecl+`
func f(b []byte, fast bool) []byte {
	n, _ := uvarint(b)
	if fast {
		if n > 64 {
			return nil
		}
	}
	return make([]byte, n)
}`)
	wantFindings(t, BuildTaint(p), "make size|n|")
}

func TestSanitizerTwoCallsDeepComposes(t *testing.T) {
	// clamp bounds its input, via forwards to clamp: via's result
	// summary is clean, so the top-level make is fine.
	p := taintProgram(t, `package p
`+sourceDecl+`
func clamp(n uint64) uint64 {
	if n > 256 {
		return 256
	}
	return n
}

func via(n uint64) uint64 { return clamp(n) }

func f(b []byte) []byte {
	n, _ := uvarint(b)
	return make([]byte, via(n))
}`)
	wantFindings(t, BuildTaint(p))
}

func TestResultSummaryPropagates(t *testing.T) {
	p := taintProgram(t, `package p
`+sourceDecl+`
func id(n uint64) uint64 { return n }

func f(b []byte) []byte {
	n, _ := uvarint(b)
	return make([]byte, id(n))
}`)
	wantFindings(t, BuildTaint(p), "make size|id(n)|")
}

func TestParamSinkReportedAtCallSite(t *testing.T) {
	p := taintProgram(t, `package p
`+sourceDecl+`
func alloc(n uint64) []byte { return make([]byte, n) }

func mid(n uint64) []byte { return alloc(n) }

func f(b []byte) []byte {
	n, _ := uvarint(b)
	return mid(n)
}`)
	wantFindings(t, BuildTaint(p), "make size|n|mid -> alloc")
}

func TestPointerParamOutTaint(t *testing.T) {
	p := taintProgram(t, `package p
`+sourceDecl+`
func fill(b []byte, p *uint64) {
	n, _ := uvarint(b)
	*p = n
}

func f(b []byte) []byte {
	var n uint64
	fill(b, &n)
	return make([]byte, n)
}`)
	wantFindings(t, BuildTaint(p), "make size|n|")
}

func TestLoopBoundSink(t *testing.T) {
	p := taintProgram(t, `package p
`+sourceDecl+`
func f(b []byte) int {
	n, _ := uvarint(b)
	total := 0
	for i := uint64(0); i < n; i++ {
		total++
	}
	return total
}`)
	wantFindings(t, BuildTaint(p), "loop bound|n|")
}

func TestIndexSinkOnSequenceOnly(t *testing.T) {
	p := taintProgram(t, `package p
`+sourceDecl+`
func f(b []byte, tbl []int, m map[uint64]int) int {
	n, _ := uvarint(b)
	return tbl[n] + m[n]
}`)
	// Indexing the slice with n is a sink; the map lookup is not.
	wantFindings(t, BuildTaint(p), "index|n|")
}

func TestSliceBoundSink(t *testing.T) {
	p := taintProgram(t, `package p
`+sourceDecl+`
func f(b []byte) []byte {
	n, _ := uvarint(b)
	return b[:n]
}`)
	wantFindings(t, BuildTaint(p), "slice bound|n|")
}

func TestLenOfTaintedIsClean(t *testing.T) {
	p := taintProgram(t, `package p
`+sourceDecl+`
func grow(b []byte) []byte {
	return make([]byte, len(b)*2)
}`)
	taint := BuildTaint(p)
	wantFindings(t, taint)
	var fn *types.Func
	for f := range p.Funcs {
		if f.Name() == "grow" {
			fn = f
		}
	}
	sum := taint.SummaryOf(fn)
	if sum == nil || sum.Results[0] != 0 {
		t.Fatalf("grow result summary = %+v, want clean", sum)
	}
}

func TestSummaryRecordsParamPropagation(t *testing.T) {
	p := taintProgram(t, `package p
func head(b []byte) []byte { return b[:8] }`)
	taint := BuildTaint(p)
	var fn *types.Func
	for f := range p.Funcs {
		if f.Name() == "head" {
			fn = f
		}
	}
	sum := taint.SummaryOf(fn)
	if sum == nil || sum.Results[0] != ParamBit(0) {
		t.Fatalf("head result summary = %+v, want param 0", sum)
	}
}

func TestRecursionConverges(t *testing.T) {
	p := taintProgram(t, `package p
`+sourceDecl+`
func rec(n uint64, depth int) []byte {
	if depth == 0 {
		return make([]byte, n)
	}
	return rec(n, depth-1)
}

func f(b []byte) []byte {
	n, _ := uvarint(b)
	return rec(n, 3)
}`)
	// The sink lives inside the recursive callee; the source arrives at
	// the top-level call site.
	got := findingStrings(BuildTaint(p))
	if len(got) != 1 || !strings.HasPrefix(got[0], "make size|n|rec") {
		t.Fatalf("findings = %v, want one make-size flow through rec", got)
	}
}

func TestSleepSinkAndDurationClamp(t *testing.T) {
	p := taintProgram(t, `package p

import "time"
`+sourceDecl+`
func f(b []byte) {
	n, _ := uvarint(b)
	time.Sleep(time.Duration(n))
}

func g(b []byte) {
	n, _ := uvarint(b)
	d := time.Duration(n)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	time.Sleep(d)
}`)
	wantFindings(t, BuildTaint(p), "sleep/timeout duration|time.Duration(n)|")
}

func TestMinClampIsClean(t *testing.T) {
	p := taintProgram(t, `package p
`+sourceDecl+`
func f(b []byte) []byte {
	n, _ := uvarint(b)
	return make([]byte, min(n, 1024))
}`)
	wantFindings(t, BuildTaint(p))
}
