package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mloc/internal/lint/flow"
)

// GoLeak flags go statements that spawn goroutines with no bounded
// exit: on every path from the goroutine body's entry to its exit
// there must be a joining event — a sync.WaitGroup Done/Wait, a close,
// a channel send or receive (a ctx.Done() select counts), a range over
// a channel — or a call to a function that provides one. A goroutine
// with none of these is fire-and-forget: nothing can wait for it, and
// under load it accumulates (the leak class the staging pipeline and
// build pool were designed around).
//
// Goroutines whose callee cannot be resolved statically (function
// values, interface methods) are skipped rather than guessed at.
var GoLeak = &Analyzer{
	Name:       "goleak",
	Doc:        "go statements need a bounded exit on every path (WaitGroup join, channel op, close, or ctx.Done)",
	RunProgram: runGoLeak,
}

// goleakBound is the single event label the must-solver tracks: any
// bounding construct produces it, so "some bound on every path" is one
// solver query.
const goleakBound = "bound"

func runGoLeak(p *ProgramPass) {
	// summaries memoizes whether a named function's body provides a
	// bound on every path (the one-call-deep interprocedural view).
	summaries := make(map[*types.Func]int) // 0 unknown, 1 bounded, 2 not
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			info := pkg.Info
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, binfo := spawnedBody(p.Flow, info, gs)
				if body == nil {
					return true
				}
				if !bodyBounded(p.Flow, binfo, body, summaries, 0) {
					p.Reportf(gs.Pos(), "goroutine has no bounded exit on every path (no WaitGroup join, channel operation, close, or ctx.Done receive)")
				}
				return true
			})
		}
	}
}

// spawnedBody resolves the function body a go statement runs: an
// inline literal, or the declaration of a statically resolved callee.
func spawnedBody(prog *flow.Program, info *types.Info, gs *ast.GoStmt) (*ast.BlockStmt, *types.Info) {
	if fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return fl.Body, info
	}
	callee := flow.CalleeOf(info, gs.Call)
	if callee == nil {
		return nil, nil
	}
	fi := prog.Funcs[callee]
	if fi == nil || fi.Decl.Body == nil {
		return nil, nil
	}
	return fi.Decl.Body, fi.Pkg.Info
}

// bodyBounded reports whether a bound event occurs on every path
// through body. depth limits the interprocedural summary recursion.
func bodyBounded(prog *flow.Program, info *types.Info, body *ast.BlockStmt, summaries map[*types.Func]int, depth int) bool {
	g := flow.BuildCFG(body)
	facts := flow.SolveMust(g, func(n ast.Node) []string {
		if isBoundingNode(prog, info, n, summaries, depth) {
			return []string{goleakBound}
		}
		return nil
	})
	return facts.OnEveryPath(goleakBound)
}

// isBoundingNode recognizes the constructs that bound a goroutine's
// lifetime.
func isBoundingNode(prog *flow.Program, info *types.Info, n ast.Node, summaries map[*types.Func]int, depth int) bool {
	switch n := n.(type) {
	case *ast.SendStmt:
		return true
	case *ast.UnaryExpr:
		// Any receive blocks on a peer: <-done, <-ctx.Done(), ...
		return n.Op == token.ARROW
	case *ast.RangeStmt:
		// Ranging a channel terminates when the sender closes it.
		_, isChan := info.TypeOf(n.X).Underlying().(*types.Chan)
		return isChan
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		if isWaitGroupJoin(info, n) {
			return true
		}
		return calleeBounds(prog, info, n, summaries, depth)
	}
	return false
}

// isWaitGroupJoin matches wg.Done() and wg.Wait() on sync.WaitGroup.
func isWaitGroupJoin(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Wait") {
		return false
	}
	return isNamedType(info.TypeOf(sel.X), "sync", "WaitGroup")
}

// calleeBounds consults the one-call-deep summary: a call to a declared
// function whose own body provides a bound on every path is itself a
// bound (the worker that does `defer wg.Done()` pattern).
func calleeBounds(prog *flow.Program, info *types.Info, call *ast.CallExpr, summaries map[*types.Func]int, depth int) bool {
	if depth >= 2 {
		return false
	}
	callee := flow.CalleeOf(info, call)
	if callee == nil {
		return false
	}
	if v, ok := summaries[callee]; ok {
		return v == 1
	}
	fi := prog.Funcs[callee]
	if fi == nil || fi.Decl.Body == nil {
		return false
	}
	summaries[callee] = 2 // recursion guard: assume unbounded while computing
	if bodyBounded(prog, fi.Pkg.Info, fi.Decl.Body, summaries, depth+1) {
		summaries[callee] = 1
		return true
	}
	return false
}

// isNamedType reports whether t (after stripping one pointer) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}
