// Package lint implements mlocvet's stdlib-only static-analysis
// framework: a module-aware package loader built on go/parser and
// go/types, a small analyzer API, and the //mlocvet:ignore suppression
// machinery shared by the analyzers in this package.
//
// The analyzers machine-enforce repository conventions that ordinary
// `go vet` does not know about:
//
//   - spmd-goroutine: bare go statements outside internal/mpi and
//     internal/stage (all parallelism flows through the SPMD runtime)
//   - errprefix: error strings must carry the owning package's
//     "<pkg>: " prefix
//   - floatcmp: no == / != on floating-point operands outside tests
//   - commescape: *mpi.Comm is rank-local and must not be stored in
//     struct fields, sent on channels, or captured by go statements
//   - uncheckederr: error results must not be discarded via _ or a
//     bare call statement
//   - exporteddoc: exported identifiers in library packages need doc
//     comments
//   - ctxfirst: exported functions accepting a context.Context must
//     take it as their first parameter
//
// The flow-aware generation (built on internal/lint/flow's call graph
// and held-lock walk) adds:
//
//   - lockorder: cross-package mutex acquisition-order cycles
//     (potential deadlocks)
//   - wiresize: untrusted decoded lengths reaching allocations before
//     a bounds check
//   - hotalloc: hoistable allocations, growing appends, and capturing
//     closures inside hot-path loops
//   - constshare: re-typed magic literals that must come from the
//     shared named constant
//   - atomicmix: fields accessed both atomically and plainly, or with
//     inconsistent mutex protection
//
// The lifecycle generation (built on internal/lint/flow's per-function
// CFG and must-happen-on-every-path dataflow solver) adds:
//
//   - goleak: go statements need a bounded exit on every path
//   - ctxflow: held contexts must be forwarded, not replaced, and
//     I/O loops must poll cancellation
//   - closepath: pooled and constructed values need a release on every
//     path, error returns and panics included
//   - clockcharge: simulated I/O recorded in Stats must charge the
//     virtual Clock before returning
//   - ignorereason: //mlocvet:ignore directives must carry a
//     "-- reason" explaining the suppression
//
// The taint generation (built on internal/lint/flow's interprocedural
// taint summaries over the call graph and CFG) guards the cluster
// trust boundary — HTTP request data, JSON decoded from peer nodes,
// and wire bytes are all attacker-controlled:
//
//   - taintflow: untrusted values must not reach allocation sizes,
//     loop bounds, indexes, or sleep durations — across function
//     calls — without a dominating bounds check
//   - bodylimit: every network body read must be length-bounded by
//     io.LimitReader or http.MaxBytesReader
//   - labelcard: metric label values and metric names must come from
//     a finite set, never from untrusted strings
//
// The package deliberately depends only on the standard library
// (go/ast, go/parser, go/token, go/types) so the module keeps its
// zero-dependency go.mod.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"mloc/internal/lint/flow"
)

// fsetOf returns the packages' shared file set.
func fsetOf(pkgs []*Package) *token.FileSet {
	if len(pkgs) == 0 {
		return token.NewFileSet()
	}
	return pkgs[0].Fset
}

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	// Pos locates the finding; only Filename and Line are rendered.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the finding.
	Message string
}

// String renders the diagnostic in mlocvet's canonical
// "file:line: analyzer: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check. Package analyzers set Run and see one
// package at a time; program analyzers set RunProgram and see every
// loaded package at once (plus the shared flow facts) — that is how
// the cross-package checks (lock ordering, shared constants, mixed
// atomics) work. Exactly one of Run / RunProgram is non-nil.
type Analyzer struct {
	// Name is the short kebab-case identifier used in diagnostics and
	// //mlocvet:ignore comments.
	Name string
	// Doc is a one-line description shown by `mlocvet -list`.
	Doc string
	// Run applies a per-package check, reporting findings through the
	// pass.
	Run func(*Pass)
	// RunProgram applies a whole-program check over all loaded
	// packages.
	RunProgram func(*ProgramPass)
}

// Pass carries one analyzer's view of one package plus the diagnostic
// sink.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the loaded package under analysis.
	Pkg   *Package
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries a program analyzer's view of every loaded
// package, the shared flow facts, and the diagnostic sink.
type ProgramPass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkgs are all loaded packages, in load order.
	Pkgs []*Package
	// Flow is the shared call graph and lock facts over Pkgs.
	Flow *flow.Program
	fset *token.FileSet
	// lockFacts and taintFacts are built lazily, once, on first use.
	lockFacts  *flow.LockFacts
	taintFacts *flow.Taint
	diags      *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// LockFacts returns the program's lock facts, building them on first
// use and sharing them between the concurrency analyzers of one run.
func (p *ProgramPass) LockFacts() *flow.LockFacts {
	if p.lockFacts == nil {
		p.lockFacts = flow.BuildLockFacts(p.Flow)
	}
	return p.lockFacts
}

// TaintFacts returns the program's interprocedural taint summaries,
// building them on first use and sharing them between the taint
// analyzers of one run.
func (p *ProgramPass) TaintFacts() *flow.Taint {
	if p.taintFacts == nil {
		p.taintFacts = flow.BuildTaint(p.Flow)
	}
	return p.taintFacts
}

// FlowPackage adapts a loaded package to flow's package view.
func FlowPackage(pkg *Package) *flow.PackageInfo {
	return &flow.PackageInfo{
		Path:  pkg.Path,
		Fset:  pkg.Fset,
		Files: pkg.Files,
		Types: pkg.Types,
		Info:  pkg.Info,
	}
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SPMDGoroutine,
		ErrPrefix,
		FloatCmp,
		CommEscape,
		UncheckedErr,
		ExportedDoc,
		CtxFirst,
		LockOrder,
		WireSize,
		HotAlloc,
		ConstShare,
		AtomicMix,
		GoLeak,
		CtxFlow,
		ClosePath,
		ClockCharge,
		IgnoreReason,
		TaintFlow,
		BodyLimit,
		LabelCard,
	}
}

// ByName resolves an analyzer by its Name, or nil if unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the given analyzers to one package. It is RunAll over a
// single-package program; see RunAll for the semantics.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunAll([]*Package{pkg}, analyzers)
}

// RunAll applies the given analyzers across all loaded packages:
// package analyzers run once per package, program analyzers run once
// over the whole set with shared flow facts. Findings suppressed by
// //mlocvet:ignore comments are dropped; the rest return sorted by
// position.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, pkg := range pkgs {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
		}
	}
	var prog *flow.Program
	var facts *flow.LockFacts
	var taint *flow.Taint
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			infos := make([]*flow.PackageInfo, len(pkgs))
			for i, pkg := range pkgs {
				infos[i] = FlowPackage(pkg)
			}
			prog = flow.BuildProgram(infos)
		}
		pp := &ProgramPass{
			Analyzer:   a,
			Pkgs:       pkgs,
			Flow:       prog,
			fset:       fsetOf(pkgs),
			lockFacts:  facts,
			taintFacts: taint,
			diags:      &diags,
		}
		a.RunProgram(pp)
		facts = pp.lockFacts // share across program analyzers
		taint = pp.taintFacts
	}
	for _, pkg := range pkgs {
		diags = filterIgnored(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		if diags[i].Pos.Column != diags[j].Pos.Column {
			return diags[i].Pos.Column < diags[j].Pos.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// ignoreDirective is the comment prefix that suppresses findings. A
// directive names one or more analyzers followed by a mandatory
// reason: "//mlocvet:ignore floatcmp -- bit-exact golden comparison".
// It applies to its own line — as a trailing comment — or to the line
// directly below it. Bare directives (no "-- reason") still suppress
// for compatibility, but the ignorereason analyzer reports them, and
// an ignorereason finding can only be suppressed by a directive that
// itself carries a reason.
const ignoreDirective = "//mlocvet:ignore"

// ignoreEntry is one parsed ignore directive: the analyzers it names
// and whether it carries a "-- reason" tail.
type ignoreEntry struct {
	names     []string
	hasReason bool
}

// parseIgnoreDirective parses the text after the directive prefix into
// analyzer names and the reason flag. Names stop at the "--"
// separator (everything after it is the free-form reason) or at a
// nested "//" opening unrelated commentary.
func parseIgnoreDirective(rest string) ignoreEntry {
	namePart, reason, found := strings.Cut(rest, "--")
	namePart, _, _ = strings.Cut(namePart, "//")
	return ignoreEntry{
		names:     strings.FieldsFunc(namePart, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }),
		hasReason: found && strings.TrimSpace(reason) != "",
	}
}

// matches reports whether the entry suppresses the given analyzer. An
// ignorereason finding is only suppressed by an entry that itself has
// a reason — a bare directive cannot excuse itself.
func (e ignoreEntry) matches(analyzer string) bool {
	if analyzer == IgnoreReason.Name && !e.hasReason {
		return false
	}
	for _, n := range e.names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// filterIgnored removes diagnostics whose line carries (or follows) an
// ignore directive naming the diagnostic's analyzer.
func filterIgnored(pkg *Package, diags []Diagnostic) []Diagnostic {
	ignored := ignoredLines(pkg)
	if len(ignored) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		byLine := ignored[d.Pos.Filename]
		if anyEntryMatches(byLine[d.Pos.Line], d.Analyzer) ||
			anyEntryMatches(byLine[d.Pos.Line-1], d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// ignoredLines collects the parsed ignore directives per file and line.
func ignoredLines(pkg *Package) map[string]map[int][]ignoreEntry {
	out := make(map[string]map[int][]ignoreEntry)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				e := parseIgnoreDirective(strings.TrimPrefix(c.Text, ignoreDirective))
				if len(e.names) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]ignoreEntry)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], e)
			}
		}
	}
	return out
}

// anyEntryMatches reports whether any entry suppresses the analyzer.
func anyEntryMatches(entries []ignoreEntry, analyzer string) bool {
	for _, e := range entries {
		if e.matches(analyzer) {
			return true
		}
	}
	return false
}

// pathHasSuffix reports whether import path p ends in the
// slash-separated suffix (e.g. "internal/mpi").
func pathHasSuffix(p, suffix string) bool {
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}
