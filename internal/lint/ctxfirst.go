package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the Go context convention on the repository's
// exported API: an exported function or method that accepts a
// context.Context must take it as its first parameter. A context buried
// later in the signature hides the cancellation contract from callers
// and breaks the ctx-threading idiom the query service relies on.
// Unexported helpers are exempt (they may order parameters to suit
// their single caller), as is a signature whose first parameter is
// already a context.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported functions accepting a context.Context must take it first",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name == nil || !fn.Name.IsExported() {
				continue
			}
			checkCtxFirst(p, fn)
		}
	}
}

// checkCtxFirst reports fn when it accepts a context anywhere but the
// first (flattened) parameter position.
func checkCtxFirst(p *Pass, fn *ast.FuncDecl) {
	if fn.Type.Params == nil {
		return
	}
	idx := 0
	firstCtx := -1
	var firstCtxField *ast.Field
	for _, field := range fn.Type.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1 // unnamed parameter still occupies one position
		}
		if firstCtx < 0 && isContextType(p.Pkg, field.Type) {
			firstCtx = idx
			firstCtxField = field
		}
		idx += names
	}
	if firstCtx > 0 {
		p.Reportf(firstCtxField.Pos(),
			"exported %s takes context.Context as parameter %d; contexts go first",
			fn.Name.Name, firstCtx+1)
	}
}

// isContextType reports whether the expression's type is the stdlib
// context.Context interface.
func isContextType(pkg *Package, expr ast.Expr) bool {
	t := pkg.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
