package bitmap

import (
	"math/rand"
	"testing"
)

// mixedBitmap fills a bitmap with varied structure: uniform noise,
// dense runs, and long zero gaps, so WAH fills and literals both occur.
func mixedBitmap(n int64, seed int64) *Bitmap {
	r := rand.New(rand.NewSource(seed))
	b := New(n)
	i := int64(0)
	for i < n {
		switch r.Intn(3) {
		case 0: // zero gap
			i += int64(r.Intn(200))
		case 1: // dense run
			run := int64(r.Intn(100))
			for j := int64(0); j < run && i < n; j++ {
				b.Set(i)
				i++
			}
		default: // sparse noise
			span := int64(r.Intn(150))
			for j := int64(0); j < span && i < n; j++ {
				if r.Intn(4) == 0 {
					b.Set(i)
				}
				i++
			}
		}
	}
	return b
}

func TestBitmapAndOrCountEquivalence(t *testing.T) {
	for trial := int64(0); trial < 50; trial++ {
		n := 1 + rand.New(rand.NewSource(trial)).Int63n(4000)
		a := mixedBitmap(n, trial*2+1)
		b := mixedBitmap(n, trial*2+2)

		want := a.Clone()
		want.And(b)
		if got := a.AndCount(b); got != want.Count() {
			t.Fatalf("trial %d: AndCount = %d, And+Count = %d", trial, got, want.Count())
		}
		want = a.Clone()
		want.Or(b)
		if got := a.OrCount(b); got != want.Count() {
			t.Fatalf("trial %d: OrCount = %d, Or+Count = %d", trial, got, want.Count())
		}
	}
}

func TestBitmapNextSetEquivalence(t *testing.T) {
	for trial := int64(0); trial < 30; trial++ {
		n := 1 + rand.New(rand.NewSource(100+trial)).Int63n(3000)
		b := mixedBitmap(n, 300+trial)
		var got []int64
		for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
			got = append(got, i)
		}
		want := b.Indices()
		if len(got) != len(want) {
			t.Fatalf("trial %d: NextSet walked %d bits, Indices has %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: position %d: NextSet %d != Indices %d", trial, i, got[i], want[i])
			}
		}
	}
	// Edge cases.
	b := New(10)
	if b.NextSet(0) != -1 {
		t.Error("empty bitmap returned a set bit")
	}
	b.Set(9)
	if b.NextSet(0) != 9 || b.NextSet(9) != 9 {
		t.Error("single tail bit not found")
	}
	if b.NextSet(10) != -1 || b.NextSet(-5) != 9 {
		t.Error("out-of-range start mishandled")
	}
}

func TestWAHAndOrCountEquivalence(t *testing.T) {
	for trial := int64(0); trial < 50; trial++ {
		n := 1 + rand.New(rand.NewSource(500+trial)).Int63n(5000)
		a := Compress(mixedBitmap(n, 700+trial))
		b := Compress(mixedBitmap(n, 900+trial))

		if got, want := a.AndCount(b), a.And(b).Count(); got != want {
			t.Fatalf("trial %d: WAH AndCount = %d, And+Count = %d", trial, got, want)
		}
		if got, want := a.OrCount(b), a.Or(b).Count(); got != want {
			t.Fatalf("trial %d: WAH OrCount = %d, Or+Count = %d", trial, got, want)
		}
	}
}

func TestWAHBitsEquivalence(t *testing.T) {
	lengths := []int64{1, 30, 31, 32, 62, 63, 100, 3100}
	for trial := int64(0); trial < 30; trial++ {
		n := lengths[trial%int64(len(lengths))] + trial
		raw := mixedBitmap(n, 1100+trial)
		w := Compress(raw)
		var got []int64
		it := w.Bits()
		for i, ok := it.Next(); ok; i, ok = it.Next() {
			got = append(got, i)
		}
		want := raw.Indices()
		if len(got) != len(want) {
			t.Fatalf("n=%d: Bits walked %d bits, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: position %d: Bits %d != %d", n, i, got[i], want[i])
			}
		}
	}
	// All-ones bitmap exercises the fill-run path including the clamped
	// final group.
	b := New(100)
	for i := int64(0); i < 100; i++ {
		b.Set(i)
	}
	it := Compress(b).Bits()
	for want := int64(0); want < 100; want++ {
		i, ok := it.Next()
		if !ok || i != want {
			t.Fatalf("ones: got (%d,%v), want %d", i, ok, want)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("ones: iterator overran")
	}
}

func BenchmarkWAHAndCount(b *testing.B) {
	n := int64(1 << 20)
	x := Compress(mixedBitmap(n, 1))
	y := Compress(mixedBitmap(n, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.AndCount(y)
	}
}

func BenchmarkWAHAndPlusCount(b *testing.B) {
	n := int64(1 << 20)
	x := Compress(mixedBitmap(n, 1))
	y := Compress(mixedBitmap(n, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.And(y).Count()
	}
}

func BenchmarkBitmapNextSet(b *testing.B) {
	bm := mixedBitmap(1<<20, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c int64
		for j := bm.NextSet(0); j >= 0; j = bm.NextSet(j + 1) {
			c++
		}
	}
}
