package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapSetGetClear(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int64{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("fresh bitmap has bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("Set(%d) did not stick", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 7 {
		t.Fatal("Clear(64) failed")
	}
}

func TestBitmapBoundsPanics(t *testing.T) {
	b := New(10)
	for _, f := range []func(){
		func() { b.Get(-1) },
		func() { b.Get(10) },
		func() { b.Set(10) },
		func() { b.Clear(-1) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBitmapLogicOps(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(50)
	a.Set(99)
	b.Set(50)
	b.Set(60)

	and := a.Clone()
	and.And(b)
	if and.Count() != 1 || !and.Get(50) {
		t.Error("And wrong")
	}
	or := a.Clone()
	or.Or(b)
	if or.Count() != 4 {
		t.Error("Or wrong")
	}
	an := a.Clone()
	an.AndNot(b)
	if an.Count() != 2 || an.Get(50) {
		t.Error("AndNot wrong")
	}
}

func TestBitmapNotMasksTail(t *testing.T) {
	b := New(70)
	b.Not()
	if b.Count() != 70 {
		t.Fatalf("Not: Count = %d, want 70 (tail bits must stay masked)", b.Count())
	}
	b.Not()
	if b.Count() != 0 {
		t.Fatalf("double Not: Count = %d, want 0", b.Count())
	}
}

func TestBitmapLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	a.And(b)
}

func TestBitmapEachIndices(t *testing.T) {
	b := New(200)
	want := []int64{0, 31, 32, 63, 64, 100, 199}
	for _, i := range want {
		b.Set(i)
	}
	got := b.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBitmapMarshalRoundtrip(t *testing.T) {
	b := New(777)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		b.Set(r.Int63n(777))
	}
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Bitmap
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !b.Equal(&back) {
		t.Fatal("marshal roundtrip mismatch")
	}
	if err := back.UnmarshalBinary(data[:5]); err == nil {
		t.Fatal("truncated unmarshal accepted")
	}
	if err := back.UnmarshalBinary(append(data, 0)); err == nil {
		t.Fatal("oversized unmarshal accepted")
	}
}

func TestBitmapEqual(t *testing.T) {
	a, b := New(64), New(64)
	if !a.Equal(b) {
		t.Fatal("empty bitmaps unequal")
	}
	a.Set(3)
	if a.Equal(b) {
		t.Fatal("different bitmaps equal")
	}
	if a.Equal(New(65)) {
		t.Fatal("different lengths equal")
	}
}

func TestBitmapQuickCountMatchesSets(t *testing.T) {
	f := func(seed int64, nSets uint8) bool {
		b := New(500)
		r := rand.New(rand.NewSource(seed))
		set := map[int64]bool{}
		for i := 0; i < int(nSets); i++ {
			k := r.Int63n(500)
			b.Set(k)
			set[k] = true
		}
		return b.Count() == int64(len(set))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
