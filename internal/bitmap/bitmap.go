// Package bitmap implements plain and WAH-compressed bitmaps.
//
// MLOC uses bitmaps in two roles from the paper: (1) the light-weight
// spatial indices exchanged between MPI ranks during multi-variable
// queries (§III-D4), and (2) the from-scratch FastBit baseline, whose
// binned bitmap indices are Word-Aligned Hybrid (WAH) compressed.
package bitmap

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Bitmap is a fixed-length uncompressed bitset.
type Bitmap struct {
	n     int64 // number of valid bits
	words []uint64
}

// New creates a bitmap of n bits, all zero.
func New(n int64) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative length %d", n))
	}
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (b *Bitmap) Len() int64 { return b.n }

// Set sets bit i to 1.
func (b *Bitmap) Set(i int64) {
	b.check(i)
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear sets bit i to 0.
func (b *Bitmap) Clear(i int64) {
	b.check(i)
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports whether bit i is 1.
func (b *Bitmap) Get(i int64) bool {
	b.check(i)
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

func (b *Bitmap) check(i int64) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: index %d out of [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int64 {
	var c int64
	for _, w := range b.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// And intersects o into b in place. Lengths must match.
func (b *Bitmap) And(o *Bitmap) {
	b.checkSame(o)
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions o into b in place. Lengths must match.
func (b *Bitmap) Or(o *Bitmap) {
	b.checkSame(o)
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// AndNot removes o's bits from b in place. Lengths must match.
func (b *Bitmap) AndNot(o *Bitmap) {
	b.checkSame(o)
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// AndCount returns Count(b AND o) without materializing the
// intersection — the planner's cardinality probes run this per candidate
// bin, so avoiding the Clone+And round trip matters.
func (b *Bitmap) AndCount(o *Bitmap) int64 {
	b.checkSame(o)
	var c int64
	for i, w := range b.words {
		c += int64(bits.OnesCount64(w & o.words[i]))
	}
	return c
}

// OrCount returns Count(b OR o) without materializing the union.
func (b *Bitmap) OrCount(o *Bitmap) int64 {
	b.checkSame(o)
	var c int64
	for i, w := range b.words {
		c += int64(bits.OnesCount64(w | o.words[i]))
	}
	return c
}

// NextSet returns the index of the first set bit at or after i, or -1
// when no set bit remains. It allocates nothing, so callers can walk
// set bits with `for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1)`
// without the closure overhead of Each or the slice of Indices.
func (b *Bitmap) NextSet(i int64) int64 {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := int(i >> 6)
	w := b.words[wi] >> uint(i&63)
	if w != 0 {
		return i + int64(bits.TrailingZeros64(w))
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return int64(wi)*64 + int64(bits.TrailingZeros64(b.words[wi]))
		}
	}
	return -1
}

// Not flips every bit in place.
func (b *Bitmap) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.maskTail()
}

// maskTail zeroes the padding bits past n in the last word so Count and
// iteration stay correct after Not.
func (b *Bitmap) maskTail() {
	if b.n%64 != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(b.n%64)) - 1
	}
}

func (b *Bitmap) checkSame(o *Bitmap) {
	if b.n != o.n {
		panic(fmt.Sprintf("bitmap: length mismatch %d vs %d", b.n, o.n))
	}
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	return &Bitmap{n: b.n, words: append([]uint64(nil), b.words...)}
}

// Each calls fn with the index of every set bit in ascending order.
func (b *Bitmap) Each(fn func(i int64)) {
	for wi, w := range b.words {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			fn(int64(wi)*64 + int64(t))
			w &= w - 1
		}
	}
}

// Indices returns the positions of all set bits.
func (b *Bitmap) Indices() []int64 {
	out := make([]int64, 0, b.Count())
	b.Each(func(i int64) { out = append(out, i) })
	return out
}

// Equal reports bit-for-bit equality.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Words exposes the raw word slice for serialization; callers must not
// mutate it.
func (b *Bitmap) Words() []uint64 { return b.words }

// MarshalBinary serializes the bitmap: 8-byte bit length then words.
func (b *Bitmap) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+8*len(b.words))
	binary.LittleEndian.PutUint64(out, uint64(b.n))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[8+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary deserializes a bitmap produced by MarshalBinary.
func (b *Bitmap) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitmap: truncated header (%d bytes)", len(data))
	}
	n := int64(binary.LittleEndian.Uint64(data))
	nw := int((n + 63) / 64)
	if len(data) != 8+8*nw {
		return fmt.Errorf("bitmap: want %d payload bytes for %d bits, got %d", 8*nw, n, len(data)-8)
	}
	b.n = n
	b.words = make([]uint64, nw)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[8+8*i:])
	}
	return nil
}
