package bitmap

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// WAH is a Word-Aligned Hybrid compressed bitmap over 31-bit groups,
// following the scheme FastBit uses (Wu et al.). Each 32-bit word is
// either a literal (MSB=0, 31 payload bits) or a fill (MSB=1, next bit
// is the fill value, low 30 bits count how many 31-bit groups the fill
// spans).
//
// WAH compresses the long runs of 0s that binned bitmap indices are
// mostly made of, which is what makes the FastBit baseline's index size
// realistic (Table I).
type WAH struct {
	n     int64 // logical bit length
	words []uint32
}

const (
	wahGroupBits = 31
	wahFillFlag  = uint32(1) << 31
	wahFillValue = uint32(1) << 30
	wahMaxCount  = (uint32(1) << 30) - 1
)

// Compress converts an uncompressed bitmap to WAH form. Groups are
// extracted 31 bits at a time directly from the word array.
func Compress(b *Bitmap) *WAH {
	w := &WAH{n: b.n}
	nGroups := (b.n + wahGroupBits - 1) / wahGroupBits
	for g := int64(0); g < nGroups; g++ {
		start := g * wahGroupBits
		n := int64(wahGroupBits)
		if start+n > b.n {
			n = b.n - start
		}
		w.appendGroup(extractBits(b.words, start, n))
	}
	return w
}

// extractBits reads n (<=31) bits starting at bit offset start from the
// word array, LSB-first.
func extractBits(words []uint64, start, n int64) uint32 {
	wi := start >> 6
	off := uint(start & 63)
	v := words[wi] >> off
	if off+uint(n) > 64 && int(wi+1) < len(words) {
		v |= words[wi+1] << (64 - off)
	}
	return uint32(v & (1<<uint(n) - 1))
}

// appendGroup adds one 31-bit literal group, merging into fills when
// possible.
func (w *WAH) appendGroup(g uint32) {
	allZero := g == 0
	allOne := g == (1<<wahGroupBits)-1
	if (allZero || allOne) && len(w.words) > 0 {
		last := w.words[len(w.words)-1]
		if last&wahFillFlag != 0 {
			fillOne := last&wahFillValue != 0
			count := last & wahMaxCount
			if fillOne == allOne && count < wahMaxCount {
				w.words[len(w.words)-1] = last + 1
				return
			}
		} else if (last == 0 && allZero) || (last == (1<<wahGroupBits)-1 && allOne) {
			// Merge previous literal with this group into a fill of 2.
			f := wahFillFlag | 2
			if allOne {
				f |= wahFillValue
			}
			w.words[len(w.words)-1] = f
			return
		}
	}
	if allZero || allOne {
		f := wahFillFlag | 1
		if allOne {
			f |= wahFillValue
		}
		w.words = append(w.words, f)
		return
	}
	w.words = append(w.words, g)
}

// Len returns the logical bit length.
func (w *WAH) Len() int64 { return w.n }

// SizeBytes returns the compressed representation size, including the
// header stored by MarshalBinary. This is what the storage-overhead
// experiment (Table I) accounts.
func (w *WAH) SizeBytes() int64 { return 8 + 4 + int64(4*len(w.words)) }

// Decompress expands back to an uncompressed bitmap.
func (w *WAH) Decompress() *Bitmap {
	b := New(w.n)
	var pos int64
	for _, word := range w.words {
		if word&wahFillFlag != 0 {
			count := int64(word & wahMaxCount)
			if word&wahFillValue != 0 {
				for g := int64(0); g < count; g++ {
					for j := 0; j < wahGroupBits; j++ {
						if pos >= w.n {
							return b
						}
						b.Set(pos)
						pos++
					}
				}
			} else {
				pos += count * wahGroupBits
				if pos > w.n {
					pos = w.n
				}
			}
			continue
		}
		for j := 0; j < wahGroupBits; j++ {
			if pos >= w.n {
				return b
			}
			if word&(1<<uint(j)) != 0 {
				b.Set(pos)
			}
			pos++
		}
	}
	return b
}

// Count returns the number of set bits without full decompression.
func (w *WAH) Count() int64 {
	var c, pos int64
	for _, word := range w.words {
		if word&wahFillFlag != 0 {
			count := int64(word&wahMaxCount) * wahGroupBits
			if pos+count > w.n {
				count = w.n - pos
			}
			if word&wahFillValue != 0 {
				c += count
			}
			pos += count
			continue
		}
		lit := word
		groupEnd := pos + wahGroupBits
		if groupEnd > w.n {
			lit &= (1 << uint(w.n-pos)) - 1
		}
		c += int64(bits.OnesCount32(lit))
		pos += wahGroupBits
	}
	return c
}

// Or returns the union of two WAH bitmaps of identical length. The
// operation decompresses group-at-a-time without materializing full
// bitmaps, mirroring how FastBit evaluates multi-bin range predicates.
func (w *WAH) Or(o *WAH) *WAH {
	return w.binop(o, func(a, b uint32) uint32 { return a | b })
}

// And returns the intersection of two WAH bitmaps of identical length.
func (w *WAH) And(o *WAH) *WAH {
	return w.binop(o, func(a, b uint32) uint32 { return a & b })
}

func (w *WAH) binop(o *WAH, op func(a, b uint32) uint32) *WAH {
	if w.n != o.n {
		panic(fmt.Sprintf("bitmap: WAH length mismatch %d vs %d", w.n, o.n))
	}
	out := &WAH{n: w.n}
	ai, bi := newWahIter(w), newWahIter(o)
	for ai.valid() && bi.valid() {
		out.appendGroup(op(ai.group(), bi.group()))
		ai.next()
		bi.next()
	}
	return out
}

// OrCount returns Count(w OR o) without materializing the union.
func (w *WAH) OrCount(o *WAH) int64 {
	return w.binopCount(o, func(a, b uint32) uint32 { return a | b })
}

// AndCount returns Count(w AND o) without materializing the
// intersection. The planner's cardinality probes use this to rank
// candidate bins, so the group stream is consumed in place with no
// output WAH allocated.
func (w *WAH) AndCount(o *WAH) int64 {
	return w.binopCount(o, func(a, b uint32) uint32 { return a & b })
}

func (w *WAH) binopCount(o *WAH, op func(a, b uint32) uint32) int64 {
	if w.n != o.n {
		panic(fmt.Sprintf("bitmap: WAH length mismatch %d vs %d", w.n, o.n))
	}
	var c, pos int64
	var ai, bi wahIter
	ai.words, bi.words = w.words, o.words
	ai.load()
	bi.load()
	for ai.valid() && bi.valid() {
		g := op(ai.group(), bi.group())
		if pos+wahGroupBits > w.n {
			// Final partial group: padding bits past n must not count.
			g &= (1 << uint(w.n-pos)) - 1
		}
		c += int64(bits.OnesCount32(g))
		pos += wahGroupBits
		ai.next()
		bi.next()
	}
	return c
}

// WAHBits walks the set bits of a WAH bitmap in ascending order without
// decompressing it and without allocating: one-fills are emitted as
// index runs, literals by trailing-zero stripping. Use as
//
//	it := w.Bits()
//	for i, ok := it.Next(); ok; i, ok = it.Next() { ... }
type WAHBits struct {
	words           []uint32
	n               int64
	wi              int
	pos             int64 // logical bit offset of the next unloaded group
	lit             uint32
	litBase         int64
	runNext, runEnd int64
}

// Bits returns an iterator over the set bits. The returned value is
// self-contained; copying it forks the iteration state.
func (w *WAH) Bits() WAHBits {
	return WAHBits{words: w.words, n: w.n}
}

// Next returns the next set bit index, or ok=false when exhausted.
func (it *WAHBits) Next() (int64, bool) {
	for {
		if it.runNext < it.runEnd {
			i := it.runNext
			it.runNext++
			return i, true
		}
		if it.lit != 0 {
			t := bits.TrailingZeros32(it.lit)
			it.lit &= it.lit - 1
			if i := it.litBase + int64(t); i < it.n {
				return i, true
			}
			// Padding bit past n in the final group; any further set
			// bits in this literal are also padding.
			it.lit = 0
			continue
		}
		if it.wi >= len(it.words) {
			return -1, false
		}
		word := it.words[it.wi]
		it.wi++
		if word&wahFillFlag != 0 {
			span := int64(word&wahMaxCount) * wahGroupBits
			if word&wahFillValue != 0 {
				it.runNext = it.pos
				it.runEnd = it.pos + span
				if it.runEnd > it.n {
					it.runEnd = it.n
				}
			}
			it.pos += span
		} else {
			it.lit = word
			it.litBase = it.pos
			it.pos += wahGroupBits
		}
	}
}

// wahIter walks a WAH word stream one 31-bit group at a time.
type wahIter struct {
	words []uint32
	wi    int
	// remaining groups in the current fill word (0 when on a literal)
	fillLeft uint32
	fillVal  uint32
}

func newWahIter(w *WAH) *wahIter {
	it := &wahIter{words: w.words}
	it.load()
	return it
}

func (it *wahIter) load() {
	if it.wi >= len(it.words) {
		return
	}
	word := it.words[it.wi]
	if word&wahFillFlag != 0 {
		it.fillLeft = word & wahMaxCount
		if word&wahFillValue != 0 {
			it.fillVal = (1 << wahGroupBits) - 1
		} else {
			it.fillVal = 0
		}
	} else {
		it.fillLeft = 0
	}
}

func (it *wahIter) valid() bool { return it.wi < len(it.words) }

func (it *wahIter) group() uint32 {
	if it.fillLeft > 0 {
		return it.fillVal
	}
	return it.words[it.wi]
}

func (it *wahIter) next() {
	if it.fillLeft > 1 {
		it.fillLeft--
		return
	}
	it.wi++
	it.load()
}

// MarshalBinary serializes: 8-byte bit length, 4-byte word count, words.
func (w *WAH) MarshalBinary() ([]byte, error) {
	out := make([]byte, 12+4*len(w.words))
	binary.LittleEndian.PutUint64(out, uint64(w.n))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(w.words)))
	for i, word := range w.words {
		binary.LittleEndian.PutUint32(out[12+4*i:], word)
	}
	return out, nil
}

// UnmarshalBinary deserializes a WAH bitmap from MarshalBinary output.
func (w *WAH) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("bitmap: truncated WAH header (%d bytes)", len(data))
	}
	n := int64(binary.LittleEndian.Uint64(data))
	nw := int(binary.LittleEndian.Uint32(data[8:]))
	if len(data) != 12+4*nw {
		return fmt.Errorf("bitmap: want %d WAH payload bytes, got %d", 4*nw, len(data)-12)
	}
	w.n = n
	w.words = make([]uint32, nw)
	for i := range w.words {
		w.words[i] = binary.LittleEndian.Uint32(data[12+4*i:])
	}
	return nil
}
