package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBitmap(n int64, density float64, seed int64) *Bitmap {
	b := New(n)
	r := rand.New(rand.NewSource(seed))
	for i := int64(0); i < n; i++ {
		if r.Float64() < density {
			b.Set(i)
		}
	}
	return b
}

func TestWAHRoundtripSparse(t *testing.T) {
	for _, n := range []int64{0, 1, 30, 31, 32, 62, 63, 100, 1000, 10000} {
		b := randomBitmap(n, 0.01, n+1)
		w := Compress(b)
		if w.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, w.Len())
		}
		back := w.Decompress()
		if !b.Equal(back) {
			t.Fatalf("n=%d: roundtrip mismatch", n)
		}
	}
}

func TestWAHRoundtripDense(t *testing.T) {
	for _, density := range []float64{0, 0.5, 0.99, 1} {
		b := randomBitmap(5000, density, int64(density*100)+3)
		back := Compress(b).Decompress()
		if !b.Equal(back) {
			t.Fatalf("density=%v: roundtrip mismatch", density)
		}
	}
}

func TestWAHRunsCompress(t *testing.T) {
	// A bitmap of one million zeros with a handful of set bits must
	// compress far below the plain representation — the property the
	// FastBit baseline's index sizes depend on.
	b := New(1 << 20)
	for _, i := range []int64{5, 100000, 999999} {
		b.Set(i)
	}
	w := Compress(b)
	plain := int64(8 + 8*len(b.Words()))
	if w.SizeBytes() > plain/100 {
		t.Fatalf("WAH size %d not << plain size %d", w.SizeBytes(), plain)
	}
	if !w.Decompress().Equal(b) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestWAHCount(t *testing.T) {
	for _, tc := range []struct {
		n       int64
		density float64
	}{{100, 0.1}, {1000, 0.5}, {31 * 7, 1}, {64, 0}, {12345, 0.03}} {
		b := randomBitmap(tc.n, tc.density, 99)
		w := Compress(b)
		if w.Count() != b.Count() {
			t.Fatalf("n=%d density=%v: WAH Count=%d, plain=%d", tc.n, tc.density, w.Count(), b.Count())
		}
	}
}

func TestWAHOrAnd(t *testing.T) {
	a := randomBitmap(5000, 0.05, 1)
	b := randomBitmap(5000, 0.05, 2)
	wa, wb := Compress(a), Compress(b)

	or := wa.Or(wb).Decompress()
	and := wa.And(wb).Decompress()

	wantOr := a.Clone()
	wantOr.Or(b)
	wantAnd := a.Clone()
	wantAnd.And(b)

	if !or.Equal(wantOr) {
		t.Error("WAH Or mismatch")
	}
	if !and.Equal(wantAnd) {
		t.Error("WAH And mismatch")
	}
}

func TestWAHOrWithFills(t *testing.T) {
	// Long runs in both operands exercise the fill-vs-fill path.
	a := New(31 * 100)
	b := New(31 * 100)
	for i := int64(0); i < 31*50; i++ {
		a.Set(i)
	}
	for i := int64(31 * 25); i < 31*75; i++ {
		b.Set(i)
	}
	or := Compress(a).Or(Compress(b)).Decompress()
	want := a.Clone()
	want.Or(b)
	if !or.Equal(want) {
		t.Fatal("fill-heavy Or mismatch")
	}
}

func TestWAHLengthMismatchPanics(t *testing.T) {
	a, b := Compress(New(31)), Compress(New(62))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.Or(b)
}

func TestWAHMarshalRoundtrip(t *testing.T) {
	b := randomBitmap(4321, 0.07, 5)
	w := Compress(b)
	data, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != w.SizeBytes() {
		t.Fatalf("SizeBytes %d != marshaled length %d", w.SizeBytes(), len(data))
	}
	var back WAH
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.Decompress().Equal(b) {
		t.Fatal("marshal roundtrip mismatch")
	}
	if err := back.UnmarshalBinary(data[:3]); err == nil {
		t.Fatal("truncated header accepted")
	}
	if err := back.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestWAHQuickRoundtrip(t *testing.T) {
	f := func(seed int64, d uint8) bool {
		density := float64(d%100) / 100
		b := randomBitmap(2000, density, seed)
		return Compress(b).Decompress().Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWAHQuickOpsMatchPlain(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomBitmap(1500, 0.1, s1)
		b := randomBitmap(1500, 0.1, s2)
		or := Compress(a).Or(Compress(b)).Decompress()
		want := a.Clone()
		want.Or(b)
		return or.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWAHCompress(b *testing.B) {
	bm := randomBitmap(1<<18, 0.01, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Compress(bm)
	}
}

func BenchmarkWAHOr(b *testing.B) {
	x := Compress(randomBitmap(1<<18, 0.01, 1))
	y := Compress(randomBitmap(1<<18, 0.01, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Or(y)
	}
}
