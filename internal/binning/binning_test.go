package binning

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func uniformSample(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64() * 100
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(EqualFrequency, nil, 10); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Build(EqualFrequency, []float64{1}, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := Build("bogus", []float64{1}, 1); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := Build(EqualFrequency, []float64{1, math.NaN()}, 2); err == nil {
		t.Error("NaN sample accepted")
	}
}

func TestEqualFrequencyBalance(t *testing.T) {
	// On a skewed distribution, equal-frequency binning must stay
	// balanced where equal-width collapses most points into few bins —
	// the paper's argument for equal-frequency (§III-B1).
	r := rand.New(rand.NewSource(42))
	values := make([]float64, 100000)
	for i := range values {
		values[i] = math.Exp(r.NormFloat64() * 2) // log-normal, heavy tail
	}
	ef, err := Build(EqualFrequency, values, 50)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := Build(EqualWidth, values, 50)
	if err != nil {
		t.Fatal(err)
	}
	efRatio := ef.ImbalanceRatio(values)
	ewRatio := ew.ImbalanceRatio(values)
	if efRatio > 1.5 {
		t.Errorf("equal-frequency imbalance %.2f too high", efRatio)
	}
	if ewRatio < 5 {
		t.Errorf("equal-width imbalance %.2f unexpectedly low on log-normal data", ewRatio)
	}
}

func TestBinOfBoundaries(t *testing.T) {
	s, err := FromBounds([]float64{0, 10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0},   // below range clamps to 0
		{0, 0},    // left edge
		{9.99, 0}, // interior
		{10, 1},   // boundary belongs to right bin
		{19.99, 1},
		{20, 2},
		{29.99, 2},
		{30, 2}, // global max clamps into last bin
		{35, 2}, // above range clamps to last
	}
	for _, c := range cases {
		if got := s.BinOf(c.v); got != c.want {
			t.Errorf("BinOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBinOfCoversAllValues(t *testing.T) {
	// Applying sample-derived bounds to the full dataset (which may
	// exceed the sample's range) must still assign every value to a
	// valid bin.
	sample := uniformSample(1000, 1)
	s, err := Build(EqualFrequency, sample, 100)
	if err != nil {
		t.Fatal(err)
	}
	full := uniformSample(10000, 2)
	full = append(full, -1000, 1000) // out of sample range
	for _, v := range full {
		b := s.BinOf(v)
		if b < 0 || b >= s.NumBins() {
			t.Fatalf("BinOf(%v) = %d out of range", v, b)
		}
	}
}

func TestFromBoundsValidation(t *testing.T) {
	if _, err := FromBounds([]float64{1}); err == nil {
		t.Error("single bound accepted")
	}
	if _, err := FromBounds([]float64{1, 1}); err == nil {
		t.Error("non-increasing bounds accepted")
	}
	if _, err := FromBounds([]float64{2, 1}); err == nil {
		t.Error("decreasing bounds accepted")
	}
}

func TestDegenerateAllEqualSample(t *testing.T) {
	s, err := Build(EqualFrequency, []float64{5, 5, 5, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBins() < 1 {
		t.Fatal("no bins for constant sample")
	}
	if got := s.BinOf(5); got != 0 {
		t.Errorf("BinOf(5) = %d", got)
	}
}

func TestClassify(t *testing.T) {
	s, _ := FromBounds([]float64{0, 10, 20, 30})
	cases := []struct {
		bin  int
		vc   ValueConstraint
		want Alignment
	}{
		{0, ValueConstraint{0, 10}, Aligned},     // covers [0,10)
		{0, ValueConstraint{-5, 50}, Aligned},    // superset
		{0, ValueConstraint{5, 50}, Misaligned},  // cuts into bin 0
		{0, ValueConstraint{15, 18}, Disjoint},   // entirely in bin 1
		{1, ValueConstraint{10, 20}, Aligned},    // covers [10,20)
		{1, ValueConstraint{12, 15}, Misaligned}, // interior
		{1, ValueConstraint{0, 9}, Disjoint},     // left of bin
		{1, ValueConstraint{25, 30}, Disjoint},   // right of bin
		{2, ValueConstraint{20, 30}, Aligned},    // last bin closed on right
		{2, ValueConstraint{20, 29}, Misaligned}, // cuts the closed top
		{2, ValueConstraint{31, 40}, Disjoint},   // beyond range
		{1, ValueConstraint{20, 25}, Disjoint},   // vc.Min == bin hi (exclusive)
		{2, ValueConstraint{30, 35}, Misaligned}, // touches the inclusive max
	}
	for _, c := range cases {
		if got := s.Classify(c.bin, c.vc); got != c.want {
			t.Errorf("Classify(bin %d, %+v) = %v, want %v", c.bin, c.vc, got, c.want)
		}
	}
}

func TestSelectBins(t *testing.T) {
	s, _ := FromBounds([]float64{0, 10, 20, 30, 40})
	aligned, mis := s.SelectBins(ValueConstraint{10, 35})
	// Bins [10,20) and [20,30) aligned, [30,40] misaligned.
	if len(aligned) != 2 || aligned[0] != 1 || aligned[1] != 2 {
		t.Errorf("aligned = %v", aligned)
	}
	if len(mis) != 1 || mis[0] != 3 {
		t.Errorf("misaligned = %v", mis)
	}
}

func TestSelectBinsConsistentWithContains(t *testing.T) {
	// Property: every value satisfying vc must live in a selected bin,
	// and every value in an aligned bin must satisfy vc.
	values := uniformSample(5000, 3)
	s, err := Build(EqualFrequency, values, 37)
	if err != nil {
		t.Fatal(err)
	}
	vc := ValueConstraint{Min: 20, Max: 60}
	aligned, mis := s.SelectBins(vc)
	selected := map[int]bool{}
	alignedSet := map[int]bool{}
	for _, b := range aligned {
		selected[b] = true
		alignedSet[b] = true
	}
	for _, b := range mis {
		selected[b] = true
	}
	for _, v := range values {
		b := s.BinOf(v)
		if vc.Contains(v) && !selected[b] {
			t.Fatalf("value %v satisfies vc but its bin %d was not selected", v, b)
		}
		if alignedSet[b] && !vc.Contains(v) {
			t.Fatalf("value %v in aligned bin %d violates vc", v, b)
		}
	}
}

func TestCoverRange(t *testing.T) {
	s, _ := FromBounds([]float64{0, 10, 20, 30})
	// Covered extremes: same scheme back, untouched.
	if got := s.CoverRange(0, 30); got != s {
		t.Fatal("CoverRange with covered extremes rebuilt the scheme")
	}
	if got := s.CoverRange(5, 25); got != s {
		t.Fatal("CoverRange with interior extremes rebuilt the scheme")
	}
	// Widening: outer bounds move, interior bounds and receiver do not.
	w := s.CoverRange(-5, 42)
	if b := w.Bounds(); b[0] != -5 || b[1] != 10 || b[2] != 20 || b[3] != 42 {
		t.Fatalf("widened bounds = %v", b)
	}
	if b := s.Bounds(); b[0] != 0 || b[3] != 30 {
		t.Fatalf("receiver mutated: %v", b)
	}
	// One-sided widening.
	if b := s.CoverRange(-1, 7).Bounds(); b[0] != -1 || b[3] != 30 {
		t.Fatalf("low-side widening = %v", b)
	}
	if b := s.CoverRange(3, 31).Bounds(); b[0] != 0 || b[3] != 31 {
		t.Fatalf("high-side widening = %v", b)
	}
	// NaN extremes are ignored.
	if got := s.CoverRange(math.NaN(), math.NaN()); got != s {
		t.Fatal("NaN extremes rebuilt the scheme")
	}
	// After widening, clamped values satisfy their bin's nominal range
	// and Classify stops over-reporting alignment for the edge bin.
	if a := w.Classify(0, ValueConstraint{Min: 0, Max: 10}); a != Misaligned {
		t.Fatalf("widened bin 0 vs [0,10] = %v, want misaligned", a)
	}
	if a := w.Classify(0, ValueConstraint{Min: -5, Max: 10}); a != Aligned {
		t.Fatalf("widened bin 0 vs [-5,10] = %v, want aligned", a)
	}
}

func TestHistogramSums(t *testing.T) {
	values := uniformSample(1234, 4)
	s, _ := Build(EqualFrequency, values, 10)
	h := s.Histogram(values)
	var sum int64
	for _, c := range h {
		sum += c
	}
	if sum != int64(len(values)) {
		t.Fatalf("histogram sums to %d, want %d", sum, len(values))
	}
}

func TestBinRangePanics(t *testing.T) {
	s, _ := FromBounds([]float64{0, 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.BinRange(1)
}

func TestQuickBinOfInRange(t *testing.T) {
	s, err := Build(EqualFrequency, uniformSample(500, 9), 20)
	if err != nil {
		t.Fatal(err)
	}
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		b := s.BinOf(v)
		return b >= 0 && b < s.NumBins()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAlignedBinsSatisfyVC(t *testing.T) {
	s, err := Build(EqualFrequency, uniformSample(2000, 11), 25)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 100)
		b = math.Mod(math.Abs(b), 100)
		if a > b {
			a, b = b, a
		}
		vc := ValueConstraint{Min: a, Max: b}
		aligned, _ := s.SelectBins(vc)
		for _, bin := range aligned {
			lo, hi := s.BinRange(bin)
			if !vc.Contains(lo) {
				return false
			}
			// hi is exclusive except last bin; check a point just inside.
			probe := math.Nextafter(hi, lo)
			if probe >= lo && !vc.Contains(probe) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBinOf(b *testing.B) {
	s, _ := Build(EqualFrequency, uniformSample(100000, 1), 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.BinOf(float64(i % 100))
	}
}

func BenchmarkBuildEqualFrequency(b *testing.B) {
	sample := uniformSample(100000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Build(EqualFrequency, sample, 100)
	}
}
