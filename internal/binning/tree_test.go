package binning

import (
	"math/rand"
	"sort"
	"testing"
)

func TestNewTreeValidation(t *testing.T) {
	s, _ := FromBounds([]float64{0, 1, 2})
	if _, err := NewTree(s, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
	if _, err := NewTree(s, 0); err == nil {
		t.Error("fanout 0 accepted")
	}
}

func TestTreeShape(t *testing.T) {
	cases := []struct {
		bins, fanout int
		wantLevels   int
		wantNodes    int
	}{
		{1, 2, 1, 1},     // single leaf is the root
		{2, 2, 2, 3},     // 2 + 1
		{7, 2, 4, 14},    // 7+4+2+1
		{8, 2, 4, 15},    // 8+4+2+1
		{9, 4, 3, 13},    // 9+3+1
		{100, 4, 5, 135}, // 100+25+7+2+1
	}
	for _, c := range cases {
		bounds := make([]float64, c.bins+1)
		for i := range bounds {
			bounds[i] = float64(i)
		}
		s, err := FromBounds(bounds)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTree(s, c.fanout)
		if err != nil {
			t.Fatal(err)
		}
		if tr.NumLevels() != c.wantLevels {
			t.Errorf("bins=%d fanout=%d: levels = %d, want %d", c.bins, c.fanout, tr.NumLevels(), c.wantLevels)
		}
		if tr.NumNodes() != c.wantNodes {
			t.Errorf("bins=%d fanout=%d: nodes = %d, want %d", c.bins, c.fanout, tr.NumNodes(), c.wantNodes)
		}
		root := tr.Root()
		if lo, hi := tr.Leaves(root); lo != 0 || hi != c.bins {
			t.Errorf("root covers [%d,%d), want [0,%d)", lo, hi, c.bins)
		}
		// Every level partitions the leaves exactly.
		for l := 0; l < tr.NumLevels(); l++ {
			covered := 0
			for i := 0; i < tr.LevelWidth(l); i++ {
				lo, hi := tr.Leaves(NodeRef{Level: l, Index: i})
				if lo != covered {
					t.Fatalf("level %d node %d starts at %d, want %d", l, i, lo, covered)
				}
				covered = hi
			}
			if covered != c.bins {
				t.Fatalf("level %d covers %d leaves, want %d", l, covered, c.bins)
			}
		}
	}
}

func TestTreeLeavesPanicsOutOfTree(t *testing.T) {
	s, _ := FromBounds([]float64{0, 1, 2})
	tr, _ := NewTree(s, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.Leaves(NodeRef{Level: 0, Index: 5})
}

// Select must agree exactly with the flat SelectBins classification:
// expanded inside subtrees == aligned bins, boundary == misaligned, and
// the pruning accounting must partition the leaf space.
func TestTreeSelectMatchesFlat(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nbins := 1 + r.Intn(60)
		fanout := 2 + r.Intn(5)
		bounds := make([]float64, 0, nbins+1)
		v := r.Float64() * 10
		bounds = append(bounds, v)
		for len(bounds) < nbins+1 {
			v += 0.1 + r.Float64()*5
			bounds = append(bounds, v)
		}
		s, err := FromBounds(bounds)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTree(s, fanout)
		if err != nil {
			t.Fatal(err)
		}
		lo := bounds[0] - 2 + r.Float64()*(v-bounds[0]+4)
		hi := lo + r.Float64()*(v-bounds[0]+2)
		vc := ValueConstraint{Min: lo, Max: hi}

		sel := tr.Select(vc)
		aligned, mis := s.SelectBins(vc)

		if got := tr.InsideLeaves(sel); !equalInts(got, aligned) {
			t.Fatalf("trial %d (bins=%d fanout=%d vc=%+v): inside leaves %v != aligned %v",
				trial, nbins, fanout, vc, got, aligned)
		}
		if !equalInts(sel.Boundary, mis) {
			t.Fatalf("trial %d: boundary %v != misaligned %v", trial, sel.Boundary, mis)
		}
		if sel.CoveredLeaves+sel.PrunedLeaves+len(sel.Boundary) != nbins {
			t.Fatalf("trial %d: covered %d + pruned %d + boundary %d != %d",
				trial, sel.CoveredLeaves, sel.PrunedLeaves, len(sel.Boundary), nbins)
		}
		if sel.NodesVisited < 1 || sel.NodesVisited > tr.NumNodes() {
			t.Fatalf("trial %d: visited %d nodes of %d", trial, sel.NodesVisited, tr.NumNodes())
		}
		// Inside roots must be maximal: sorted by leaf order, disjoint.
		prev := -1
		for _, n := range sel.Inside {
			l, h := tr.Leaves(n)
			if l <= prev {
				t.Fatalf("trial %d: inside roots overlap or out of order", trial)
			}
			prev = h - 1
		}
	}
}

// A wide aligned constraint must resolve near the root, not per leaf.
func TestTreeSelectPrunesWork(t *testing.T) {
	bounds := make([]float64, 257)
	for i := range bounds {
		bounds[i] = float64(i)
	}
	s, _ := FromBounds(bounds)
	tr, _ := NewTree(s, 4)

	// Fully covering constraint: the root alone answers it.
	sel := tr.Select(ValueConstraint{Min: 0, Max: 256})
	if len(sel.Inside) != 1 || sel.Inside[0] != tr.Root() {
		t.Fatalf("full-range inside = %v", sel.Inside)
	}
	if sel.NodesVisited != 1 {
		t.Fatalf("full-range visited %d nodes, want 1", sel.NodesVisited)
	}

	// Fully disjoint constraint: root prunes everything.
	sel = tr.Select(ValueConstraint{Min: 500, Max: 600})
	if sel.PrunedLeaves != 256 || sel.NodesVisited != 1 {
		t.Fatalf("disjoint: pruned %d, visited %d", sel.PrunedLeaves, sel.NodesVisited)
	}

	// A 25% aligned range touches O(fanout·depth) nodes, far fewer than
	// one probe per bin.
	sel = tr.Select(ValueConstraint{Min: 0, Max: 64})
	if sel.NodesVisited >= 64 {
		t.Fatalf("quarter-range visited %d nodes, want far fewer than 64", sel.NodesVisited)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	if !sort.IntsAreSorted(a) || !sort.IntsAreSorted(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
