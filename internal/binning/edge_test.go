package binning

import (
	"math"
	"testing"
)

// Table-driven edge cases for BinOf: NaN, ±Inf, and boundary duplicates
// from skewed builds (satellite of the hierarchical-index PR).
func TestBinOfEdgeCases(t *testing.T) {
	s, err := FromBounds([]float64{-10, 0, 10})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		v    float64
		want int
	}{
		{"nan clamps to bin 0", math.NaN(), 0},
		{"-inf clamps to bin 0", math.Inf(-1), 0},
		{"+inf clamps to last", math.Inf(1), 1},
		{"-max clamps to bin 0", -math.MaxFloat64, 0},
		{"+max clamps to last", math.MaxFloat64, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := s.BinOf(c.v); got != c.want {
				t.Errorf("BinOf(%v) = %d, want %d", c.v, got, c.want)
			}
		})
	}

	// Infinite outer bounds (from CoverRange over ±Inf data) must still
	// assign every input, including the infinities themselves.
	inf, err := FromBounds([]float64{math.Inf(-1), 0, math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	infCases := []struct {
		name string
		v    float64
		want int
	}{
		{"-inf lands in bin 0", math.Inf(-1), 0},
		{"+inf lands in last", math.Inf(1), 1},
		{"nan lands in bin 0", math.NaN(), 0},
		{"finite negative", -5, 0},
		{"finite positive", 5, 1},
		{"boundary zero goes right", 0, 1},
	}
	for _, c := range infCases {
		t.Run("inf-bounds/"+c.name, func(t *testing.T) {
			if got := inf.BinOf(c.v); got != c.want {
				t.Errorf("BinOf(%v) = %d, want %d", c.v, got, c.want)
			}
		})
	}
}

func TestCoverRangeEdgeCases(t *testing.T) {
	s, _ := FromBounds([]float64{0, 10, 20})
	cases := []struct {
		name   string
		lo, hi float64
		same   bool // expect the receiver back, untouched
		wantLo float64
		wantHi float64
	}{
		{"empty range is a no-op", 5, 3, true, 0, 20},
		{"all-NaN scan extremes (+inf,-inf) is a no-op", math.Inf(1), math.Inf(-1), true, 0, 20},
		{"nan lo is a no-op", math.NaN(), 30, true, 0, 20},
		{"nan hi is a no-op", -5, math.NaN(), true, 0, 20},
		{"both nan is a no-op", math.NaN(), math.NaN(), true, 0, 20},
		{"widen to -inf", math.Inf(-1), 15, false, math.Inf(-1), 20},
		{"widen to +inf", 5, math.Inf(1), false, 0, math.Inf(1)},
		{"widen both infinite", math.Inf(-1), math.Inf(1), false, math.Inf(-1), math.Inf(1)},
		{"single point inside", 7, 7, true, 0, 20},
		{"single point below", -3, -3, false, -3, 20},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := s.CoverRange(c.lo, c.hi)
			if c.same {
				if got != s {
					t.Fatalf("expected untouched receiver, got bounds %v", got.Bounds())
				}
				return
			}
			b := got.Bounds()
			if b[0] != c.wantLo || b[len(b)-1] != c.wantHi {
				t.Fatalf("bounds = %v, want outer [%v, %v]", b, c.wantLo, c.wantHi)
			}
			// Widening must preserve strict increase (round-trippable
			// through FromBounds, which the store meta path relies on).
			if _, err := FromBounds(b); err != nil {
				t.Fatalf("widened bounds not valid: %v", err)
			}
		})
	}
}

// Near-constant and extreme-valued samples must still produce strictly
// increasing bounds — the store meta round-trips them through
// FromBounds, so a degenerate build would brick Open.
func TestBuildDegenerateSamples(t *testing.T) {
	cases := []struct {
		name   string
		sample []float64
	}{
		{"constant zero", []float64{0, 0, 0}},
		{"constant huge", []float64{math.MaxFloat64, math.MaxFloat64}},
		{"constant -huge", []float64{-math.MaxFloat64, -math.MaxFloat64}},
		{"constant +inf", []float64{math.Inf(1), math.Inf(1)}},
		{"constant -inf", []float64{math.Inf(-1), math.Inf(-1)}},
		{"near-constant ulp apart", []float64{1, math.Nextafter(1, 2)}},
		{"straddling extremes", []float64{-math.MaxFloat64, math.MaxFloat64}},
		{"inf extremes", []float64{math.Inf(-1), 0, math.Inf(1)}},
		{"tiny denormals", []float64{0, math.SmallestNonzeroFloat64}},
	}
	for _, strategy := range []Strategy{EqualFrequency, EqualWidth} {
		for _, c := range cases {
			t.Run(string(strategy)+"/"+c.name, func(t *testing.T) {
				s, err := Build(strategy, c.sample, 8)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := FromBounds(s.Bounds()); err != nil {
					t.Fatalf("bounds %v not round-trippable: %v", s.Bounds(), err)
				}
				for _, v := range c.sample {
					if b := s.BinOf(v); b < 0 || b >= s.NumBins() {
						t.Fatalf("BinOf(%v) = %d out of [0,%d)", v, b, s.NumBins())
					}
				}
			})
		}
	}
}

// Duplicate quantiles from heavily tied samples collapse, shrinking the
// effective bin count instead of producing equal adjacent bounds.
func TestBuildCollapsesTiedQuantiles(t *testing.T) {
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = 5 // 97 ties...
	}
	sample[0], sample[1], sample[2] = 1, 2, 9
	s, err := Build(EqualFrequency, sample, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromBounds(s.Bounds()); err != nil {
		t.Fatalf("tied build produced invalid bounds: %v", err)
	}
	if s.NumBins() >= 16 {
		t.Fatalf("expected collapsed bin count, got %d", s.NumBins())
	}
}
