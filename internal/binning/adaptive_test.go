package binning

import (
	"math"
	"math/rand"
	"testing"
)

func TestAdaptValidation(t *testing.T) {
	s, _ := FromBounds([]float64{0, 1, 2})
	if _, _, err := s.Adapt(nil, AdaptOptions{}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, err := s.Adapt([]float64{math.NaN(), math.NaN()}, AdaptOptions{}); err == nil {
		t.Error("all-NaN sample accepted")
	}
}

func TestAdaptPreservesOuterBoundsAndValidity(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		sample := make([]float64, 500)
		for i := range sample {
			sample[i] = math.Exp(r.NormFloat64()) // skewed
		}
		s, err := Build(EqualFrequency, uniformSample(200, int64(trial)), 16)
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := s.Adapt(sample, AdaptOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, ob := out.Bounds(), s.Bounds()
		if b[0] != ob[0] || b[len(b)-1] != ob[len(ob)-1] {
			t.Fatalf("trial %d: outer bounds moved: %v -> [%v, %v]",
				trial, []float64{ob[0], ob[len(ob)-1]}, b[0], b[len(b)-1])
		}
		if _, err := FromBounds(b); err != nil {
			t.Fatalf("trial %d: adapted bounds invalid: %v", trial, err)
		}
		if stats.BinsAfter != out.NumBins() || stats.BinsBefore != s.NumBins() {
			t.Fatalf("trial %d: stats bins %+v inconsistent", trial, stats)
		}
	}
}

func TestAdaptSplitsHotMergesCold(t *testing.T) {
	// Uniform bounds over [0,100] but the sample piles into [40,45]:
	// the hot leaves must split and the empty ones must merge, improving
	// balance.
	bounds := make([]float64, 11)
	for i := range bounds {
		bounds[i] = float64(i * 10)
	}
	s, _ := FromBounds(bounds)
	r := rand.New(rand.NewSource(5))
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = 40 + r.Float64()*5
	}
	out, stats, err := s.Adapt(sample, AdaptOptions{MaxBins: 20})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Split == 0 {
		t.Error("hot bin not split")
	}
	if stats.Merged == 0 {
		t.Error("cold bins not merged")
	}
	if stats.ImbalanceAfter >= stats.ImbalanceBefore {
		t.Errorf("imbalance did not improve: %.2f -> %.2f",
			stats.ImbalanceBefore, stats.ImbalanceAfter)
	}
	if out.NumBins() > 20 {
		t.Errorf("MaxBins exceeded: %d", out.NumBins())
	}
}

func TestAdaptRespectsMinBins(t *testing.T) {
	bounds := make([]float64, 9)
	for i := range bounds {
		bounds[i] = float64(i)
	}
	s, _ := FromBounds(bounds)
	// All the mass in one bin: everything else is cold and mergeable,
	// but the floor must hold.
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = 3.5
	}
	out, _, err := s.Adapt(sample, AdaptOptions{MinBins: 4, MaxBins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumBins() < 4 {
		t.Fatalf("MinBins violated: %d bins", out.NumBins())
	}
}

func TestAdaptConstantSampleIsStable(t *testing.T) {
	s, _ := FromBounds([]float64{0, 1, 2, 3})
	sample := []float64{1.5, 1.5, 1.5, 1.5}
	out, _, err := s.Adapt(sample, AdaptOptions{MergeThreshold: -1, SplitThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromBounds(out.Bounds()); err != nil {
		t.Fatalf("constant-sample adapt invalid: %v", err)
	}
}

func TestAdaptDeterministic(t *testing.T) {
	s, _ := Build(EqualFrequency, uniformSample(300, 8), 12)
	sample := uniformSample(1000, 9)
	a, _, err := s.Adapt(sample, AdaptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Adapt(sample, AdaptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ab, bb := a.Bounds(), b.Bounds()
	if len(ab) != len(bb) {
		t.Fatalf("non-deterministic bin count: %d vs %d", len(ab), len(bb))
	}
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("non-deterministic bound %d: %v vs %v", i, ab[i], bb[i])
		}
	}
}
