package binning

import (
	"fmt"
	"math"
	"sort"
)

// AdaptOptions bounds the sample-driven re-balancing pass.
type AdaptOptions struct {
	// MaxBins caps the bin count after splitting (default 2× current).
	MaxBins int
	// MinBins floors the bin count after merging (default 1).
	MinBins int
	// SplitThreshold marks a leaf hot when its sample count exceeds
	// SplitThreshold × the mean per-bin count (default 2).
	SplitThreshold float64
	// MergeThreshold merges an adjacent run while its combined count
	// stays below MergeThreshold × the mean (default 0.5).
	MergeThreshold float64
}

// AdaptStats reports what a re-balancing pass did.
type AdaptStats struct {
	BinsBefore, BinsAfter int
	// Split is the number of hot leaves split; Merged is the number of
	// bins removed by merging cold runs.
	Split, Merged int
	// ImbalanceBefore/After are the sample's max/mean occupancy ratios
	// under the old and new boundaries.
	ImbalanceBefore, ImbalanceAfter float64
}

// Adapt re-balances the scheme against a fresh sample: hot leaves
// (skewed data piling into few bins) split at in-bin sample quantiles,
// and runs of cold adjacent leaves merge, keeping the super-bin tree
// balanced under drifting or skewed distributions. The outer bounds are
// preserved exactly, so the adapted scheme covers the same value range
// and every stored value keeps a bin. NaN sample values are ignored
// (they carry no ordering information); an all-NaN or empty sample is
// an error. The pass is deterministic for a given sample.
func (s *Scheme) Adapt(sample []float64, opt AdaptOptions) (*Scheme, AdaptStats, error) {
	sorted := make([]float64, 0, len(sample))
	for _, v := range sample {
		if !math.IsNaN(v) {
			sorted = append(sorted, v)
		}
	}
	if len(sorted) == 0 {
		return nil, AdaptStats{}, fmt.Errorf("binning: adapt needs a non-NaN sample")
	}
	sort.Float64s(sorted)
	if opt.SplitThreshold <= 0 {
		opt.SplitThreshold = 2
	}
	if opt.MergeThreshold <= 0 {
		opt.MergeThreshold = 0.5
	}
	if opt.MaxBins <= 0 {
		opt.MaxBins = 2 * s.NumBins()
	}
	if opt.MinBins <= 0 {
		opt.MinBins = 1
	}

	stats := AdaptStats{BinsBefore: s.NumBins(), ImbalanceBefore: s.ImbalanceRatio(sorted)}

	// Split pass: walk the leaves with their sample occupancy and cut
	// hot ones at in-bin quantiles. Occupancy comes from the sorted
	// sample by boundary search, so the pass is O(n log n) overall.
	counts := s.histogramSorted(sorted)
	total := 0
	for _, c := range counts {
		total += c
	}
	mean := float64(total) / float64(s.NumBins())
	bounds := make([]float64, 0, s.NumBins()+1)
	newCounts := make([]int, 0, s.NumBins())
	bounds = append(bounds, s.bounds[0])
	budget := opt.MaxBins - s.NumBins()
	for i := 0; i < s.NumBins(); i++ {
		lo, hi := s.bounds[i], s.bounds[i+1]
		c := counts[i]
		parts := 1
		if float64(c) > opt.SplitThreshold*mean && budget > 0 && mean > 0 {
			parts = int(math.Ceil(float64(c) / mean))
			if parts-1 > budget {
				parts = budget + 1
			}
		}
		inBin := binSample(sorted, lo, hi, i == s.NumBins()-1)
		if len(inBin) < 2 {
			// Bin 0 can be hot purely from below-range clamped values
			// that binSample cannot see; nothing to cut on.
			parts = 1
		}
		if parts > 1 {
			// Cut at the bin's sample quantiles; duplicate quantile
			// values collapse cuts, so a bin of tied values stays whole.
			added, prevCut := 0, 0
			for k := 1; k < parts; k++ {
				cutIdx := len(inBin) * k / parts
				cut := inBin[cutIdx]
				if cut > bounds[len(bounds)-1] && cut < hi {
					newCounts = append(newCounts, cutIdx-prevCut)
					prevCut = cutIdx
					bounds = append(bounds, cut)
					added++
				}
			}
			newCounts = append(newCounts, len(inBin)-prevCut)
			if added > 0 {
				stats.Split++
				budget -= added
			}
		} else {
			newCounts = append(newCounts, c)
		}
		bounds = append(bounds, hi)
	}

	// Merge pass: greedily extend a run of adjacent bins while its
	// combined occupancy stays cold and the floor allows another merge.
	// bounds has len(newCounts)+1 entries, so the run [i, j] collapses
	// to the single boundary pair (bounds[i], bounds[j+1]).
	merged := make([]float64, 0, len(bounds))
	merged = append(merged, bounds[0])
	binsNow := len(newCounts)
	for i := 0; i < len(newCounts); {
		c := newCounts[i]
		j := i
		for j+1 < len(newCounts) && binsNow > opt.MinBins &&
			float64(c+newCounts[j+1]) < opt.MergeThreshold*mean {
			j++
			c += newCounts[j]
			binsNow--
			stats.Merged++
		}
		merged = append(merged, bounds[j+1])
		i = j + 1
	}

	out := &Scheme{bounds: merged}
	stats.BinsAfter = out.NumBins()
	stats.ImbalanceAfter = out.ImbalanceRatio(sorted)
	return out, stats, nil
}

// histogramSorted counts per-bin occupancy of an ascending sample by
// boundary search (no per-value BinOf).
func (s *Scheme) histogramSorted(sorted []float64) []int {
	counts := make([]int, s.NumBins())
	for i := 0; i < s.NumBins(); i++ {
		lo, hi := s.bounds[i], s.bounds[i+1]
		a := sort.SearchFloat64s(sorted, lo)
		var b int
		if i == s.NumBins()-1 {
			b = len(sorted) // last bin is closed on the right
		} else {
			b = sort.SearchFloat64s(sorted, hi)
		}
		if i == 0 {
			a = 0 // below-range values clamp into bin 0, like BinOf
		}
		if b < a {
			b = a
		}
		counts[i] = b - a
	}
	return counts
}

// binSample slices the ascending sample values belonging to [lo, hi)
// (closed at hi when last).
func binSample(sorted []float64, lo, hi float64, last bool) []float64 {
	a := sort.SearchFloat64s(sorted, lo)
	b := sort.SearchFloat64s(sorted, hi)
	if last {
		b = len(sorted)
	}
	if a >= b {
		return nil
	}
	return sorted[a:b]
}
