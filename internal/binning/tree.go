package binning

import "fmt"

// Tree is a static fanout-ary hierarchy of super-bins over a Scheme's
// leaf bins, following the multi-level bin-tree design of hierarchical
// bitmap indexing (arXiv 2108.13735): level 0 is the leaves, level l
// groups fanout nodes of level l-1, and the top level holds a single
// root. A node's shape is pure arithmetic over (level, index), so the
// tree stores no per-node state — callers attach payloads (such as
// OR-aggregated bitmaps) keyed by NodeRef.
type Tree struct {
	scheme *Scheme
	fanout int
	// width[l] is the node count at level l; width[0] == NumBins() and
	// width[len-1] == 1.
	width []int
}

// NodeRef addresses one tree node: Level 0 is the leaves, the highest
// level is the root.
type NodeRef struct {
	Level, Index int
}

// NewTree builds the super-bin hierarchy over the scheme's leaves.
// fanout must be at least 2; a single-bin scheme yields a one-node
// tree (the leaf is the root).
func NewTree(s *Scheme, fanout int) (*Tree, error) {
	if fanout < 2 {
		return nil, fmt.Errorf("binning: tree fanout %d < 2", fanout)
	}
	width := []int{s.NumBins()}
	for width[len(width)-1] > 1 {
		w := (width[len(width)-1] + fanout - 1) / fanout
		width = append(width, w)
	}
	return &Tree{scheme: s, fanout: fanout, width: width}, nil
}

// Scheme returns the leaf binning scheme the tree is built over.
func (t *Tree) Scheme() *Scheme { return t.scheme }

// Fanout returns the tree arity.
func (t *Tree) Fanout() int { return t.fanout }

// NumLevels returns the level count (1 for a single-bin scheme).
func (t *Tree) NumLevels() int { return len(t.width) }

// LevelWidth returns the node count at level l.
func (t *Tree) LevelWidth(l int) int { return t.width[l] }

// NumNodes returns the total node count across all levels.
func (t *Tree) NumNodes() int {
	n := 0
	for _, w := range t.width {
		n += w
	}
	return n
}

// Root returns the top node.
func (t *Tree) Root() NodeRef { return NodeRef{Level: len(t.width) - 1, Index: 0} }

// Leaves returns the half-open leaf-bin range [lo, hi) a node covers.
func (t *Tree) Leaves(n NodeRef) (lo, hi int) {
	if n.Level < 0 || n.Level >= len(t.width) || n.Index < 0 || n.Index >= t.width[n.Level] {
		panic(fmt.Sprintf("binning: node %+v out of tree (levels %d)", n, len(t.width)))
	}
	span := 1
	for l := 0; l < n.Level; l++ {
		span *= t.fanout
	}
	lo = n.Index * span
	hi = lo + span
	if nb := t.scheme.NumBins(); hi > nb {
		hi = nb
	}
	return lo, hi
}

// ValueRange returns the value interval a node covers: [lo, hi), closed
// at hi for the node containing the last bin (mirroring BinRange).
func (t *Tree) ValueRange(n NodeRef) (lo, hi float64) {
	bl, bh := t.Leaves(n)
	return t.scheme.bounds[bl], t.scheme.bounds[bh]
}

// Children returns the child index range [lo, hi) at level n.Level-1.
// The root of a one-level tree (and any leaf) has no children.
func (t *Tree) Children(n NodeRef) (lo, hi int) {
	if n.Level == 0 {
		return 0, 0
	}
	lo = n.Index * t.fanout
	hi = lo + t.fanout
	if w := t.width[n.Level-1]; hi > w {
		hi = w
	}
	return lo, hi
}

// Classify returns the node's alignment with vc, consistent with the
// leaf-level Scheme.Classify: a node is Aligned exactly when every leaf
// under it is, Disjoint when every leaf is, and Misaligned otherwise.
func (t *Tree) Classify(n NodeRef, vc ValueConstraint) Alignment {
	bl, bh := t.Leaves(n)
	lo, hi := t.scheme.bounds[bl], t.scheme.bounds[bh]
	return classifyInterval(lo, hi, bh == t.scheme.NumBins(), vc)
}

// Selection is the outcome of classifying the tree against a value
// constraint: the maximal fully-inside subtree roots (whose aggregated
// bitmaps answer the constraint wholesale), the boundary leaves that
// straddle it (and must be filtered point by point), and the pruning
// accounting. CoveredLeaves + PrunedLeaves + len(Boundary) always
// equals the scheme's bin count.
type Selection struct {
	// Inside holds the roots of maximal fully-aligned subtrees in
	// ascending leaf order; single aligned leaves appear as level-0
	// refs.
	Inside []NodeRef
	// Boundary holds the misaligned leaf bins in ascending order.
	Boundary []int
	// PrunedLeaves counts leaves under subtrees ruled out without
	// descending into them (plus disjoint leaves reached directly).
	PrunedLeaves int
	// CoveredLeaves counts leaves under the Inside subtree roots.
	CoveredLeaves int
	// NodesVisited counts classification probes — the tree-walk cost.
	NodesVisited int
}

// Select classifies every subtree against vc, descending only into
// misaligned (boundary) nodes: fully-inside subtrees are recorded at
// their root without touching their leaves, fully-outside subtrees are
// pruned without touching anything, and only boundary leaves survive to
// the per-point filtering stage.
func (t *Tree) Select(vc ValueConstraint) Selection {
	var sel Selection
	var walk func(n NodeRef)
	walk = func(n NodeRef) {
		sel.NodesVisited++
		lo, hi := t.Leaves(n)
		switch t.Classify(n, vc) {
		case Disjoint:
			sel.PrunedLeaves += hi - lo
		case Aligned:
			sel.Inside = append(sel.Inside, n)
			sel.CoveredLeaves += hi - lo
		default: // Misaligned: descend, or emit the boundary leaf
			if n.Level == 0 {
				sel.Boundary = append(sel.Boundary, n.Index)
				return
			}
			cl, ch := t.Children(n)
			for c := cl; c < ch; c++ {
				walk(NodeRef{Level: n.Level - 1, Index: c})
			}
		}
	}
	walk(t.Root())
	return sel
}

// InsideLeaves expands the selection's Inside subtree roots to their
// leaf bins in ascending order — the hierarchical counterpart of
// SelectBins' aligned list.
func (t *Tree) InsideLeaves(sel Selection) []int {
	out := make([]int, 0, sel.CoveredLeaves)
	for _, n := range sel.Inside {
		lo, hi := t.Leaves(n)
		for b := lo; b < hi; b++ {
			out = append(out, b)
		}
	}
	return out
}
