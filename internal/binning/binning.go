// Package binning implements MLOC's value-based equal-frequency binning
// (paper §III-B1). Bin boundaries are estimated from a sample of the
// dataset and then applied to the full data, so every bin holds roughly
// the same number of elements — the paper's defence against load
// imbalance across bin files. Bins whose value bounds fall entirely
// inside a query's value constraint are "aligned": region queries can
// be answered from the index alone, without touching or decompressing
// the bin's data.
package binning

import (
	"fmt"
	"math"
	"sort"
)

// Scheme holds the bin boundaries. Bin i covers values in
// [Bounds[i], Bounds[i+1]); the last bin is closed on the right so the
// global maximum lands in a bin.
type Scheme struct {
	bounds []float64 // len = NumBins()+1, strictly increasing
}

// Strategy selects how boundaries are chosen.
type Strategy string

// Supported binning strategies. EqualFrequency is the paper's choice;
// EqualWidth exists for the binning-strategy ablation.
const (
	EqualFrequency Strategy = "equal-frequency"
	EqualWidth     Strategy = "equal-width"
)

// Build computes a binning scheme with n bins from sample values using
// the given strategy. The sample is not modified. Duplicate boundary
// candidates are collapsed, so the effective bin count can be smaller
// than n for heavily-tied data.
func Build(strategy Strategy, sample []float64, n int) (*Scheme, error) {
	if n < 1 {
		return nil, fmt.Errorf("binning: need at least 1 bin, got %d", n)
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("binning: empty sample")
	}
	for i, v := range sample {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("binning: sample[%d] is NaN", i)
		}
	}
	switch strategy {
	case EqualFrequency:
		return buildEqualFrequency(sample, n), nil
	case EqualWidth:
		return buildEqualWidth(sample, n), nil
	default:
		return nil, fmt.Errorf("binning: unknown strategy %q", strategy)
	}
}

func buildEqualFrequency(sample []float64, n int) *Scheme {
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	bounds := make([]float64, 0, n+1)
	bounds = append(bounds, sorted[0])
	for i := 1; i < n; i++ {
		q := sorted[(len(sorted)-1)*i/n]
		if q > bounds[len(bounds)-1] {
			bounds = append(bounds, q)
		}
	}
	top := sorted[len(sorted)-1]
	if top > bounds[len(bounds)-1] {
		bounds = append(bounds, top)
	} else {
		// Degenerate near-constant sample: widen artificially so the
		// single bin is well-formed. "+1" vanishes near ±MaxFloat64
		// (1e308+1 == 1e308) and at +Inf, so fall back to ULP widening,
		// and for an all-+Inf sample widen the lower bound downward —
		// there is no representable value above +Inf.
		last := bounds[len(bounds)-1]
		switch w := last + 1; {
		case w > last:
			bounds = append(bounds, w)
		case !math.IsInf(last, 1):
			bounds = append(bounds, math.Nextafter(last, math.Inf(1)))
		default:
			bounds[len(bounds)-1] = math.MaxFloat64
			bounds = append(bounds, last)
		}
	}
	return &Scheme{bounds: bounds}
}

func buildEqualWidth(sample []float64, n int) *Scheme {
	lo, hi := sample[0], sample[0]
	for _, v := range sample {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo { // constant data: widen the degenerate range
		switch w := lo + 1; {
		case w > lo:
			hi = w
		case !math.IsInf(lo, 1):
			hi = math.Nextafter(lo, math.Inf(1))
		default: // all-+Inf sample: widen downward instead
			lo = math.MaxFloat64
			hi = math.Inf(1)
		}
	}
	// Interpolate over a finite surrogate of the range: (hi-lo)
	// overflows to +Inf when the extremes straddle ±MaxFloat64, and
	// lo + Inf*t is NaN, so interior bounds use the overflow-free convex
	// form over clamped endpoints while the outer bounds keep the true
	// (possibly infinite) extremes.
	flo, fhi := lo, hi
	if math.IsInf(flo, -1) {
		flo = -math.MaxFloat64
	}
	if math.IsInf(fhi, 1) {
		fhi = math.MaxFloat64
	}
	bounds := make([]float64, 0, n+1)
	bounds = append(bounds, lo)
	for i := 1; i < n; i++ {
		t := float64(i) / float64(n)
		b := flo*(1-t) + fhi*t
		if b > bounds[len(bounds)-1] && b < hi {
			bounds = append(bounds, b)
		}
	}
	bounds = append(bounds, hi)
	return &Scheme{bounds: bounds}
}

// FromBounds builds a scheme from explicit, strictly increasing
// boundaries (len >= 2).
func FromBounds(bounds []float64) (*Scheme, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("binning: need >= 2 bounds, got %d", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("binning: bounds not strictly increasing at %d: %v >= %v",
				i, bounds[i-1], bounds[i])
		}
	}
	return &Scheme{bounds: append([]float64(nil), bounds...)}, nil
}

// CoverRange returns a scheme whose outer boundaries are widened —
// never shrunk — to cover [lo, hi]. BinOf clamps out-of-range values
// into the edge bins, so when boundaries were estimated from a sample
// the edge bins can hold values outside their nominal intervals; that
// makes Classify over-report alignment and aligned-bin fast paths
// return clamped values that violate the constraint. A builder that
// knows the true data extremes widens the bounds so every stored value
// lies inside its bin's nominal interval. Bin membership is unchanged
// (out-of-range values clamp into the edge bins either way). NaN or
// already-covered extremes leave the scheme as is; the receiver is
// never modified. An empty range (lo > hi, e.g. the +Inf/-Inf extremes
// of an all-NaN scan) or NaN endpoints are a no-op: there is nothing to
// cover, and widening one side from an inverted pair would misstate the
// data extent.
func (s *Scheme) CoverRange(lo, hi float64) *Scheme {
	if !(lo <= hi) { // inverted or NaN endpoints
		return s
	}
	n := len(s.bounds) - 1
	if !(lo < s.bounds[0]) && !(hi > s.bounds[n]) {
		return s
	}
	bounds := append([]float64(nil), s.bounds...)
	if lo < bounds[0] {
		bounds[0] = lo
	}
	if hi > bounds[n] {
		bounds[n] = hi
	}
	return &Scheme{bounds: bounds}
}

// NumBins returns the number of bins.
func (s *Scheme) NumBins() int { return len(s.bounds) - 1 }

// Bounds returns the boundary slice; callers must not mutate it.
func (s *Scheme) Bounds() []float64 { return s.bounds }

// BinRange returns the value interval [lo, hi) of bin i (the last bin's
// hi is inclusive by convention).
func (s *Scheme) BinRange(i int) (lo, hi float64) {
	if i < 0 || i >= s.NumBins() {
		panic(fmt.Sprintf("binning: bin %d out of [0,%d)", i, s.NumBins()))
	}
	return s.bounds[i], s.bounds[i+1]
}

// BinOf returns the bin index for a value. Values below the first bound
// clamp to bin 0; values at or above the last bound clamp to the last
// bin — out-of-sample values must still land somewhere when the
// boundaries were estimated from a partial sample (the paper's §IV-A1
// procedure). NaN also clamps to bin 0: every NaN comparison is false,
// so the binary search below would otherwise report an out-of-range
// index and crash the histogram/ingest paths on a single bad point.
func (s *Scheme) BinOf(v float64) int {
	n := s.NumBins()
	if math.IsNaN(v) {
		return 0
	}
	if v < s.bounds[0] {
		return 0
	}
	if v >= s.bounds[n] {
		return n - 1
	}
	// Binary search for the rightmost bound <= v. A value exactly on a
	// bound belongs to the bin on its right, so the boundary hit is an
	// intentionally exact comparison.
	i := sort.SearchFloat64s(s.bounds, v)
	if i < len(s.bounds) && s.bounds[i] == v { //mlocvet:ignore floatcmp -- bin bounds are exact stored values; equality decides membership
		if i == n {
			return n - 1
		}
		return i
	}
	return i - 1
}

// ValueConstraint is a closed value interval [Min, Max] — the VC
// primitive of MLOC region queries.
type ValueConstraint struct {
	Min, Max float64
}

// Contains reports whether v satisfies the constraint.
func (vc ValueConstraint) Contains(v float64) bool {
	return v >= vc.Min && v <= vc.Max
}

// Alignment classifies a bin against a value constraint.
type Alignment int

// Alignment classes per the paper: aligned bins are fully inside the
// constraint (no data access needed for region queries), misaligned
// bins straddle a boundary (data must be decompressed and filtered),
// and disjoint bins can be skipped entirely.
const (
	Disjoint Alignment = iota
	Aligned
	Misaligned
)

// String names the alignment class.
func (a Alignment) String() string {
	switch a {
	case Disjoint:
		return "disjoint"
	case Aligned:
		return "aligned"
	case Misaligned:
		return "misaligned"
	default:
		return fmt.Sprintf("Alignment(%d)", int(a))
	}
}

// Classify returns the alignment of bin i with respect to vc.
func (s *Scheme) Classify(i int, vc ValueConstraint) Alignment {
	lo, hi := s.BinRange(i)
	return classifyInterval(lo, hi, i == s.NumBins()-1, vc)
}

// classifyInterval classifies the value interval [lo, hi) — closed at
// hi when last is true — against vc. It is shared by leaf-bin Classify
// and the Tree's super-bin classification so a subtree's class is
// definitionally consistent with its leaves'.
func classifyInterval(lo, hi float64, last bool, vc ValueConstraint) Alignment {
	if vc.Max < lo || vc.Min > hi || (!last && vc.Min >= hi) {
		return Disjoint
	}
	if vc.Min <= lo && vc.Max >= hi {
		return Aligned
	}
	return Misaligned
}

// SelectBins partitions the scheme's bins by alignment with vc,
// returning the aligned and misaligned bin indices in ascending order.
func (s *Scheme) SelectBins(vc ValueConstraint) (aligned, misaligned []int) {
	for i := 0; i < s.NumBins(); i++ {
		switch s.Classify(i, vc) {
		case Aligned:
			aligned = append(aligned, i)
		case Misaligned:
			misaligned = append(misaligned, i)
		}
	}
	return aligned, misaligned
}

// Histogram counts how many of the given values fall into each bin —
// used by tests and by the equal-frequency balance diagnostics.
func (s *Scheme) Histogram(values []float64) []int64 {
	counts := make([]int64, s.NumBins())
	for _, v := range values {
		counts[s.BinOf(v)]++
	}
	return counts
}

// ImbalanceRatio returns max/mean bin occupancy for the given values; a
// perfectly balanced binning returns 1. The equal-frequency-vs-width
// ablation reports this metric.
func (s *Scheme) ImbalanceRatio(values []float64) float64 {
	counts := s.Histogram(values)
	var max, sum int64
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(counts))
	return float64(max) / mean
}
