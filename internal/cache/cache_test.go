package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustNew(t *testing.T, maxBytes int64) *Cache {
	t.Helper()
	c, err := New(maxBytes)
	if err != nil {
		t.Fatalf("New(%d): %v", maxBytes, err)
	}
	return c
}

func TestNewRejectsNonPositiveCapacity(t *testing.T) {
	for _, n := range []int64{0, -1} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) = nil error, want error", n)
		}
	}
}

func TestGetPutRoundtrip(t *testing.T) {
	c := mustNew(t, 1<<20)
	k := Key{Store: "s", Bin: 1, Unit: 2, Level: 7}
	if _, ok := c.Get(k); ok {
		t.Fatalf("Get on empty cache reported a hit")
	}
	want := []float64{1, 2, 3}
	c.Put(k, want)
	got, ok := c.Get(k)
	if !ok {
		t.Fatalf("Get after Put missed")
	}
	if len(got) != len(want) || got[0] != want[0] || got[2] != want[2] {
		t.Fatalf("Get = %v, want %v", got, want)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 entry / 1 hit", st)
	}
}

func TestKeysDoNotAlias(t *testing.T) {
	c := mustNew(t, 1<<20)
	a := Key{Store: "s", Bin: 1, Unit: 2, Level: 7}
	variants := []Key{
		{Store: "s2", Bin: 1, Unit: 2, Level: 7},
		{Store: "s", Bin: 2, Unit: 2, Level: 7},
		{Store: "s", Bin: 1, Unit: 3, Level: 7},
		{Store: "s", Bin: 1, Unit: 2, Level: 3},
	}
	c.Put(a, []float64{42})
	for _, k := range variants {
		if _, ok := c.Get(k); ok {
			t.Errorf("Get(%+v) hit entry stored under %+v", k, a)
		}
	}
}

func TestGetOrComputeCachesAndDedupes(t *testing.T) {
	c := mustNew(t, 1<<20)
	k := Key{Store: "s", Bin: 0, Unit: 0, Level: 7}
	var computes atomic.Int64
	compute := func() ([]float64, error) {
		computes.Add(1)
		return []float64{9}, nil
	}
	vals, hit, err := c.GetOrCompute(context.Background(), k, compute)
	if err != nil || hit || len(vals) != 1 {
		t.Fatalf("first GetOrCompute = (%v, %v, %v), want miss with 1 value", vals, hit, err)
	}
	vals, hit, err = c.GetOrCompute(context.Background(), k, compute)
	if err != nil || !hit || len(vals) != 1 {
		t.Fatalf("second GetOrCompute = (%v, %v, %v), want hit", vals, hit, err)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
}

func TestGetOrComputeSingleFlight(t *testing.T) {
	c := mustNew(t, 1<<20)
	k := Key{Store: "s", Bin: 3, Unit: 1, Level: 7}
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	const waiters = 8

	var wg sync.WaitGroup
	results := make([]bool, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, hit, err := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
			computes.Add(1)
			close(started)
			<-release
			return []float64{1}, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0] = hit
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals, hit, err := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
				computes.Add(1)
				return []float64{2}, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			if len(vals) != 1 || vals[0] != 1 {
				t.Errorf("waiter %d got %v, want the leader's value [1]", i, vals)
			}
			results[i+1] = hit
		}(i)
	}
	// Give the waiters a moment to reach the in-flight wait, then
	// release the leader. Timing only affects whether waiters dedup or
	// recompute; the compute-count assertion below is the real check.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrency, want 1", n)
	}
	if results[0] {
		t.Errorf("leader reported hit=true, want false")
	}
	for i, hit := range results[1:] {
		if !hit {
			t.Errorf("waiter %d reported hit=false, want true", i)
		}
	}
}

func TestGetOrComputeWaiterHonorsContext(t *testing.T) {
	c := mustNew(t, 1<<20)
	k := Key{Store: "s", Bin: 5, Unit: 5, Level: 7}
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go func() {
		_, _, err := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
			close(started)
			<-release
			return []float64{1}, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx, k, func() ([]float64, error) { return nil, nil })
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("canceled waiter did not return promptly")
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := mustNew(t, 1<<20)
	k := Key{Store: "s", Bin: 1, Unit: 1, Level: 7}
	boom := errors.New("cache_test: boom")
	if _, _, err := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("error compute returned %v, want boom", err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatalf("failed compute left a resident entry")
	}
	// The key must be retryable after a failed flight.
	vals, hit, err := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
		return []float64{4}, nil
	})
	if err != nil || hit || len(vals) != 1 {
		t.Fatalf("retry after failure = (%v, %v, %v), want fresh compute", vals, hit, err)
	}
}

func TestEvictionRespectsByteBoundAndLRUOrder(t *testing.T) {
	// Capacity sized so each shard holds only a few entries; keys are
	// crafted to land in one shard by reusing identical field hashes is
	// fragile, so instead fill far past capacity and check the global
	// bound holds and the most recently used keys survive.
	c := mustNew(t, numShards*(3*(8*8+entryOverhead)))
	vals := make([]float64, 8)
	var keys []Key
	for i := 0; i < 20*numShards; i++ {
		k := Key{Store: "s", Bin: i, Unit: 0, Level: 7}
		keys = append(keys, k)
		c.Put(k, vals)
	}
	if b, max := c.Bytes(), c.Stats().Capacity; b > max {
		t.Fatalf("resident bytes %d exceed capacity %d", b, max)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overfilling: %+v", st)
	}
	// The last insert in each shard must still be resident (it was MRU
	// when its shard last evicted).
	last := keys[len(keys)-1]
	if _, ok := c.Get(last); !ok {
		t.Errorf("most recently inserted key %+v was evicted", last)
	}
}

func TestOversizeEntryNotAdmitted(t *testing.T) {
	c := mustNew(t, numShards*256)
	small := Key{Store: "s", Bin: 0, Unit: 0, Level: 7}
	c.Put(small, make([]float64, 2))
	big := Key{Store: "s", Bin: 1, Unit: 0, Level: 7}
	c.Put(big, make([]float64, 4096)) // 32 KiB > 256-byte shard bound
	if _, ok := c.Get(big); ok {
		t.Errorf("oversize entry was admitted")
	}
	if _, ok := c.Get(small); !ok {
		t.Errorf("oversize insert evicted an unrelated small entry")
	}
}

func TestConcurrentMixedOperations(t *testing.T) {
	c := mustNew(t, 1<<16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Store: "s", Bin: i % 37, Unit: g % 3, Level: 7}
				switch i % 3 {
				case 0:
					c.Put(k, []float64{float64(i)})
				case 1:
					c.Get(k)
				default:
					_, _, err := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
						return []float64{float64(i)}, nil
					})
					if err != nil {
						t.Errorf("GetOrCompute: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if b := c.Bytes(); b > c.Stats().Capacity {
		t.Errorf("resident bytes %d exceed capacity after stress", b)
	}
}

func TestStatsSnapshot(t *testing.T) {
	c := mustNew(t, 1<<20)
	k := Key{Store: "s", Bin: 0, Unit: 0, Level: 7}
	if _, _, err := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
		return []float64{1, 2}, nil
	}); err != nil {
		t.Fatalf("GetOrCompute: %v", err)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatalf("expected hit")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 || st.Bytes == 0 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 entry, nonzero bytes", st)
	}
	if st.Capacity != 1<<20 {
		t.Errorf("capacity = %d, want %d", st.Capacity, 1<<20)
	}
}

func ExampleCache_GetOrCompute() {
	c, _ := New(1 << 20) //mlocvet:ignore uncheckederr -- constructor cannot fail for a positive capacity
	k := Key{Store: "pfs/var", Bin: 3, Unit: 0, Level: 7}
	vals, hit, _ := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
		return []float64{1.5, 2.5}, nil
	})
	fmt.Println(len(vals), hit)
	vals, hit, _ = c.GetOrCompute(context.Background(), k, nil)
	fmt.Println(len(vals), hit)
	// Output:
	// 2 false
	// 2 true
}
