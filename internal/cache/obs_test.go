package cache

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"mloc/internal/obs"
)

// TestSuppressedDuplicateCount proves the singleflight suppressed
// counter: a waiter that reuses the leader's result is one suppressed
// duplicate decode.
func TestSuppressedDuplicateCount(t *testing.T) {
	c := mustNew(t, 1<<20)
	k := Key{Store: "s", Bin: 0, Unit: 0, Level: 7}
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
			close(started)
			<-release
			return []float64{1}, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, hit, err := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
			t.Error("waiter ran compute; singleflight failed")
			return nil, nil
		})
		if err != nil || !hit {
			t.Errorf("waiter: hit=%v err=%v", hit, err)
		}
	}()
	// Wait until the waiter has registered on the flight, then release
	// the leader.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Waits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never reached the in-flight wait")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	st := c.Stats()
	if st.Misses != 1 || st.Waits != 1 || st.Suppressed != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want misses=1 waits=1 suppressed=1 hits=1", st)
	}
}

// TestStatsConsistentUnderLoad checks a Stats snapshot taken during
// heavy concurrent traffic obeys the cross-counter invariants (each
// shard is read in one lock pass, so suppressed can never exceed waits
// and hits can never undercount suppressed).
func TestStatsConsistentUnderLoad(t *testing.T) {
	c := mustNew(t, 1<<16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := Key{Store: "s", Bin: i % 32, Unit: w % 2, Level: 7}
				_, _, err := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
					return make([]float64, 16), nil
				})
				if err != nil {
					t.Errorf("GetOrCompute: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		st := c.Stats()
		if st.Suppressed > st.Waits {
			t.Errorf("suppressed %d > waits %d", st.Suppressed, st.Waits)
		}
		if st.Hits < st.Suppressed {
			t.Errorf("hits %d < suppressed %d", st.Hits, st.Suppressed)
		}
		if st.Bytes < 0 || st.Bytes > st.Capacity {
			t.Errorf("bytes %d outside [0, %d]", st.Bytes, st.Capacity)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCacheInstrument registers the cache on a registry and checks the
// exposition carries its metrics, passes lint, and that the lookup
// histogram observes probes.
func TestCacheInstrument(t *testing.T) {
	c := mustNew(t, 1<<20)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	k := Key{Store: "s", Bin: 1, Unit: 0, Level: 7}
	if _, _, err := c.GetOrCompute(context.Background(), k, func() ([]float64, error) {
		return []float64{1, 2, 3}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("expected hit")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"mloc_cache_hits_total 1",
		"mloc_cache_misses_total 1",
		"mloc_cache_suppressed_total 0",
		"mloc_cache_entries 1",
		"mloc_cache_capacity_bytes 1048576",
		"mloc_cache_lookup_seconds_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "mloc_cache_bytes ") {
		t.Errorf("exposition missing mloc_cache_bytes:\n%s", out)
	}
	if probs := obs.Lint(out, true); len(probs) != 0 {
		t.Errorf("lint problems: %v", probs)
	}
}
