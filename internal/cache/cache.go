// Package cache implements the shared decoded-unit cache of the query
// service: a sharded, byte-bounded LRU keyed by (store, bin, unit, PLoD
// level) with single-flight deduplication, so concurrent queries that
// touch the same storage unit decompress it once and later queries skip
// the decode entirely.
//
// The cache stores reconstructed float64 unit values. Entries are
// immutable after insertion: callers must treat returned slices as
// read-only (the query engine only reads them). All methods are safe
// for concurrent use.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mloc/internal/obs"
)

// Key identifies one decoded storage unit: the owning store (its PFS
// prefix doubles as the variable identity), the bin and unit position
// within the store's catalog, and the PLoD level the values were
// reconstructed at (different levels yield different values and must
// not alias).
type Key struct {
	// Store is the owning store's identity (PFS path prefix).
	Store string
	// Bin is the bin index within the store.
	Bin int
	// Unit is the unit position within the bin.
	Unit int
	// Level is the PLoD reconstruction level (plod.MaxLevel for full
	// precision and for floats-mode stores).
	Level int
}

// Stats is a point-in-time snapshot of the cache counters. Each
// shard's contribution is read in a single lock acquisition together
// with its residency numbers, so the snapshot is mutually consistent
// per shard (no torn reads between a shard's counters and its
// entries/bytes).
type Stats struct {
	// Hits counts lookups answered from a resident entry (including
	// single-flight waiters that reused another query's decode).
	Hits int64
	// Misses counts lookups that had to compute.
	Misses int64
	// Evictions counts entries pushed out by the byte bound.
	Evictions int64
	// Waits counts single-flight waiters that blocked on another
	// caller's in-progress compute instead of decoding themselves.
	Waits int64
	// Suppressed counts duplicate computes avoided by single-flight:
	// waiters that went on to reuse the leader's successful result.
	Suppressed int64
	// Entries is the current resident entry count.
	Entries int
	// Bytes is the current resident cost in bytes.
	Bytes int64
	// Capacity is the configured byte bound.
	Capacity int64
}

// numShards is the fixed shard count; 16 keeps lock contention low for
// any plausible rank/query parallelism without oversizing the struct.
const numShards = 16

// entryOverhead approximates the per-entry bookkeeping cost in bytes
// (map slot, list element, header) charged on top of the values.
const entryOverhead = 64

// Cache is a sharded LRU over decoded units. Create with New.
type Cache struct {
	shards   [numShards]shard
	capacity int64

	// lookupHist, when set by Instrument, observes the wall latency of
	// every Get/GetOrCompute cache probe. Atomic because Instrument may
	// run after the cache is already serving lookups.
	lookupHist atomic.Pointer[obs.Histogram]
}

// shard counters live next to the data they describe, under the same
// mutex: mutating them costs nothing extra on paths that already hold
// the lock, and Stats can read a shard's counters and residency in one
// consistent acquisition.
type shard struct {
	mu       sync.Mutex
	max      int64
	bytes    int64
	lru      *list.List // front = most recently used; Value is *entry
	entries  map[Key]*list.Element
	inflight map[Key]*flight

	hits       int64
	misses     int64
	evictions  int64
	waits      int64
	suppressed int64
}

type entry struct {
	key  Key
	vals []float64
	cost int64
}

// flight is one in-progress compute; waiters block on done.
type flight struct {
	done chan struct{}
	vals []float64
	err  error
}

// New returns a cache bounded to roughly maxBytes of decoded values
// (the bound is split evenly across shards).
func New(maxBytes int64) (*Cache, error) {
	if maxBytes < 1 {
		return nil, fmt.Errorf("cache: capacity %d must be positive", maxBytes)
	}
	c := &Cache{capacity: maxBytes}
	per := maxBytes / numShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = shard{
			max:      per,
			lru:      list.New(),
			entries:  make(map[Key]*list.Element),
			inflight: make(map[Key]*flight),
		}
	}
	return c, nil
}

// Instrument registers the cache's metrics on reg: hit/miss/evict/
// wait/suppressed counters, bytes-in-use and entry gauges, the
// configured capacity, and a lookup-latency histogram observed on
// every probe. Call once per cache per registry.
func (c *Cache) Instrument(reg *obs.Registry) {
	reg.CounterFunc("mloc_cache_hits_total",
		"Cache lookups answered from a resident entry or a shared single-flight result.",
		func() float64 { return float64(c.Stats().Hits) })
	reg.CounterFunc("mloc_cache_misses_total",
		"Cache lookups that ran the decode.",
		func() float64 { return float64(c.Stats().Misses) })
	reg.CounterFunc("mloc_cache_evictions_total",
		"Entries evicted by the byte bound.",
		func() float64 { return float64(c.Stats().Evictions) })
	reg.CounterFunc("mloc_cache_waits_total",
		"Single-flight waiters that blocked on another caller's compute.",
		func() float64 { return float64(c.Stats().Waits) })
	reg.CounterFunc("mloc_cache_suppressed_total",
		"Duplicate decodes suppressed by single-flight (waiters that reused the leader's result).",
		func() float64 { return float64(c.Stats().Suppressed) })
	reg.GaugeFunc("mloc_cache_bytes",
		"Resident decoded bytes (including per-entry overhead).",
		func() float64 { return float64(c.Bytes()) })
	reg.GaugeFunc("mloc_cache_entries",
		"Resident entry count.",
		func() float64 { return float64(c.Len()) })
	reg.GaugeFunc("mloc_cache_capacity_bytes",
		"Configured cache capacity in bytes.",
		func() float64 { return float64(c.capacity) })
	c.lookupHist.Store(reg.Histogram("mloc_cache_lookup_seconds",
		"Wall latency of cache probes (Get and GetOrCompute, including any compute).",
		obs.DefSecondsBuckets()))
}

// observeLookup records a probe's wall latency when instrumented.
func (c *Cache) observeLookup(start time.Time) {
	if h := c.lookupHist.Load(); h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// shardFor hashes the key to a shard (FNV-1a over the key fields).
func (c *Cache) shardFor(k Key) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.Store); i++ {
		h ^= uint64(k.Store[i])
		h *= 1099511628211
	}
	for _, v := range [...]int{k.Bin, k.Unit, k.Level} {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return &c.shards[h%numShards]
}

// Get returns the cached values for key, or ok=false on a miss. A miss
// from Get is not counted against the Misses statistic (probes that
// precede a batched read would double-count otherwise); only
// GetOrCompute records misses.
func (c *Cache) Get(key Key) (vals []float64, ok bool) {
	start := time.Now()
	defer c.observeLookup(start)
	sh := c.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.entries[key]
	if ok {
		sh.lru.MoveToFront(el)
		vals = el.Value.(*entry).vals
		sh.hits++
	}
	sh.mu.Unlock()
	return vals, ok
}

// GetOrCompute returns the cached values for key, computing and
// inserting them on a miss. Concurrent callers for the same key are
// deduplicated: one runs compute, the rest wait for its result (or
// abandon the wait when ctx is done — the leader's compute is not
// interrupted). hit reports whether the caller avoided running compute
// itself, i.e. the values came from the cache or from another caller's
// flight.
func (c *Cache) GetOrCompute(ctx context.Context, key Key, compute func() ([]float64, error)) (vals []float64, hit bool, err error) {
	start := time.Now()
	defer c.observeLookup(start)
	sh := c.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.lru.MoveToFront(el)
		vals = el.Value.(*entry).vals
		sh.hits++
		sh.mu.Unlock()
		return vals, true, nil
	}
	if fl, ok := sh.inflight[key]; ok {
		sh.waits++
		sh.mu.Unlock()
		select {
		case <-fl.done:
			if fl.err != nil {
				return nil, false, fl.err
			}
			sh.mu.Lock()
			sh.hits++
			sh.suppressed++
			sh.mu.Unlock()
			return fl.vals, true, nil
		case <-ctx.Done():
			return nil, false, fmt.Errorf("cache: waiting for %v/%d/%d@%d: %w",
				key.Store, key.Bin, key.Unit, key.Level, ctx.Err())
		}
	}
	fl := &flight{done: make(chan struct{})}
	sh.inflight[key] = fl
	sh.misses++
	sh.mu.Unlock()

	// The flight must resolve even if compute panics, or waiters would
	// block forever; the panic is re-raised after cleanup.
	completed := false
	defer func() {
		if !completed {
			fl.err = fmt.Errorf("cache: compute for %v/%d/%d@%d panicked",
				key.Store, key.Bin, key.Unit, key.Level)
			sh.mu.Lock()
			delete(sh.inflight, key)
			sh.mu.Unlock()
			close(fl.done)
		}
	}()
	vals, err = compute()
	completed = true
	fl.vals, fl.err = vals, err

	sh.mu.Lock()
	delete(sh.inflight, key)
	if err == nil {
		c.insertLocked(sh, key, vals)
	}
	sh.mu.Unlock()
	close(fl.done)
	if err != nil {
		return nil, false, err
	}
	return vals, false, nil
}

// Put inserts values for key, replacing any resident entry.
func (c *Cache) Put(key Key, vals []float64) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	c.insertLocked(sh, key, vals)
	sh.mu.Unlock()
}

// insertLocked adds (or refreshes) an entry and evicts from the LRU
// tail until the shard fits its bound. Entries larger than the whole
// shard are not admitted (they would evict everything for one use).
// Caller holds sh.mu.
func (c *Cache) insertLocked(sh *shard, key Key, vals []float64) {
	cost := int64(len(vals))*8 + entryOverhead
	if cost > sh.max {
		return
	}
	if el, ok := sh.entries[key]; ok {
		old := el.Value.(*entry)
		sh.bytes += cost - old.cost
		old.vals, old.cost = vals, cost
		sh.lru.MoveToFront(el)
	} else {
		sh.entries[key] = sh.lru.PushFront(&entry{key: key, vals: vals, cost: cost})
		sh.bytes += cost
	}
	for sh.bytes > sh.max {
		tail := sh.lru.Back()
		if tail == nil {
			break
		}
		ev := tail.Value.(*entry)
		sh.lru.Remove(tail)
		delete(sh.entries, ev.key)
		sh.bytes -= ev.cost
		sh.evictions++
	}
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the resident cost in bytes.
func (c *Cache) Bytes() int64 {
	var b int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		b += sh.bytes
		sh.mu.Unlock()
	}
	return b
}

// Stats returns a snapshot of the counters: one lock acquisition per
// shard reads that shard's counters and residency together.
func (c *Cache) Stats() Stats {
	s := Stats{Capacity: c.capacity}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Evictions += sh.evictions
		s.Waits += sh.waits
		s.Suppressed += sh.suppressed
		s.Entries += len(sh.entries)
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}
