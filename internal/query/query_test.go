package query

import (
	"testing"

	"mloc/internal/binning"
	"mloc/internal/grid"
)

func TestRequestValidate(t *testing.T) {
	shape := grid.Shape{8, 8}
	good := []Request{
		{},
		{VC: &binning.ValueConstraint{Min: 0, Max: 1}},
		{SC: &grid.Region{Lo: []int{0, 0}, Hi: []int{4, 4}}},
		{PLoDLevel: 3},
		{IndexOnly: true},
	}
	for i, r := range good {
		if err := r.Validate(shape); err != nil {
			t.Errorf("good request %d rejected: %v", i, err)
		}
	}
	bad := []Request{
		{VC: &binning.ValueConstraint{Min: 2, Max: 1}},
		{SC: &grid.Region{Lo: []int{0}, Hi: []int{4}}},
		{SC: &grid.Region{Lo: []int{5, 0}, Hi: []int{4, 4}}},
		{PLoDLevel: -1},
		{PLoDLevel: 8},
	}
	for i, r := range bad {
		if err := r.Validate(shape); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}

func TestComponents(t *testing.T) {
	a := Components{IO: 1, Decompress: 2, Reconstruct: 3}
	if a.Total() != 6 {
		t.Fatalf("Total = %v", a.Total())
	}
	b := Components{IO: 10, Decompress: 0.5, Reconstruct: 1}
	a.Add(b)
	if a.IO != 11 || a.Decompress != 2.5 || a.Reconstruct != 4 {
		t.Fatalf("Add = %+v", a)
	}
	m := Components{IO: 5, Decompress: 9, Reconstruct: 1}
	m.MaxWith(Components{IO: 7, Decompress: 2, Reconstruct: 3})
	if m.IO != 7 || m.Decompress != 9 || m.Reconstruct != 3 {
		t.Fatalf("MaxWith = %+v", m)
	}
}

func TestResultSort(t *testing.T) {
	r := Result{Matches: []Match{{Index: 5}, {Index: 1}, {Index: 3}}}
	r.Sort()
	for i := 1; i < len(r.Matches); i++ {
		if r.Matches[i].Index < r.Matches[i-1].Index {
			t.Fatalf("not sorted: %+v", r.Matches)
		}
	}
	empty := Result{}
	empty.Sort() // must not panic
}
