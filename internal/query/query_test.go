package query

import (
	"testing"

	"mloc/internal/binning"
	"mloc/internal/grid"
)

func TestRequestValidate(t *testing.T) {
	shape := grid.Shape{8, 8}
	good := []Request{
		{},
		{VC: &binning.ValueConstraint{Min: 0, Max: 1}},
		{SC: &grid.Region{Lo: []int{0, 0}, Hi: []int{4, 4}}},
		{PLoDLevel: 3},
		{IndexOnly: true},
	}
	for i, r := range good {
		if err := r.Validate(shape); err != nil {
			t.Errorf("good request %d rejected: %v", i, err)
		}
	}
	bad := []Request{
		{VC: &binning.ValueConstraint{Min: 2, Max: 1}},
		{SC: &grid.Region{Lo: []int{0}, Hi: []int{4}}},
		{SC: &grid.Region{Lo: []int{5, 0}, Hi: []int{4, 4}}},
		{PLoDLevel: -1},
		{PLoDLevel: 8},
	}
	for i, r := range bad {
		if err := r.Validate(shape); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}

func TestComponents(t *testing.T) {
	a := Components{IO: 1, Decompress: 2, Reconstruct: 3}
	if a.Total() != 6 {
		t.Fatalf("Total = %v", a.Total())
	}
	b := Components{IO: 10, Decompress: 0.5, Reconstruct: 1}
	a.Add(b)
	if a.IO != 11 || a.Decompress != 2.5 || a.Reconstruct != 4 {
		t.Fatalf("Add = %+v", a)
	}
	m := Components{IO: 5, Decompress: 9, Reconstruct: 1}
	m.MaxWith(Components{IO: 7, Decompress: 2, Reconstruct: 3})
	if m.IO != 7 || m.Decompress != 9 || m.Reconstruct != 3 {
		t.Fatalf("MaxWith = %+v", m)
	}
}

func TestResultSort(t *testing.T) {
	r := Result{Matches: []Match{{Index: 5}, {Index: 1}, {Index: 3}}}
	r.Sort()
	for i := 1; i < len(r.Matches); i++ {
		if r.Matches[i].Index < r.Matches[i-1].Index {
			t.Fatalf("not sorted: %+v", r.Matches)
		}
	}
	empty := Result{}
	empty.Sort() // must not panic
}

func TestMergeResults(t *testing.T) {
	a := &Result{
		Matches:      []Match{{Index: 10, Value: 1}, {Index: 2, Value: 2}},
		Time:         Components{IO: 3, Decompress: 1, Reconstruct: 5},
		BytesRead:    100,
		BinsAccessed: 2,
		BlocksRead:   4,
		CacheHits:    1,
	}
	b := &Result{
		Matches:      []Match{{Index: 7, Value: 3}},
		Time:         Components{IO: 1, Decompress: 6, Reconstruct: 2},
		BytesRead:    50,
		BinsAccessed: 1,
		BlocksRead:   2,
		CacheHits:    3,
	}
	m := MergeResults([]*Result{a, nil, b})
	if len(m.Matches) != 3 {
		t.Fatalf("merged %d matches, want 3", len(m.Matches))
	}
	for i, want := range []int64{2, 7, 10} {
		if m.Matches[i].Index != want {
			t.Fatalf("match %d index = %d, want %d", i, m.Matches[i].Index, want)
		}
	}
	if m.BytesRead != 150 || m.BinsAccessed != 3 || m.BlocksRead != 6 || m.CacheHits != 4 {
		t.Fatalf("summed counters wrong: %+v", m)
	}
	// Concurrent shards: component-wise max, not sum.
	if m.Time.IO != 3 || m.Time.Decompress != 6 || m.Time.Reconstruct != 5 {
		t.Fatalf("merged time = %+v, want component-wise max", m.Time)
	}
	if empty := MergeResults(nil); len(empty.Matches) != 0 || empty.BytesRead != 0 {
		t.Fatalf("empty merge = %+v", empty)
	}
}
