// Package query defines the shared request/response types of every
// store in this repository (MLOC and the FastBit/SciDB/seq-scan
// baselines): value constraints, spatial constraints, match sets, and
// the per-component time accounting (I/O, decompression,
// reconstruction) the paper's Figure 6 breaks down.
package query

import (
	"fmt"
	"sort"

	"mloc/internal/binning"
	"mloc/internal/grid"
	"mloc/internal/plod"
)

// Request describes one data access. The zero value of each constraint
// means "unconstrained": a Request with only VC set is the paper's
// region query; only SC set is a value query; both set is the combined
// value-and-spatial access.
type Request struct {
	// VC is the value constraint; nil means no value filter.
	VC *binning.ValueConstraint
	// SC is the spatial constraint; nil means the whole domain.
	SC *grid.Region
	// PLoDLevel requests a reduced-precision read (1..7); 0 or 7 means
	// full precision. Stores without PLoD support ignore it.
	PLoDLevel int
	// IndexOnly requests positions without reconstructed values — the
	// paper's region-only access, which aligned bins answer from the
	// index alone.
	IndexOnly bool
}

// Validate rejects malformed requests against a given grid shape.
func (r *Request) Validate(shape grid.Shape) error {
	if r.VC != nil && r.VC.Min > r.VC.Max {
		return fmt.Errorf("query: inverted value constraint [%v,%v]", r.VC.Min, r.VC.Max)
	}
	if r.SC != nil {
		if r.SC.Dims() != shape.Dims() {
			return fmt.Errorf("query: SC dimensionality %d != grid %d", r.SC.Dims(), shape.Dims())
		}
		for d := range r.SC.Lo {
			if r.SC.Lo[d] > r.SC.Hi[d] {
				return fmt.Errorf("query: inverted SC in dim %d", d)
			}
		}
	}
	if r.PLoDLevel < 0 || r.PLoDLevel > plod.MaxLevel {
		return fmt.Errorf("query: PLoD level %d out of [0,%d]", r.PLoDLevel, plod.MaxLevel)
	}
	return nil
}

// Match is one qualifying point: its row-major linear index in the
// grid, and its value (NaN-free; unset when the request was IndexOnly).
type Match struct {
	Index int64
	Value float64
}

// Components is the virtual-time cost breakdown of a data access,
// matching the paper's Figure 6 decomposition.
type Components struct {
	// IO is seek+read time charged by the PFS model.
	IO float64
	// Decompress is codec time (measured CPU seconds).
	Decompress float64
	// Reconstruct is filtering plus value/byte assembly time.
	Reconstruct float64
}

// Total returns the sum of the components.
func (c Components) Total() float64 { return c.IO + c.Decompress + c.Reconstruct }

// Add accumulates another breakdown.
func (c *Components) Add(o Components) {
	c.IO += o.IO
	c.Decompress += o.Decompress
	c.Reconstruct += o.Reconstruct
}

// MaxWith takes the component-wise running maximum; ranks of a parallel
// query combine their breakdowns this way because they proceed
// concurrently (completion is the slowest rank).
func (c *Components) MaxWith(o Components) {
	if o.IO > c.IO {
		c.IO = o.IO
	}
	if o.Decompress > c.Decompress {
		c.Decompress = o.Decompress
	}
	if o.Reconstruct > c.Reconstruct {
		c.Reconstruct = o.Reconstruct
	}
}

// Result is a completed access: the matches plus accounting.
type Result struct {
	Matches []Match
	// Time is the per-component virtual-time breakdown of the slowest
	// rank (queries complete when the last rank finishes).
	Time Components
	// BytesRead is the total data volume fetched from the PFS.
	BytesRead int64
	// BinsAccessed and BlocksRead count index/data structures touched
	// (meaningful for binned stores; zero otherwise).
	BinsAccessed int
	BlocksRead   int
	// CacheHits counts storage units whose decoded values were reused
	// from a shared decode cache instead of being read and decompressed
	// again (zero when no cache is attached).
	CacheHits int
	// BinsPruned counts leaf bins a hierarchical index ruled out without
	// reading any index or data bytes (zero for flat scans).
	BinsPruned int
	// BinsCovered counts leaf bins answered wholesale from aggregated
	// super-bin bitmaps instead of per-bin index reads.
	BinsCovered int
	// IndexNodesRead counts hierarchical index nodes whose bitmaps were
	// actually fetched and decoded.
	IndexNodesRead int
}

// Sort orders matches by linear index; stores produce deterministic
// output through this before returning.
func (r *Result) Sort() {
	sort.Slice(r.Matches, func(i, j int) bool { return r.Matches[i].Index < r.Matches[j].Index })
}

// MergeResults combines the partial results of shards that answered
// disjoint pieces of one query — the gather step of a scatter-gather
// fan-out. Matches are concatenated and re-sorted by linear index (the
// pieces are disjoint, so this reproduces the single-store order
// exactly), data-volume counters are summed, and the time breakdown is
// the component-wise maximum because shards proceed concurrently: the
// merged query completes when its slowest shard does, just as a
// parallel query completes with its slowest rank. nil parts are
// skipped so a caller can pass failed shards without filtering first;
// merging zero parts yields an empty Result.
func MergeResults(parts []*Result) *Result {
	merged := &Result{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		merged.Matches = append(merged.Matches, p.Matches...)
		merged.Time.MaxWith(p.Time)
		merged.BytesRead += p.BytesRead
		merged.BinsAccessed += p.BinsAccessed
		merged.BlocksRead += p.BlocksRead
		merged.CacheHits += p.CacheHits
		merged.BinsPruned += p.BinsPruned
		merged.BinsCovered += p.BinsCovered
		merged.IndexNodesRead += p.IndexNodesRead
	}
	merged.Sort()
	return merged
}
