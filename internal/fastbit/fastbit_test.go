package fastbit

import (
	"testing"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

func buildStore(t *testing.T, bins int) (*Store, []float64, grid.Shape) {
	t.Helper()
	d := datagen.GTSLike(32, 32, 2)
	v, _ := d.Var("phi")
	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig()
	cfg.NumBins = bins
	st, err := Build(fs, pfs.NewClock(), "fb/phi", d.Shape, v.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, v.Data, d.Shape
}

func bruteForce(data []float64, shape grid.Shape, req *query.Request) []query.Match {
	var out []query.Match
	coords := make([]int, shape.Dims())
	for i, v := range data {
		if req.VC != nil && !req.VC.Contains(v) {
			continue
		}
		if req.SC != nil {
			coords = shape.Coords(int64(i), coords[:0])
			if !req.SC.Contains(coords) {
				continue
			}
		}
		m := query.Match{Index: int64(i)}
		if !req.IndexOnly {
			m.Value = v
		}
		out = append(out, m)
	}
	return out
}

func matchesEqual(t *testing.T, got, want []query.Match, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestBuildValidation(t *testing.T) {
	fs := pfs.New(pfs.DefaultConfig())
	if _, err := Build(fs, pfs.NewClock(), "x", grid.Shape{2, 2}, make([]float64, 3), DefaultConfig()); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Build(fs, pfs.NewClock(), "x", grid.Shape{2, 2}, make([]float64, 4), Config{NumBins: 0}); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestRegionQueryMatchesBruteForce(t *testing.T) {
	st, data, shape := buildStore(t, 64)
	for _, sel := range []float64{0.01, 0.1} {
		lo, hi := datagen.Selectivity(data, sel, 11, 1024)
		vc := binning.ValueConstraint{Min: lo, Max: hi}
		req := &query.Request{VC: &vc}
		for _, ranks := range []int{1, 4} {
			res, err := st.Query(req, ranks)
			if err != nil {
				t.Fatal(err)
			}
			matchesEqual(t, res.Matches, bruteForce(data, shape, req), "region query")
		}
	}
}

func TestIndexOnlyRegionQuery(t *testing.T) {
	st, data, shape := buildStore(t, 64)
	lo, hi := datagen.Selectivity(data, 0.05, 13, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	req := &query.Request{VC: &vc, IndexOnly: true}
	res, err := st.Query(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, res.Matches, bruteForce(data, shape, req), "index-only")
}

func TestValueQueryWithSC(t *testing.T) {
	st, data, shape := buildStore(t, 32)
	sc, _ := grid.NewRegion([]int{4, 4}, []int{20, 24})
	req := &query.Request{SC: &sc}
	res, err := st.Query(req, 4)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, res.Matches, bruteForce(data, shape, req), "SC-only query")
}

func TestCombinedQuery(t *testing.T) {
	st, data, shape := buildStore(t, 32)
	lo, hi := datagen.Selectivity(data, 0.3, 17, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	sc, _ := grid.NewRegion([]int{0, 8}, []int{16, 30})
	req := &query.Request{VC: &vc, SC: &sc}
	res, err := st.Query(req, 3)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, res.Matches, bruteForce(data, shape, req), "combined")
}

func TestEveryQueryLoadsFullIndex(t *testing.T) {
	// The paper's central FastBit observation: queries pay the full
	// index load regardless of selectivity.
	st, data, _ := buildStore(t, 128)
	lo, hi := datagen.Selectivity(data, 0.01, 19, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	res, err := st.Query(&query.Request{VC: &vc, IndexOnly: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesRead < st.IndexBytes() {
		t.Fatalf("query read %d bytes < index size %d", res.BytesRead, st.IndexBytes())
	}
}

func TestIndexSizeGrowsWithBins(t *testing.T) {
	// Precision (fine) binning inflates the index — the regime behind
	// the paper's 10 GB index for 8 GB data.
	coarse, _, _ := buildStore(t, 16)
	fine, _, _ := buildStore(t, 512)
	if fine.IndexBytes() <= coarse.IndexBytes() {
		t.Fatalf("index did not grow with bins: %d (512 bins) <= %d (16 bins)",
			fine.IndexBytes(), coarse.IndexBytes())
	}
	if coarse.DataBytes() != fine.DataBytes() {
		t.Fatal("data size should be bin-independent")
	}
}

func TestQueryValidation(t *testing.T) {
	st, _, _ := buildStore(t, 16)
	if _, err := st.Query(&query.Request{}, 0); err == nil {
		t.Error("ranks=0 accepted")
	}
	bad := binning.ValueConstraint{Min: 1, Max: 0}
	if _, err := st.Query(&query.Request{VC: &bad}, 1); err == nil {
		t.Error("inverted VC accepted")
	}
}

func TestUnconstrainedQueryReturnsAll(t *testing.T) {
	st, data, shape := buildStore(t, 16)
	res, err := st.Query(&query.Request{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, res.Matches, bruteForce(data, shape, &query.Request{}), "unconstrained")
}
