// Package fastbit implements the from-scratch FastBit comparator
// (Wu, 2005): a binned bitmap index with WAH-compressed bitmaps over
// the raw data. Following the paper's experimental setup (§IV), the
// index uses fine-grained "precision" binning (many bins — the paper's
// configuration produced a 10 GB index for 8 GB of data) and is stored
// on the PFS; every query loads the full index from disk first, which
// is the behavior behind FastBit's flat ≈37 s rows in Tables II/III.
package fastbit

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"mloc/internal/binning"
	"mloc/internal/bitmap"
	"mloc/internal/grid"
	"mloc/internal/mpi"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

// Config parameterizes index construction.
type Config struct {
	// NumBins is the bitmap bin count. FastBit's precision binning on
	// doubles yields many fine bins; the default of 1024 reproduces the
	// paper's index-larger-than-data regime.
	NumBins int
	// SampleSize bounds the values sampled for bin-boundary estimation.
	SampleSize int
	// Hierarchical appends OR-aggregated super-bin bitmaps above the
	// leaf bins (the same tree core builds into its vindex) so
	// value-constrained queries read only the inside-subtree node
	// payloads and boundary-leaf bitmaps instead of the full index.
	Hierarchical bool
	// Fanout is the super-bin tree arity (default 4; ignored unless
	// Hierarchical).
	Fanout int
}

// DefaultConfig mirrors the paper's FastBit setup.
func DefaultConfig() Config {
	return Config{NumBins: 1024, SampleSize: 1 << 20}
}

// Store is a FastBit-style indexed store on the PFS.
type Store struct {
	fs     *pfs.Sim
	prefix string
	shape  grid.Shape
	scheme *binning.Scheme
	// bitmapOffsets locates each bin's serialized WAH bitmap inside the
	// index file (kept in memory as catalog metadata, as FastBit does).
	bitmapOffsets []int64
	indexSize     int64
	// tree, nodeOffs, and nodeLens carry the hierarchical super-bin
	// section: node payloads appended after the leaf bitmaps, located by
	// nodeID (level 0 first; level-0 entries alias the leaf bitmaps).
	// All nil/empty on flat stores.
	tree     *binning.Tree
	nodeOffs []int64
	nodeLens []int64
}

// nodeID maps a tree node to its slot in nodeOffs/nodeLens: nodes are
// numbered level by level from the leaves up.
func (s *Store) nodeID(n binning.NodeRef) int {
	id := n.Index
	for l := 0; l < n.Level; l++ {
		id += s.tree.LevelWidth(l)
	}
	return id
}

// Build constructs the index and base data on the PFS under prefix,
// charging write time to clk.
func Build(fs *pfs.Sim, clk *pfs.Clock, prefix string, shape grid.Shape, data []float64, cfg Config) (*Store, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if int64(len(data)) != shape.Elems() {
		return nil, fmt.Errorf("fastbit: %d values for shape %v", len(data), shape)
	}
	if cfg.NumBins < 1 {
		return nil, fmt.Errorf("fastbit: NumBins %d < 1", cfg.NumBins)
	}
	if cfg.SampleSize < 1 {
		cfg.SampleSize = 1 << 20
	}

	// Base data: raw row-major (FastBit indexes existing files).
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	if err := fs.WriteFile(clk, prefix+"/data", raw); err != nil {
		return nil, err
	}

	// Equal-frequency boundaries from a sample (precision binning
	// surrogate: fine bins, value-ordered).
	sample := data
	if len(sample) > cfg.SampleSize {
		step := len(data) / cfg.SampleSize
		sample = make([]float64, 0, cfg.SampleSize)
		for i := 0; i < len(data); i += step {
			sample = append(sample, data[i])
		}
	}
	scheme, err := binning.Build(binning.EqualFrequency, sample, cfg.NumBins)
	if err != nil {
		return nil, err
	}
	// The sample may miss the data extremes, and BinOf clamps
	// out-of-range values into the edge bins; widen the outer bounds so
	// the aligned-bin bitmap path never returns a clamped value that
	// violates the constraint (same fix as core's builder).
	lo, hi := data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scheme = scheme.CoverRange(lo, hi)

	// One plain bitmap per bin, then WAH-compress.
	n := int64(len(data))
	plains := make([]*bitmap.Bitmap, scheme.NumBins())
	for i := range plains {
		plains[i] = bitmap.New(n)
	}
	for i, v := range data {
		plains[scheme.BinOf(v)].Set(int64(i))
	}

	var index []byte
	offsets := make([]int64, scheme.NumBins()+1)
	wahs := make([]*bitmap.WAH, len(plains))
	for i, pb := range plains {
		offsets[i] = int64(len(index))
		w := bitmap.Compress(pb)
		wahs[i] = w
		enc, err := w.MarshalBinary()
		if err != nil {
			return nil, err
		}
		index = append(index, enc...)
	}
	offsets[len(plains)] = int64(len(index))

	st := &Store{
		fs:            fs,
		prefix:        prefix,
		shape:         shape,
		scheme:        scheme,
		bitmapOffsets: offsets,
	}

	if cfg.Hierarchical {
		fanout := cfg.Fanout
		if fanout == 0 {
			fanout = 4
		}
		tree, err := binning.NewTree(scheme, fanout)
		if err != nil {
			return nil, err
		}
		st.tree = tree
		st.nodeOffs = make([]int64, tree.NumNodes())
		st.nodeLens = make([]int64, tree.NumNodes())
		// Level 0 aliases the leaf bitmaps already serialized above.
		for i := 0; i < tree.LevelWidth(0); i++ {
			st.nodeOffs[i] = offsets[i]
			st.nodeLens[i] = offsets[i+1] - offsets[i]
		}
		// Upper levels OR-aggregate their children; payloads append
		// after the leaf section, level by level.
		level := wahs
		id := tree.LevelWidth(0)
		for l := 1; l < tree.NumLevels(); l++ {
			next := make([]*bitmap.WAH, tree.LevelWidth(l))
			for i := range next {
				lo, hi := tree.Children(binning.NodeRef{Level: l, Index: i})
				agg := level[lo]
				for c := lo + 1; c < hi; c++ {
					agg = agg.Or(level[c])
				}
				next[i] = agg
				enc, err := agg.MarshalBinary()
				if err != nil {
					return nil, err
				}
				st.nodeOffs[id] = int64(len(index))
				st.nodeLens[id] = int64(len(enc))
				index = append(index, enc...)
				id++
			}
			level = next
		}
	}

	if err := fs.WriteFile(clk, prefix+"/index", index); err != nil {
		return nil, err
	}
	st.indexSize = int64(len(index))
	return st, nil
}

// Hierarchical reports whether the store carries the super-bin tree
// section.
func (s *Store) Hierarchical() bool { return s.tree != nil }

// DataBytes returns the base-data footprint.
func (s *Store) DataBytes() int64 { return 8 * s.shape.Elems() }

// IndexBytes returns the index footprint (Table I's FastBit index
// column).
func (s *Store) IndexBytes() int64 { return s.indexSize }

// Shape returns the grid shape.
func (s *Store) Shape() grid.Shape { return s.shape }

// NumBins returns the effective bin count.
func (s *Store) NumBins() int { return s.scheme.NumBins() }

// Query answers a request with the given rank count. Per the paper's
// observed behavior, each query first loads the entire index from the
// PFS (rank-partitioned), then evaluates bitmaps, then fetches
// candidate values from the base data where needed.
func (s *Store) Query(req *query.Request, ranks int) (*query.Result, error) {
	if err := req.Validate(s.shape); err != nil {
		return nil, err
	}
	if ranks < 1 {
		return nil, fmt.Errorf("fastbit: ranks %d < 1", ranks)
	}
	if s.tree != nil && req.VC != nil {
		return s.queryHier(req, ranks)
	}

	type rankOut struct {
		matches []query.Match
		time    query.Components
		bytes   int64
	}
	outs := make([]rankOut, ranks)

	// Bins relevant to the VC (everything when unconstrained).
	var aligned, edge []int
	if req.VC != nil {
		aligned, edge = s.scheme.SelectBins(*req.VC)
	} else {
		for b := 0; b < s.scheme.NumBins(); b++ {
			aligned = append(aligned, b)
		}
	}

	clks := s.fs.NewClocks(ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		clk := clks[c.Rank()]
		out := &outs[c.Rank()]

		// Load the FULL index (the paper's dominating cost): ranks read
		// disjoint partitions concurrently.
		if err := s.fs.Open(clk, s.prefix+"/index"); err != nil {
			return err
		}
		per := (s.indexSize + int64(c.Size()) - 1) / int64(c.Size())
		lo := per * int64(c.Rank())
		hi := lo + per
		if hi > s.indexSize {
			hi = s.indexSize
		}
		if lo < hi {
			t0 := clk.Now()
			if _, err := s.fs.ReadAt(clk, s.prefix+"/index", lo, hi-lo); err != nil {
				return err
			}
			out.time.IO += clk.Now() - t0
			out.bytes += hi - lo
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Evaluate this rank's share of the relevant bins.
		myBins := func(bins []int) []int {
			var mine []int
			for i := c.Rank(); i < len(bins); i += c.Size() {
				mine = append(mine, bins[i])
			}
			return mine
		}

		// Aligned bins: bitmap indices alone answer index-only regions.
		for _, b := range myBins(aligned) {
			wah, err := s.loadBitmap(b)
			if err != nil {
				return err
			}
			var pending []int64
			out.time.Decompress += clk.MeasureCPU(func() {
				bm := wah.Decompress()
				bm.Each(func(i int64) {
					if req.SC != nil && !s.inRegion(i, req.SC) {
						return
					}
					if req.IndexOnly {
						out.matches = append(out.matches, query.Match{Index: i})
						return
					}
					pending = append(pending, i)
				})
			})
			if len(pending) > 0 {
				if err := s.fetchValues(clk, out1{&out.matches, &out.time, &out.bytes}, pending, nil); err != nil {
					return err
				}
			}
		}
		// Edge bins: values must be checked against the VC.
		for _, b := range myBins(edge) {
			wah, err := s.loadBitmap(b)
			if err != nil {
				return err
			}
			var pending []int64
			out.time.Decompress += clk.MeasureCPU(func() {
				bm := wah.Decompress()
				bm.Each(func(i int64) {
					if req.SC != nil && !s.inRegion(i, req.SC) {
						return
					}
					pending = append(pending, i)
				})
			})
			if len(pending) > 0 {
				if err := s.fetchValues(clk, out1{&out.matches, &out.time, &out.bytes}, pending, req); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &query.Result{BinsAccessed: len(aligned) + len(edge)}
	var slowest float64
	for i := range outs {
		res.Matches = append(res.Matches, outs[i].matches...)
		res.BytesRead += outs[i].bytes
		if t := outs[i].time.Total(); t >= slowest {
			slowest = t
			res.Time = outs[i].time
		}
	}
	res.Sort()
	return res, nil
}

// queryHier answers a value-constrained request through the super-bin
// tree: inside-subtree node bitmaps and boundary-leaf bitmaps are the
// only index bytes read (coalesced extents instead of the flat path's
// full index load), fully-outside subtrees cost nothing, and only
// boundary candidates have their values checked against the VC.
func (s *Store) queryHier(req *query.Request, ranks int) (*query.Result, error) {
	sel := s.tree.Select(*req.VC)

	type rankOut struct {
		matches   []query.Match
		time      query.Components
		bytes     int64
		nodesRead int
	}
	outs := make([]rankOut, ranks)
	clks := s.fs.NewClocks(ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		clk := clks[c.Rank()]
		out := &outs[c.Rank()]

		var myNodes []binning.NodeRef
		for i := c.Rank(); i < len(sel.Inside); i += c.Size() {
			myNodes = append(myNodes, sel.Inside[i])
		}
		var myEdges []int
		for i := c.Rank(); i < len(sel.Boundary); i += c.Size() {
			myEdges = append(myEdges, sel.Boundary[i])
		}
		if len(myNodes)+len(myEdges) == 0 {
			return nil
		}
		if err := s.fs.Open(clk, s.prefix+"/index"); err != nil {
			return err
		}
		extents := make([][2]int64, 0, len(myNodes)+len(myEdges))
		for _, n := range myNodes {
			id := s.nodeID(n)
			extents = append(extents, [2]int64{s.nodeOffs[id], s.nodeLens[id]})
		}
		for _, b := range myEdges {
			extents = append(extents, [2]int64{s.bitmapOffsets[b], s.bitmapOffsets[b+1] - s.bitmapOffsets[b]})
		}
		bytes, ioSec, err := s.readExtents(clk, extents)
		if err != nil {
			return err
		}
		out.bytes += bytes
		out.time.IO += ioSec

		// Inside nodes: every set bit satisfies the VC by construction.
		for _, n := range myNodes {
			id := s.nodeID(n)
			raw, err := s.fs.Peek(s.prefix+"/index", s.nodeOffs[id], s.nodeLens[id])
			if err != nil {
				return err
			}
			var w bitmap.WAH
			if err := w.UnmarshalBinary(raw); err != nil {
				return fmt.Errorf("fastbit: node %d bitmap: %w", id, err)
			}
			var pending []int64
			out.time.Decompress += clk.MeasureCPU(func() {
				bm := w.Decompress()
				bm.Each(func(i int64) {
					if req.SC != nil && !s.inRegion(i, req.SC) {
						return
					}
					if req.IndexOnly {
						out.matches = append(out.matches, query.Match{Index: i})
						return
					}
					pending = append(pending, i)
				})
			})
			if len(pending) > 0 {
				if err := s.fetchValues(clk, out1{&out.matches, &out.time, &out.bytes}, pending, nil); err != nil {
					return err
				}
			}
			out.nodesRead++
		}
		// Boundary leaves: values must be checked against the VC.
		for _, b := range myEdges {
			wah, err := s.loadBitmap(b)
			if err != nil {
				return err
			}
			var pending []int64
			out.time.Decompress += clk.MeasureCPU(func() {
				bm := wah.Decompress()
				bm.Each(func(i int64) {
					if req.SC != nil && !s.inRegion(i, req.SC) {
						return
					}
					pending = append(pending, i)
				})
			})
			if len(pending) > 0 {
				if err := s.fetchValues(clk, out1{&out.matches, &out.time, &out.bytes}, pending, req); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &query.Result{
		BinsAccessed: len(sel.Boundary) + sel.CoveredLeaves,
		BinsPruned:   sel.PrunedLeaves,
		BinsCovered:  sel.CoveredLeaves,
	}
	var slowest float64
	for i := range outs {
		res.Matches = append(res.Matches, outs[i].matches...)
		res.BytesRead += outs[i].bytes
		res.IndexNodesRead += outs[i].nodesRead
		if t := outs[i].time.Total(); t >= slowest {
			slowest = t
			res.Time = outs[i].time
		}
	}
	res.Sort()
	return res, nil
}

// readExtents charges the PFS for the given (offset, length) extents of
// the index file — sorted and merged through the simulator's coalesce
// gap — and returns the bytes charged plus the elapsed virtual I/O
// seconds. Payloads are retrieved afterwards with Peek.
func (s *Store) readExtents(clk *pfs.Clock, extents [][2]int64) (int64, float64, error) {
	if len(extents) == 0 {
		return 0, 0, nil
	}
	sort.Slice(extents, func(i, j int) bool { return extents[i][0] < extents[j][0] })
	maxGap := s.fs.CoalesceGap()
	t0 := clk.Now()
	var bytes int64
	runLo, runHi := extents[0][0], extents[0][0]+extents[0][1]
	flush := func() error {
		if runHi <= runLo {
			return nil
		}
		if _, err := s.fs.ReadAt(clk, s.prefix+"/index", runLo, runHi-runLo); err != nil {
			return err
		}
		bytes += runHi - runLo
		return nil
	}
	for _, e := range extents[1:] {
		lo, hi := e[0], e[0]+e[1]
		if lo <= runHi+maxGap {
			if hi > runHi {
				runHi = hi
			}
			continue
		}
		if err := flush(); err != nil {
			return 0, 0, err
		}
		runLo, runHi = lo, hi
	}
	if err := flush(); err != nil {
		return 0, 0, err
	}
	return bytes, clk.Now() - t0, nil
}

// out1 bundles the per-rank output pointers for fetchValues.
type out1 struct {
	matches *[]query.Match
	time    *query.Components
	bytes   *int64
}

// loadBitmap deserializes one bin's WAH bitmap from the (already
// loaded) index region.
func (s *Store) loadBitmap(bin int) (*bitmap.WAH, error) {
	lo, hi := s.bitmapOffsets[bin], s.bitmapOffsets[bin+1]
	// The bytes were already paid for by the full index load; Peek
	// re-slices them without double-charging the cost model.
	raw, err := s.fs.Peek(s.prefix+"/index", lo, hi-lo)
	if err != nil {
		return nil, err
	}
	var w bitmap.WAH
	if err := w.UnmarshalBinary(raw); err != nil {
		return nil, fmt.Errorf("fastbit: bin %d bitmap: %w", bin, err)
	}
	return &w, nil
}

// fetchValues reads candidate point values from the base data,
// coalescing adjacent indices into single reads, filters by the VC when
// req != nil, and appends matches.
func (s *Store) fetchValues(clk *pfs.Clock, out out1, indices []int64, req *query.Request) error {
	if err := s.fs.Open(clk, s.prefix+"/data"); err != nil {
		return err
	}
	for i := 0; i < len(indices); {
		j := i + 1
		for j < len(indices) && indices[j] == indices[j-1]+1 {
			j++
		}
		start := indices[i]
		count := indices[j-1] - start + 1
		t0 := clk.Now()
		raw, err := s.fs.ReadAt(clk, s.prefix+"/data", start*8, count*8)
		if err != nil {
			return err
		}
		out.time.IO += clk.Now() - t0
		*out.bytes += count * 8
		out.time.Reconstruct += clk.MeasureCPU(func() {
			for k := int64(0); k < count; k++ {
				v := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*k:]))
				if req != nil && req.VC != nil && !req.VC.Contains(v) {
					continue
				}
				m := query.Match{Index: start + k}
				if req == nil || !req.IndexOnly {
					m.Value = v
				}
				*out.matches = append(*out.matches, m)
			}
		})
		i = j
	}
	return nil
}

// inRegion tests a linear index against a spatial region.
func (s *Store) inRegion(idx int64, region *grid.Region) bool {
	coords := s.shape.Coords(idx, make([]int, 0, s.shape.Dims()))
	return region.Contains(coords)
}
