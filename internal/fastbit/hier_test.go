package fastbit

import (
	"math/rand"
	"testing"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

// buildPair builds a flat and a hierarchical store over the same data.
func buildPair(t *testing.T, bins int) (flat, hier *Store, data []float64, shape grid.Shape) {
	t.Helper()
	d := datagen.GTSLike(64, 64, 7)
	v, _ := d.Var("phi")
	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig()
	cfg.NumBins = bins
	flat, err := Build(fs, pfs.NewClock(), "fbh/flat", d.Shape, v.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hierarchical = true
	hier, err = Build(fs, pfs.NewClock(), "fbh/hier", d.Shape, v.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return flat, hier, v.Data, d.Shape
}

func TestHierarchicalEquivalence(t *testing.T) {
	flat, hier, data, shape := buildPair(t, 128)
	if flat.Hierarchical() || !hier.Hierarchical() {
		t.Fatal("hierarchical flags wrong")
	}
	if hier.IndexBytes() <= flat.IndexBytes() {
		t.Fatalf("hier index %d not larger than flat %d", hier.IndexBytes(), flat.IndexBytes())
	}
	lo, hi := data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		req := &query.Request{}
		a := lo + r.Float64()*(hi-lo)
		b := lo + r.Float64()*(hi-lo)
		if a > b {
			a, b = b, a
		}
		req.VC = &binning.ValueConstraint{Min: a, Max: b}
		if r.Intn(2) == 0 {
			x0, y0 := r.Intn(64), r.Intn(64)
			req.SC = &grid.Region{Lo: []int{x0, y0}, Hi: []int{x0 + 1 + r.Intn(64-x0), y0 + 1 + r.Intn(64-y0)}}
		}
		req.IndexOnly = r.Intn(2) == 0
		ranks := 1 + r.Intn(4)
		want, err := flat.Query(req, ranks)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hier.Query(req, ranks)
		if err != nil {
			t.Fatal(err)
		}
		matchesEqual(t, got.Matches, want.Matches, "hier trial")
		matchesEqual(t, got.Matches, bruteForce(data, shape, req), "brute trial")
		if got.BinsPruned+got.BinsCovered+(got.BinsAccessed-got.BinsCovered) > hier.NumBins() {
			t.Fatalf("trial %d: pruning accounting exceeds bin count: %+v", trial, got)
		}
	}
}

// The hierarchical section must spare the flat path's full-index load:
// at low selectivity the pruned query reads far fewer index bytes and
// finishes faster on the virtual clock.
func TestHierarchicalPrunesIndexLoad(t *testing.T) {
	flat, hier, data, _ := buildPair(t, 128)
	lo, hi := datagen.Selectivity(data, 0.10, 3, 4096)
	req := &query.Request{VC: &binning.ValueConstraint{Min: lo, Max: hi}, IndexOnly: true}
	fr, err := flat.Query(req, 4)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := hier.Query(req, 4)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, hr.Matches, fr.Matches, "pruned query")
	if hr.BinsPruned == 0 || hr.IndexNodesRead == 0 {
		t.Fatalf("no pruning reported: %+v", hr)
	}
	if hr.BytesRead >= fr.BytesRead {
		t.Errorf("hier read %d bytes, flat %d — no index-load saving", hr.BytesRead, fr.BytesRead)
	}
	if ht, ft := hr.Time.Total(), fr.Time.Total(); ht >= ft {
		t.Errorf("hier latency %.6fs not below flat %.6fs", ht, ft)
	}
}
