package analysis

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewEqualWidthHistogram(nil, 10); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := NewEqualWidthHistogram([]float64{1}, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewEqualWidthHistogram([]float64{1, math.NaN()}, 2); err == nil {
		t.Error("NaN accepted")
	}
}

func TestHistogramBinOf(t *testing.T) {
	h, err := NewEqualWidthHistogram([]float64{0, 10}, 10)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{{-1, 0}, {0, 0}, {0.5, 0}, {1, 1}, {5, 5}, {9.99, 9}, {10, 9}, {11, 9}}
	for _, c := range cases {
		if got := h.BinOf(c.v); got != c.want {
			t.Errorf("BinOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramCountsSum(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := make([]float64, 1000)
	for i := range data {
		data[i] = r.NormFloat64()
	}
	h, _ := NewEqualWidthHistogram(data, 20)
	counts := h.Counts(data)
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != 1000 {
		t.Fatalf("counts sum = %d", sum)
	}
}

func TestHistogramConstantReference(t *testing.T) {
	h, err := NewEqualWidthHistogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b := h.BinOf(5); b < 0 || b >= 4 {
		t.Fatalf("BinOf on degenerate histogram = %d", b)
	}
}

func TestDisagreementRate(t *testing.T) {
	h, _ := NewEqualWidthHistogram([]float64{0, 100}, 10)
	orig := []float64{5, 15, 25, 35}
	same := []float64{6, 16, 26, 36}
	rate, err := h.DisagreementRate(orig, same)
	if err != nil || rate != 0 {
		t.Fatalf("rate = %v, %v", rate, err)
	}
	moved := []float64{5, 15, 25, 45} // last point crosses a bin edge
	rate, _ = h.DisagreementRate(orig, moved)
	if rate != 0.25 {
		t.Fatalf("rate = %v, want 0.25", rate)
	}
	if _, err := h.DisagreementRate(orig, orig[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	rate, err = h.DisagreementRate(nil, nil)
	if err != nil || rate != 0 {
		t.Fatal("empty disagreement should be 0")
	}
}

// threeBlobs makes well-separated 2-D clusters.
func threeBlobs(n int, seed int64) ([][]float64, []int) {
	r := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	points := make([][]float64, n)
	truth := make([]int, n)
	for i := range points {
		c := r.Intn(3)
		truth[i] = c
		points[i] = []float64{
			centers[c][0] + r.NormFloat64()*0.5,
			centers[c][1] + r.NormFloat64()*0.5,
		}
	}
	return points, truth
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, 2, 10, 1, nil); err == nil {
		t.Error("empty points accepted")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 3, 10, 1, nil); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KMeans(pts, 0, 10, 1, nil); err == nil {
		t.Error("k = 0 accepted")
	}
	bad := [][]float64{{1}, {2, 3}}
	if _, err := KMeans(bad, 1, 10, 1, nil); err == nil {
		t.Error("ragged points accepted")
	}
	if _, err := KMeans(pts, 2, 10, 1, [][]float64{{1}}); err == nil {
		t.Error("wrong init centroid count accepted")
	}
	if _, err := KMeans(pts, 1, 10, 1, [][]float64{{1, 2}}); err == nil {
		t.Error("wrong init centroid dim accepted")
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	points, truth := threeBlobs(600, 2)
	res, err := KMeans(points, 3, 100, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Majority-map clusters to truth labels and count agreement.
	var mapping [3]map[int]int
	for i := range mapping {
		mapping[i] = map[int]int{}
	}
	for i, a := range res.Assignments {
		mapping[a][truth[i]]++
	}
	agree := 0
	for c := 0; c < 3; c++ {
		best := 0
		for _, n := range mapping[c] {
			if n > best {
				best = n
			}
		}
		agree += best
	}
	if float64(agree)/float64(len(points)) < 0.98 {
		t.Fatalf("kmeans recovered only %d/%d points", agree, len(points))
	}
}

func TestKMeansDeterministicWithSameInit(t *testing.T) {
	points, _ := threeBlobs(300, 3)
	a, err := KMeans(points, 3, 50, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 3, 50, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := MisclassificationRate(a, b)
	if err != nil || rate != 0 {
		t.Fatalf("same seed produced different clusterings: %v %v", rate, err)
	}
}

func TestKMeansSharedInitComparability(t *testing.T) {
	// The Table VI protocol: cluster original and a slightly perturbed
	// copy from identical initial centroids; the disagreement must be
	// tiny because the perturbation is far below cluster separation.
	points, _ := threeBlobs(500, 4)
	r := rand.New(rand.NewSource(5))
	perturbed := make([][]float64, len(points))
	for i, p := range points {
		perturbed[i] = []float64{p[0] + r.NormFloat64()*1e-4, p[1] + r.NormFloat64()*1e-4}
	}
	init := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	a, err := KMeans(points, 3, 100, 0, init)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(perturbed, 3, 100, 0, init)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := MisclassificationRate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 0.001 {
		t.Fatalf("tiny perturbation misclassified %.4f of points", rate)
	}
}

func TestKMeansEmptyClusterSurvives(t *testing.T) {
	// An initial centroid far from all points yields an empty cluster;
	// the algorithm must not divide by zero.
	points := [][]float64{{0}, {0.1}, {0.2}, {10}, {10.1}}
	init := [][]float64{{0}, {10}, {1e6}}
	res, err := KMeans(points, 3, 20, 0, init)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if a < 0 || a >= 3 {
			t.Fatalf("assignment %d out of range", a)
		}
	}
}

func TestMisclassificationRateValidation(t *testing.T) {
	a := &KMeansResult{Assignments: []int{0, 1}}
	b := &KMeansResult{Assignments: []int{0}}
	if _, err := MisclassificationRate(a, b); err == nil {
		t.Fatal("length mismatch accepted")
	}
	empty := &KMeansResult{}
	if rate, err := MisclassificationRate(empty, empty); err != nil || rate != 0 {
		t.Fatal("empty comparison should be 0")
	}
}

func TestColumns(t *testing.T) {
	pts, err := Columns([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0][0] != 1 || pts[0][1] != 3 || pts[1][1] != 4 {
		t.Fatalf("Columns = %v", pts)
	}
	if _, err := Columns(); err == nil {
		t.Fatal("no columns accepted")
	}
	if _, err := Columns([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
}
