// Package analysis implements the two analytics the paper uses to
// quantify PLoD accuracy (Table VI): equal-width histogram construction
// and K-means clustering. Both compare results on original data against
// results on reduced-precision (PLoD) reconstructions and report the
// disagreement rate.
package analysis

import (
	"fmt"
	"math"
	"math/rand"
)

// EqualWidthHistogram holds bin edges built on a reference dataset.
type EqualWidthHistogram struct {
	lo, hi float64
	nbins  int
}

// NewEqualWidthHistogram builds an equal-width histogram layout from
// the reference values (the paper builds edges on the ORIGINAL data and
// then applies them to PLoD reconstructions).
func NewEqualWidthHistogram(reference []float64, nbins int) (*EqualWidthHistogram, error) {
	if nbins < 1 {
		return nil, fmt.Errorf("analysis: nbins %d < 1", nbins)
	}
	if len(reference) == 0 {
		return nil, fmt.Errorf("analysis: empty reference data")
	}
	lo, hi := reference[0], reference[0]
	for _, v := range reference {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("analysis: NaN in reference data")
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo { // constant data: widen the degenerate range
		hi = lo + 1
	}
	return &EqualWidthHistogram{lo: lo, hi: hi, nbins: nbins}, nil
}

// NumBins returns the bin count.
func (h *EqualWidthHistogram) NumBins() int { return h.nbins }

// BinOf maps a value to its bin, clamping out-of-range values to the
// edge bins.
func (h *EqualWidthHistogram) BinOf(v float64) int {
	if v <= h.lo {
		return 0
	}
	if v >= h.hi {
		return h.nbins - 1
	}
	b := int(float64(h.nbins) * (v - h.lo) / (h.hi - h.lo))
	if b >= h.nbins {
		b = h.nbins - 1
	}
	return b
}

// Counts bins every value.
func (h *EqualWidthHistogram) Counts(values []float64) []int64 {
	out := make([]int64, h.nbins)
	for _, v := range values {
		out[h.BinOf(v)]++
	}
	return out
}

// DisagreementRate returns the fraction of points whose bin assignment
// under the degraded values differs from the original values — the
// paper's "histogram error" metric.
func (h *EqualWidthHistogram) DisagreementRate(original, degraded []float64) (float64, error) {
	if len(original) != len(degraded) {
		return 0, fmt.Errorf("analysis: length mismatch %d vs %d", len(original), len(degraded))
	}
	if len(original) == 0 {
		return 0, nil
	}
	var diff int64
	for i := range original {
		if h.BinOf(original[i]) != h.BinOf(degraded[i]) {
			diff++
		}
	}
	return float64(diff) / float64(len(original)), nil
}

// KMeansResult holds the clustering output.
type KMeansResult struct {
	Centroids   [][]float64
	Assignments []int
	Iterations  int
}

// KMeans clusters points (each a d-dimensional slice) into k clusters
// using Lloyd's algorithm with deterministic seeded initialization.
// initCentroids, when non-nil, overrides the random initialization —
// this is how the accuracy experiment clusters original and degraded
// data from identical starting conditions so cluster identities
// correspond across runs.
func KMeans(points [][]float64, k, maxIters int, seed int64, initCentroids [][]float64) (*KMeansResult, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("analysis: no points")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("analysis: k=%d out of [1,%d]", k, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("analysis: point %d has dim %d, want %d", i, len(p), dim)
		}
	}

	centroids := make([][]float64, k)
	if initCentroids != nil {
		if len(initCentroids) != k {
			return nil, fmt.Errorf("analysis: %d init centroids for k=%d", len(initCentroids), k)
		}
		for i, c := range initCentroids {
			if len(c) != dim {
				return nil, fmt.Errorf("analysis: init centroid %d has dim %d, want %d", i, len(c), dim)
			}
			centroids[i] = append([]float64(nil), c...)
		}
	} else {
		r := rand.New(rand.NewSource(seed))
		perm := r.Perm(n)
		for i := 0; i < k; i++ {
			centroids[i] = append([]float64(nil), points[perm[i]]...)
		}
	}

	assign := make([]int, n)
	sums := make([][]float64, k)
	counts := make([]int, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	iters := 0
	for ; iters < maxIters; iters++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d := sqDist(p, centroids[c])
				if d < bestD {
					bestD, best = d, c
				}
			}
			if assign[i] != best || iters == 0 {
				changed = changed || assign[i] != best
				assign[i] = best
			}
		}
		if iters > 0 && !changed {
			break
		}
		// Recompute centroids.
		for c := 0; c < k; c++ {
			counts[c] = 0
			for d := 0; d < dim; d++ {
				sums[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				sums[c][d] += p[d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue // keep the old centroid for empty clusters
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	return &KMeansResult{Centroids: centroids, Assignments: assign, Iterations: iters}, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// MisclassificationRate returns the fraction of points assigned to
// different clusters in the two results — the paper's "K-means error".
// Both clusterings must have started from the same initial centroids so
// cluster ids correspond.
func MisclassificationRate(a, b *KMeansResult) (float64, error) {
	if len(a.Assignments) != len(b.Assignments) {
		return 0, fmt.Errorf("analysis: assignment length mismatch %d vs %d",
			len(a.Assignments), len(b.Assignments))
	}
	if len(a.Assignments) == 0 {
		return 0, nil
	}
	var diff int64
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			diff++
		}
	}
	return float64(diff) / float64(len(a.Assignments)), nil
}

// Columns zips per-variable value slices into row points for KMeans
// (e.g. Columns(vv, vw) builds the 2-D points Table VI clusters).
func Columns(vars ...[]float64) ([][]float64, error) {
	if len(vars) == 0 {
		return nil, fmt.Errorf("analysis: no columns")
	}
	n := len(vars[0])
	for i, v := range vars {
		if len(v) != n {
			return nil, fmt.Errorf("analysis: column %d has %d values, want %d", i, len(v), n)
		}
	}
	points := make([][]float64, n)
	for i := 0; i < n; i++ {
		p := make([]float64, len(vars))
		for j, v := range vars {
			p[j] = v[i]
		}
		points[i] = p
	}
	return points, nil
}

// Mean returns the arithmetic mean — the paper's "mean value analysis"
// example for PLoD precision claims.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}
