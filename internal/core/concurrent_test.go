package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mloc/internal/binning"
	"mloc/internal/bitmap"
	"mloc/internal/cache"
	"mloc/internal/compress"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

// concurrentRequests is the mixed workload the stress test replays from
// many goroutines: region, value, combined, and reduced-precision
// accesses (the paper's heterogeneous access patterns).
func concurrentRequests(shape grid.Shape) []*query.Request {
	half := make([]int, shape.Dims())
	for d := range half {
		half[d] = shape[d] / 2
	}
	lo := make([]int, shape.Dims())
	region, _ := grid.NewRegion(lo, half) //mlocvet:ignore uncheckederr -- fixture region is statically valid
	return []*query.Request{
		{SC: &region, IndexOnly: true},
		{VC: &binning.ValueConstraint{Min: 0.2, Max: 0.8}},
		{VC: &binning.ValueConstraint{Min: 0.1, Max: 0.6}, SC: &region},
		{VC: &binning.ValueConstraint{Min: -1e30, Max: 1e30}, PLoDLevel: 4},
	}
}

// TestConcurrentQueriesRace runs mixed queries plus position fetches
// from parallel goroutines against one Store sharing one decode cache.
// Run under -race this is the store's concurrency contract; results are
// also checked against serial baselines.
func TestConcurrentQueriesRace(t *testing.T) {
	st, data, shape := buildTestStore(t, testConfig())
	c, err := cache.New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	st.SetDecodeCache(c)

	reqs := concurrentRequests(shape)
	baselines := make([][]query.Match, len(reqs))
	for i, req := range reqs {
		res, err := st.Query(req, 1)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		baselines[i] = res.Matches
	}

	// A position-fetch baseline: values of the region's points.
	positions := bitmap.New(shape.Elems())
	for _, m := range baselines[0] {
		positions.Set(m.Index)
	}
	fetchBase, err := st.FetchAt(positions, 1)
	if err != nil {
		t.Fatalf("baseline fetch: %v", err)
	}
	for _, m := range fetchBase.Matches {
		if m.Value != data[m.Index] {
			t.Fatalf("baseline fetch value at %d = %v, want %v", m.Index, m.Value, data[m.Index])
		}
	}

	const goroutines = 8
	const iters = 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(reqs)
				ranks := 1 + (g+it)%4
				res, err := st.Query(reqs[i], ranks)
				if err != nil {
					t.Errorf("goroutine %d iter %d query %d: %v", g, it, i, err)
					return
				}
				if len(res.Matches) != len(baselines[i]) {
					t.Errorf("goroutine %d query %d: %d matches, want %d",
						g, i, len(res.Matches), len(baselines[i]))
					return
				}
				for j := range baselines[i] {
					if res.Matches[j] != baselines[i][j] {
						t.Errorf("goroutine %d query %d: match %d = %+v, want %+v",
							g, i, j, res.Matches[j], baselines[i][j])
						return
					}
				}
				if it%2 == 1 {
					fres, err := st.FetchAt(positions, ranks)
					if err != nil {
						t.Errorf("goroutine %d fetch: %v", g, err)
						return
					}
					if len(fres.Matches) != len(fetchBase.Matches) {
						t.Errorf("goroutine %d fetch: %d matches, want %d",
							g, len(fres.Matches), len(fetchBase.Matches))
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if c.Stats().Hits == 0 {
		t.Errorf("shared cache recorded no hits across %d repeated queries", goroutines*iters)
	}
}

// TestQueryContextCancellation cancels a context from the bin-boundary
// test seam and checks the engine stops at that boundary instead of
// scanning the remaining bins.
func TestQueryContextCancellation(t *testing.T) {
	st, _, _ := buildTestStore(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var binsSeen atomic.Int64
	st.hookBeforeBin = func(bin int) {
		if binsSeen.Add(1) == 2 {
			cancel()
		}
	}
	defer func() { st.hookBeforeBin = nil }()

	req := &query.Request{VC: &binning.ValueConstraint{Min: -1e30, Max: 1e30}}
	_, err := st.QueryContext(ctx, req, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext after mid-query cancel = %v, want context.Canceled", err)
	}
	// The rank saw bin 2's boundary (where it canceled) and must not
	// have progressed past bin 3's check.
	if n := binsSeen.Load(); n > 3 {
		t.Errorf("engine visited %d bin boundaries after cancellation, want prompt stop", n)
	}
}

// TestQueryContextPreCanceled checks an already-expired context fails
// before any PFS work.
func TestQueryContextPreCanceled(t *testing.T) {
	st, _, _ := buildTestStore(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := &query.Request{VC: &binning.ValueConstraint{Min: 0, Max: 1}}
	if _, err := st.QueryContext(ctx, req, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext with pre-canceled ctx = %v, want context.Canceled", err)
	}
}

// TestFetchAtContextCancellation mirrors the query cancellation test for
// the multi-variable position-fetch path.
func TestFetchAtContextCancellation(t *testing.T) {
	st, _, shape := buildTestStore(t, testConfig())
	positions := bitmap.New(shape.Elems())
	for i := int64(0); i < shape.Elems(); i += 7 {
		positions.Set(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var binsSeen atomic.Int64
	st.hookBeforeBin = func(bin int) {
		if binsSeen.Add(1) == 2 {
			cancel()
		}
	}
	defer func() { st.hookBeforeBin = nil }()
	if _, err := st.FetchAtContext(ctx, positions, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("FetchAtContext after mid-fetch cancel = %v, want context.Canceled", err)
	}
}

// countingCodec wraps a ByteCodec and counts DecodeBytes calls; the
// decode-cache test uses it to prove hits skip decompression entirely.
type countingCodec struct {
	inner   compress.ByteCodec
	decodes *atomic.Int64
}

func (c countingCodec) Name() string { return c.inner.Name() }
func (c countingCodec) EncodeBytes(src []byte) ([]byte, error) {
	return c.inner.EncodeBytes(src)
}
func (c countingCodec) DecodeBytes(data, dst []byte) ([]byte, error) {
	c.decodes.Add(1)
	return c.inner.DecodeBytes(data, dst)
}

// TestDecodeCachePreventsRedecompression runs the same query twice with
// a cache attached and asserts the second run performs zero codec
// decodes and zero data-plane I/O beyond the first.
func TestDecodeCachePreventsRedecompression(t *testing.T) {
	data, shape := testData(t)
	fs := pfs.New(pfs.DefaultConfig())
	var decodes atomic.Int64
	cfg := testConfig()
	cfg.ByteCodec = countingCodec{inner: compress.NewZlib(compress.DefaultZlibLevel), decodes: &decodes}
	st, err := Build(fs, pfs.NewClock(), "mloc/phi", shape, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	st.SetDecodeCache(c)

	decodes.Store(0)
	req := &query.Request{VC: &binning.ValueConstraint{Min: -1e30, Max: 1e30}}
	res1, err := st.Query(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := decodes.Load()
	if afterFirst == 0 {
		t.Fatalf("first query performed no decodes; counting codec not in the path")
	}

	res2, err := st.Query(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n := decodes.Load(); n != afterFirst {
		t.Errorf("second identical query decoded %d more units; cache did not serve it", n-afterFirst)
	}
	if res2.CacheHits == 0 {
		t.Errorf("second query reported zero cache hits")
	}
	if res2.Time.Decompress != 0 {
		t.Errorf("second query charged %v decompress time, want 0", res2.Time.Decompress)
	}
	matchesEqual(t, res2.Matches, res1.Matches, "cached query")

	// A fetch over the same units must also be served from cache.
	positions := bitmap.New(shape.Elems())
	for i := int64(0); i < shape.Elems(); i += 5 {
		positions.Set(i)
	}
	fres, err := st.FetchAt(positions, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := decodes.Load(); n != afterFirst {
		t.Errorf("cached fetch decoded %d more units", n-afterFirst)
	}
	if fres.CacheHits == 0 {
		t.Errorf("fetch reported zero cache hits")
	}
	for _, m := range fres.Matches {
		if m.Value != data[m.Index] {
			t.Fatalf("cached fetch value at %d = %v, want %v", m.Index, m.Value, data[m.Index])
		}
	}
}
