package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"mloc/internal/compress"
	"mloc/internal/grid"
	"mloc/internal/mpi"
	"mloc/internal/pfs"
	"mloc/internal/query"
	"mloc/internal/sfc"
)

// SubsetStore implements MLOC's subset-based multi-resolution layout
// (paper §III-B3, first approach; Fig. 1's topmost "hierarchical
// Hilbert curve mapping" stage): grid points are partitioned into
// nested resolution levels — level 0 is the coarsest stride-2^k
// subsample, each finer level adds the points that first appear at half
// the stride — and each level's points are stored contiguously in
// Hilbert order. A reader at resolution ℓ fetches only levels 0..ℓ:
// one contiguous scan per level, no seeks inside a level.
//
// As the paper notes, this approach "misses a large number of points in
// lower-resolution accesses" — it returns a spatial subsample, unlike
// PLoD which returns every point at reduced precision. Both are
// supported; the multires example contrasts them.
//
// The layout stores no per-point coordinates: the decoder re-walks the
// Hilbert curve exactly as the encoder did, which mirrors the paper's
// "no additional metadata must be stored to track this order" property
// of HSFC layouts.
type SubsetStore struct {
	fs     *pfs.Sim
	prefix string
	shape  grid.Shape
	curve  *sfc.Hilbert
	hier   *sfc.Hierarchy
	codec  compress.ByteCodec
	// levelOffsets[ℓ] / levelCounts[ℓ] locate each level's block table.
	levels []subsetLevel
}

// subsetLevel is one resolution level's storage: consecutive blocks of
// values (in hierarchical-Hilbert point order), individually
// compressed.
type subsetLevel struct {
	count  int64 // points in this level
	blocks []subsetBlock
}

type subsetBlock struct {
	off, length int64 // byte range in the level file
	count       int   // values in the block
}

// subsetBlockSize is the number of values per compressed block.
const subsetBlockSize = 1 << 14

// BuildSubset ingests a variable into the subset-based multi-resolution
// layout under prefix. The grid must be hyper-cubic with a power-of-two
// side (the hierarchical Hilbert mapping's domain); other shapes should
// use the PLoD path instead.
func BuildSubset(fs *pfs.Sim, clk *pfs.Clock, prefix string, shape grid.Shape, data []float64, codec compress.ByteCodec) (*SubsetStore, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if int64(len(data)) != shape.Elems() {
		return nil, fmt.Errorf("core: %d values for shape %v", len(data), shape)
	}
	side := shape[0]
	for d, s := range shape {
		if s != side {
			return nil, fmt.Errorf("core: subset store needs a hyper-cubic grid, dim %d has %d != %d", d, s, side)
		}
	}
	if side < 2 || side&(side-1) != 0 {
		return nil, fmt.Errorf("core: subset store needs a power-of-two side, got %d", side)
	}
	if codec == nil {
		codec = compress.NewZlib(compress.DefaultZlibLevel)
	}

	order := sfc.OrderFor(uint64(side))
	curve, err := sfc.NewHilbert(shape.Dims(), order)
	if err != nil {
		return nil, err
	}
	hier := sfc.NewHierarchy(curve)

	// Bucket values by (level, hilbert index).
	type pt struct {
		rank  uint64
		value float64
	}
	buckets := make([][]pt, hier.Levels())
	ucoords := make([]uint32, shape.Dims())
	coords := make([]int, 0, shape.Dims())
	for i := int64(0); i < shape.Elems(); i++ {
		coords = shape.Coords(i, coords[:0])
		for d, c := range coords {
			ucoords[d] = uint32(c)
		}
		lvl, rank := hier.Rank(ucoords)
		buckets[lvl] = append(buckets[lvl], pt{rank: rank, value: data[i]})
	}

	st := &SubsetStore{
		fs:     fs,
		prefix: prefix,
		shape:  shape.Clone(),
		curve:  curve,
		hier:   hier,
		codec:  codec,
		levels: make([]subsetLevel, hier.Levels()),
	}
	for lvl, pts := range buckets {
		sort.Slice(pts, func(a, b int) bool { return pts[a].rank < pts[b].rank })
		var file []byte
		sl := &st.levels[lvl]
		sl.count = int64(len(pts))
		for start := 0; start < len(pts); start += subsetBlockSize {
			end := start + subsetBlockSize
			if end > len(pts) {
				end = len(pts)
			}
			raw := make([]byte, 8*(end-start))
			for j, p := range pts[start:end] {
				binary.LittleEndian.PutUint64(raw[8*j:], math.Float64bits(p.value))
			}
			enc, err := codec.EncodeBytes(raw)
			if err != nil {
				return nil, fmt.Errorf("core: subset level %d: %w", lvl, err)
			}
			if len(enc) >= len(raw) {
				enc = raw // store raw when compression does not help
			}
			sl.blocks = append(sl.blocks, subsetBlock{
				off:    int64(len(file)),
				length: int64(len(enc)),
				count:  end - start,
			})
			file = append(file, enc...)
		}
		if err := fs.WriteFile(clk, subsetLevelPath(prefix, lvl), file); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func subsetLevelPath(prefix string, lvl int) string {
	return fmt.Sprintf("%s/level%02d", prefix, lvl)
}

// Levels returns the number of resolution levels.
func (s *SubsetStore) Levels() int { return s.hier.Levels() }

// Shape returns the full-resolution grid shape.
func (s *SubsetStore) Shape() grid.Shape { return s.shape }

// LevelBytes returns each level's stored size — the I/O a reader at
// resolution ℓ pays is the prefix sum through ℓ.
func (s *SubsetStore) LevelBytes() []int64 {
	out := make([]int64, len(s.levels))
	for lvl := range s.levels {
		for _, b := range s.levels[lvl].blocks {
			out[lvl] += b.length
		}
	}
	return out
}

// SubsetResult is a resolution-ℓ read: the dense stride-subsampled grid
// and accounting.
type SubsetResult struct {
	// Level is the resolution level read.
	Level int
	// Stride is the sampling stride of the returned grid.
	Stride int
	// Shape is the subsampled grid's shape (ceil(side/stride) per dim).
	Shape grid.Shape
	// Values holds the subsampled grid, row-major in Shape.
	Values []float64
	// Time and BytesRead account the access.
	Time      query.Components
	BytesRead int64
}

// ReadLevel fetches the resolution-ℓ subsample of the whole domain
// using the given number of parallel ranks: levels 0..ℓ are read (each
// a contiguous scan), decoded, and scattered into the dense subsampled
// grid by re-walking the hierarchical Hilbert order.
func (s *SubsetStore) ReadLevel(level int, ranks int) (*SubsetResult, error) {
	if level < 0 || level >= s.Levels() {
		return nil, fmt.Errorf("core: subset level %d out of [0,%d)", level, s.Levels())
	}
	if ranks < 1 {
		return nil, fmt.Errorf("core: ranks %d < 1", ranks)
	}
	stride := int(s.hier.SubsetStride(level))
	outShape := make(grid.Shape, s.shape.Dims())
	for d := range outShape {
		outShape[d] = (s.shape[d] + stride - 1) / stride
	}
	res := &SubsetResult{
		Level:  level,
		Stride: stride,
		Shape:  outShape,
		Values: make([]float64, outShape.Elems()),
	}

	// Work list: every block of levels 0..level.
	type blockTask struct {
		lvl   int
		idx   int
		start int64 // cumulative point offset within the level
	}
	nblocks := 0
	for lvl := 0; lvl <= level; lvl++ {
		nblocks += len(s.levels[lvl].blocks)
	}
	tasks := make([]blockTask, 0, nblocks)
	for lvl := 0; lvl <= level; lvl++ {
		var cum int64
		for i, b := range s.levels[lvl].blocks {
			tasks = append(tasks, blockTask{lvl: lvl, idx: i, start: cum})
			cum += int64(b.count)
		}
	}

	// Decode each block into (level, position-in-level) value runs.
	type decoded struct {
		lvl    int
		start  int64
		values []float64
	}
	outs := make([][]decoded, ranks)
	times := make([]query.Components, ranks)
	bytesRead := make([]int64, ranks)
	clks := s.fs.NewClocks(ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		clk := clks[c.Rank()]
		opened := make(map[int]bool)
		for i := c.Rank(); i < len(tasks); i += c.Size() {
			bt := tasks[i]
			b := s.levels[bt.lvl].blocks[bt.idx]
			path := subsetLevelPath(s.prefix, bt.lvl)
			t0 := clk.Now()
			if !opened[bt.lvl] {
				if err := s.fs.Open(clk, path); err != nil {
					return err
				}
				opened[bt.lvl] = true
			}
			raw, err := s.fs.ReadAt(clk, path, b.off, b.length)
			if err != nil {
				return err
			}
			times[c.Rank()].IO += clk.Now() - t0
			bytesRead[c.Rank()] += b.length

			var values []float64
			var derr error
			times[c.Rank()].Decompress += clk.MeasureCPU(func() {
				buf := raw
				if int(b.length) != 8*b.count {
					buf, derr = s.codec.DecodeBytes(raw, make([]byte, 0, 8*b.count))
					if derr != nil {
						return
					}
				}
				if len(buf) != 8*b.count {
					derr = fmt.Errorf("core: subset block %d/%d: %d bytes, want %d",
						bt.lvl, bt.idx, len(buf), 8*b.count)
					return
				}
				values = make([]float64, b.count)
				for j := range values {
					values[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
				}
			})
			if derr != nil {
				return derr
			}
			outs[c.Rank()] = append(outs[c.Rank()], decoded{lvl: bt.lvl, start: bt.start, values: values})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Assemble per-level value streams.
	perLevel := make([][]float64, level+1)
	for lvl := 0; lvl <= level; lvl++ {
		perLevel[lvl] = make([]float64, s.levels[lvl].count)
	}
	var slowest float64
	for r := range outs {
		for _, d := range outs[r] {
			copy(perLevel[d.lvl][d.start:], d.values)
		}
		if t := times[r].Total(); t >= slowest {
			slowest = t
			res.Time = times[r]
		}
		res.BytesRead += bytesRead[r]
	}

	// Scatter: re-walk the Hilbert curve; points of level ≤ ℓ appear in
	// their level's stream in curve order.
	cursors := make([]int64, level+1)
	n := s.curve.Length()
	ucoords := make([]uint32, s.shape.Dims())
	outCoords := make([]int, s.shape.Dims())
	for d2 := uint64(0); d2 < n; d2++ {
		ucoords = s.curve.Coords(d2, ucoords[:0])
		inGrid := true
		for d, c := range ucoords {
			if int(c) >= s.shape[d] {
				inGrid = false
				break
			}
		}
		if !inGrid {
			continue
		}
		lvl := s.hier.Level(ucoords)
		if lvl > level {
			continue
		}
		v := perLevel[lvl][cursors[lvl]]
		cursors[lvl]++
		for d, c := range ucoords {
			outCoords[d] = int(c) / stride
		}
		res.Values[res.Shape.Linear(outCoords)] = v
	}
	return res, nil
}
