package core

// BenchmarkObsOverhead measures what tracing costs the query hot path:
// "off" runs with an untraced context (every span call hits the nil
// no-op path, which TestNoopSpanZeroAlloc pins at zero allocations),
// "on" runs each query under a retained trace. bench_json.sh distills
// the pair into BENCH_build.json so the overhead is tracked over time.

import (
	"context"
	"testing"

	"mloc/internal/binning"
	"mloc/internal/obs"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

func BenchmarkObsOverhead(b *testing.B) {
	data, shape := benchData(b)
	cfg := DefaultConfig([]int{32, 32})
	cfg.NumBins = 32
	fs := pfs.New(pfs.DefaultConfig())
	st, err := Build(fs, fs.NewClock(), "obs/phi", shape, data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	req := &query.Request{VC: &binning.ValueConstraint{Min: -1e30, Max: 1e30}}

	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := st.QueryContext(context.Background(), req, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		tracer := obs.NewTracer(4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx, root := tracer.StartTrace(context.Background(), "bench")
			if _, err := st.QueryContext(ctx, req, 4); err != nil {
				b.Fatal(err)
			}
			root.End()
		}
	})
}
