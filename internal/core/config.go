// Package core implements MLOC itself: the multi-level layout
// optimization pipeline (value binning → PLoD byte planes → Hilbert
// chunk ordering → compression), the per-bin subfiled organization on
// the PFS, and the parallel query engine for the paper's heterogeneous
// access patterns (region-only, value-retrieval, combined,
// multi-variable, and multi-resolution accesses).
package core

import (
	"fmt"
	"runtime"

	"mloc/internal/compress"
	"mloc/internal/sfc"
)

// Level names one layout-optimization level of the pipeline.
type Level byte

// The three orderable levels (compression is always innermost, and
// value binning drives file partitioning, per paper §III-C).
const (
	LevelValue    Level = 'V'
	LevelMultires Level = 'M'
	LevelSpatial  Level = 'S'
)

// Order is the priority order of the levels, highest first. The paper's
// default is V-M-S; V-S-M is the Table VII alternative.
type Order []Level

// Common orders.
var (
	OrderVMS = Order{LevelValue, LevelMultires, LevelSpatial}
	OrderVSM = Order{LevelValue, LevelSpatial, LevelMultires}
)

// String renders the order as "V-M-S".
func (o Order) String() string {
	out := make([]byte, 0, len(o)*2)
	for i, l := range o {
		if i > 0 {
			out = append(out, '-')
		}
		out = append(out, byte(l))
	}
	return string(out)
}

// Validate checks the order is a permutation of {V,M,S} with V first.
// Value binning must lead because it determines the bin-per-file
// partitioning on the PFS (paper §III-C); M and S may swap freely.
func (o Order) Validate() error {
	if len(o) != 3 {
		return fmt.Errorf("core: order must have 3 levels, got %d", len(o))
	}
	seen := map[Level]bool{}
	for _, l := range o {
		switch l {
		case LevelValue, LevelMultires, LevelSpatial:
			if seen[l] {
				return fmt.Errorf("core: duplicate level %c in order", l)
			}
			seen[l] = true
		default:
			return fmt.Errorf("core: unknown level %c", l)
		}
	}
	if o[0] != LevelValue {
		return fmt.Errorf("core: level V must be first (it defines file partitioning), got %s", o)
	}
	return nil
}

// PlanesBeforeChunks reports whether the multiresolution level outranks
// the spatial level (V-M-S): plane-major layout inside each bin file.
func (o Order) PlanesBeforeChunks() bool {
	for _, l := range o {
		if l == LevelMultires {
			return true
		}
		if l == LevelSpatial {
			return false
		}
	}
	return true
}

// ParseOrder parses "V-M-S" / "VMS" style strings.
func ParseOrder(s string) (Order, error) {
	o := make(Order, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '-' {
			continue
		}
		o = append(o, Level(s[i]))
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// Mode selects the bottom-level storage representation.
type Mode string

// Storage modes: ModePlanes is the byte-column layout (MLOC-COL) that
// supports PLoD access; ModeFloats stores whole-unit float windows
// through a FloatCodec (MLOC-ISO, MLOC-ISA) and serves only
// full-precision reads.
const (
	ModePlanes Mode = "planes"
	ModeFloats Mode = "floats"
)

// Assignment selects how blocks map to ranks during queries.
type Assignment string

// Assignment policies: column order (the paper's, minimizing files per
// process) and round-robin (the ablation alternative).
const (
	AssignColumn     Assignment = "column"
	AssignRoundRobin Assignment = "roundrobin"
)

// Config parameterizes an MLOC store build.
type Config struct {
	// ChunkSize is the block extent per dimension (paper's "chunks").
	ChunkSize []int
	// NumBins is the number of equal-frequency value bins (paper: 100).
	NumBins int
	// Order is the level priority order; defaults to V-M-S.
	Order Order
	// Curve selects the chunk linearization curve (default Hilbert;
	// Z-order and row-major exist for the ablation).
	Curve sfc.CurveKind
	// Mode selects planes (COL) or floats (ISO/ISA) storage.
	Mode Mode
	// ByteCodec compresses byte planes in planes mode (default Zlib).
	ByteCodec compress.ByteCodec
	// CompressPlanes is how many leading planes run through ByteCodec;
	// the rest are stored raw. The paper treats bytes 3..8 as
	// incompressible, i.e. CompressPlanes=1 (plane 0 = bytes 1-2).
	CompressPlanes int
	// FloatCodec encodes unit values in floats mode.
	FloatCodec compress.FloatCodec
	// SampleSize bounds the sample used for bin-boundary estimation.
	SampleSize int
	// Assignment is the block-to-rank policy (default column order).
	Assignment Assignment
	// BuildWorkers bounds the worker pool Build fans chunk binning and
	// per-bin encoding over; 0 means GOMAXPROCS. The produced store is
	// byte-identical for every worker count (see README §Parallel
	// builds), and the virtual clock charges the aggregated compute as
	// total/workers wall-equivalent.
	BuildWorkers int
	// HierarchicalIndex builds a super-bin tree over the V-level with
	// OR-aggregated WAH bitmaps per node (the vindex subfile), letting
	// index-only range queries answer fully-inside subtrees from one
	// aggregated bitmap read instead of per-bin index files. Off by
	// default: the vindex replicates each position once per tree level,
	// so it trades index footprint for query latency.
	HierarchicalIndex bool
	// IndexFanout is the super-bin tree arity (default 4; min 2). Only
	// meaningful with HierarchicalIndex.
	IndexFanout int
	// AdaptiveBins re-balances the sampled bin boundaries before the
	// build commits them: hot leaves split at in-bin quantiles and cold
	// adjacent leaves merge (binning.Adapt), keeping the super-bin tree
	// balanced under skewed data.
	AdaptiveBins bool
}

// DefaultConfig returns the paper's MLOC-COL configuration for a given
// chunk size.
func DefaultConfig(chunkSize []int) Config {
	return Config{
		ChunkSize:      chunkSize,
		NumBins:        100,
		Order:          OrderVMS,
		Curve:          sfc.CurveHilbert,
		Mode:           ModePlanes,
		ByteCodec:      compress.NewZlib(compress.DefaultZlibLevel),
		CompressPlanes: 1,
		SampleSize:     1 << 20,
		Assignment:     AssignColumn,
	}
}

// ISOConfig returns the MLOC-ISO configuration (lossless float codec).
func ISOConfig(chunkSize []int) Config {
	c := DefaultConfig(chunkSize)
	c.Mode = ModeFloats
	c.FloatCodec = compress.NewIsobar(compress.DefaultZlibLevel)
	return c
}

// ISAConfig returns the MLOC-ISA configuration (lossy ISABELA codec).
func ISAConfig(chunkSize []int) Config {
	c := DefaultConfig(chunkSize)
	c.Mode = ModeFloats
	c.FloatCodec = compress.NewIsabela(compress.DefaultIsabelaConfig())
	return c
}

// normalize fills defaults and validates.
func (c *Config) normalize() error {
	if len(c.ChunkSize) == 0 {
		return fmt.Errorf("core: ChunkSize is required")
	}
	for d, cs := range c.ChunkSize {
		if cs <= 0 {
			return fmt.Errorf("core: ChunkSize[%d] = %d must be positive", d, cs)
		}
	}
	if c.NumBins < 1 {
		return fmt.Errorf("core: NumBins %d < 1", c.NumBins)
	}
	if c.Order == nil {
		c.Order = OrderVMS
	}
	if err := c.Order.Validate(); err != nil {
		return err
	}
	if c.Curve == "" {
		c.Curve = sfc.CurveHilbert
	}
	if c.Mode == "" {
		c.Mode = ModePlanes
	}
	switch c.Mode {
	case ModePlanes:
		if c.ByteCodec == nil {
			c.ByteCodec = compress.NewZlib(compress.DefaultZlibLevel)
		}
		if c.CompressPlanes < 0 || c.CompressPlanes > 7 {
			return fmt.Errorf("core: CompressPlanes %d out of [0,7]", c.CompressPlanes)
		}
	case ModeFloats:
		if c.FloatCodec == nil {
			return fmt.Errorf("core: floats mode requires a FloatCodec")
		}
	default:
		return fmt.Errorf("core: unknown mode %q", c.Mode)
	}
	if c.SampleSize < 1 {
		c.SampleSize = 1 << 20
	}
	if c.Assignment == "" {
		c.Assignment = AssignColumn
	}
	if c.Assignment != AssignColumn && c.Assignment != AssignRoundRobin {
		return fmt.Errorf("core: unknown assignment %q", c.Assignment)
	}
	if c.BuildWorkers < 0 {
		return fmt.Errorf("core: BuildWorkers %d < 0", c.BuildWorkers)
	}
	if c.IndexFanout == 0 {
		c.IndexFanout = 4
	}
	if c.IndexFanout < 2 {
		return fmt.Errorf("core: IndexFanout %d < 2", c.IndexFanout)
	}
	return nil
}

// buildWorkers resolves the effective worker count (0 = GOMAXPROCS).
func (c *Config) buildWorkers() int {
	if c.BuildWorkers > 0 {
		return c.BuildWorkers
	}
	return runtime.GOMAXPROCS(0)
}
