package core

import (
	"testing"

	"mloc/internal/pfs"
)

func coalesceFS(t *testing.T) *pfs.Sim {
	t.Helper()
	fs := pfs.New(pfs.Config{
		NumOSTs:     2,
		StripeSize:  1 << 20,
		SeekLatency: 0.005,
		OpenLatency: 0.001,
		ReadBW:      1e6, // CoalesceGap = 5000 bytes
		WriteBW:     1e6,
	})
	if err := fs.WriteFile(pfs.NewClock(), "f", make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestReadCoalescedMergesAdjacent(t *testing.T) {
	fs := coalesceFS(t)
	clk := fs.NewClock()
	m, bytes, err := readCoalesced(fs, clk, "f", []extent{
		{0, 100}, {100, 100}, {200, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bytes != 300 {
		t.Fatalf("bytes = %d, want 300", bytes)
	}
	if fs.Stats().Reads != 1 {
		t.Fatalf("adjacent extents issued %d reads, want 1", fs.Stats().Reads)
	}
	for _, e := range []extent{{0, 100}, {150, 100}, {299, 1}} {
		if _, err := m.slice(e.off, e.length); err != nil {
			t.Fatalf("slice(%d,%d): %v", e.off, e.length, err)
		}
	}
}

func TestReadCoalescedMergesSmallGaps(t *testing.T) {
	fs := coalesceFS(t) // gap threshold 5000 bytes
	clk := fs.NewClock()
	_, bytes, err := readCoalesced(fs, clk, "f", []extent{
		{0, 100}, {2000, 100}, // gap 1900 < 5000: merged, gap bytes read
	})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Stats().Reads != 1 {
		t.Fatalf("small-gap extents issued %d reads, want 1", fs.Stats().Reads)
	}
	if bytes != 2100 {
		t.Fatalf("merged read covers %d bytes, want 2100 (gap read through)", bytes)
	}
}

func TestReadCoalescedSplitsLargeGaps(t *testing.T) {
	fs := coalesceFS(t)
	clk := fs.NewClock()
	_, _, err := readCoalesced(fs, clk, "f", []extent{
		{0, 100}, {20000, 100}, // gap 19900 > 5000: two reads
	})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Stats().Reads != 2 {
		t.Fatalf("large-gap extents issued %d reads, want 2", fs.Stats().Reads)
	}
}

func TestReadCoalescedUnsortedOverlapping(t *testing.T) {
	fs := coalesceFS(t)
	clk := fs.NewClock()
	m, _, err := readCoalesced(fs, clk, "f", []extent{
		{500, 100}, {0, 200}, {450, 100}, {100, 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []extent{{0, 200}, {450, 150}, {500, 100}} {
		if _, err := m.slice(e.off, e.length); err != nil {
			t.Fatalf("slice(%d,%d): %v", e.off, e.length, err)
		}
	}
}

func TestReadCoalescedZeroLengthExtents(t *testing.T) {
	fs := coalesceFS(t)
	clk := fs.NewClock()
	m, bytes, err := readCoalesced(fs, clk, "f", []extent{{0, 0}, {10, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes != 0 {
		t.Fatalf("zero extents read %d bytes", bytes)
	}
	if got, err := m.slice(5, 0); err != nil || got != nil {
		t.Fatalf("zero slice = %v, %v", got, err)
	}
}

func TestExtentMapSliceErrors(t *testing.T) {
	fs := coalesceFS(t)
	clk := fs.NewClock()
	m, _, err := readCoalesced(fs, clk, "f", []extent{{100, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.slice(0, 10); err == nil {
		t.Error("slice before loaded range accepted")
	}
	if _, err := m.slice(140, 20); err == nil {
		t.Error("slice past loaded range accepted")
	}
	empty := &extentMap{}
	if _, err := empty.slice(0, 1); err == nil {
		t.Error("slice on empty map accepted")
	}
}
