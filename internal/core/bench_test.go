package core

// Package-level performance benchmarks for the MLOC store: ingest
// throughput, query paths, and the subset-store reader. The paper-level
// experiment benchmarks live in the repository root's bench_test.go.

import (
	"fmt"
	"runtime"
	"testing"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

func benchData(b *testing.B) ([]float64, grid.Shape) {
	b.Helper()
	d := datagen.GTSLike(256, 256, 1)
	v, _ := d.Var("phi")
	return v.Data, d.Shape
}

func BenchmarkBuildCOL(b *testing.B) {
	data, shape := benchData(b)
	cfg := DefaultConfig([]int{32, 32})
	cfg.NumBins = 32
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs := pfs.New(pfs.DefaultConfig())
		if _, err := Build(fs, fs.NewClock(), "b/phi", shape, data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildISA(b *testing.B) {
	data, shape := benchData(b)
	cfg := ISAConfig([]int{32, 32})
	cfg.NumBins = 32
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs := pfs.New(pfs.DefaultConfig())
		if _, err := Build(fs, fs.NewClock(), "b/phi", shape, data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStagingFS models the paper's in-situ pipeline target (§V): the
// builder writes to fast staging storage, so encode CPU — not seeks or
// stream bandwidth — dominates the virtual build time the clock
// records. The parallel-build benchmark uses it so the reported
// virtual-clock speedup isolates the compute fan-out.
func benchStagingFS() *pfs.Sim {
	cfg := pfs.DefaultConfig()
	cfg.SeekLatency = 1e-4
	cfg.OpenLatency = 1e-4
	cfg.ReadBW = 2e9
	cfg.WriteBW = 2e9
	return pfs.New(cfg)
}

// BenchmarkBuildParallel measures the parallel store-build pipeline
// across worker counts and storage modes. Wall ns/op shows the real
// multi-core speedup where the host has cores to offer; the virt-s/op
// metric is the virtual-clock build time (compute charged as
// total/workers plus write time), whose speedup reproduces the paper's
// pipeline shape on any host. scripts/bench_json.sh turns this into
// BENCH_build.json, the recorded bench trajectory.
func BenchmarkBuildParallel(b *testing.B) {
	data, shape := benchData(b)
	modes := []struct {
		name string
		cfg  Config
	}{
		{"planes", DefaultConfig([]int{32, 32})},
		{"isobar", ISOConfig([]int{32, 32})},
		{"isabela", ISAConfig([]int{32, 32})},
	}
	workers := []struct {
		name string
		n    int
	}{
		{"w=1", 1},
		{"w=2", 2},
		{"w=4", 4},
		{"w=max", runtime.GOMAXPROCS(0)},
	}
	for _, m := range modes {
		m.cfg.NumBins = 32
		for _, w := range workers {
			b.Run(fmt.Sprintf("%s/%s", m.name, w.name), func(b *testing.B) {
				cfg := m.cfg
				cfg.BuildWorkers = w.n
				b.SetBytes(int64(len(data) * 8))
				b.ReportAllocs()
				var virt float64
				for i := 0; i < b.N; i++ {
					fs := benchStagingFS()
					clk := fs.NewClock()
					if _, err := Build(fs, clk, "b/phi", shape, data, cfg); err != nil {
						b.Fatal(err)
					}
					virt += clk.Now()
				}
				b.ReportMetric(virt/float64(b.N), "virt-s/op")
			})
		}
	}
}

func benchStore(b *testing.B) (*Store, []float64) {
	b.Helper()
	data, shape := benchData(b)
	cfg := DefaultConfig([]int{32, 32})
	cfg.NumBins = 32
	fs := pfs.New(pfs.DefaultConfig())
	st, err := Build(fs, fs.NewClock(), "b/phi", shape, data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return st, data
}

func BenchmarkRegionQuery(b *testing.B) {
	st, data := benchStore(b)
	lo, hi := datagen.Selectivity(data, 0.05, 7, 4096)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	req := &query.Request{VC: &vc, IndexOnly: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(req, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueQuery(b *testing.B) {
	st, _ := benchStore(b)
	sc, _ := grid.NewRegion([]int{64, 64}, []int{192, 192})
	req := &query.Request{SC: &sc}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(req, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPLoD2Query(b *testing.B) {
	st, _ := benchStore(b)
	sc, _ := grid.NewRegion([]int{64, 64}, []int{192, 192})
	req := &query.Request{SC: &sc, PLoDLevel: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(req, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeOffsets(b *testing.B) {
	// A typical unit: 1000 points with small deltas.
	offsets := make([]int32, 1000)
	for i := range offsets {
		offsets[i] = int32(i * 7)
	}
	var raw []byte
	prev := int32(0)
	for _, o := range offsets {
		d := o - prev
		prev = o
		for d >= 0x80 {
			raw = append(raw, byte(d)|0x80)
			d >>= 7
		}
		raw = append(raw, byte(d))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeOffsets(raw, len(offsets)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsetBuild(b *testing.B) {
	data, shape := benchData(b)
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs := pfs.New(pfs.DefaultConfig())
		if _, err := BuildSubset(fs, fs.NewClock(), "b/sub", shape, data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsetReadCoarse(b *testing.B) {
	data, shape := benchData(b)
	fs := pfs.New(pfs.DefaultConfig())
	st, err := BuildSubset(fs, fs.NewClock(), "b/sub", shape, data, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.ReadLevel(3, 4); err != nil {
			b.Fatal(err)
		}
	}
}
