package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mloc/internal/binning"
	"mloc/internal/bitmap"
	"mloc/internal/cache"
	"mloc/internal/grid"
	"mloc/internal/mpi"
	"mloc/internal/obs"
	"mloc/internal/pfs"
	"mloc/internal/plod"
	"mloc/internal/query"
)

// task is one unit of query work: one (bin, unit) pair plus what must
// be done with it.
type task struct {
	bin  int
	unit int
	// needData: the unit's data pieces must be read (value retrieval,
	// or VC filtering in a misaligned bin).
	needData bool
	// filterVC: the unit's values must be checked against the VC
	// (misaligned bins only; aligned bins satisfy it by construction).
	filterVC bool
}

// rankOut accumulates one rank's results. reassemble and filter split
// the Reconstruct component for span attribution (index/offset decoding
// vs. the match-filter loop); their sum always equals time.Reconstruct.
type rankOut struct {
	matches    []query.Match
	time       query.Components
	bytes      int64
	blocks     int
	cacheHits  int
	nodesRead  int
	reassemble float64
	filter     float64
}

// Query executes a request over the given number of parallel ranks,
// following the paper's §III-D workflow: bin selection by VC bounds,
// chunk selection by SC mapped through the storage curve, column-order
// block assignment, per-rank fetch/decompress/filter, and a final
// gather. It is QueryContext with a background context.
func (s *Store) Query(req *query.Request, ranks int) (*query.Result, error) {
	return s.QueryContext(context.Background(), req, ranks)
}

// QueryContext is Query under a context: when ctx is canceled or its
// deadline expires, ranks stop issuing PFS reads at the next bin
// boundary and the query returns an error wrapping ctx.Err() promptly,
// so a disconnected caller frees its serving slot instead of running
// the access to completion.
func (s *Store) QueryContext(ctx context.Context, req *query.Request, ranks int) (*query.Result, error) {
	if err := req.Validate(s.meta.shape); err != nil {
		return nil, err
	}
	if ranks < 1 {
		return nil, fmt.Errorf("core: ranks %d < 1", ranks)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: query canceled: %w", err)
	}
	level := req.PLoDLevel
	if level == 0 {
		level = plod.MaxLevel
	}
	if s.meta.mode == ModeFloats && level != plod.MaxLevel {
		return nil, fmt.Errorf("core: store mode %q does not support PLoD level %d (use the planes/COL mode)",
			s.meta.mode, level)
	}

	_, ps := obs.StartSpan(ctx, "plan")
	tasks, binsAccessed, hier := s.planTasks(req)
	perRank := s.assignTasks(tasks, ranks)
	var perRankNodes [][]binning.NodeRef
	if hier != nil {
		loads := make([]int, ranks)
		for r := range perRank {
			loads[r] = len(perRank[r])
		}
		perRankNodes = assignNodes(hier.Inside, loads)
		ps.SetInt("bins_pruned", int64(hier.PrunedLeaves))
		ps.SetInt("bins_covered", int64(hier.CoveredLeaves))
		ps.SetInt("index_nodes", int64(len(hier.Inside)))
	}
	ps.SetInt("tasks", int64(len(tasks)))
	ps.SetInt("bins", int64(binsAccessed))
	ps.SetInt("ranks", int64(ranks))
	ps.End()

	outs := make([]rankOut, ranks)
	clks := s.fs.NewClocks(ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		rctx, rs := obs.StartSpan(ctx, "rank")
		rs.SetInt("rank", int64(c.Rank()))
		rerr := s.runRank(rctx, clks[c.Rank()], perRank[c.Rank()], req, level, &outs[c.Rank()])
		if rerr == nil && perRankNodes != nil {
			rerr = s.runNodes(rctx, clks[c.Rank()], perRankNodes[c.Rank()], req, &outs[c.Rank()])
		}
		o := &outs[c.Rank()]
		rs.SetFloat("virt_total_s", o.time.Total())
		rs.SetInt("matches", int64(len(o.matches)))
		rs.SetInt("bytes", o.bytes)
		rs.SetInt("cache_hits", int64(o.cacheHits))
		rs.End()
		return rerr
	})
	if err != nil {
		return nil, err
	}

	res := &query.Result{BinsAccessed: binsAccessed}
	if hier != nil {
		// Covered leaves were answered from aggregated node bitmaps;
		// they count as accessed (their contents were served) even
		// though no per-bin file was touched.
		res.BinsAccessed += hier.CoveredLeaves
		res.BinsPruned = hier.PrunedLeaves
		res.BinsCovered = hier.CoveredLeaves
	}
	var slowest float64
	for i := range outs {
		res.Matches = append(res.Matches, outs[i].matches...)
		res.BytesRead += outs[i].bytes
		res.BlocksRead += outs[i].blocks
		res.CacheHits += outs[i].cacheHits
		res.IndexNodesRead += outs[i].nodesRead
		if t := outs[i].time.Total(); t >= slowest {
			slowest = t
			res.Time = outs[i].time
		}
	}
	res.Sort()
	return res, nil
}

// hierPlan reports whether a request takes the hierarchical index path:
// the store has a vindex, the request is value-constrained, and it is
// index-only, so fully-inside subtrees resolve from aggregated node
// bitmaps with no data reads. Value-retrieval requests decode the data
// anyway, which the per-bin layout already serves optimally.
func (s *Store) hierPlan(req *query.Request) bool {
	return s.vidx != nil && req.VC != nil && req.IndexOnly
}

// planTasks selects bins by VC and chunks by SC, producing the task
// list in column order (bin-major, then storage order within the bin).
// On the hierarchical path only boundary leaves become tasks; the
// returned Selection carries the inside-subtree roots (answered from
// the vindex by runNodes) and the pruning accounting.
func (s *Store) planTasks(req *query.Request) ([]task, int, *binning.Selection) {
	// Bin selection.
	type binSel struct {
		bin      int
		filterVC bool
	}
	var sel []binSel
	var hier *binning.Selection
	if s.hierPlan(req) {
		hs := s.vidx.tree.Select(*req.VC)
		hier = &hs
		sel = make([]binSel, 0, len(hs.Boundary))
		for _, b := range hs.Boundary {
			sel = append(sel, binSel{bin: b, filterVC: true})
		}
	} else if req.VC != nil {
		aligned, mis := s.scheme.SelectBins(*req.VC)
		sel = make([]binSel, 0, len(aligned)+len(mis))
		for _, b := range aligned {
			sel = append(sel, binSel{bin: b})
		}
		for _, b := range mis {
			sel = append(sel, binSel{bin: b, filterVC: true})
		}
		sort.Slice(sel, func(i, j int) bool { return sel[i].bin < sel[j].bin })
	} else {
		sel = make([]binSel, 0, len(s.meta.bins))
		for b := range s.meta.bins {
			sel = append(sel, binSel{bin: b})
		}
	}

	// Chunk selection.
	var chunkSet map[int64]bool
	if req.SC != nil {
		ids := s.chunks.OverlappingChunks(*req.SC)
		chunkSet = make(map[int64]bool, len(ids))
		for _, id := range ids {
			chunkSet[id] = true
		}
	}

	maxTasks := 0
	for _, bs := range sel {
		maxTasks += len(s.meta.bins[bs.bin].units)
	}
	tasks := make([]task, 0, maxTasks)
	binsTouched := 0
	for _, bs := range sel {
		bm := &s.meta.bins[bs.bin]
		touched := false
		for ui := range bm.units {
			if chunkSet != nil && !chunkSet[bm.units[ui].chunkID] {
				continue
			}
			needData := !req.IndexOnly || bs.filterVC
			tasks = append(tasks, task{bin: bs.bin, unit: ui, needData: needData, filterVC: bs.filterVC})
			touched = true
		}
		if touched {
			binsTouched++
		}
	}
	return tasks, binsTouched, hier
}

// minNodesPerRank keeps node fan-out worthwhile: every rank that
// touches the vindex pays an open plus at least one seek, so tiny node
// sets concentrate on few ranks instead of spreading that fixed cost
// everywhere.
const minNodesPerRank = 8

// assignNodes splits the inside-subtree roots into contiguous runs
// (each run's vindex reads stay adjacent and coalesce) and hands the
// runs to the ranks with the lightest task load, so node reads overlap
// boundary-bin work instead of extending the slowest rank.
func assignNodes(nodes []binning.NodeRef, loads []int) [][]binning.NodeRef {
	ranks := len(loads)
	out := make([][]binning.NodeRef, ranks)
	if len(nodes) == 0 {
		return out
	}
	k := (len(nodes) + minNodesPerRank - 1) / minNodesPerRank
	if k > ranks {
		k = ranks
	}
	// Ranks ordered by ascending task load, ties by rank for determinism.
	order := make([]int, ranks)
	for r := range order {
		order[r] = r
	}
	sort.SliceStable(order, func(i, j int) bool { return loads[order[i]] < loads[order[j]] })
	per := (len(nodes) + k - 1) / k
	for i := 0; i < k; i++ {
		lo, hi := i*per, i*per+per
		if hi > len(nodes) {
			hi = len(nodes)
		}
		out[order[i]] = nodes[lo:hi]
	}
	return out
}

// runNodes answers one rank's share of the inside-subtree roots from
// the vindex: all node bitmaps are fetched in a single coalesced read
// batch from the vindex subfile (one open, extents sorted and
// gap-merged across tree levels), then decoded and their set bits
// emitted as matches (filtered by SC per point). Decode and filter
// cost is charged per tree level — the span carries one virtual-clock
// event per level, mirroring the per-level charging the build passes
// report.
func (s *Store) runNodes(ctx context.Context, clk *pfs.Clock, nodes []binning.NodeRef, req *query.Request, out *rankOut) error {
	if len(nodes) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: query canceled before vindex nodes: %w", err)
	}
	_, vs := obs.StartSpan(ctx, "vindex")
	defer vs.End()
	vs.SetInt("nodes", int64(len(nodes)))
	if err := s.fs.Open(clk, s.vidx.path); err != nil {
		return err
	}

	// One read batch for the whole node set: the payloads live in one
	// subfile in level order, so sorting and gap-merging the extents
	// costs at most a seek per disjoint run, not one per level.
	t0 := clk.Now()
	extents := make([]extent, len(nodes))
	for i, n := range nodes {
		id := s.vidx.nodeID(n)
		extents[i] = extent{s.vidx.offs[id], s.vidx.lens[id]}
	}
	m, ioBytes, err := readCoalesced(s.fs, clk, s.vidx.path, extents)
	if err != nil {
		return err
	}
	out.bytes += ioBytes
	out.time.IO += clk.Now() - t0
	vs.Event("read", 0, clk.Now()-t0).SetInt("bytes", ioBytes)

	// Group by level (ascending); Select emits nodes in leaf order, so
	// a stable partition keeps each level's nodes sorted.
	byLevel := make(map[int][]binning.NodeRef)
	maxLevel := 0
	for _, n := range nodes {
		byLevel[n.Level] = append(byLevel[n.Level], n)
		if n.Level > maxLevel {
			maxLevel = n.Level
		}
	}
	dims := s.meta.shape.Dims()
	coords := make([]int, dims)
	for l := 0; l <= maxLevel; l++ {
		lvl := byLevel[l]
		if len(lvl) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: query canceled at vindex level %d: %w", l, err)
		}
		l0 := clk.Now()
		for _, n := range lvl {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: query canceled at vindex node %d/%d: %w", n.Level, n.Index, err)
			}
			id := s.vidx.nodeID(n)
			raw, err := m.slice(s.vidx.offs[id], s.vidx.lens[id])
			if err != nil {
				return fmt.Errorf("core: vindex node %d: %w", id, err)
			}
			var w bitmap.WAH
			decode := clk.MeasureCPU(func() {
				err = w.UnmarshalBinary(raw)
			})
			out.time.Decompress += decode
			if err != nil {
				return fmt.Errorf("core: vindex node %d: %w", id, err)
			}
			filter := clk.MeasureCPU(func() {
				it := w.Bits()
				for lin, ok := it.Next(); ok; lin, ok = it.Next() {
					if req.SC != nil {
						coords = s.meta.shape.Coords(lin, coords[:0])
						if !req.SC.Contains(coords) {
							continue
						}
					}
					out.matches = append(out.matches, query.Match{Index: lin})
				}
			})
			out.filter += filter
			out.time.Reconstruct += filter
			out.nodesRead++
		}
		vs.Event("level", 0, clk.Now()-l0).SetInt("level", int64(l))
	}
	return nil
}

// assignTasks splits the task list across ranks. Column order hands
// each rank a contiguous slice (few bins, thus few files, per rank);
// round-robin stripes tasks across ranks (the ablation alternative,
// which maximizes file sharing and contention).
func (s *Store) assignTasks(tasks []task, ranks int) [][]task {
	out := make([][]task, ranks)
	switch s.assignment {
	case AssignRoundRobin:
		for i, t := range tasks {
			r := i % ranks
			out[r] = append(out[r], t)
		}
	default: // AssignColumn
		per := (len(tasks) + ranks - 1) / ranks
		for r := 0; r < ranks; r++ {
			lo := r * per
			hi := lo + per
			if lo > len(tasks) {
				lo = len(tasks)
			}
			if hi > len(tasks) {
				hi = len(tasks)
			}
			out[r] = tasks[lo:hi]
		}
	}
	return out
}

// runRank executes one rank's tasks, grouped by bin so each bin's files
// are opened once and reads coalesce. Cancellation is checked at every
// bin boundary: a bin is the engine's unit of I/O, so that is the
// soonest point at which stopping saves PFS work.
func (s *Store) runRank(ctx context.Context, clk *pfs.Clock, tasks []task, req *query.Request, level int, out *rankOut) error {
	for lo := 0; lo < len(tasks); {
		hi := lo + 1
		for hi < len(tasks) && tasks[hi].bin == tasks[lo].bin {
			hi++
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: query canceled before bin %d: %w", tasks[lo].bin, err)
		}
		if err := s.processBin(ctx, clk, tasks[lo:hi], req, level, out); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// extent is a byte range in a file.
type extent struct{ off, length int64 }

// processBin handles one rank's tasks within a single bin. When a
// decode cache is attached, resident units are probed up front so their
// data extents are never read, and misses are decoded through the
// cache's single-flight path so concurrent queries decompress each unit
// once.
func (s *Store) processBin(ctx context.Context, clk *pfs.Clock, tasks []task, req *query.Request, level int, out *rankOut) error {
	bin := tasks[0].bin
	if s.hookBeforeBin != nil {
		s.hookBeforeBin(bin)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: query canceled at bin %d: %w", bin, err)
	}
	ctx, bs := obs.StartSpan(ctx, "bin")
	defer bs.End()
	bs.SetInt("bin", int64(bin))
	bs.SetInt("units", int64(len(tasks)))
	// Component snapshots: the deltas across this bin become the
	// fetch/decode/reassemble/filter child spans. Decode and filter
	// interleave per unit, so they are recorded as completed Events
	// carrying virtual-clock seconds (wall time is not split).
	before := *out
	bm := &s.meta.bins[bin]
	idxPath := binIndexPath(s.prefix, bin)
	dataPath := binDataPath(s.prefix, bin)

	// Cache probe: units already resident need neither a data read nor
	// a decode. cached is aligned with tasks (nil = miss or no cache).
	var cached [][]float64
	if s.decodeCache != nil {
		cached = make([][]float64, len(tasks))
		for i, t := range tasks {
			if !t.needData {
				continue
			}
			if vals, ok := s.decodeCache.Get(s.cacheKey(bin, t.unit, level)); ok {
				cached[i] = vals
			}
		}
	}

	// Index extents: every task needs its positional index.
	idxExtents := make([]extent, 0, len(tasks))
	needAnyData := false
	for i, t := range tasks {
		u := &bm.units[t.unit]
		idxExtents = append(idxExtents, extent{u.indexOff, u.indexLen})
		if t.needData && (cached == nil || cached[i] == nil) {
			needAnyData = true
		}
	}
	t0 := clk.Now()
	wall0 := time.Now()
	if err := s.fs.Open(clk, idxPath); err != nil {
		return err
	}
	idxMap, ioBytes, err := readCoalesced(s.fs, clk, idxPath, idxExtents)
	if err != nil {
		return err
	}
	out.bytes += ioBytes

	// Data extents for the required pieces of cache-missed units.
	nPlanes := plod.PlanesForLevel(level)
	var dataMap *extentMap
	if needAnyData {
		if err := s.fs.Open(clk, dataPath); err != nil {
			return err
		}
		maxExtents := len(tasks)
		if s.meta.mode == ModePlanes {
			maxExtents *= nPlanes
		}
		dataExtents := make([]extent, 0, maxExtents)
		for i, t := range tasks {
			if !t.needData || (cached != nil && cached[i] != nil) {
				continue
			}
			u := &bm.units[t.unit]
			if s.meta.mode == ModePlanes {
				for p := 0; p < nPlanes; p++ {
					dataExtents = append(dataExtents, extent{u.pieceOff[p], u.pieceLen[p]})
				}
			} else {
				dataExtents = append(dataExtents, extent{u.pieceOff[0], u.pieceLen[0]})
			}
		}
		dataMap, ioBytes, err = readCoalesced(s.fs, clk, dataPath, dataExtents)
		if err != nil {
			return err
		}
		out.bytes += ioBytes
	}
	out.time.IO += clk.Now() - t0
	bs.Event("fetch", time.Since(wall0), out.time.IO-before.time.IO).
		SetInt("bytes", out.bytes-before.bytes)

	// Decode and emit.
	for i, t := range tasks {
		u := &bm.units[t.unit]
		var hit []float64
		if cached != nil {
			hit = cached[i]
		}
		if err := s.emitUnit(ctx, clk, t, u, req, level, idxMap, dataMap, hit, out); err != nil {
			return err
		}
	}
	bs.Event("decode", 0, out.time.Decompress-before.time.Decompress).
		SetInt("blocks", int64(out.blocks-before.blocks))
	bs.Event("reassemble", 0, out.reassemble-before.reassemble)
	bs.Event("filter", 0, out.filter-before.filter).
		SetInt("matches", int64(len(out.matches)-len(before.matches)))
	bs.SetInt("cache_hits", int64(out.cacheHits-before.cacheHits))
	return nil
}

// cacheKey builds the decode-cache key for one unit of this store.
func (s *Store) cacheKey(bin, unit, level int) cache.Key {
	return cache.Key{Store: s.prefix, Bin: bin, Unit: unit, Level: level}
}

// unitValues resolves a unit's decoded values: from the probe result,
// through the decode cache's single-flight path, or by decoding
// directly when no cache is attached. It updates the rank's decompress
// time, block count, and cache-hit count.
func (s *Store) unitValues(ctx context.Context, clk *pfs.Clock, t task, u *unitMeta, level int, dataMap *extentMap, cachedVals []float64, out *rankOut) ([]float64, error) {
	if cachedVals != nil {
		out.cacheHits++
		return cachedVals, nil
	}
	if s.decodeCache == nil {
		values, decompress, err := s.decodeUnitValues(clk, u, level, dataMap)
		if err != nil {
			return nil, err
		}
		out.time.Decompress += decompress
		out.blocks++
		return values, nil
	}
	var decompress float64
	values, hit, err := s.decodeCache.GetOrCompute(ctx, s.cacheKey(t.bin, t.unit, level), func() ([]float64, error) {
		v, d, derr := s.decodeUnitValues(clk, u, level, dataMap)
		decompress = d
		return v, derr
	})
	if err != nil {
		return nil, err
	}
	if hit {
		// Another query's decode (or an insert racing the probe) served
		// this unit; the data bytes were read but no CPU was spent.
		out.cacheHits++
	} else {
		out.time.Decompress += decompress
		out.blocks++
	}
	return values, nil
}

// emitUnit decodes one unit's index (and data when needed) and appends
// the qualifying matches. cachedVals carries the unit's decoded values
// when the bin-level cache probe hit (nil otherwise).
func (s *Store) emitUnit(ctx context.Context, clk *pfs.Clock, t task, u *unitMeta, req *query.Request, level int, idxMap, dataMap *extentMap, cachedVals []float64, out *rankOut) error {
	idxRaw, err := idxMap.slice(u.indexOff, u.indexLen)
	if err != nil {
		return fmt.Errorf("core: bin %d unit %d index: %w", t.bin, t.unit, err)
	}
	var offsets []int32
	reassemble := clk.MeasureCPU(func() {
		offsets, err = decodeOffsets(idxRaw, int(u.count))
	})
	if err != nil {
		return fmt.Errorf("core: bin %d unit %d index: %w", t.bin, t.unit, err)
	}

	var values []float64
	if t.needData {
		values, err = s.unitValues(ctx, clk, t, u, level, dataMap, cachedVals, out)
		if err != nil {
			return fmt.Errorf("core: bin %d unit %d data: %w", t.bin, t.unit, err)
		}
	}

	// Map intra-chunk offsets to global indices and filter. The chunk's
	// global strides are precomputed so the per-point mapping avoids
	// repeated bounds-checked Linear calls — this loop dominates
	// high-selectivity region queries.
	reg := s.chunks.ChunkRegionByID(u.chunkID)
	chunkInSC := req.SC == nil || regionInside(reg, *req.SC)
	dims := s.meta.shape.Dims()
	global := make([]int, dims)
	strides := make([]int64, dims)
	widths := make([]int64, dims)
	strides[dims-1] = 1
	for d := dims - 2; d >= 0; d-- {
		strides[d] = strides[d+1] * int64(s.meta.shape[d+1])
	}
	var base int64
	for d := 0; d < dims; d++ {
		base += int64(reg.Lo[d]) * strides[d]
		widths[d] = int64(reg.Hi[d] - reg.Lo[d])
	}
	filter := clk.MeasureCPU(func() {
		for i, off := range offsets {
			// Decompose the intra-chunk offset and accumulate the
			// global linear index in one pass.
			rem := int64(off)
			lin := base
			for d := dims - 1; d >= 0; d-- {
				l := rem % widths[d]
				rem /= widths[d]
				lin += l * strides[d]
				if !chunkInSC {
					global[d] = reg.Lo[d] + int(l)
				}
			}
			if !chunkInSC && !req.SC.Contains(global) {
				continue
			}
			var v float64
			if values != nil {
				v = values[i]
				if t.filterVC && !req.VC.Contains(v) {
					continue
				}
			}
			m := query.Match{Index: lin}
			if !req.IndexOnly {
				m.Value = v
			}
			out.matches = append(out.matches, m)
		}
	})

	out.reassemble += reassemble
	out.filter += filter
	out.time.Reconstruct += reassemble + filter
	return nil
}

// decodeUnitValues reconstructs the unit's values at the given PLoD
// level (planes mode) or in full (floats mode), returning the scaled
// decompress time it charged to clk.
func (s *Store) decodeUnitValues(clk *pfs.Clock, u *unitMeta, level int, dataMap *extentMap) ([]float64, float64, error) {
	count := int(u.count)
	if s.meta.mode == ModeFloats {
		raw, err := dataMap.slice(u.pieceOff[0], u.pieceLen[0])
		if err != nil {
			return nil, 0, err
		}
		var values []float64
		d := clk.MeasureCPU(func() {
			values, err = s.floatCodec.DecodeFloats(raw, make([]float64, 0, count))
		})
		if err != nil {
			return nil, d, err
		}
		if len(values) != count {
			return nil, d, fmt.Errorf("decoded %d values, want %d", len(values), count) //mlocvet:ignore errprefix -- wrapped with the core prefix by the exported caller
		}
		return values, d, nil
	}

	nPlanes := plod.PlanesForLevel(level)
	planes := make([][]byte, nPlanes)
	var decompress float64
	for p := 0; p < nPlanes; p++ {
		raw, err := dataMap.slice(u.pieceOff[p], u.pieceLen[p])
		if err != nil {
			return nil, decompress, err
		}
		want := count * plod.PlaneWidth(p)
		if p < s.meta.compPlanes && u.rawPlanes&(1<<uint(p)) == 0 {
			var dec []byte
			decompress += clk.MeasureCPU(func() {
				dec, err = s.byteCodec.DecodeBytes(raw, make([]byte, 0, want))
			})
			if err != nil {
				return nil, decompress, err
			}
			planes[p] = dec
		} else {
			planes[p] = raw
		}
		if len(planes[p]) != want {
			return nil, decompress, fmt.Errorf("plane %d has %d bytes, want %d", p, len(planes[p]), want) //mlocvet:ignore errprefix -- wrapped with the core prefix by the exported caller
		}
	}
	var values []float64
	decompress += clk.MeasureCPU(func() {
		values = plod.Assemble(planes, level, count, plod.FillCentered, make([]float64, 0, count))
	})
	return values, decompress, nil
}

// decodeOffsets expands the delta-uvarint intra-chunk offsets. The
// varint decode is inlined with a single-byte fast path because this
// stream is the inner loop of every index read.
func decodeOffsets(raw []byte, count int) ([]int32, error) {
	out := make([]int32, count)
	prev := int32(0)
	pos := 0
	n := len(raw)
	for i := 0; i < count; i++ {
		if pos >= n {
			return nil, fmt.Errorf("truncated offset stream at entry %d", i) //mlocvet:ignore errprefix -- wrapped with the core prefix by the exported caller
		}
		b := raw[pos]
		if b < 0x80 {
			// Fast path: deltas are almost always < 128 (one bin's
			// points inside a chunk sit a few positions apart).
			pos++
			prev += int32(b)
			out[i] = prev
			continue
		}
		var d uint64
		var shift uint
		for {
			if pos >= n {
				return nil, fmt.Errorf("truncated offset stream at entry %d", i) //mlocvet:ignore errprefix -- wrapped with the core prefix by the exported caller
			}
			c := raw[pos]
			pos++
			d |= uint64(c&0x7F) << shift
			if c < 0x80 {
				break
			}
			shift += 7
			if shift > 35 {
				return nil, fmt.Errorf("malformed offset varint at entry %d", i) //mlocvet:ignore errprefix -- wrapped with the core prefix by the exported caller
			}
		}
		prev += int32(d)
		out[i] = prev
	}
	if pos != n {
		return nil, fmt.Errorf("offset stream has %d trailing bytes", n-pos) //mlocvet:ignore errprefix -- wrapped with the core prefix by the exported caller
	}
	return out, nil
}

// localCoords converts a row-major offset within a chunk region to
// local coordinates.
func localCoords(reg grid.Region, off int64, dst []int) {
	for d := len(dst) - 1; d >= 0; d-- {
		w := int64(reg.Hi[d] - reg.Lo[d])
		dst[d] = int(off % w)
		off /= w
	}
}

// regionInside reports whether inner is fully contained in outer.
func regionInside(inner, outer grid.Region) bool {
	for d := range inner.Lo {
		if inner.Lo[d] < outer.Lo[d] || inner.Hi[d] > outer.Hi[d] {
			return false
		}
	}
	return true
}

// extentMap holds coalesced read buffers for extent lookups.
type extentMap struct {
	base []int64
	bufs [][]byte
}

// slice returns the bytes for an extent previously covered by a
// coalesced read.
func (m *extentMap) slice(off, length int64) ([]byte, error) {
	if length == 0 {
		return nil, nil
	}
	i := sort.Search(len(m.base), func(i int) bool { return m.base[i] > off })
	if i == 0 {
		return nil, fmt.Errorf("extent [%d,%d) not loaded", off, off+length) //mlocvet:ignore errprefix -- wrapped with the core prefix by the exported caller
	}
	i--
	rel := off - m.base[i]
	if rel+length > int64(len(m.bufs[i])) {
		return nil, fmt.Errorf("extent [%d,%d) exceeds loaded range", off, off+length) //mlocvet:ignore errprefix -- wrapped with the core prefix by the exported caller
	}
	return m.bufs[i][rel : rel+length], nil
}

// readCoalesced sorts and merges the extents and issues one PFS read
// per merged extent, charging clk. Extents separated by gaps up to the
// simulator's CoalesceGap are merged too: reading through a small gap
// costs less than the seek it avoids, which is exactly the paper's
// rationale for curve-ordered layouts (§III-B2).
func readCoalesced(fs *pfs.Sim, clk *pfs.Clock, path string, extents []extent) (*extentMap, int64, error) {
	if len(extents) == 0 {
		return &extentMap{}, 0, nil
	}
	maxGap := fs.CoalesceGap()
	sorted := append([]extent(nil), extents...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].off < sorted[j].off })
	merged := make([]extent, 0, len(sorted))
	cur := sorted[0]
	for _, e := range sorted[1:] {
		if e.length == 0 {
			continue
		}
		if cur.length == 0 {
			cur = e
			continue
		}
		if e.off <= cur.off+cur.length+maxGap {
			// Adjacent, overlapping, or within the economical gap:
			// extend (gap bytes are read and paid for).
			if end := e.off + e.length; end > cur.off+cur.length {
				cur.length = end - cur.off
			}
			continue
		}
		merged = append(merged, cur)
		cur = e
	}
	if cur.length > 0 {
		merged = append(merged, cur)
	}
	m := &extentMap{base: make([]int64, 0, len(merged)), bufs: make([][]byte, 0, len(merged))}
	var total int64
	for _, e := range merged {
		buf, err := fs.ReadAt(clk, path, e.off, e.length)
		if err != nil {
			return nil, total, err
		}
		m.base = append(m.base, e.off)
		m.bufs = append(m.bufs, buf)
		total += e.length
	}
	return m, total, nil
}
