package core

// Tracing acceptance tests for the instrumented engine: the per-rank
// fetch/decode/reassemble/filter span events must sum to the rank's
// virtual total, and the slowest rank must equal the reported query
// latency — the span tree is the latency, decomposed.

import (
	"context"
	"math"
	"strings"
	"testing"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/obs"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

func obsTestData(t *testing.T) ([]float64, grid.Shape) {
	t.Helper()
	d := datagen.GTSLike(64, 64, 1)
	v, err := d.Var("phi")
	if err != nil {
		t.Fatal(err)
	}
	return v.Data, d.Shape
}

func obsTestVC(data []float64) *binning.ValueConstraint {
	lo, hi := data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// Half the value range so the query selects some bins but not all.
	return &binning.ValueConstraint{Min: lo, Max: lo + 0.5*(hi-lo)}
}

func attrFloat(d *obs.SpanDump, key string) (float64, bool) {
	for _, a := range d.Attrs {
		if a.Key != key {
			continue
		}
		switch v := a.Value.(type) {
		case float64:
			return v, true
		case int64:
			return float64(v), true
		}
	}
	return 0, false
}

// componentEvent selects the leaf cost events the engine emits per bin.
func componentEvent(d *obs.SpanDump) bool {
	switch d.Name {
	case "fetch", "decode", "reassemble", "filter":
		return true
	}
	return false
}

func TestQuerySpanTreeSumsToLatency(t *testing.T) {
	data, shape := obsTestData(t)
	cfg := DefaultConfig([]int{16, 16})
	cfg.NumBins = 16
	fs := pfs.New(pfs.DefaultConfig())
	clk := fs.NewClock()
	st, err := Build(fs, clk, "q/phi", shape, data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer(4)
	ctx, root := tr.StartTrace(context.Background(), "query")
	req := &query.Request{VC: obsTestVC(data)}
	res, err := st.QueryContext(ctx, req, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("query matched nothing; test data or VC is broken")
	}
	root.End()

	dumps := tr.Dump()
	if len(dumps) != 1 {
		t.Fatalf("retained %d traces, want 1", len(dumps))
	}
	td := dumps[0]
	if td.Root.Find("plan") == nil {
		t.Error("trace has no plan span")
	}

	var ranks int
	var slowest float64
	for _, child := range td.Root.Children {
		if child.Name != "rank" {
			continue
		}
		ranks++
		if !child.Ended {
			t.Errorf("rank span not ended: %+v", child)
		}
		total, ok := attrFloat(child, "virt_total_s")
		if !ok {
			t.Fatalf("rank span missing virt_total_s attr: %+v", child.Attrs)
		}
		evSum := child.SumVirt(componentEvent)
		if math.Abs(evSum-total) > 1e-9 {
			t.Errorf("rank events sum to %v, rank virtual total is %v", evSum, total)
		}
		if total > slowest {
			slowest = total
		}
		for _, bin := range child.Children {
			if bin.Name != "bin" {
				continue
			}
			if !bin.Ended {
				t.Errorf("bin span not ended")
			}
			if _, ok := attrFloat(bin, "bin"); !ok {
				t.Errorf("bin span missing bin attr: %+v", bin.Attrs)
			}
		}
	}
	if ranks == 0 {
		t.Fatal("trace has no rank spans")
	}
	// The acceptance criterion: the slowest rank's span events account
	// for the reported query latency.
	if math.Abs(slowest-res.Time.Total()) > 1e-9 {
		t.Errorf("slowest rank span total %v != reported latency %v", slowest, res.Time.Total())
	}
}

func TestMultiVarSpans(t *testing.T) {
	data, shape := obsTestData(t)
	cfg := DefaultConfig([]int{16, 16})
	cfg.NumBins = 16
	fs := pfs.New(pfs.DefaultConfig())
	clk := fs.NewClock()
	stores := map[string]*Store{}
	for _, name := range []string{"a", "b"} {
		st, err := Build(fs, clk, "mv/"+name, shape, data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stores[name] = st
	}

	tr := obs.NewTracer(4)
	ctx, root := tr.StartTrace(context.Background(), "multivar")
	req := MultiVarRequest{
		Select:    query.Request{VC: obsTestVC(data)},
		FetchVars: []string{"b"},
	}
	res, err := MultiVarQueryContext(ctx, stores, "a", req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Positions.Count() == 0 {
		t.Fatal("selection matched nothing")
	}
	root.End()

	td, ok := tr.DumpByID(1)
	if !ok {
		t.Fatal("trace not retained")
	}
	sel := td.Root.Find("select")
	if sel == nil {
		t.Fatal("no select span")
	}
	if _, ok := attrFloat(sel, "positions"); !ok {
		t.Errorf("select span missing positions attr: %+v", sel.Attrs)
	}
	fv := td.Root.Find("fetch_var")
	if fv == nil {
		t.Fatal("no fetch_var span")
	}
	if fv.Find("rank") == nil {
		t.Error("fetch_var span has no rank children")
	}
}

func TestBuildSpans(t *testing.T) {
	data, shape := obsTestData(t)
	cfg := DefaultConfig([]int{16, 16})
	cfg.NumBins = 16
	cfg.BuildWorkers = 2
	fs := pfs.New(pfs.DefaultConfig())
	clk := fs.NewClock()

	tr := obs.NewTracer(4)
	ctx, root := tr.StartTrace(context.Background(), "build")
	if _, err := BuildContext(ctx, fs, clk, "bld/phi", shape, data, cfg); err != nil {
		t.Fatal(err)
	}
	root.End()

	td, ok := tr.DumpByID(1)
	if !ok {
		t.Fatal("trace not retained")
	}
	binPass := td.Root.Find("pass_binning")
	if binPass == nil {
		t.Fatal("no pass_binning span")
	}
	if binPass.VirtS <= 0 {
		t.Errorf("pass_binning virtual time %v, want > 0", binPass.VirtS)
	}
	if binPass.Find("worker") == nil {
		t.Error("pass_binning has no worker events")
	}
	if n, ok := attrFloat(binPass, "chunks"); !ok || n <= 0 {
		t.Errorf("pass_binning chunks attr = %v, %v", n, ok)
	}
	encPass := td.Root.Find("pass_encode")
	if encPass == nil {
		t.Fatal("no pass_encode span")
	}
	if encPass.Find("bin") == nil {
		t.Error("pass_encode has no per-bin events")
	}
	if !encPass.Ended || !binPass.Ended {
		t.Error("pass spans not ended")
	}
}

func TestExplainObserveMeasured(t *testing.T) {
	data, shape := obsTestData(t)
	cfg := DefaultConfig([]int{16, 16})
	cfg.NumBins = 16
	fs := pfs.New(pfs.DefaultConfig())
	clk := fs.NewClock()
	st, err := Build(fs, clk, "ex/phi", shape, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := &query.Request{VC: obsTestVC(data)}
	plan, err := st.Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.String(), "measured:") {
		t.Error("plan reports measured cost before execution")
	}
	res, err := st.Query(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan.Observe(res)
	if plan.Measured == nil {
		t.Fatal("Observe did not attach measured cost")
	}
	if got, want := plan.Measured.TotalSeconds(), res.Time.Total(); got != want {
		t.Errorf("measured total %v != result total %v", got, want)
	}
	if !strings.Contains(plan.String(), "measured:") {
		t.Error("plan String missing measured section after Observe")
	}
	if plan.Measured.Matches != len(res.Matches) {
		t.Errorf("measured matches %d != %d", plan.Measured.Matches, len(res.Matches))
	}
}
