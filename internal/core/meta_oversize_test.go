package core

import (
	"encoding/binary"
	"testing"
)

// metaBytes builds the common header of a serialized store meta up
// through compPlanes, so each case below only appends the section it
// wants to corrupt.
func metaBytes() []byte {
	out := binary.LittleEndian.AppendUint32(nil, metaMagic)
	out = appendUvarint(out, 1) // dims
	out = appendUvarint(out, 4) // shape[0]
	out = appendUvarint(out, 2) // chunkSize[0]
	out = appendString(out, "V-M-S")
	out = appendString(out, "hilbert")
	out = appendString(out, string(ModePlanes))
	out = appendString(out, "zlib")
	out = appendUvarint(out, 7) // compPlanes
	return out
}

// TestMetaRejectsOversizedDeclarations feeds the meta decoder streams
// whose declared counts vastly exceed what the remaining bytes could
// encode. Every count in the format sizes an allocation, so each must
// fail cleanly instead of allocating by the declared size or wrapping
// an int conversion negative.
func TestMetaRejectsOversizedDeclarations(t *testing.T) {
	huge := uint64(1) << 60
	// unitPrefix declares one bin with one unit and stops right before
	// the field each case wants to poison.
	unitPrefix := func() []byte {
		out := appendUvarint(metaBytes(), 0) // no bin bounds
		out = appendUvarint(out, 1)          // one bin
		out = appendUvarint(out, 1)          // one unit
		out = binary.AppendVarint(out, 0)    // chunk delta
		return out
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"dims bomb", appendUvarint(binary.LittleEndian.AppendUint32(nil, metaMagic), huge)},
		{"string length wrap", appendUvarint(appendUvarint(appendUvarint(binary.LittleEndian.AppendUint32(nil, metaMagic), 1), 4), 1<<63)},
		{"bin bounds bomb", appendUvarint(metaBytes(), huge)},
		{"bin count bomb", appendUvarint(appendUvarint(metaBytes(), 0), huge)},
		{"unit count bomb", appendUvarint(appendUvarint(appendUvarint(metaBytes(), 0), 1), huge)},
		{"point count wrap", appendUvarint(unitPrefix(), 1<<40)},
		{"index offset wrap", appendUvarint(appendUvarint(unitPrefix(), 1), 1<<63)},
		{"piece count bomb",
			appendUvarint(
				append(appendUvarint(appendUvarint(appendUvarint(unitPrefix(),
					1), // count
					0), // indexOff
					0), // indexLen
					0), // rawPlanes
				huge)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := unmarshalStoreMeta(tc.data)
			if err == nil {
				t.Fatalf("decoder accepted oversized declaration: %+v", m)
			}
		})
	}
}
