package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"mloc/internal/binning"
	"mloc/internal/compress"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

// storeFiles snapshots every file under prefix as path → bytes, read
// through Peek so no virtual time is charged.
func storeFiles(t *testing.T, fs *pfs.Sim, prefix string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, path := range fs.List(prefix) {
		size, err := fs.Size(path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := fs.Peek(path, 0, size)
		if err != nil {
			t.Fatal(err)
		}
		out[path] = append([]byte(nil), data...)
	}
	return out
}

// parallelBuildConfigs is the determinism-test matrix: both storage
// modes, every float codec, and both level orders.
func parallelBuildConfigs() map[string]Config {
	planesVSM := DefaultConfig([]int{8, 8})
	planesVSM.Order = OrderVSM
	return map[string]Config{
		"planes-vms": DefaultConfig([]int{8, 8}),
		"planes-vsm": planesVSM,
		"iso-vms":    ISOConfig([]int{8, 8}),
		"isa-vms":    ISAConfig([]int{8, 8}),
	}
}

// TestBuildWorkersDeterministic asserts the tentpole guarantee: for
// every mode/codec/order combination, BuildWorkers=N produces subfiles,
// index files, and metadata byte-identical to BuildWorkers=1, and
// queries on the resulting stores return identical results.
func TestBuildWorkersDeterministic(t *testing.T) {
	data, shape := testData(t)
	for name, base := range parallelBuildConfigs() {
		base.NumBins = 10
		base.SampleSize = 512
		t.Run(name, func(t *testing.T) {
			ref := base
			ref.BuildWorkers = 1
			fsRef := pfs.New(pfs.DefaultConfig())
			stRef, err := Build(fsRef, fsRef.NewClock(), "det/phi", shape, data, ref)
			if err != nil {
				t.Fatal(err)
			}
			want := storeFiles(t, fsRef, "det/phi")

			reqs := []*query.Request{
				{VC: &binning.ValueConstraint{Min: 0.1, Max: 0.7}},
				{SC: regionOf(t, shape), PLoDLevel: 2},
			}
			if base.Mode == ModeFloats {
				reqs[1].PLoDLevel = 0 // floats mode serves full precision only
			}
			var wantRes [][]query.Match
			for _, req := range reqs {
				res, err := stRef.Query(req, 2)
				if err != nil {
					t.Fatal(err)
				}
				wantRes = append(wantRes, res.Matches)
			}

			for _, workers := range []int{2, 3, 4, runtime.GOMAXPROCS(0) + 2} {
				cfg := base
				cfg.BuildWorkers = workers
				fsN := pfs.New(pfs.DefaultConfig())
				stN, err := Build(fsN, fsN.NewClock(), "det/phi", shape, data, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := storeFiles(t, fsN, "det/phi")
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d files, want %d", workers, len(got), len(want))
				}
				for path, wantBytes := range want {
					gotBytes, ok := got[path]
					if !ok {
						t.Fatalf("workers=%d: missing file %s", workers, path)
					}
					if string(gotBytes) != string(wantBytes) {
						t.Errorf("workers=%d: %s differs from serial build (%d vs %d bytes)",
							workers, path, len(gotBytes), len(wantBytes))
					}
				}
				for i, req := range reqs {
					res, err := stN.Query(req, 2)
					if err != nil {
						t.Fatalf("workers=%d query %d: %v", workers, i, err)
					}
					matchesEqual(t, res.Matches, wantRes[i], fmt.Sprintf("workers=%d query %d", workers, i))
				}
			}
		})
	}
}

// TestBuildWorkersDeterministicFPC covers the remaining float codec.
func TestBuildWorkersDeterministicFPC(t *testing.T) {
	data, shape := testData(t)
	cfg := DefaultConfig([]int{8, 8})
	cfg.Mode = ModeFloats
	cfg.FloatCodec = compress.NewFPC()
	cfg.NumBins = 10
	cfg.SampleSize = 512

	fsRef := pfs.New(pfs.DefaultConfig())
	cfg.BuildWorkers = 1
	if _, err := Build(fsRef, fsRef.NewClock(), "det/phi", shape, data, cfg); err != nil {
		t.Fatal(err)
	}
	want := storeFiles(t, fsRef, "det/phi")

	cfg.BuildWorkers = 4
	fsN := pfs.New(pfs.DefaultConfig())
	if _, err := Build(fsN, fsN.NewClock(), "det/phi", shape, data, cfg); err != nil {
		t.Fatal(err)
	}
	got := storeFiles(t, fsN, "det/phi")
	for path, wantBytes := range want {
		if string(got[path]) != string(wantBytes) {
			t.Errorf("fpc workers=4: %s differs from serial build", path)
		}
	}
}

func regionOf(t *testing.T, shape grid.Shape) *grid.Region {
	t.Helper()
	lo := make([]int, shape.Dims())
	hi := make([]int, shape.Dims())
	for d := range hi {
		hi[d] = shape[d] * 3 / 4
	}
	r, err := grid.NewRegion(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return &r
}

// TestBuildWorkersValidation checks the config knob's edges: negative
// counts are rejected, zero resolves to GOMAXPROCS.
func TestBuildWorkersValidation(t *testing.T) {
	data, shape := testData(t)
	cfg := testConfig()
	cfg.BuildWorkers = -1
	fs := pfs.New(pfs.DefaultConfig())
	if _, err := Build(fs, pfs.NewClock(), "x/phi", shape, data, cfg); err == nil {
		t.Fatal("BuildWorkers=-1 accepted")
	}
	cfg.BuildWorkers = 0
	if got := cfg.buildWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("buildWorkers() with 0 = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestConcurrentMultiVarBuildRace is the multivar setup path under the
// race detector: several variables of one dataset built concurrently
// into a single shared pfs.Sim, each build itself running parallel
// workers, then cross-checked against serially built stores via a
// multi-variable query.
func TestConcurrentMultiVarBuildRace(t *testing.T) {
	d := datagen.S3DLike(12, 7)
	cfg := DefaultConfig([]int{6, 6, 6})
	cfg.NumBins = 8
	cfg.SampleSize = 512

	// Reference: serial builds on a private Sim.
	refFS := pfs.New(pfs.DefaultConfig())
	refStores := make(map[string]*Store, len(d.Vars))
	for _, v := range d.Vars {
		st, err := Build(refFS, refFS.NewClock(), "mv/"+v.Name, d.Shape, v.Data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		refStores[v.Name] = st
	}

	// Concurrent: all variables at once, sharing one Sim, each build
	// fanning out its own workers.
	fs := pfs.New(pfs.DefaultConfig())
	var mu sync.Mutex
	stores := make(map[string]*Store, len(d.Vars))
	var wg sync.WaitGroup
	errs := make(chan error, len(d.Vars))
	for _, v := range d.Vars {
		wg.Add(1)
		go func(name string, data []float64) {
			defer wg.Done()
			bcfg := cfg
			bcfg.BuildWorkers = 2
			st, err := Build(fs, fs.NewClock(), "mv/"+name, d.Shape, data, bcfg)
			if err != nil {
				errs <- fmt.Errorf("build %s: %w", name, err)
				return
			}
			mu.Lock()
			stores[name] = st
			mu.Unlock()
		}(v.Name, v.Data)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Byte-identical stores regardless of build concurrency.
	for _, v := range d.Vars {
		want := storeFiles(t, refFS, "mv/"+v.Name)
		got := storeFiles(t, fs, "mv/"+v.Name)
		for path, wantBytes := range want {
			if string(got[path]) != string(wantBytes) {
				t.Errorf("concurrent build: %s differs from serial build", path)
			}
		}
	}

	// The multivar access pattern works on the concurrently built Sim
	// and agrees with the reference stores.
	req := MultiVarRequest{
		Select:    query.Request{VC: &binning.ValueConstraint{Min: 0.5, Max: 1e30}},
		FetchVars: []string{"vu"},
	}
	got, err := MultiVarQuery(stores, "temp", req, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MultiVarQuery(refStores, "temp", req, 2)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, got.Values["vu"], want.Values["vu"], "concurrent multivar fetch")
}
