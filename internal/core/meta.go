package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"mloc/internal/grid"
)

// unitMeta locates one storage unit — the points of one chunk that fall
// in one bin — inside the bin's index and data files. In planes mode a
// unit has seven data pieces (one per PLoD byte plane); in floats mode
// it has one.
type unitMeta struct {
	chunkID int64
	count   int32
	// indexOff/indexLen locate the unit's positional index (delta-varint
	// intra-chunk offsets) in the bin's index file.
	indexOff, indexLen int64
	// pieceOff/pieceLen locate the data pieces in the bin's data file.
	pieceOff []int64
	pieceLen []int64
	// rawPlanes has bit p set when plane p was stored raw even though
	// the config asked for compression — the builder stores the smaller
	// of the two forms, so tiny or incompressible pieces never inflate.
	rawPlanes uint8
}

// binMeta describes one bin's subfiles and storage units, in storage
// order (chunks sorted by the configured curve).
type binMeta struct {
	units []unitMeta
	// unitByChunk maps chunkID to position in units.
	unitByChunk map[int64]int
	dataSize    int64
	indexSize   int64
}

// encodeBinIndex fills bm's unit metadata from the bin's raw units (in
// storage order) and returns the bin's positional index file: per unit,
// the ascending intra-chunk offsets as delta uvarints. Build's encode
// workers call it concurrently, one worker per bin.
func encodeBinIndex(bm *binMeta, units []rawUnit) []byte {
	bm.units = make([]unitMeta, len(units))
	bm.unitByChunk = make(map[int64]int, len(units))
	var indexBuf []byte
	for j, u := range units {
		um := &bm.units[j]
		um.chunkID = u.chunkID
		um.count = int32(len(u.offsets))
		um.indexOff = int64(len(indexBuf))
		prev := int32(0)
		for _, off := range u.offsets {
			indexBuf = binary.AppendUvarint(indexBuf, uint64(off-prev))
			prev = off
		}
		um.indexLen = int64(len(indexBuf)) - um.indexOff
		bm.unitByChunk[u.chunkID] = j
	}
	return indexBuf
}

// storeMeta is the full persistent description of a built variable
// store; it is serialized to <prefix>/meta and its size counts toward
// the index overhead in the storage experiments.
type storeMeta struct {
	shape      grid.Shape
	chunkSize  []int
	order      Order
	curve      string
	mode       Mode
	codecName  string
	compPlanes int
	binBounds  []float64
	bins       []binMeta
}

const metaMagic = uint32(0x4d4c4f43) // "MLOC"

// marshal serializes the metadata. Layout is a straightforward tagged
// little-endian encoding; all experiments count its length as index
// overhead so it must stay compact (offsets are varints).
func (m *storeMeta) marshal() []byte {
	nunits := 0
	for i := range m.bins {
		nunits += len(m.bins[i].units)
	}
	// Rough capacity: fixed header plus bounds plus each unit's varints
	// (chunk delta, count, offsets, up to NumPlanes piece extents).
	out := make([]byte, 0, 64+8*len(m.binBounds)+64*nunits)
	out = binary.LittleEndian.AppendUint32(out, metaMagic)
	out = appendUvarint(out, uint64(len(m.shape)))
	for _, d := range m.shape {
		out = appendUvarint(out, uint64(d))
	}
	for _, d := range m.chunkSize {
		out = appendUvarint(out, uint64(d))
	}
	out = appendString(out, m.order.String())
	out = appendString(out, m.curve)
	out = appendString(out, string(m.mode))
	out = appendString(out, m.codecName)
	out = appendUvarint(out, uint64(m.compPlanes))
	out = appendUvarint(out, uint64(len(m.binBounds)))
	for _, b := range m.binBounds {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(b))
	}
	out = appendUvarint(out, uint64(len(m.bins)))
	for i := range m.bins {
		bm := &m.bins[i]
		out = appendUvarint(out, uint64(len(bm.units)))
		var prevChunk int64
		for j := range bm.units {
			u := &bm.units[j]
			// Chunk ids are ascending in curve order per bin only when
			// the curve is row-major, so store deltas zig-zagged.
			out = binary.AppendVarint(out, u.chunkID-prevChunk)
			prevChunk = u.chunkID
			out = appendUvarint(out, uint64(u.count))
			out = appendUvarint(out, uint64(u.indexOff))
			out = appendUvarint(out, uint64(u.indexLen))
			out = append(out, u.rawPlanes)
			out = appendUvarint(out, uint64(len(u.pieceOff)))
			for p := range u.pieceOff {
				out = appendUvarint(out, uint64(u.pieceOff[p]))
				out = appendUvarint(out, uint64(u.pieceLen[p]))
			}
		}
	}
	return out
}

// unmarshalStoreMeta parses metadata written by marshal.
func unmarshalStoreMeta(data []byte) (*storeMeta, error) {
	r := &byteReader{data: data}
	if magic := r.u32(); magic != metaMagic {
		return nil, fmt.Errorf("core: bad meta magic %#x", magic)
	}
	m := &storeMeta{}
	dims := int(r.uvarint())
	if dims <= 0 || dims > 16 {
		return nil, fmt.Errorf("core: implausible dims %d in meta", dims)
	}
	m.shape = make(grid.Shape, dims)
	for d := range m.shape {
		m.shape[d] = int(r.uvarint())
	}
	m.chunkSize = make([]int, dims)
	for d := range m.chunkSize {
		m.chunkSize[d] = int(r.uvarint())
	}
	orderStr := r.str()
	order, err := ParseOrder(orderStr)
	if err != nil {
		return nil, fmt.Errorf("core: meta order: %w", err)
	}
	m.order = order
	m.curve = r.str()
	m.mode = Mode(r.str())
	m.codecName = r.str()
	m.compPlanes = int(r.uvarint())
	// Every count below sizes an allocation, and the counts come from
	// an untrusted file: bound each by what the remaining bytes could
	// possibly encode, so corrupt metadata fails cleanly instead of
	// triggering enormous allocations.
	nb := int(r.uvarint())
	if nb < 0 || nb > r.remaining()/8 {
		return nil, fmt.Errorf("core: meta declares %d bin bounds with %d bytes left", nb, r.remaining())
	}
	m.binBounds = make([]float64, nb)
	for i := range m.binBounds {
		m.binBounds[i] = math.Float64frombits(r.u64())
	}
	nbins := int(r.uvarint())
	if nbins < 0 || nbins > r.remaining() {
		return nil, fmt.Errorf("core: meta declares %d bins with %d bytes left", nbins, r.remaining())
	}
	m.bins = make([]binMeta, nbins)
	for i := range m.bins {
		bm := &m.bins[i]
		nunits := int(r.uvarint())
		// A serialized unit takes at least 5 bytes (chunk delta, count,
		// two index fields, raw-planes byte at one byte each).
		if nunits < 0 || nunits > r.remaining()/5 {
			return nil, fmt.Errorf("core: meta bin %d declares %d units with %d bytes left",
				i, nunits, r.remaining())
		}
		bm.units = make([]unitMeta, nunits)
		bm.unitByChunk = make(map[int64]int, nunits)
		var prevChunk int64
		for j := range bm.units {
			u := &bm.units[j]
			u.chunkID = prevChunk + r.varint()
			prevChunk = u.chunkID
			// Counts and extents size allocations and seed file reads;
			// cap them so the narrowing conversions cannot go negative.
			u.count = int32(r.uvarintMax(math.MaxInt32))
			u.indexOff = int64(r.uvarintMax(math.MaxInt64))
			u.indexLen = int64(r.uvarintMax(math.MaxInt64))
			u.rawPlanes = r.u8()
			np := int(r.uvarint())
			if np < 0 || np > r.remaining()/2 || np > 64 {
				return nil, fmt.Errorf("core: meta unit declares %d pieces with %d bytes left",
					np, r.remaining())
			}
			u.pieceOff = make([]int64, np)
			u.pieceLen = make([]int64, np)
			for p := 0; p < np; p++ {
				u.pieceOff[p] = int64(r.uvarintMax(math.MaxInt64))
				u.pieceLen[p] = int64(r.uvarintMax(math.MaxInt64))
			}
			bm.unitByChunk[u.chunkID] = j
			bm.indexSize += u.indexLen
			for p := range u.pieceLen {
				bm.dataSize += u.pieceLen[p]
			}
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("core: truncated meta: %w", r.err)
	}
	return m, nil
}

// byteReader is a cursor with sticky error for meta decoding.
type byteReader struct {
	data []byte
	pos  int
	err  error
}

func (r *byteReader) u8() byte {
	if r.err != nil || r.pos+1 > len(r.data) {
		r.fail()
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *byteReader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *byteReader) u64() uint64 {
	if r.err != nil || r.pos+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *byteReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *byteReader) str() string {
	// The length is untrusted: a uvarint above MaxInt64 wraps int()
	// negative, and a huge positive one overflows r.pos+n — compare
	// against the remaining bytes instead, which bounds both.
	n := int(r.uvarint())
	if r.err != nil || n < 0 || n > len(r.data)-r.pos {
		r.fail()
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}

// uvarintMax reads a uvarint and fails the decode when it exceeds max,
// so narrowing conversions on the caller's side cannot wrap negative.
func (r *byteReader) uvarintMax(max uint64) uint64 {
	v := r.uvarint()
	if r.err == nil && v > max {
		r.err = fmt.Errorf("varint %d exceeds limit %d at %d", v, max, r.pos) //mlocvet:ignore errprefix -- reader errors are wrapped with the core prefix at the exported API
		return 0
	}
	return v
}

func (r *byteReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("unexpected end of buffer at %d", r.pos) //mlocvet:ignore errprefix -- reader errors are wrapped with the core prefix at the exported API
	}
}

// remaining returns the unread byte count (0 after a decode error).
func (r *byteReader) remaining() int {
	if r.err != nil || r.pos > len(r.data) {
		return 0
	}
	return len(r.data) - r.pos
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}
