package core

import (
	"testing"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
	"mloc/internal/sfc"
)

// testData returns a small GTS-like field.
func testData(t *testing.T) ([]float64, grid.Shape) {
	t.Helper()
	d := datagen.GTSLike(32, 32, 1)
	v, _ := d.Var("phi")
	return v.Data, d.Shape
}

func testConfig() Config {
	cfg := DefaultConfig([]int{8, 8})
	cfg.NumBins = 10
	cfg.SampleSize = 512
	return cfg
}

func buildTestStore(t *testing.T, cfg Config) (*Store, []float64, grid.Shape) {
	t.Helper()
	data, shape := testData(t)
	fs := pfs.New(pfs.DefaultConfig())
	st, err := Build(fs, pfs.NewClock(), "mloc/phi", shape, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, data, shape
}

func bruteForce(data []float64, shape grid.Shape, req *query.Request) []query.Match {
	var out []query.Match
	coords := make([]int, shape.Dims())
	for i, v := range data {
		if req.VC != nil && !req.VC.Contains(v) {
			continue
		}
		if req.SC != nil {
			coords = shape.Coords(int64(i), coords[:0])
			if !req.SC.Contains(coords) {
				continue
			}
		}
		m := query.Match{Index: int64(i)}
		if !req.IndexOnly {
			m.Value = v
		}
		out = append(out, m)
	}
	return out
}

func matchesEqual(t *testing.T, got, want []query.Match, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestOrderValidate(t *testing.T) {
	if err := OrderVMS.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := OrderVSM.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Order{
		{},
		{LevelValue, LevelValue, LevelSpatial},
		{LevelMultires, LevelValue, LevelSpatial},
		{LevelValue, LevelMultires, Level('X')},
		{LevelValue, LevelMultires},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad order %d (%s) accepted", i, o)
		}
	}
}

func TestParseOrder(t *testing.T) {
	for _, s := range []string{"V-M-S", "VMS", "V-S-M", "VSM"} {
		o, err := ParseOrder(s)
		if err != nil {
			t.Fatalf("ParseOrder(%s): %v", s, err)
		}
		if o[0] != LevelValue {
			t.Fatalf("ParseOrder(%s) = %s", s, o)
		}
	}
	for _, s := range []string{"M-V-S", "V", "X-Y-Z", ""} {
		if _, err := ParseOrder(s); err == nil {
			t.Errorf("ParseOrder(%s) accepted", s)
		}
	}
	if !OrderVMS.PlanesBeforeChunks() {
		t.Error("VMS should be plane-major")
	}
	if OrderVSM.PlanesBeforeChunks() {
		t.Error("VSM should be chunk-major")
	}
}

func TestConfigNormalize(t *testing.T) {
	cfg := Config{}
	if err := cfg.normalize(); err == nil {
		t.Error("empty config accepted")
	}
	cfg = Config{ChunkSize: []int{0}}
	if err := cfg.normalize(); err == nil {
		t.Error("zero chunk size accepted")
	}
	cfg = Config{ChunkSize: []int{4}, NumBins: 0}
	if err := cfg.normalize(); err == nil {
		t.Error("zero bins accepted")
	}
	cfg = Config{ChunkSize: []int{4}, NumBins: 2, Mode: ModeFloats}
	if err := cfg.normalize(); err == nil {
		t.Error("floats mode without codec accepted")
	}
	cfg = Config{ChunkSize: []int{4}, NumBins: 2, Mode: "weird"}
	if err := cfg.normalize(); err == nil {
		t.Error("unknown mode accepted")
	}
	good := Config{ChunkSize: []int{4}, NumBins: 2}
	if err := good.normalize(); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	if good.Mode != ModePlanes || good.Order == nil || good.ByteCodec == nil {
		t.Error("defaults not filled")
	}
}

func TestBuildValidation(t *testing.T) {
	fs := pfs.New(pfs.DefaultConfig())
	data, shape := testData(t)
	if _, err := Build(fs, pfs.NewClock(), "", shape, data, testConfig()); err == nil {
		t.Error("empty prefix accepted")
	}
	if _, err := Build(fs, pfs.NewClock(), "x", shape, data[:5], testConfig()); err == nil {
		t.Error("length mismatch accepted")
	}
	cfg := testConfig()
	cfg.ChunkSize = []int{8} // wrong arity
	if _, err := Build(fs, pfs.NewClock(), "x", shape, data, cfg); err == nil {
		t.Error("chunk arity mismatch accepted")
	}
}

func queryConfigs() map[string]Config {
	col := DefaultConfig([]int{8, 8})
	col.NumBins = 10
	col.SampleSize = 512

	colVSM := col
	colVSM.Order = OrderVSM

	iso := ISOConfig([]int{8, 8})
	iso.NumBins = 10
	iso.SampleSize = 512

	return map[string]Config{"COL-VMS": col, "COL-VSM": colVSM, "ISO": iso}
}

func TestRegionQueryMatchesBruteForce(t *testing.T) {
	for name, cfg := range queryConfigs() {
		st, data, shape := buildTestStore(t, cfg)
		for _, sel := range []float64{0.01, 0.1} {
			lo, hi := datagen.Selectivity(data, sel, 5, 1024)
			vc := binning.ValueConstraint{Min: lo, Max: hi}
			req := &query.Request{VC: &vc}
			for _, ranks := range []int{1, 4} {
				res, err := st.Query(req, ranks)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				matchesEqual(t, res.Matches, bruteForce(data, shape, req), name+" region query")
			}
		}
	}
}

func TestValueQueryMatchesBruteForce(t *testing.T) {
	for name, cfg := range queryConfigs() {
		st, data, shape := buildTestStore(t, cfg)
		sc, _ := grid.NewRegion([]int{3, 5}, []int{19, 27})
		req := &query.Request{SC: &sc}
		for _, ranks := range []int{1, 3, 8} {
			res, err := st.Query(req, ranks)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			matchesEqual(t, res.Matches, bruteForce(data, shape, req), name+" value query")
		}
	}
}

func TestCombinedQueryMatchesBruteForce(t *testing.T) {
	for name, cfg := range queryConfigs() {
		st, data, shape := buildTestStore(t, cfg)
		lo, hi := datagen.Selectivity(data, 0.3, 7, 1024)
		vc := binning.ValueConstraint{Min: lo, Max: hi}
		sc, _ := grid.NewRegion([]int{8, 0}, []int{24, 16})
		req := &query.Request{VC: &vc, SC: &sc}
		res, err := st.Query(req, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		matchesEqual(t, res.Matches, bruteForce(data, shape, req), name+" combined query")
	}
}

func TestIndexOnlyQuery(t *testing.T) {
	st, data, shape := buildTestStore(t, testConfig())
	lo, hi := datagen.Selectivity(data, 0.1, 9, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	req := &query.Request{VC: &vc, IndexOnly: true}
	res, err := st.Query(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, res.Matches, bruteForce(data, shape, req), "index-only")
	for _, m := range res.Matches {
		if m.Value != 0 {
			t.Fatal("index-only match carries a value")
		}
	}
}

func TestAlignedBinsSkipData(t *testing.T) {
	// A VC exactly covering whole bins makes every selected bin
	// aligned: an index-only query must not read any data blocks.
	st, _, _ := buildTestStore(t, testConfig())
	bounds := st.Scheme().Bounds()
	vc := binning.ValueConstraint{Min: bounds[2], Max: bounds[5]}
	// Nudge Max just below the boundary so bin 5 is not touched: bins
	// 2,3,4 are fully covered (aligned).
	req := &query.Request{VC: &vc, IndexOnly: true}
	aligned, mis := st.Scheme().SelectBins(vc)
	if len(aligned) < 2 {
		t.Skip("binning produced no aligned bins for this constraint")
	}
	res, err := st.Query(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) == 0 && res.BlocksRead != 0 {
		t.Fatalf("aligned-only index query read %d data blocks", res.BlocksRead)
	}
	// Data volume must be far below the store's data size: only index
	// subfiles are touched for the aligned bins.
	if res.BytesRead >= st.DataBytes() {
		t.Fatalf("index-only query read %d bytes >= data size %d", res.BytesRead, st.DataBytes())
	}
}

func TestPLoDQueryApproximatesValues(t *testing.T) {
	st, data, shape := buildTestStore(t, testConfig())
	sc, _ := grid.NewRegion([]int{0, 0}, []int{16, 16})
	exact := bruteForce(data, shape, &query.Request{SC: &sc})
	for _, level := range []int{1, 2, 3, 4} {
		req := &query.Request{SC: &sc, PLoDLevel: level}
		res, err := st.Query(req, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != len(exact) {
			t.Fatalf("level %d: %d matches, want %d", level, len(res.Matches), len(exact))
		}
		bound := relBound(level)
		for i, m := range res.Matches {
			if m.Index != exact[i].Index {
				t.Fatalf("level %d: index mismatch at %d", level, i)
			}
			if exact[i].Value == 0 {
				continue
			}
			rel := abs(m.Value-exact[i].Value) / abs(exact[i].Value)
			if rel > bound {
				t.Fatalf("level %d: point %d rel error %g > %g", level, i, rel, bound)
			}
		}
	}
}

func relBound(level int) float64 {
	// plod.RelErrorBound with slack.
	fracBits := 8*(level+1) - 12
	b := 1.0
	for i := 0; i < fracBits; i++ {
		b /= 2
	}
	return b * 0.5001 * 2 // centered fill halves the interval; slack
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestPLoDReadsFewerBytes(t *testing.T) {
	st, _, _ := buildTestStore(t, testConfig())
	sc, _ := grid.NewRegion([]int{0, 0}, []int{32, 32})
	full, err := st.Query(&query.Request{SC: &sc}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lvl2, err := st.Query(&query.Request{SC: &sc, PLoDLevel: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lvl2.BytesRead >= full.BytesRead {
		t.Fatalf("PLoD-2 read %d bytes, full read %d — no I/O reduction", lvl2.BytesRead, full.BytesRead)
	}
	// 3 of 8 bytes plus index: the ratio should be well under 0.7.
	ratio := float64(lvl2.BytesRead) / float64(full.BytesRead)
	if ratio > 0.7 {
		t.Errorf("PLoD-2 byte ratio %.2f too high", ratio)
	}
}

func TestPLoDRejectedInFloatsMode(t *testing.T) {
	iso := ISOConfig([]int{8, 8})
	iso.NumBins = 10
	st, _, _ := buildTestStore(t, iso)
	sc, _ := grid.NewRegion([]int{0, 0}, []int{8, 8})
	if _, err := st.Query(&query.Request{SC: &sc, PLoDLevel: 2}, 1); err == nil {
		t.Fatal("PLoD accepted in floats mode")
	}
}

func TestISALossyWithinBound(t *testing.T) {
	isa := ISAConfig([]int{8, 8})
	isa.NumBins = 10
	isa.SampleSize = 512
	st, data, shape := buildTestStore(t, isa)
	sc, _ := grid.NewRegion([]int{0, 0}, []int{32, 32})
	res, err := st.Query(&query.Request{SC: &sc}, 2)
	if err != nil {
		t.Fatal(err)
	}
	exact := bruteForce(data, shape, &query.Request{SC: &sc})
	if len(res.Matches) != len(exact) {
		t.Fatalf("%d matches, want %d", len(res.Matches), len(exact))
	}
	var maxAbs float64
	for _, v := range data {
		if a := abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	for i, m := range res.Matches {
		scale := abs(exact[i].Value)
		if floor := maxAbs * 1e-6; scale < floor {
			scale = floor
		}
		if abs(m.Value-exact[i].Value)/scale > 0.011 {
			t.Fatalf("point %d: ISA error %v vs %v", i, m.Value, exact[i].Value)
		}
	}
}

func TestStorageAccounting(t *testing.T) {
	// Storage-ratio claims need realistic unit sizes (hundreds of
	// points per unit); a toy store would be dominated by per-piece
	// framing overhead.
	d := datagen.GTSLike(128, 128, 2)
	v, _ := d.Var("phi")
	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig([]int{32, 32})
	cfg.NumBins = 10
	cfg.SampleSize = 4096
	st, err := Build(fs, pfs.NewClock(), "mloc/storage", d.Shape, v.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := v.Data
	raw := int64(len(data) * 8)
	if st.DataBytes() <= 0 || st.IndexBytes() <= 0 {
		t.Fatal("zero storage accounting")
	}
	if st.TotalBytes() != st.DataBytes()+st.IndexBytes() {
		t.Fatal("TotalBytes inconsistent")
	}
	// COL-mode data should not exceed raw by much (plane 0 compresses,
	// planes 1-6 raw).
	if st.DataBytes() > raw {
		t.Errorf("COL data %d exceeds raw %d", st.DataBytes(), raw)
	}
	// Light-weight index: well under FastBit-style 100%+.
	if st.IndexBytes() > raw/2 {
		t.Errorf("index %d exceeds half of raw %d — not light-weight", st.IndexBytes(), raw)
	}
	dataSizes, idxSizes := st.BinFileSizes()
	var sumD, sumI int64
	for i := range dataSizes {
		sumD += dataSizes[i]
		sumI += idxSizes[i]
	}
	if sumD != st.DataBytes() {
		t.Error("bin data sizes do not sum to DataBytes")
	}
	if sumI >= st.IndexBytes() {
		t.Error("bin index sizes should be below IndexBytes (meta excluded)")
	}
}

func TestOpenRoundtrip(t *testing.T) {
	data, shape := testData(t)
	fs := pfs.New(pfs.DefaultConfig())
	built, err := Build(fs, pfs.NewClock(), "mloc/phi", shape, data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	opened, err := Open(fs, pfs.NewClock(), "mloc/phi")
	if err != nil {
		t.Fatal(err)
	}
	if !opened.Shape().Equal(built.Shape()) || opened.NumBins() != built.NumBins() {
		t.Fatal("reopened store differs")
	}
	if opened.Order().String() != built.Order().String() {
		t.Fatal("order not persisted")
	}
	// Queries through the reopened store must agree.
	lo, hi := datagen.Selectivity(data, 0.05, 3, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	req := &query.Request{VC: &vc}
	a, err := built.Query(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := opened.Query(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, b.Matches, a.Matches, "reopened store query")

	if _, err := Open(fs, pfs.NewClock(), "missing"); err == nil {
		t.Error("open of missing store accepted")
	}
}

func TestMetaMarshalRoundtrip(t *testing.T) {
	st, _, _ := buildTestStore(t, testConfig())
	raw := st.meta.marshal()
	back, err := unmarshalStoreMeta(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !back.shape.Equal(st.meta.shape) {
		t.Fatal("shape mismatch")
	}
	if len(back.bins) != len(st.meta.bins) {
		t.Fatal("bin count mismatch")
	}
	for b := range back.bins {
		if len(back.bins[b].units) != len(st.meta.bins[b].units) {
			t.Fatalf("bin %d unit count mismatch", b)
		}
		for u := range back.bins[b].units {
			got, want := back.bins[b].units[u], st.meta.bins[b].units[u]
			if got.chunkID != want.chunkID || got.count != want.count ||
				got.indexOff != want.indexOff || got.indexLen != want.indexLen {
				t.Fatalf("bin %d unit %d meta mismatch", b, u)
			}
		}
	}
	// Corrupt cases.
	if _, err := unmarshalStoreMeta(raw[:8]); err == nil {
		t.Error("truncated meta accepted")
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := unmarshalStoreMeta(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	st, _, _ := buildTestStore(t, testConfig())
	if _, err := st.Query(&query.Request{}, 0); err == nil {
		t.Error("ranks=0 accepted")
	}
	bad := binning.ValueConstraint{Min: 1, Max: 0}
	if _, err := st.Query(&query.Request{VC: &bad}, 1); err == nil {
		t.Error("inverted VC accepted")
	}
	if _, err := st.Query(&query.Request{PLoDLevel: 9}, 1); err == nil {
		t.Error("bad PLoD level accepted")
	}
}

func TestRoundRobinAssignmentSameResults(t *testing.T) {
	st, data, shape := buildTestStore(t, testConfig())
	lo, hi := datagen.Selectivity(data, 0.1, 13, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	req := &query.Request{VC: &vc}
	colRes, err := st.Query(req, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetAssignment(AssignRoundRobin); err != nil {
		t.Fatal(err)
	}
	rrRes, err := st.Query(req, 4)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, rrRes.Matches, colRes.Matches, "round-robin assignment")
	matchesEqual(t, colRes.Matches, bruteForce(data, shape, req), "column assignment")
	if err := st.SetAssignment("bogus"); err == nil {
		t.Error("bogus assignment accepted")
	}
}

func TestCurveVariantsSameResults(t *testing.T) {
	data, shape := testData(t)
	sc, _ := grid.NewRegion([]int{4, 4}, []int{20, 28})
	req := &query.Request{SC: &sc}
	want := bruteForce(data, shape, req)
	for _, curve := range []sfc.CurveKind{sfc.CurveHilbert, sfc.CurveZOrder, sfc.CurveRowMajor} {
		cfg := testConfig()
		cfg.Curve = curve
		fs := pfs.New(pfs.DefaultConfig())
		st, err := Build(fs, pfs.NewClock(), "mloc/phi", shape, data, cfg)
		if err != nil {
			t.Fatalf("%s: %v", curve, err)
		}
		res, err := st.Query(req, 2)
		if err != nil {
			t.Fatalf("%s: %v", curve, err)
		}
		matchesEqual(t, res.Matches, want, string(curve))
	}
}

func TestUnconstrainedQueryReturnsEverything(t *testing.T) {
	st, data, shape := buildTestStore(t, testConfig())
	res, err := st.Query(&query.Request{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, res.Matches, bruteForce(data, shape, &query.Request{}), "unconstrained")
}

func TestNonSquareGridAndEdgeChunks(t *testing.T) {
	// Shapes not divisible by the chunk size exercise edge chunks.
	d := datagen.GTSLike(33, 21, 9)
	v, _ := d.Var("phi")
	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig([]int{8, 8})
	cfg.NumBins = 7
	cfg.SampleSize = 256
	st, err := Build(fs, pfs.NewClock(), "mloc/edge", d.Shape, v.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := grid.NewRegion([]int{30, 15}, []int{33, 21})
	req := &query.Request{SC: &sc}
	res, err := st.Query(req, 3)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, res.Matches, bruteForce(v.Data, d.Shape, req), "edge chunks")
}

func Test3DStore(t *testing.T) {
	d := datagen.S3DLike(16, 4)
	v, _ := d.Var("temp")
	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig([]int{8, 8, 8})
	cfg.NumBins = 8
	cfg.SampleSize = 512
	st, err := Build(fs, pfs.NewClock(), "mloc/temp", d.Shape, v.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := datagen.Selectivity(v.Data, 0.05, 3, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	sc, _ := grid.NewRegion([]int{0, 4, 4}, []int{12, 12, 16})
	req := &query.Request{VC: &vc, SC: &sc}
	res, err := st.Query(req, 4)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, res.Matches, bruteForce(v.Data, d.Shape, req), "3-D combined query")
}
