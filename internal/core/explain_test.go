package core

import (
	"bytes"
	"strings"
	"testing"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/query"
)

func TestExplainMatchesExecution(t *testing.T) {
	st, data, _ := buildTestStore(t, testConfig())
	lo, hi := datagen.Selectivity(data, 0.1, 3, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	sc, _ := grid.NewRegion([]int{4, 4}, []int{24, 28})
	req := &query.Request{VC: &vc, SC: &sc}

	plan, err := st.Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The plan's data-unit count must equal the executed BlocksRead.
	if plan.UnitsWithData != res.BlocksRead {
		t.Errorf("plan UnitsWithData %d != executed BlocksRead %d", plan.UnitsWithData, res.BlocksRead)
	}
	// Bins in the plan must match BinsAccessed.
	if plan.AlignedBins+plan.MisalignedBins < res.BinsAccessed {
		t.Errorf("plan bins %d+%d < executed bins %d",
			plan.AlignedBins, plan.MisalignedBins, res.BinsAccessed)
	}
	// Points bound the matches.
	if int64(len(res.Matches)) > plan.Points {
		t.Errorf("matches %d exceed plan's candidate points %d", len(res.Matches), plan.Points)
	}
	// Estimated bytes bound the actual reads from below (gap merging
	// can only add bytes).
	if res.BytesRead < plan.IndexBytes+plan.DataBytes {
		t.Errorf("executed bytes %d below plan estimate %d",
			res.BytesRead, plan.IndexBytes+plan.DataBytes)
	}
}

func TestExplainIndexOnlySkipsData(t *testing.T) {
	st, _, _ := buildTestStore(t, testConfig())
	bounds := st.Scheme().Bounds()
	vc := binning.ValueConstraint{Min: bounds[2], Max: bounds[5]}
	plan, err := st.Explain(&query.Request{VC: &vc, IndexOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.MisalignedBins == 0 && plan.UnitsWithData != 0 {
		t.Errorf("aligned-only index plan has %d data units", plan.UnitsWithData)
	}
	if plan.DataBytes != 0 && plan.MisalignedBins == 0 {
		t.Errorf("aligned-only index plan estimates %d data bytes", plan.DataBytes)
	}
}

func TestExplainPLoDPlanes(t *testing.T) {
	st, _, _ := buildTestStore(t, testConfig())
	sc, _ := grid.NewRegion([]int{0, 0}, []int{16, 16})
	full, err := st.Explain(&query.Request{SC: &sc})
	if err != nil {
		t.Fatal(err)
	}
	lvl2, err := st.Explain(&query.Request{SC: &sc, PLoDLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if full.PlanesRead != 7 || lvl2.PlanesRead != 2 {
		t.Fatalf("PlanesRead = %d / %d, want 7 / 2", full.PlanesRead, lvl2.PlanesRead)
	}
	if lvl2.DataBytes >= full.DataBytes {
		t.Errorf("PLoD-2 plan bytes %d not below full %d", lvl2.DataBytes, full.DataBytes)
	}
}

func TestExplainValidation(t *testing.T) {
	st, _, _ := buildTestStore(t, testConfig())
	bad := binning.ValueConstraint{Min: 1, Max: 0}
	if _, err := st.Explain(&query.Request{VC: &bad}); err == nil {
		t.Error("inverted VC accepted")
	}
	iso := ISOConfig([]int{8, 8})
	iso.NumBins = 6
	isoStore, _, _ := buildTestStore(t, iso)
	if _, err := isoStore.Explain(&query.Request{PLoDLevel: 2}); err == nil {
		t.Error("PLoD plan accepted in floats mode")
	}
}

func TestPlanRender(t *testing.T) {
	st, _, _ := buildTestStore(t, testConfig())
	plan, err := st.Explain(&query.Request{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"plan (order V-M-S)", "bins:", "chunks selected", "est. I/O"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
