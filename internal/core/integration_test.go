package core

// Cross-system integration tests: MLOC and all three baselines must
// return identical match sets for identical requests — the correctness
// contract behind every timing comparison in the experiments.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/fastbit"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
	"mloc/internal/scidb"
	"mloc/internal/seqscan"
)

// allSystems builds every store kind over the same data.
type allSystems struct {
	data  []float64
	shape grid.Shape
	mloc  []*Store // COL, COL-VSM, ISO
	seq   *seqscan.Store
	fb    *fastbit.Store
	sci   *scidb.Store
}

func buildAll(t *testing.T) *allSystems {
	t.Helper()
	d := datagen.GTSLike(48, 40, 21)
	v, _ := d.Var("phi")
	sys := &allSystems{data: v.Data, shape: d.Shape}

	col := DefaultConfig([]int{16, 8})
	col.NumBins = 12
	col.SampleSize = 512
	vsm := col
	vsm.Order = OrderVSM
	iso := ISOConfig([]int{16, 8})
	iso.NumBins = 12
	iso.SampleSize = 512
	for _, cfg := range []Config{col, vsm, iso} {
		fs := pfs.New(pfs.DefaultConfig())
		st, err := Build(fs, fs.NewClock(), "it/mloc", d.Shape, v.Data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.mloc = append(sys.mloc, st)
	}
	{
		fs := pfs.New(pfs.DefaultConfig())
		st, err := seqscan.Build(fs, fs.NewClock(), "it/seq", d.Shape, v.Data)
		if err != nil {
			t.Fatal(err)
		}
		sys.seq = st
	}
	{
		fs := pfs.New(pfs.DefaultConfig())
		cfg := fastbit.DefaultConfig()
		cfg.NumBins = 64
		st, err := fastbit.Build(fs, fs.NewClock(), "it/fb", d.Shape, v.Data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.fb = st
	}
	{
		fs := pfs.New(pfs.DefaultConfig())
		st, err := scidb.Build(fs, fs.NewClock(), "it/sci", d.Shape, v.Data, scidb.DefaultConfig([]int{16, 8}))
		if err != nil {
			t.Fatal(err)
		}
		sys.sci = st
	}
	return sys
}

// runAll executes req on every system and checks all results agree
// with brute force.
func (sys *allSystems) runAll(t *testing.T, req *query.Request, ranks int, label string) {
	t.Helper()
	want := bruteForce(sys.data, sys.shape, req)
	check := func(name string, got []query.Match) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s/%s: %d matches, want %d", label, name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s/%s: match %d = %+v, want %+v", label, name, i, got[i], want[i])
			}
		}
	}
	for i, st := range sys.mloc {
		res, err := st.Query(req, ranks)
		if err != nil {
			t.Fatalf("%s/mloc[%d]: %v", label, i, err)
		}
		check("mloc", res.Matches)
	}
	res, err := sys.seq.Query(req, ranks)
	if err != nil {
		t.Fatalf("%s/seq: %v", label, err)
	}
	check("seq", res.Matches)
	res, err = sys.fb.Query(req, ranks)
	if err != nil {
		t.Fatalf("%s/fastbit: %v", label, err)
	}
	check("fastbit", res.Matches)
	res, err = sys.sci.Query(req, ranks)
	if err != nil {
		t.Fatalf("%s/scidb: %v", label, err)
	}
	check("scidb", res.Matches)
}

func TestAllSystemsAgreeOnRegionQueries(t *testing.T) {
	sys := buildAll(t)
	for _, sel := range []float64{0.01, 0.1, 0.5} {
		lo, hi := datagen.Selectivity(sys.data, sel, int64(sel*1000)+7, 1024)
		vc := binning.ValueConstraint{Min: lo, Max: hi}
		sys.runAll(t, &query.Request{VC: &vc}, 4, "region")
		sys.runAll(t, &query.Request{VC: &vc, IndexOnly: true}, 4, "region-index-only")
	}
}

func TestAllSystemsAgreeOnValueQueries(t *testing.T) {
	sys := buildAll(t)
	regions := [][2][]int{
		{{0, 0}, {48, 40}},   // full domain
		{{10, 10}, {20, 20}}, // interior box
		{{40, 30}, {48, 40}}, // corner including edge chunks
		{{5, 0}, {6, 40}},    // thin slab
	}
	for _, r := range regions {
		sc, err := grid.NewRegion(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		sys.runAll(t, &query.Request{SC: &sc}, 3, "value")
	}
}

func TestAllSystemsAgreeOnCombinedQueries(t *testing.T) {
	sys := buildAll(t)
	lo, hi := datagen.Selectivity(sys.data, 0.3, 31, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	sc, _ := grid.NewRegion([]int{8, 4}, []int{36, 32})
	sys.runAll(t, &query.Request{VC: &vc, SC: &sc}, 5, "combined")
}

// TestEdgeBinClampedValuesFiltered is a regression test: bin boundaries
// are estimated from a sample, so data values below the first bound (or
// above the last) exist and BinOf clamps them into the edge bins. A
// constraint that covered bin 0's nominal interval used to classify it
// aligned and return those clamped values unfiltered (found by
// TestAllSystemsAgreeQuick with seed -1800124551037682200); builders
// now widen the outer bounds to the true data extremes.
func TestEdgeBinClampedValuesFiltered(t *testing.T) {
	sys := buildAll(t)
	for _, st := range sys.mloc {
		b := st.Scheme().Bounds()
		lo, hi := b[0], b[len(b)-1]
		for i, v := range sys.data {
			if v < lo || v > hi {
				t.Fatalf("value %v at %d outside scheme bounds [%v, %v]", v, i, lo, hi)
			}
		}
	}
	// The quick-check failure's constraint: Min sits above several data
	// values that the sampled bin-0 lower bound used to exclude.
	vc := binning.ValueConstraint{Min: 8.044075841799517, Max: 9.758988479018614}
	sys.runAll(t, &query.Request{VC: &vc}, 3, "edge-bin")
	// And a constraint entirely below the sampled first bound must
	// still find the clamped values instead of pruning every bin.
	min, max := sys.data[0], sys.data[0]
	for _, v := range sys.data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	sys.runAll(t, &query.Request{VC: &binning.ValueConstraint{Min: min, Max: min + 0.05}}, 2, "bottom-edge")
	sys.runAll(t, &query.Request{VC: &binning.ValueConstraint{Min: max - 0.05, Max: max}}, 2, "top-edge")
}

func TestAllSystemsAgreeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick cross-system property test")
	}
	sys := buildAll(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := &query.Request{}
		if r.Intn(2) == 0 {
			lo, hi := datagen.Selectivity(sys.data, 0.02+r.Float64()*0.4, seed, 512)
			req.VC = &binning.ValueConstraint{Min: lo, Max: hi}
		}
		if r.Intn(2) == 0 || req.VC == nil {
			x0, y0 := r.Intn(40), r.Intn(32)
			sc, err := grid.NewRegion([]int{x0, y0}, []int{x0 + 1 + r.Intn(48-x0-1), y0 + 1 + r.Intn(40-y0-1)})
			if err != nil {
				return false
			}
			req.SC = &sc
		}
		want := bruteForce(sys.data, sys.shape, req)
		for _, st := range sys.mloc[:1] {
			res, err := st.Query(req, 1+r.Intn(6))
			if err != nil || len(res.Matches) != len(want) {
				return false
			}
			for i := range want {
				if res.Matches[i] != want[i] {
					return false
				}
			}
		}
		res, err := sys.seq.Query(req, 2)
		if err != nil || len(res.Matches) != len(want) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	// The same query on a freshly reset store must report identical
	// virtual I/O time every run — the experiment harness's core
	// assumption (CPU components are measured and may vary; I/O is the
	// simulated part and must not).
	sys := buildAll(t)
	st := sys.mloc[0]
	lo, hi := datagen.Selectivity(sys.data, 0.05, 41, 1024)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	req := &query.Request{VC: &vc, IndexOnly: true}
	var first float64
	for i := 0; i < 5; i++ {
		st.fs.ResetStats()
		res, err := st.Query(req, 4)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Time.IO
			continue
		}
		if res.Time.IO != first {
			t.Fatalf("run %d: IO %v != first run %v (virtual time not deterministic)", i, res.Time.IO, first)
		}
	}
}
