package core

import (
	"testing"

	"mloc/internal/bitmap"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

// buildMultiVarStores builds MLOC stores for all S3D-like variables on
// one shared PFS.
func buildMultiVarStores(t *testing.T) (map[string]*Store, *datagen.Dataset) {
	t.Helper()
	d := datagen.S3DLike(12, 7)
	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig([]int{6, 6, 6})
	cfg.NumBins = 8
	cfg.SampleSize = 512
	stores := make(map[string]*Store, len(d.Vars))
	for _, v := range d.Vars {
		st, err := Build(fs, pfs.NewClock(), "mv/"+v.Name, d.Shape, v.Data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stores[v.Name] = st
	}
	return stores, d
}

func TestMultiVarQueryMatchesBruteForce(t *testing.T) {
	stores, d := buildMultiVarStores(t)
	temp, _ := d.Var("temp")
	vu, _ := d.Var("vu")

	// "vu where temp in hot range" — the paper's humidity/temperature
	// example shape.
	lo, hi := datagen.Selectivity(temp.Data, 0.15, 3, 2048)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	req := MultiVarRequest{
		Select:    query.Request{VC: &vc},
		FetchVars: []string{"vu"},
	}
	res, err := MultiVarQuery(stores, "temp", req, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Brute force: positions where temp satisfies vc; fetch vu there.
	var want []query.Match
	for i, tv := range temp.Data {
		if vc.Contains(tv) {
			want = append(want, query.Match{Index: int64(i), Value: vu.Data[i]})
		}
	}
	got := res.Values["vu"]
	if len(got) != len(want) {
		t.Fatalf("fetched %d vu values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vu match %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if res.Positions.Count() != int64(len(want)) {
		t.Fatalf("position bitmap has %d bits, want %d", res.Positions.Count(), len(want))
	}
}

func TestMultiVarWithSpatialConstraint(t *testing.T) {
	stores, d := buildMultiVarStores(t)
	temp, _ := d.Var("temp")
	vv, _ := d.Var("vv")
	lo, hi := datagen.Selectivity(temp.Data, 0.3, 5, 2048)
	vc := binning.ValueConstraint{Min: lo, Max: hi}
	sc, _ := grid.NewRegion([]int{0, 0, 0}, []int{6, 12, 12})
	req := MultiVarRequest{
		Select:    query.Request{VC: &vc, SC: &sc},
		FetchVars: []string{"vv", "vw"},
	}
	res, err := MultiVarQuery(stores, "temp", req, 2)
	if err != nil {
		t.Fatal(err)
	}
	coords := make([]int, 3)
	var want []query.Match
	for i, tv := range temp.Data {
		coords = d.Shape.Coords(int64(i), coords[:0])
		if vc.Contains(tv) && sc.Contains(coords) {
			want = append(want, query.Match{Index: int64(i), Value: vv.Data[i]})
		}
	}
	got := res.Values["vv"]
	if len(got) != len(want) {
		t.Fatalf("fetched %d vv values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vv match %d mismatch", i)
		}
	}
	if len(res.Values["vw"]) != len(want) {
		t.Fatal("vw fetch count differs")
	}
}

func TestMultiVarValidation(t *testing.T) {
	stores, _ := buildMultiVarStores(t)
	if _, err := MultiVarQuery(stores, "nope", MultiVarRequest{}, 1); err == nil {
		t.Error("unknown select variable accepted")
	}
	req := MultiVarRequest{FetchVars: []string{"nope"}}
	if _, err := MultiVarQuery(stores, "temp", req, 1); err == nil {
		t.Error("unknown fetch variable accepted")
	}
}

func TestFetchAtValidation(t *testing.T) {
	stores, _ := buildMultiVarStores(t)
	st := stores["temp"]
	short := newBitmapOfLen(10)
	if _, err := st.FetchAt(short, 1); err == nil {
		t.Error("wrong-length bitmap accepted")
	}
	ok := newBitmapOfLen(st.Shape().Elems())
	if _, err := st.FetchAt(ok, 0); err == nil {
		t.Error("ranks=0 accepted")
	}
	res, err := st.FetchAt(ok, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Error("empty bitmap fetched matches")
	}
}

func TestFetchAtReadsOnlyHitChunks(t *testing.T) {
	stores, d := buildMultiVarStores(t)
	st := stores["vu"]
	bm := newBitmapOfLen(st.Shape().Elems())
	// One position -> one chunk's units at most (per bin).
	bm.Set(0)
	res, err := st.FetchAt(bm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].Index != 0 {
		t.Fatalf("matches = %+v", res.Matches)
	}
	vu, _ := d.Var("vu")
	if res.Matches[0].Value != vu.Data[0] {
		t.Fatal("wrong fetched value")
	}
	// The single hit chunk has at most NumBins units; only the unit
	// containing position 0 needs its data read.
	if res.BlocksRead < 1 || res.BlocksRead > st.NumBins() {
		t.Fatalf("BlocksRead = %d out of expected range", res.BlocksRead)
	}
}

func newBitmapOfLen(n int64) *bitmap.Bitmap { return bitmap.New(n) }
