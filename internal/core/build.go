package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/plod"
	"mloc/internal/sfc"
)

// Build ingests one variable through the MLOC multi-level pipeline and
// writes the per-bin subfiles plus metadata to the PFS under prefix.
// PFS write time is charged to clk; compression CPU time is measured
// and added to the same clock, reproducing the paper's in-situ
// processing-pipeline accounting.
func Build(fs *pfs.Sim, clk *pfs.Clock, prefix string, shape grid.Shape, data []float64, cfg Config) (*Store, error) {
	return BuildWithSample(fs, clk, prefix, shape, data, nil, cfg)
}

// BuildWithSample is Build with an explicit binning sample: the
// equal-frequency boundaries are estimated from sample instead of from
// data itself. Passing a synthetic sample changes the effective binning
// strategy (the binning ablation feeds a uniform ramp to obtain
// equal-width bins); passing nil samples from data.
func BuildWithSample(fs *pfs.Sim, clk *pfs.Clock, prefix string, shape grid.Shape, data, sample []float64, cfg Config) (*Store, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if int64(len(data)) != shape.Elems() {
		return nil, fmt.Errorf("core: %d values for shape %v", len(data), shape)
	}
	if prefix == "" {
		return nil, fmt.Errorf("core: empty prefix")
	}
	chunks, err := grid.NewChunking(shape, cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	curve, err := newChunkCurve(cfg.Curve, chunks)
	if err != nil {
		return nil, err
	}
	order := chunkStorageOrder(chunks, curve)

	// Level V: equal-frequency bin boundaries from a sample (paper
	// §IV-A1: boundaries from partial data, applied to the whole).
	if sample == nil {
		sample = datagen.Sample(data, cfg.SampleSize, 1)
	}
	scheme, err := binning.Build(binning.EqualFrequency, sample, cfg.NumBins)
	if err != nil {
		return nil, err
	}

	nbins := scheme.NumBins()
	perBin := make([][]rawUnit, nbins)

	// Pass 1: chunk the data (level S boundary definition), bin each
	// chunk's points (level V membership).
	cpu0 := time.Now()
	var chunkBuf []float64
	// The header arrays are reused across chunks; the per-bin slices
	// they point at escape into rawUnits, so they reset to nil (not
	// [:0]) each iteration.
	local := make([][]int32, nbins)
	localV := make([][]float64, nbins)
	for _, chunkID := range order {
		chunkBuf = chunks.ExtractChunk(data, chunkID, chunkBuf[:0])
		for b := range local {
			local[b], localV[b] = nil, nil
		}
		for off, v := range chunkBuf {
			b := scheme.BinOf(v)
			local[b] = append(local[b], int32(off))
			localV[b] = append(localV[b], v)
		}
		for b := 0; b < nbins; b++ {
			if len(local[b]) == 0 {
				continue
			}
			perBin[b] = append(perBin[b], rawUnit{chunkID: chunkID, offsets: local[b], values: localV[b]})
		}
	}
	clk.AdvanceBy(time.Since(cpu0).Seconds())

	// Pass 2: encode each bin's units (levels M + compression), lay out
	// the bin files per the configured order, and write them.
	meta := &storeMeta{
		shape:      shape.Clone(),
		chunkSize:  append([]int(nil), cfg.ChunkSize...),
		order:      cfg.Order,
		curve:      string(cfg.Curve),
		mode:       cfg.Mode,
		compPlanes: cfg.CompressPlanes,
		binBounds:  append([]float64(nil), scheme.Bounds()...),
		bins:       make([]binMeta, nbins),
	}
	if cfg.Mode == ModePlanes {
		meta.codecName = cfg.ByteCodec.Name()
	} else {
		meta.codecName = cfg.FloatCodec.Name()
	}

	for b := 0; b < nbins; b++ {
		units := perBin[b]
		bm := &meta.bins[b]
		bm.unitByChunk = make(map[int64]int, len(units))

		var indexBuf []byte
		cpuIdx := time.Now()
		bm.units = make([]unitMeta, len(units))
		for j, u := range units {
			um := &bm.units[j]
			um.chunkID = u.chunkID
			um.count = int32(len(u.offsets))
			um.indexOff = int64(len(indexBuf))
			prev := int32(0)
			for _, off := range u.offsets {
				indexBuf = binary.AppendUvarint(indexBuf, uint64(off-prev))
				prev = off
			}
			um.indexLen = int64(len(indexBuf)) - um.indexOff
			bm.unitByChunk[u.chunkID] = j
		}
		clk.AdvanceBy(time.Since(cpuIdx).Seconds())

		var dataBuf []byte
		switch cfg.Mode {
		case ModePlanes:
			dataBuf, err = encodePlanesBin(bm, units, cfg, clk)
		case ModeFloats:
			dataBuf, err = encodeFloatsBin(bm, units, cfg, clk)
		}
		if err != nil {
			return nil, fmt.Errorf("core: bin %d: %w", b, err)
		}
		bm.dataSize = int64(len(dataBuf))
		bm.indexSize = int64(len(indexBuf))

		if err := fs.WriteFile(clk, binDataPath(prefix, b), dataBuf); err != nil {
			return nil, err
		}
		if err := fs.WriteFile(clk, binIndexPath(prefix, b), indexBuf); err != nil {
			return nil, err
		}
	}

	metaBytes := meta.marshal()
	if err := fs.WriteFile(clk, metaPath(prefix), metaBytes); err != nil {
		return nil, err
	}
	return newStore(fs, prefix, meta, cfg.ByteCodec, cfg.FloatCodec, cfg.Assignment)
}

// rawUnit is a unit's points before encoding: the intra-chunk offsets
// (ascending) and the corresponding values.
type rawUnit struct {
	chunkID int64
	offsets []int32
	values  []float64
}

// encodePlanesBin encodes the units' values as PLoD byte planes and
// lays them out plane-major (V-M-S) or chunk-major (V-S-M), recording
// piece locations into the unit metadata.
func encodePlanesBin(bm *binMeta, units []rawUnit, cfg Config, clk *pfs.Clock) ([]byte, error) {
	// Encode all pieces first.
	pieces := make([][plod.NumPlanes][]byte, len(units))
	cpu0 := time.Now()
	for j, u := range units {
		planes := plod.Split(u.values)
		for p := 0; p < plod.NumPlanes; p++ {
			if p < cfg.CompressPlanes {
				enc, err := cfg.ByteCodec.EncodeBytes(planes[p])
				if err != nil {
					return nil, err
				}
				// Store whichever form is smaller; tiny or
				// incompressible pieces would otherwise inflate.
				if len(enc) < len(planes[p]) {
					pieces[j][p] = enc
				} else {
					pieces[j][p] = planes[p]
					bm.units[j].rawPlanes |= 1 << uint(p)
				}
			} else {
				pieces[j][p] = planes[p]
			}
		}
		bm.units[j].pieceOff = make([]int64, plod.NumPlanes)
		bm.units[j].pieceLen = make([]int64, plod.NumPlanes)
	}
	clk.AdvanceBy(time.Since(cpu0).Seconds())

	var dataBuf []byte
	if cfg.Order.PlanesBeforeChunks() {
		// V-M-S: all plane-0 pieces (chunks in curve order), then all
		// plane-1 pieces, ... — PLoD-level reads are contiguous.
		for p := 0; p < plod.NumPlanes; p++ {
			for j := range units {
				bm.units[j].pieceOff[p] = int64(len(dataBuf))
				bm.units[j].pieceLen[p] = int64(len(pieces[j][p]))
				dataBuf = append(dataBuf, pieces[j][p]...)
			}
		}
	} else {
		// V-S-M: each chunk's planes together — full-precision chunk
		// reads are contiguous.
		for j := range units {
			for p := 0; p < plod.NumPlanes; p++ {
				bm.units[j].pieceOff[p] = int64(len(dataBuf))
				bm.units[j].pieceLen[p] = int64(len(pieces[j][p]))
				dataBuf = append(dataBuf, pieces[j][p]...)
			}
		}
	}
	return dataBuf, nil
}

// encodeFloatsBin encodes units with the float codec, one piece each,
// in chunk curve order.
func encodeFloatsBin(bm *binMeta, units []rawUnit, cfg Config, clk *pfs.Clock) ([]byte, error) {
	var dataBuf []byte
	cpu0 := time.Now()
	for j, u := range units {
		enc, err := cfg.FloatCodec.EncodeFloats(u.values)
		if err != nil {
			return nil, err
		}
		bm.units[j].pieceOff = []int64{int64(len(dataBuf))}
		bm.units[j].pieceLen = []int64{int64(len(enc))}
		dataBuf = append(dataBuf, enc...)
	}
	clk.AdvanceBy(time.Since(cpu0).Seconds())
	return dataBuf, nil
}

// newChunkCurve builds the configured curve sized for the chunk grid.
func newChunkCurve(kind sfc.CurveKind, chunks *grid.Chunking) (sfc.Curve, error) {
	gridShape := chunks.GridShape()
	maxSide := 0
	for _, s := range gridShape {
		if s > maxSide {
			maxSide = s
		}
	}
	return sfc.NewCurve(kind, gridShape.Dims(), sfc.OrderFor(uint64(maxSide)))
}

// chunkStorageOrder returns all chunk ids sorted by curve index — the
// level-S storage order within each bin.
func chunkStorageOrder(chunks *grid.Chunking, curve sfc.Curve) []int64 {
	gridShape := chunks.GridShape()
	n := chunks.NumChunks()
	type kv struct {
		key uint64
		id  int64
	}
	entries := make([]kv, n)
	coords := make([]int, 0, gridShape.Dims())
	ucoords := make([]uint32, gridShape.Dims())
	for id := int64(0); id < n; id++ {
		coords = gridShape.Coords(id, coords[:0])
		for d, c := range coords {
			ucoords[d] = uint32(c)
		}
		entries[id] = kv{key: curve.Index(ucoords), id: id}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].key < entries[b].key })
	out := make([]int64, n)
	for i, e := range entries {
		out[i] = e.id
	}
	return out
}

func binDataPath(prefix string, bin int) string {
	return fmt.Sprintf("%s/bin%04d/data", prefix, bin)
}

func binIndexPath(prefix string, bin int) string {
	return fmt.Sprintf("%s/bin%04d/index", prefix, bin)
}

func metaPath(prefix string) string { return prefix + "/meta" }
