package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mloc/internal/binning"
	"mloc/internal/compress"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/obs"
	"mloc/internal/pfs"
	"mloc/internal/plod"
	"mloc/internal/sfc"
)

// Build ingests one variable through the MLOC multi-level pipeline and
// writes the per-bin subfiles plus metadata to the PFS under prefix.
// PFS write time is charged to clk; compression CPU time is measured
// and added to the same clock, reproducing the paper's in-situ
// processing-pipeline accounting.
//
// Both passes fan out over Config.BuildWorkers workers (pass 1 over
// chunks, pass 2 over bins) while committing results in deterministic
// storage order, so the produced store is byte-identical for every
// worker count. Measured compute is aggregated across workers and
// charged as total/workers wall-equivalent, keeping the virtual-clock
// pipeline timings meaningful (DESIGN.md cost-model notes).
func Build(fs *pfs.Sim, clk *pfs.Clock, prefix string, shape grid.Shape, data []float64, cfg Config) (*Store, error) {
	return BuildWithSampleContext(context.Background(), fs, clk, prefix, shape, data, nil, cfg)
}

// BuildContext is Build under a context. The context carries the span
// for tracing (obs.StartSpan): when it holds an active span, the build
// records per-pass, per-worker, and per-bin child spans whose virtual
// times explain the AdvanceParallel charging. Cancellation is observed
// between bin commits in pass 2; a pass already fanned out runs its
// in-flight work to completion.
func BuildContext(ctx context.Context, fs *pfs.Sim, clk *pfs.Clock, prefix string, shape grid.Shape, data []float64, cfg Config) (*Store, error) {
	return BuildWithSampleContext(ctx, fs, clk, prefix, shape, data, nil, cfg)
}

// BuildWithSample is Build with an explicit binning sample: the
// equal-frequency boundaries are estimated from sample instead of from
// data itself. Passing a synthetic sample changes the effective binning
// strategy (the binning ablation feeds a uniform ramp to obtain
// equal-width bins); passing nil samples from data.
func BuildWithSample(fs *pfs.Sim, clk *pfs.Clock, prefix string, shape grid.Shape, data, sample []float64, cfg Config) (*Store, error) {
	return BuildWithSampleContext(context.Background(), fs, clk, prefix, shape, data, sample, cfg)
}

// BuildWithSampleContext is BuildWithSample under a context, used for
// span tracing only (see BuildContext).
func BuildWithSampleContext(ctx context.Context, fs *pfs.Sim, clk *pfs.Clock, prefix string, shape grid.Shape, data, sample []float64, cfg Config) (*Store, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if int64(len(data)) != shape.Elems() {
		return nil, fmt.Errorf("core: %d values for shape %v", len(data), shape)
	}
	if prefix == "" {
		return nil, fmt.Errorf("core: empty prefix")
	}
	chunks, err := grid.NewChunking(shape, cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	curve, err := newChunkCurve(cfg.Curve, chunks)
	if err != nil {
		return nil, err
	}
	order := chunkStorageOrder(chunks, curve)

	// Level V: equal-frequency bin boundaries from a sample (paper
	// §IV-A1: boundaries from partial data, applied to the whole).
	if sample == nil {
		sample = datagen.Sample(data, cfg.SampleSize, 1)
	}
	scheme, err := binning.Build(binning.EqualFrequency, sample, cfg.NumBins)
	if err != nil {
		return nil, err
	}
	if cfg.AdaptiveBins {
		// Re-balance against the same sample before committing: the
		// equal-frequency quantiles can leave hot leaves under heavy
		// ties or skew, and a balanced leaf level keeps the super-bin
		// tree's pruning effective.
		adapted, _, aerr := scheme.Adapt(sample, binning.AdaptOptions{MaxBins: 2 * cfg.NumBins})
		if aerr != nil {
			return nil, aerr
		}
		scheme = adapted
	}
	// The sampled boundaries need not cover the full data range, and
	// BinOf clamps out-of-range values into the edge bins — which would
	// let a constraint covering bin 0's (or the last bin's) nominal
	// interval classify it aligned and return the clamped values
	// unfiltered. Widen the outer bounds to the observed extremes so
	// every stored value lies inside its bin's nominal interval.
	lo, hi := dataRange(data)
	scheme = scheme.CoverRange(lo, hi)
	nbins := scheme.NumBins()

	// Pass 1: chunk the data (level S boundary definition), bin each
	// chunk's points (level V membership), fanned out over the worker
	// pool and merged in storage order. The pass span's virtual time is
	// the clock delta actually charged (summed worker CPU divided by the
	// pool width, plus the serial merge); its per-worker child spans
	// carry each worker's raw measured CPU, so the span tree shows both
	// sides of the AdvanceParallel accounting.
	v0 := clk.Now()
	_, binSpan := obs.StartSpan(ctx, "pass_binning")
	perBin := binChunks(clk, fs, chunks, order, data, scheme, nbins, cfg.buildWorkers(), binSpan)
	binSpan.AddVirt(clk.Now() - v0)
	binSpan.SetInt("chunks", int64(len(order)))
	binSpan.End()

	// Pass 2: encode each bin's units (levels M + compression), lay out
	// the bin files per the configured order, and commit them to the
	// PFS in bin order.
	meta := &storeMeta{
		shape:      shape.Clone(),
		chunkSize:  append([]int(nil), cfg.ChunkSize...),
		order:      cfg.Order,
		curve:      string(cfg.Curve),
		mode:       cfg.Mode,
		compPlanes: cfg.CompressPlanes,
		binBounds:  append([]float64(nil), scheme.Bounds()...),
		bins:       make([]binMeta, nbins),
	}
	if cfg.Mode == ModePlanes {
		meta.codecName = cfg.ByteCodec.Name()
	} else {
		meta.codecName = cfg.FloatCodec.Name()
	}

	nw := cfg.buildWorkers()
	if nw > nbins {
		nw = nbins
	}
	if nw < 1 {
		nw = 1
	}
	// Pass 2 span: per-bin child spans carry each bin's raw encode CPU
	// (charged to the clock as cpu/workers) and committed sizes; the
	// pass virtual time is the full clock delta including the writes.
	v1 := clk.Now()
	_, encSpan := obs.StartSpan(ctx, "pass_encode")
	encSpan.SetInt("bins", int64(nbins))
	encSpan.SetInt("workers", int64(nw))
	enc := encodeBins(fs, meta, perBin, cfg, nw)
	for b := 0; b < nbins; b++ {
		if err := ctx.Err(); err != nil {
			encSpan.End()
			return nil, fmt.Errorf("core: build canceled before committing bin %d: %w", b, err)
		}
		e := &enc[b]
		if e.err != nil {
			encSpan.End()
			return nil, fmt.Errorf("core: bin %d: %w", b, e.err)
		}
		clk.AdvanceParallel(e.cpu, nw)
		bm := &meta.bins[b]
		bm.dataSize = int64(len(e.data))
		bm.indexSize = int64(len(e.index))
		if err := fs.WriteFile(clk, binDataPath(prefix, b), e.data); err != nil {
			encSpan.End()
			return nil, err
		}
		if err := fs.WriteFile(clk, binIndexPath(prefix, b), e.index); err != nil {
			encSpan.End()
			return nil, err
		}
		es := encSpan.Event("bin", 0, e.cpu)
		es.SetInt("bin", int64(b))
		es.SetInt("bytes", bm.dataSize+bm.indexSize)
	}
	encSpan.AddVirt(clk.Now() - v1)
	encSpan.End()

	// Optional hierarchical V-level index: super-bin tree bitmaps over
	// the same binned points, built and written serially so the store
	// stays byte-identical across worker counts.
	var vidx *vindex
	if cfg.HierarchicalIndex {
		tree, terr := binning.NewTree(scheme, cfg.IndexFanout)
		if terr != nil {
			return nil, terr
		}
		v2 := clk.Now()
		_, vSpan := obs.StartSpan(ctx, "pass_vindex")
		vidx, err = buildVindex(fs, clk, prefix, tree, shape, chunks, perBin, vSpan)
		if err != nil {
			vSpan.End()
			return nil, err
		}
		vSpan.AddVirt(clk.Now() - v2)
		vSpan.End()
	}

	metaBytes := meta.marshal()
	if err := fs.WriteFile(clk, metaPath(prefix), metaBytes); err != nil {
		return nil, err
	}
	st, err := newStore(fs, prefix, meta, cfg.ByteCodec, cfg.FloatCodec, cfg.Assignment)
	if err != nil {
		return nil, err
	}
	st.vidx = vidx
	return st, nil
}

// rawUnit is a unit's points before encoding: the intra-chunk offsets
// (ascending) and the corresponding values.
type rawUnit struct {
	chunkID int64
	offsets []int32
	values  []float64
}

// dataRange returns the minimum and maximum of data, ignoring NaNs
// (+Inf/-Inf when every value is NaN, which CoverRange then ignores).
func dataRange(data []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// runWorkers runs fn(worker) from n goroutines; n == 1 runs inline so a
// serial build pays no scheduling overhead.
func runWorkers(n int, fn func(w int)) {
	if n <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	work := func(w int) {
		defer wg.Done()
		fn(w)
	}
	for w := 0; w < n; w++ {
		wg.Add(1)
		// The build worker pool is intra-rank compute fan-out, not an
		// SPMD rank: it shares one virtual clock and charges aggregated
		// CPU via AdvanceParallel, so the mpi/stage runtimes don't apply.
		go work(w) //mlocvet:ignore spmd-goroutine -- intra-rank compute fan-out on one clock (see comment above), not an SPMD rank
	}
	wg.Wait()
}

// newSectionTimer returns the compute-measurement function for a pool
// of nw workers. While the workers fit in the host's cores each section
// is timed in place, preserving true concurrency; when oversubscribed,
// sections run serialized under the simulator's measurement mutex so a
// worker's wall-clock sample does not count the others' execution time
// (concurrency was physically impossible anyway). Either way the
// aggregate across workers approximates total CPU, which the caller
// charges as total/workers via Clock.AdvanceParallel.
func newSectionTimer(fs *pfs.Sim, nw int) func(func()) float64 {
	if nw > runtime.GOMAXPROCS(0) {
		return fs.MeasureSection
	}
	return func(fn func()) float64 {
		t0 := time.Now()
		fn()
		return time.Since(t0).Seconds()
	}
}

// binnedChunk is one chunk's pass-1 result: the bins its points fall
// in (ascending) with the per-bin offset and value lists.
type binnedChunk struct {
	bins    []int32
	offsets [][]int32
	values  [][]float64
}

// binChunks runs pass 1: chunks are pulled off a shared counter by the
// worker pool (each worker owning its extraction and per-bin scratch
// arrays), and the per-chunk results are merged into perBin serially in
// storage order, so unit order inside every bin is exactly the serial
// build's. Worker compute is charged to clk as total/workers; the
// cheap serial merge is charged as is.
func binChunks(clk *pfs.Clock, fs *pfs.Sim, chunks *grid.Chunking, order []int64, data []float64, scheme *binning.Scheme, nbins, workers int, sp *obs.Span) [][]rawUnit {
	nw := workers
	if nw > len(order) {
		nw = len(order)
	}
	if nw < 1 {
		nw = 1
	}
	measure := newSectionTimer(fs, nw)
	results := make([]binnedChunk, len(order))
	cpus := make([]float64, nw)
	var next atomic.Int64
	runWorkers(nw, func(w int) {
		// Worker-owned scratch: the header arrays are reused across
		// chunks; the per-bin slices they point at escape into results,
		// so they reset to nil (not [:0]) each iteration.
		var chunkBuf []float64
		local := make([][]int32, nbins)
		localV := make([][]float64, nbins)
		for {
			pos := int(next.Add(1)) - 1
			if pos >= len(order) {
				break
			}
			cpus[w] += measure(func() {
				chunkID := order[pos]
				chunkBuf = chunks.ExtractChunk(data, chunkID, chunkBuf[:0])
				for b := range local {
					local[b], localV[b] = nil, nil
				}
				for off, v := range chunkBuf {
					b := scheme.BinOf(v)
					local[b] = append(local[b], int32(off))
					localV[b] = append(localV[b], v)
				}
				rc := &results[pos]
				for b := 0; b < nbins; b++ {
					if len(local[b]) == 0 {
						continue
					}
					rc.bins = append(rc.bins, int32(b))
					rc.offsets = append(rc.offsets, local[b])
					rc.values = append(rc.values, localV[b])
				}
			})
		}
	})
	var total float64
	for w, c := range cpus {
		total += c
		ws := sp.Event("worker", 0, c)
		ws.SetInt("worker", int64(w))
	}
	sp.SetInt("workers", int64(nw))
	clk.AdvanceParallel(total, nw)

	t0 := time.Now()
	perBin := make([][]rawUnit, nbins)
	for pos, chunkID := range order {
		rc := &results[pos]
		for k, b := range rc.bins {
			perBin[b] = append(perBin[b], rawUnit{chunkID: chunkID, offsets: rc.offsets[k], values: rc.values[k]})
		}
	}
	clk.AdvanceBy(time.Since(t0).Seconds())
	return perBin
}

// encodedBin is one bin's pass-2 result, produced by a worker and
// committed by the caller in bin order.
type encodedBin struct {
	index []byte
	data  []byte
	cpu   float64
	err   error
}

// encodeBins runs pass 2: bins are pulled off a shared counter and
// encoded concurrently — positional index, PLoD split, plane-piece
// compression, and layout all happen worker-side with pooled scratch —
// leaving only the deterministic in-order commit to the caller. On the
// first error remaining bins are skipped; the caller reports the
// erroring bin with the lowest id (deterministic because bins are
// pulled in ascending order).
func encodeBins(fs *pfs.Sim, meta *storeMeta, perBin [][]rawUnit, cfg Config, nw int) []encodedBin {
	measure := newSectionTimer(fs, nw)
	out := make([]encodedBin, len(perBin))
	var next atomic.Int64
	var failed atomic.Bool
	runWorkers(nw, func(int) {
		sc := encodeScratchPool.Get().(*encodeScratch)
		defer encodeScratchPool.Put(sc)
		for {
			b := int(next.Add(1)) - 1
			if b >= len(perBin) {
				break
			}
			if failed.Load() {
				continue
			}
			e := &out[b]
			e.cpu = measure(func() {
				bm := &meta.bins[b]
				units := perBin[b]
				e.index = encodeBinIndex(bm, units)
				switch cfg.Mode {
				case ModePlanes:
					e.data, e.err = encodePlanesBin(bm, units, cfg, sc)
				case ModeFloats:
					e.data, e.err = encodeFloatsBin(bm, units, cfg)
				}
			})
			if e.err != nil {
				failed.Store(true)
			}
		}
	})
	return out
}

// encodeScratch is one encode worker's reusable state: the PLoD split
// buffers plus the piece-staging arena.
type encodeScratch struct {
	split plod.SplitScratch
	arena []byte
	exts  []pieceExtent
}

// pieceExtent locates one staged piece inside the scratch arena.
type pieceExtent struct {
	off, n int
}

var encodeScratchPool = sync.Pool{New: func() any { return new(encodeScratch) }}

// encodePlanesBin encodes the units' values as PLoD byte planes and
// lays them out plane-major (V-M-S) or chunk-major (V-S-M), recording
// piece locations into the unit metadata. Pieces are staged into the
// scratch arena in (unit, plane) order — compressed pieces are encoded
// straight into it, and the split planes never escape the scratch — so
// the only allocations left are the exactly-sized output buffer and the
// per-bin piece-extent slab.
func encodePlanesBin(bm *binMeta, units []rawUnit, cfg Config, sc *encodeScratch) ([]byte, error) {
	arena := sc.arena[:0]
	exts := sc.exts[:0]
	defer func() {
		sc.arena, sc.exts = arena, exts
	}()
	slab := make([]int64, 2*len(units)*plod.NumPlanes)
	for j, u := range units {
		planes := sc.split.Split(u.values)
		for p := 0; p < plod.NumPlanes; p++ {
			mark := len(arena)
			if p < cfg.CompressPlanes {
				var err error
				arena, err = compress.AppendBytes(cfg.ByteCodec, arena, planes[p])
				if err != nil {
					return nil, err
				}
				// Store whichever form is smaller; tiny or
				// incompressible pieces would otherwise inflate.
				if len(arena)-mark >= len(planes[p]) {
					arena = append(arena[:mark], planes[p]...)
					bm.units[j].rawPlanes |= 1 << uint(p)
				}
			} else {
				arena = append(arena, planes[p]...)
			}
			exts = append(exts, pieceExtent{off: mark, n: len(arena) - mark})
		}
		lo := 2 * j * plod.NumPlanes
		bm.units[j].pieceOff = slab[lo : lo+plod.NumPlanes : lo+plod.NumPlanes]
		bm.units[j].pieceLen = slab[lo+plod.NumPlanes : lo+2*plod.NumPlanes : lo+2*plod.NumPlanes]
	}

	dataBuf := make([]byte, 0, len(arena))
	if cfg.Order.PlanesBeforeChunks() {
		// V-M-S: all plane-0 pieces (chunks in curve order), then all
		// plane-1 pieces, ... — PLoD-level reads are contiguous.
		for p := 0; p < plod.NumPlanes; p++ {
			for j := range units {
				e := exts[j*plod.NumPlanes+p]
				bm.units[j].pieceOff[p] = int64(len(dataBuf))
				bm.units[j].pieceLen[p] = int64(e.n)
				dataBuf = append(dataBuf, arena[e.off:e.off+e.n]...)
			}
		}
	} else {
		// V-S-M: each chunk's planes together — full-precision chunk
		// reads are contiguous.
		for j := range units {
			for p := 0; p < plod.NumPlanes; p++ {
				e := exts[j*plod.NumPlanes+p]
				bm.units[j].pieceOff[p] = int64(len(dataBuf))
				bm.units[j].pieceLen[p] = int64(e.n)
				dataBuf = append(dataBuf, arena[e.off:e.off+e.n]...)
			}
		}
	}
	return dataBuf, nil
}

// encodeFloatsBin encodes units with the float codec, one piece each,
// in chunk curve order, appending every piece directly into the bin's
// data buffer.
func encodeFloatsBin(bm *binMeta, units []rawUnit, cfg Config) ([]byte, error) {
	var dataBuf []byte
	slab := make([]int64, 2*len(units))
	for j, u := range units {
		mark := len(dataBuf)
		var err error
		dataBuf, err = compress.AppendFloats(cfg.FloatCodec, dataBuf, u.values)
		if err != nil {
			return nil, err
		}
		bm.units[j].pieceOff = slab[2*j : 2*j+1 : 2*j+1]
		bm.units[j].pieceLen = slab[2*j+1 : 2*j+2 : 2*j+2]
		bm.units[j].pieceOff[0] = int64(mark)
		bm.units[j].pieceLen[0] = int64(len(dataBuf) - mark)
	}
	return dataBuf, nil
}

// newChunkCurve builds the configured curve sized for the chunk grid.
func newChunkCurve(kind sfc.CurveKind, chunks *grid.Chunking) (sfc.Curve, error) {
	gridShape := chunks.GridShape()
	maxSide := 0
	for _, s := range gridShape {
		if s > maxSide {
			maxSide = s
		}
	}
	return sfc.NewCurve(kind, gridShape.Dims(), sfc.OrderFor(uint64(maxSide)))
}

// chunkStorageOrder returns all chunk ids sorted by curve index — the
// level-S storage order within each bin.
func chunkStorageOrder(chunks *grid.Chunking, curve sfc.Curve) []int64 {
	gridShape := chunks.GridShape()
	n := chunks.NumChunks()
	type kv struct {
		key uint64
		id  int64
	}
	entries := make([]kv, n)
	coords := make([]int, 0, gridShape.Dims())
	ucoords := make([]uint32, gridShape.Dims())
	for id := int64(0); id < n; id++ {
		coords = gridShape.Coords(id, coords[:0])
		for d, c := range coords {
			ucoords[d] = uint32(c)
		}
		entries[id] = kv{key: curve.Index(ucoords), id: id}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].key < entries[b].key })
	out := make([]int64, n)
	for i, e := range entries {
		out[i] = e.id
	}
	return out
}

func binDataPath(prefix string, bin int) string {
	return fmt.Sprintf("%s/bin%04d/data", prefix, bin)
}

func binIndexPath(prefix string, bin int) string {
	return fmt.Sprintf("%s/bin%04d/index", prefix, bin)
}

func metaPath(prefix string) string { return prefix + "/meta" }
