package core

// Failure-injection tests: corrupted or missing store files must
// surface as errors, never as wrong answers or panics.

import (
	"strings"
	"testing"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

// corruptStore builds a small store and returns it with its PFS for
// tampering.
func corruptStore(t *testing.T) (*Store, *pfs.Sim) {
	t.Helper()
	d := datagen.GTSLike(32, 32, 3)
	v, _ := d.Var("phi")
	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig([]int{8, 8})
	cfg.NumBins = 6
	cfg.SampleSize = 256
	st, err := Build(fs, fs.NewClock(), "fi/phi", d.Shape, v.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, fs
}

func anyQuery(t *testing.T, st *Store) error {
	t.Helper()
	vc := binning.ValueConstraint{Min: -1e18, Max: 1e18}
	_, err := st.Query(&query.Request{VC: &vc}, 2)
	return err
}

func TestMissingDataFileErrors(t *testing.T) {
	st, fs := corruptStore(t)
	if err := fs.Delete("fi/phi/bin0002/data"); err != nil {
		t.Fatal(err)
	}
	if err := anyQuery(t, st); err == nil {
		t.Fatal("query succeeded with a deleted bin data file")
	}
}

func TestMissingIndexFileErrors(t *testing.T) {
	st, fs := corruptStore(t)
	if err := fs.Delete("fi/phi/bin0001/index"); err != nil {
		t.Fatal(err)
	}
	if err := anyQuery(t, st); err == nil {
		t.Fatal("query succeeded with a deleted bin index file")
	}
}

func TestTruncatedDataFileErrors(t *testing.T) {
	st, fs := corruptStore(t)
	clk := pfs.NewClock()
	raw, err := fs.ReadFile(clk, "fi/phi/bin0000/data")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(clk, "fi/phi/bin0000/data", raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}
	if err := anyQuery(t, st); err == nil {
		t.Fatal("query succeeded on a truncated data file")
	}
}

func TestCorruptedCompressedPlaneErrors(t *testing.T) {
	st, fs := corruptStore(t)
	clk := pfs.NewClock()
	raw, err := fs.ReadFile(clk, "fi/phi/bin0000/data")
	if err != nil {
		t.Fatal(err)
	}
	// Flip bytes near the start, where the compressed plane-0 pieces
	// live in V-M-S layout.
	mangled := append([]byte(nil), raw...)
	for i := 0; i < len(mangled) && i < 64; i++ {
		mangled[i] ^= 0xA5
	}
	if err := fs.WriteFile(clk, "fi/phi/bin0000/data", mangled); err != nil {
		t.Fatal(err)
	}
	if err := anyQuery(t, st); err == nil {
		t.Fatal("query succeeded on corrupted compressed data")
	}
}

func TestCorruptedIndexStreamErrors(t *testing.T) {
	st, fs := corruptStore(t)
	clk := pfs.NewClock()
	raw, err := fs.ReadFile(clk, "fi/phi/bin0000/index")
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite with continuation-bit garbage so uvarints run past the
	// unit's boundary.
	mangled := append([]byte(nil), raw...)
	for i := range mangled {
		mangled[i] = 0xFF
	}
	if err := fs.WriteFile(clk, "fi/phi/bin0000/index", mangled); err != nil {
		t.Fatal(err)
	}
	if err := anyQuery(t, st); err == nil {
		t.Fatal("query succeeded on corrupted index stream")
	}
}

func TestCorruptedMetaErrors(t *testing.T) {
	_, fs := corruptStore(t)
	clk := pfs.NewClock()
	raw, err := fs.ReadFile(clk, "fi/phi/meta")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     raw[:3],
		"bad-magic": append([]byte{0, 0, 0, 0}, raw[4:]...),
		"truncated": raw[:len(raw)-5],
	}
	for name, data := range cases {
		if err := fs.WriteFile(clk, "fi/phi/meta", data); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(fs, pfs.NewClock(), "fi/phi"); err == nil {
			t.Errorf("%s: Open succeeded on corrupted meta", name)
		}
	}
}

func TestErrorsCarryContext(t *testing.T) {
	st, fs := corruptStore(t)
	if err := fs.Delete("fi/phi/bin0000/data"); err != nil {
		t.Fatal(err)
	}
	err := anyQuery(t, st)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "bin0000") {
		t.Errorf("error %q does not name the failing file", err)
	}
}

func TestQueryAfterOtherBinCorruptionStillWorksWhenUntouched(t *testing.T) {
	// Corruption in bin 5 must not affect queries that never select it.
	st, fs := corruptStore(t)
	if err := fs.Delete("fi/phi/bin0005/data"); err != nil {
		t.Fatal(err)
	}
	bounds := st.Scheme().Bounds()
	// A VC entirely inside bin 0.
	vc := binning.ValueConstraint{Min: bounds[0], Max: (bounds[0] + bounds[1]) / 2}
	res, err := st.Query(&query.Request{VC: &vc}, 2)
	if err != nil {
		t.Fatalf("query on healthy bin failed: %v", err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("expected matches in bin 0")
	}
	// And an SC-only probe that avoids bin 5 entirely is impossible to
	// guarantee, so no assertion there — the point is isolation above.
	_ = grid.Shape{}
}
