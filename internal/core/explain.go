package core

import (
	"fmt"
	"io"
	"strings"

	"mloc/internal/plod"
	"mloc/internal/query"
)

// Plan describes how the engine would execute a request, without
// touching the PFS — the EXPLAIN of the MLOC query engine. It exposes
// the bin/chunk selection and the I/O the layout implies, which is what
// the layout-optimization levels exist to minimize.
type Plan struct {
	// Order is the store's level priority order.
	Order Order
	// AlignedBins and MisalignedBins are the VC-selected bin counts;
	// unconstrained requests select every bin as aligned.
	AlignedBins, MisalignedBins int
	// ChunksSelected is the number of chunks the SC maps to (all chunks
	// when unconstrained).
	ChunksSelected int64
	// Units is the number of (bin, chunk) storage units touched.
	Units int
	// UnitsWithData is how many of those need their data pieces read
	// (the rest are answered from the positional index alone).
	UnitsWithData int
	// PlanesRead is the PLoD plane count fetched per data unit (planes
	// mode; 1 in floats mode).
	PlanesRead int
	// IndexBytes and DataBytes estimate the I/O volume from the unit
	// metadata (exact, gap-merging aside).
	IndexBytes, DataBytes int64
	// Points is the total point count inside the touched units — the
	// upper bound on matches before VC/SC filtering.
	Points int64
}

// Explain plans a request against the store without executing it.
func (s *Store) Explain(req *query.Request) (*Plan, error) {
	if err := req.Validate(s.meta.shape); err != nil {
		return nil, err
	}
	level := req.PLoDLevel
	if level == 0 {
		level = plod.MaxLevel
	}
	if s.meta.mode == ModeFloats && level != plod.MaxLevel {
		return nil, fmt.Errorf("core: store mode %q does not support PLoD level %d", s.meta.mode, level)
	}
	tasks, _ := s.planTasks(req)

	p := &Plan{Order: s.meta.order, PlanesRead: 1}
	if s.meta.mode == ModePlanes {
		p.PlanesRead = plod.PlanesForLevel(level)
	}
	if req.VC != nil {
		aligned, mis := s.scheme.SelectBins(*req.VC)
		p.AlignedBins, p.MisalignedBins = len(aligned), len(mis)
	} else {
		p.AlignedBins = s.NumBins()
	}
	if req.SC != nil {
		p.ChunksSelected = int64(len(s.chunks.OverlappingChunks(*req.SC)))
	} else {
		p.ChunksSelected = s.chunks.NumChunks()
	}
	for _, t := range tasks {
		u := &s.meta.bins[t.bin].units[t.unit]
		p.Units++
		p.Points += int64(u.count)
		p.IndexBytes += u.indexLen
		if t.needData {
			p.UnitsWithData++
			if s.meta.mode == ModePlanes {
				for pl := 0; pl < p.PlanesRead; pl++ {
					p.DataBytes += u.pieceLen[pl]
				}
			} else {
				p.DataBytes += u.pieceLen[0]
			}
		}
	}
	return p, nil
}

// String renders a human-readable plan.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan (order %s):\n", p.Order)
	fmt.Fprintf(&sb, "  bins: %d aligned, %d misaligned\n", p.AlignedBins, p.MisalignedBins)
	fmt.Fprintf(&sb, "  chunks selected: %d\n", p.ChunksSelected)
	fmt.Fprintf(&sb, "  units: %d touched, %d with data reads (%d planes each)\n",
		p.Units, p.UnitsWithData, p.PlanesRead)
	fmt.Fprintf(&sb, "  est. I/O: %d index bytes + %d data bytes over %d candidate points\n",
		p.IndexBytes, p.DataBytes, p.Points)
	return sb.String()
}

// Render writes the human-readable plan to w.
func (p *Plan) Render(w io.Writer) error {
	_, err := io.WriteString(w, p.String())
	return err
}
