package core

import (
	"fmt"
	"io"
	"strings"

	"mloc/internal/plod"
	"mloc/internal/query"
)

// Plan describes how the engine would execute a request, without
// touching the PFS — the EXPLAIN of the MLOC query engine. It exposes
// the bin/chunk selection and the I/O the layout implies, which is what
// the layout-optimization levels exist to minimize.
type Plan struct {
	// Order is the store's level priority order.
	Order Order
	// AlignedBins and MisalignedBins are the VC-selected bin counts;
	// unconstrained requests select every bin as aligned.
	AlignedBins, MisalignedBins int
	// ChunksSelected is the number of chunks the SC maps to (all chunks
	// when unconstrained).
	ChunksSelected int64
	// Units is the number of (bin, chunk) storage units touched.
	Units int
	// UnitsWithData is how many of those need their data pieces read
	// (the rest are answered from the positional index alone).
	UnitsWithData int
	// PlanesRead is the PLoD plane count fetched per data unit (planes
	// mode; 1 in floats mode).
	PlanesRead int
	// IndexBytes and DataBytes estimate the I/O volume from the unit
	// metadata (exact, gap-merging aside).
	IndexBytes, DataBytes int64
	// Points is the total point count inside the touched units — the
	// upper bound on matches before VC/SC filtering.
	Points int64
	// Hierarchical reports whether the request takes the super-bin tree
	// path (vindex present, VC set, index-only).
	Hierarchical bool
	// BinsPruned, BinsCovered, and IndexNodes are the planner's tree
	// classification on the hierarchical path: leaves ruled out without
	// any read, leaves answered wholesale from aggregated node bitmaps,
	// and the node count those reads touch.
	BinsPruned, BinsCovered, IndexNodes int
	// Measured, when non-nil, carries the observed cost breakdown of an
	// actual execution of this plan (set via Observe), so predicted and
	// measured cost sit side by side.
	Measured *MeasuredCost
}

// MeasuredCost is the observed execution breakdown attached to a Plan
// by Observe: the slowest rank's virtual-clock component split plus the
// aggregate I/O and cache behavior.
type MeasuredCost struct {
	// IOSeconds, DecompressSeconds, and ReconstructSeconds are the
	// slowest rank's virtual-clock components (the reported latency).
	IOSeconds, DecompressSeconds, ReconstructSeconds float64
	// BytesRead is the total PFS traffic across ranks.
	BytesRead int64
	// BlocksRead is the number of units actually decoded.
	BlocksRead int
	// CacheHits counts units served from the decode cache.
	CacheHits int
	// Matches is the result cardinality.
	Matches int
	// BinsPruned and BinsCovered are the hierarchical index's measured
	// pruning factors (zero on flat scans); IndexNodesRead counts the
	// aggregated node bitmaps actually fetched.
	BinsPruned, BinsCovered, IndexNodesRead int
}

// TotalSeconds returns the summed component seconds.
func (m *MeasuredCost) TotalSeconds() float64 {
	return m.IOSeconds + m.DecompressSeconds + m.ReconstructSeconds
}

// String renders the measured section exactly as it appears inside
// Plan.String, so callers can print it on its own after Observe.
func (m *MeasuredCost) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  measured: %.6fs virtual (io %.6fs, decompress %.6fs, reconstruct %.6fs)\n",
		m.TotalSeconds(), m.IOSeconds, m.DecompressSeconds, m.ReconstructSeconds)
	fmt.Fprintf(&sb, "  measured I/O: %d bytes, %d blocks decoded, %d cache hits, %d matches\n",
		m.BytesRead, m.BlocksRead, m.CacheHits, m.Matches)
	fmt.Fprintf(&sb, "  pruning: %d bins pruned, %d covered via %d index nodes\n",
		m.BinsPruned, m.BinsCovered, m.IndexNodesRead)
	return sb.String()
}

// Observe attaches a result's measured cost breakdown to the plan, so
// String/Render print predicted-vs-actual in one place.
func (p *Plan) Observe(res *query.Result) {
	if res == nil {
		return
	}
	p.Measured = &MeasuredCost{
		IOSeconds:          res.Time.IO,
		DecompressSeconds:  res.Time.Decompress,
		ReconstructSeconds: res.Time.Reconstruct,
		BytesRead:          res.BytesRead,
		BlocksRead:         res.BlocksRead,
		CacheHits:          res.CacheHits,
		Matches:            len(res.Matches),
		BinsPruned:         res.BinsPruned,
		BinsCovered:        res.BinsCovered,
		IndexNodesRead:     res.IndexNodesRead,
	}
}

// Explain plans a request against the store without executing it.
func (s *Store) Explain(req *query.Request) (*Plan, error) {
	if err := req.Validate(s.meta.shape); err != nil {
		return nil, err
	}
	level := req.PLoDLevel
	if level == 0 {
		level = plod.MaxLevel
	}
	if s.meta.mode == ModeFloats && level != plod.MaxLevel {
		return nil, fmt.Errorf("core: store mode %q does not support PLoD level %d", s.meta.mode, level)
	}
	tasks, _, hier := s.planTasks(req)

	p := &Plan{Order: s.meta.order, PlanesRead: 1}
	if hier != nil {
		p.Hierarchical = true
		p.BinsPruned = hier.PrunedLeaves
		p.BinsCovered = hier.CoveredLeaves
		p.IndexNodes = len(hier.Inside)
		for _, n := range hier.Inside {
			p.IndexBytes += s.vidx.lens[s.vidx.nodeID(n)]
		}
	}
	if s.meta.mode == ModePlanes {
		p.PlanesRead = plod.PlanesForLevel(level)
	}
	if req.VC != nil {
		aligned, mis := s.scheme.SelectBins(*req.VC)
		p.AlignedBins, p.MisalignedBins = len(aligned), len(mis)
	} else {
		p.AlignedBins = s.NumBins()
	}
	if req.SC != nil {
		p.ChunksSelected = int64(len(s.chunks.OverlappingChunks(*req.SC)))
	} else {
		p.ChunksSelected = s.chunks.NumChunks()
	}
	for _, t := range tasks {
		u := &s.meta.bins[t.bin].units[t.unit]
		p.Units++
		p.Points += int64(u.count)
		p.IndexBytes += u.indexLen
		if t.needData {
			p.UnitsWithData++
			if s.meta.mode == ModePlanes {
				for pl := 0; pl < p.PlanesRead; pl++ {
					p.DataBytes += u.pieceLen[pl]
				}
			} else {
				p.DataBytes += u.pieceLen[0]
			}
		}
	}
	return p, nil
}

// String renders a human-readable plan.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan (order %s):\n", p.Order)
	fmt.Fprintf(&sb, "  bins: %d aligned, %d misaligned\n", p.AlignedBins, p.MisalignedBins)
	fmt.Fprintf(&sb, "  chunks selected: %d\n", p.ChunksSelected)
	fmt.Fprintf(&sb, "  units: %d touched, %d with data reads (%d planes each)\n",
		p.Units, p.UnitsWithData, p.PlanesRead)
	fmt.Fprintf(&sb, "  est. I/O: %d index bytes + %d data bytes over %d candidate points\n",
		p.IndexBytes, p.DataBytes, p.Points)
	if p.Hierarchical {
		fmt.Fprintf(&sb, "  index tree: %d bins pruned, %d covered via %d aggregated nodes\n",
			p.BinsPruned, p.BinsCovered, p.IndexNodes)
	}
	if p.Measured != nil {
		sb.WriteString(p.Measured.String())
	}
	return sb.String()
}

// Render writes the human-readable plan to w.
func (p *Plan) Render(w io.Writer) error {
	_, err := io.WriteString(w, p.String())
	return err
}
