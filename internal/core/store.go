package core

import (
	"fmt"

	"mloc/internal/binning"
	"mloc/internal/cache"
	"mloc/internal/compress"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/sfc"
)

// Store is a built MLOC variable store: per-bin subfiles on the PFS
// plus in-memory metadata (the catalog). It is safe for concurrent
// queries.
type Store struct {
	fs         *pfs.Sim
	prefix     string
	meta       *storeMeta
	chunks     *grid.Chunking
	scheme     *binning.Scheme
	curve      sfc.Curve
	byteCodec  compress.ByteCodec
	floatCodec compress.FloatCodec
	assignment Assignment
	// decodeCache, when set, shares decoded unit values across queries
	// (and across stores, keyed by prefix). Set via SetDecodeCache.
	decodeCache *cache.Cache
	// hookBeforeBin is a test seam invoked before each bin a rank
	// processes; it lets tests cancel a context mid-query
	// deterministically. Nil outside tests.
	hookBeforeBin func(bin int)
	// vidx is the hierarchical super-bin index; nil for flat stores.
	vidx *vindex
}

// newStore assembles the runtime view over metadata.
func newStore(fs *pfs.Sim, prefix string, meta *storeMeta, bc compress.ByteCodec, fc compress.FloatCodec, assign Assignment) (*Store, error) {
	chunks, err := grid.NewChunking(meta.shape, meta.chunkSize)
	if err != nil {
		return nil, err
	}
	scheme, err := binning.FromBounds(meta.binBounds)
	if err != nil {
		return nil, err
	}
	if scheme.NumBins() != len(meta.bins) {
		return nil, fmt.Errorf("core: meta has %d bins but %d bounds-derived bins",
			len(meta.bins), scheme.NumBins())
	}
	curve, err := newChunkCurve(sfc.CurveKind(meta.curve), chunks)
	if err != nil {
		return nil, err
	}
	if assign == "" {
		assign = AssignColumn
	}
	return &Store{
		fs:         fs,
		prefix:     prefix,
		meta:       meta,
		chunks:     chunks,
		scheme:     scheme,
		curve:      curve,
		byteCodec:  bc,
		floatCodec: fc,
		assignment: assign,
	}, nil
}

// Open loads a previously built store from the PFS, charging the meta
// read to clk. Codecs are reconstructed from the recorded names with
// default parameters.
func Open(fs *pfs.Sim, clk *pfs.Clock, prefix string) (*Store, error) {
	raw, err := fs.ReadFile(clk, metaPath(prefix))
	if err != nil {
		return nil, err
	}
	meta, err := unmarshalStoreMeta(raw)
	if err != nil {
		return nil, err
	}
	var bc compress.ByteCodec
	var fc compress.FloatCodec
	switch meta.mode {
	case ModePlanes:
		bc, err = compress.NewByteCodec(meta.codecName)
	case ModeFloats:
		fc, err = compress.NewFloatCodec(meta.codecName)
	default:
		return nil, fmt.Errorf("core: meta has unknown mode %q", meta.mode)
	}
	if err != nil {
		return nil, err
	}
	st, err := newStore(fs, prefix, meta, bc, fc, AssignColumn)
	if err != nil {
		return nil, err
	}
	// Probe for the hierarchical index subfile; only its header and
	// offset table are read here, node payloads are fetched per query.
	st.vidx, err = openVindex(fs, clk, prefix, st.scheme, st.meta.shape.Elems())
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Shape returns the variable's grid shape.
func (s *Store) Shape() grid.Shape { return s.meta.shape }

// NumBins returns the bin count.
func (s *Store) NumBins() int { return len(s.meta.bins) }

// Order returns the level priority order the store was built with.
func (s *Store) Order() Order { return s.meta.order }

// Mode returns the storage mode.
func (s *Store) Mode() Mode { return s.meta.mode }

// SetDecodeCache attaches a shared decoded-unit cache: data reads and
// decompression are skipped for units whose values are resident, and
// concurrent decodes of the same unit are deduplicated. Pass nil to
// detach. Not safe to call concurrently with running queries (attach
// the cache before serving).
func (s *Store) SetDecodeCache(c *cache.Cache) { s.decodeCache = c }

// Prefix returns the store's PFS path prefix (its identity in the
// shared decode cache).
func (s *Store) Prefix() string { return s.prefix }

// SetAssignment overrides the block-to-rank assignment policy (used by
// the assignment ablation).
func (s *Store) SetAssignment(a Assignment) error {
	if a != AssignColumn && a != AssignRoundRobin {
		return fmt.Errorf("core: unknown assignment %q", a)
	}
	s.assignment = a
	return nil
}

// DataBytes returns the total size of all bin data subfiles.
func (s *Store) DataBytes() int64 {
	var total int64
	for i := range s.meta.bins {
		total += s.meta.bins[i].dataSize
	}
	return total
}

// IndexBytes returns the total index overhead: bin index subfiles plus
// the serialized catalog metadata — everything beyond the data itself,
// matching Table I's "Index size" accounting.
func (s *Store) IndexBytes() int64 {
	var total int64
	for i := range s.meta.bins {
		total += s.meta.bins[i].indexSize
	}
	if sz, err := s.fs.Size(metaPath(s.prefix)); err == nil {
		total += sz
	}
	if s.vidx != nil {
		total += s.vidx.size
	}
	return total
}

// Hierarchical reports whether the store carries a super-bin tree index.
func (s *Store) Hierarchical() bool { return s.vidx != nil }

// TotalBytes returns data + index footprint.
func (s *Store) TotalBytes() int64 { return s.DataBytes() + s.IndexBytes() }

// BinFileSizes returns each bin's (data, index) subfile sizes — the
// subfiling balance diagnostic.
func (s *Store) BinFileSizes() (data, index []int64) {
	data = make([]int64, len(s.meta.bins))
	index = make([]int64, len(s.meta.bins))
	for i := range s.meta.bins {
		data[i] = s.meta.bins[i].dataSize
		index[i] = s.meta.bins[i].indexSize
	}
	return data, index
}

// Scheme exposes the bin boundaries (read-only) for diagnostics.
func (s *Store) Scheme() *binning.Scheme { return s.scheme }
