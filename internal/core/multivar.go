package core

import (
	"context"
	"fmt"
	"time"

	"mloc/internal/bitmap"
	"mloc/internal/mpi"
	"mloc/internal/obs"
	"mloc/internal/pfs"
	"mloc/internal/plod"
	"mloc/internal/query"
)

// MultiVarRequest describes the paper's multi-variable access pattern
// (§III-D4): spatial positions are selected by constraints on one
// variable, then other variables' values are fetched at those
// positions. E.g. "temperature where humidity > 90%".
type MultiVarRequest struct {
	// Select is the request evaluated on the selecting variable; its
	// matches define the position set. It is forced to IndexOnly
	// internally (only positions are needed).
	Select query.Request
	// FetchVars names the variables whose values are returned at the
	// selected positions.
	FetchVars []string
}

// MultiVarResult maps each fetched variable to its matches.
type MultiVarResult struct {
	// Positions is the bitmap of selected linear indices.
	Positions *bitmap.Bitmap
	// Values[var] holds the fetched matches for each requested variable.
	Values map[string][]query.Match
	// Time is the end-to-end component breakdown (selection plus the
	// slowest fetch).
	Time query.Components
	// BytesRead sums PFS traffic across both phases.
	BytesRead int64
}

// MultiVarQuery runs the two-phase multi-variable access across the
// named stores: phase 1 answers the selection as a region-only query on
// selectVar and synchronizes the resulting position bitmap (the paper's
// light-weight bitmap index exchange); phase 2 retrieves each fetch
// variable's values at those positions.
//
// All stores must share one grid shape. It is MultiVarQueryContext
// with a background context.
func MultiVarQuery(stores map[string]*Store, selectVar string, req MultiVarRequest, ranks int) (*MultiVarResult, error) {
	return MultiVarQueryContext(context.Background(), stores, selectVar, req, ranks)
}

// MultiVarQueryContext is MultiVarQuery under a context: cancellation
// propagates into both the selection query and every per-variable
// fetch.
func MultiVarQueryContext(ctx context.Context, stores map[string]*Store, selectVar string, req MultiVarRequest, ranks int) (*MultiVarResult, error) {
	sel, ok := stores[selectVar]
	if !ok {
		return nil, fmt.Errorf("core: unknown selecting variable %q", selectVar)
	}
	for _, fv := range req.FetchVars {
		st, ok := stores[fv]
		if !ok {
			return nil, fmt.Errorf("core: unknown fetch variable %q", fv)
		}
		if !st.Shape().Equal(sel.Shape()) {
			return nil, fmt.Errorf("core: variable %q shape %v differs from %q shape %v",
				fv, st.Shape(), selectVar, sel.Shape())
		}
	}

	// Phase 1: region-only selection. Ranks each produce a partial
	// bitmap; an all-reduce OR synchronizes them (paper: "bitmaps
	// derived by region queries from all processes are synchronized").
	phase1 := req.Select
	phase1.IndexOnly = true
	sctx, ss := obs.StartSpan(ctx, "select")
	ss.SetString("var", selectVar)
	selRes, err := sel.QueryContext(sctx, &phase1, ranks)
	if err != nil {
		ss.End()
		return nil, fmt.Errorf("core: selection on %q: %w", selectVar, err)
	}
	n := sel.Shape().Elems()
	positions := bitmap.New(n)
	for _, m := range selRes.Matches {
		positions.Set(m.Index)
	}
	ss.SetInt("positions", int64(len(selRes.Matches)))
	ss.SetFloat("virt_total_s", selRes.Time.Total())
	ss.End()

	out := &MultiVarResult{
		Positions: positions,
		Values:    make(map[string][]query.Match, len(req.FetchVars)),
		Time:      selRes.Time,
		BytesRead: selRes.BytesRead,
	}

	// Phase 2: value retrieval on each fetch variable at the selected
	// positions. The same index positions apply to every variable
	// because the variables share the grid (paper: "indices derived by
	// the first step can be directly used on other variables").
	var fetchSlowest query.Components
	for _, fv := range req.FetchVars {
		fctx, vs := obs.StartSpan(ctx, "fetch_var")
		vs.SetString("var", fv)
		fRes, err := stores[fv].FetchAtContext(fctx, positions, ranks)
		if err != nil {
			vs.End()
			return nil, fmt.Errorf("core: fetch of %q: %w", fv, err)
		}
		out.Values[fv] = fRes.Matches
		out.BytesRead += fRes.BytesRead
		if fRes.Time.Total() > fetchSlowest.Total() {
			fetchSlowest = fRes.Time
		}
		vs.SetInt("matches", int64(len(fRes.Matches)))
		vs.SetFloat("virt_total_s", fRes.Time.Total())
		vs.End()
	}
	out.Time.Add(fetchSlowest)
	return out, nil
}

// FetchAt retrieves the variable's values at the positions set in the
// bitmap, reading only the storage units that contain selected points.
// It is FetchAtContext with a background context.
func (s *Store) FetchAt(positions *bitmap.Bitmap, ranks int) (*query.Result, error) {
	return s.FetchAtContext(context.Background(), positions, ranks)
}

// FetchAtContext is FetchAt under a context; cancellation is honored at
// every bin boundary, mirroring QueryContext.
func (s *Store) FetchAtContext(ctx context.Context, positions *bitmap.Bitmap, ranks int) (*query.Result, error) {
	if positions.Len() != s.meta.shape.Elems() {
		return nil, fmt.Errorf("core: bitmap length %d != grid %d", positions.Len(), s.meta.shape.Elems())
	}
	if ranks < 1 {
		return nil, fmt.Errorf("core: ranks %d < 1", ranks)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: fetch canceled: %w", err)
	}

	// Determine the chunks containing selected positions.
	chunkHits := make(map[int64]bool)
	coords := make([]int, s.meta.shape.Dims())
	positions.Each(func(i int64) {
		coords = s.meta.shape.Coords(i, coords[:0])
		chunkHits[s.chunks.ChunkIDOf(coords)] = true
	})

	// Build tasks over every bin's units in those chunks (a position's
	// bin is unknown until its index entry is seen, so all bins of a
	// hit chunk are candidates — their per-unit indices are small).
	var tasks []task
	for b := range s.meta.bins {
		bm := &s.meta.bins[b]
		for ui := range bm.units {
			if chunkHits[bm.units[ui].chunkID] {
				tasks = append(tasks, task{bin: b, unit: ui, needData: true})
			}
		}
	}
	perRank := s.assignTasks(tasks, ranks)

	outs := make([]rankOut, ranks)
	clks := s.fs.NewClocks(ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		rctx, rs := obs.StartSpan(ctx, "rank")
		rs.SetInt("rank", int64(c.Rank()))
		rerr := s.fetchRank(rctx, clks[c.Rank()], perRank[c.Rank()], positions, &outs[c.Rank()])
		o := &outs[c.Rank()]
		rs.SetFloat("virt_total_s", o.time.Total())
		rs.SetInt("matches", int64(len(o.matches)))
		rs.SetInt("bytes", o.bytes)
		rs.SetInt("cache_hits", int64(o.cacheHits))
		rs.End()
		return rerr
	})
	if err != nil {
		return nil, err
	}
	res := &query.Result{}
	var slowest float64
	for i := range outs {
		res.Matches = append(res.Matches, outs[i].matches...)
		res.BytesRead += outs[i].bytes
		res.BlocksRead += outs[i].blocks
		res.CacheHits += outs[i].cacheHits
		if t := outs[i].time.Total(); t >= slowest {
			slowest = t
			res.Time = outs[i].time
		}
	}
	res.Sort()
	return res, nil
}

// fetchRank processes a rank's fetch tasks bin by bin; per-bin scratch
// (the coordinate buffers) is shared across bins.
func (s *Store) fetchRank(ctx context.Context, clk *pfs.Clock, tasks []task, positions *bitmap.Bitmap, out *rankOut) error {
	dims := s.meta.shape.Dims()
	local := make([]int, dims)
	global := make([]int, dims)
	for lo := 0; lo < len(tasks); {
		hi := lo + 1
		for hi < len(tasks) && tasks[hi].bin == tasks[lo].bin {
			hi++
		}
		binTasks := tasks[lo:hi]
		lo = hi
		if err := s.fetchBin(ctx, clk, binTasks, positions, local, global, out); err != nil {
			return err
		}
	}
	return nil
}

// fetchBin handles one rank's fetch tasks within a single bin: read the
// unit indices first, and only read data for units that actually
// contain selected positions (and, with a decode cache attached, are
// not already resident).
func (s *Store) fetchBin(ctx context.Context, clk *pfs.Clock, binTasks []task, positions *bitmap.Bitmap, local, global []int, out *rankOut) error {
	bin := binTasks[0].bin
	if s.hookBeforeBin != nil {
		s.hookBeforeBin(bin)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: fetch canceled at bin %d: %w", bin, err)
	}
	_, bs := obs.StartSpan(ctx, "bin")
	defer bs.End()
	bs.SetInt("bin", int64(bin))
	bs.SetInt("units", int64(len(binTasks)))
	before := *out
	dims := s.meta.shape.Dims()
	bm := &s.meta.bins[bin]
	idxPath := binIndexPath(s.prefix, bin)
	dataPath := binDataPath(s.prefix, bin)

	t0 := clk.Now()
	wall0 := time.Now()
	if err := s.fs.Open(clk, idxPath); err != nil {
		return err
	}
	idxExtents := make([]extent, 0, len(binTasks))
	for _, t := range binTasks {
		u := &bm.units[t.unit]
		idxExtents = append(idxExtents, extent{u.indexOff, u.indexLen})
	}
	idxMap, ioBytes, err := readCoalesced(s.fs, clk, idxPath, idxExtents)
	if err != nil {
		return err
	}
	out.bytes += ioBytes
	out.time.IO += clk.Now() - t0

	// Decode indices; keep only units with selected positions. This is
	// reassembly work: offset decoding plus position lookups.
	type hitUnit struct {
		t    task
		hits []int // indices into the unit's point list
		offs []int32
	}
	var hits []hitUnit
	var decodeErr error
	reassemble := clk.MeasureCPU(func() {
		for _, t := range binTasks {
			u := &bm.units[t.unit]
			raw, err := idxMap.slice(u.indexOff, u.indexLen)
			if err != nil {
				decodeErr = err
				return
			}
			offs, err := decodeOffsets(raw, int(u.count))
			if err != nil {
				decodeErr = err
				return
			}
			reg := s.chunks.ChunkRegionByID(u.chunkID)
			var hu hitUnit
			for i, off := range offs {
				localCoords(reg, int64(off), local)
				for d := 0; d < dims; d++ {
					global[d] = reg.Lo[d] + local[d]
				}
				if positions.Get(s.meta.shape.Linear(global)) {
					hu.hits = append(hu.hits, i)
				}
			}
			if hu.hits != nil {
				hu.t = t
				hu.offs = offs
				hits = append(hits, hu)
			}
		}
	})
	out.reassemble += reassemble
	out.time.Reconstruct += reassemble
	if decodeErr != nil {
		return decodeErr
	}
	if len(hits) != 0 {
		// Probe the decode cache: resident units need no data read.
		cached := make([][]float64, len(hits))
		missing := 0
		if s.decodeCache != nil {
			for i, h := range hits {
				if vals, ok := s.decodeCache.Get(s.cacheKey(bin, h.t.unit, plod.MaxLevel)); ok {
					cached[i] = vals
				} else {
					missing++
				}
			}
		} else {
			missing = len(hits)
		}

		// Read data only for hit units the cache could not serve.
		var dataMap *extentMap
		if missing > 0 {
			t1 := clk.Now()
			if err := s.fs.Open(clk, dataPath); err != nil {
				return err
			}
			maxExtents := len(hits)
			if s.meta.mode == ModePlanes {
				maxExtents *= plod.NumPlanes
			}
			dataExtents := make([]extent, 0, maxExtents)
			for i, h := range hits {
				if cached[i] != nil {
					continue
				}
				u := &bm.units[h.t.unit]
				if s.meta.mode == ModePlanes {
					for p := 0; p < plod.NumPlanes; p++ {
						dataExtents = append(dataExtents, extent{u.pieceOff[p], u.pieceLen[p]})
					}
				} else {
					dataExtents = append(dataExtents, extent{u.pieceOff[0], u.pieceLen[0]})
				}
			}
			var ioBytes int64
			var err error
			dataMap, ioBytes, err = readCoalesced(s.fs, clk, dataPath, dataExtents)
			if err != nil {
				return err
			}
			out.bytes += ioBytes
			out.time.IO += clk.Now() - t1
		}

		for i, h := range hits {
			u := &bm.units[h.t.unit]
			values, err := s.unitValues(ctx, clk, h.t, u, plod.MaxLevel, dataMap, cached[i], out)
			if err != nil {
				return err
			}
			reg := s.chunks.ChunkRegionByID(u.chunkID)
			filter := clk.MeasureCPU(func() {
				for _, i := range h.hits {
					localCoords(reg, int64(h.offs[i]), local)
					for d := 0; d < dims; d++ {
						global[d] = reg.Lo[d] + local[d]
					}
					out.matches = append(out.matches, query.Match{
						Index: s.meta.shape.Linear(global),
						Value: values[i],
					})
				}
			})
			out.filter += filter
			out.time.Reconstruct += filter
		}
	}
	bs.Event("fetch", time.Since(wall0), out.time.IO-before.time.IO).
		SetInt("bytes", out.bytes-before.bytes)
	bs.Event("decode", 0, out.time.Decompress-before.time.Decompress).
		SetInt("blocks", int64(out.blocks-before.blocks))
	bs.Event("reassemble", 0, out.reassemble-before.reassemble)
	bs.Event("filter", 0, out.filter-before.filter).
		SetInt("matches", int64(len(out.matches)-len(before.matches)))
	bs.SetInt("cache_hits", int64(out.cacheHits-before.cacheHits))
	return nil
}
