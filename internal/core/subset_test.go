package core

import (
	"testing"

	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
)

func buildSubsetStore(t *testing.T, side int) (*SubsetStore, []float64, grid.Shape) {
	t.Helper()
	d := datagen.GTSLike(side, side, 13)
	v, _ := d.Var("phi")
	fs := pfs.New(pfs.DefaultConfig())
	st, err := BuildSubset(fs, fs.NewClock(), "sub/phi", d.Shape, v.Data, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st, v.Data, d.Shape
}

func TestBuildSubsetValidation(t *testing.T) {
	fs := pfs.New(pfs.DefaultConfig())
	clk := fs.NewClock()
	if _, err := BuildSubset(fs, clk, "x", grid.Shape{16, 8}, make([]float64, 128), nil); err == nil {
		t.Error("non-cubic grid accepted")
	}
	if _, err := BuildSubset(fs, clk, "x", grid.Shape{12, 12}, make([]float64, 144), nil); err == nil {
		t.Error("non-power-of-two side accepted")
	}
	if _, err := BuildSubset(fs, clk, "x", grid.Shape{16, 16}, make([]float64, 3), nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSubsetFullResolutionRoundtrip(t *testing.T) {
	st, data, shape := buildSubsetStore(t, 32)
	res, err := st.ReadLevel(st.Levels()-1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stride != 1 || !res.Shape.Equal(shape) {
		t.Fatalf("full-res read: stride %d shape %v", res.Stride, res.Shape)
	}
	for i := range data {
		if res.Values[i] != data[i] {
			t.Fatalf("value %d: %v != %v", i, res.Values[i], data[i])
		}
	}
}

func TestSubsetLevelsAreStrideSamples(t *testing.T) {
	st, data, shape := buildSubsetStore(t, 32)
	for lvl := 0; lvl < st.Levels(); lvl++ {
		res, err := st.ReadLevel(lvl, 3)
		if err != nil {
			t.Fatalf("level %d: %v", lvl, err)
		}
		stride := res.Stride
		wantShape := grid.Shape{(32 + stride - 1) / stride, (32 + stride - 1) / stride}
		if !res.Shape.Equal(wantShape) {
			t.Fatalf("level %d: shape %v, want %v", lvl, res.Shape, wantShape)
		}
		// Every returned point must equal the original at the strided
		// coordinates.
		res.Shape.Clone() // no-op, keeps intent clear
		for y := 0; y < res.Shape[0]; y++ {
			for x := 0; x < res.Shape[1]; x++ {
				got := res.Values[res.Shape.Linear([]int{y, x})]
				want := data[shape.Linear([]int{y * stride, x * stride})]
				if got != want {
					t.Fatalf("level %d point (%d,%d): %v != %v", lvl, y, x, got, want)
				}
			}
		}
	}
}

func TestSubsetBytesGrowWithLevel(t *testing.T) {
	st, _, _ := buildSubsetStore(t, 64)
	var prev int64 = -1
	for lvl := 0; lvl < st.Levels(); lvl++ {
		res, err := st.ReadLevel(lvl, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.BytesRead <= prev {
			t.Fatalf("level %d read %d bytes, not more than level %d's %d",
				lvl, res.BytesRead, lvl-1, prev)
		}
		prev = res.BytesRead
	}
	// Coarse levels must be far cheaper than full resolution.
	coarse, _ := st.ReadLevel(2, 2)
	full, _ := st.ReadLevel(st.Levels()-1, 2)
	if coarse.BytesRead*10 > full.BytesRead {
		t.Fatalf("level-2 read %d bytes, full %d — subset reads not cheap enough",
			coarse.BytesRead, full.BytesRead)
	}
}

func TestSubsetLevelBytesMatchesFiles(t *testing.T) {
	st, _, _ := buildSubsetStore(t, 32)
	sizes := st.LevelBytes()
	if len(sizes) != st.Levels() {
		t.Fatalf("LevelBytes has %d entries", len(sizes))
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	if fsTotal := st.fs.TotalSize("sub/phi/"); fsTotal != total {
		t.Fatalf("LevelBytes total %d != files total %d", total, fsTotal)
	}
}

func TestSubsetReadLevelValidation(t *testing.T) {
	st, _, _ := buildSubsetStore(t, 16)
	if _, err := st.ReadLevel(-1, 1); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := st.ReadLevel(st.Levels(), 1); err == nil {
		t.Error("over-max level accepted")
	}
	if _, err := st.ReadLevel(0, 0); err == nil {
		t.Error("ranks=0 accepted")
	}
}

func TestSubset3D(t *testing.T) {
	d := datagen.S3DLike(16, 5)
	v, _ := d.Var("temp")
	fs := pfs.New(pfs.DefaultConfig())
	st, err := BuildSubset(fs, fs.NewClock(), "sub3/temp", d.Shape, v.Data, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.ReadLevel(st.Levels()-1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if res.Values[i] != v.Data[i] {
			t.Fatalf("3-D full-res mismatch at %d", i)
		}
	}
	// Level 1 = stride 8 on a 16³ grid: a 2³ sample.
	res, err = st.ReadLevel(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shape.Equal(grid.Shape{2, 2, 2}) {
		t.Fatalf("level-1 shape %v", res.Shape)
	}
	if res.Values[0] != v.Data[0] {
		t.Fatal("origin sample mismatch")
	}
}
