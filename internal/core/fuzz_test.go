package core

import (
	"testing"

	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
)

// FuzzMetaUnmarshal: the store-metadata decoder must reject arbitrary
// bytes with an error, never a panic — it parses catalog files that
// could be corrupted on disk.
func FuzzMetaUnmarshal(f *testing.F) {
	d := datagen.GTSLike(16, 16, 1)
	v, _ := d.Var("phi")
	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig([]int{8, 8})
	cfg.NumBins = 4
	cfg.SampleSize = 64
	st, err := Build(fs, fs.NewClock(), "fz/phi", d.Shape, v.Data, cfg)
	if err != nil {
		f.Fatal(err)
	}
	full := st.meta.marshal()
	f.Add(full)
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x4f, 0x4c, 0x4d}) // magic only
	// Truncated PLoD byte-plane tables: cutting the catalog mid-way
	// leaves unit plane offset/length entries running past the buffer,
	// which the decoder must reject without panicking.
	f.Add(full[:len(full)/2])
	f.Add(full[:3*len(full)/4])
	f.Add(full[:len(full)-1])
	// Zero-length bins: constant data lands every point in one bin and
	// leaves the other bins empty, so the catalog carries bins with no
	// units at all.
	flat := make([]float64, 64)
	for i := range flat {
		flat[i] = 1
	}
	cfgFlat := DefaultConfig([]int{4, 4})
	cfgFlat.NumBins = 4
	cfgFlat.SampleSize = 64
	stFlat, err := Build(fs, fs.NewClock(), "fz/flat", grid.Shape{8, 8}, flat, cfgFlat)
	if err != nil {
		f.Fatal(err)
	}
	flatMeta := stFlat.meta.marshal()
	f.Add(flatMeta)
	f.Add(flatMeta[:len(flatMeta)-2]) // zero-length bins, truncated tail
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := unmarshalStoreMeta(data)
		if err == nil && m == nil {
			t.Fatal("nil meta without error")
		}
	})
}

// FuzzDecodeOffsets: the positional-index decoder must be panic-free on
// arbitrary streams.
func FuzzDecodeOffsets(f *testing.F) {
	f.Add([]byte{1, 2, 3}, 3)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, 1)
	f.Add([]byte{}, 0)
	f.Add([]byte{}, 5)     // zero-length stream claiming entries
	f.Add([]byte{0x80}, 1) // unterminated varint
	f.Add([]byte{1, 2}, 3) // stream truncated mid-count
	f.Fuzz(func(t *testing.T, raw []byte, count int) {
		if count < 0 || count > 1<<16 {
			return
		}
		out, err := decodeOffsets(raw, count)
		if err == nil && len(out) != count {
			t.Fatalf("decoded %d offsets, want %d", len(out), count)
		}
	})
}
