package core

import (
	"testing"

	"mloc/internal/datagen"
	"mloc/internal/pfs"
)

// FuzzMetaUnmarshal: the store-metadata decoder must reject arbitrary
// bytes with an error, never a panic — it parses catalog files that
// could be corrupted on disk.
func FuzzMetaUnmarshal(f *testing.F) {
	d := datagen.GTSLike(16, 16, 1)
	v, _ := d.Var("phi")
	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig([]int{8, 8})
	cfg.NumBins = 4
	cfg.SampleSize = 64
	st, err := Build(fs, fs.NewClock(), "fz/phi", d.Shape, v.Data, cfg)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(st.meta.marshal())
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x4f, 0x4c, 0x4d}) // magic only
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := unmarshalStoreMeta(data)
		if err == nil && m == nil {
			t.Fatal("nil meta without error")
		}
	})
}

// FuzzDecodeOffsets: the positional-index decoder must be panic-free on
// arbitrary streams.
func FuzzDecodeOffsets(f *testing.F) {
	f.Add([]byte{1, 2, 3}, 3)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, 1)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, raw []byte, count int) {
		if count < 0 || count > 1<<16 {
			return
		}
		out, err := decodeOffsets(raw, count)
		if err == nil && len(out) != count {
			t.Fatalf("decoded %d offsets, want %d", len(out), count)
		}
	})
}
