package core

import (
	"math/rand"
	"strings"
	"testing"

	"mloc/internal/binning"
	"mloc/internal/datagen"
	"mloc/internal/grid"
	"mloc/internal/pfs"
	"mloc/internal/query"
)

func hierTestConfig() Config {
	cfg := testConfig()
	cfg.HierarchicalIndex = true
	return cfg
}

func TestHierarchicalBuildAndOpen(t *testing.T) {
	data, shape := testData(t)
	fs := pfs.New(pfs.DefaultConfig())
	st, err := Build(fs, pfs.NewClock(), "mloc/phi", shape, data, hierTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Hierarchical() {
		t.Fatal("built store has no vindex")
	}
	// The vindex is part of the index footprint.
	flat, err := Build(fs, pfs.NewClock(), "mloc/flat", shape, data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.IndexBytes() <= flat.IndexBytes() {
		t.Errorf("hierarchical index bytes %d not larger than flat %d", st.IndexBytes(), flat.IndexBytes())
	}

	// Open reconstructs the vindex from the subfile.
	opened, err := Open(fs, pfs.NewClock(), "mloc/phi")
	if err != nil {
		t.Fatal(err)
	}
	if !opened.Hierarchical() {
		t.Fatal("opened store lost the vindex")
	}
	if opened.vidx.size != st.vidx.size || len(opened.vidx.offs) != len(st.vidx.offs) {
		t.Fatalf("opened vindex shape differs: %d bytes/%d nodes vs %d/%d",
			opened.vidx.size, len(opened.vidx.offs), st.vidx.size, len(st.vidx.offs))
	}
	openedFlat, err := Open(fs, pfs.NewClock(), "mloc/flat")
	if err != nil {
		t.Fatal(err)
	}
	if openedFlat.Hierarchical() {
		t.Fatal("flat store grew a vindex on open")
	}
}

// The satellite property test: hierarchical and flat scans must return
// identical query.Result match sets across VC/SC/PLoD/index-only modes,
// including stores whose bins were adaptively re-split. Run under -race
// via the race Make target (internal/core is in RACE_PKGS).
func TestHierarchicalFlatEquivalenceProperty(t *testing.T) {
	d := datagen.GTSLike(48, 48, 3)
	v, _ := d.Var("phi")
	data, shape := v.Data, d.Shape

	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig([]int{8, 8})
	cfg.NumBins = 24
	cfg.SampleSize = 1024

	flatSt, err := Build(fs, pfs.NewClock(), "eq/flat", shape, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hcfg := cfg
	hcfg.HierarchicalIndex = true
	hierSt, err := Build(fs, pfs.NewClock(), "eq/hier", shape, data, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := hcfg
	acfg.AdaptiveBins = true
	adaptSt, err := Build(fs, pfs.NewClock(), "eq/adapt", shape, data, acfg)
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(99))
	lo, hi := dataRange(data)
	for trial := 0; trial < 60; trial++ {
		req := &query.Request{}
		if r.Intn(4) > 0 { // VC present in 3/4 of trials
			a := lo + r.Float64()*(hi-lo)
			b := lo + r.Float64()*(hi-lo)
			if a > b {
				a, b = b, a
			}
			req.VC = &binning.ValueConstraint{Min: a, Max: b}
		}
		if r.Intn(2) == 0 {
			x0, y0 := r.Intn(48), r.Intn(48)
			x1, y1 := x0+1+r.Intn(48-x0), y0+1+r.Intn(48-y0)
			req.SC = &grid.Region{Lo: []int{x0, y0}, Hi: []int{x1, y1}}
		}
		req.IndexOnly = r.Intn(2) == 0
		if !req.IndexOnly && r.Intn(2) == 0 {
			req.PLoDLevel = 7 // full precision via explicit level
		}
		ranks := 1 + r.Intn(4)

		want, err := flatSt.Query(req, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range []*Store{hierSt, adaptSt} {
			got, err := st.Query(req, ranks)
			if err != nil {
				t.Fatal(err)
			}
			matchesEqual(t, got.Matches, want.Matches, "trial")
			if req.VC != nil && req.IndexOnly && st.Hierarchical() {
				sel := st.vidx.tree.Select(*req.VC)
				if got.BinsPruned != sel.PrunedLeaves || got.BinsCovered != sel.CoveredLeaves {
					t.Fatalf("trial %d: result pruning (%d,%d) != planner (%d,%d)",
						trial, got.BinsPruned, got.BinsCovered, sel.PrunedLeaves, sel.CoveredLeaves)
				}
			} else if got.BinsPruned != 0 || got.BinsCovered != 0 || got.IndexNodesRead != 0 {
				t.Fatalf("trial %d: flat-path query reported pruning %+v", trial, got)
			}
		}
	}
}

// An index-only range query over a hierarchical store must beat the
// flat scan on virtual latency at low selectivity and report its
// pruning factors through Plan.Observe.
func TestHierarchicalSpeedupAndExplain(t *testing.T) {
	d := datagen.GTSLike(96, 96, 5)
	v, _ := d.Var("phi")
	data, shape := v.Data, d.Shape

	fs := pfs.New(pfs.DefaultConfig())
	cfg := DefaultConfig([]int{8, 8})
	cfg.NumBins = 256
	cfg.SampleSize = 4096
	flatSt, err := Build(fs, pfs.NewClock(), "sp/flat", shape, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hcfg := cfg
	hcfg.HierarchicalIndex = true
	hierSt, err := Build(fs, pfs.NewClock(), "sp/hier", shape, data, hcfg)
	if err != nil {
		t.Fatal(err)
	}

	lo, hi := datagen.Selectivity(data, 0.10, 3, 4096)
	req := &query.Request{VC: &binning.ValueConstraint{Min: lo, Max: hi}, IndexOnly: true}

	flatRes, err := flatSt.Query(req, 4)
	if err != nil {
		t.Fatal(err)
	}
	hierRes, err := hierSt.Query(req, 4)
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, hierRes.Matches, flatRes.Matches, "speedup query")
	if hierRes.BinsPruned+hierRes.BinsCovered == 0 {
		t.Fatal("hierarchical query did no pruning")
	}
	if ft, ht := flatRes.Time.Total(), hierRes.Time.Total(); ht >= ft {
		t.Errorf("hierarchical latency %.6fs not below flat %.6fs", ht, ft)
	}

	plan, err := hierSt.Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Hierarchical {
		t.Fatal("plan not hierarchical")
	}
	if plan.BinsPruned != hierRes.BinsPruned || plan.BinsCovered != hierRes.BinsCovered {
		t.Fatalf("plan pruning (%d,%d) != result (%d,%d)",
			plan.BinsPruned, plan.BinsCovered, hierRes.BinsPruned, hierRes.BinsCovered)
	}
	plan.Observe(hierRes)
	out := plan.String()
	if !strings.Contains(out, "pruning:") || !strings.Contains(out, "index tree:") {
		t.Fatalf("explain output missing pruning lines:\n%s", out)
	}
}

// Cancellation must be honored on the vindex path too.
func TestHierarchicalAccountingInvariants(t *testing.T) {
	data, shape := testData(t)
	fs := pfs.New(pfs.DefaultConfig())
	st, err := Build(fs, pfs.NewClock(), "inv/hier", shape, data, hierTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := datagen.Selectivity(data, 0.3, 11, 1024)
	req := &query.Request{VC: &binning.ValueConstraint{Min: lo, Max: hi}, IndexOnly: true}
	res, err := st.Query(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The tree partition must cover the whole leaf space.
	boundary := res.BinsAccessed - res.BinsCovered
	if res.BinsPruned+res.BinsCovered+boundary > st.NumBins() {
		t.Fatalf("pruned %d + covered %d + boundary %d exceeds %d bins",
			res.BinsPruned, res.BinsCovered, boundary, st.NumBins())
	}
	if res.BinsCovered > 0 && res.IndexNodesRead == 0 {
		t.Fatal("covered bins with no node reads")
	}
	if res.IndexNodesRead > res.BinsCovered {
		t.Fatalf("read %d nodes to cover %d bins", res.IndexNodesRead, res.BinsCovered)
	}
	matchesEqual(t, res.Matches, bruteForce(data, shape, req), "accounting query")
}
