package core

import (
	"encoding/binary"
	"fmt"

	"mloc/internal/binning"
	"mloc/internal/bitmap"
	"mloc/internal/grid"
	"mloc/internal/obs"
	"mloc/internal/pfs"
)

// The vindex is the hierarchical V-level index: one subfile holding a
// WAH bitmap per node of the super-bin tree (binning.Tree), level 0
// (the leaves) first, root last. A node's bitmap is the OR of its
// children's — the positions of every point whose value falls in the
// node's bin range — so an index-only range query answers a
// fully-inside subtree with a single bitmap read from this one file
// instead of per-bin index-file opens, following the multi-level bin
// tree of arXiv 2108.13735.
//
// File layout (little endian):
//
//	0   magic "MLVX"
//	4   version  uint32
//	8   fanout   uint32
//	12  nbins    uint32
//	16  nlevels  uint32
//	20  nnodes   uint32
//	24  bitLen   uint64  (grid element count; every bitmap's length)
//	32  table    nnodes × {off uint64, len uint32} (absolute offsets)
//	..  payloads WAH MarshalBinary bytes
const (
	vindexMagic      = "MLVX"
	vindexVersion    = 1
	vindexHeaderSize = 32
	vindexEntrySize  = 12
)

func vindexPath(prefix string) string { return prefix + "/vindex" }

// vindex is the runtime view: the tree shape plus the node offset
// table, loaded at Open; payloads are fetched per query.
type vindex struct {
	tree   *binning.Tree
	path   string
	size   int64
	bitLen int64
	offs   []int64
	lens   []int64
}

// nodeID maps a NodeRef to its slot in the offset table: levels are
// stored bottom-up, each level in index order.
func (v *vindex) nodeID(n binning.NodeRef) int {
	id := n.Index
	for l := 0; l < n.Level; l++ {
		id += v.tree.LevelWidth(l)
	}
	return id
}

// buildVindex constructs the super-bin tree bitmaps from the pass-1
// binned points and writes the vindex subfile. Leaf bitmaps come from
// the per-bin (chunk, offsets) lists mapped to global row-major
// positions; each inner level is the fanout-wise OR of the level below,
// all in WAH form so long runs never materialize. The build is serial
// and deterministic. Aggregation CPU is charged to clk per level, and
// the span records one event per level so the virtual-clock charging is
// attributable.
func buildVindex(fs *pfs.Sim, clk *pfs.Clock, prefix string, tree *binning.Tree, shape grid.Shape, chunks *grid.Chunking, perBin [][]rawUnit, sp *obs.Span) (*vindex, error) {
	nbins := tree.Scheme().NumBins()
	if len(perBin) != nbins {
		return nil, fmt.Errorf("core: vindex: %d bins of points for %d-bin tree", len(perBin), nbins)
	}
	bitLen := shape.Elems()
	nodes := make([]*bitmap.WAH, tree.NumNodes())

	// Level 0: leaf bitmaps from the binned points.
	cpu := clk.MeasureCPU(func() {
		dims := shape.Dims()
		strides := make([]int64, dims)
		strides[dims-1] = 1
		for d := dims - 2; d >= 0; d-- {
			strides[d] = strides[d+1] * int64(shape[d+1])
		}
		widths := make([]int64, dims)
		for b := 0; b < nbins; b++ {
			bm := bitmap.New(bitLen)
			for _, u := range perBin[b] {
				reg := chunks.ChunkRegionByID(u.chunkID)
				var base int64
				for d := 0; d < dims; d++ {
					base += int64(reg.Lo[d]) * strides[d]
					widths[d] = int64(reg.Hi[d] - reg.Lo[d])
				}
				for _, off := range u.offsets {
					rem := int64(off)
					lin := base
					for d := dims - 1; d >= 0; d-- {
						lin += (rem % widths[d]) * strides[d]
						rem /= widths[d]
					}
					bm.Set(lin)
				}
			}
			nodes[b] = bitmap.Compress(bm)
		}
	})
	sp.Event("level", 0, cpu).SetInt("level", 0)

	// Upper levels: OR-aggregate children.
	base := 0
	for l := 1; l < tree.NumLevels(); l++ {
		childBase := base
		base += tree.LevelWidth(l - 1)
		lvlCPU := clk.MeasureCPU(func() {
			for i := 0; i < tree.LevelWidth(l); i++ {
				ref := binning.NodeRef{Level: l, Index: i}
				cl, ch := tree.Children(ref)
				agg := nodes[childBase+cl]
				for c := cl + 1; c < ch; c++ {
					agg = agg.Or(nodes[childBase+c])
				}
				nodes[base+i] = agg
			}
		})
		sp.Event("level", 0, lvlCPU).SetInt("level", int64(l))
	}

	// Serialize: header, offset table, payloads.
	nnodes := len(nodes)
	payloadOff := int64(vindexHeaderSize + vindexEntrySize*nnodes)
	offs := make([]int64, nnodes)
	lens := make([]int64, nnodes)
	buf := make([]byte, payloadOff)
	copy(buf, vindexMagic)
	binary.LittleEndian.PutUint32(buf[4:], vindexVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(tree.Fanout()))
	binary.LittleEndian.PutUint32(buf[12:], uint32(nbins))
	binary.LittleEndian.PutUint32(buf[16:], uint32(tree.NumLevels()))
	binary.LittleEndian.PutUint32(buf[20:], uint32(nnodes))
	binary.LittleEndian.PutUint64(buf[24:], uint64(bitLen))
	for i, w := range nodes {
		wb, err := w.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("core: vindex node %d: %w", i, err)
		}
		offs[i] = int64(len(buf))
		lens[i] = int64(len(wb))
		binary.LittleEndian.PutUint64(buf[vindexHeaderSize+vindexEntrySize*i:], uint64(offs[i]))
		binary.LittleEndian.PutUint32(buf[vindexHeaderSize+vindexEntrySize*i+8:], uint32(lens[i]))
		buf = append(buf, wb...)
	}
	if err := fs.WriteFile(clk, vindexPath(prefix), buf); err != nil {
		return nil, err
	}
	sp.SetInt("nodes", int64(nnodes))
	sp.SetInt("bytes", int64(len(buf)))
	return &vindex{
		tree:   tree,
		path:   vindexPath(prefix),
		size:   int64(len(buf)),
		bitLen: bitLen,
		offs:   offs,
		lens:   lens,
	}, nil
}

// openVindex loads the vindex header and offset table (not the
// payloads) for a store whose scheme is already reconstructed. Returns
// (nil, nil) when the store has no vindex subfile — flat stores stay
// flat.
func openVindex(fs *pfs.Sim, clk *pfs.Clock, prefix string, scheme *binning.Scheme, bitLen int64) (*vindex, error) {
	path := vindexPath(prefix)
	if !fs.Exists(path) {
		return nil, nil
	}
	if err := fs.Open(clk, path); err != nil {
		return nil, err
	}
	hdr, err := fs.ReadAt(clk, path, 0, vindexHeaderSize)
	if err != nil {
		return nil, fmt.Errorf("core: vindex header: %w", err)
	}
	if string(hdr[:4]) != vindexMagic {
		return nil, fmt.Errorf("core: vindex: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != vindexVersion {
		return nil, fmt.Errorf("core: vindex: unsupported version %d", v)
	}
	fanout := int(binary.LittleEndian.Uint32(hdr[8:]))
	nbins := int(binary.LittleEndian.Uint32(hdr[12:]))
	nlevels := int(binary.LittleEndian.Uint32(hdr[16:]))
	nnodes := int(binary.LittleEndian.Uint32(hdr[20:]))
	gotBits := int64(binary.LittleEndian.Uint64(hdr[24:]))
	if nbins != scheme.NumBins() {
		return nil, fmt.Errorf("core: vindex has %d bins, store has %d", nbins, scheme.NumBins())
	}
	if gotBits != bitLen {
		return nil, fmt.Errorf("core: vindex covers %d positions, grid has %d", gotBits, bitLen)
	}
	tree, err := binning.NewTree(scheme, fanout)
	if err != nil {
		return nil, err
	}
	if tree.NumLevels() != nlevels || tree.NumNodes() != nnodes {
		return nil, fmt.Errorf("core: vindex shape %d levels/%d nodes, tree has %d/%d",
			nlevels, nnodes, tree.NumLevels(), tree.NumNodes())
	}
	table, err := fs.ReadAt(clk, path, vindexHeaderSize, int64(vindexEntrySize*nnodes))
	if err != nil {
		return nil, fmt.Errorf("core: vindex table: %w", err)
	}
	size, err := fs.Size(path)
	if err != nil {
		return nil, err
	}
	offs := make([]int64, nnodes)
	lens := make([]int64, nnodes)
	for i := 0; i < nnodes; i++ {
		offs[i] = int64(binary.LittleEndian.Uint64(table[vindexEntrySize*i:]))
		lens[i] = int64(binary.LittleEndian.Uint32(table[vindexEntrySize*i+8:]))
		if offs[i] < 0 || lens[i] < 0 || offs[i]+lens[i] > size {
			return nil, fmt.Errorf("core: vindex node %d extent [%d,%d) exceeds file size %d",
				i, offs[i], offs[i]+lens[i], size)
		}
	}
	return &vindex{tree: tree, path: path, size: size, bitLen: bitLen, offs: offs, lens: lens}, nil
}
