package datagen

import (
	"math"
	"testing"

	"mloc/internal/compress"
	"mloc/internal/grid"
)

func TestGTSLikeShapeAndDeterminism(t *testing.T) {
	a := GTSLike(32, 64, 7)
	if !a.Shape.Equal(grid.Shape{32, 64}) {
		t.Fatalf("shape = %v", a.Shape)
	}
	v, err := a.Var("phi")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Data) != 32*64 {
		t.Fatalf("data len = %d", len(v.Data))
	}
	b := GTSLike(32, 64, 7)
	bv, _ := b.Var("phi")
	for i := range v.Data {
		if v.Data[i] != bv.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := GTSLike(32, 64, 8)
	cv, _ := c.Var("phi")
	same := true
	for i := range v.Data {
		if v.Data[i] != cv.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestS3DLikeVariables(t *testing.T) {
	d := S3DLike(16, 1)
	if !d.Shape.Equal(grid.Shape{16, 16, 16}) {
		t.Fatalf("shape = %v", d.Shape)
	}
	for _, name := range []string{"temp", "vu", "vv", "vw"} {
		v, err := d.Var(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Data) != 16*16*16 {
			t.Fatalf("%s len = %d", name, len(v.Data))
		}
	}
	if _, err := d.Var("missing"); err == nil {
		t.Fatal("missing variable accepted")
	}
	// Temperature must look like ambient + hot kernels: min >= ~ambient,
	// max well above it.
	temp, _ := d.Var("temp")
	lo, hi := temp.Data[0], temp.Data[0]
	for _, v := range temp.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < 290 || hi < 500 {
		t.Fatalf("temperature range [%v,%v] not flame-like", lo, hi)
	}
}

func TestFieldsAreCompressible(t *testing.T) {
	// The whole reproduction depends on the synthetic fields living in
	// the smooth regime ISABELA/ISOBAR target: ISOBAR must achieve a
	// real reduction on them.
	d := GTSLike(64, 64, 3)
	v, _ := d.Var("phi")
	iso := compress.NewIsobar(compress.DefaultZlibLevel)
	enc, err := iso.EncodeFloats(v.Data)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(enc)) > 0.95*float64(len(v.Data)*8) {
		t.Fatalf("GTS-like field incompressible: %d of %d bytes", len(enc), len(v.Data)*8)
	}
}

func TestReplicate(t *testing.T) {
	d := GTSLike(8, 8, 2)
	r, err := Replicate(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Shape.Equal(grid.Shape{32, 8}) {
		t.Fatalf("replicated shape = %v", r.Shape)
	}
	v, _ := r.Var("phi")
	if len(v.Data) != 32*8 {
		t.Fatalf("replicated len = %d", len(v.Data))
	}
	orig, _ := d.Var("phi")
	// Replicas are near but not exactly equal to the original.
	base := 2 * 64
	var exact int
	for i := 0; i < 64; i++ {
		if v.Data[base+i] == orig.Data[i] {
			exact++
		}
		rel := math.Abs(v.Data[base+i]-orig.Data[i]) / math.Max(math.Abs(orig.Data[i]), 1e-12)
		if rel > 1e-4 {
			t.Fatalf("replica diverged at %d: rel %v", i, rel)
		}
	}
	if exact == 64 {
		t.Fatal("replica is bit-exact; perturbation missing")
	}
	if _, err := Replicate(d, 0); err == nil {
		t.Fatal("replication factor 0 accepted")
	}
	same, err := Replicate(d, 1)
	if err != nil || same != d {
		t.Fatal("factor 1 should return the original dataset")
	}
}

func TestSelectivity(t *testing.T) {
	d := GTSLike(64, 64, 5)
	v, _ := d.Var("phi")
	for _, frac := range []float64{0.01, 0.1, 0.5} {
		lo, hi := Selectivity(v.Data, frac, 11, 4096)
		if lo > hi {
			t.Fatalf("frac %v: lo %v > hi %v", frac, lo, hi)
		}
		var in int
		for _, x := range v.Data {
			if x >= lo && x <= hi {
				in++
			}
		}
		got := float64(in) / float64(len(v.Data))
		if got < frac/3 || got > frac*3 {
			t.Errorf("frac %v: actual selectivity %v out of tolerance", frac, got)
		}
	}
	// Degenerate fractions clamp instead of failing.
	lo, hi := Selectivity(v.Data, 0, 1, 128)
	if lo > hi {
		t.Fatal("zero-frac selectivity inverted")
	}
	lo, hi = Selectivity(v.Data, 2, 1, 128)
	if lo > hi {
		t.Fatal("over-1 selectivity inverted")
	}
}

func TestSample(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i)
	}
	s := Sample(data, 10, 3)
	if len(s) != 10 {
		t.Fatalf("sample len = %d", len(s))
	}
	full := Sample(data, 1000, 3)
	if len(full) != 100 {
		t.Fatalf("full sample len = %d", len(full))
	}
	full[0] = -1
	if data[0] == -1 {
		t.Fatal("Sample aliases input")
	}
}
