// Package datagen produces deterministic synthetic stand-ins for the
// paper's evaluation datasets (DESIGN.md §2):
//
//   - GTS-like: 2-D turbulence-style fields (the paper aggregates GTS's
//     1-D particle output over time steps into a 2-D space).
//   - S3D-like: 3-D reacting-flow-style fields with flame-kernel
//     temperature structure and smooth velocity components vu/vv/vw
//     (the variables Table VI analyzes).
//
// The generators control the two properties the compression and layout
// results depend on: spatial smoothness (ISABELA's B-spline fits,
// Hilbert locality) and byte-level entropy structure (ISOBAR's
// compressible/incompressible plane split).
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mloc/internal/grid"
)

// Variable is a named field over a grid, row-major.
type Variable struct {
	Name string
	Data []float64
}

// Dataset is a named collection of variables over one grid shape.
type Dataset struct {
	Name  string
	Shape grid.Shape
	Vars  []Variable
}

// Var returns the named variable or an error.
func (d *Dataset) Var(name string) (*Variable, error) {
	for i := range d.Vars {
		if d.Vars[i].Name == name {
			return &d.Vars[i], nil
		}
	}
	return nil, fmt.Errorf("datagen: dataset %s has no variable %q", d.Name, name)
}

// mode is one sinusoidal component of a multi-scale field.
type mode struct {
	freq  []float64
	phase float64
	amp   float64
}

// randomModes draws nModes wave vectors with a 1/f amplitude spectrum,
// the canonical turbulence-like spectral shape.
func randomModes(r *rand.Rand, dims, nModes int, baseAmp float64) []mode {
	modes := make([]mode, nModes)
	for i := range modes {
		f := make([]float64, dims)
		var norm float64
		for d := 0; d < dims; d++ {
			f[d] = float64(r.Intn(16) + 1)
			if r.Intn(2) == 0 {
				f[d] = -f[d]
			}
			norm += f[d] * f[d]
		}
		norm = math.Sqrt(norm)
		modes[i] = mode{
			freq:  f,
			phase: r.Float64() * 2 * math.Pi,
			amp:   baseAmp / norm,
		}
	}
	return modes
}

func evalModes(modes []mode, pos []float64) float64 {
	var v float64
	for _, m := range modes {
		arg := m.phase
		for d, f := range m.freq {
			arg += 2 * math.Pi * f * pos[d]
		}
		v += m.amp * math.Sin(arg)
	}
	return v
}

// GTSLike generates a 2-D turbulence-like field of shape ny×nx:
// multi-scale fluctuations over a positive baseline (like a density or
// potential magnitude field) with a small noise floor. The positive
// baseline matters: pointwise-relative lossy compression (ISABELA) is
// only well-conditioned away from zero crossings, matching the physical
// fields the paper compresses.
func GTSLike(ny, nx int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	modes := randomModes(r, 2, 24, 1.2)
	data := make([]float64, ny*nx)
	pos := make([]float64, 2)
	for y := 0; y < ny; y++ {
		pos[0] = float64(y) / float64(ny)
		for x := 0; x < nx; x++ {
			pos[1] = float64(x) / float64(nx)
			data[y*nx+x] = 10 + evalModes(modes, pos) + r.NormFloat64()*0.01
		}
	}
	return &Dataset{
		Name:  "gts",
		Shape: grid.Shape{ny, nx},
		Vars:  []Variable{{Name: "phi", Data: data}},
	}
}

// S3DLike generates a 3-D combustion-like dataset of shape n×n×n with
// four variables: temp (ambient plus Gaussian flame kernels) and the
// velocity components vu, vv, vw (smooth multi-scale flows).
func S3DLike(n int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	shape := grid.Shape{n, n, n}
	total := shape.Elems()

	// Flame kernels for temperature.
	type kernel struct {
		c     [3]float64
		sigma float64
		amp   float64
	}
	kernels := make([]kernel, 6)
	for i := range kernels {
		kernels[i] = kernel{
			c:     [3]float64{r.Float64(), r.Float64(), r.Float64()},
			sigma: 0.05 + r.Float64()*0.15,
			amp:   800 + r.Float64()*1200,
		}
	}
	velModes := [3][]mode{
		randomModes(r, 3, 16, 8),
		randomModes(r, 3, 16, 8),
		randomModes(r, 3, 16, 8),
	}

	temp := make([]float64, total)
	vel := [3][]float64{
		make([]float64, total),
		make([]float64, total),
		make([]float64, total),
	}
	pos := make([]float64, 3)
	idx := 0
	for z := 0; z < n; z++ {
		pos[0] = float64(z) / float64(n)
		for y := 0; y < n; y++ {
			pos[1] = float64(y) / float64(n)
			for x := 0; x < n; x++ {
				pos[2] = float64(x) / float64(n)
				tv := 300.0 // ambient Kelvin
				for _, k := range kernels {
					d2 := 0.0
					for d := 0; d < 3; d++ {
						dd := pos[d] - k.c[d]
						d2 += dd * dd
					}
					tv += k.amp * math.Exp(-d2/(2*k.sigma*k.sigma))
				}
				temp[idx] = tv + r.NormFloat64()*0.5
				for d := 0; d < 3; d++ {
					vel[d][idx] = evalModes(velModes[d], pos) + r.NormFloat64()*0.02
				}
				idx++
			}
		}
	}
	return &Dataset{
		Name:  "s3d",
		Shape: shape,
		Vars: []Variable{
			{Name: "temp", Data: temp},
			{Name: "vu", Data: vel[0]},
			{Name: "vv", Data: vel[1]},
			{Name: "vw", Data: vel[2]},
		},
	}
}

// Replicate tiles a dataset t times along dimension 0, emulating the
// paper's replication of one time step up to 8 GB / 512 GB scales. The
// replicas receive a tiny deterministic perturbation so compression is
// not artificially aided by exact repetition.
func Replicate(d *Dataset, t int) (*Dataset, error) {
	if t < 1 {
		return nil, fmt.Errorf("datagen: replication factor %d < 1", t)
	}
	if t == 1 {
		return d, nil
	}
	shape := d.Shape.Clone()
	shape[0] *= t
	out := &Dataset{Name: d.Name, Shape: shape}
	step := d.Shape.Elems()
	for _, v := range d.Vars {
		data := make([]float64, step*int64(t))
		for rep := 0; rep < t; rep++ {
			r := rand.New(rand.NewSource(int64(rep) * 7919))
			base := step * int64(rep)
			for i, x := range v.Data {
				data[base+int64(i)] = x * (1 + r.NormFloat64()*1e-6)
			}
		}
		out.Vars = append(out.Vars, Variable{Name: v.Name, Data: data})
	}
	return out, nil
}

// Selectivity returns a value constraint [lo,hi] covering approximately
// the given fraction of values, centered on a random quantile — the
// random value constraints the paper's query workloads use. It samples
// up to maxSample points for the quantile estimate.
func Selectivity(data []float64, frac float64, seed int64, maxSample int) (lo, hi float64) {
	if frac <= 0 {
		frac = 0.01
	}
	if frac > 1 {
		frac = 1
	}
	sample := Sample(data, maxSample, seed)
	// Selection sort-free approach: full sort of the sample.
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	r := rand.New(rand.NewSource(seed))
	width := int(float64(len(sorted)) * frac)
	if width < 1 {
		width = 1
	}
	start := 0
	if len(sorted)-width > 0 {
		start = r.Intn(len(sorted) - width)
	}
	return sorted[start], sorted[start+width-1]
}

// Sample returns up to max values drawn deterministically from data.
func Sample(data []float64, max int, seed int64) []float64 {
	if len(data) <= max {
		return append([]float64(nil), data...)
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, max)
	for i := range out {
		out[i] = data[r.Intn(len(data))]
	}
	return out
}
