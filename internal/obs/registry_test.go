package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins bucket assignment at and around
// every boundary: Prometheus semantics are le (<=), so an observation
// equal to a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1}
	cases := []struct {
		name   string
		v      float64
		bucket int // index into counts; len(bounds) = +Inf
	}{
		{"below_first", 0.0005, 0},
		{"at_first", 0.001, 0},
		{"just_above_first", 0.0010001, 1},
		{"mid", 0.05, 2},
		{"at_last", 1, 3},
		{"above_last", 1.5, 4},
		{"zero", 0, 0},
		{"negative", -3, 0},
		{"pos_inf", math.Inf(1), 4},
		{"nan", math.NaN(), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			h := r.Histogram("mloc_test_seconds", "t", bounds)
			h.Observe(tc.v)
			for i := range h.counts {
				want := int64(0)
				if i == tc.bucket {
					want = 1
				}
				if got := h.counts[i].Load(); got != want {
					t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.v, i, got, want)
				}
			}
			if h.Count() != 1 {
				t.Errorf("Count() = %d, want 1", h.Count())
			}
		})
	}
}

// TestHistogramCumulativeExposition checks that rendered _bucket lines
// are cumulative and that _count equals the +Inf bucket.
func TestHistogramCumulativeExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mloc_test_seconds", "test", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`mloc_test_seconds_bucket{le="1"} 2`,
		`mloc_test_seconds_bucket{le="2"} 3`,
		`mloc_test_seconds_bucket{le="4"} 4`,
		`mloc_test_seconds_bucket{le="+Inf"} 5`,
		`mloc_test_seconds_count 5`,
		`mloc_test_seconds_sum 106`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryNameValidation pins the ^mloc_[a-z_]+$ rule and the
// duplicate / kind-conflict panics.
func TestRegistryNameValidation(t *testing.T) {
	bad := []string{"", "mloc_", "cache_hits", "mloc_Hits", "mloc_hits2", "mloc hits", "mloc_hits-total"}
	for _, name := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Counter(%q) did not panic", name)
				}
			}()
			NewRegistry().Counter(name, "h")
		}()
	}
	r := NewRegistry()
	r.Counter("mloc_hits_total", "h")
	r.Counter("mloc_hits_total", "h", L("var", "phi")) // distinct labels: fine
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate (name, labels) registration did not panic")
			}
		}()
		r.Counter("mloc_hits_total", "h")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind conflict did not panic")
			}
		}()
		r.Gauge("mloc_hits_total", "h", L("other", "x"))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad label key did not panic")
			}
		}()
		r.Counter("mloc_other_total", "h", L("Var", "phi"))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative Counter.Add did not panic")
			}
		}()
		r.Counter("mloc_neg_total", "h").Add(-1)
	}()
}

// TestRegistryConcurrentMutation hammers registration, mutation, and
// scraping from many goroutines; run under -race it proves the
// registry's locking story (mutation is lock-free, registration and
// exposition synchronize on the registry lock).
func TestRegistryConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mloc_shared_total", "shared counter")
	g := r.Gauge("mloc_shared", "shared gauge")
	h := r.Histogram("mloc_shared_seconds", "shared histogram", DefSecondsBuckets())
	vars := []string{"phi", "theta", "rho", "pres"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lc := r.Counter("mloc_worker_total", "per-worker", L("var", vars[w%len(vars)]), L("w", string(rune('a'+w))))
			for i := 0; i < 500; i++ {
				c.Inc()
				lc.Add(2)
				g.Add(0.5)
				g.Add(-0.25)
				h.Observe(float64(i) * 1e-4)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != 8*500 {
		t.Errorf("counter = %d, want %d", got, 8*500)
	}
	if got := g.Value(); math.Abs(got-8*500*0.25) > 1e-9 {
		t.Errorf("gauge = %v, want %v", got, 8*500*0.25)
	}
	if got := h.Count(); got != 8*500 {
		t.Errorf("histogram count = %d, want %d", got, 8*500)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if probs := Lint(sb.String(), true); len(probs) != 0 {
		t.Errorf("final exposition fails lint: %v", probs)
	}
}

// TestExpositionSortedAndEscaped pins family ordering, label-signature
// ordering, and label value escaping.
func TestExpositionSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	r.Counter("mloc_b_total", "second").Add(2)
	r.Counter("mloc_a_total", "first", L("path", `C:\x`), L("q", "a\"b\nc")).Inc()
	r.GaugeFunc("mloc_depth", "sampled", func() float64 { return 3 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	ia, ib := strings.Index(out, "mloc_a_total"), strings.Index(out, "mloc_b_total")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("families not in name order:\n%s", out)
	}
	want := `mloc_a_total{path="C:\\x",q="a\"b\nc"} 1`
	if !strings.Contains(out, want+"\n") {
		t.Errorf("exposition missing escaped sample %q:\n%s", want, out)
	}
	if !strings.Contains(out, "mloc_depth 3\n") {
		t.Errorf("GaugeFunc sample missing:\n%s", out)
	}
	if probs := Lint(out, true); len(probs) != 0 {
		t.Errorf("lint problems: %v", probs)
	}
}

// TestEachMatchesExposition cross-checks the Each iterator against
// direct values.
func TestEachMatchesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("mloc_x_total", "x").Add(7)
	r.Gauge("mloc_y", "y").Set(2.5)
	r.Histogram("mloc_z_seconds", "z", []float64{1}).Observe(0.5)
	got := map[string]float64{}
	r.Each(func(name string, labels []Label, kind Kind, value float64) {
		got[name] = value
	})
	if len(got) != 2 {
		t.Fatalf("Each visited %d series, want 2 (histograms skipped): %v", len(got), got)
	}
	if got["mloc_x_total"] != 7 || got["mloc_y"] != 2.5 {
		t.Errorf("Each values = %v", got)
	}
}

// TestExpBuckets pins the generator used for latency layouts.
func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	db := DefSecondsBuckets()
	if len(db) != 13 || db[0] != 1e-4 {
		t.Errorf("DefSecondsBuckets = %v", db)
	}
	for i := 1; i < len(db); i++ {
		if !(db[i] > db[i-1]) {
			t.Errorf("DefSecondsBuckets not ascending at %d: %v", i, db)
		}
	}
}
