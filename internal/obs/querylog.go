package obs

import (
	"sync"
	"time"
)

// Query log
//
// An always-on, bounded ring of per-query records: what was asked
// (store mode, variable, selectivity class), what it cost (bins
// pruned/covered, cache hits/misses, bytes decoded, queue wait), and
// how it went (shard count, degraded flag, wall + virtual latency,
// trace id when sampled). The server and the router both keep one,
// populated from query.Result plus their own accounting, and expose
// it at /debug/querylog. Appends take one short mutex hold and copy a
// value — cheap enough to leave on unconditionally.

// DefaultQueryLogCapacity is the ring size used when a QueryLog is
// constructed with a non-positive capacity.
const DefaultQueryLogCapacity = 256

// QueryRecord is one query's entry in the log.
type QueryRecord struct {
	// Seq is the log-unique monotonic sequence number.
	Seq uint64 `json:"seq"`
	// UnixMS is the record time, milliseconds since the Unix epoch.
	UnixMS int64 `json:"unix_ms"`
	// Store is the backing store's layout mode (planes, chunks, ...).
	Store string `json:"store"`
	// Var is the queried variable.
	Var string `json:"var"`
	// Selectivity classifies the result size relative to the domain
	// (empty, point, narrow, medium, broad, unknown).
	Selectivity string `json:"selectivity"`
	// Outcome is ok, degraded, or error.
	Outcome string `json:"outcome"`
	// Matches is the total match count before truncation.
	Matches int `json:"matches"`
	// BinsPruned counts bins the hierarchical index skipped.
	BinsPruned int `json:"bins_pruned,omitempty"`
	// BinsCovered counts bins answered from the index alone.
	BinsCovered int `json:"bins_covered,omitempty"`
	// CacheHits counts decoded units served from cache.
	CacheHits int `json:"cache_hits"`
	// CacheMisses counts units that had to be read and decoded.
	CacheMisses int `json:"cache_misses"`
	// BytesDecoded is the compressed bytes read for the query.
	BytesDecoded int64 `json:"bytes_decoded"`
	// QueueWaitMS is time spent waiting for an admission slot.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// Shards is the fan-out width (0 for a single-node query).
	Shards int `json:"shards,omitempty"`
	// Degraded marks a partial (shard-loss) result.
	Degraded bool `json:"degraded,omitempty"`
	// WallMS is the end-to-end wall latency in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// VirtS is the virtual-clock cost in seconds.
	VirtS float64 `json:"virt_s"`
	// TraceID links to /debug/traces?id= when the query was traced.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// QueryFilter selects records from a log snapshot. Zero values match
// everything.
type QueryFilter struct {
	// Store keeps only records with this store mode.
	Store string
	// Var keeps only records for this variable.
	Var string
	// MinWall keeps only records at least this slow (wall time).
	MinWall time.Duration
}

func (f QueryFilter) match(r QueryRecord) bool {
	if f.Store != "" && r.Store != f.Store {
		return false
	}
	if f.Var != "" && r.Var != f.Var {
		return false
	}
	if f.MinWall > 0 && r.WallMS < float64(f.MinWall)/float64(time.Millisecond) {
		return false
	}
	return true
}

// QueryLog is a bounded ring of QueryRecords, safe for concurrent use.
type QueryLog struct {
	mu   sync.Mutex
	ring []QueryRecord
	next int
	n    int
	seq  uint64
}

// NewQueryLog returns a log retaining the last capacity records
// (DefaultQueryLogCapacity when capacity <= 0).
func NewQueryLog(capacity int) *QueryLog {
	if capacity <= 0 {
		capacity = DefaultQueryLogCapacity
	}
	return &QueryLog{ring: make([]QueryRecord, capacity)}
}

// Append records one query, stamping Seq and (when unset) UnixMS.
// Append on a nil log is a no-op so untracked paths never branch.
func (l *QueryLog) Append(rec QueryRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	rec.Seq = l.seq
	if rec.UnixMS == 0 {
		rec.UnixMS = time.Now().UnixMilli()
	}
	l.ring[l.next] = rec
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// Snapshot returns the retained records matching f, newest first.
func (l *QueryLog) Snapshot(f QueryFilter) []QueryRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryRecord, 0, l.n)
	for i := 0; i < l.n; i++ {
		idx := (l.next - 1 - i + 2*len(l.ring)) % len(l.ring)
		if f.match(l.ring[idx]) {
			out = append(out, l.ring[idx])
		}
	}
	return out
}

// Len returns the number of retained records.
func (l *QueryLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// SelectivityClass buckets a match count against the variable's
// domain size into a small fixed vocabulary, so the query log (and
// any metric label derived from it) stays low-cardinality.
func SelectivityClass(matches int, domain int64) string {
	switch {
	case matches == 0:
		return "empty"
	case domain <= 0:
		return "unknown"
	}
	frac := float64(matches) / float64(domain)
	switch {
	case frac <= 1e-4:
		return "point"
	case frac <= 0.01:
		return "narrow"
	case frac <= 0.2:
		return "medium"
	}
	return "broad"
}
